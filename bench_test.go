// Benchmarks regenerating the paper's evaluation artefacts.
//
// One benchmark per figure of the evaluation section (Figures 3-10)
// drives the same sweep as cmd/bgsweep at a reduced job count, plus
// benchmarks for the partition-finder algorithms of Section 5 /
// Appendix 9 and ablations of the design choices called out in
// DESIGN.md (backfill mode, migration, P_f combiner).
//
// Figure benchmarks report three custom metrics alongside timing:
// the key series endpoints, so `go test -bench=.` doubles as a quick
// shape check. Full-scale tables come from `go run ./cmd/bgsweep`.
package bgsched

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"bgsched/internal/build"
	"bgsched/internal/contention"
	"bgsched/internal/core"
	"bgsched/internal/experiments"
	"bgsched/internal/job"
	"bgsched/internal/partition"
	"bgsched/internal/sim"
	"bgsched/internal/telemetry"
	"bgsched/internal/torus"
)

// benchJobs is the per-run workload length used by the figure
// benchmarks. Small enough that the full `go test -bench=.` sweep
// completes in minutes; large enough for the paper's qualitative
// shapes to be visible.
const benchJobs = 300

func benchFigure(b *testing.B, id string) {
	spec, err := experiments.SpecByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opt := experiments.Options{JobCount: benchJobs, Seed: 1, Replications: 1}
	for i := 0; i < b.N; i++ {
		tables, err := spec.Run(nil, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for ti, t := range tables {
				for _, s := range t.Series {
					if len(s.Y) == 0 {
						b.Fatalf("%s: empty series %q", id, s.Name)
					}
					name := fmt.Sprintf("t%d[%s]last", ti, strings.ReplaceAll(s.Name, " ", ""))
					b.ReportMetric(s.Y[len(s.Y)-1], name)
				}
			}
		}
	}
}

func BenchmarkFig3(b *testing.B)  { benchFigure(b, "fig3") }
func BenchmarkFig4(b *testing.B)  { benchFigure(b, "fig4") }
func BenchmarkFig5(b *testing.B)  { benchFigure(b, "fig5") }
func BenchmarkFig6(b *testing.B)  { benchFigure(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { benchFigure(b, "fig7") }
func BenchmarkFig8(b *testing.B)  { benchFigure(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { benchFigure(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchFigure(b, "fig10") }

// BenchmarkSingleRun measures the simulator itself: one SDSC run per
// scheduler kind at the bench scale.
func BenchmarkSingleRun(b *testing.B) {
	for _, kind := range []experiments.SchedulerKind{
		experiments.SchedBaseline, experiments.SchedBalancing, experiments.SchedTieBreak,
	} {
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.Run(experiments.RunConfig{
					Workload: "SDSC", JobCount: benchJobs,
					FailureNominal: 1000, Scheduler: kind, Param: 0.5, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Summary.Jobs != benchJobs {
					b.Fatalf("finished %d jobs", res.Summary.Jobs)
				}
			}
		})
	}
}

// BenchmarkPartitionFinders compares the three free-partition search
// algorithms (Section 5.1 and Appendix 9): naive exhaustive, POP-style
// projection, and the paper's shape-enumeration finder.
func BenchmarkPartitionFinders(b *testing.B) {
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	rng := rand.New(rand.NewSource(7))
	owner := int64(1)
	for id := 0; id < g.N(); id++ {
		if rng.Float64() < 0.3 {
			c := g.CoordOf(id)
			if err := gr.Allocate(torus.Partition{Base: c, Shape: torus.Shape{X: 1, Y: 1, Z: 1}}, owner); err != nil {
				b.Fatal(err)
			}
			owner++
		}
	}
	for _, f := range []partition.Finder{partition.NaiveFinder{}, partition.POPFinder{}, partition.ShapeFinder{}} {
		for _, size := range []int{8, 32} {
			b.Run(fmt.Sprintf("%s/size%d", f.Name(), size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					f.FreeOfSize(gr, size)
				}
			})
		}
	}
	b.Run("maxfree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			partition.MaxFree(gr)
		}
	})
}

// fastBenchGrid builds the fast-finder benchmark state: the paper's
// 4x4x8 torus at 50% occupancy (seeded, deterministic).
func fastBenchGrid(b *testing.B) *torus.Grid {
	b.Helper()
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	rng := rand.New(rand.NewSource(7))
	owner := int64(1)
	for id := 0; id < g.N(); id++ {
		if rng.Float64() < 0.5 {
			p := torus.Partition{Base: g.CoordOf(id), Shape: torus.Shape{X: 1, Y: 1, Z: 1}}
			if err := gr.Allocate(p, owner); err != nil {
				b.Fatal(err)
			}
			owner++
		}
	}
	// Top up to exactly half occupancy: the random draw lands near 50%
	// but the README's speedup claim pins ">= 50% occupied".
	for id := 0; id < g.N() && 2*gr.FreeCount() > g.N(); id++ {
		if gr.NodeFree(id) {
			p := torus.Partition{Base: g.CoordOf(id), Shape: torus.Shape{X: 1, Y: 1, Z: 1}}
			if err := gr.Allocate(p, owner); err != nil {
				b.Fatal(err)
			}
			owner++
		}
	}
	return gr
}

// BenchmarkFastFinderCold measures the fast finder's first query on an
// unseen grid: derived-state build plus a full enumeration, with no
// cache to help. The finder is rebuilt outside the timer every
// iteration.
func BenchmarkFastFinderCold(b *testing.B) {
	gr := fastBenchGrid(b)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f := partition.NewFastFinder(0)
		b.StartTimer()
		f.FreeOfSize(gr, 8)
	}
}

// BenchmarkFastFinderWarm measures the steady state the scheduler hot
// path sees between machine-state changes: repeated queries answered
// from the memo cache. The shape sub-benchmark is the baseline the
// README's >= 5x speedup claim is measured against — same grid, same
// size, per-query enumeration.
func BenchmarkFastFinderWarm(b *testing.B) {
	gr := fastBenchGrid(b)
	b.Run("fast", func(b *testing.B) {
		f := partition.NewFastFinder(0)
		f.FreeOfSize(gr, 8) // populate the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.FreeOfSize(gr, 8)
		}
	})
	b.Run("shape", func(b *testing.B) {
		f := partition.ShapeFinder{}
		for i := 0; i < b.N; i++ {
			f.FreeOfSize(gr, 8)
		}
	})
}

// BenchmarkFastFinderParallel measures raw enumeration with and
// without the worker pool — a fresh finder per iteration so the memo
// cache never answers (a toggled-cell scheme would not work: state
// recurrence means alternating occupancies re-hit the cache). The
// paper's 4x4x8 view enumerates in microseconds, where pool overhead
// dominates, so the pool is also measured on an 8x8x8 machine with a
// large request, where the task list is wide enough to split.
func BenchmarkFastFinderParallel(b *testing.B) {
	for _, tc := range []struct {
		spec string
		size int
	}{
		{"4x4x8", 8},
		{"8x8x8", 64},
	} {
		g, err := torus.Parse(tc.spec)
		if err != nil {
			b.Fatal(err)
		}
		gr := torus.NewGrid(g)
		rng := rand.New(rand.NewSource(7))
		owner := int64(1)
		for id := 0; id < g.N(); id++ {
			if rng.Float64() < 0.5 {
				p := torus.Partition{Base: g.CoordOf(id), Shape: torus.Shape{X: 1, Y: 1, Z: 1}}
				if err := gr.Allocate(p, owner); err != nil {
					b.Fatal(err)
				}
				owner++
			}
		}
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/size%d/workers=%d", tc.spec, tc.size, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					f := partition.NewFastFinder(workers)
					b.StartTimer()
					f.FreeOfSize(gr, tc.size)
				}
			})
		}
	}
}

// BenchmarkSchedulerDecision measures one Schedule() call — the
// telemetry subsystem's sched.decision.seconds timer wraps exactly
// this — on a representative mid-load state: a one-third-full machine,
// running jobs holding EASY reservations, and a queue whose head is
// blocked so the scheduler walks the whole backfill window. State is
// rebuilt outside the timer each iteration because Schedule mutates
// the grid and queue.
func BenchmarkSchedulerDecision(b *testing.B) {
	g := torus.BlueGeneL()
	s, err := core.NewScheduler(core.Config{Policy: core.Baseline{}, Backfill: core.BackfillEASY})
	if err != nil {
		b.Fatal(err)
	}
	mk := func(id int64, size, alloc int, est float64) *job.Job {
		return &job.Job{ID: job.ID(id), Size: size, AllocSize: alloc, Estimate: est, Actual: est}
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		gr := torus.NewGrid(g)
		rng := rand.New(rand.NewSource(7))
		var running []core.Running
		for id := 0; id < g.N(); id++ {
			if rng.Float64() < 0.3 {
				p := torus.Partition{Base: g.CoordOf(id), Shape: torus.Shape{X: 1, Y: 1, Z: 1}}
				owner := int64(1000 + id)
				if err := gr.Allocate(p, owner); err != nil {
					b.Fatal(err)
				}
				running = append(running, core.Running{
					Job:  mk(owner, 1, 1, 3600),
					Part: p, ExpFinish: 600 + float64(id),
				})
			}
		}
		q := job.NewQueue()
		q.Push(mk(1, 128, 128, 3600)) // blocked head forces a reservation
		for j := int64(2); j <= 9; j++ {
			q.Push(mk(j, 8, 8, 1800)) // backfill candidates
		}
		b.StartTimer()
		if _, err := s.Schedule(gr, q, running, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFinderAlgorithms measures FreeOfSize for each partition
// finder across machine scales — the per-call cost behind the
// finder.<algo>.seconds telemetry timers. The naive finder is skipped
// beyond the scheduling view (8x8x8 at O(M^9) is minutes per call).
func BenchmarkFinderAlgorithms(b *testing.B) {
	for _, spec := range []string{"4x4x8", "8x8x8"} {
		g, err := torus.Parse(spec)
		if err != nil {
			b.Fatal(err)
		}
		gr := torus.NewGrid(g)
		rng := rand.New(rand.NewSource(7))
		owner := int64(1)
		for id := 0; id < g.N(); id++ {
			if rng.Float64() < 0.3 {
				p := torus.Partition{Base: g.CoordOf(id), Shape: torus.Shape{X: 1, Y: 1, Z: 1}}
				if err := gr.Allocate(p, owner); err != nil {
					b.Fatal(err)
				}
				owner++
			}
		}
		for _, f := range []partition.Finder{partition.NaiveFinder{}, partition.POPFinder{}, partition.ShapeFinder{}} {
			if spec != "4x4x8" && f.Name() == "naive" {
				continue
			}
			b.Run(fmt.Sprintf("%s/%s", spec, f.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					f.FreeOfSize(gr, 8)
				}
			})
		}
	}
}

// BenchmarkAblationBackfill quantifies the backfilling design choice:
// strict FCFS vs aggressive vs EASY reservations.
func BenchmarkAblationBackfill(b *testing.B) {
	modes := []struct {
		name   string
		mode   core.BackfillMode
		strict bool
	}{
		{"none", core.BackfillNone, true},
		{"aggressive", core.BackfillAggressive, false},
		{"easy", core.BackfillEASY, false},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			var slowdown float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Run(experiments.RunConfig{
					Workload: "SDSC", JobCount: benchJobs, FailureNominal: 1000,
					Scheduler: experiments.SchedBalancing, Param: 0.1,
					Backfill: m.mode, BackfillStrict: m.strict, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				slowdown = res.Summary.AvgSlowdown
			}
			b.ReportMetric(slowdown, "avg-slowdown")
		})
	}
}

// BenchmarkAblationMigration quantifies the migration (compaction)
// pass.
func BenchmarkAblationMigration(b *testing.B) {
	for _, mig := range []bool{false, true} {
		b.Run(fmt.Sprintf("migration=%v", mig), func(b *testing.B) {
			var slowdown float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Run(experiments.RunConfig{
					Workload: "SDSC", JobCount: benchJobs, FailureNominal: 1000,
					Scheduler: experiments.SchedBalancing, Param: 0.1,
					Migration: mig, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				slowdown = res.Summary.AvgSlowdown
			}
			b.ReportMetric(slowdown, "avg-slowdown")
		})
	}
}

// BenchmarkAblationEstimates measures how inexact user estimates
// (requested time = actual * U[1, f]) affect the fault-aware
// scheduler: looser estimates stretch both EASY reservations and the
// predictors' query windows.
func BenchmarkAblationEstimates(b *testing.B) {
	for _, f := range []float64{1, 2, 5} {
		b.Run(fmt.Sprintf("factor=%g", f), func(b *testing.B) {
			var slowdown float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Run(experiments.RunConfig{
					Workload: "SDSC", JobCount: benchJobs, FailureNominal: 1000,
					Scheduler: experiments.SchedBalancing, Param: 0.1,
					EstimateFactor: f, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				slowdown = res.Summary.AvgSlowdown
			}
			b.ReportMetric(slowdown, "avg-slowdown")
		})
	}
}

// BenchmarkAblationMigrationCost contrasts free migration (the paper's
// model) with costed checkpoint-and-restart moves.
func BenchmarkAblationMigrationCost(b *testing.B) {
	for _, cost := range []float64{0, 300} {
		b.Run(fmt.Sprintf("cost=%gs", cost), func(b *testing.B) {
			var resp float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Run(experiments.RunConfig{
					Workload: "SDSC", JobCount: benchJobs, FailureNominal: 1000,
					Scheduler: experiments.SchedBalancing, Param: 0.1,
					Migration: true, MigrationCost: cost, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				resp = res.Summary.AvgResponse
			}
			b.ReportMetric(resp, "avg-response-s")
		})
	}
}

// BenchmarkAblationCombiner compares the two P_f formulas the paper
// gives: the Section 5.2.1 independence product and the Section 4.1
// max.
func BenchmarkAblationCombiner(b *testing.B) {
	for _, maxComb := range []bool{false, true} {
		name := "independent"
		if maxComb {
			name = "max"
		}
		b.Run(name, func(b *testing.B) {
			var slowdown float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Run(experiments.RunConfig{
					Workload: "SDSC", JobCount: benchJobs, FailureNominal: 1000,
					Scheduler: experiments.SchedBalancing, Param: 0.5,
					CombineMax: maxComb, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				slowdown = res.Summary.AvgSlowdown
			}
			b.ReportMetric(slowdown, "avg-slowdown")
		})
	}
}

// BenchmarkAblationPredictor compares the paper's log-oracle-with-knob
// predictors against the history-trained statistical predictor
// (predict.Learned), on both fault-aware algorithms.
func BenchmarkAblationPredictor(b *testing.B) {
	variants := []struct {
		name string
		kind experiments.SchedulerKind
		a    float64
	}{
		{"baseline", experiments.SchedBaseline, 0},
		{"balancing-knob-0.5", experiments.SchedBalancing, 0.5},
		{"balancing-learned", experiments.SchedBalancingLearned, 0},
		{"tiebreak-knob-0.5", experiments.SchedTieBreak, 0.5},
		{"tiebreak-learned", experiments.SchedTieBreakLearned, 0},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var kills float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Run(experiments.RunConfig{
					Workload: "SDSC", JobCount: benchJobs, FailureNominal: 1000,
					Scheduler: v.kind, Param: v.a, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				kills = float64(res.JobKills)
			}
			b.ReportMetric(kills, "job-kills")
		})
	}
}

// BenchmarkAblationCheckpointing compares the Section 8 checkpointing
// extension variants under a heavy failure load.
func BenchmarkAblationCheckpointing(b *testing.B) {
	variants := []struct {
		name string
		mut  func(*experiments.RunConfig)
	}{
		{"off", func(*experiments.RunConfig) {}},
		{"periodic", func(c *experiments.RunConfig) {
			c.CheckpointInterval = 1800
			c.CheckpointOverhead = 30
			c.CheckpointRestart = 30
		}},
		{"predictive", func(c *experiments.RunConfig) {
			c.CheckpointPredictive = true
			c.CheckpointInterval = 3600
			c.CheckpointOverhead = 30
			c.CheckpointRestart = 30
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var lost float64
			for i := 0; i < b.N; i++ {
				cfg := experiments.RunConfig{
					Workload: "SDSC", JobCount: benchJobs, FailureNominal: 2000,
					Scheduler: experiments.SchedBalancing, Param: 0.5, Seed: 1,
				}
				v.mut(&cfg)
				res, err := experiments.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				lost = res.Summary.LostWorkNodeSec
			}
			b.ReportMetric(lost/1e6, "lost-Mnode-s")
		})
	}
}

// BenchmarkKernelSteadyState measures the simulator's steady-state
// event loop: one op is one dispatched calendar event of an SDSC run
// under the baseline scheduler with the fast finder, telemetry on and
// tracing off — the exact hot path every sweep, tournament and branch
// grid grinds through. Simulator construction happens outside the
// timer (a fresh run is set up whenever the previous one drains), so
// ns/op and allocs/op describe the kernel.step path itself; the
// events/sec metric is the run-rate headline the README quotes. The
// bench-history guard pins allocs/op at zero for this benchmark.
func BenchmarkKernelSteadyState(b *testing.B) {
	ctx := context.Background()
	reg := telemetry.New()
	cfg, _, err := build.Default(experiments.RunConfig{
		Workload: "SDSC", JobCount: benchJobs, FailureNominal: 1000,
		Scheduler: experiments.SchedBaseline, Seed: 1, Finder: "fast",
		Telemetry: reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Warm-up run: counts the events one run dispatches and warms the
	// finder caches the steady state relies on.
	warm, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := warm.Run()
	if err != nil {
		b.Fatal(err)
	}
	perRun := res.EventsDispatched
	if perRun == 0 {
		b.Fatal("warm-up run dispatched no events")
	}

	b.ReportAllocs()
	b.ResetTimer()
	for done := int64(0); done < int64(b.N); {
		b.StopTimer()
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		upTo := perRun
		if left := int64(b.N) - done; left < upTo {
			upTo = left
		}
		if _, err := s.RunToEvent(ctx, upTo); err != nil {
			b.Fatal(err)
		}
		done += s.EventsDispatched()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkAnnealFinder measures the annealing placement search on the
// half-occupied paper machine: one Place call over the warm candidate
// set, the incremental cost the anneal finder adds on top of fast
// enumeration at every scheduling decision.
func BenchmarkAnnealFinder(b *testing.B) {
	gr := fastBenchGrid(b)
	f := partition.NewAnnealFinder(7, 0)
	cands := f.FreeOfSize(gr, 8)
	if len(cands) < 2 {
		b.Fatalf("degenerate candidate set: %d", len(cands))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Place(gr, cands)
	}
}

// BenchmarkContentionCharge measures one pairwise contention charge —
// the per-neighbor cost the dilation model pays on every job start.
func BenchmarkContentionCharge(b *testing.B) {
	g := torus.BlueGeneL()
	cfg, err := contention.FromLevel("medium")
	if err != nil {
		b.Fatal(err)
	}
	p := torus.Partition{Shape: torus.Shape{X: 2, Y: 2, Z: 4}}
	// Same (x, y) footprint, stacked along Z: the pair contends on the
	// four Z lines through the shared 2x2 column.
	q := torus.Partition{Base: torus.Coord{Z: 4}, Shape: torus.Shape{X: 2, Y: 2, Z: 4}}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += cfg.Charge(g, p, q)
	}
	if sink <= 0 {
		b.Fatal("benchmark partitions share no lines")
	}
}
