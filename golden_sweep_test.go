package bgsched

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"bgsched/internal/experiments"
)

// sweepGoldenDigest pins the byte-exact outcome of the golden sweep
// grid below: a sha256 over every run's event log and summary line.
// It was recorded before the staged run-builder / event-kernel refactor
// and must never change as a side effect of restructuring — only a
// deliberate semantic change to the simulator, the workload models or
// the failure generator may update it (and must say so in its commit).
const sweepGoldenDigest = "1d7acf1cd175c45269bcd28caa9a3c99df4212c6df9698511e1fd4bfa664d52a"

// The grid itself is exported as experiments.GoldenGrid so the
// golden-trace test (golden_trace_test.go) and tooling pin the same
// six points.

// sweepDigest executes the grid and folds every run's full JSONL event
// log plus a summary line into one digest. Float fields print through
// %v (Go's shortest round-trip form), so any numeric drift, however
// small, changes the digest.
func sweepDigest(t *testing.T) string {
	t.Helper()
	h := sha256.New()
	for i, cfg := range experiments.GoldenGrid() {
		var events bytes.Buffer
		cfg.EventLog = &events
		res, err := experiments.Run(cfg)
		if err != nil {
			t.Fatalf("grid point %d: %v", i, err)
		}
		fmt.Fprintf(h, "point %d: jobs=%d kills=%d failures=%d backfills=%d wait=%v resp=%v slow=%v util=%v unused=%v lost=%v\n",
			i, res.Summary.Jobs, res.JobKills, res.FailureEvents, res.Backfills,
			res.Summary.AvgWait, res.Summary.AvgResponse, res.Summary.AvgSlowdown,
			res.Summary.Utilization, res.Summary.UnusedCapacity, res.Summary.LostCapacity)
		h.Write(events.Bytes())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenSweepDigest is the sweep-level companion of the finder
// golden: the whole run-construction pipeline (workload synthesis, job
// mapping, failure generation, policy assembly) plus the simulator must
// reproduce the pinned bytes. Runs in ~a second at this scale.
func TestGoldenSweepDigest(t *testing.T) {
	if got := sweepDigest(t); got != sweepGoldenDigest {
		t.Fatalf("golden sweep digest drifted:\n got  %s\n want %s\n"+
			"(a refactor must be byte-identical; only deliberate semantic changes may re-pin)", got, sweepGoldenDigest)
	}
}

// TestGoldenSweepDigestStable guards the golden's own foundation: two
// in-process executions of the grid must agree, or the pin above could
// fail for reasons that are not regressions. This also exercises the
// artifact cache, since the second pass rebuilds every point warm.
func TestGoldenSweepDigestStable(t *testing.T) {
	a := sweepDigest(t)
	b := sweepDigest(t)
	if a != b {
		t.Fatalf("same grid executed twice produced different digests:\n%s\n%s", a, b)
	}
}
