module bgsched

go 1.22
