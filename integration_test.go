package bgsched

import (
	"reflect"
	"testing"

	"bgsched/internal/experiments"
)

// TestBalancingZeroConfidenceEqualsBaseline pins the degenerate-case
// equivalence the paper relies on: at confidence a = 0 the balancing
// algorithm's E_loss reduces to L_MFP, so it must make exactly the
// choices Krevat's baseline makes — the a = 0 points of Figures 3 and
// 6 are the baseline.
func TestBalancingZeroConfidenceEqualsBaseline(t *testing.T) {
	base := experiments.RunConfig{
		Workload: "SDSC", JobCount: 250, FailureNominal: 2000, Seed: 6,
	}
	cfgBase := base
	cfgBase.Scheduler = experiments.SchedBaseline
	cfgBal := base
	cfgBal.Scheduler = experiments.SchedBalancing
	cfgBal.Param = 0

	a, err := experiments.Run(cfgBase)
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiments.Run(cfgBal)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Outcomes, b.Outcomes) {
		t.Fatalf("balancing(a=0) diverged from baseline: slowdown %.3f vs %.3f",
			b.Summary.AvgSlowdown, a.Summary.AvgSlowdown)
	}
}

// TestTieBreakZeroAccuracyEqualsBaseline: with accuracy 0 the
// tie-breaking predictor always answers "no", so tie-breaking reduces
// to the baseline's first-of-the-tied choice.
func TestTieBreakZeroAccuracyEqualsBaseline(t *testing.T) {
	base := experiments.RunConfig{
		Workload: "NASA", JobCount: 250, FailureNominal: 2000, Seed: 7,
	}
	cfgBase := base
	cfgBase.Scheduler = experiments.SchedBaseline
	cfgTB := base
	cfgTB.Scheduler = experiments.SchedTieBreak
	cfgTB.Param = 0

	a, err := experiments.Run(cfgBase)
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiments.Run(cfgTB)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Outcomes, b.Outcomes) {
		t.Fatalf("tiebreak(a=0) diverged from baseline: slowdown %.3f vs %.3f",
			b.Summary.AvgSlowdown, a.Summary.AvgSlowdown)
	}
}

// TestFaultFreeSchedulersAgree: with no failures at all, all three
// schedulers see identical information and must produce identical
// schedules.
func TestFaultFreeSchedulersAgree(t *testing.T) {
	mk := func(kind experiments.SchedulerKind, a float64) experiments.RunConfig {
		return experiments.RunConfig{
			Workload: "LLNL", JobCount: 200, FailureNominal: 0,
			Scheduler: kind, Param: a, Seed: 8,
		}
	}
	ref, err := experiments.Run(mk(experiments.SchedBaseline, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []experiments.RunConfig{
		mk(experiments.SchedBalancing, 0.7),
		mk(experiments.SchedTieBreak, 0.7),
	} {
		res, err := experiments.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Outcomes, res.Outcomes) {
			t.Fatalf("%s diverged from baseline on a fault-free machine", cfg.Scheduler)
		}
	}
}

// TestMeshMachineEndToEnd drives the full pipeline on a mesh (no
// wraparound) and on a non-default torus geometry.
func TestMeshMachineEndToEnd(t *testing.T) {
	for _, machine := range []string{"4x4x8/mesh", "8x8x8", "2x2x2"} {
		res, err := experiments.Run(experiments.RunConfig{
			Machine: machine, Workload: "NASA", JobCount: 120,
			FailureNominal: 1000, Scheduler: experiments.SchedBalancing,
			Param: 0.3, Seed: 4,
		})
		if err != nil {
			t.Fatalf("%s: %v", machine, err)
		}
		if res.Summary.Jobs != 120 {
			t.Fatalf("%s: finished %d of 120", machine, res.Summary.Jobs)
		}
		sum := res.Summary.Utilization + res.Summary.UnusedCapacity + res.Summary.LostCapacity
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s: capacity sum %g", machine, sum)
		}
	}
	if _, err := experiments.Run(experiments.RunConfig{
		Machine: "0x1x1", Workload: "NASA", JobCount: 10,
	}); err == nil {
		t.Fatal("invalid machine accepted")
	}
}

// TestNoPredictionPenalty reproduces the paper's motivating claim
// (Section 1): introducing failures without any fault awareness
// significantly degrades slowdown relative to the fault-free machine.
func TestNoPredictionPenalty(t *testing.T) {
	mk := func(failures int) experiments.RunConfig {
		return experiments.RunConfig{
			Workload: "SDSC", JobCount: 400, FailureNominal: failures,
			Scheduler: experiments.SchedBaseline, Seed: 9,
		}
	}
	clean, err := experiments.Run(mk(0))
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := experiments.Run(mk(1000))
	if err != nil {
		t.Fatal(err)
	}
	if faulty.JobKills == 0 {
		t.Fatal("no kills at nominal 1000 failures")
	}
	if faulty.Summary.AvgSlowdown <= clean.Summary.AvgSlowdown {
		t.Fatalf("failures did not degrade slowdown: %.2f vs %.2f",
			faulty.Summary.AvgSlowdown, clean.Summary.AvgSlowdown)
	}
	if faulty.Summary.LostCapacity <= clean.Summary.LostCapacity {
		t.Fatalf("failures did not increase lost capacity: %.3f vs %.3f",
			faulty.Summary.LostCapacity, clean.Summary.LostCapacity)
	}
}
