// Package trace is the causal tracing layer of the experiment stack:
// a deterministic, allocation-light span/event tracer (NDJSON, one
// record per line), a bounded in-kernel flight recorder dumped on
// crashes, and a Chrome trace_event exporter.
//
// The tracer complements internal/telemetry: telemetry answers "how
// many / how fast" in aggregate, the trace answers "what happened to
// THIS job, and what caused it". Records fall into two classes:
//
//   - Domain records carry a simulated-time timestamp and are fully
//     deterministic: the same configuration produces byte-identical
//     record streams, whatever the build cache state or partition
//     finder. Golden tests pin these bytes, which makes the tracer
//     itself a determinism oracle.
//   - Wall-clock spans (build pipeline stages, service request
//     lifecycles, the simulator run as a whole) carry real durations
//     and are inherently non-deterministic. They are emitted only when
//     Options.WallSpans is set, so a tracer in its default
//     configuration stays deterministic end to end.
//
// Records within one tracer carry a monotonically increasing sequence
// number; the Cause field of a record holds the sequence number of the
// record that causally triggered it (a job kill points at the failure
// record that delivered the fault), so the chain behind any one
// outcome can be walked without timestamps ever being ambiguous.
//
// Design points mirror internal/telemetry: a nil *Tracer is valid
// everywhere and disables collection; records are hand-encoded into a
// reused buffer (no reflection, no maps) so the simulator hot path
// pays one mutexed append per record.
package trace

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"time"
)

// Field is one extra key/value attribute of a record, rendered in the
// order given. Values are either strings or JSON numbers.
type Field struct {
	Key   string
	Str   string
	Num   float64
	IsNum bool
}

// F builds a string-valued field.
func F(key, val string) Field { return Field{Key: key, Str: val} }

// Num builds a number-valued field, rendered in Go's shortest
// round-trip form (deterministic for a given value).
func Num(key string, val float64) Field { return Field{Key: key, Num: val, IsNum: true} }

// Fint builds an integer-valued field.
func Fint(key string, val int64) Field { return Field{Key: key, Num: float64(val), IsNum: true} }

// Rec is one domain record: an instantaneous event at a simulated-time
// timestamp, attributed to a category and optionally a job and a cause.
type Rec struct {
	Cat  string  // record category: "job", "sim", "meta", ...
	Name string  // event name within the category
	T    float64 // domain timestamp (simulated seconds); NaN omits the field
	Job  int64   // subject job id; 0 = none
	// Cause is the sequence number of the record that causally
	// triggered this one (0 = none): a kill points at its failure, a
	// requeue at its kill, and ordinary lifecycle records chain to the
	// job's previous record.
	Cause  uint64
	Fields []Field
}

// Options tunes a Tracer.
type Options struct {
	// WallSpans enables wall-clock span records (Begin/End) and the
	// wall-time fields they carry. Off by default: a default tracer
	// emits only deterministic domain records, the form pinned by the
	// golden-trace tests.
	WallSpans bool
}

// Tracer serialises records to a writer as NDJSON. Create with New; a
// nil *Tracer is valid and discards everything. Safe for concurrent
// use.
type Tracer struct {
	mu    sync.Mutex
	w     io.Writer
	buf   []byte
	seq   uint64
	err   error
	opt   Options
	start time.Time // wall origin for span offsets
}

// New returns a tracer writing NDJSON records to w. A nil w returns a
// nil tracer, so call sites need no guards.
func New(w io.Writer, opt Options) *Tracer {
	if w == nil {
		return nil
	}
	return &Tracer{w: w, opt: opt, start: time.Now(), buf: make([]byte, 0, 256)}
}

// Emit writes one domain record, stamping and returning its sequence
// number. Returns 0 on a nil tracer or after a write error.
func (t *Tracer) Emit(r Rec) uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return 0
	}
	t.seq++
	seq := t.seq
	b := t.buf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, seq, 10)
	if !math.IsNaN(r.T) {
		b = append(b, `,"t":`...)
		b = strconv.AppendFloat(b, r.T, 'g', -1, 64)
	}
	b = append(b, `,"cat":`...)
	b = appendString(b, r.Cat)
	b = append(b, `,"name":`...)
	b = appendString(b, r.Name)
	if r.Job != 0 {
		b = append(b, `,"job":`...)
		b = strconv.AppendInt(b, r.Job, 10)
	}
	if r.Cause != 0 {
		b = append(b, `,"cause":`...)
		b = strconv.AppendUint(b, r.Cause, 10)
	}
	b = appendFields(b, r.Fields)
	b = append(b, '}', '\n')
	t.buf = b
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		return 0
	}
	return seq
}

// Meta emits a metadata record describing the traced run (workload,
// finder, seed, ...). Meta records are deterministic for a fixed
// configuration but naturally differ across configurations, so
// byte-identity oracles simply do not emit them.
func (t *Tracer) Meta(fields ...Field) uint64 {
	return t.Emit(Rec{Cat: "meta", Name: "meta", T: math.NaN(), Fields: fields})
}

// Span is an in-progress wall-clock span started by Begin. The zero
// Span (returned by a nil or deterministic-only tracer) no-ops.
type Span struct {
	t      *Tracer
	cat    string
	name   string
	start  time.Time
	fields []Field
}

// Begin opens a wall-clock span. The span record is emitted by End;
// nothing is written if WallSpans is off.
func (t *Tracer) Begin(cat, name string, fields ...Field) Span {
	if t == nil || !t.opt.WallSpans {
		return Span{}
	}
	return Span{t: t, cat: cat, name: name, start: time.Now(), fields: fields}
}

// End closes the span and emits its record, carrying the wall start
// offset and duration in milliseconds plus the Begin and End fields.
// Returns the record's sequence number (0 when suppressed).
func (sp Span) End(fields ...Field) uint64 {
	t := sp.t
	if t == nil {
		return 0
	}
	end := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return 0
	}
	t.seq++
	seq := t.seq
	b := t.buf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, seq, 10)
	b = append(b, `,"cat":`...)
	b = appendString(b, sp.cat)
	b = append(b, `,"name":`...)
	b = appendString(b, sp.name)
	b = append(b, `,"span":true,"wall_start_ms":`...)
	b = strconv.AppendFloat(b, float64(sp.start.Sub(t.start).Microseconds())/1000, 'g', -1, 64)
	b = append(b, `,"wall_ms":`...)
	b = strconv.AppendFloat(b, float64(end.Sub(sp.start).Microseconds())/1000, 'g', -1, 64)
	b = appendFields(b, sp.fields)
	b = appendFields(b, fields)
	b = append(b, '}', '\n')
	t.buf = b
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		return 0
	}
	return seq
}

// Err surfaces the first write error, for end-of-run checks.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return fmt.Errorf("trace: %w", t.err)
	}
	return nil
}

// Seq returns the sequence number of the last record written.
func (t *Tracer) Seq() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// AdvanceTo moves the sequence counter forward to n, so the next record
// is stamped n+1. A restored simulation uses it to continue its trace
// stream exactly where the snapshotted prefix stopped (byte-identity
// across the snapshot boundary depends on it). The counter never moves
// backwards — a tracer that already emitted past n keeps its position,
// preserving monotone, collision-free sequence numbers.
func (t *Tracer) AdvanceTo(n uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n > t.seq {
		t.seq = n
	}
}

// appendFields renders extra attributes in the order given.
func appendFields(b []byte, fields []Field) []byte {
	for _, f := range fields {
		b = append(b, ',')
		b = appendString(b, f.Key)
		b = append(b, ':')
		if f.IsNum {
			b = strconv.AppendFloat(b, f.Num, 'g', -1, 64)
		} else {
			b = appendString(b, f.Str)
		}
	}
	return b
}

const hexDigits = "0123456789abcdef"

// appendString appends s as a JSON string literal. The fast path
// copies byte-wise; quotes, backslashes and control characters are
// escaped (\u00XX for controls), which is all JSON requires.
func appendString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c >= 0x20:
			b = append(b, c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		default:
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
	}
	return append(b, '"')
}
