package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if got := tr.Emit(Rec{Cat: "job", Name: "submit", T: 1}); got != 0 {
		t.Fatalf("nil Emit = %d, want 0", got)
	}
	if got := tr.Meta(F("k", "v")); got != 0 {
		t.Fatalf("nil Meta = %d, want 0", got)
	}
	sp := tr.Begin("sim", "run")
	if got := sp.End(); got != 0 {
		t.Fatalf("nil span End = %d, want 0", got)
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("nil Err = %v", err)
	}
	if tr.Seq() != 0 {
		t.Fatalf("nil Seq = %d", tr.Seq())
	}
	if New(nil, Options{}) != nil {
		t.Fatal("New(nil) should return a nil tracer")
	}
}

func TestEmitEncoding(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, Options{})
	s1 := tr.Emit(Rec{Cat: "job", Name: "submit", T: 10.5, Job: 3})
	s2 := tr.Emit(Rec{Cat: "job", Name: "kill", T: 12, Job: 3, Cause: s1,
		Fields: []Field{F("reason", "failure"), Num("lost_work", 1.5), Fint("node", 7)}})
	if s1 != 1 || s2 != 2 {
		t.Fatalf("seq = %d, %d; want 1, 2", s1, s2)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	want0 := `{"seq":1,"t":10.5,"cat":"job","name":"submit","job":3}`
	if lines[0] != want0 {
		t.Fatalf("line 0 = %s\nwant     %s", lines[0], want0)
	}
	want1 := `{"seq":2,"t":12,"cat":"job","name":"kill","job":3,"cause":1,"reason":"failure","lost_work":1.5,"node":7}`
	if lines[1] != want1 {
		t.Fatalf("line 1 = %s\nwant     %s", lines[1], want1)
	}
	// Every line must be valid JSON.
	for i, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
	}
}

func TestEmitOmitsNaNTime(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, Options{})
	tr.Emit(Rec{Cat: "sim", Name: "note", T: math.NaN()})
	if strings.Contains(buf.String(), `"t"`) {
		t.Fatalf("NaN time should be omitted: %s", buf.String())
	}
}

func TestStringEscaping(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, Options{})
	tr.Emit(Rec{Cat: "meta", Name: `a"b\c` + "\n\t\x01", T: math.NaN()})
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("escaped record not valid JSON: %v\n%s", err, buf.String())
	}
	if got := m["name"].(string); got != "a\"b\\c\n\t\x01" {
		t.Fatalf("round-trip = %q", got)
	}
}

func TestWallSpansGated(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, Options{}) // WallSpans off
	tr.Begin("build", "stage", F("stage", "geometry")).End()
	if buf.Len() != 0 {
		t.Fatalf("span emitted with WallSpans off: %s", buf.String())
	}

	tr = New(&buf, Options{WallSpans: true})
	seq := tr.Begin("build", "stage", F("stage", "geometry")).End(F("hit", "true"))
	if seq != 1 {
		t.Fatalf("span seq = %d, want 1", seq)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("span record not valid JSON: %v", err)
	}
	if m["span"] != true || m["stage"] != "geometry" || m["hit"] != "true" {
		t.Fatalf("span record = %v", m)
	}
	if _, ok := m["wall_ms"].(float64); !ok {
		t.Fatalf("span record missing wall_ms: %v", m)
	}
}

func TestDeterministicBytes(t *testing.T) {
	emit := func() string {
		var buf bytes.Buffer
		tr := New(&buf, Options{})
		a := tr.Emit(Rec{Cat: "job", Name: "submit", T: 0.1, Job: 1})
		tr.Emit(Rec{Cat: "job", Name: "start", T: 0.30000000000000004, Job: 1, Cause: a,
			Fields: []Field{Num("frac", 1.0/3.0)}})
		return buf.String()
	}
	if a, b := emit(), emit(); a != b {
		t.Fatalf("non-deterministic encoding:\n%s\n%s", a, b)
	}
}

type failWriter struct{ after int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.after <= 0 {
		return 0, errors.New("disk full")
	}
	w.after--
	return len(p), nil
}

func TestStickyWriteError(t *testing.T) {
	tr := New(&failWriter{after: 1}, Options{})
	if seq := tr.Emit(Rec{Cat: "a", Name: "ok", T: 1}); seq != 1 {
		t.Fatalf("first emit seq = %d", seq)
	}
	if seq := tr.Emit(Rec{Cat: "a", Name: "fail", T: 2}); seq != 0 {
		t.Fatalf("failed emit seq = %d, want 0", seq)
	}
	if err := tr.Err(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Err = %v", err)
	}
	// Error is sticky: further emits stay suppressed.
	if seq := tr.Emit(Rec{Cat: "a", Name: "again", T: 3}); seq != 0 {
		t.Fatalf("post-error emit seq = %d, want 0", seq)
	}
}

func TestConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, Options{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit(Rec{Cat: "job", Name: "tick", T: float64(i), Job: int64(g + 1)})
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	seen := make(map[uint64]bool, 800)
	for i, l := range lines {
		var m struct {
			Seq uint64 `json:"seq"`
		}
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("line %d corrupt under concurrency: %v", i, err)
		}
		if seen[m.Seq] {
			t.Fatalf("duplicate seq %d", m.Seq)
		}
		seen[m.Seq] = true
	}
}

// BenchmarkEmit pins the per-record cost: after warm-up, Emit into a
// pre-grown buffer should not allocate.
func BenchmarkEmit(b *testing.B) {
	var sink bytes.Buffer
	sink.Grow(1 << 20)
	tr := New(&sink, Options{})
	r := Rec{Cat: "job", Name: "start", T: 123.456, Job: 42, Cause: 7,
		Fields: []Field{F("partition", "0:2x0:2x0:2"), Num("wait", 1.25)}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sink.Len() > 1<<19 {
			sink.Reset()
		}
		tr.Emit(r)
	}
}
