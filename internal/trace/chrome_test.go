package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// emitLifecycle writes a small two-job lifecycle trace and returns the
// NDJSON bytes.
func emitLifecycle(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	tr := New(&buf, Options{})
	tr.Meta(F("workload", "test"), Fint("seed", 7))
	s1 := tr.Emit(Rec{Cat: "job", Name: "submit", T: 0, Job: 1})
	tr.Emit(Rec{Cat: "job", Name: "start", T: 5, Job: 1, Cause: s1})
	f := tr.Emit(Rec{Cat: "sim", Name: "failure", T: 8, Fields: []Field{Fint("node", 3)}})
	tr.Emit(Rec{Cat: "job", Name: "kill", T: 8, Job: 1, Cause: f})
	tr.Emit(Rec{Cat: "job", Name: "requeue", T: 8, Job: 1})
	tr.Emit(Rec{Cat: "job", Name: "start", T: 9, Job: 1})
	tr.Emit(Rec{Cat: "job", Name: "finish", T: 14, Job: 1})
	tr.Emit(Rec{Cat: "job", Name: "submit", T: 2, Job: 2})
	tr.Emit(Rec{Cat: "job", Name: "start", T: 6, Job: 2})
	tr.Emit(Rec{Cat: "job", Name: "finish", T: 12, Job: 2})
	return buf.Bytes()
}

func TestReadLogRoundTrip(t *testing.T) {
	recs, err := ReadLog(bytes.NewReader(emitLifecycle(t)))
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(recs) != 11 {
		t.Fatalf("got %d records, want 11", len(recs))
	}
	if recs[0].Cat != "meta" || !math.IsNaN(recs[0].T) {
		t.Fatalf("meta record = %+v", recs[0])
	}
	if recs[0].Extra["workload"] != "test" || recs[0].Extra["seed"] != float64(7) {
		t.Fatalf("meta extras = %v", recs[0].Extra)
	}
	kill := recs[4]
	if kill.Name != "kill" || kill.Cause != recs[3].Seq {
		t.Fatalf("kill record = %+v, want cause=%d", kill, recs[3].Seq)
	}
	if node := recs[3].Extra["node"]; node != float64(3) {
		t.Fatalf("failure node = %v", node)
	}
}

func TestReadLogRejectsMalformed(t *testing.T) {
	_, err := ReadLog(strings.NewReader("{\"seq\":1}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line 2 failure", err)
	}
}

func TestJobTimeline(t *testing.T) {
	recs, err := ReadLog(bytes.NewReader(emitLifecycle(t)))
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	tl := JobTimeline(recs, 1)
	wantNames := []string{"submit", "start", "kill", "requeue", "start", "finish"}
	if len(tl) != len(wantNames) {
		t.Fatalf("timeline len = %d, want %d", len(tl), len(wantNames))
	}
	for i, want := range wantNames {
		if tl[i].Name != want {
			t.Fatalf("timeline[%d] = %s, want %s", i, tl[i].Name, want)
		}
	}
	if JobTimeline(recs, 99) != nil {
		t.Fatal("timeline of unknown job should be empty")
	}
}

func TestWriteChrome(t *testing.T) {
	recs, err := ReadLog(bytes.NewReader(emitLifecycle(t)))
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	var out bytes.Buffer
	if err := WriteChrome(&out, recs); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			PID   int     `json:"pid"`
			TID   int64   `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output not valid JSON: %v", err)
	}
	// 10 instants (meta skipped) + synthesized phase spans:
	// job 1: wait(0-5), run(5-8), wait(8-9), run(9-14); job 2: wait(2-6), run(6-12).
	var instants, spans int
	type spanKey struct {
		name    string
		tid     int64
		ts, dur float64
	}
	gotSpans := map[spanKey]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "i":
			instants++
		case "X":
			spans++
			gotSpans[spanKey{e.Name, e.TID, e.TS, e.Dur}] = true
		}
	}
	if instants != 10 {
		t.Fatalf("instants = %d, want 10", instants)
	}
	if spans != 6 {
		t.Fatalf("phase spans = %d, want 6", spans)
	}
	for _, want := range []spanKey{
		{"wait", 1, 0, 5e6},
		{"run", 1, 5e6, 3e6},
		{"wait", 1, 8e6, 1e6},
		{"run", 1, 9e6, 5e6},
		{"wait", 2, 2e6, 4e6},
		{"run", 2, 6e6, 6e6},
	} {
		if !gotSpans[want] {
			t.Fatalf("missing synthesized span %+v\ngot %v", want, gotSpans)
		}
	}
}

func TestWriteChromeSplitsConcatenatedRuns(t *testing.T) {
	log := emitLifecycle(t)
	recs, err := ReadLog(bytes.NewReader(append(append([]byte(nil), log...), log...)))
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	var out bytes.Buffer
	if err := WriteChrome(&out, recs); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			PID int `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	pids := map[int]bool{}
	for _, e := range doc.TraceEvents {
		pids[e.PID] = true
	}
	if len(pids) != 2 {
		t.Fatalf("concatenated runs got pids %v, want 2 distinct", pids)
	}
}
