package trace

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"bgsched/internal/resilience"
)

// FlightEvent is one kernel dispatch as remembered by the flight
// recorder: the raw calendar entry, before any subsystem interprets it.
type FlightEvent struct {
	T     float64 // simulated time of the dispatch
	Seq   int64   // kernel calendar sequence number
	Kind  string  // event kind name ("arrival", "finish", "failure", ...)
	Job   int64   // subject job id; 0 = none
	Epoch int     // job epoch the event was scheduled under
	Node  int     // subject node for failure/nodeup events
}

// FlightRecorder keeps the last N kernel events in a ring so that a
// crash — invariant violation, contained panic, or SIGQUIT — can dump
// the dispatch history that led up to it. Recording is a mutexed copy
// into a fixed ring (no allocation); a nil *FlightRecorder no-ops.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []FlightEvent
	next  int  // ring slot for the next event
	wrap  bool // ring has wrapped at least once
	w     io.Writer
	label string
}

// NewFlightRecorder returns a recorder holding the last n events
// (n <= 0 selects 256). Dump writes to w; a nil w falls back to
// stderr at dump time. label identifies the run in dump headers.
func NewFlightRecorder(n int, w io.Writer, label string) *FlightRecorder {
	if n <= 0 {
		n = 256
	}
	return &FlightRecorder{ring: make([]FlightEvent, n), w: w, label: label}
}

// Record remembers one kernel event. No-op on a nil recorder.
func (f *FlightRecorder) Record(e FlightEvent) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.ring[f.next] = e
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.wrap = true
	}
	f.mu.Unlock()
}

// Events returns the recorded events, oldest first.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.eventsLocked()
}

func (f *FlightRecorder) eventsLocked() []FlightEvent {
	if !f.wrap {
		return append([]FlightEvent(nil), f.ring[:f.next]...)
	}
	out := make([]FlightEvent, 0, len(f.ring))
	out = append(out, f.ring[f.next:]...)
	return append(out, f.ring[:f.next]...)
}

// Dump writes the recorded history to the recorder's writer (stderr
// when none was configured), headed by the reason for the dump.
func (f *FlightRecorder) Dump(reason string) error {
	if f == nil {
		return nil
	}
	w := f.w
	if w == nil {
		w = os.Stderr
	}
	return f.DumpTo(w, reason)
}

// DumpTo writes the recorded history to w, oldest event first.
func (f *FlightRecorder) DumpTo(w io.Writer, reason string) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	events := f.eventsLocked()
	label := f.label
	f.mu.Unlock()
	if label == "" {
		label = "run"
	}
	if _, err := fmt.Fprintf(w, "=== flight recorder dump: %s (%s, %d event(s)) ===\n",
		label, reason, len(events)); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "t=%g seq=%d kind=%s job=%d epoch=%d node=%d\n",
			e.T, e.Seq, e.Kind, e.Job, e.Epoch, e.Node); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "=== end flight recorder dump: %s ===\n", label)
	return err
}

// Global registry of live recorders, so process-wide dump triggers
// (SIGQUIT, contained panics, an HTTP debug endpoint) can reach every
// in-flight simulation without threading a handle through each layer.
var (
	flightMu  sync.Mutex
	flights   = map[*FlightRecorder]struct{}{}
	installMu sync.Mutex
	sigOnce   bool
	panicOnce bool
)

// RegisterFlight adds f to the set of live recorders covered by
// process-wide dumps. No-op on nil.
func RegisterFlight(f *FlightRecorder) {
	if f == nil {
		return
	}
	flightMu.Lock()
	flights[f] = struct{}{}
	flightMu.Unlock()
}

// UnregisterFlight removes f from the live set; pair with
// RegisterFlight via defer around a run.
func UnregisterFlight(f *FlightRecorder) {
	if f == nil {
		return
	}
	flightMu.Lock()
	delete(flights, f)
	flightMu.Unlock()
}

// DumpFlights dumps every live recorder to w and returns how many were
// dumped.
func DumpFlights(w io.Writer, reason string) int {
	flightMu.Lock()
	live := make([]*FlightRecorder, 0, len(flights))
	for f := range flights {
		live = append(live, f)
	}
	flightMu.Unlock()
	for _, f := range live {
		_ = f.DumpTo(w, reason)
	}
	return len(live)
}

// InstallFlightSignalDump arranges for SIGQUIT to dump every live
// flight recorder to stderr (alongside Go's own goroutine dump).
// Idempotent; safe to call from every CLI main.
func InstallFlightSignalDump() {
	installMu.Lock()
	defer installMu.Unlock()
	if sigOnce {
		return
	}
	sigOnce = true
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		for range ch {
			DumpFlights(os.Stderr, "SIGQUIT")
		}
	}()
}

// InstallFlightPanicDump arranges for panics contained by
// resilience.Safe to dump every live flight recorder to stderr, so the
// kernel history survives even when the process does not crash.
// Idempotent.
func InstallFlightPanicDump() {
	installMu.Lock()
	defer installMu.Unlock()
	if panicOnce {
		return
	}
	panicOnce = true
	resilience.RegisterPanicHook(func(pe *resilience.PanicError) {
		DumpFlights(os.Stderr, fmt.Sprintf("contained panic: %v", pe.Value))
	})
}
