package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Record is one parsed NDJSON trace record, the read-side counterpart
// of Rec/Span emission. Extra holds attributes beyond the fixed schema.
type Record struct {
	Seq         uint64
	T           float64 // NaN when the record carried no domain time
	Cat         string
	Name        string
	Job         int64
	Cause       uint64
	Span        bool
	WallStartMS float64
	WallMS      float64
	Extra       map[string]any
}

// fixedKeys are the schema fields lifted out of the JSON object; the
// rest lands in Extra.
var fixedKeys = map[string]bool{
	"seq": true, "t": true, "cat": true, "name": true, "job": true,
	"cause": true, "span": true, "wall_start_ms": true, "wall_ms": true,
}

// ReadLog parses an NDJSON span log into records, in file order.
// Blank lines are skipped; a malformed line fails with its line number.
func ReadLog(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		rec := Record{T: math.NaN()}
		if v, ok := m["seq"].(float64); ok {
			rec.Seq = uint64(v)
		}
		if v, ok := m["t"].(float64); ok {
			rec.T = v
		}
		rec.Cat, _ = m["cat"].(string)
		rec.Name, _ = m["name"].(string)
		if v, ok := m["job"].(float64); ok {
			rec.Job = int64(v)
		}
		if v, ok := m["cause"].(float64); ok {
			rec.Cause = uint64(v)
		}
		rec.Span, _ = m["span"].(bool)
		if v, ok := m["wall_start_ms"].(float64); ok {
			rec.WallStartMS = v
		}
		if v, ok := m["wall_ms"].(float64); ok {
			rec.WallMS = v
		}
		for k, v := range m {
			if fixedKeys[k] {
				continue
			}
			if rec.Extra == nil {
				rec.Extra = make(map[string]any)
			}
			rec.Extra[k] = v
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read log: %w", err)
	}
	return out, nil
}

// JobTimeline returns job's records in sequence order — the causal
// lifecycle timeline (submit → allocate → start → ... → finish).
func JobTimeline(recs []Record, job int64) []Record {
	var out []Record
	for _, r := range recs {
		if r.Job == job {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// chromeEvent is one entry of Chrome's trace_event JSON format
// (chrome://tracing, Perfetto). Timestamps are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int64          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome converts parsed trace records into Chrome trace_event
// JSON, loadable in chrome://tracing or Perfetto.
//
// Mapping: each traced run becomes a Chrome process (a new pid starts
// whenever the record sequence resets, so concatenated logs from a
// sweep render side by side); each job becomes a thread within it.
// Domain records become instant events at t seconds → ts microseconds
// (one simulated second = one rendered microsecond); per-job "wait"
// (submit→start) and "run" (start→finish/kill) phase spans are
// synthesized from the lifecycle records so the timeline reads as
// bars, not just ticks. Wall-clock spans render on tid 0 at their real
// offsets.
func WriteChrome(w io.Writer, recs []Record) error {
	var events []chromeEvent
	pid := 0
	var lastSeq uint64
	// Per-(pid,job) pending phase starts for span synthesis.
	type jobKey struct {
		pid int
		job int64
	}
	type phaseStart struct {
		name string
		t    float64
	}
	pending := map[jobKey][]phaseStart{}
	closePhase := func(k jobKey, name string, end float64) {
		stack := pending[k]
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].name != name {
				continue
			}
			events = append(events, chromeEvent{
				Name: name, Cat: "job", Phase: "X",
				TS: stack[i].t * 1e6, Dur: (end - stack[i].t) * 1e6,
				PID: k.pid, TID: k.job,
			})
			pending[k] = append(stack[:i], stack[i+1:]...)
			return
		}
	}
	for _, r := range recs {
		if r.Seq <= lastSeq || (r.Cat == "meta" && lastSeq != 0) {
			pid++
		}
		lastSeq = r.Seq
		if r.Cat == "meta" {
			continue
		}
		if r.Span {
			events = append(events, chromeEvent{
				Name: r.Name, Cat: r.Cat, Phase: "X",
				TS: r.WallStartMS * 1000, Dur: r.WallMS * 1000,
				PID: pid, TID: 0, Args: r.Extra,
			})
			continue
		}
		if math.IsNaN(r.T) {
			continue
		}
		args := r.Extra
		if r.Cause != 0 {
			args = map[string]any{"cause": r.Cause}
			for k, v := range r.Extra {
				args[k] = v
			}
		}
		events = append(events, chromeEvent{
			Name: r.Name, Cat: r.Cat, Phase: "i",
			TS: r.T * 1e6, PID: pid, TID: r.Job, Scope: "t", Args: args,
		})
		if r.Job == 0 {
			continue
		}
		k := jobKey{pid, r.Job}
		switch r.Name {
		case "submit", "requeue":
			pending[k] = append(pending[k], phaseStart{"wait", r.T})
		case "start":
			closePhase(k, "wait", r.T)
			pending[k] = append(pending[k], phaseStart{"run", r.T})
		case "finish", "kill":
			closePhase(k, "run", r.T)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}
