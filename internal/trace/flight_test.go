package trace

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"bgsched/internal/resilience"
)

func TestNilFlightRecorderIsSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightEvent{T: 1})
	if got := f.Events(); got != nil {
		t.Fatalf("nil Events = %v", got)
	}
	if err := f.Dump("test"); err != nil {
		t.Fatalf("nil Dump = %v", err)
	}
	RegisterFlight(nil)
	UnregisterFlight(nil)
}

func TestFlightRingOrder(t *testing.T) {
	f := NewFlightRecorder(4, nil, "ring-test")
	for i := 1; i <= 3; i++ {
		f.Record(FlightEvent{Seq: int64(i), Kind: "arrival"})
	}
	got := f.Events()
	if len(got) != 3 || got[0].Seq != 1 || got[2].Seq != 3 {
		t.Fatalf("pre-wrap events = %v", got)
	}
	// Push past capacity: ring keeps the last 4, oldest first.
	for i := 4; i <= 9; i++ {
		f.Record(FlightEvent{Seq: int64(i), Kind: "finish"})
	}
	got = f.Events()
	if len(got) != 4 {
		t.Fatalf("post-wrap len = %d, want 4", len(got))
	}
	for i, e := range got {
		if want := int64(6 + i); e.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestFlightDefaultCapacity(t *testing.T) {
	f := NewFlightRecorder(0, nil, "")
	for i := 0; i < 300; i++ {
		f.Record(FlightEvent{Seq: int64(i)})
	}
	if got := len(f.Events()); got != 256 {
		t.Fatalf("default capacity = %d, want 256", got)
	}
}

func TestFlightDumpFormat(t *testing.T) {
	var buf bytes.Buffer
	f := NewFlightRecorder(8, &buf, "sim-42")
	f.Record(FlightEvent{T: 1.5, Seq: 10, Kind: "failure", Job: 3, Epoch: 2, Node: 7})
	if err := f.Dump("invariant violation"); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"flight recorder dump: sim-42 (invariant violation, 1 event(s))",
		"t=1.5 seq=10 kind=failure job=3 epoch=2 node=7",
		"end flight recorder dump: sim-42",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestDumpFlightsRegistry(t *testing.T) {
	a := NewFlightRecorder(4, nil, "a")
	b := NewFlightRecorder(4, nil, "b")
	RegisterFlight(a)
	RegisterFlight(b)
	defer UnregisterFlight(a)
	a.Record(FlightEvent{Seq: 1, Kind: "arrival"})

	var buf bytes.Buffer
	if n := DumpFlights(&buf, "test"); n != 2 {
		t.Fatalf("DumpFlights = %d, want 2", n)
	}
	out := buf.String()
	if !strings.Contains(out, "dump: a") || !strings.Contains(out, "dump: b") {
		t.Fatalf("registry dump missing a recorder:\n%s", out)
	}

	UnregisterFlight(b)
	buf.Reset()
	if n := DumpFlights(&buf, "test"); n != 1 {
		t.Fatalf("after unregister DumpFlights = %d, want 1", n)
	}
}

func TestPanicHookFires(t *testing.T) {
	var got *resilience.PanicError
	resilience.RegisterPanicHook(func(pe *resilience.PanicError) { got = pe })
	err := resilience.Safe(func() error { panic("boom") })
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Safe = %v, want PanicError", err)
	}
	if got == nil || fmt.Sprint(got.Value) != "boom" {
		t.Fatalf("hook observed %v", got)
	}
}

func TestInstallFlightPanicDumpIdempotent(t *testing.T) {
	// Just exercise idempotency; the hook dumps to stderr which we
	// don't capture here.
	InstallFlightPanicDump()
	InstallFlightPanicDump()
	InstallFlightSignalDump()
	InstallFlightSignalDump()
}
