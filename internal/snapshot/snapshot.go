// Package snapshot serializes the full state of a simulation at an
// event boundary — the kernel calendar, the torus occupancy, the wait
// queue, per-job execution state, metrics accumulators and each
// registered subsystem's private state — into a canonical, content-
// hashed encoding, and decodes it back for deterministic continuation.
//
// The contract the equivalence suite pins: for any configuration and
// any event seq S, running to S, snapshotting, restoring into a fresh
// simulator and continuing produces byte-identical output (event log,
// causal trace, metrics) to the uninterrupted run. On top of that sits
// branch replay (experiments.ResumeFromSnapshot): restore the state but
// swap the scheduling policy, predictor or partition finder, and replay
// the identical future — the paper's "what if policy B had taken over
// mid-week" counterfactual, impossible with whole-run comparisons.
//
// Encoding. The state is marshalled as one deterministic JSON body
// (struct fields only — no maps — so field order is fixed), prefixed by
// a single-line header carrying the format magic, version, body length
// and the body's SHA-256. Decode verifies all four before unmarshalling
// strictly, so corrupted, truncated or spliced snapshot files are
// rejected with an error — never a panic, never a silent mis-restore.
package snapshot

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"bgsched/internal/metrics"
	"bgsched/internal/torus"
)

// Format is the header magic of the snapshot encoding.
const Format = "bgsched-snapshot"

// Version is the current encoding version. Decode rejects mismatches:
// state layouts are frozen per version, not migrated.
const Version = 1

// World identifies the immutable inputs a snapshot was taken against.
// Restore refuses a config whose world differs: branch replay may swap
// the policy, predictor or finder, but never the machine, the job log
// or the failure trace — otherwise the "identical mid-flight state"
// claim would be vacuous.
type World struct {
	Geometry string // torus geometry spec
	Jobs     string // SHA-256 over the canonical job list
	Failures string // SHA-256 over the failure trace
}

// Event is one pending calendar entry, preserving the (time, seq)
// ordering key that makes simultaneous events replay deterministically.
type Event struct {
	Time  float64
	Seq   int64
	Kind  int
	Job   int64
	Epoch int
	Node  int
}

// RunState is the mutable execution state of one running job.
type RunState struct {
	Job                int64
	Part               torus.Partition
	Start              float64
	Epoch              int
	FinishTime         float64
	ExpFinish          float64
	OverheadSoFar      float64
	SavedAtStart       float64
	RestartPenaltyPaid float64
}

// JobProgress is the per-job state that survives restarts.
type JobProgress struct {
	Job        int64
	FirstStart float64
	Started    bool
	Restarts   int
	LostWork   float64
	SavedWork  float64
	LastStart  float64
	NextEpoch  int
	LastSeq    uint64
}

// Counters are the run's conservation and result counters.
type Counters struct {
	Pending       int
	Starts        int
	Finishes      int
	Kills         int
	FailureEvents int
	JobKills      int
	Migrations    int
	Checkpoints   int
	Backfills     int
	LastFinishSeq uint64
}

// TimelinePoint mirrors sim.TimelinePoint for snapshots taken with
// RecordTimeline on.
type TimelinePoint struct {
	Time        float64
	FreeNodes   int
	QueueJobs   int
	QueueDemand int
	Running     int
}

// SubsystemState carries one registered subsystem's private state,
// produced by its SnapshotState hook and fed back through RestoreState.
type SubsystemState struct {
	Name string
	Data json.RawMessage
}

// State is the complete serialized simulator state at an event seq.
type State struct {
	World World

	// Now is the simulation clock; Dispatched the number of events the
	// kernel has dispatched since the start of the run (the snapshot's
	// event seq).
	Now        float64
	Dispatched int64

	// Calendar holds the pending events sorted by (Time, Seq);
	// NextEventSeq is the calendar's next insertion sequence and must
	// exceed every pending Seq.
	Calendar     []Event
	NextEventSeq int64

	// Owners is the torus occupancy, one owner id per dense node id
	// (0 free, -2 downtime hold, >0 the owning job).
	Owners []int64

	// Queue holds the waiting job ids in FCFS order.
	Queue []int64

	Running  []RunState    // sorted by Job
	Progress []JobProgress // sorted by Job; one entry per job in the run
	Outcomes []metrics.Outcome

	Counters Counters
	Tracker  metrics.TrackerState

	// ElogSeq and TraceSeq are the next-output sequence origins of the
	// event log and the causal trace, so a continued run's streams pick
	// up exactly where the prefix stopped (byte-identity depends on it).
	ElogSeq  uint64
	TraceSeq uint64

	Timeline []TimelinePoint `json:",omitempty"`

	Subsystems []SubsystemState `json:",omitempty"`

	// Config optionally embeds the canonical parent run configuration
	// (experiments.RunConfig), letting a snapshot file be restored
	// without re-supplying the original flags. The simulator ignores it.
	Config json.RawMessage `json:",omitempty"`
}

// header is the one-line envelope preceding the body.
type header struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Bytes   int    `json:"bytes"`
	SHA256  string `json:"sha256"`
}

// body returns the canonical body bytes. State is structs-only (the
// one map-shaped piece, subsystem data, is pre-rendered RawMessage), so
// encoding/json's fixed field order makes the bytes deterministic.
func (st *State) body() ([]byte, error) {
	b, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("snapshot: encode: %w", err)
	}
	return b, nil
}

// Hash returns the SHA-256 hex of the canonical body: the snapshot's
// content hash. Two states hash equally iff their canonical encodings
// are byte-identical.
func (st *State) Hash() (string, error) {
	b, err := st.body()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Encode writes the canonical encoding (header line, body, newline) and
// returns the content hash.
func (st *State) Encode(w io.Writer) (string, error) {
	b, err := st.body()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	h := header{Format: Format, Version: Version, Bytes: len(b), SHA256: hex.EncodeToString(sum[:])}
	hb, err := json.Marshal(h)
	if err != nil {
		return "", fmt.Errorf("snapshot: encode header: %w", err)
	}
	for _, chunk := range [][]byte{hb, {'\n'}, b, {'\n'}} {
		if _, err := w.Write(chunk); err != nil {
			return "", fmt.Errorf("snapshot: write: %w", err)
		}
	}
	return h.SHA256, nil
}

// Decode reads one snapshot, verifying the format magic, version, body
// length and content hash before strictly unmarshalling. Every
// corruption mode — truncation, bit flips, spliced tails, trailing
// garbage — returns an error.
func Decode(r io.Reader) (*State, string, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, "", fmt.Errorf("snapshot: read header: %w", err)
	}
	var h header
	hdec := json.NewDecoder(bytes.NewReader(line))
	hdec.DisallowUnknownFields()
	if err := hdec.Decode(&h); err != nil {
		return nil, "", fmt.Errorf("snapshot: parse header: %w", err)
	}
	if h.Format != Format {
		return nil, "", fmt.Errorf("snapshot: not a snapshot file (format %q, want %q)", h.Format, Format)
	}
	if h.Version != Version {
		return nil, "", fmt.Errorf("snapshot: unsupported version %d (have %d)", h.Version, Version)
	}
	if h.Bytes < 0 || h.Bytes > maxBodyBytes {
		return nil, "", fmt.Errorf("snapshot: implausible body length %d", h.Bytes)
	}
	body := make([]byte, h.Bytes)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, "", fmt.Errorf("snapshot: truncated body (want %d bytes): %w", h.Bytes, err)
	}
	sum := sha256.Sum256(body)
	if got := hex.EncodeToString(sum[:]); got != h.SHA256 {
		return nil, "", fmt.Errorf("snapshot: content hash mismatch (header %s, body %s)", h.SHA256, got)
	}
	// Only the body's trailing newline may follow; anything else is a
	// spliced or concatenated file.
	switch tail, err := io.ReadAll(br); {
	case err != nil:
		return nil, "", fmt.Errorf("snapshot: read tail: %w", err)
	case len(tail) > 1 || (len(tail) == 1 && tail[0] != '\n'):
		return nil, "", fmt.Errorf("snapshot: %d bytes of trailing garbage after body", len(tail))
	}
	var st State
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&st); err != nil {
		return nil, "", fmt.Errorf("snapshot: decode body: %w", err)
	}
	if err := st.Validate(); err != nil {
		return nil, "", err
	}
	return &st, h.SHA256, nil
}

// maxBodyBytes bounds the body allocation during decode, so a forged
// header cannot request an absurd buffer. Real snapshots are a few
// hundred KB at most (the calendar dominates).
const maxBodyBytes = 1 << 30

// Validate checks the structural invariants a well-formed state must
// satisfy, independent of any configuration: calendar ordering and seq
// bounds, sorted running/progress lists, and non-negative counters.
// Configuration-dependent checks (occupancy consistency, job identity)
// happen at restore, where the world is known.
func (st *State) Validate() error {
	if st.Dispatched < 0 {
		return fmt.Errorf("snapshot: negative dispatched count %d", st.Dispatched)
	}
	for i, e := range st.Calendar {
		if i > 0 {
			prev := st.Calendar[i-1]
			if e.Time < prev.Time || (e.Time == prev.Time && e.Seq <= prev.Seq) {
				return fmt.Errorf("snapshot: calendar not sorted at entry %d", i)
			}
		}
		if e.Seq < 0 || e.Seq >= st.NextEventSeq {
			return fmt.Errorf("snapshot: calendar entry %d seq %d outside [0, %d)", i, e.Seq, st.NextEventSeq)
		}
		if e.Time < 0 || e.Time < st.Now {
			return fmt.Errorf("snapshot: calendar entry %d at t=%g behind the clock t=%g", i, e.Time, st.Now)
		}
	}
	for i := 1; i < len(st.Running); i++ {
		if st.Running[i].Job <= st.Running[i-1].Job {
			return fmt.Errorf("snapshot: running list not sorted by job at entry %d", i)
		}
	}
	for i := 1; i < len(st.Progress); i++ {
		if st.Progress[i].Job <= st.Progress[i-1].Job {
			return fmt.Errorf("snapshot: progress list not sorted by job at entry %d", i)
		}
	}
	c := st.Counters
	for name, v := range map[string]int{
		"Pending": c.Pending, "Starts": c.Starts, "Finishes": c.Finishes, "Kills": c.Kills,
		"FailureEvents": c.FailureEvents, "JobKills": c.JobKills, "Migrations": c.Migrations,
		"Checkpoints": c.Checkpoints, "Backfills": c.Backfills,
	} {
		if v < 0 {
			return fmt.Errorf("snapshot: negative counter %s = %d", name, v)
		}
	}
	if c.Finishes != len(st.Outcomes) {
		return fmt.Errorf("snapshot: %d finishes but %d outcomes", c.Finishes, len(st.Outcomes))
	}
	return nil
}

// HashBytes is a convenience for digest pinning: the SHA-256 hex of b.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
