package snapshot

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"bgsched/internal/metrics"
	"bgsched/internal/torus"
)

// sampleState builds a small but fully populated well-formed state.
func sampleState() *State {
	return &State{
		World: World{Geometry: "4x4x8", Jobs: strings.Repeat("a", 64), Failures: strings.Repeat("b", 64)},
		Now:   100,

		Dispatched: 7,
		Calendar: []Event{
			{Time: 100, Seq: 9, Kind: 1, Job: 2, Epoch: 0},
			{Time: 150, Seq: 4, Kind: 2, Node: 17},
			{Time: 150, Seq: 8, Kind: 1, Job: 3, Epoch: 1},
		},
		NextEventSeq: 10,
		Owners:       []int64{0, 2, 2, 0, 3, 3, 0, -2},
		Queue:        []int64{5, 4},
		Running: []RunState{
			{Job: 2, Part: torus.Partition{Shape: torus.Shape{X: 1, Y: 1, Z: 2}}, Start: 50, FinishTime: 100, ExpFinish: 100},
			{Job: 3, Part: torus.Partition{Base: torus.Coord{Z: 4}, Shape: torus.Shape{X: 1, Y: 1, Z: 2}}, Start: 60, Epoch: 1, FinishTime: 150, ExpFinish: 160},
		},
		Progress: []JobProgress{
			{Job: 1, Started: true, NextEpoch: 1, LastSeq: 3},
			{Job: 2, Started: true, NextEpoch: 1, LastSeq: 5},
			{Job: 3, Started: true, Restarts: 1, LostWork: 120, NextEpoch: 2, LastSeq: 7},
			{Job: 4}, {Job: 5},
		},
		Outcomes: []metrics.Outcome{
			{ID: 1, Arrival: 0, FirstStart: 0, LastStart: 0, Finish: 40, Estimate: 40, Actual: 40, Size: 2, AllocSize: 2},
		},
		Counters: Counters{Pending: 4, Starts: 4, Finishes: 1, Kills: 1, FailureEvents: 2, JobKills: 1, LastFinishSeq: 3},
		Tracker:  metrics.TrackerState{Started: true, LastTime: 100, Free: 3, Demand: 4, Unused: 1234.5},
		ElogSeq:  12,
		TraceSeq: 7,
		Subsystems: []SubsystemState{
			{Name: "checkpoint", Data: json.RawMessage(`[{"Job":2,"Time":80}]`)},
		},
		Config: json.RawMessage(`{"Workload":"SDSC"}`),
	}
}

func encode(t *testing.T, st *State) ([]byte, string) {
	t.Helper()
	var buf bytes.Buffer
	h, err := st.Encode(&buf)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes(), h
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	st := sampleState()
	b, h := encode(t, st)
	got, gotHash, err := Decode(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if gotHash != h {
		t.Fatalf("hash mismatch: encode %s, decode %s", h, gotHash)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("state changed across round trip:\nin  %+v\nout %+v", st, got)
	}
	// The encoding is canonical: re-encoding the decoded state is a
	// byte-level fixed point.
	b2, h2 := encode(t, got)
	if !bytes.Equal(b, b2) || h != h2 {
		t.Fatalf("encoding not canonical: %d vs %d bytes, %s vs %s", len(b), len(b2), h, h2)
	}
	// Hash() agrees with the encoding's header hash.
	direct, err := st.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if direct != h {
		t.Fatalf("Hash() %s != encoded hash %s", direct, h)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	valid, _ := encode(t, sampleState())
	nl := bytes.IndexByte(valid, '\n')

	cases := map[string][]byte{
		"empty":            nil,
		"not json":         []byte("kaboom\n"),
		"header only":      valid[:nl+1],
		"truncated body":   valid[:len(valid)-10],
		"trailing garbage": append(append([]byte(nil), valid...), []byte("extra")...),
		"spliced double":   append(append([]byte(nil), valid...), valid...),
	}
	flipped := append([]byte(nil), valid...)
	flipped[nl+5] ^= 0x01 // body bit flip: hash mismatch
	cases["bit flip"] = flipped

	badMagic := bytes.Replace(append([]byte(nil), valid...), []byte("bgsched-snapshot"), []byte("bgsched-snapshut"), 1)
	cases["wrong magic"] = badMagic
	badVersion := bytes.Replace(append([]byte(nil), valid...), []byte(`"version":1`), []byte(`"version":9`), 1)
	cases["wrong version"] = badVersion

	for name, data := range cases {
		if _, _, err := Decode(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	st := sampleState()
	body, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	// Inject an extra field and re-seal with a correct header, so only
	// the strict unmarshal can catch it.
	body = append([]byte(`{"Bogus":1,`), body[1:]...)
	var buf bytes.Buffer
	hdr, _ := json.Marshal(map[string]any{
		"format": Format, "version": Version, "bytes": len(body), "sha256": HashBytes(body),
	})
	buf.Write(hdr)
	buf.WriteByte('\n')
	buf.Write(body)
	if _, _, err := Decode(&buf); err == nil {
		t.Fatal("decode accepted a body with unknown fields")
	}
}

func TestValidateCatchesStructuralDamage(t *testing.T) {
	mutations := map[string]func(*State){
		"negative dispatched":  func(st *State) { st.Dispatched = -1 },
		"calendar unsorted":    func(st *State) { st.Calendar[0], st.Calendar[1] = st.Calendar[1], st.Calendar[0] },
		"calendar seq range":   func(st *State) { st.Calendar[0].Seq = 99 },
		"event behind clock":   func(st *State) { st.Calendar[0].Time = st.Now - 1 },
		"running unsorted":     func(st *State) { st.Running[0], st.Running[1] = st.Running[1], st.Running[0] },
		"progress unsorted":    func(st *State) { st.Progress[0], st.Progress[1] = st.Progress[1], st.Progress[0] },
		"negative counter":     func(st *State) { st.Counters.Kills = -1 },
		"outcomes vs finishes": func(st *State) { st.Counters.Finishes = 5 },
	}
	for name, mutate := range mutations {
		st := sampleState()
		mutate(st)
		if err := st.Validate(); err == nil {
			t.Errorf("%s: Validate passed, want error", name)
		}
		// The damage must also be unencodable-then-decodable: Encode
		// doesn't validate (the simulator did), but Decode must.
		var buf bytes.Buffer
		if _, err := st.Encode(&buf); err != nil {
			continue
		}
		if _, _, err := Decode(&buf); err == nil {
			t.Errorf("%s: Decode accepted structurally damaged state", name)
		}
	}
}

// FuzzSnapshotRoundTrip throws corrupted, truncated and mutated bytes
// at Decode: every input must either be rejected with an error or
// decode to a state whose canonical re-encoding is a byte-level fixed
// point. No input may panic.
func FuzzSnapshotRoundTrip(f *testing.F) {
	valid, _ := func() ([]byte, string) {
		var buf bytes.Buffer
		h, err := sampleState().Encode(&buf)
		if err != nil {
			f.Fatal(err)
		}
		return buf.Bytes(), h
	}()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("{\"format\":\"bgsched-snapshot\",\"version\":1,\"bytes\":2,\"sha256\":\"zz\"}\n{}"))
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte(nil), valid...), valid...))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, h, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected; the property is "error, never panic"
		}
		var buf bytes.Buffer
		h2, err := st.Encode(&buf)
		if err != nil {
			t.Fatalf("decoded state failed to re-encode: %v", err)
		}
		st2, h3, err := Decode(&buf)
		if err != nil {
			t.Fatalf("canonical re-encoding failed to decode: %v", err)
		}
		if h2 != h3 {
			t.Fatalf("canonical hash unstable: %s vs %s", h2, h3)
		}
		if !reflect.DeepEqual(st, st2) {
			t.Fatal("state changed across canonical re-encode/decode")
		}
		_ = h // the input's own hash may differ from canonical (non-canonical JSON bodies)
	})
}
