package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Series is one curve of a figure.
type Series struct {
	Name string
	Y    []float64
}

// Table is the data behind one figure (or one panel of a multi-panel
// figure): an x axis and one or more named series over it.
type Table struct {
	ID     string // e.g. "fig3"
	Title  string
	XLabel string
	X      []float64
	Series []Series
}

// Validate checks the series lengths agree with the axis.
func (t *Table) Validate() error {
	for _, s := range t.Series {
		if len(s.Y) != len(t.X) {
			return fmt.Errorf("experiments: table %s: series %q has %d points, axis has %d",
				t.ID, s.Name, len(s.Y), len(t.X))
		}
	}
	return nil
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	header := []string{t.XLabel}
	for _, s := range t.Series {
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintln(tw, strings.Join(header, "\t")+"\t"); err != nil {
		return err
	}
	for i, x := range t.X {
		row := []string{formatNum(x)}
		for _, s := range t.Series {
			row = append(row, formatNum(s.Y[i]))
		}
		if _, err := fmt.Fprintln(tw, strings.Join(row, "\t")+"\t"); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// RenderCSV writes the table as CSV with a header row.
func (t *Table) RenderCSV(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	cols := []string{t.XLabel}
	for _, s := range t.Series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i, x := range t.X {
		row := []string{formatNum(x)}
		for _, s := range t.Series {
			row = append(row, formatNum(s.Y[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// formatNum prints integers without decimals and small floats with
// enough precision to be useful.
func formatNum(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	if v != 0 && (v < 0.01 && v > -0.01) {
		return fmt.Sprintf("%.4g", v)
	}
	return fmt.Sprintf("%.3f", v)
}
