package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"bgsched/internal/telemetry"
)

// Series is one curve of a figure.
type Series struct {
	Name string    `json:"name"`
	Y    []float64 `json:"y"`
	// Telemetry carries one snapshot per sweep point (aligned with Y)
	// when Options.CollectTelemetry is set and each series runs its own
	// simulations; nil otherwise. The snapshot aggregates the point's
	// replicates, so sweep curves carry the per-point search cost
	// (finder.*), decision latency (sched.*) and distribution data
	// (sim.job.*) alongside the headline metric.
	Telemetry []*telemetry.Snapshot `json:"telemetry,omitempty"`
}

// appendTelemetry records a sweep point's snapshot; nil snapshots
// (telemetry disabled) are skipped so Telemetry stays nil and the
// field is omitted from JSON output.
func (s *Series) appendTelemetry(snap *telemetry.Snapshot) {
	if snap != nil {
		s.Telemetry = append(s.Telemetry, snap)
	}
}

// Table is the data behind one figure (or one panel of a multi-panel
// figure): an x axis and one or more named series over it.
type Table struct {
	ID     string    `json:"id"` // e.g. "fig3"
	Title  string    `json:"title"`
	XLabel string    `json:"x_label"`
	X      []float64 `json:"x"`
	// Rows optionally labels each x point with a categorical name (the
	// tournament rows are finder/workload/contention combinations, not
	// numbers). When set it must align with X and replaces the numeric
	// x column in rendered output.
	Rows   []string `json:"rows,omitempty"`
	Series []Series `json:"series"`
	// Telemetry carries one snapshot per x point for tables whose
	// series all derive from the same runs (the capacity splits);
	// per-series telemetry lives on Series instead.
	Telemetry []*telemetry.Snapshot `json:"telemetry,omitempty"`
}

// appendTelemetry records a per-x-point snapshot on the table itself
// (used when all series share the same runs); nil snapshots are
// skipped.
func (t *Table) appendTelemetry(snap *telemetry.Snapshot) {
	if snap != nil {
		t.Telemetry = append(t.Telemetry, snap)
	}
}

// Validate checks the series lengths agree with the axis.
func (t *Table) Validate() error {
	if t.Rows != nil && len(t.Rows) != len(t.X) {
		return fmt.Errorf("experiments: table %s has %d row labels, axis has %d",
			t.ID, len(t.Rows), len(t.X))
	}
	for _, s := range t.Series {
		if len(s.Y) != len(t.X) {
			return fmt.Errorf("experiments: table %s: series %q has %d points, axis has %d",
				t.ID, s.Name, len(s.Y), len(t.X))
		}
		if s.Telemetry != nil && len(s.Telemetry) != len(t.X) {
			return fmt.Errorf("experiments: table %s: series %q has %d snapshots, axis has %d",
				t.ID, s.Name, len(s.Telemetry), len(t.X))
		}
	}
	if t.Telemetry != nil && len(t.Telemetry) != len(t.X) {
		return fmt.Errorf("experiments: table %s has %d snapshots, axis has %d",
			t.ID, len(t.Telemetry), len(t.X))
	}
	return nil
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	header := []string{t.XLabel}
	for _, s := range t.Series {
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintln(tw, strings.Join(header, "\t")+"\t"); err != nil {
		return err
	}
	for i, x := range t.X {
		row := []string{t.rowLabel(i, x)}
		for _, s := range t.Series {
			row = append(row, formatNum(s.Y[i]))
		}
		if _, err := fmt.Fprintln(tw, strings.Join(row, "\t")+"\t"); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// RenderCSV writes the table as CSV with a header row.
func (t *Table) RenderCSV(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	cols := []string{t.XLabel}
	for _, s := range t.Series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i, x := range t.X {
		row := []string{t.rowLabel(i, x)}
		for _, s := range t.Series {
			row = append(row, formatNum(s.Y[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// rowLabel resolves the first column of row i: the categorical label
// when the table carries one, the numeric x value otherwise.
func (t *Table) rowLabel(i int, x float64) string {
	if t.Rows != nil {
		return t.Rows[i]
	}
	return formatNum(x)
}

// formatNum prints integers without decimals and small floats with
// enough precision to be useful.
func formatNum(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	if v != 0 && (v < 0.01 && v > -0.01) {
		return fmt.Sprintf("%.4g", v)
	}
	return fmt.Sprintf("%.3f", v)
}
