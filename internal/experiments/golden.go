package experiments

import (
	"context"
	"fmt"
	"strings"

	"bgsched/internal/telemetry"
)

// GoldenGrid returns the six-point configuration grid the repository's
// golden digests pin: a miniature sweep spanning the dimensions the
// paper's evaluation varies — workload, scheduler family, prediction
// parameter and failure count. Several points share (workload, seed,
// jobs, load), so a warm artifact cache rebuilds only the policy layer;
// the golden-sweep and golden-trace tests prove that reuse is
// byte-harmless. The grid is frozen alongside the digests: changing it
// re-pins every golden.
func GoldenGrid() []RunConfig {
	return []RunConfig{
		{Workload: "SDSC", JobCount: 120, Scheduler: SchedBaseline, Seed: 7},
		{Workload: "SDSC", JobCount: 120, FailureNominal: 1000, Scheduler: SchedBaseline, Seed: 7},
		{Workload: "SDSC", JobCount: 120, FailureNominal: 1000, Scheduler: SchedBalancing, Param: 0.1, Seed: 7},
		{Workload: "SDSC", JobCount: 120, FailureNominal: 1000, Scheduler: SchedBalancing, Param: 0.9, Seed: 7},
		{Workload: "SDSC", JobCount: 120, FailureNominal: 2000, Scheduler: SchedTieBreak, Param: 0.5, Seed: 7},
		{Workload: "NASA", JobCount: 100, FailureNominal: 1000, Scheduler: SchedBalancing, Param: 0.5, Seed: 7},
	}
}

// GoldenSweep runs the six golden-grid points through the engine and
// tabulates their headline metrics. Its purpose is less the table than
// the engine wiring: with Engine.TraceDir set it emits one causal
// trace per golden point (the `make trace-demo` input), and with
// FlightEvents each point carries a kernel flight recorder — the same
// observability surface as any real figure sweep, on the frozen grid.
func GoldenSweep(eng *Engine) (*Table, error) {
	grid := GoldenGrid()
	t := &Table{
		ID:     "golden",
		Title:  "Golden grid (the six frozen digest points)",
		XLabel: "grid point",
		X:      make([]float64, len(grid)),
		Series: []Series{
			{Name: "avg slowdown", Y: nanSlots(len(grid))},
			{Name: "avg wait", Y: nanSlots(len(grid))},
			{Name: "utilization", Y: nanSlots(len(grid))},
		},
	}
	pts := make([]point, len(grid))
	for i, cfg := range grid {
		i, cfg := i, cfg
		t.X[i] = float64(i)
		key := fmt.Sprintf("p%d-%s-%s", i, strings.ToLower(cfg.Workload), cfg.Scheduler)
		pts[i] = point{
			key: key,
			cfg: cfg,
			run: func(ctx context.Context, cfg RunConfig) ([]float64, *telemetry.Snapshot, error) {
				res, err := RunContext(ctx, cfg)
				if err != nil {
					return nil, nil, err
				}
				return []float64{res.Summary.AvgSlowdown, res.Summary.AvgWait, res.Summary.Utilization}, nil, nil
			},
			fill: func(vals []float64, _ *telemetry.Snapshot) {
				if len(vals) < 3 {
					return // slots stay NaN for a failed point
				}
				t.Series[0].Y[i], t.Series[1].Y[i], t.Series[2].Y[i] = vals[0], vals[1], vals[2]
			},
		}
	}
	return t, eng.runPoints("golden", pts)
}
