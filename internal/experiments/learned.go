package experiments

import (
	"context"
	"fmt"
	"math"

	"bgsched/internal/telemetry"
)

// LearnedSweep is an extension experiment beyond the paper: average
// bounded slowdown versus the learned predictor's decision threshold,
// with the fault-unaware baseline and the oracle-with-knob schedulers
// as reference lines. It answers the question the paper's
// oracle-with-knob model abstracts away — how does scheduling
// performance vary across a *real* predictor's operating points?
func LearnedSweep(eng *Engine, opt Options, wl string) (*Table, error) {
	opt = opt.normalize()
	thresholds := []float64{0.05, 0.1, 0.25, 0.5, 0.75}
	t := &Table{
		ID:     "learned",
		Title:  fmt.Sprintf("Avg %s vs learned-predictor threshold (%s, nominal 1000 failures)", opt.Metric, wl),
		XLabel: "threshold",
	}
	for _, th := range thresholds {
		t.X = append(t.X, th)
	}
	n := len(thresholds)
	t.Series = []Series{
		{Name: "baseline", Y: nanSlots(n)},
		newSeries("balancing-learned", n, opt),
		newSeries("tiebreak-learned", n, opt),
		{Name: "balancing-knob-0.5", Y: nanSlots(n)},
	}

	var pts []point
	for xi, th := range thresholds {
		pts = append(pts,
			metricPoint(opt, fmt.Sprintf("balancing|x=%.2f", th),
				baseCfg(opt, wl, 1.0, 1000, SchedBalancingLearned, th), &t.Series[1], xi),
			metricPoint(opt, fmt.Sprintf("tiebreak|x=%.2f", th),
				baseCfg(opt, wl, 1.0, 1000, SchedTieBreakLearned, th), &t.Series[2], xi))
	}
	// Reference lines: one run each, flat across the axis (their single
	// run's snapshot would misalign with the threshold axis, so it is
	// discarded).
	pts = append(pts,
		flatLinePoint(opt, "ref|baseline", baseCfg(opt, wl, 1.0, 1000, SchedBaseline, 0), &t.Series[0]),
		flatLinePoint(opt, "ref|knob-0.5", baseCfg(opt, wl, 1.0, 1000, SchedBalancing, 0.5), &t.Series[3]))

	// Partial tables ride along with any error (see KrevatTable).
	return t, eng.runPoints("learned", pts)
}

// flatLinePoint builds the point computing one reference value and
// replicating it across every slot of series s.
func flatLinePoint(opt Options, key string, cfg RunConfig, s *Series) point {
	return point{
		key: key,
		cfg: cfg,
		run: func(ctx context.Context, cfg RunConfig) ([]float64, *telemetry.Snapshot, error) {
			v, _, err := runMetricPointContext(ctx, opt, cfg)
			if err != nil {
				return nil, nil, err
			}
			return []float64{v}, nil, nil
		},
		fill: func(vals []float64, _ *telemetry.Snapshot) {
			v := math.NaN()
			if len(vals) >= 1 {
				v = vals[0]
			}
			for i := range s.Y {
				s.Y[i] = v
			}
		},
	}
}
