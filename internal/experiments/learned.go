package experiments

import "fmt"

// LearnedSweep is an extension experiment beyond the paper: average
// bounded slowdown versus the learned predictor's decision threshold,
// with the fault-unaware baseline and the oracle-with-knob schedulers
// as reference lines. It answers the question the paper's
// oracle-with-knob model abstracts away — how does scheduling
// performance vary across a *real* predictor's operating points?
func LearnedSweep(opt Options, wl string) (*Table, error) {
	opt = opt.normalize()
	thresholds := []float64{0.05, 0.1, 0.25, 0.5, 0.75}
	t := &Table{
		ID:     "learned",
		Title:  fmt.Sprintf("Avg %s vs learned-predictor threshold (%s, nominal 1000 failures)", opt.Metric, wl),
		XLabel: "threshold",
	}
	for _, th := range thresholds {
		t.X = append(t.X, th)
	}

	balancing := Series{Name: "balancing-learned"}
	tiebreak := Series{Name: "tiebreak-learned"}
	for _, th := range thresholds {
		v, snap, err := runMetricPoint(opt, baseCfg(opt, wl, 1.0, 1000, SchedBalancingLearned, th))
		if err != nil {
			return nil, err
		}
		balancing.Y = append(balancing.Y, v)
		balancing.appendTelemetry(snap)
		v, snap, err = runMetricPoint(opt, baseCfg(opt, wl, 1.0, 1000, SchedTieBreakLearned, th))
		if err != nil {
			return nil, err
		}
		tiebreak.Y = append(tiebreak.Y, v)
		tiebreak.appendTelemetry(snap)
	}

	// Reference lines: flat across the axis (their single run's snapshot
	// would misalign with the threshold axis, so it is discarded).
	base, _, err := runMetricPoint(opt, baseCfg(opt, wl, 1.0, 1000, SchedBaseline, 0))
	if err != nil {
		return nil, err
	}
	oracle, _, err := runMetricPoint(opt, baseCfg(opt, wl, 1.0, 1000, SchedBalancing, 0.5))
	if err != nil {
		return nil, err
	}
	baseline := Series{Name: "baseline"}
	knob := Series{Name: "balancing-knob-0.5"}
	for range thresholds {
		baseline.Y = append(baseline.Y, base)
		knob.Y = append(knob.Y, oracle)
	}
	t.Series = []Series{baseline, balancing, tiebreak, knob}
	return t, nil
}
