package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"bgsched/internal/build"
	"bgsched/internal/sim"
	"bgsched/internal/snapshot"
)

// ErrSnapshotNotReached reports that a run ended — by completing or by
// being cancelled — before dispatching the requested snapshot seq, so
// no snapshot was (or must be) written.
var ErrSnapshotNotReached = errors.New("snapshot point not reached")

// Branch is the set of knobs a what-if replay may turn: the scheduling
// policy, its parameters, the partition finder and the migration model.
// Nil/empty fields inherit the parent's value, so the zero Branch is
// the identity (useful for equivalence checks: a no-op branch must
// reproduce the parent's tail exactly). The machine, workload and
// failure trace are not here by design — a branch replays the same
// world under a different policy, never a different world.
type Branch struct {
	Scheduler     SchedulerKind `json:"scheduler,omitempty"`
	Param         *float64      `json:"param,omitempty"`
	CombineMax    *bool         `json:"combine_max,omitempty"`
	Finder        string        `json:"finder,omitempty"`
	FinderWorkers *int          `json:"finder_workers,omitempty"`
	Migration     *bool         `json:"migration,omitempty"`
	MigrationCost *float64      `json:"migration_cost,omitempty"`
}

// IsZero reports whether the branch changes nothing.
func (b Branch) IsZero() bool {
	return b.Scheduler == "" && b.Param == nil && b.CombineMax == nil &&
		b.Finder == "" && b.FinderWorkers == nil && b.Migration == nil &&
		b.MigrationCost == nil
}

// Apply overlays the branch onto the parent configuration and returns
// the branch's run configuration.
func (b Branch) Apply(parent RunConfig) RunConfig {
	cfg := parent
	if b.Scheduler != "" {
		cfg.Scheduler = b.Scheduler
	}
	if b.Param != nil {
		cfg.Param = *b.Param
	}
	if b.CombineMax != nil {
		cfg.CombineMax = *b.CombineMax
	}
	if b.Finder != "" {
		cfg.Finder = b.Finder
	}
	if b.FinderWorkers != nil {
		cfg.FinderWorkers = *b.FinderWorkers
	}
	if b.Migration != nil {
		cfg.Migration = *b.Migration
	}
	if b.MigrationCost != nil {
		cfg.MigrationCost = *b.MigrationCost
	}
	return cfg
}

// SnapshotAt builds the configured run, executes it up to the event
// boundary atSeq and captures a snapshot there, without continuing.
// The canonical parent config is embedded in the snapshot so a file
// written from it can be restored stand-alone. If the run completes or
// is cancelled before reaching atSeq, the error wraps both
// ErrSnapshotNotReached and (for cancellation) the context error.
func SnapshotAt(ctx context.Context, cfg RunConfig, atSeq int64) (*snapshot.State, error) {
	s, err := prefixRun(ctx, cfg, atSeq)
	if err != nil {
		return nil, err
	}
	return capture(s, cfg)
}

// RunWithSnapshot executes the configured run to completion, capturing
// a snapshot as it crosses the event boundary atSeq. The returned
// result is the full, uninterrupted run's — pausing at an event
// boundary is observationally free — so one call yields both the
// parent outcome and the branch point.
func RunWithSnapshot(ctx context.Context, cfg RunConfig, atSeq int64) (sim.Result, *snapshot.State, error) {
	s, err := prefixRun(ctx, cfg, atSeq)
	if err != nil {
		return sim.Result{}, nil, err
	}
	st, err := capture(s, cfg)
	if err != nil {
		return sim.Result{}, nil, err
	}
	res, err := s.RunContext(ctx)
	if err != nil {
		return sim.Result{}, nil, err
	}
	return res, st, nil
}

// prefixRun builds the run and advances it to the event boundary atSeq,
// translating "never got there" into ErrSnapshotNotReached.
func prefixRun(ctx context.Context, cfg RunConfig, atSeq int64) (*sim.Simulator, error) {
	if atSeq < 1 {
		return nil, fmt.Errorf("experiments: snapshot seq %d, want >= 1", atSeq)
	}
	sc, _, err := build.Default(cfg)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(sc)
	if err != nil {
		return nil, err
	}
	done, err := s.RunToEvent(ctx, atSeq)
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("%w after %d of %d events: %w",
				ErrSnapshotNotReached, s.EventsDispatched(), atSeq, err)
		}
		return nil, err
	}
	if done {
		return nil, fmt.Errorf("%w: run completed after %d events (requested %d)",
			ErrSnapshotNotReached, s.EventsDispatched(), atSeq)
	}
	return s, nil
}

// capture snapshots a paused simulator and embeds the canonical parent
// config.
func capture(s *sim.Simulator, cfg RunConfig) (*snapshot.State, error) {
	st, err := s.Snapshot()
	if err != nil {
		return nil, err
	}
	cb, err := json.Marshal(cfg.Canonical())
	if err != nil {
		return nil, fmt.Errorf("experiments: embed parent config: %w", err)
	}
	st.Config = cb
	return st, nil
}

// ResumeFromSnapshot restores the captured state under cfg — typically
// a Branch.Apply of the parent's config — and runs it to completion.
// The config must describe the snapshot's world (machine, workload,
// failures); sim.NewFromSnapshot enforces that.
func ResumeFromSnapshot(ctx context.Context, cfg RunConfig, st *snapshot.State) (sim.Result, error) {
	sc, _, err := build.Default(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	s, err := sim.NewFromSnapshot(sc, st)
	if err != nil {
		return sim.Result{}, err
	}
	return s.RunContext(ctx)
}

// ParentConfig decodes the parent run configuration embedded in a
// snapshot (canonical form), for restores driven by the snapshot file
// alone.
func ParentConfig(st *snapshot.State) (RunConfig, error) {
	if len(st.Config) == 0 {
		return RunConfig{}, fmt.Errorf("experiments: snapshot carries no embedded config")
	}
	var cfg RunConfig
	if err := json.Unmarshal(st.Config, &cfg); err != nil {
		return RunConfig{}, fmt.Errorf("experiments: embedded config: %w", err)
	}
	return cfg, nil
}

// BranchPoint names one branch of a grid.
type BranchPoint struct {
	Name   string
	Branch Branch
}

// BranchGrid runs the parent to completion (snapshotting at atSeq on
// the way through) and then replays every branch from that shared
// snapshot, returning a table comparing branch outcomes against the
// parent: x point 0 is the parent, point i >= 1 is points[i-1]. The
// delta series are branch minus parent, so a zero-valued no-op branch
// row is itself an equivalence statement.
func BranchGrid(ctx context.Context, parent RunConfig, atSeq int64, points []BranchPoint) (*Table, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("experiments: branch grid needs at least one branch")
	}
	parentRes, st, err := RunWithSnapshot(ctx, parent, atSeq)
	if err != nil {
		return nil, err
	}
	results := make([]sim.Result, 0, len(points)+1)
	names := make([]string, 0, len(points)+1)
	results = append(results, parentRes)
	names = append(names, "parent")
	for _, pt := range points {
		res, err := ResumeFromSnapshot(ctx, pt.Branch.Apply(parent), st)
		if err != nil {
			return nil, fmt.Errorf("experiments: branch %q: %w", pt.Name, err)
		}
		results = append(results, res)
		names = append(names, pt.Name)
	}

	t := &Table{
		ID:     "branch-grid",
		Title:  fmt.Sprintf("Branch replay at event %d: %s", atSeq, joinNames(names[1:])),
		XLabel: "branch index (0 = parent: " + joinNames(names) + ")",
	}
	series := []Series{
		{Name: "avg_slowdown"}, {Name: "d_slowdown"},
		{Name: "avg_wait"}, {Name: "d_wait"},
		{Name: "utilization"}, {Name: "kills"}, {Name: "restarts"},
	}
	base := parentRes.Summary
	for i, res := range results {
		t.X = append(t.X, float64(i))
		s := res.Summary
		series[0].Y = append(series[0].Y, s.AvgSlowdown)
		series[1].Y = append(series[1].Y, s.AvgSlowdown-base.AvgSlowdown)
		series[2].Y = append(series[2].Y, s.AvgWait)
		series[3].Y = append(series[3].Y, s.AvgWait-base.AvgWait)
		series[4].Y = append(series[4].Y, s.Utilization)
		series[5].Y = append(series[5].Y, float64(res.JobKills))
		series[6].Y = append(series[6].Y, float64(s.TotalRestarts))
	}
	t.Series = series
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
