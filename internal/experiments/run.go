// Package experiments reproduces the paper's evaluation (Section 7):
// it assembles workloads, failure traces, predictors and schedulers
// into single simulation runs, and provides one spec per figure of the
// paper that regenerates the same data series.
//
// Run construction is delegated to the staged pipeline in
// internal/build: every run is built stage by stage (geometry →
// workload log → jobs → failure trace → failure index → policy →
// sim.Config), with the synthesis-heavy stages memoised in a
// process-wide artifact cache shared by single runs, figure sweeps and
// the HTTP service. Sweep points that differ only in policy, confidence
// or failure count therefore skip workload and trace synthesis
// entirely once a sibling point has warmed the cache.
//
// Scaling note. The paper replays multi-month to multi-year archive
// logs (tens of thousands of jobs) and injects up to 4000 failures.
// The synthetic logs here default to a few thousand jobs spanning days
// to weeks, so the nominal failure counts on the paper's x-axes are
// rescaled to the synthetic span at a fixed density mapping
// (DefaultFailuresPerDayPerNominal100): nominal 100 failures ≈ one
// failure per machine-day. This keeps the paper's axis labels and —
// because the scheduling dynamics depend on failure density relative
// to job durations, not on absolute counts — its qualitative regimes:
// the sharp onset, the knee, and the saturation plateau.
package experiments

import (
	"context"

	"bgsched/internal/build"
	"bgsched/internal/sim"
)

// SchedulerKind names the scheduling algorithm under test.
type SchedulerKind = build.SchedulerKind

// The scheduler kinds, re-exported from the build pipeline.
const (
	// SchedBaseline is Krevat's fault-unaware FCFS + MFP scheduler.
	SchedBaseline = build.SchedBaseline
	// SchedBalancing is the paper's balancing algorithm (Section 5.2.1).
	SchedBalancing = build.SchedBalancing
	// SchedTieBreak is the paper's tie-breaking algorithm (Section 5.2.2).
	SchedTieBreak = build.SchedTieBreak
	// SchedBalancingLearned drives the balancing algorithm with the
	// history-trained statistical predictor.
	SchedBalancingLearned = build.SchedBalancingLearned
	// SchedTieBreakLearned drives the tie-breaking algorithm with the
	// learned predictor's boolean oracle.
	SchedTieBreakLearned = build.SchedTieBreakLearned
)

// DefaultFailuresPerDay is the injected failure density, in failures
// per machine-day, corresponding to a nominal count of 100 on the
// paper's x-axes. See the package comment.
const DefaultFailuresPerDay = build.DefaultFailuresPerDay

// QueueDrainSlack is the simulated-horizon stretch factor applied past
// the last job submission; see build.QueueDrainSlack.
const QueueDrainSlack = build.QueueDrainSlack

// RunConfig fully describes one simulation run. It is the build
// pipeline's staged configuration (build.RunConfig); see that type for
// field documentation.
type RunConfig = build.RunConfig

// Run builds and executes the configured simulation.
func Run(cfg RunConfig) (sim.Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext builds and executes the configured simulation under a
// cancellation context: a cancelled ctx aborts the event loop promptly
// and returns ctx.Err(). Construction goes through the staged build
// pipeline and its shared artifact cache (build.Shared), so repeated
// runs over a shared sub-config reuse the synthesized workload, the
// failure trace and the failure index.
func RunContext(ctx context.Context, cfg RunConfig) (sim.Result, error) {
	sc, art, err := build.Default(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	s, err := sim.New(sc)
	if err != nil {
		return sim.Result{}, err
	}
	res, err := s.RunContext(ctx)
	if err != nil {
		return sim.Result{}, err
	}
	// The run is over and the result carries no job pointers (Outcomes
	// are values), so the job-slice clone can go back to the build
	// cache's pool for the next run of this workload point.
	art.ReleaseJobs()
	return res, nil
}
