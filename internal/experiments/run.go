// Package experiments reproduces the paper's evaluation (Section 7):
// it assembles workloads, failure traces, predictors and schedulers
// into single simulation runs, and provides one spec per figure of the
// paper that regenerates the same data series.
//
// Scaling note. The paper replays multi-month to multi-year archive
// logs (tens of thousands of jobs) and injects up to 4000 failures.
// The synthetic logs here default to a few thousand jobs spanning days
// to weeks, so the nominal failure counts on the paper's x-axes are
// rescaled to the synthetic span at a fixed density mapping
// (DefaultFailuresPerDayPerNominal100): nominal 100 failures ≈ one
// failure per machine-day. This keeps the paper's axis labels and —
// because the scheduling dynamics depend on failure density relative
// to job durations, not on absolute counts — its qualitative regimes:
// the sharp onset, the knee, and the saturation plateau.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"bgsched/internal/checkpoint"
	"bgsched/internal/core"
	"bgsched/internal/failure"
	"bgsched/internal/partition"
	"bgsched/internal/predict"
	"bgsched/internal/sim"
	"bgsched/internal/telemetry"
	"bgsched/internal/torus"
	"bgsched/internal/workload"
)

// SchedulerKind names the scheduling algorithm under test.
type SchedulerKind string

const (
	// SchedBaseline is Krevat's fault-unaware FCFS + MFP scheduler.
	SchedBaseline SchedulerKind = "baseline"
	// SchedBalancing is the paper's balancing algorithm (Section 5.2.1).
	SchedBalancing SchedulerKind = "balancing"
	// SchedTieBreak is the paper's tie-breaking algorithm (Section 5.2.2).
	SchedTieBreak SchedulerKind = "tiebreak"
	// SchedBalancingLearned drives the balancing algorithm with the
	// history-trained statistical predictor (predict.Learned) instead
	// of the paper's log-oracle-with-knob; Param is ignored.
	SchedBalancingLearned SchedulerKind = "balancing-learned"
	// SchedTieBreakLearned drives the tie-breaking algorithm with the
	// learned predictor's boolean oracle; Param is ignored.
	SchedTieBreakLearned SchedulerKind = "tiebreak-learned"
)

// DefaultFailuresPerDay is the injected failure density, in failures
// per machine-day, corresponding to a nominal count of 100 on the
// paper's x-axes. See the package comment.
const DefaultFailuresPerDay = 1.0

// RunConfig fully describes one simulation run.
type RunConfig struct {
	// Machine is the geometry spec (torus.Parse format); empty means
	// the paper's 4x4x8 supernode torus.
	Machine string

	Workload  string  // "NASA", "SDSC" or "LLNL"
	JobCount  int     // synthetic log length
	LoadScale float64 // the paper's load coefficient c

	// EstimateFactor makes user estimates inexact: requested times are
	// actual times multiplied by a uniform factor in
	// [1, EstimateFactor]. Zero or 1 keeps the paper's exact-estimate
	// model. Inexact estimates loosen EASY reservations and stretch
	// the predictors' query windows.
	EstimateFactor float64

	// FailureNominal is the failure count in the paper's axis units;
	// it is rescaled to the synthetic span (see package comment).
	// FailureScale overrides the default density mapping when > 0:
	// injected = round(nominal * FailureScale).
	FailureNominal int
	FailureScale   float64

	Scheduler SchedulerKind
	Param     float64 // prediction confidence (balancing) or accuracy (tie-break)
	// CombineMax switches the balancing P_f to the Section 4.1
	// max-combiner instead of the Section 5.2.1 product (ablation).
	CombineMax bool

	// Backfill defaults to EASY (the paper's scheduler backfills); set
	// BackfillStrict for strict FCFS, since BackfillNone is the zero
	// value and cannot be distinguished from "unset".
	Backfill       core.BackfillMode
	BackfillStrict bool
	Migration      bool
	MigrationCost  float64 // checkpoint-and-restart delay per move (paper: 0)
	Downtime       float64 // seconds a failed node stays down (paper: 0)

	// Checkpointing (the Section 8 extension). CheckpointInterval > 0
	// enables periodic checkpoints; CheckpointPredictive instead uses
	// the prediction-triggered policy driven by a tie-breaking
	// predictor of accuracy Param. Both zero disables checkpointing,
	// matching the paper's main runs.
	CheckpointInterval   float64
	CheckpointPredictive bool
	CheckpointOverhead   float64
	CheckpointRestart    float64

	// Finder selects the free-partition search algorithm by name
	// (partition.ByName): "naive", "pop", "shape" (default) or "fast",
	// the cached fast path. FinderWorkers bounds the fast finder's
	// parallel enumeration pool; <= 1 keeps enumeration sequential.
	// Every algorithm returns identical candidate sets, so this knob
	// changes scheduling cost only, never scheduling decisions.
	Finder        string
	FinderWorkers int

	// RecordTimeline samples machine state into Result.Timeline.
	RecordTimeline bool
	// CheckInvariants makes the simulator validate machine-state
	// conservation after every event (sim.Config.CheckInvariants).
	CheckInvariants bool
	// EventLog, when non-nil, receives the JSONL simulation event log.
	EventLog io.Writer
	// Telemetry, when non-nil, is threaded through the scheduler, the
	// partition finder and the simulator, so one registry collects the
	// whole run's "sched.*", "finder.*" and "sim.*" instruments.
	Telemetry *telemetry.Registry

	Seed int64
}

// normalize fills defaults.
func (c *RunConfig) normalize() {
	if c.Workload == "" {
		c.Workload = "SDSC"
	}
	if c.JobCount == 0 {
		c.JobCount = 2000
	}
	if c.LoadScale == 0 {
		c.LoadScale = 1.0
	}
	if c.Scheduler == "" {
		c.Scheduler = SchedBaseline
	}
	if c.BackfillStrict {
		c.Backfill = core.BackfillNone
	} else if c.Backfill == core.BackfillNone {
		c.Backfill = core.BackfillEASY
	}
}

// Canonical returns the config with defaults filled and the
// process-local fields (EventLog, Telemetry) cleared: the form that
// hashes identically for semantically identical requests. The service
// layer canonicalises every submitted config before hashing it, so
// {"Workload":"SDSC"} and {"Workload":"SDSC","JobCount":2000} land on
// the same cache entry.
func (c RunConfig) Canonical() RunConfig {
	c.EventLog = nil
	c.Telemetry = nil
	c.normalize()
	return c
}

// Run builds and executes the configured simulation.
func Run(cfg RunConfig) (sim.Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext builds and executes the configured simulation under a
// cancellation context: a cancelled ctx aborts the event loop promptly
// and returns ctx.Err().
func RunContext(ctx context.Context, cfg RunConfig) (sim.Result, error) {
	cfg.normalize()
	g := torus.BlueGeneL()
	if cfg.Machine != "" {
		var err error
		g, err = torus.Parse(cfg.Machine)
		if err != nil {
			return sim.Result{}, err
		}
	}

	preset, err := workload.PresetByName(cfg.Workload, cfg.JobCount)
	if err != nil {
		return sim.Result{}, err
	}
	if cfg.EstimateFactor > 1 {
		preset.EstimateFactor = cfg.EstimateFactor
	}
	log, err := workload.Synthesize(preset, cfg.Seed)
	if err != nil {
		return sim.Result{}, err
	}
	jobs, err := log.ToJobs(g, workload.ToJobsConfig{
		LoadScale:      cfg.LoadScale,
		ExactEstimates: cfg.EstimateFactor <= 1,
	})
	if err != nil {
		return sim.Result{}, err
	}

	span := log.Span() * 1.1 // slack for the queue to drain
	count := scaledFailureCount(cfg.FailureNominal, cfg.FailureScale, span)
	var trace failure.Trace
	if count > 0 {
		trace, err = failure.Generate(failure.DefaultGeneratorConfig(g.N(), count, span), cfg.Seed+1)
		if err != nil {
			return sim.Result{}, err
		}
	}

	policy, err := buildPolicy(cfg, g, trace)
	if err != nil {
		return sim.Result{}, err
	}
	finder, err := partition.ByName(cfg.Finder, cfg.FinderWorkers)
	if err != nil {
		return sim.Result{}, err
	}
	sched, err := core.NewScheduler(core.Config{
		Policy:    policy,
		Finder:    partition.Instrumented(finder, cfg.Telemetry),
		Backfill:  cfg.Backfill,
		Migration: cfg.Migration,
		Telemetry: cfg.Telemetry,
	})
	if err != nil {
		return sim.Result{}, err
	}
	s, err := sim.New(sim.Config{
		Geometry:        g,
		Scheduler:       sched,
		Jobs:            jobs,
		Failures:        trace,
		Downtime:        cfg.Downtime,
		MigrationCost:   cfg.MigrationCost,
		Checkpoint:      buildCheckpoint(cfg, g, trace),
		RecordTimeline:  cfg.RecordTimeline,
		CheckInvariants: cfg.CheckInvariants,
		EventLog:        cfg.EventLog,
		Telemetry:       cfg.Telemetry,
	})
	if err != nil {
		return sim.Result{}, err
	}
	return s.RunContext(ctx)
}

// buildCheckpoint assembles the optional checkpointing extension.
func buildCheckpoint(cfg RunConfig, g torus.Geometry, trace failure.Trace) *checkpoint.Config {
	switch {
	case cfg.CheckpointPredictive:
		ix := failure.NewIndex(g.N(), trace)
		horizon := cfg.CheckpointInterval
		if horizon <= 0 {
			horizon = 3600
		}
		return &checkpoint.Config{
			Policy: &checkpoint.PredictionTriggered{
				Oracle:  predict.NewTieBreak(ix, cfg.Param, cfg.Seed+3),
				Horizon: horizon,
				Lead:    60,
				MinGap:  horizon / 4,
			},
			Overhead:       cfg.CheckpointOverhead,
			RestartPenalty: cfg.CheckpointRestart,
			PollInterval:   horizon / 4,
		}
	case cfg.CheckpointInterval > 0:
		return &checkpoint.Config{
			Policy:         &checkpoint.Periodic{Interval: cfg.CheckpointInterval},
			Overhead:       cfg.CheckpointOverhead,
			RestartPenalty: cfg.CheckpointRestart,
		}
	}
	return nil
}

// scaledFailureCount maps a paper-axis nominal failure count onto the
// synthetic span.
func scaledFailureCount(nominal int, override float64, spanSeconds float64) int {
	if nominal <= 0 {
		return 0
	}
	if override > 0 {
		return int(math.Round(float64(nominal) * override))
	}
	days := spanSeconds / 86400
	count := float64(nominal) / 100 * DefaultFailuresPerDay * days
	if count < 1 {
		return 1
	}
	return int(math.Round(count))
}

// buildPolicy assembles the placement policy for the run.
func buildPolicy(cfg RunConfig, g torus.Geometry, trace failure.Trace) (core.Policy, error) {
	switch cfg.Scheduler {
	case SchedBaseline:
		return core.Baseline{}, nil
	case SchedBalancing:
		ix := failure.NewIndex(g.N(), trace)
		combine := core.Combiner(predict.CombineIndependent)
		if cfg.CombineMax {
			combine = predict.CombineMax
		}
		return &core.Balancing{
			Prober:  &predict.Balancing{Index: ix, Confidence: cfg.Param},
			Combine: combine,
		}, nil
	case SchedTieBreak:
		ix := failure.NewIndex(g.N(), trace)
		return &core.TieBreak{Oracle: predict.NewTieBreak(ix, cfg.Param, cfg.Seed+2)}, nil
	case SchedBalancingLearned:
		ix := failure.NewIndex(g.N(), trace)
		return &core.Balancing{Prober: learnedWith(ix, cfg.Param)}, nil
	case SchedTieBreakLearned:
		ix := failure.NewIndex(g.N(), trace)
		return &core.TieBreak{Oracle: learnedWith(ix, cfg.Param)}, nil
	}
	return nil, fmt.Errorf("experiments: unknown scheduler %q", cfg.Scheduler)
}

// learnedWith builds the learned predictor, using Param (when set) as
// its decision threshold.
func learnedWith(ix *failure.Index, threshold float64) *predict.Learned {
	l := predict.NewLearned(ix)
	if threshold > 0 {
		l.Threshold = threshold
	}
	return l
}
