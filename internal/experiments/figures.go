package experiments

import (
	"fmt"
	"sort"

	"bgsched/internal/metrics"
)

// metricsSummary is the run summary type metric extraction reads.
type metricsSummary = metrics.Summary

// Options tunes the scale of a figure reproduction. The zero value
// gives the full-scale defaults; benchmarks use smaller JobCounts and
// a single replication.
type Options struct {
	// JobCount is the synthetic log length per run (default 1500).
	JobCount int
	// Seed makes the entire figure deterministic (default 1).
	Seed int64
	// FailureScale overrides the nominal-to-injected failure mapping
	// (see RunConfig.FailureScale).
	FailureScale float64
	// Metric selects what the timing figures plot: "slowdown" (the
	// paper's bounded slowdown, default), "response" or "wait". The
	// capacity figures (5, 7, 8, 10) ignore it.
	Metric string
	// Replications runs each sweep point under this many seeds
	// (default 3) and aggregates; average bounded slowdown on short
	// logs is chaotic enough that single runs mislead.
	Replications int
	// Aggregate folds replicates into one point: "median" (default,
	// robust to queueing-collapse outliers) or "mean".
	Aggregate string
	// CollectTelemetry attaches a fresh telemetry registry to every
	// sweep point and embeds its snapshot in the resulting tables
	// (Series.Telemetry / Table.Telemetry), so curves carry per-point
	// search-cost and distribution data, not just final aggregates.
	CollectTelemetry bool
}

func (o Options) normalize() Options {
	if o.JobCount == 0 {
		o.JobCount = 1500
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Metric == "" {
		o.Metric = MetricSlowdown
	}
	if o.Replications == 0 {
		o.Replications = 3
	}
	if o.Aggregate == "" {
		o.Aggregate = AggMedian
	}
	return o
}

// Canonical returns the options with defaults filled: the form the
// service layer hashes, so default-equivalent figure requests land on
// the same cache entry.
func (o Options) Canonical() Options { return o.normalize() }

// Metric names accepted by Options.Metric.
const (
	MetricSlowdown = "slowdown"
	MetricResponse = "response"
	MetricWait     = "wait"
)

// metricValue extracts the selected metric from a run summary.
func metricValue(metric string, s metricsSummary) (float64, error) {
	switch metric {
	case MetricSlowdown:
		return s.AvgSlowdown, nil
	case MetricResponse:
		return s.AvgResponse, nil
	case MetricWait:
		return s.AvgWait, nil
	}
	return 0, fmt.Errorf("experiments: unknown metric %q (want %s, %s or %s)",
		metric, MetricSlowdown, MetricResponse, MetricWait)
}

// Spec identifies one reproducible figure of the paper. Run executes
// the figure through the given engine; a nil engine runs sequentially
// with legacy fail-fast semantics (see Engine). On error Run returns
// the partially-filled tables alongside it — completed points hold
// values, never-run slots hold NaN — so interrupted sweeps can flush
// partial results.
type Spec struct {
	ID    string
	Title string
	Run   func(*Engine, Options) ([]*Table, error)
}

// Specs lists every figure of the paper's evaluation section, in paper
// order. Figures 1 and 2 are illustrations, not experiments.
var Specs = []Spec{
	{"fig3", "Avg bounded slowdown vs failure rate, SDSC, balancing, a ∈ {0, 0.1, 0.9}", Figure3},
	{"fig4", "Avg bounded slowdown vs failure rate, SDSC, balancing, c ∈ {1.0, 1.2}", Figure4},
	{"fig5", "Utilization vs failure rate, SDSC, balancing, c ∈ {1.0, 1.2}", Figure5},
	{"fig6", "Avg bounded slowdown vs confidence, balancing, SDSC/NASA/LLNL", Figure6},
	{"fig7", "Utilization vs confidence, SDSC, balancing, c ∈ {1.0, 1.2}", Figure7},
	{"fig8", "Utilization vs confidence, NASA, balancing, c ∈ {1.0, 1.2}", Figure8},
	{"fig9", "Avg bounded slowdown vs accuracy, tie-breaking, SDSC/NASA/LLNL", Figure9},
	{"fig10", "Utilization vs accuracy, LLNL, tie-breaking, c ∈ {1.0, 1.2}", Figure10},
}

// SpecByID returns the spec for an id like "fig3".
func SpecByID(id string) (Spec, error) {
	for _, s := range Specs {
		if s.ID == id {
			return s, nil
		}
	}
	ids := make([]string, len(Specs))
	for i, s := range Specs {
		ids[i] = s.ID
	}
	sort.Strings(ids)
	return Spec{}, fmt.Errorf("experiments: unknown figure %q (have %v)", id, ids)
}

// failureAxis is the paper's failure-count sweep: 0 to 4000 in steps
// of 500 (Section 6.2).
var failureAxis = []int{0, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000}

// paramAxis is the paper's confidence/accuracy sweep: 0.0 to 1.0 in
// steps of 0.1 (Section 6.2).
var paramAxis = []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// baseCfg assembles the common RunConfig fields of a sweep point.
func baseCfg(opt Options, wl string, c float64, nominal int, kind SchedulerKind, a float64) RunConfig {
	return RunConfig{
		Workload: wl, JobCount: opt.JobCount, LoadScale: c,
		FailureNominal: nominal, FailureScale: opt.FailureScale,
		Scheduler: kind, Param: a, Seed: opt.Seed,
	}
}

// Figure3 reproduces Figure 3: average bounded slowdown versus failure
// rate for the SDSC log under the balancing algorithm, with no
// prediction (a=0.0) and with prediction at a=0.1 and a=0.9.
func Figure3(eng *Engine, opt Options) ([]*Table, error) {
	opt = opt.normalize()
	t := &Table{
		ID:     "fig3",
		Title:  fmt.Sprintf("Avg %s vs failure rate (SDSC, balancing, c=1.0)", opt.Metric),
		XLabel: "failures",
	}
	for _, n := range failureAxis {
		t.X = append(t.X, float64(n))
	}
	avals := []float64{0.0, 0.1, 0.9}
	t.Series = make([]Series, len(avals))
	var pts []point
	for si, a := range avals {
		t.Series[si] = newSeries(fmt.Sprintf("a=%.1f", a), len(failureAxis), opt)
		for xi, n := range failureAxis {
			pts = append(pts, metricPoint(opt, fmt.Sprintf("a=%.1f|x=%d", a, n),
				baseCfg(opt, "SDSC", 1.0, n, SchedBalancing, a), &t.Series[si], xi))
		}
	}
	// On error (cancellation included) the partially-filled table is
	// returned alongside it: completed points hold values, the rest NaN,
	// so an interrupted sweep can still flush what it finished.
	return []*Table{t}, eng.runPoints("fig3", pts)
}

// Figure4 reproduces Figure 4: average bounded slowdown versus failure
// rate for the SDSC log under the balancing algorithm at two load
// levels (c = 1.0 and 1.2). Prediction is held at a = 0.1, the paper's
// "modest confidence" operating point.
func Figure4(eng *Engine, opt Options) ([]*Table, error) {
	opt = opt.normalize()
	t := &Table{
		ID:     "fig4",
		Title:  fmt.Sprintf("Avg %s vs failure rate (SDSC, balancing, a=0.1)", opt.Metric),
		XLabel: "failures",
	}
	for _, n := range failureAxis {
		t.X = append(t.X, float64(n))
	}
	cvals := []float64{1.0, 1.2}
	t.Series = make([]Series, len(cvals))
	var pts []point
	for si, c := range cvals {
		t.Series[si] = newSeries(fmt.Sprintf("c=%.1f", c), len(failureAxis), opt)
		for xi, n := range failureAxis {
			pts = append(pts, metricPoint(opt, fmt.Sprintf("c=%.1f|x=%d", c, n),
				baseCfg(opt, "SDSC", c, n, SchedBalancing, 0.1), &t.Series[si], xi))
		}
	}
	return []*Table{t}, eng.runPoints("fig4", pts)
}

// Figure5 reproduces Figure 5: the capacity split (utilised / unused /
// lost) versus failure rate for the SDSC log under the balancing
// algorithm at a = 0.1, one panel per load level.
func Figure5(eng *Engine, opt Options) ([]*Table, error) {
	opt = opt.normalize()
	var tables []*Table
	var pts []point
	for _, c := range []float64{1.0, 1.2} {
		t := &Table{
			ID:     "fig5",
			Title:  fmt.Sprintf("Utilization vs failure rate (SDSC, balancing, a=0.1, c=%.1f)", c),
			XLabel: "failures",
		}
		for _, n := range failureAxis {
			t.X = append(t.X, float64(n))
		}
		t.allocTelemetry(len(failureAxis), opt)
		t.Series = capacitySeries(len(failureAxis))
		for xi, n := range failureAxis {
			pts = append(pts, capacityPoint(opt, fmt.Sprintf("c=%.1f|x=%d", c, n),
				baseCfg(opt, "SDSC", c, n, SchedBalancing, 0.1),
				t, &t.Series[0], &t.Series[1], &t.Series[2], xi))
		}
		tables = append(tables, t)
	}
	return tables, eng.runPoints("fig5", pts)
}

// paramFigure builds the three-panel slowdown-vs-parameter figure
// shared by Figures 6 (balancing) and 9 (tie-breaking). The failure
// count is the paper's reference 1000 (one failure per four days in
// the paper's density).
func paramFigure(eng *Engine, opt Options, id, param string, kind SchedulerKind) ([]*Table, error) {
	opt = opt.normalize()
	var tables []*Table
	var pts []point
	cvals := []float64{1.0, 1.2}
	for _, wl := range []string{"SDSC", "NASA", "LLNL"} {
		t := &Table{
			ID:     id,
			Title:  fmt.Sprintf("Avg %s vs %s (%s, %s)", opt.Metric, param, wl, kind),
			XLabel: param,
		}
		for _, a := range paramAxis {
			t.X = append(t.X, a)
		}
		t.Series = make([]Series, len(cvals))
		for si, c := range cvals {
			t.Series[si] = newSeries(fmt.Sprintf("c=%.1f", c), len(paramAxis), opt)
			for xi, a := range paramAxis {
				pts = append(pts, metricPoint(opt, fmt.Sprintf("%s|c=%.1f|x=%.1f", wl, c, a),
					baseCfg(opt, wl, c, 1000, kind, a), &t.Series[si], xi))
			}
		}
		tables = append(tables, t)
	}
	return tables, eng.runPoints(id, pts)
}

// Figure6 reproduces Figure 6: average bounded slowdown versus
// prediction confidence under the balancing algorithm for the SDSC,
// NASA and LLNL logs at c = 1.0 and 1.2.
func Figure6(eng *Engine, opt Options) ([]*Table, error) {
	return paramFigure(eng, opt, "fig6", "confidence", SchedBalancing)
}

// utilizationParamFigure builds the capacity-split-vs-parameter figure
// shared by Figures 7, 8 and 10.
func utilizationParamFigure(eng *Engine, opt Options, id, wl, param string, kind SchedulerKind) ([]*Table, error) {
	opt = opt.normalize()
	var tables []*Table
	var pts []point
	for _, c := range []float64{1.0, 1.2} {
		t := &Table{
			ID:     id,
			Title:  fmt.Sprintf("Utilization vs %s (%s, %s, c=%.1f)", param, wl, kind, c),
			XLabel: param,
		}
		for _, a := range paramAxis {
			t.X = append(t.X, a)
		}
		t.allocTelemetry(len(paramAxis), opt)
		t.Series = capacitySeries(len(paramAxis))
		for xi, a := range paramAxis {
			pts = append(pts, capacityPoint(opt, fmt.Sprintf("%s|c=%.1f|x=%.1f", wl, c, a),
				baseCfg(opt, wl, c, 1000, kind, a),
				t, &t.Series[0], &t.Series[1], &t.Series[2], xi))
		}
		tables = append(tables, t)
	}
	return tables, eng.runPoints(id, pts)
}

// Figure7 reproduces Figure 7: capacity split versus confidence for the
// SDSC log under the balancing algorithm.
func Figure7(eng *Engine, opt Options) ([]*Table, error) {
	return utilizationParamFigure(eng, opt, "fig7", "SDSC", "confidence", SchedBalancing)
}

// Figure8 reproduces Figure 8: capacity split versus confidence for the
// NASA log under the balancing algorithm.
func Figure8(eng *Engine, opt Options) ([]*Table, error) {
	return utilizationParamFigure(eng, opt, "fig8", "NASA", "confidence", SchedBalancing)
}

// Figure9 reproduces Figure 9: average bounded slowdown versus
// prediction accuracy under the tie-breaking algorithm for the SDSC,
// NASA and LLNL logs at c = 1.0 and 1.2.
func Figure9(eng *Engine, opt Options) ([]*Table, error) {
	return paramFigure(eng, opt, "fig9", "accuracy", SchedTieBreak)
}

// Figure10 reproduces Figure 10: capacity split versus accuracy for the
// LLNL log under the tie-breaking algorithm.
func Figure10(eng *Engine, opt Options) ([]*Table, error) {
	return utilizationParamFigure(eng, opt, "fig10", "LLNL", "accuracy", SchedTieBreak)
}
