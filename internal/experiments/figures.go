package experiments

import (
	"fmt"
	"sort"

	"bgsched/internal/metrics"
)

// metricsSummary is the run summary type metric extraction reads.
type metricsSummary = metrics.Summary

// Options tunes the scale of a figure reproduction. The zero value
// gives the full-scale defaults; benchmarks use smaller JobCounts and
// a single replication.
type Options struct {
	// JobCount is the synthetic log length per run (default 1500).
	JobCount int
	// Seed makes the entire figure deterministic (default 1).
	Seed int64
	// FailureScale overrides the nominal-to-injected failure mapping
	// (see RunConfig.FailureScale).
	FailureScale float64
	// Metric selects what the timing figures plot: "slowdown" (the
	// paper's bounded slowdown, default), "response" or "wait". The
	// capacity figures (5, 7, 8, 10) ignore it.
	Metric string
	// Replications runs each sweep point under this many seeds
	// (default 3) and aggregates; average bounded slowdown on short
	// logs is chaotic enough that single runs mislead.
	Replications int
	// Aggregate folds replicates into one point: "median" (default,
	// robust to queueing-collapse outliers) or "mean".
	Aggregate string
	// CollectTelemetry attaches a fresh telemetry registry to every
	// sweep point and embeds its snapshot in the resulting tables
	// (Series.Telemetry / Table.Telemetry), so curves carry per-point
	// search-cost and distribution data, not just final aggregates.
	CollectTelemetry bool
}

func (o Options) normalize() Options {
	if o.JobCount == 0 {
		o.JobCount = 1500
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Metric == "" {
		o.Metric = MetricSlowdown
	}
	if o.Replications == 0 {
		o.Replications = 3
	}
	if o.Aggregate == "" {
		o.Aggregate = AggMedian
	}
	return o
}

// Metric names accepted by Options.Metric.
const (
	MetricSlowdown = "slowdown"
	MetricResponse = "response"
	MetricWait     = "wait"
)

// metricValue extracts the selected metric from a run summary.
func metricValue(metric string, s metricsSummary) (float64, error) {
	switch metric {
	case MetricSlowdown:
		return s.AvgSlowdown, nil
	case MetricResponse:
		return s.AvgResponse, nil
	case MetricWait:
		return s.AvgWait, nil
	}
	return 0, fmt.Errorf("experiments: unknown metric %q (want %s, %s or %s)",
		metric, MetricSlowdown, MetricResponse, MetricWait)
}

// Spec identifies one reproducible figure of the paper.
type Spec struct {
	ID    string
	Title string
	Run   func(Options) ([]*Table, error)
}

// Specs lists every figure of the paper's evaluation section, in paper
// order. Figures 1 and 2 are illustrations, not experiments.
var Specs = []Spec{
	{"fig3", "Avg bounded slowdown vs failure rate, SDSC, balancing, a ∈ {0, 0.1, 0.9}", Figure3},
	{"fig4", "Avg bounded slowdown vs failure rate, SDSC, balancing, c ∈ {1.0, 1.2}", Figure4},
	{"fig5", "Utilization vs failure rate, SDSC, balancing, c ∈ {1.0, 1.2}", Figure5},
	{"fig6", "Avg bounded slowdown vs confidence, balancing, SDSC/NASA/LLNL", Figure6},
	{"fig7", "Utilization vs confidence, SDSC, balancing, c ∈ {1.0, 1.2}", Figure7},
	{"fig8", "Utilization vs confidence, NASA, balancing, c ∈ {1.0, 1.2}", Figure8},
	{"fig9", "Avg bounded slowdown vs accuracy, tie-breaking, SDSC/NASA/LLNL", Figure9},
	{"fig10", "Utilization vs accuracy, LLNL, tie-breaking, c ∈ {1.0, 1.2}", Figure10},
}

// SpecByID returns the spec for an id like "fig3".
func SpecByID(id string) (Spec, error) {
	for _, s := range Specs {
		if s.ID == id {
			return s, nil
		}
	}
	ids := make([]string, len(Specs))
	for i, s := range Specs {
		ids[i] = s.ID
	}
	sort.Strings(ids)
	return Spec{}, fmt.Errorf("experiments: unknown figure %q (have %v)", id, ids)
}

// failureAxis is the paper's failure-count sweep: 0 to 4000 in steps
// of 500 (Section 6.2).
var failureAxis = []int{0, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000}

// paramAxis is the paper's confidence/accuracy sweep: 0.0 to 1.0 in
// steps of 0.1 (Section 6.2).
var paramAxis = []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// baseCfg assembles the common RunConfig fields of a sweep point.
func baseCfg(opt Options, wl string, c float64, nominal int, kind SchedulerKind, a float64) RunConfig {
	return RunConfig{
		Workload: wl, JobCount: opt.JobCount, LoadScale: c,
		FailureNominal: nominal, FailureScale: opt.FailureScale,
		Scheduler: kind, Param: a, Seed: opt.Seed,
	}
}

// Figure3 reproduces Figure 3: average bounded slowdown versus failure
// rate for the SDSC log under the balancing algorithm, with no
// prediction (a=0.0) and with prediction at a=0.1 and a=0.9.
func Figure3(opt Options) ([]*Table, error) {
	opt = opt.normalize()
	t := &Table{
		ID:     "fig3",
		Title:  fmt.Sprintf("Avg %s vs failure rate (SDSC, balancing, c=1.0)", opt.Metric),
		XLabel: "failures",
	}
	for _, n := range failureAxis {
		t.X = append(t.X, float64(n))
	}
	for _, a := range []float64{0.0, 0.1, 0.9} {
		s := Series{Name: fmt.Sprintf("a=%.1f", a)}
		for _, n := range failureAxis {
			v, snap, err := runMetricPoint(opt, baseCfg(opt, "SDSC", 1.0, n, SchedBalancing, a))
			if err != nil {
				return nil, err
			}
			s.Y = append(s.Y, v)
			s.appendTelemetry(snap)
		}
		t.Series = append(t.Series, s)
	}
	return []*Table{t}, nil
}

// Figure4 reproduces Figure 4: average bounded slowdown versus failure
// rate for the SDSC log under the balancing algorithm at two load
// levels (c = 1.0 and 1.2). Prediction is held at a = 0.1, the paper's
// "modest confidence" operating point.
func Figure4(opt Options) ([]*Table, error) {
	opt = opt.normalize()
	t := &Table{
		ID:     "fig4",
		Title:  fmt.Sprintf("Avg %s vs failure rate (SDSC, balancing, a=0.1)", opt.Metric),
		XLabel: "failures",
	}
	for _, n := range failureAxis {
		t.X = append(t.X, float64(n))
	}
	for _, c := range []float64{1.0, 1.2} {
		s := Series{Name: fmt.Sprintf("c=%.1f", c)}
		for _, n := range failureAxis {
			v, snap, err := runMetricPoint(opt, baseCfg(opt, "SDSC", c, n, SchedBalancing, 0.1))
			if err != nil {
				return nil, err
			}
			s.Y = append(s.Y, v)
			s.appendTelemetry(snap)
		}
		t.Series = append(t.Series, s)
	}
	return []*Table{t}, nil
}

// Figure5 reproduces Figure 5: the capacity split (utilised / unused /
// lost) versus failure rate for the SDSC log under the balancing
// algorithm at a = 0.1, one panel per load level.
func Figure5(opt Options) ([]*Table, error) {
	opt = opt.normalize()
	var tables []*Table
	for _, c := range []float64{1.0, 1.2} {
		t := &Table{
			ID:     "fig5",
			Title:  fmt.Sprintf("Utilization vs failure rate (SDSC, balancing, a=0.1, c=%.1f)", c),
			XLabel: "failures",
		}
		util := Series{Name: "utilized"}
		unused := Series{Name: "unused"}
		lost := Series{Name: "lost"}
		for _, n := range failureAxis {
			t.X = append(t.X, float64(n))
			u, un, lo, snap, err := runCapacityPoint(opt, baseCfg(opt, "SDSC", c, n, SchedBalancing, 0.1))
			if err != nil {
				return nil, err
			}
			util.Y = append(util.Y, u)
			unused.Y = append(unused.Y, un)
			lost.Y = append(lost.Y, lo)
			t.appendTelemetry(snap)
		}
		t.Series = []Series{util, unused, lost}
		tables = append(tables, t)
	}
	return tables, nil
}

// paramFigure builds the three-panel slowdown-vs-parameter figure
// shared by Figures 6 (balancing) and 9 (tie-breaking). The failure
// count is the paper's reference 1000 (one failure per four days in
// the paper's density).
func paramFigure(opt Options, id, param string, kind SchedulerKind) ([]*Table, error) {
	opt = opt.normalize()
	var tables []*Table
	for _, wl := range []string{"SDSC", "NASA", "LLNL"} {
		t := &Table{
			ID:     id,
			Title:  fmt.Sprintf("Avg %s vs %s (%s, %s)", opt.Metric, param, wl, kind),
			XLabel: param,
		}
		for _, a := range paramAxis {
			t.X = append(t.X, a)
		}
		for _, c := range []float64{1.0, 1.2} {
			s := Series{Name: fmt.Sprintf("c=%.1f", c)}
			for _, a := range paramAxis {
				v, snap, err := runMetricPoint(opt, baseCfg(opt, wl, c, 1000, kind, a))
				if err != nil {
					return nil, err
				}
				s.Y = append(s.Y, v)
				s.appendTelemetry(snap)
			}
			t.Series = append(t.Series, s)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Figure6 reproduces Figure 6: average bounded slowdown versus
// prediction confidence under the balancing algorithm for the SDSC,
// NASA and LLNL logs at c = 1.0 and 1.2.
func Figure6(opt Options) ([]*Table, error) {
	return paramFigure(opt, "fig6", "confidence", SchedBalancing)
}

// utilizationParamFigure builds the capacity-split-vs-parameter figure
// shared by Figures 7, 8 and 10.
func utilizationParamFigure(opt Options, id, wl, param string, kind SchedulerKind) ([]*Table, error) {
	opt = opt.normalize()
	var tables []*Table
	for _, c := range []float64{1.0, 1.2} {
		t := &Table{
			ID:     id,
			Title:  fmt.Sprintf("Utilization vs %s (%s, %s, c=%.1f)", param, wl, kind, c),
			XLabel: param,
		}
		util := Series{Name: "utilized"}
		unused := Series{Name: "unused"}
		lost := Series{Name: "lost"}
		for _, a := range paramAxis {
			t.X = append(t.X, a)
			u, un, lo, snap, err := runCapacityPoint(opt, baseCfg(opt, wl, c, 1000, kind, a))
			if err != nil {
				return nil, err
			}
			util.Y = append(util.Y, u)
			unused.Y = append(unused.Y, un)
			lost.Y = append(lost.Y, lo)
			t.appendTelemetry(snap)
		}
		t.Series = []Series{util, unused, lost}
		tables = append(tables, t)
	}
	return tables, nil
}

// Figure7 reproduces Figure 7: capacity split versus confidence for the
// SDSC log under the balancing algorithm.
func Figure7(opt Options) ([]*Table, error) {
	return utilizationParamFigure(opt, "fig7", "SDSC", "confidence", SchedBalancing)
}

// Figure8 reproduces Figure 8: capacity split versus confidence for the
// NASA log under the balancing algorithm.
func Figure8(opt Options) ([]*Table, error) {
	return utilizationParamFigure(opt, "fig8", "NASA", "confidence", SchedBalancing)
}

// Figure9 reproduces Figure 9: average bounded slowdown versus
// prediction accuracy under the tie-breaking algorithm for the SDSC,
// NASA and LLNL logs at c = 1.0 and 1.2.
func Figure9(opt Options) ([]*Table, error) {
	return paramFigure(opt, "fig9", "accuracy", SchedTieBreak)
}

// Figure10 reproduces Figure 10: capacity split versus accuracy for the
// LLNL log under the tie-breaking algorithm.
func Figure10(opt Options) ([]*Table, error) {
	return utilizationParamFigure(opt, "fig10", "LLNL", "accuracy", SchedTieBreak)
}
