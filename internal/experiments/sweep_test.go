package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"bgsched/internal/resilience"
	"bgsched/internal/telemetry"
)

// smallOpt keeps engine tests fast: tiny logs, single replication.
var smallOpt = Options{JobCount: 40, Seed: 2, Replications: 1}

// syntheticPoints builds n points that write their index into out and
// invoke probe first (nil probe = succeed).
func syntheticPoints(n int, out []float64, probe func(i int) error) []point {
	pts := make([]point, n)
	for i := range pts {
		i := i
		pts[i] = point{
			key: fmt.Sprintf("p=%d", i),
			cfg: RunConfig{Seed: int64(i)},
			run: func(ctx context.Context, cfg RunConfig) ([]float64, *telemetry.Snapshot, error) {
				if probe != nil {
					if err := probe(i); err != nil {
						return nil, nil, err
					}
				}
				return []float64{float64(i)}, nil, nil
			},
			fill: func(vals []float64, _ *telemetry.Snapshot) {
				if len(vals) < 1 {
					out[i] = math.NaN()
					return
				}
				out[i] = vals[0]
			},
		}
	}
	return pts
}

// A parallel engine must produce exactly the tables of the legacy
// sequential path: points fill disjoint pre-allocated slots, so
// scheduling order cannot leak into the output.
func TestEngineParallelMatchesSequential(t *testing.T) {
	seq, err := Figure4(nil, smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Figure4(&Engine{Workers: 4}, smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel tables diverged from sequential:\nseq: %+v\npar: %+v", seq[0], par[0])
	}
}

// A point that panics on every attempt must be retried the configured
// number of times, recorded as a failure with accurate attempt
// accounting, and must not disturb sibling points.
func TestEnginePanicIsolationAndRetryAccounting(t *testing.T) {
	const n, bad = 8, 3
	out := make([]float64, n)
	var attempts int32
	eng := &Engine{Workers: 2, Retries: 2}
	err := eng.runPoints("figX", syntheticPoints(n, out, func(i int) error {
		if i == bad {
			atomic.AddInt32(&attempts, 1)
			panic("synthetic point explosion")
		}
		return nil
	}))
	if err != nil {
		t.Fatalf("isolated failure escaped runPoints: %v", err)
	}
	if got := atomic.LoadInt32(&attempts); got != 3 {
		t.Fatalf("bad point ran %d times, want 1 + 2 retries", got)
	}
	fails := eng.Failures()
	if len(fails) != 1 {
		t.Fatalf("failures = %d, want 1", len(fails))
	}
	pe := fails[0]
	if pe.Figure != "figX" || pe.Key != "p=3" || pe.Attempts != 3 || pe.Seed != int64(bad) {
		t.Fatalf("failure record = %+v", pe)
	}
	if p, ok := resilience.IsPanic(pe); !ok || p.Value != "synthetic point explosion" {
		t.Fatalf("panic payload lost: %+v", pe)
	}
	for i, v := range out {
		if i == bad {
			if !math.IsNaN(v) {
				t.Fatalf("failed point slot = %g, want NaN", v)
			}
		} else if v != float64(i) {
			t.Fatalf("sibling point %d = %g, disturbed by the failure", i, v)
		}
	}
}

// A transient failure must succeed on retry without being recorded.
func TestEngineRetryRecovers(t *testing.T) {
	const n = 4
	out := make([]float64, n)
	var first int32
	eng := &Engine{Workers: 1, Retries: 1}
	err := eng.runPoints("figX", syntheticPoints(n, out, func(i int) error {
		if i == 2 && atomic.CompareAndSwapInt32(&first, 0, 1) {
			return errors.New("transient")
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(eng.Failures()) != 0 {
		t.Fatalf("recovered point recorded as failed: %v", eng.Failures())
	}
	if out[2] != 2 {
		t.Fatalf("retried point value = %g", out[2])
	}
}

// Without isolation (nil engine), the legacy contract holds: the first
// point error aborts the sweep as a typed *PointError.
func TestNilEngineFailsFast(t *testing.T) {
	out := make([]float64, 2)
	var eng *Engine
	err := eng.runPoints("figX", syntheticPoints(2, out, func(i int) error {
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	}))
	var pe *resilience.PointError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PointError", err)
	}
	if pe.Key != "p=0" || pe.Attempts != 1 {
		t.Fatalf("record = %+v", pe)
	}
}

func TestEngineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := &Engine{Ctx: ctx, Workers: 2}
	out := make([]float64, 4)
	err := eng.runPoints("figX", syntheticPoints(4, out, nil))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := Figure4(&Engine{Ctx: ctx}, smallOpt); !errors.Is(err, context.Canceled) {
		t.Fatalf("figure under cancelled ctx = %v", err)
	}
}

// Interrupted-run round trip: journal a full figure, simulate an
// interruption by truncating the journal to a prefix of its points,
// then resume. The resumed run must re-execute only the missing points
// and produce a table identical to the uninterrupted run.
func TestEngineResumeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")

	j, err := resilience.CreateJournal(full, resilience.JournalMeta{Tool: "test", ConfigHash: "h"})
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{Workers: 2, Journal: j}
	want, err := Figure4(eng, smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	jc, err := resilience.ReadJournal(full)
	if err != nil {
		t.Fatal(err)
	}
	nPoints := len(jc.Points)
	if nPoints != 2*len(failureAxis) {
		t.Fatalf("journalled %d points, want %d", nPoints, 2*len(failureAxis))
	}

	// "Interrupt": keep roughly half the completed points.
	kept := make(map[string]resilience.PointRecord, nPoints/2)
	for k, rec := range jc.Points {
		if len(kept) >= nPoints/2 {
			break
		}
		kept[k] = rec
	}

	resumed := &Engine{Workers: 2, Resumed: kept}
	got, err := Figure4(resumed, smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.ResumedPoints() != len(kept) {
		t.Fatalf("resumed %d points, want %d", resumed.ResumedPoints(), len(kept))
	}
	if len(want) != len(got) {
		t.Fatalf("table counts differ")
	}
	for i := range want {
		if !reflect.DeepEqual(want[i].X, got[i].X) || !reflect.DeepEqual(want[i].Series, got[i].Series) {
			t.Fatalf("resumed table %d diverged from uninterrupted run:\nwant %+v\ngot  %+v",
				i, want[i].Series, got[i].Series)
		}
	}
}

// Journalled records must carry the figure, the point key, and the
// point's base seed, so a resumed run can match them exactly.
func TestEngineJournalRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := resilience.CreateJournal(path, resilience.JournalMeta{Tool: "test"})
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{Workers: 1, Journal: j}
	out := make([]float64, 3)
	if err := eng.runPoints("figJ", syntheticPoints(3, out, nil)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	jc, err := resilience.ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rec, ok := jc.Points[resilience.PointKey("figJ", fmt.Sprintf("p=%d", i))]
		if !ok {
			t.Fatalf("point %d missing from journal", i)
		}
		if rec.Seed != int64(i) || len(rec.Values) != 1 || rec.Values[0] != float64(i) {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
}

// A failed point must not be journalled: resuming must re-attempt it.
func TestEngineFailedPointNotJournalled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := resilience.CreateJournal(path, resilience.JournalMeta{Tool: "test"})
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{Workers: 1, Journal: j}
	out := make([]float64, 2)
	err = eng.runPoints("figJ", syntheticPoints(2, out, func(i int) error {
		if i == 0 {
			return errors.New("permanent")
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	jc, err := resilience.ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := jc.Points[resilience.PointKey("figJ", "p=0")]; ok {
		t.Fatal("failed point was journalled as completed")
	}
	if _, ok := jc.Points[resilience.PointKey("figJ", "p=1")]; !ok {
		t.Fatal("successful sibling missing from journal")
	}
}

// CheckInvariants on the engine must reach every point's RunConfig.
func TestEngineThreadsInvariantChecking(t *testing.T) {
	eng := &Engine{Workers: 1, CheckInvariants: true}
	var seen int32
	pts := []point{{
		key: "p",
		cfg: RunConfig{},
		run: func(ctx context.Context, cfg RunConfig) ([]float64, *telemetry.Snapshot, error) {
			if cfg.CheckInvariants {
				atomic.StoreInt32(&seen, 1)
			}
			return []float64{1}, nil, nil
		},
		fill: func([]float64, *telemetry.Snapshot) {},
	}}
	if err := eng.runPoints("figC", pts); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Fatal("CheckInvariants not threaded into the point config")
	}
}
