package experiments_test

import (
	"fmt"

	"bgsched/internal/experiments"
)

// Running one simulation: the paper's headline configuration — the
// balancing scheduler with a 10%-confidence predictor — on a small
// SDSC-like workload.
func ExampleRun() {
	res, err := experiments.Run(experiments.RunConfig{
		Workload:       "SDSC",
		JobCount:       200,
		FailureNominal: 1000,
		Scheduler:      experiments.SchedBalancing,
		Param:          0.1,
		Seed:           1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("jobs finished:", res.Summary.Jobs)
	fmt.Println("all capacity accounted for:",
		res.Summary.Utilization+res.Summary.UnusedCapacity+res.Summary.LostCapacity > 0.999)
	// Output:
	// jobs finished: 200
	// all capacity accounted for: true
}

// Replicating a configuration across seeds and aggregating, the way
// the figure harness does.
func ExampleRunSeeds() {
	rs, err := experiments.RunSeeds(experiments.RunConfig{
		Workload:  "NASA",
		JobCount:  100,
		Scheduler: experiments.SchedBaseline,
		Seed:      1,
	}, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	vals, _ := rs.Metric(experiments.MetricSlowdown)
	fmt.Println("replicates:", len(vals))
	// Output:
	// replicates: 3
}
