package experiments

import (
	"context"
	"fmt"
	"strings"

	"bgsched/internal/partition"
	"bgsched/internal/telemetry"
)

// TournamentOptions parameterises the placement-policy tournament.
// The zero value is the frozen default bracket the golden tournament
// digest pins.
type TournamentOptions struct {
	// JobCount is the synthetic log length per entry; 0 means 100.
	JobCount int
	// Seed drives workload synthesis and failure generation; 0 means 7
	// (the golden grid's seed).
	Seed int64
	// FailureNominal is the injected failure count in paper-axis units;
	// 0 means 1000. Failures keep the fault-aware scheduler honest while
	// the placement policy varies.
	FailureNominal int
	// AnnealSeed seeds the anneal finder's placement search; 0 means 1.
	AnnealSeed int64
	// Levels are the contention presets every finder runs under; nil
	// means {"off", "medium"} — the paper's contention-free model next
	// to a loaded network.
	Levels []string
	// Workloads are the synthetic logs every finder runs; nil means the
	// three paper models {"NASA", "SDSC", "LLNL"}.
	Workloads []string
}

func (o *TournamentOptions) normalize() {
	if o.JobCount == 0 {
		o.JobCount = 100
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	if o.FailureNominal == 0 {
		o.FailureNominal = 1000
	}
	if o.AnnealSeed == 0 {
		o.AnnealSeed = 1
	}
	if o.Levels == nil {
		o.Levels = []string{"off", "medium"}
	}
	if o.Workloads == nil {
		o.Workloads = []string{"NASA", "SDSC", "LLNL"}
	}
}

// Tournament runs the placement-policy tournament: every registered
// partition finder against every workload model, with the network-
// contention model off and on, under the paper's balancing scheduler.
// Each entry is one full simulation; the merged table carries one row
// per (finder, workload, contention) combination with the headline
// scheduling metrics plus the contention model's dilation total. The
// bracket is Baranov-style — identical inputs for every contestant, so
// a row differs from its neighbours only through the finder's
// placement choices and the contention level.
//
// The default bracket is frozen by the golden tournament digest
// (golden_tournament_test.go): byte-identical cold vs warm and across
// same-seed re-runs.
func Tournament(eng *Engine, opt TournamentOptions) (*Table, error) {
	if eng != nil && eng.Finder != "" {
		return nil, fmt.Errorf("experiments: tournament varies the finder; clear Engine.Finder (have %q)", eng.Finder)
	}
	if eng != nil && eng.Contention != "" {
		return nil, fmt.Errorf("experiments: tournament varies contention; clear Engine.Contention (have %q)", eng.Contention)
	}
	opt.normalize()
	n := len(partition.Names) * len(opt.Workloads) * len(opt.Levels)
	t := &Table{
		ID:     "tournament",
		Title:  "Placement-policy tournament (finder x workload x contention)",
		XLabel: "finder/workload/contention",
		X:      make([]float64, n),
		Rows:   make([]string, n),
		Series: []Series{
			{Name: "bounded slowdown", Y: nanSlots(n)},
			{Name: "avg wait", Y: nanSlots(n)},
			{Name: "utilization", Y: nanSlots(n)},
			{Name: "dilation (s)", Y: nanSlots(n)},
		},
	}
	pts := make([]point, 0, n)
	next := 0
	for _, finder := range partition.Names {
		for _, wl := range opt.Workloads {
			for _, level := range opt.Levels {
				i := next
				next++
				t.X[i] = float64(i)
				t.Rows[i] = fmt.Sprintf("%s/%s/%s", finder, strings.ToLower(wl), level)
				cfg := RunConfig{
					Workload:       wl,
					JobCount:       opt.JobCount,
					FailureNominal: opt.FailureNominal,
					Scheduler:      SchedBalancing,
					Param:          0.5,
					Finder:         finder,
					AnnealSeed:     opt.AnnealSeed,
					Contention:     level,
					Seed:           opt.Seed,
				}
				pts = append(pts, point{
					key: t.Rows[i],
					cfg: cfg,
					run: func(ctx context.Context, cfg RunConfig) ([]float64, *telemetry.Snapshot, error) {
						res, err := RunContext(ctx, cfg)
						if err != nil {
							return nil, nil, err
						}
						return []float64{res.Summary.AvgSlowdown, res.Summary.AvgWait,
							res.Summary.Utilization, res.DilationSeconds}, nil, nil
					},
					fill: func(vals []float64, _ *telemetry.Snapshot) {
						if len(vals) < 4 {
							return // slots stay NaN for a failed point
						}
						for si := range t.Series {
							t.Series[si].Y[i] = vals[si]
						}
					},
				})
			}
		}
	}
	return t, eng.runPoints("tournament", pts)
}
