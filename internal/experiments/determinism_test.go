package experiments

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"bgsched/internal/build"
	"bgsched/internal/telemetry"
)

// determinismGrid is a small sweep whose points deliberately share
// (workload, seed, jobs, failures) sub-configs, so a warm artifact
// cache serves every synthesis stage from memory.
func determinismGrid() []RunConfig {
	return []RunConfig{
		{Workload: "SDSC", JobCount: 100, FailureNominal: 1000, Scheduler: SchedBaseline, Seed: 3},
		{Workload: "SDSC", JobCount: 100, FailureNominal: 1000, Scheduler: SchedBalancing, Param: 0.2, Seed: 3},
		{Workload: "SDSC", JobCount: 100, FailureNominal: 1000, Scheduler: SchedBalancing, Param: 0.8, Seed: 3},
		{Workload: "SDSC", JobCount: 100, FailureNominal: 1000, Scheduler: SchedTieBreak, Param: 0.5, Seed: 3},
		{Workload: "NASA", JobCount: 80, FailureNominal: 500, Scheduler: SchedBalancing, Param: 0.5, Seed: 3},
		{Workload: "NASA", JobCount: 80, FailureNominal: 500, Scheduler: SchedTieBreak, Param: 0.9, Seed: 3},
	}
}

// sweepFingerprints runs the grid through the Engine's worker pool and
// returns one byte-exact fingerprint per point (summary metrics in %v
// shortest-float form plus the full JSONL event log), along with the
// build-cache hit/miss totals the sweep accumulated.
func sweepFingerprints(t *testing.T, grid []RunConfig, workers int) ([]string, int64, int64) {
	t.Helper()
	fps := make([]string, len(grid))
	var mu sync.Mutex
	var hits, misses int64

	pts := make([]point, len(grid))
	for i, cfg := range grid {
		i, cfg := i, cfg
		pts[i] = point{
			key: fmt.Sprintf("p%d", i),
			cfg: cfg,
			run: func(ctx context.Context, cfg RunConfig) ([]float64, *telemetry.Snapshot, error) {
				var events bytes.Buffer
				reg := telemetry.New()
				cfg.EventLog = &events
				cfg.Telemetry = reg
				res, err := RunContext(ctx, cfg)
				if err != nil {
					return nil, nil, err
				}
				fp := fmt.Sprintf("jobs=%d kills=%d failures=%d backfills=%d wait=%v resp=%v slow=%v util=%v\n%s",
					res.Summary.Jobs, res.JobKills, res.FailureEvents, res.Backfills,
					res.Summary.AvgWait, res.Summary.AvgResponse, res.Summary.AvgSlowdown,
					res.Summary.Utilization, events.String())
				mu.Lock()
				fps[i] = fp
				hits += reg.Counter("build.cache.hits").Value()
				misses += reg.Counter("build.cache.misses").Value()
				mu.Unlock()
				return []float64{res.Summary.AvgWait}, nil, nil
			},
			fill: func([]float64, *telemetry.Snapshot) {},
		}
	}
	e := &Engine{Workers: workers}
	if err := e.runPoints("determinism", pts); err != nil {
		t.Fatal(err)
	}
	return fps, hits, misses
}

// TestSweepColdVsWarmDeterminism is the cache's contract at sweep
// scale: a sweep served from a prewarmed artifact cache must be
// byte-identical — metrics and event logs — to the same sweep started
// cold, and the warm pass must actually have been served from the
// cache (zero misses).
func TestSweepColdVsWarmDeterminism(t *testing.T) {
	grid := determinismGrid()

	build.Shared.Purge()
	cold, _, coldMisses := sweepFingerprints(t, grid, 4)
	if coldMisses == 0 {
		t.Fatal("cold sweep recorded no cache misses; the purge or the counters are broken")
	}

	warm, warmHits, warmMisses := sweepFingerprints(t, grid, 4)
	if warmMisses != 0 {
		t.Fatalf("warm sweep recomputed %d stages; expected full reuse", warmMisses)
	}
	if warmHits == 0 {
		t.Fatal("warm sweep recorded no cache hits")
	}

	for i := range grid {
		if cold[i] != warm[i] {
			t.Errorf("point %d: warm-cache sweep diverged from cold-cache sweep", i)
		}
	}
}
