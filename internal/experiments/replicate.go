package experiments

import (
	"context"
	"fmt"

	"bgsched/internal/sim"
	"bgsched/internal/stats"
	"bgsched/internal/telemetry"
)

// seedStride separates replicate seeds. Run derives internal seeds as
// Seed+1..Seed+3, so any stride comfortably above that avoids overlap.
const seedStride = 101

// ReplicateSet holds the results of the same configuration run under
// several seeds. Average bounded slowdown is a heavy-tailed, chaotic
// metric on short logs — a single queueing episode can dominate it —
// so the figure harness replicates every point and aggregates.
type ReplicateSet struct {
	Results []sim.Result
}

// RunSeeds executes cfg under reps different seeds (cfg.Seed,
// cfg.Seed+seedStride, ...).
func RunSeeds(cfg RunConfig, reps int) (ReplicateSet, error) {
	return RunSeedsContext(context.Background(), cfg, reps)
}

// RunSeedsContext is RunSeeds under a cancellation context; the context
// also cancels each replicate's event loop mid-run.
func RunSeedsContext(ctx context.Context, cfg RunConfig, reps int) (ReplicateSet, error) {
	if reps < 1 {
		return ReplicateSet{}, fmt.Errorf("experiments: %d replications", reps)
	}
	rs := ReplicateSet{Results: make([]sim.Result, 0, reps)}
	for i := 0; i < reps; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*seedStride
		res, err := RunContext(ctx, c)
		if err != nil {
			return ReplicateSet{}, err
		}
		rs.Results = append(rs.Results, res)
	}
	return rs, nil
}

// Metric extracts one named metric from every replicate.
func (rs ReplicateSet) Metric(name string) ([]float64, error) {
	out := make([]float64, 0, len(rs.Results))
	for _, r := range rs.Results {
		v, err := metricValue(name, r.Summary)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Capacity extracts the (utilized, unused, lost) triple per replicate.
func (rs ReplicateSet) Capacity() (util, unused, lost []float64) {
	for _, r := range rs.Results {
		util = append(util, r.Summary.Utilization)
		unused = append(unused, r.Summary.UnusedCapacity)
		lost = append(lost, r.Summary.LostCapacity)
	}
	return
}

// Aggregation modes for replicated points.
const (
	AggMean   = "mean"
	AggMedian = "median"
)

// aggregate folds replicate values into one point.
func aggregate(vals []float64, how string) (float64, error) {
	switch how {
	case AggMean:
		return stats.Mean(vals), nil
	case AggMedian:
		return stats.Quantile(vals, 0.5), nil
	}
	return 0, fmt.Errorf("experiments: unknown aggregate %q (want %s or %s)", how, AggMean, AggMedian)
}

// pointRegistry prepares per-point telemetry collection: when enabled
// it attaches a fresh registry to cfg (shared by the point's
// replicates) and returns it for snapshotting.
func pointRegistry(opt Options, cfg *RunConfig) *telemetry.Registry {
	if !opt.CollectTelemetry {
		return nil
	}
	reg := telemetry.New()
	cfg.Telemetry = reg
	return reg
}

// runMetricPoint runs one sweep point with replication and returns the
// aggregated metric value, plus the point's telemetry snapshot when
// Options.CollectTelemetry is set (nil otherwise).
func runMetricPoint(opt Options, cfg RunConfig) (float64, *telemetry.Snapshot, error) {
	return runMetricPointContext(context.Background(), opt, cfg)
}

// runMetricPointContext is runMetricPoint under a cancellation context.
func runMetricPointContext(ctx context.Context, opt Options, cfg RunConfig) (float64, *telemetry.Snapshot, error) {
	reg := pointRegistry(opt, &cfg)
	rs, err := RunSeedsContext(ctx, cfg, opt.Replications)
	if err != nil {
		return 0, nil, err
	}
	vals, err := rs.Metric(opt.Metric)
	if err != nil {
		return 0, nil, err
	}
	v, err := aggregate(vals, opt.Aggregate)
	if err != nil {
		return 0, nil, err
	}
	return v, reg.Snapshot(), nil
}

// runCapacityPoint runs one sweep point with replication and returns
// the aggregated capacity split, plus the point's telemetry snapshot
// when Options.CollectTelemetry is set (nil otherwise).
func runCapacityPoint(ctx context.Context, opt Options, cfg RunConfig) (util, unused, lost float64, snap *telemetry.Snapshot, err error) {
	reg := pointRegistry(opt, &cfg)
	rs, err := RunSeedsContext(ctx, cfg, opt.Replications)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	us, ns, ls := rs.Capacity()
	if util, err = aggregate(us, opt.Aggregate); err != nil {
		return
	}
	if unused, err = aggregate(ns, opt.Aggregate); err != nil {
		return
	}
	if lost, err = aggregate(ls, opt.Aggregate); err != nil {
		return
	}
	snap = reg.Snapshot()
	return
}
