package experiments

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"bgsched/internal/resilience"
	"bgsched/internal/telemetry"
	"bgsched/internal/trace"
)

// Engine coordinates crash-resilient sweep execution for the figure
// reproductions: points run on a bounded worker pool, panics inside a
// point are contained and retried, completed points are journalled for
// resumption, and cancellation drains cleanly. The zero value (and a
// nil *Engine) is the legacy behaviour: sequential execution, no
// retries, no journal, and the first point error aborts the figure.
//
// Figures pre-allocate their series and each point fills disjoint
// slots, so the final tables are identical whatever order the pool
// happens to run points in.
//
// Points build their simulations through the staged run-builder
// (internal/build) and therefore share the process-wide artifact cache:
// sweep points differing only in policy parameters reuse each other's
// synthesized workloads and failure traces, whichever worker got there
// first. Artifact reuse never changes results — see
// TestSweepColdVsWarmDeterminism.
type Engine struct {
	// Ctx cancels the sweep; nil means context.Background().
	Ctx context.Context
	// Workers bounds concurrent points. 0 means one worker per CPU;
	// 1 forces sequential execution.
	Workers int
	// Retries is how many times a failed or panicking point is retried
	// before it is recorded as failed (its slots become NaN and the
	// sweep continues). 0 means a single attempt.
	Retries int
	// Isolate keeps sibling points alive when one point exhausts its
	// retries: the failure is recorded (see Failures) instead of
	// aborting the figure. Implied by Retries > 0, a Journal, or
	// Resumed state; set it explicitly to isolate without retrying.
	Isolate bool
	// Journal, when non-nil, receives one record per completed point.
	Journal *resilience.Journal
	// Resumed maps resilience.PointKey(figure, key) to records from a
	// previous run's journal; matching points are skipped and their
	// journalled values reused. Resumed points carry no telemetry
	// snapshot (snapshots are not journalled).
	Resumed map[string]resilience.PointRecord
	// CheckInvariants turns on the simulator's conservation guard for
	// every point of the sweep.
	CheckInvariants bool
	// Finder selects the free-partition search algorithm for every
	// point of the sweep (see RunConfig.Finder); empty keeps each
	// point's own setting (normally the shape default). FinderWorkers
	// bounds the fast finder's enumeration pool per point.
	Finder        string
	FinderWorkers int
	// AnnealSeed seeds the "anneal" finder's placement search for every
	// point of the sweep (RunConfig.AnnealSeed); 0 keeps each point's
	// own seed. Contention, when non-empty, selects the network-
	// contention preset for every point (RunConfig.Contention).
	AnnealSeed int64
	Contention string
	// TraceDir, when non-empty, writes one NDJSON causal trace per
	// fresh point to <TraceDir>/<figure>-<key>.trace.ndjson (see
	// internal/trace), headed by a meta record identifying the point.
	// Resumed points produce no trace (they do not re-run).
	TraceDir string
	// FlightEvents, when > 0, equips every fresh point's simulation
	// with a kernel flight recorder of that many events, dumping to
	// stderr on an invariant violation and answering SIGQUIT while the
	// point is in flight.
	FlightEvents int

	mu       sync.Mutex
	failures []*resilience.PointError
	resumed  int
}

// context returns the engine's cancellation context.
func (e *Engine) context() context.Context {
	if e == nil || e.Ctx == nil {
		return context.Background()
	}
	return e.Ctx
}

// workerCount resolves the pool size; a nil engine is sequential.
func (e *Engine) workerCount() int {
	if e == nil {
		return 1
	}
	if e.Workers == 0 {
		return resilience.DefaultWorkers()
	}
	return e.Workers
}

// isolating reports whether point failures are recorded rather than
// aborting the figure.
func (e *Engine) isolating() bool {
	return e != nil && (e.Isolate || e.Retries > 0 || e.Journal != nil || e.Resumed != nil)
}

// Failures returns the points that exhausted their retries, sorted by
// figure then key. The corresponding table slots hold NaN.
func (e *Engine) Failures() []*resilience.PointError {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*resilience.PointError, len(e.failures))
	copy(out, e.failures)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Figure != out[j].Figure {
			return out[i].Figure < out[j].Figure
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// ResumedPoints returns how many points were satisfied from the resume
// journal instead of being re-run.
func (e *Engine) ResumedPoints() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.resumed
}

func (e *Engine) recordFailure(pe *resilience.PointError) {
	e.mu.Lock()
	e.failures = append(e.failures, pe)
	e.mu.Unlock()
}

// point is one unit of sweep work: a keyed simulation configuration,
// the computation producing its values, and the writer placing those
// values into pre-allocated table slots. run executes on a pool worker;
// fill must write only slots no other point touches.
type point struct {
	key  string
	cfg  RunConfig
	run  func(ctx context.Context, cfg RunConfig) ([]float64, *telemetry.Snapshot, error)
	fill func(vals []float64, snap *telemetry.Snapshot)
}

// runPoints executes a figure's points through the engine: resumed
// points are filled from the journal, fresh points run on the worker
// pool with panic containment and retries, and completions are
// journalled. The returned error is a cancellation, a journal-write
// failure, or — when the engine is not isolating — the first point
// error.
func (e *Engine) runPoints(figure string, pts []point) error {
	ctx := e.context()
	return resilience.ForEach(ctx, len(pts), e.workerCount(), func(i int) error {
		p := pts[i]
		if e != nil {
			if rec, ok := e.Resumed[resilience.PointKey(figure, p.key)]; ok {
				p.fill(rec.Values, nil)
				e.mu.Lock()
				e.resumed++
				e.mu.Unlock()
				return nil
			}
			if e.CheckInvariants {
				p.cfg.CheckInvariants = true
			}
			if e.Finder != "" {
				p.cfg.Finder = e.Finder
				p.cfg.FinderWorkers = e.FinderWorkers
			}
			if e.AnnealSeed != 0 {
				p.cfg.AnnealSeed = e.AnnealSeed
			}
			if e.Contention != "" {
				p.cfg.Contention = e.Contention
			}
			if e.FlightEvents > 0 {
				p.cfg.Flight = trace.NewFlightRecorder(e.FlightEvents, os.Stderr, figure+" "+p.key)
			}
			if e.TraceDir != "" {
				f, err := e.openPointTrace(figure, p.key)
				if err != nil {
					return err
				}
				defer f.Close()
				p.cfg.Trace = trace.New(f, trace.Options{})
				p.cfg.Trace.Meta(
					trace.F("figure", figure), trace.F("point", p.key),
					trace.F("workload", p.cfg.Workload),
					trace.F("scheduler", string(p.cfg.Scheduler)),
					trace.Fint("seed", p.cfg.Seed))
			}
		}

		var vals []float64
		var snap *telemetry.Snapshot
		attempts := 0
		for {
			attempts++
			err := resilience.Safe(func() error {
				var runErr error
				vals, snap, runErr = p.run(ctx, p.cfg)
				return runErr
			})
			if err == nil {
				break
			}
			if resilience.Canceled(err) {
				return err
			}
			retries := 0
			if e != nil {
				retries = e.Retries
			}
			if attempts <= retries {
				continue
			}
			pe := &resilience.PointError{
				Figure: figure, Key: p.key, Seed: p.cfg.Seed, Attempts: attempts, Err: err,
			}
			if !e.isolating() {
				return pe
			}
			e.recordFailure(pe)
			p.fill(nil, nil) // failed: the point's slots become NaN
			return nil
		}
		p.fill(vals, snap)
		if e != nil && e.Journal != nil {
			rec := resilience.PointRecord{Figure: figure, Key: p.key, Seed: p.cfg.Seed, Values: vals}
			if err := e.Journal.Append(rec); err != nil {
				return fmt.Errorf("experiments: journal: %w", err)
			}
		}
		return nil
	})
}

// openPointTrace creates the per-point trace artifact file, creating
// TraceDir on first use.
func (e *Engine) openPointTrace(figure, key string) (*os.File, error) {
	if err := os.MkdirAll(e.TraceDir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: trace dir: %w", err)
	}
	name := figure + "-" + sanitizeKey(key) + ".trace.ndjson"
	f, err := os.Create(filepath.Join(e.TraceDir, name))
	if err != nil {
		return nil, fmt.Errorf("experiments: point trace: %w", err)
	}
	return f, nil
}

// sanitizeKey maps a point key onto a filesystem-safe name: the keys
// use "|" as a field separator and may carry "=" and ".".
func sanitizeKey(key string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '|', '/', '\\', ':', ' ':
			return '_'
		}
		return r
	}, key)
}

// nanSlots pre-fills a value slice with NaN so slots of points that
// never ran — a cancelled sweep, a failed point — read as "absent"
// rather than as a plausible zero. Completed points overwrite their
// slots; a fully-run figure contains no NaN unless a point failed.
func nanSlots(n int) []float64 {
	y := make([]float64, n)
	for i := range y {
		y[i] = math.NaN()
	}
	return y
}

// newSeries pre-allocates one curve with n point slots (plus telemetry
// slots when collection is on), ready for concurrent slot filling.
func newSeries(name string, n int, opt Options) Series {
	s := Series{Name: name, Y: nanSlots(n)}
	if opt.CollectTelemetry {
		s.Telemetry = make([]*telemetry.Snapshot, n)
	}
	return s
}

// capacitySeries pre-allocates the (utilized, unused, lost) triple of
// a capacity-split table. Snapshots for these figures live on the
// table (the three series share runs), so no series telemetry slots.
func capacitySeries(n int) []Series {
	return []Series{
		{Name: "utilized", Y: nanSlots(n)},
		{Name: "unused", Y: nanSlots(n)},
		{Name: "lost", Y: nanSlots(n)},
	}
}

// allocTelemetry pre-allocates the table's per-x-point snapshot slots
// when collection is on (used by figures whose series share runs).
func (t *Table) allocTelemetry(n int, opt Options) {
	if opt.CollectTelemetry {
		t.Telemetry = make([]*telemetry.Snapshot, n)
	}
}

// metricPoint builds the point computing one aggregated metric value
// into slot xi of series s.
func metricPoint(opt Options, key string, cfg RunConfig, s *Series, xi int) point {
	return point{
		key: key,
		cfg: cfg,
		run: func(ctx context.Context, cfg RunConfig) ([]float64, *telemetry.Snapshot, error) {
			v, snap, err := runMetricPointContext(ctx, opt, cfg)
			if err != nil {
				return nil, nil, err
			}
			return []float64{v}, snap, nil
		},
		fill: func(vals []float64, snap *telemetry.Snapshot) {
			if len(vals) < 1 {
				s.Y[xi] = math.NaN()
				return
			}
			s.Y[xi] = vals[0]
			if s.Telemetry != nil {
				s.Telemetry[xi] = snap
			}
		},
	}
}

// capacityPoint builds the point computing the (utilized, unused,
// lost) capacity split into slot xi of three series, with the shared
// snapshot going to the table's telemetry slot.
func capacityPoint(opt Options, key string, cfg RunConfig, t *Table, util, unused, lost *Series, xi int) point {
	return point{
		key: key,
		cfg: cfg,
		run: func(ctx context.Context, cfg RunConfig) ([]float64, *telemetry.Snapshot, error) {
			u, un, lo, snap, err := runCapacityPoint(ctx, opt, cfg)
			if err != nil {
				return nil, nil, err
			}
			return []float64{u, un, lo}, snap, nil
		},
		fill: func(vals []float64, snap *telemetry.Snapshot) {
			if len(vals) < 3 {
				nan := math.NaN()
				util.Y[xi], unused.Y[xi], lost.Y[xi] = nan, nan, nan
				return
			}
			util.Y[xi], unused.Y[xi], lost.Y[xi] = vals[0], vals[1], vals[2]
			if t.Telemetry != nil {
				t.Telemetry[xi] = snap
			}
		},
	}
}
