package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// RenderPlot writes the table as an ASCII chart: one mark per series
// over a height x width character grid, with the y range annotated.
// It is a convenience for eyeballing figure shapes in a terminal; the
// Render/RenderCSV outputs are the archival forms.
func (t *Table) RenderPlot(w io.Writer, height int) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if len(t.X) == 0 || len(t.Series) == 0 {
		return fmt.Errorf("experiments: table %s: nothing to plot", t.ID)
	}
	if height < 4 {
		height = 8
	}
	marks := []byte("*o+x#@%&")

	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range t.Series {
		for _, v := range s.Y {
			yMin = math.Min(yMin, v)
			yMax = math.Max(yMax, v)
		}
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	// Two columns per x point keeps adjacent marks readable.
	width := 2 * len(t.X)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	rowOf := func(v float64) int {
		f := (v - yMin) / (yMax - yMin)
		r := int(math.Round(f * float64(height-1)))
		return height - 1 - r
	}
	for si, s := range t.Series {
		m := marks[si%len(marks)]
		for i, v := range s.Y {
			col := 2 * i
			r := rowOf(v)
			if grid[r][col] == ' ' {
				grid[r][col] = m
			} else {
				grid[r][col] = '!'
			}
		}
	}

	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8s", formatNum(yMax))
		case height - 1:
			label = fmt.Sprintf("%8s", formatNum(yMin))
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%8s +%s\n", "", strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%8s  %s=%s .. %s\n", "", t.XLabel,
		formatNum(t.X[0]), formatNum(t.X[len(t.X)-1])); err != nil {
		return err
	}
	legend := make([]string, len(t.Series))
	for i, s := range t.Series {
		legend[i] = fmt.Sprintf("%c %s", marks[i%len(marks)], s.Name)
	}
	_, err := fmt.Fprintf(w, "%8s  legend: %s ('!' = overlap)\n", "", strings.Join(legend, ", "))
	return err
}
