package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestRunAllSchedulers(t *testing.T) {
	for _, kind := range []SchedulerKind{SchedBaseline, SchedBalancing, SchedTieBreak} {
		res, err := Run(RunConfig{
			Workload: "SDSC", JobCount: 120, FailureNominal: 1000,
			Scheduler: kind, Param: 0.5, Seed: 3,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Summary.Jobs != 120 {
			t.Fatalf("%s: finished %d of 120 jobs", kind, res.Summary.Jobs)
		}
		if res.FailureEvents == 0 {
			t.Fatalf("%s: no failures delivered despite nominal 1000", kind)
		}
	}
}

func TestRunAllWorkloads(t *testing.T) {
	for _, wl := range []string{"NASA", "SDSC", "LLNL"} {
		res, err := Run(RunConfig{Workload: wl, JobCount: 100, Scheduler: SchedBaseline, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if res.Summary.Jobs != 100 {
			t.Fatalf("%s: finished %d", wl, res.Summary.Jobs)
		}
	}
	if _, err := Run(RunConfig{Workload: "EARTH", JobCount: 10}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := RunConfig{
		Workload: "NASA", JobCount: 150, FailureNominal: 2000,
		Scheduler: SchedTieBreak, Param: 0.4, Seed: 9,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical RunConfig produced different results")
	}
	cfg.Seed = 10
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Summary, c.Summary) {
		t.Fatal("different seeds produced identical summaries")
	}
}

func TestRunUnknownScheduler(t *testing.T) {
	if _, err := Run(RunConfig{Workload: "SDSC", JobCount: 10, Scheduler: "quantum"}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestRunBackfillStrict(t *testing.T) {
	// Strict FCFS vs EASY backfilling must differ on a congested mix.
	mk := func(strict bool) RunConfig {
		return RunConfig{
			Workload: "SDSC", JobCount: 200, Scheduler: SchedBaseline,
			Seed: 4, BackfillStrict: strict,
		}
	}
	easy, err := Run(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Run(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	if easy.Backfills == 0 {
		t.Fatal("EASY mode never backfilled")
	}
	if strict.Backfills != 0 {
		t.Fatalf("strict FCFS backfilled %d jobs", strict.Backfills)
	}
	if easy.Summary.AvgSlowdown >= strict.Summary.AvgSlowdown {
		t.Fatalf("backfilling did not improve slowdown: %.1f vs %.1f",
			easy.Summary.AvgSlowdown, strict.Summary.AvgSlowdown)
	}
}

// Failure-count scaling and RunConfig default tests moved with their
// subjects to internal/build (see build/config_test.go).

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID: "figX", Title: "Demo", XLabel: "x",
		X: []float64{0, 0.5},
		Series: []Series{
			{Name: "alpha", Y: []float64{1, 2.5}},
			{Name: "beta", Y: []float64{0.001, 3}},
		},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figX", "Demo", "alpha", "beta", "0.500", "2.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3", len(lines))
	}
	if lines[0] != "x,alpha,beta" {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestTableValidate(t *testing.T) {
	bad := &Table{ID: "t", XLabel: "x", X: []float64{1, 2}, Series: []Series{{Name: "s", Y: []float64{1}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("ragged table accepted")
	}
	var buf bytes.Buffer
	if err := bad.Render(&buf); err == nil {
		t.Fatal("Render accepted ragged table")
	}
	if err := bad.RenderCSV(&buf); err == nil {
		t.Fatal("RenderCSV accepted ragged table")
	}
}

func TestFormatNum(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		5:      "5",
		1000:   "1000",
		0.5:    "0.500",
		0.001:  "0.001",
		0.0001: "0.0001",
	}
	for v, want := range cases {
		if got := formatNum(v); got != want {
			t.Errorf("formatNum(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestSpecByID(t *testing.T) {
	for _, s := range Specs {
		got, err := SpecByID(s.ID)
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if got.Title != s.Title {
			t.Fatalf("%s: wrong spec returned", s.ID)
		}
	}
	if _, err := SpecByID("fig99"); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if len(Specs) != 8 {
		t.Fatalf("Specs = %d figures, want 8 (figures 3-10)", len(Specs))
	}
}

// TestFigureSmoke runs every figure at a tiny scale and checks shape
// invariants of the tables.
func TestFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweeps are slow")
	}
	opt := Options{JobCount: 60, Seed: 2, Replications: 1}
	for _, spec := range Specs {
		tables, err := spec.Run(nil, opt)
		if err != nil {
			t.Fatalf("%s: %v", spec.ID, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s: no tables", spec.ID)
		}
		for _, tab := range tables {
			if err := tab.Validate(); err != nil {
				t.Fatalf("%s: %v", spec.ID, err)
			}
			if tab.ID != spec.ID {
				t.Fatalf("table id %q under spec %q", tab.ID, spec.ID)
			}
			if len(tab.X) == 0 || len(tab.Series) == 0 {
				t.Fatalf("%s: empty table", spec.ID)
			}
			var buf bytes.Buffer
			if err := tab.Render(&buf); err != nil {
				t.Fatalf("%s: render: %v", spec.ID, err)
			}
		}
	}
}

func TestKrevatTable(t *testing.T) {
	tab, err := KrevatTable(nil, Options{JobCount: 150, Seed: 3, Replications: 1}, "SDSC", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tab.X) != len(KrevatVariants) {
		t.Fatalf("rows = %d, want %d", len(tab.X), len(KrevatVariants))
	}
	// Backfilling must improve slowdown over plain FCFS on a congested
	// log (Krevat's central result).
	slowdown := tab.Series[0]
	if slowdown.Name != "slowdown" {
		t.Fatalf("series order changed: %q", slowdown.Name)
	}
	if slowdown.Y[1] >= slowdown.Y[0] {
		t.Fatalf("backfilling did not improve slowdown: %.1f vs %.1f", slowdown.Y[1], slowdown.Y[0])
	}
}

func TestRunEstimateFactor(t *testing.T) {
	exact, err := Run(RunConfig{Workload: "SDSC", JobCount: 150, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Run(RunConfig{Workload: "SDSC", JobCount: 150, Seed: 5, EstimateFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	// With exact estimates every outcome has Estimate == Actual; with
	// a factor > 1 some must exceed it.
	sawLoose := false
	for _, o := range loose.Outcomes {
		if o.Estimate < o.Actual-1e-9 {
			t.Fatalf("estimate %g below actual %g", o.Estimate, o.Actual)
		}
		if o.Estimate > o.Actual+1e-9 {
			sawLoose = true
		}
	}
	if !sawLoose {
		t.Fatal("EstimateFactor had no effect on estimates")
	}
	for _, o := range exact.Outcomes {
		if o.Estimate != o.Actual {
			t.Fatalf("exact mode produced estimate %g != actual %g", o.Estimate, o.Actual)
		}
	}
}

func TestRunMigrationCostPlumbing(t *testing.T) {
	res, err := Run(RunConfig{
		Workload: "SDSC", JobCount: 150, Seed: 5,
		Migration: true, MigrationCost: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Jobs != 150 {
		t.Fatalf("finished %d", res.Summary.Jobs)
	}
}

func TestRunLearnedSchedulers(t *testing.T) {
	for _, kind := range []SchedulerKind{SchedBalancingLearned, SchedTieBreakLearned} {
		res, err := Run(RunConfig{
			Workload: "SDSC", JobCount: 120, FailureNominal: 1000,
			Scheduler: kind, Seed: 3,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Summary.Jobs != 120 {
			t.Fatalf("%s: finished %d", kind, res.Summary.Jobs)
		}
		// Param acts as the learned threshold: a different operating
		// point must generally change the schedule.
		res2, err := Run(RunConfig{
			Workload: "SDSC", JobCount: 120, FailureNominal: 1000,
			Scheduler: kind, Param: 0.05, Seed: 3,
		})
		if err != nil {
			t.Fatalf("%s threshold: %v", kind, err)
		}
		_ = res2 // schedules may coincide on small logs; the run must just succeed
	}
}

func TestLearnedSweepTable(t *testing.T) {
	tab, err := LearnedSweep(nil, Options{JobCount: 60, Seed: 2, Replications: 1}, "SDSC")
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tab.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(tab.Series))
	}
	// The baseline reference line is flat.
	base := tab.Series[0]
	for _, y := range base.Y {
		if y != base.Y[0] {
			t.Fatal("baseline reference line not flat")
		}
	}
}

// Capacity-split figures must have fractions summing to one.
func TestUtilizationFigureSumsToOne(t *testing.T) {
	tables, err := Figure5(nil, Options{JobCount: 80, Seed: 5, Replications: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tables {
		if len(tab.Series) != 3 {
			t.Fatalf("utilization table has %d series, want 3", len(tab.Series))
		}
		for i := range tab.X {
			sum := tab.Series[0].Y[i] + tab.Series[1].Y[i] + tab.Series[2].Y[i]
			if sum < 0.999 || sum > 1.001 {
				t.Fatalf("capacity fractions at x=%g sum to %g", tab.X[i], sum)
			}
		}
	}
}
