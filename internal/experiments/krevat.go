package experiments

import (
	"fmt"

	"bgsched/internal/core"
)

// KrevatVariants are the four scheduler configurations of Krevat,
// Castaños and Moreira's BG/L scheduling study, which this paper's
// Section 5.1 builds on: plain FCFS, FCFS with backfilling, FCFS with
// migration, and FCFS with both.
var KrevatVariants = []struct {
	Name      string
	Backfill  core.BackfillMode
	Strict    bool
	Migration bool
}{
	{"fcfs", core.BackfillNone, true, false},
	{"fcfs+backfill", core.BackfillEASY, false, false},
	{"fcfs+migration", core.BackfillNone, true, true},
	{"fcfs+backfill+migration", core.BackfillEASY, false, true},
}

// KrevatTable reproduces the baseline study's comparison on this
// repository's substrate: for each scheduler variant it reports the
// aggregated bounded slowdown, response time, wait time, and
// utilization over the configured workload, fault-free (the baseline
// study predates the fault model).
func KrevatTable(opt Options, workload string, loadScale float64) (*Table, error) {
	opt = opt.normalize()
	t := &Table{
		ID:     "krevat",
		Title:  fmt.Sprintf("Krevat scheduler variants (%s, c=%.1f, fault-free)", workload, loadScale),
		XLabel: "variant",
	}
	slowdown := Series{Name: "slowdown"}
	response := Series{Name: "response-s"}
	wait := Series{Name: "wait-s"}
	util := Series{Name: "utilized"}
	for i, v := range KrevatVariants {
		t.X = append(t.X, float64(i))
		cfg := RunConfig{
			Workload: workload, JobCount: opt.JobCount, LoadScale: loadScale,
			Scheduler: SchedBaseline, Seed: opt.Seed,
			Backfill: v.Backfill, BackfillStrict: v.Strict, Migration: v.Migration,
		}
		// All four series come from the same runs, so per-variant
		// snapshots go on the table, like the capacity figures.
		reg := pointRegistry(opt, &cfg)
		rs, err := RunSeeds(cfg, opt.Replications)
		if err != nil {
			return nil, err
		}
		t.appendTelemetry(reg.Snapshot())
		point := func(metric string) (float64, error) {
			vals, err := rs.Metric(metric)
			if err != nil {
				return 0, err
			}
			return aggregate(vals, opt.Aggregate)
		}
		sd, err := point(MetricSlowdown)
		if err != nil {
			return nil, err
		}
		rp, err := point(MetricResponse)
		if err != nil {
			return nil, err
		}
		wt, err := point(MetricWait)
		if err != nil {
			return nil, err
		}
		us, _, _ := rs.Capacity()
		u, err := aggregate(us, opt.Aggregate)
		if err != nil {
			return nil, err
		}
		slowdown.Y = append(slowdown.Y, sd)
		response.Y = append(response.Y, rp)
		wait.Y = append(wait.Y, wt)
		util.Y = append(util.Y, u)
	}
	t.Series = []Series{slowdown, response, wait, util}
	return t, nil
}
