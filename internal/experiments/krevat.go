package experiments

import (
	"context"
	"fmt"
	"math"

	"bgsched/internal/core"
	"bgsched/internal/telemetry"
)

// KrevatVariants are the four scheduler configurations of Krevat,
// Castaños and Moreira's BG/L scheduling study, which this paper's
// Section 5.1 builds on: plain FCFS, FCFS with backfilling, FCFS with
// migration, and FCFS with both.
var KrevatVariants = []struct {
	Name      string
	Backfill  core.BackfillMode
	Strict    bool
	Migration bool
}{
	{"fcfs", core.BackfillNone, true, false},
	{"fcfs+backfill", core.BackfillEASY, false, false},
	{"fcfs+migration", core.BackfillNone, true, true},
	{"fcfs+backfill+migration", core.BackfillEASY, false, true},
}

// KrevatTable reproduces the baseline study's comparison on this
// repository's substrate: for each scheduler variant it reports the
// aggregated bounded slowdown, response time, wait time, and
// utilization over the configured workload, fault-free (the baseline
// study predates the fault model).
func KrevatTable(eng *Engine, opt Options, workload string, loadScale float64) (*Table, error) {
	opt = opt.normalize()
	t := &Table{
		ID:     "krevat",
		Title:  fmt.Sprintf("Krevat scheduler variants (%s, c=%.1f, fault-free)", workload, loadScale),
		XLabel: "variant",
	}
	n := len(KrevatVariants)
	for i := range KrevatVariants {
		t.X = append(t.X, float64(i))
	}
	t.allocTelemetry(n, opt)
	t.Series = []Series{
		{Name: "slowdown", Y: nanSlots(n)},
		{Name: "response-s", Y: nanSlots(n)},
		{Name: "wait-s", Y: nanSlots(n)},
		{Name: "utilized", Y: nanSlots(n)},
	}
	var pts []point
	for i, v := range KrevatVariants {
		i := i
		cfg := RunConfig{
			Workload: workload, JobCount: opt.JobCount, LoadScale: loadScale,
			Scheduler: SchedBaseline, Seed: opt.Seed,
			Backfill: v.Backfill, BackfillStrict: v.Strict, Migration: v.Migration,
		}
		pts = append(pts, point{
			key: v.Name,
			cfg: cfg,
			run: func(ctx context.Context, cfg RunConfig) ([]float64, *telemetry.Snapshot, error) {
				// All four series come from the same runs, so the
				// per-variant snapshot goes on the table, like the
				// capacity figures.
				reg := pointRegistry(opt, &cfg)
				rs, err := RunSeedsContext(ctx, cfg, opt.Replications)
				if err != nil {
					return nil, nil, err
				}
				vals := make([]float64, 0, 4)
				for _, metric := range []string{MetricSlowdown, MetricResponse, MetricWait} {
					raw, err := rs.Metric(metric)
					if err != nil {
						return nil, nil, err
					}
					v, err := aggregate(raw, opt.Aggregate)
					if err != nil {
						return nil, nil, err
					}
					vals = append(vals, v)
				}
				us, _, _ := rs.Capacity()
				u, err := aggregate(us, opt.Aggregate)
				if err != nil {
					return nil, nil, err
				}
				return append(vals, u), reg.Snapshot(), nil
			},
			fill: func(vals []float64, snap *telemetry.Snapshot) {
				if len(vals) < 4 {
					for s := range t.Series {
						t.Series[s].Y[i] = math.NaN()
					}
					return
				}
				for s := range t.Series {
					t.Series[s].Y[i] = vals[s]
				}
				if t.Telemetry != nil {
					t.Telemetry[i] = snap
				}
			},
		})
	}
	// The partially-filled table rides along with any error, so an
	// interrupted run still surfaces the variants that completed.
	return t, eng.runPoints("krevat", pts)
}
