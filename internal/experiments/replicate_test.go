package experiments

import (
	"reflect"
	"testing"
)

func TestRunSeeds(t *testing.T) {
	cfg := RunConfig{Workload: "NASA", JobCount: 80, FailureNominal: 1000,
		Scheduler: SchedBalancing, Param: 0.3, Seed: 5}
	rs, err := RunSeeds(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Results) != 3 {
		t.Fatalf("got %d replicates", len(rs.Results))
	}
	// Replicates must actually differ (different seeds).
	if reflect.DeepEqual(rs.Results[0].Outcomes, rs.Results[1].Outcomes) {
		t.Fatal("replicates identical: seeds not varied")
	}
	// And be reproducible.
	rs2, err := RunSeeds(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs.Results, rs2.Results) {
		t.Fatal("RunSeeds not deterministic")
	}
}

func TestRunSeedsErrors(t *testing.T) {
	if _, err := RunSeeds(RunConfig{}, 0); err == nil {
		t.Fatal("zero replications accepted")
	}
	if _, err := RunSeeds(RunConfig{Workload: "EARTH", JobCount: 10}, 1); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestReplicateSetMetricAndCapacity(t *testing.T) {
	cfg := RunConfig{Workload: "NASA", JobCount: 60, Scheduler: SchedBaseline, Seed: 2}
	rs, err := RunSeeds(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{MetricSlowdown, MetricResponse, MetricWait} {
		vals, err := rs.Metric(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 2 {
			t.Fatalf("%s: %d values", m, len(vals))
		}
	}
	if _, err := rs.Metric("bogus"); err == nil {
		t.Fatal("bogus metric accepted")
	}
	u, n, l := rs.Capacity()
	if len(u) != 2 || len(n) != 2 || len(l) != 2 {
		t.Fatal("capacity lengths")
	}
	for i := range u {
		if s := u[i] + n[i] + l[i]; s < 0.999 || s > 1.001 {
			t.Fatalf("capacity sum %g", s)
		}
	}
}

func TestAggregate(t *testing.T) {
	vals := []float64{1, 2, 100}
	if got, err := aggregate(vals, AggMean); err != nil || got != (103.0/3) {
		t.Fatalf("mean = %g, %v", got, err)
	}
	if got, err := aggregate(vals, AggMedian); err != nil || got != 2 {
		t.Fatalf("median = %g, %v", got, err)
	}
	if _, err := aggregate(vals, "mode"); err == nil {
		t.Fatal("unknown aggregate accepted")
	}
}

func TestRunMetricPointAggregates(t *testing.T) {
	opt := Options{JobCount: 60, Seed: 3, Replications: 3, Metric: MetricSlowdown, Aggregate: AggMedian}
	cfg := baseCfg(opt, "NASA", 1.0, 1000, SchedBalancing, 0.5)
	v, snap, err := runMetricPoint(opt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatal("snapshot returned without CollectTelemetry")
	}
	opt.CollectTelemetry = true
	_, snap, err = runMetricPoint(opt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("CollectTelemetry set but no snapshot returned")
	}
	// The point registry aggregates all three replicates.
	if got, want := snap.Counters["sim.finishes"], int64(3*60); got != want {
		t.Fatalf("point snapshot finishes = %d, want %d", got, want)
	}
	if snap.Counters["finder.shape.calls"] == 0 {
		t.Fatal("point snapshot missing partition-finder counters")
	}
	// The aggregated value must be one of (median) or bounded by the
	// replicate values.
	rs, err := RunSeeds(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := rs.Metric(MetricSlowdown)
	if err != nil {
		t.Fatal(err)
	}
	min, max := vals[0], vals[0]
	for _, x := range vals {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	if v < min || v > max {
		t.Fatalf("aggregate %g outside replicate range [%g, %g]", v, min, max)
	}
}
