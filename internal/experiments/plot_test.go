package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func plotTable() *Table {
	return &Table{
		ID: "figT", Title: "Plot demo", XLabel: "x",
		X: []float64{0, 1, 2, 3},
		Series: []Series{
			{Name: "up", Y: []float64{0, 1, 2, 3}},
			{Name: "down", Y: []float64{3, 2, 1, 0}},
		},
	}
}

func TestRenderPlot(t *testing.T) {
	var buf bytes.Buffer
	if err := plotTable().RenderPlot(&buf, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figT", "legend: * up, o down", "x=0 .. 3", "!"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// Header + 8 grid rows + axis + label + legend.
	if len(lines) < 12 {
		t.Fatalf("plot has %d lines", len(lines))
	}
}

func TestRenderPlotHeightClamp(t *testing.T) {
	var buf bytes.Buffer
	if err := plotTable().RenderPlot(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "legend") {
		t.Fatal("tiny height broke rendering")
	}
}

func TestRenderPlotFlatSeries(t *testing.T) {
	tab := &Table{
		ID: "flat", XLabel: "x", X: []float64{0, 1},
		Series: []Series{{Name: "const", Y: []float64{5, 5}}},
	}
	var buf bytes.Buffer
	if err := tab.RenderPlot(&buf, 6); err != nil {
		t.Fatalf("flat series: %v", err)
	}
}

func TestRenderPlotErrors(t *testing.T) {
	var buf bytes.Buffer
	empty := &Table{ID: "e", XLabel: "x"}
	if err := empty.RenderPlot(&buf, 8); err == nil {
		t.Fatal("empty table plotted")
	}
	ragged := &Table{ID: "r", XLabel: "x", X: []float64{1, 2},
		Series: []Series{{Name: "s", Y: []float64{1}}}}
	if err := ragged.RenderPlot(&buf, 8); err == nil {
		t.Fatal("ragged table plotted")
	}
}

func TestMetricValue(t *testing.T) {
	s := metricsSummary{AvgSlowdown: 1, AvgResponse: 2, AvgWait: 3}
	cases := map[string]float64{MetricSlowdown: 1, MetricResponse: 2, MetricWait: 3}
	for m, want := range cases {
		got, err := metricValue(m, s)
		if err != nil || got != want {
			t.Errorf("metricValue(%s) = %g, %v", m, got, err)
		}
	}
	if _, err := metricValue("throughput", s); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestFigureWithResponseMetric(t *testing.T) {
	tables, err := Figure4(nil, Options{JobCount: 50, Metric: MetricResponse, Replications: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tables[0].Title, "response") {
		t.Fatalf("title = %q", tables[0].Title)
	}
	tables2, err := Figure4(nil, Options{JobCount: 50, Metric: "bogus", Replications: 1})
	if err == nil {
		t.Fatalf("bogus metric accepted: %v", tables2)
	}
}
