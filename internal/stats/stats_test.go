package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %g", got)
	}
	// Sample variance with n-1: sum sq dev = 32, / 7.
	if got := Variance(xs); !almost(got, 32.0/7, 1e-12) {
		t.Fatalf("Variance = %g", got)
	}
	if got := StdDev(xs); !almost(got, math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("StdDev = %g", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("empty/singleton edge cases")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4} // unsorted on purpose
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, tc := range cases {
		if got := Quantile(xs, tc.p); got != tc.want {
			t.Errorf("Quantile(%g) = %g, want %g", tc.p, got, tc.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Quantile sorted its input in place")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	f := func(p1, p2 uint8) bool {
		a := float64(p1%101) / 100
		b := float64(p2%101) / 100
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDescribe(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := Describe(xs)
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("Describe = %+v", s)
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Fatalf("String = %q", s.String())
	}
	if Describe(nil).N != 0 {
		t.Fatal("empty Describe")
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	iv, err := BootstrapMeanCI(xs, 0.95, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(10) {
		t.Fatalf("CI %v should contain the true mean 10", iv)
	}
	if iv.Lo > iv.Point || iv.Point > iv.Hi {
		t.Fatalf("inconsistent interval %v", iv)
	}
	// ~95% CI of a sd=1 sample of 200 has half-width ~0.14.
	if iv.Hi-iv.Lo > 0.5 {
		t.Fatalf("CI too wide: %v", iv)
	}
	if !strings.Contains(iv.String(), "[") {
		t.Fatal("Interval.String")
	}
}

func TestBootstrapMeanCIErrors(t *testing.T) {
	if _, err := BootstrapMeanCI(nil, 0.95, 100, 1); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 1.5, 100, 1); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 0.95, 2, 1); err == nil {
		t.Error("too few resamples accepted")
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	a, _ := BootstrapMeanCI(xs, 0.9, 100, 7)
	b, _ := BootstrapMeanCI(xs, 0.9, 100, 7)
	if a != b {
		t.Fatal("same seed produced different intervals")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h, err := NewHistogram(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 10 {
		t.Fatalf("Total = %d", h.Total())
	}
	for i, c := range h.Counts {
		if c != 2 {
			t.Fatalf("bin %d = %d, want 2", i, c)
		}
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Fatalf("Render:\n%s", out)
	}
	if _, err := NewHistogram(nil, 5); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := NewHistogram(xs, 0); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestHistogramConstantSample(t *testing.T) {
	h, err := NewHistogram([]float64{3, 3, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 3 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Counts[0] != 3 {
		t.Fatalf("constant sample counts = %v", h.Counts)
	}
	_ = h.Render(0) // width clamp must not panic
}

func TestWelchT(t *testing.T) {
	a := []float64{10, 11, 9, 10, 10.5}
	b := []float64{20, 21, 19, 20, 20.5}
	tstat, df, err := WelchT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tstat >= 0 {
		t.Fatalf("t = %g, want strongly negative (a << b)", tstat)
	}
	if math.Abs(tstat) < 5 {
		t.Fatalf("|t| = %g, want clearly significant", math.Abs(tstat))
	}
	if df <= 0 {
		t.Fatalf("df = %g", df)
	}
	if _, _, err := WelchT([]float64{1}, b); err == nil {
		t.Error("tiny sample accepted")
	}
	if _, _, err := WelchT([]float64{1, 1}, []float64{1, 1}); err == nil {
		t.Error("zero-variance pair accepted")
	}
}

// Same-distribution samples should usually give small |t|.
func TestWelchTNull(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	small := 0
	for trial := 0; trial < 50; trial++ {
		a := make([]float64, 30)
		b := make([]float64, 30)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		tstat, _, err := WelchT(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tstat) < 2 {
			small++
		}
	}
	if small < 40 {
		t.Fatalf("only %d/50 null comparisons had |t| < 2", small)
	}
}
