// Package stats provides the small statistical toolkit the experiment
// harness uses: summary statistics, quantiles, histograms, and
// bootstrap confidence intervals for comparing scheduler variants
// across replicated runs.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator), or
// 0 for samples of size < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the p-quantile (0 <= p <= 1) by linear
// interpolation. The input need not be sorted.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

func quantileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary condenses a sample.
type Summary struct {
	N             int
	Mean, StdDev  float64
	Min, Max      float64
	P25, P50, P90 float64
}

// Describe computes a Summary.
func Describe(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P25:    quantileSorted(sorted, 0.25),
		P50:    quantileSorted(sorted, 0.50),
		P90:    quantileSorted(sorted, 0.90),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g sd=%.3g min=%.3g p50=%.3g p90=%.3g max=%.3g",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P90, s.Max)
}

// Interval is a two-sided confidence interval around a point estimate.
type Interval struct {
	Point  float64
	Lo, Hi float64
	Level  float64 // e.g. 0.95
}

// String renders the interval as "point [lo, hi]".
func (iv Interval) String() string {
	return fmt.Sprintf("%.4g [%.4g, %.4g]", iv.Point, iv.Lo, iv.Hi)
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// BootstrapMeanCI estimates a confidence interval for the mean by the
// percentile bootstrap with the given number of resamples.
func BootstrapMeanCI(xs []float64, level float64, resamples int, seed int64) (Interval, error) {
	if len(xs) == 0 {
		return Interval{}, fmt.Errorf("stats: empty sample")
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence level %g outside (0,1)", level)
	}
	if resamples < 10 {
		return Interval{}, fmt.Errorf("stats: %d resamples, want >= 10", resamples)
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, resamples)
	for r := range means {
		s := 0.0
		for i := 0; i < len(xs); i++ {
			s += xs[rng.Intn(len(xs))]
		}
		means[r] = s / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	return Interval{
		Point: Mean(xs),
		Lo:    quantileSorted(means, alpha),
		Hi:    quantileSorted(means, 1-alpha),
		Level: level,
	}, nil
}

// Histogram bins a sample into equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a histogram with the given number of bins.
func NewHistogram(xs []float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: %d bins", bins)
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("stats: empty sample")
	}
	min, max := xs[0], xs[0]
	for _, x := range xs {
		min = math.Min(min, x)
		max = math.Max(max, x)
	}
	h := &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
	width := (max - min) / float64(bins)
	for _, x := range xs {
		i := 0
		if width > 0 {
			i = int((x - min) / width)
			if i >= bins {
				i = bins - 1
			}
		}
		h.Counts[i]++
	}
	return h, nil
}

// Total returns the number of binned observations.
func (h *Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Render draws the histogram as ASCII bars of at most width characters.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b []byte
	binW := (h.Max - h.Min) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		lo := h.Min + float64(i)*binW
		b = append(b, fmt.Sprintf("%12.4g | %-*s %d\n", lo, width, repeat('#', bar), c)...)
	}
	return string(b)
}

func repeat(ch byte, n int) string {
	if n <= 0 {
		return ""
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = ch
	}
	return string(out)
}

// WelchT computes Welch's t statistic for two samples; large |t| means
// the means differ relative to their pooled uncertainty. Degrees of
// freedom follow the Welch–Satterthwaite approximation.
func WelchT(a, b []float64) (t, df float64, err error) {
	if len(a) < 2 || len(b) < 2 {
		return 0, 0, fmt.Errorf("stats: Welch t needs >= 2 observations per sample")
	}
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	se2 := va/na + vb/nb
	if se2 == 0 {
		return 0, 0, fmt.Errorf("stats: zero variance in both samples")
	}
	t = (Mean(a) - Mean(b)) / math.Sqrt(se2)
	df = se2 * se2 / ((va*va)/(na*na*(na-1)) + (vb*vb)/(nb*nb*(nb-1)))
	return t, df, nil
}
