package stats_test

import (
	"fmt"

	"bgsched/internal/stats"
)

// Summarising a sample and bootstrapping a confidence interval for its
// mean.
func Example() {
	slowdowns := []float64{1.0, 1.2, 2.5, 1.1, 40.0, 1.3, 1.0, 3.2}

	fmt.Println(stats.Describe(slowdowns))

	ci, _ := stats.BootstrapMeanCI(slowdowns, 0.95, 2000, 1)
	fmt.Println("mean CI contains the sample mean:", ci.Contains(stats.Mean(slowdowns)))
	// Output:
	// n=8 mean=6.41 sd=13.6 min=1 p50=1.25 p90=14.2 max=40
	// mean CI contains the sample mean: true
}

// Comparing two scheduler variants across replicated runs.
func ExampleWelchT() {
	baseline := []float64{410, 395, 422, 388, 405}
	faultAware := []float64{240, 255, 231, 262, 248}

	t, _, _ := stats.WelchT(baseline, faultAware)
	fmt.Println("baseline clearly worse:", t > 5)
	// Output:
	// baseline clearly worse: true
}
