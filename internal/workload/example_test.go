package workload_test

import (
	"fmt"

	"bgsched/internal/torus"
	"bgsched/internal/workload"
)

// Generating a synthetic SDSC-like log and mapping it onto the
// simulated torus at 20% extra load (the paper's c = 1.2).
func ExampleSynthesize() {
	log, err := workload.Synthesize(workload.SDSC(500), 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	jobs, err := log.ToJobs(torus.BlueGeneL(), workload.ToJobsConfig{
		LoadScale:      1.2,
		ExactEstimates: true,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("jobs:", len(jobs))
	fmt.Println("machine-feasible sizes:", jobs[0].AllocSize >= jobs[0].Size)
	// Output:
	// jobs: 500
	// machine-feasible sizes: true
}
