package workload

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"bgsched/internal/resilience"
	"bgsched/internal/telemetry"
)

// swfRecord builds one 18-field record with the given submit, run,
// alloc/req procs and request time; remaining fields are -1 markers.
func swfRecord(submit, run string, procs, reqTime string) string {
	return fmt.Sprintf("1 %s -1 %s %s -1 -1 %s %s -1 1 -1 -1 -1 -1 -1 -1 -1", submit, run, procs, procs, reqTime)
}

func TestReadSWFStrictRejectsHardenedFields(t *testing.T) {
	cases := map[string]string{
		"truncated line":  "1 2 3 4\n",
		"NaN submit":      swfRecord("nan", "100", "8", "200") + "\n",
		"Inf run":         swfRecord("0", "+Inf", "8", "200") + "\n",
		"negative submit": swfRecord("-5", "100", "8", "200") + "\n",
		"huge procs":      swfRecord("0", "100", "1e300", "200") + "\n",
	}
	for name, in := range cases {
		if _, err := ReadSWF(strings.NewReader(in), "x"); err == nil {
			t.Errorf("%s accepted in strict mode", name)
		}
	}
}

func TestReadSWFLenientSkipsMalformed(t *testing.T) {
	in := strings.Join([]string{
		"; MaxProcs: 64",
		swfRecord("0", "100", "8", "200"),
		"1 2 3",                                // truncated
		swfRecord("nan", "100", "8", "200"),    // NaN submit
		swfRecord("60", "50", "4", "-1"),       // good
		swfRecord("-9", "100", "8", "200"),     // negative submit
		swfRecord("70", "zz", "8", "200"),      // non-numeric run
		swfRecord("80", "100", "1e300", "200"), // absurd procs
	}, "\n") + "\n"
	log, rep, err := ReadSWFWith(strings.NewReader(in), "x", ReadOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Jobs) != 2 || log.Jobs[0].Submit != 0 || log.Jobs[1].Submit != 60 {
		t.Fatalf("kept jobs = %+v", log.Jobs)
	}
	if rep.Lines != 7 || rep.Records != 2 || rep.Skipped != 5 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Errors) != 5 {
		t.Fatalf("line errors = %+v", rep.Errors)
	}
	// Line numbers are file-relative (header is line 1).
	if rep.Errors[0].Line != 3 || !strings.Contains(rep.Errors[0].Reason, "fields") {
		t.Fatalf("first error = %+v", rep.Errors[0])
	}
	if rep.Errors[1].Line != 4 || !strings.Contains(rep.Errors[1].Reason, "non-finite") {
		t.Fatalf("second error = %+v", rep.Errors[1])
	}
}

func TestReadSWFOutOfOrderTimestamps(t *testing.T) {
	in := strings.Join([]string{
		swfRecord("100", "10", "1", "-1"),
		swfRecord("50", "10", "1", "-1"),
		swfRecord("75", "10", "1", "-1"),
	}, "\n") + "\n"

	// Strict: accepted, counted, file order preserved.
	log, rep, err := ReadSWFWith(strings.NewReader(in), "x", ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OutOfOrder != 1 {
		t.Fatalf("strict OutOfOrder = %d, want 1", rep.OutOfOrder)
	}
	if log.Jobs[0].Submit != 100 {
		t.Fatalf("strict mode re-ordered the log: %+v", log.Jobs)
	}

	// Lenient: counted and re-sorted by submit time.
	log, rep, err = ReadSWFWith(strings.NewReader(in), "x", ReadOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OutOfOrder != 1 {
		t.Fatalf("lenient OutOfOrder = %d, want 1", rep.OutOfOrder)
	}
	for i := 1; i < len(log.Jobs); i++ {
		if log.Jobs[i].Submit < log.Jobs[i-1].Submit {
			t.Fatalf("lenient mode left the log unsorted: %+v", log.Jobs)
		}
	}
}

func TestReadSWFErrorCap(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < resilience.DefaultMaxLineErrors+5; i++ {
		sb.WriteString("bad line\n")
	}
	_, rep, err := ReadSWFWith(strings.NewReader(sb.String()), "x", ReadOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != resilience.DefaultMaxLineErrors+5 {
		t.Fatalf("Skipped = %d", rep.Skipped)
	}
	if len(rep.Errors) != resilience.DefaultMaxLineErrors || !rep.ErrorsTruncated {
		t.Fatalf("errors = %d truncated = %v", len(rep.Errors), rep.ErrorsTruncated)
	}
	_, rep, err = ReadSWFWith(strings.NewReader(sb.String()), "x", ReadOptions{Lenient: true, MaxErrors: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) != 3 {
		t.Fatalf("MaxErrors=3 retained %d errors", len(rep.Errors))
	}
}

func TestReadSWFMetricsCounters(t *testing.T) {
	in := swfRecord("0", "100", "8", "200") + "\nbad\n"
	reg := telemetry.New()
	_, _, err := ReadSWFWith(strings.NewReader(in), "x", ReadOptions{Lenient: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]int64{
		"ingest.swf.lines":   2,
		"ingest.swf.records": 1,
		"ingest.swf.skipped": 1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func FuzzReadSWF(f *testing.F) {
	f.Add(sampleSWF)
	f.Add("; MaxProcs: 64\n" + swfRecord("0", "100", "8", "200") + "\n")
	f.Add("1 2 3\n")
	f.Add(swfRecord("nan", "inf", "-inf", "1e309") + "\n")
	f.Add(swfRecord("1e300", "100", "1e300", "-1") + "\n")
	f.Add("; MaxProcs: 999999999999999999999\n")
	f.Add("")
	f.Add(";")
	f.Add("\x00\xff \t -1 -0")
	f.Fuzz(func(t *testing.T, in string) {
		// Strict mode must never panic.
		ReadSWF(strings.NewReader(in), "fuzz")

		// Lenient mode must never panic, and may only error when the
		// scanner itself loses framing (a line beyond its buffer); the
		// report must stay consistent with the returned log.
		log, rep, err := ReadSWFWith(strings.NewReader(in), "fuzz", ReadOptions{Lenient: true})
		if err != nil {
			if errors.Is(err, bufio.ErrTooLong) {
				return
			}
			t.Fatalf("lenient parse failed: %v", err)
		}
		if rep.Records != len(log.Jobs) {
			t.Fatalf("report records %d != %d jobs", rep.Records, len(log.Jobs))
		}
		if rep.Lines != rep.Records+rep.Skipped {
			t.Fatalf("report inconsistent: %+v", rep)
		}
		for i, tj := range log.Jobs {
			if math.IsNaN(tj.Submit) || tj.Submit < 0 || math.IsNaN(tj.Run) || tj.ReqTime < 0 {
				t.Fatalf("invalid job %d survived lenient parse: %+v", i, tj)
			}
			if i > 0 && tj.Submit < log.Jobs[i-1].Submit {
				t.Fatalf("lenient log unsorted at %d: %+v", i, log.Jobs)
			}
		}
	})
}
