package workload

import (
	"math"
	"reflect"
	"testing"

	"bgsched/internal/job"
	"bgsched/internal/torus"
)

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := SDSC(500)
	a, err := Synthesize(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different logs")
	}
	c, err := Synthesize(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Jobs, c.Jobs) {
		t.Fatal("different seeds produced identical logs")
	}
}

func TestSynthesizeBasicShape(t *testing.T) {
	for _, preset := range []SyntheticConfig{NASA(800), SDSC(800), LLNL(800)} {
		log, err := Synthesize(preset, 7)
		if err != nil {
			t.Fatalf("%s: %v", preset.Name, err)
		}
		if len(log.Jobs) != 800 {
			t.Fatalf("%s: %d jobs, want 800", preset.Name, len(log.Jobs))
		}
		prev := -1.0
		for i, tj := range log.Jobs {
			if tj.Submit < prev {
				t.Fatalf("%s: job %d submits out of order", preset.Name, i)
			}
			prev = tj.Submit
			if tj.Procs < 1 || tj.Procs > preset.MachineNodes {
				t.Fatalf("%s: job %d procs %d out of range", preset.Name, i, tj.Procs)
			}
			if tj.Run <= 0 {
				t.Fatalf("%s: job %d run %g", preset.Name, i, tj.Run)
			}
			if tj.ReqTime < tj.Run-1e-9 {
				t.Fatalf("%s: job %d estimate %g below actual %g", preset.Name, i, tj.ReqTime, tj.Run)
			}
		}
	}
}

func TestSynthesizeLoadCalibration(t *testing.T) {
	for _, preset := range []SyntheticConfig{NASA(3000), SDSC(3000), LLNL(3000)} {
		log, err := Synthesize(preset, 11)
		if err != nil {
			t.Fatal(err)
		}
		load := log.OfferedLoad(preset.MachineNodes)
		// The min-runtime clamp can push calibration slightly; allow 10%.
		if math.Abs(load-preset.TargetLoad) > 0.1*preset.TargetLoad {
			t.Errorf("%s: offered load %.3f, want ~%.2f", preset.Name, load, preset.TargetLoad)
		}
	}
}

func TestSynthesizeValidation(t *testing.T) {
	bad := NASA(100)
	bad.JobCount = 0
	if _, err := Synthesize(bad, 1); err == nil {
		t.Error("JobCount=0 accepted")
	}
	bad = NASA(100)
	bad.SizeWeights = nil
	if _, err := Synthesize(bad, 1); err == nil {
		t.Error("empty SizeWeights accepted")
	}
	bad = NASA(100)
	bad.DiurnalAmp = 1.5
	if _, err := Synthesize(bad, 1); err == nil {
		t.Error("DiurnalAmp=1.5 accepted")
	}
	bad = NASA(100)
	bad.SizeWeights = map[int]float64{500: 1}
	if _, err := Synthesize(bad, 1); err == nil {
		t.Error("size weight above machine accepted")
	}
	bad = NASA(100)
	bad.EstimateFactor = 0.5
	if _, err := Synthesize(bad, 1); err == nil {
		t.Error("EstimateFactor<1 accepted")
	}
}

// Diurnal modulation: more arrivals land in the daytime half-cycle
// (peak at 0.25 day) than in the night half.
func TestSynthesizeDiurnalPattern(t *testing.T) {
	cfg := SDSC(5000)
	cfg.DiurnalAmp = 0.8
	cfg.WeekendFactor = 1
	log, err := Synthesize(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	day, night := 0, 0
	for _, tj := range log.Jobs {
		frac := math.Mod(tj.Submit, Day) / Day
		if frac > 0.25 && frac < 0.75 { // the half-cycle where the rate model peaks
			day++
		} else {
			night++
		}
	}
	if day <= night {
		t.Fatalf("diurnal pattern missing: %d day vs %d night arrivals", day, night)
	}
}

func TestPresetByName(t *testing.T) {
	for _, name := range []string{"NASA", "SDSC", "LLNL", "nasa", "sdsc", "llnl"} {
		cfg, err := PresetByName(name, 10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.JobCount != 10 {
			t.Fatalf("%s: JobCount not threaded through", name)
		}
	}
	if _, err := PresetByName("CRAY", 10); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestToJobsMapping(t *testing.T) {
	g := torus.BlueGeneL()
	log := &Log{
		Name:         "test",
		MachineNodes: 256, // twice the simulated machine: sizes halve
		Jobs: []TraceJob{
			{Submit: 0, Run: 100, ReqTime: 200, Procs: 256},
			{Submit: 10, Run: 50, ReqTime: 60, Procs: 22}, // 22/2 = 11 -> rounds up to 12
			{Submit: 20, Run: -1, Procs: 4},               // cancelled: dropped
			{Submit: 30, Run: 10, Procs: 0},               // malformed: dropped
			{Submit: 40, Run: 10, ReqTime: 0, Procs: 1},
		},
	}
	jobs, err := log.ToJobs(g, ToJobsConfig{LoadScale: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("got %d jobs, want 3", len(jobs))
	}
	if jobs[0].Size != 128 || jobs[0].AllocSize != 128 {
		t.Fatalf("full-machine job mapped to %d/%d", jobs[0].Size, jobs[0].AllocSize)
	}
	if jobs[1].Size != 11 || jobs[1].AllocSize != 12 {
		t.Fatalf("job 2 mapped to size %d alloc %d, want 11/12", jobs[1].Size, jobs[1].AllocSize)
	}
	if jobs[1].Estimate != 60 {
		t.Fatalf("job 2 estimate = %g, want requested 60", jobs[1].Estimate)
	}
	if jobs[2].Estimate != 10 {
		t.Fatalf("job with unknown request must fall back to actual, got %g", jobs[2].Estimate)
	}
	// IDs are dense and positive.
	for i, j := range jobs {
		if j.ID != job.ID(i+1) {
			t.Fatalf("job %d has id %d", i, j.ID)
		}
	}
}
