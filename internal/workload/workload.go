// Package workload provides the job-log substrate: a parser and writer
// for the Parallel Workloads Archive standard workload format (SWF), so
// the real NASA/SDSC/LLNL logs can be replayed when available, and
// synthetic generators that reproduce each log's first-order statistics
// (machine size, power-of-two-dominated size mix, heavy-tailed
// runtimes, diurnal arrivals) for offline use.
//
// A Log is machine-relative (sizes refer to the traced machine);
// ToJobs maps it onto the simulated torus: sizes are rescaled when the
// traced machine is larger than the torus, rounded up to feasible
// rectangular sizes, and execution times are multiplied by the paper's
// load-scaling coefficient c (Section 6.2).
package workload

import (
	"fmt"
	"math"

	"bgsched/internal/job"
	"bgsched/internal/torus"
)

// TraceJob is one record of a job log, machine-relative.
type TraceJob struct {
	Submit  float64 // submission (arrival) time, seconds from log origin
	Run     float64 // actual run time, seconds
	ReqTime float64 // user-requested (estimated) run time, seconds; 0 if unknown
	Procs   int     // processors requested
}

// Log is a job log together with the size of the machine it was
// collected on.
type Log struct {
	Name         string
	MachineNodes int
	Jobs         []TraceJob
}

// Span returns the time between the first and last submission.
func (l *Log) Span() float64 {
	if len(l.Jobs) == 0 {
		return 0
	}
	return l.Jobs[len(l.Jobs)-1].Submit - l.Jobs[0].Submit
}

// OfferedLoad returns the offered load fraction relative to a machine
// of n nodes over the log's span: sum(procs*run) / (span * n).
func (l *Log) OfferedLoad(n int) float64 {
	span := l.Span()
	if span <= 0 || n <= 0 {
		return 0
	}
	work := 0.0
	for _, tj := range l.Jobs {
		work += float64(tj.Procs) * tj.Run
	}
	return work / (span * float64(n))
}

// ToJobsConfig controls the mapping from a log onto the simulated
// machine.
type ToJobsConfig struct {
	// LoadScale is the paper's coefficient c: every job's execution
	// time is multiplied by it. 1.0 replays the log as-is.
	LoadScale float64
	// ExactEstimates forces Estimate == Actual, matching the paper's
	// simulations where the estimated execution time is taken as true.
	// When false, the log's requested time is used as the estimate.
	ExactEstimates bool
}

// ToJobs maps the log onto the torus g. Sizes are scaled by
// g.N()/MachineNodes when the traced machine is larger than the torus
// (e.g. the 256-node LLNL log on the 128-supernode machine), clamped to
// [1, g.N()], and rounded up to the next feasible rectangular size.
func (l *Log) ToJobs(g torus.Geometry, cfg ToJobsConfig) ([]*job.Job, error) {
	if cfg.LoadScale <= 0 {
		return nil, fmt.Errorf("workload: LoadScale = %g, want > 0", cfg.LoadScale)
	}
	if l.MachineNodes <= 0 {
		return nil, fmt.Errorf("workload: log %q has MachineNodes = %d", l.Name, l.MachineNodes)
	}
	scale := 1.0
	if l.MachineNodes > g.N() {
		scale = float64(g.N()) / float64(l.MachineNodes)
	}
	jobs := make([]*job.Job, 0, len(l.Jobs))
	var id job.ID
	for i, tj := range l.Jobs {
		if tj.Run <= 0 || tj.Procs <= 0 {
			continue // cancelled or malformed record
		}
		size := int(math.Ceil(float64(tj.Procs) * scale))
		if size < 1 {
			size = 1
		}
		if size > g.N() {
			size = g.N()
		}
		alloc, ok := g.RoundUpFeasible(size)
		if !ok {
			return nil, fmt.Errorf("workload: job %d: size %d not placeable", i, size)
		}
		actual := tj.Run * cfg.LoadScale
		estimate := actual
		if !cfg.ExactEstimates && tj.ReqTime > 0 {
			estimate = tj.ReqTime * cfg.LoadScale
		}
		id++
		j := &job.Job{
			ID:        id,
			Arrival:   tj.Submit,
			Size:      size,
			AllocSize: alloc,
			Estimate:  estimate,
			Actual:    actual,
		}
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("workload: record %d: %w", i, err)
		}
		jobs = append(jobs, j)
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("workload: log %q produced no usable jobs", l.Name)
	}
	return jobs, nil
}
