package workload

import (
	"strings"
	"testing"
)

func TestAnalyzeHandMade(t *testing.T) {
	log := &Log{
		Name:         "hand",
		MachineNodes: 128,
		Jobs: []TraceJob{
			{Submit: 0, Run: 100, Procs: 8},
			{Submit: 100, Run: 200, Procs: 7},   // not a power of two
			{Submit: 200, Run: 300, Procs: 128}, // full machine
			{Submit: 250, Run: -1, Procs: 4},    // unusable
		},
	}
	s, err := Analyze(log)
	if err != nil {
		t.Fatal(err)
	}
	if s.Jobs != 4 || s.Usable != 3 {
		t.Fatalf("jobs/usable = %d/%d", s.Jobs, s.Usable)
	}
	if s.PowerOfTwo < 0.66 || s.PowerOfTwo > 0.67 {
		t.Fatalf("pow2 fraction = %g, want 2/3", s.PowerOfTwo)
	}
	if s.FullMachine < 0.33 || s.FullMachine > 0.34 {
		t.Fatalf("full-machine fraction = %g, want 1/3", s.FullMachine)
	}
	if s.MedianRun != 200 {
		t.Fatalf("median run = %g", s.MedianRun)
	}
	if !strings.Contains(s.String(), "usable=3") {
		t.Fatal("String")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(&Log{Name: "x"}); err == nil {
		t.Error("no machine size accepted")
	}
	if _, err := Analyze(&Log{Name: "x", MachineNodes: 128}); err == nil {
		t.Error("empty log accepted")
	}
	onlyBad := &Log{Name: "x", MachineNodes: 4, Jobs: []TraceJob{{Run: -1, Procs: 1}}}
	if _, err := Analyze(onlyBad); err == nil {
		t.Error("log with no usable jobs accepted")
	}
}

// The synthetic presets must measure as what they claim to model.
func TestAnalyzePresetCharacter(t *testing.T) {
	for _, tc := range []struct {
		cfg      SyntheticConfig
		wantPow2 float64 // minimum fraction of power-of-two sizes
	}{
		{NASA(2000), 0.99}, // iPSC/860: pure power-of-two
		{LLNL(2000), 0.99}, // T3D: pure power-of-two
		{SDSC(2000), 0.75}, // SP2: mostly, with a non-pow2 tail
	} {
		log, err := Synthesize(tc.cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Analyze(log)
		if err != nil {
			t.Fatal(err)
		}
		if s.PowerOfTwo < tc.wantPow2 {
			t.Errorf("%s: pow2 fraction %.2f < %.2f", tc.cfg.Name, s.PowerOfTwo, tc.wantPow2)
		}
		if s.DiurnalIndex <= 1.05 {
			t.Errorf("%s: diurnal index %.2f, want clearly > 1", tc.cfg.Name, s.DiurnalIndex)
		}
		if s.RuntimeCV <= 1 {
			t.Errorf("%s: runtime CV %.2f, want heavy-tailed (> 1)", tc.cfg.Name, s.RuntimeCV)
		}
	}
}
