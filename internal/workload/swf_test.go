package workload

import (
	"bytes"
	"strings"
	"testing"

	"bgsched/internal/torus"
)

const sampleSWF = `; Computer: Test Machine
; MaxProcs: 128
; UnixStartTime: 0
1 0 5 100 8 -1 -1 8 200 -1 1 3 1 -1 1 -1 -1 -1
2 60 0 50 16 -1 -1 16 -1 -1 1 4 1 -1 1 -1 -1 -1
3 120 0 -1 4 -1 -1 4 100 -1 5 4 1 -1 1 -1 -1 -1
4 180 0 30 0 -1 -1 -1 40 -1 1 4 1 -1 1 -1 -1 -1
`

func TestReadSWF(t *testing.T) {
	log, err := ReadSWF(strings.NewReader(sampleSWF), "test")
	if err != nil {
		t.Fatal(err)
	}
	if log.MachineNodes != 128 {
		t.Fatalf("MachineNodes = %d, want 128 from header", log.MachineNodes)
	}
	if len(log.Jobs) != 4 {
		t.Fatalf("parsed %d jobs, want 4", len(log.Jobs))
	}
	j := log.Jobs[0]
	if j.Submit != 0 || j.Run != 100 || j.Procs != 8 || j.ReqTime != 200 {
		t.Fatalf("job 1 = %+v", j)
	}
	if log.Jobs[1].ReqTime != 0 {
		t.Fatalf("missing request time should parse as 0, got %g", log.Jobs[1].ReqTime)
	}
	// Job 4 has -1 requested procs; falls back to allocated (0).
	if log.Jobs[3].Procs != 0 {
		t.Fatalf("job 4 procs = %d", log.Jobs[3].Procs)
	}
}

func TestReadSWFErrors(t *testing.T) {
	if _, err := ReadSWF(strings.NewReader("1 2 3\n"), "x"); err == nil {
		t.Error("short record accepted")
	}
	if _, err := ReadSWF(strings.NewReader(strings.Replace(sampleSWF, "1 0 5", "1 z 5", 1)), "x"); err == nil {
		t.Error("non-numeric field accepted")
	}
}

func TestSWFRoundTrip(t *testing.T) {
	cfg := NASA(200)
	log, err := Synthesize(cfg, 13)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, log); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSWF(&buf, log.Name)
	if err != nil {
		t.Fatal(err)
	}
	if back.MachineNodes != log.MachineNodes {
		t.Fatalf("MachineNodes = %d, want %d", back.MachineNodes, log.MachineNodes)
	}
	if len(back.Jobs) != len(log.Jobs) {
		t.Fatalf("round trip job count %d, want %d", len(back.Jobs), len(log.Jobs))
	}
	for i := range back.Jobs {
		a, b := log.Jobs[i], back.Jobs[i]
		// SWF stores integer seconds; allow truncation.
		if int64(a.Submit) != int64(b.Submit) || int64(a.Run) != int64(b.Run) || a.Procs != b.Procs {
			t.Fatalf("job %d: %+v != %+v", i, a, b)
		}
	}
}

func TestSWFToJobsEndToEnd(t *testing.T) {
	log, err := ReadSWF(strings.NewReader(sampleSWF), "test")
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := log.ToJobs(torus.BlueGeneL(), ToJobsConfig{LoadScale: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	// Jobs 3 (run=-1) and 4 (procs<=0) are dropped.
	if len(jobs) != 2 {
		t.Fatalf("got %d jobs, want 2", len(jobs))
	}
	if jobs[0].Actual != 120 {
		t.Fatalf("load scale not applied: actual = %g, want 120", jobs[0].Actual)
	}
	if jobs[0].Estimate != 240 {
		t.Fatalf("estimate = %g, want 240", jobs[0].Estimate)
	}
}

func TestToJobsExactEstimates(t *testing.T) {
	log := &Log{Name: "x", MachineNodes: 128, Jobs: []TraceJob{
		{Submit: 0, Run: 100, ReqTime: 500, Procs: 4},
	}}
	jobs, err := log.ToJobs(torus.BlueGeneL(), ToJobsConfig{LoadScale: 1, ExactEstimates: true})
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Estimate != jobs[0].Actual {
		t.Fatalf("ExactEstimates: estimate %g != actual %g", jobs[0].Estimate, jobs[0].Actual)
	}
}

func TestToJobsErrors(t *testing.T) {
	log := &Log{Name: "x", MachineNodes: 128, Jobs: []TraceJob{{Submit: 0, Run: 1, Procs: 1}}}
	if _, err := log.ToJobs(torus.BlueGeneL(), ToJobsConfig{LoadScale: 0}); err == nil {
		t.Error("LoadScale=0 accepted")
	}
	empty := &Log{Name: "x", MachineNodes: 128, Jobs: []TraceJob{{Submit: 0, Run: -1, Procs: 1}}}
	if _, err := empty.ToJobs(torus.BlueGeneL(), ToJobsConfig{LoadScale: 1}); err == nil {
		t.Error("log with no usable jobs accepted")
	}
	noMachine := &Log{Name: "x", Jobs: []TraceJob{{Submit: 0, Run: 1, Procs: 1}}}
	if _, err := noMachine.ToJobs(torus.BlueGeneL(), ToJobsConfig{LoadScale: 1}); err == nil {
		t.Error("log without MachineNodes accepted")
	}
}

func TestLogSpanAndOfferedLoad(t *testing.T) {
	log := &Log{Name: "x", MachineNodes: 10, Jobs: []TraceJob{
		{Submit: 0, Run: 50, Procs: 2},
		{Submit: 100, Run: 50, Procs: 2},
	}}
	if got := log.Span(); got != 100 {
		t.Fatalf("Span = %g", got)
	}
	// work = 2*50 + 2*50 = 200; capacity = 100 * 10.
	if got := log.OfferedLoad(10); got != 0.2 {
		t.Fatalf("OfferedLoad = %g, want 0.2", got)
	}
	if got := (&Log{}).Span(); got != 0 {
		t.Fatalf("empty Span = %g", got)
	}
	if got := (&Log{}).OfferedLoad(10); got != 0 {
		t.Fatalf("empty OfferedLoad = %g", got)
	}
}
