package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// SWF field indices (0-based) of the standard workload format v2.2 of
// the Parallel Workloads Archive. Every record has 18 whitespace-
// separated fields; -1 marks an unknown value.
const (
	swfJobNumber = iota
	swfSubmitTime
	swfWaitTime
	swfRunTime
	swfAllocProcs
	swfAvgCPUTime
	swfUsedMemory
	swfReqProcs
	swfReqTime
	swfReqMemory
	swfStatus
	swfUserID
	swfGroupID
	swfExecutable
	swfQueue
	swfPartition
	swfPrecedingJob
	swfThinkTime
	swfFieldCount
)

// ReadSWF parses a standard workload format log. Header directives
// (lines starting with ';') are scanned for "MaxProcs:" to learn the
// machine size; if absent, machineNodes must be supplied by the caller
// via the returned log's MachineNodes field before use. Records with
// non-positive run time or processor count (cancelled jobs) are kept in
// the log and filtered by ToJobs.
func ReadSWF(r io.Reader, name string) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	log := &Log{Name: name}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			if v, ok := headerInt(line, "MaxProcs:"); ok {
				log.MachineNodes = v
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < swfFieldCount {
			return nil, fmt.Errorf("workload: swf line %d: %d fields, want %d", lineNo, len(fields), swfFieldCount)
		}
		get := func(i int) (float64, error) {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return 0, fmt.Errorf("workload: swf line %d field %d: %w", lineNo, i+1, err)
			}
			return v, nil
		}
		submit, err := get(swfSubmitTime)
		if err != nil {
			return nil, err
		}
		run, err := get(swfRunTime)
		if err != nil {
			return nil, err
		}
		reqProcs, err := get(swfReqProcs)
		if err != nil {
			return nil, err
		}
		allocProcs, err := get(swfAllocProcs)
		if err != nil {
			return nil, err
		}
		reqTime, err := get(swfReqTime)
		if err != nil {
			return nil, err
		}
		procs := int(reqProcs)
		if procs <= 0 {
			procs = int(allocProcs)
		}
		if reqTime < 0 {
			reqTime = 0
		}
		log.Jobs = append(log.Jobs, TraceJob{
			Submit:  submit,
			Run:     run,
			ReqTime: reqTime,
			Procs:   procs,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: swf: %w", err)
	}
	return log, nil
}

func headerInt(line, key string) (int, bool) {
	i := strings.Index(line, key)
	if i < 0 {
		return 0, false
	}
	rest := strings.TrimSpace(line[i+len(key):])
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return 0, false
	}
	v, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0, false
	}
	return v, true
}

// WriteSWF writes the log in standard workload format. Fields this
// model does not track are emitted as -1.
func WriteSWF(w io.Writer, log *Log) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "; Computer: %s\n; MaxProcs: %d\n", log.Name, log.MachineNodes); err != nil {
		return err
	}
	for i, tj := range log.Jobs {
		reqTime := int64(tj.ReqTime)
		if reqTime == 0 {
			reqTime = -1
		}
		_, err := fmt.Fprintf(bw, "%d %d -1 %d %d -1 -1 %d %d -1 1 -1 -1 -1 -1 -1 -1 -1\n",
			i+1, int64(tj.Submit), int64(tj.Run), tj.Procs, tj.Procs, reqTime)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
