package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"bgsched/internal/resilience"
	"bgsched/internal/telemetry"
)

// SWF field indices (0-based) of the standard workload format v2.2 of
// the Parallel Workloads Archive. Every record has 18 whitespace-
// separated fields; -1 marks an unknown value.
const (
	swfJobNumber = iota
	swfSubmitTime
	swfWaitTime
	swfRunTime
	swfAllocProcs
	swfAvgCPUTime
	swfUsedMemory
	swfReqProcs
	swfReqTime
	swfReqMemory
	swfStatus
	swfUserID
	swfGroupID
	swfExecutable
	swfQueue
	swfPartition
	swfPrecedingJob
	swfThinkTime
	swfFieldCount
)

// ReadOptions controls how ReadSWFWith treats malformed input.
type ReadOptions struct {
	// Lenient skips malformed records instead of failing fast,
	// recording line-scoped reasons in the ingest report. Out-of-order
	// submit times are re-sorted; strict mode keeps file order.
	Lenient bool
	// MaxErrors caps the line errors retained in the report
	// (<= 0 means resilience.DefaultMaxLineErrors).
	MaxErrors int
	// Metrics, when non-nil, receives ingest.swf.* counters mirroring
	// the report, so skipped lines surface in run manifests.
	Metrics *telemetry.Registry
}

// ReadSWF parses a standard workload format log, failing fast on the
// first malformed record (strict mode). Header directives (lines
// starting with ';') are scanned for "MaxProcs:" to learn the machine
// size; if absent, machineNodes must be supplied by the caller via the
// returned log's MachineNodes field before use. Records with
// non-positive run time or processor count (cancelled jobs) are kept in
// the log and filtered by ToJobs.
func ReadSWF(r io.Reader, name string) (*Log, error) {
	log, _, err := ReadSWFWith(r, name, ReadOptions{})
	return log, err
}

// ReadSWFWith parses a standard workload format log under the given
// options, returning an ingest report alongside the log. In lenient
// mode malformed records are skipped and described in the report; in
// strict mode the first one aborts the parse. The report is non-nil
// even on error.
func ReadSWFWith(r io.Reader, name string, opt ReadOptions) (*Log, *resilience.IngestReport, error) {
	rep := resilience.NewIngestReport(opt.MaxErrors)
	defer func() {
		if opt.Metrics != nil {
			opt.Metrics.Counter("ingest.swf.lines").Add(int64(rep.Lines))
			opt.Metrics.Counter("ingest.swf.records").Add(int64(rep.Records))
			opt.Metrics.Counter("ingest.swf.skipped").Add(int64(rep.Skipped))
			opt.Metrics.Counter("ingest.swf.out_of_order").Add(int64(rep.OutOfOrder))
		}
	}()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	log := &Log{Name: name}
	lineNo := 0
	lastSubmit := math.Inf(-1)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			if v, ok := headerInt(line, "MaxProcs:"); ok {
				log.MachineNodes = v
			}
			continue
		}
		rep.Lines++
		tj, reason := parseSWFRecord(strings.Fields(line))
		if reason != "" {
			if !opt.Lenient {
				return nil, rep, fmt.Errorf("workload: swf line %d: %s", lineNo, reason)
			}
			rep.AddError(lineNo, reason)
			continue
		}
		if tj.Submit < lastSubmit {
			rep.OutOfOrder++
		}
		lastSubmit = tj.Submit
		log.Jobs = append(log.Jobs, tj)
	}
	if err := sc.Err(); err != nil {
		// Scanner-level damage (e.g. an over-long line) loses framing;
		// even lenient mode cannot resync past it.
		return nil, rep, fmt.Errorf("workload: swf: %w", err)
	}
	rep.Records = len(log.Jobs)
	if opt.Lenient && rep.OutOfOrder > 0 {
		sort.SliceStable(log.Jobs, func(i, j int) bool { return log.Jobs[i].Submit < log.Jobs[j].Submit })
	}
	return log, rep, nil
}

// maxSWFProcs bounds the processor count of a single record. Values
// beyond it (no real machine, and far outside int32) indicate a
// corrupt field, and unguarded float-to-int conversion of such values
// is platform-defined.
const maxSWFProcs = 1 << 30

// parseSWFRecord converts one whitespace-split SWF record into a
// TraceJob, returning a non-empty reason if the record is malformed:
// too few fields, unparseable or non-finite numbers, a negative submit
// time, or an absurd processor count. The SWF "unknown" marker -1 in
// run time, request time, or processor fields stays valid.
func parseSWFRecord(fields []string) (TraceJob, string) {
	if len(fields) < swfFieldCount {
		return TraceJob{}, fmt.Sprintf("%d fields, want %d", len(fields), swfFieldCount)
	}
	get := func(i int) (float64, string) {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return 0, fmt.Sprintf("field %d: %v", i+1, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Sprintf("field %d: non-finite value %q", i+1, fields[i])
		}
		return v, ""
	}
	var tj TraceJob
	submit, reason := get(swfSubmitTime)
	if reason != "" {
		return tj, reason
	}
	if submit < 0 {
		return tj, fmt.Sprintf("negative submit time %g", submit)
	}
	run, reason := get(swfRunTime)
	if reason != "" {
		return tj, reason
	}
	reqProcs, reason := get(swfReqProcs)
	if reason != "" {
		return tj, reason
	}
	allocProcs, reason := get(swfAllocProcs)
	if reason != "" {
		return tj, reason
	}
	reqTime, reason := get(swfReqTime)
	if reason != "" {
		return tj, reason
	}
	if reqProcs > maxSWFProcs || allocProcs > maxSWFProcs {
		return tj, fmt.Sprintf("processor count out of range (req %g, alloc %g)", reqProcs, allocProcs)
	}
	procs := int(reqProcs)
	if procs <= 0 {
		procs = int(allocProcs)
	}
	if procs < 0 {
		procs = 0 // -1 "unknown" marker; ToJobs drops procs <= 0
	}
	if reqTime < 0 {
		reqTime = 0
	}
	return TraceJob{Submit: submit, Run: run, ReqTime: reqTime, Procs: procs}, ""
}

func headerInt(line, key string) (int, bool) {
	i := strings.Index(line, key)
	if i < 0 {
		return 0, false
	}
	rest := strings.TrimSpace(line[i+len(key):])
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return 0, false
	}
	v, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0, false
	}
	return v, true
}

// WriteSWF writes the log in standard workload format. Fields this
// model does not track are emitted as -1.
func WriteSWF(w io.Writer, log *Log) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "; Computer: %s\n; MaxProcs: %d\n", log.Name, log.MachineNodes); err != nil {
		return err
	}
	for i, tj := range log.Jobs {
		reqTime := int64(tj.ReqTime)
		if reqTime == 0 {
			reqTime = -1
		}
		_, err := fmt.Fprintf(bw, "%d %d -1 %d %d -1 -1 %d %d -1 1 -1 -1 -1 -1 -1 -1 -1\n",
			i+1, int64(tj.Submit), int64(tj.Run), tj.Procs, tj.Procs, reqTime)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
