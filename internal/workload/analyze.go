package workload

import (
	"fmt"
	"math"
	"sort"
)

// LogStats summarises the statistical character of a job log — the
// properties the synthetic presets are calibrated to reproduce.
type LogStats struct {
	Jobs     int
	Usable   int // positive runtime and size
	SpanDays float64

	OfferedLoad float64

	// Size mix.
	MeanSize     float64
	MedianSize   float64
	PowerOfTwo   float64 // fraction of jobs with power-of-two sizes
	FullMachine  float64 // fraction requesting the whole machine
	MeanRuntime  float64
	MedianRun    float64
	P90Run       float64
	RuntimeCV    float64 // coefficient of variation (tail heaviness)
	InterarrCV   float64 // arrival burstiness; 1 for Poisson
	DiurnalIndex float64 // peak-hour arrival share / uniform share (1 = flat)
}

// Analyze computes LogStats.
func Analyze(l *Log) (LogStats, error) {
	if l.MachineNodes <= 0 {
		return LogStats{}, fmt.Errorf("workload: log %q has no machine size", l.Name)
	}
	if len(l.Jobs) == 0 {
		return LogStats{}, fmt.Errorf("workload: log %q is empty", l.Name)
	}
	s := LogStats{Jobs: len(l.Jobs), SpanDays: l.Span() / 86400, OfferedLoad: l.OfferedLoad(l.MachineNodes)}

	var sizes, runs, gaps []float64
	hourCounts := make([]int, 24)
	prevSubmit := math.Inf(-1)
	for _, tj := range l.Jobs {
		if tj.Run <= 0 || tj.Procs <= 0 {
			continue
		}
		s.Usable++
		sizes = append(sizes, float64(tj.Procs))
		runs = append(runs, tj.Run)
		if tj.Procs&(tj.Procs-1) == 0 {
			s.PowerOfTwo++
		}
		if tj.Procs == l.MachineNodes {
			s.FullMachine++
		}
		if !math.IsInf(prevSubmit, -1) {
			gaps = append(gaps, tj.Submit-prevSubmit)
		}
		prevSubmit = tj.Submit
		hour := int(math.Mod(tj.Submit, 86400) / 3600)
		if hour >= 0 && hour < 24 {
			hourCounts[hour]++
		}
	}
	if s.Usable == 0 {
		return LogStats{}, fmt.Errorf("workload: log %q has no usable jobs", l.Name)
	}
	u := float64(s.Usable)
	s.PowerOfTwo /= u
	s.FullMachine /= u
	s.MeanSize, _ = meanCV(sizes)
	s.MedianSize = median(sizes)
	s.MeanRuntime, s.RuntimeCV = meanCV(runs)
	s.MedianRun = median(runs)
	s.P90Run = quantile(runs, 0.9)
	_, s.InterarrCV = meanCV(gaps)

	maxHour := 0
	total := 0
	for _, c := range hourCounts {
		total += c
		if c > maxHour {
			maxHour = c
		}
	}
	if total > 0 {
		s.DiurnalIndex = float64(maxHour) / (float64(total) / 24)
	}
	return s, nil
}

func meanCV(xs []float64) (mean, cv float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 || mean == 0 {
		return mean, 0
	}
	variance := 0.0
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(len(xs) - 1)
	return mean, math.Sqrt(variance) / mean
}

func median(xs []float64) float64 { return quantile(xs, 0.5) }

func quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(math.Round(p * float64(len(sorted)-1)))
	return sorted[i]
}

// String renders the stats on a few lines.
func (s LogStats) String() string {
	return fmt.Sprintf(
		"jobs=%d usable=%d span=%.1fd load=%.2f pow2=%.0f%% size(p50=%.0f mean=%.1f) run(p50=%.0fs mean=%.0fs cv=%.1f) arrivalCV=%.1f diurnal=%.1fx",
		s.Jobs, s.Usable, s.SpanDays, s.OfferedLoad, s.PowerOfTwo*100,
		s.MedianSize, s.MeanSize, s.MedianRun, s.MeanRuntime, s.RuntimeCV,
		s.InterarrCV, s.DiurnalIndex)
}
