package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Day and Week are the time constants of the arrival model, in seconds.
const (
	Day  = 24 * 3600.0
	Week = 7 * Day
)

// SyntheticConfig parameterises the synthetic log generator. The
// generator produces a nonhomogeneous Poisson arrival process with
// diurnal and weekly cycles, a power-of-two dominated size mix, and
// lognormal runtimes, then rescales runtimes so the offered load hits
// TargetLoad exactly — the calibration knob that stands in for the real
// logs' load level.
type SyntheticConfig struct {
	Name         string
	MachineNodes int
	JobCount     int

	ArrivalsPerDay float64 // mean arrival rate
	DiurnalAmp     float64 // [0,1): day/night modulation depth
	WeekendFactor  float64 // arrival-rate multiplier on weekends (0,1]

	SizeWeights map[int]float64 // relative weight per power-of-two size
	NonPow2Prob float64         // probability of a uniform non-power-of-two size

	RunLogMean  float64 // lognormal location of runtime (log-seconds)
	RunLogSigma float64 // lognormal scale
	MinRun      float64 // clamp, seconds
	MaxRun      float64 // clamp, seconds

	// TargetLoad is the offered load fraction (work / capacity) the
	// generated log is calibrated to at c = 1.0.
	TargetLoad float64

	// EstimateFactor: user-requested time = actual * factor sampled
	// uniformly in [1, EstimateFactor]. 1 means exact estimates.
	EstimateFactor float64
}

// Validate reports configuration errors.
func (c *SyntheticConfig) Validate() error {
	switch {
	case c.MachineNodes < 1:
		return fmt.Errorf("workload: MachineNodes = %d", c.MachineNodes)
	case c.JobCount < 1:
		return fmt.Errorf("workload: JobCount = %d", c.JobCount)
	case c.ArrivalsPerDay <= 0:
		return fmt.Errorf("workload: ArrivalsPerDay = %g", c.ArrivalsPerDay)
	case c.DiurnalAmp < 0 || c.DiurnalAmp >= 1:
		return fmt.Errorf("workload: DiurnalAmp = %g, want [0,1)", c.DiurnalAmp)
	case c.WeekendFactor <= 0 || c.WeekendFactor > 1:
		return fmt.Errorf("workload: WeekendFactor = %g, want (0,1]", c.WeekendFactor)
	case len(c.SizeWeights) == 0:
		return fmt.Errorf("workload: empty SizeWeights")
	case c.MinRun <= 0 || c.MaxRun < c.MinRun:
		return fmt.Errorf("workload: bad runtime clamp [%g, %g]", c.MinRun, c.MaxRun)
	case c.TargetLoad <= 0 || c.TargetLoad > 2:
		return fmt.Errorf("workload: TargetLoad = %g", c.TargetLoad)
	case c.EstimateFactor < 1:
		return fmt.Errorf("workload: EstimateFactor = %g, want >= 1", c.EstimateFactor)
	}
	for size, w := range c.SizeWeights {
		if size < 1 || size > c.MachineNodes || w < 0 {
			return fmt.Errorf("workload: bad size weight %d:%g", size, w)
		}
	}
	return nil
}

// Synthesize generates a deterministic synthetic log.
func Synthesize(cfg SyntheticConfig, seed int64) (*Log, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	// Arrival process: thinning against the peak rate.
	peak := cfg.ArrivalsPerDay / Day * (1 + cfg.DiurnalAmp)
	rate := func(t float64) float64 {
		r := cfg.ArrivalsPerDay / Day
		// Diurnal cycle peaking mid-day.
		r *= 1 + cfg.DiurnalAmp*math.Sin(2*math.Pi*(t/Day-0.25))
		// Weekend slowdown: days 5 and 6 of each week.
		if wd := math.Mod(t, Week) / Day; wd >= 5 {
			r *= cfg.WeekendFactor
		}
		return r
	}
	arrivals := make([]float64, 0, cfg.JobCount)
	t := 0.0
	for len(arrivals) < cfg.JobCount {
		t += rng.ExpFloat64() / peak
		if rng.Float64() <= rate(t)/peak {
			arrivals = append(arrivals, t)
		}
	}

	// Size mix.
	sizes := make([]int, 0, len(cfg.SizeWeights))
	for s := range cfg.SizeWeights {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	cum := make([]float64, len(sizes))
	total := 0.0
	for i, s := range sizes {
		total += cfg.SizeWeights[s]
		cum[i] = total
	}
	sampleSize := func() int {
		if cfg.NonPow2Prob > 0 && rng.Float64() < cfg.NonPow2Prob {
			return 1 + rng.Intn(cfg.MachineNodes)
		}
		x := rng.Float64() * total
		return sizes[sort.SearchFloat64s(cum, x)]
	}

	jobs := make([]TraceJob, cfg.JobCount)
	for i := range jobs {
		run := math.Exp(cfg.RunLogMean + cfg.RunLogSigma*rng.NormFloat64())
		if run < cfg.MinRun {
			run = cfg.MinRun
		}
		if run > cfg.MaxRun {
			run = cfg.MaxRun
		}
		jobs[i] = TraceJob{
			Submit: arrivals[i],
			Run:    run,
			Procs:  sampleSize(),
		}
	}

	log := &Log{Name: cfg.Name, MachineNodes: cfg.MachineNodes, Jobs: jobs}

	// Calibrate runtimes so the offered load matches TargetLoad.
	if load := log.OfferedLoad(cfg.MachineNodes); load > 0 {
		f := cfg.TargetLoad / load
		for i := range log.Jobs {
			r := log.Jobs[i].Run * f
			if r < 1 {
				r = 1 // keep runtimes physical after calibration
			}
			log.Jobs[i].Run = r
		}
	}

	// Estimates: requested time >= actual by a uniform factor.
	for i := range log.Jobs {
		f := 1.0
		if cfg.EstimateFactor > 1 {
			f = 1 + rng.Float64()*(cfg.EstimateFactor-1)
		}
		log.Jobs[i].ReqTime = log.Jobs[i].Run * f
	}
	return log, nil
}

// The presets below model the three Parallel Workloads Archive logs the
// paper replays (Section 6.2). Absolute rates are calibrated via
// TargetLoad; the distinguishing shapes are the size mixes and runtime
// tails: NASA's iPSC/860 log is dominated by small, short, power-of-two
// jobs; SDSC's SP2 log has a long runtime tail and a broader size mix;
// LLNL's Cray T3D log is dominated by large gang-scheduled jobs.

// NASA returns the synthetic model of the NASA Ames iPSC/860 log
// (128 nodes, 1993).
func NASA(jobCount int) SyntheticConfig {
	return SyntheticConfig{
		Name:           "NASA",
		MachineNodes:   128,
		JobCount:       jobCount,
		ArrivalsPerDay: 470,
		DiurnalAmp:     0.6,
		WeekendFactor:  0.4,
		SizeWeights: map[int]float64{
			1: 30, 2: 14, 4: 12, 8: 10, 16: 8, 32: 6, 64: 4, 128: 2,
		},
		NonPow2Prob:    0.0, // iPSC/860 allocations were powers of two
		RunLogMean:     4.6, // ~100 s median
		RunLogSigma:    1.6,
		MinRun:         1,
		MaxRun:         12 * 3600,
		TargetLoad:     0.50,
		EstimateFactor: 1,
	}
}

// SDSC returns the synthetic model of the San Diego Supercomputer
// Center IBM RS/6000 SP log (128 nodes, 1998-2000).
func SDSC(jobCount int) SyntheticConfig {
	return SyntheticConfig{
		Name:           "SDSC",
		MachineNodes:   128,
		JobCount:       jobCount,
		ArrivalsPerDay: 100,
		DiurnalAmp:     0.5,
		WeekendFactor:  0.6,
		SizeWeights: map[int]float64{
			1: 12, 2: 8, 4: 10, 8: 16, 16: 18, 32: 14, 64: 8, 128: 3,
		},
		NonPow2Prob:    0.15,
		RunLogMean:     6.2, // ~500 s median, heavy tail
		RunLogSigma:    2.0,
		MinRun:         10,
		MaxRun:         18 * 3600,
		TargetLoad:     0.65,
		EstimateFactor: 1,
	}
}

// LLNL returns the synthetic model of the Lawrence Livermore Cray T3D
// log (256 nodes, 1996).
func LLNL(jobCount int) SyntheticConfig {
	return SyntheticConfig{
		Name:           "LLNL",
		MachineNodes:   256,
		JobCount:       jobCount,
		ArrivalsPerDay: 120,
		DiurnalAmp:     0.5,
		WeekendFactor:  0.7,
		SizeWeights: map[int]float64{
			16: 6, 32: 14, 64: 18, 128: 12, 256: 6,
		},
		NonPow2Prob:    0.0, // T3D partitions were powers of two
		RunLogMean:     5.8, // ~330 s median
		RunLogSigma:    1.7,
		MinRun:         10,
		MaxRun:         12 * 3600,
		TargetLoad:     0.60,
		EstimateFactor: 1,
	}
}

// PresetByName returns the preset for "NASA", "SDSC" or "LLNL".
func PresetByName(name string, jobCount int) (SyntheticConfig, error) {
	switch name {
	case "NASA", "nasa":
		return NASA(jobCount), nil
	case "SDSC", "sdsc":
		return SDSC(jobCount), nil
	case "LLNL", "llnl":
		return LLNL(jobCount), nil
	}
	return SyntheticConfig{}, fmt.Errorf("workload: unknown preset %q (want NASA, SDSC or LLNL)", name)
}
