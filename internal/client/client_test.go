package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock advances virtual time on every Sleep and records the
// requested durations; no test in this package sleeps for real.
type fakeClock struct {
	mu    sync.Mutex
	now   time.Time
	slept []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if d > 0 {
		f.slept = append(f.slept, d)
		f.now = f.now.Add(d)
	}
	return nil
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

func (f *fakeClock) sleeps() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.slept...)
}

// newTestClient pairs a client (fake clock, seeded jitter) with a
// handler.
func newTestClient(t *testing.T, h http.HandlerFunc, mutate func(*Config)) (*Client, *fakeClock) {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	fc := newFakeClock()
	cfg := Config{BaseURL: ts.URL, Clock: fc, JitterSeed: 42}
	if mutate != nil {
		mutate(&cfg)
	}
	return New(cfg), fc
}

func viewBody(id string) string {
	return fmt.Sprintf(`{"id":%q,"kind":"sim","state":"done"}`, id)
}

func TestRetriesTransientServerErrorsThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	c, fc := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"transient"}`, http.StatusBadGateway)
			return
		}
		fmt.Fprint(w, viewBody("r-000001"))
	}, nil)

	v, err := c.Get(context.Background(), "r-000001")
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != "r-000001" || calls.Load() != 3 {
		t.Fatalf("id=%q calls=%d", v.ID, calls.Load())
	}
	slept := fc.sleeps()
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2: %v", len(slept), slept)
	}
	// Equal jitter keeps delay n in [base*2^(n-1)/2, base*2^(n-1)).
	base := 100 * time.Millisecond
	for i, d := range slept {
		lo, hi := (base<<i)/2, base<<i
		if d < lo || d >= hi {
			t.Fatalf("backoff %d = %v, want [%v, %v)", i, d, lo, hi)
		}
	}
}

func TestBackoffJitterIsSeedDeterministic(t *testing.T) {
	failing := func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}
	run := func(seed int64) []time.Duration {
		c, fc := newTestClient(t, failing, func(cfg *Config) {
			cfg.JitterSeed = seed
			cfg.BreakerThreshold = 100 // keep the breaker out of this test
		})
		if _, err := c.Get(context.Background(), "r-1"); err == nil {
			t.Fatal("expected failure")
		}
		return fc.sleeps()
	}
	a, b, other := run(7), run(7), run(8)
	if len(a) != 3 { // MaxAttempts 4 => 3 backoffs
		t.Fatalf("slept %d times, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced an identical jitter schedule")
	}
}

func TestHonorsRetryAfterAdvice(t *testing.T) {
	var calls atomic.Int64
	c, fc := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "7")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, viewBody("r-000002"))
	}, nil)

	if _, err := c.Get(context.Background(), "r-000002"); err != nil {
		t.Fatal(err)
	}
	slept := fc.sleeps()
	if len(slept) != 1 || slept[0] != 7*time.Second {
		t.Fatalf("slept %v, want exactly [7s]", slept)
	}
}

func TestClientErrorsAreNotRetried(t *testing.T) {
	var calls atomic.Int64
	c, fc := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"JobCount must be in [1, 20000]"}`, http.StatusBadRequest)
	}, nil)

	_, err := c.Get(context.Background(), "r-1")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if ae.Message == "" {
		t.Fatal("error body not decoded into APIError.Message")
	}
	if calls.Load() != 1 || len(fc.sleeps()) != 0 {
		t.Fatalf("calls=%d sleeps=%v: 4xx must not retry", calls.Load(), fc.sleeps())
	}
}

func TestTruncatedResponseBodyIsRetried(t *testing.T) {
	var calls atomic.Int64
	c, _ := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Declare more bytes than we send: the client's read fails
			// mid-body, exactly like chaos truncation or a cut connection.
			w.Header().Set("Content-Length", "500")
			w.Write([]byte(`{"id":"r-0`))
			return
		}
		fmt.Fprint(w, viewBody("r-000003"))
	}, nil)

	v, err := c.Get(context.Background(), "r-000003")
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != "r-000003" || calls.Load() != 2 {
		t.Fatalf("id=%q calls=%d, want retry after truncated body", v.ID, calls.Load())
	}
}

func TestCanceledContextStopsRetrying(t *testing.T) {
	var calls atomic.Int64
	c, fc := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}, nil)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Get(ctx, "r-1")
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() > 1 || len(fc.sleeps()) != 0 {
		t.Fatalf("calls=%d sleeps=%v: canceled ctx must not retry", calls.Load(), fc.sleeps())
	}
}

func TestCircuitBreakerOpensProbesAndRecovers(t *testing.T) {
	var calls atomic.Int64
	var healthy atomic.Bool
	c, fc := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if healthy.Load() {
			fmt.Fprint(w, viewBody("r-000004"))
			return
		}
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}, func(cfg *Config) {
		cfg.MaxAttempts = 1 // isolate breaker behaviour from retries
		cfg.BreakerThreshold = 3
		cfg.BreakerCooldown = 2 * time.Second
	})

	// Three hard failures open the circuit.
	for i := 0; i < 3; i++ {
		if _, err := c.Get(context.Background(), "r-1"); err == nil {
			t.Fatal("expected failure")
		}
	}
	if calls.Load() != 3 {
		t.Fatalf("server calls = %d, want 3", calls.Load())
	}
	// While open, calls fast-fail without touching the server.
	if _, err := c.Get(context.Background(), "r-1"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("open breaker reached the server (%d calls)", calls.Load())
	}
	// After the cooldown a single probe goes through; it fails, so the
	// circuit snaps open again immediately.
	fc.advance(2 * time.Second)
	if _, err := c.Get(context.Background(), "r-1"); errors.Is(err, ErrCircuitOpen) {
		t.Fatal("cooldown elapsed but probe was not admitted")
	}
	if calls.Load() != 4 {
		t.Fatalf("server calls = %d, want 4 (one probe)", calls.Load())
	}
	if _, err := c.Get(context.Background(), "r-1"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("failed probe did not re-open circuit: %v", err)
	}
	// The server heals; the next probe closes the circuit for good.
	healthy.Store(true)
	fc.advance(2 * time.Second)
	if _, err := c.Get(context.Background(), "r-000004"); err != nil {
		t.Fatalf("healed probe failed: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Get(context.Background(), "r-000004"); err != nil {
			t.Fatalf("closed circuit call %d failed: %v", i, err)
		}
	}
}

func TestRetryAfterCountsAsHealthyForBreaker(t *testing.T) {
	// A 429 is load shedding, not an outage: even a long streak must
	// not open the circuit.
	var calls atomic.Int64
	c, _ := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"run queue full"}`, http.StatusTooManyRequests)
	}, func(cfg *Config) {
		cfg.MaxAttempts = 2
		cfg.BreakerThreshold = 2
	})
	for i := 0; i < 3; i++ {
		if _, err := c.Get(context.Background(), "r-1"); errors.Is(err, ErrCircuitOpen) {
			t.Fatal("429 streak opened the circuit")
		}
	}
	if calls.Load() != 6 {
		t.Fatalf("server calls = %d, want 6 (2 attempts x 3 calls)", calls.Load())
	}
}

func TestBackoffCapsAtMax(t *testing.T) {
	c := New(Config{BaseURL: "http://x", BaseBackoff: time.Second, MaxBackoff: 3 * time.Second, Clock: newFakeClock()})
	for n := 1; n <= 12; n++ {
		if d := c.backoff(n, 0); d >= 3*time.Second || d < 0 {
			t.Fatalf("backoff(%d) = %v, want < 3s", n, d)
		}
	}
	if d := c.backoff(1, 9*time.Second); d != 9*time.Second {
		t.Fatalf("Retry-After override = %v, want 9s", d)
	}
}
