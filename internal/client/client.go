// Package client is the hardened Go client for the bgserve HTTP API:
// context-deadline propagation, jittered exponential backoff that
// honors server Retry-After advice, a consecutive-failure circuit
// breaker, and idempotent resubmission.
//
// Resubmission is safe by construction: the server canonicalises and
// hashes every submitted config, so a retried POST lands on the result
// cache or coalesces onto the in-flight identical run instead of
// executing twice. The client therefore retries submissions exactly
// like reads.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"bgsched/internal/experiments"
	"bgsched/internal/service"
	"bgsched/internal/telemetry"
)

// Config parameterises a Client. The zero value plus BaseURL is
// usable: sensible retry/backoff/breaker defaults are applied.
type Config struct {
	BaseURL string       // e.g. "http://127.0.0.1:8080"
	HTTP    *http.Client // defaults to a dedicated client, no global timeout (ctx rules)

	MaxAttempts int           // total tries per call (default 4)
	BaseBackoff time.Duration // first retry delay before jitter (default 100ms)
	MaxBackoff  time.Duration // backoff growth cap (default 5s)
	JitterSeed  int64         // deterministic jitter stream (0: fixed default seed)

	BreakerThreshold int           // consecutive hard failures that open the circuit (default 5)
	BreakerCooldown  time.Duration // open duration before a probe (default 2s)

	Clock     Clock               // test seam; defaults to the real clock
	Telemetry *telemetry.Registry // optional client-side metrics
}

// APIError is a non-2xx response from the server, decoded from its
// JSON error body when present. RetryAfter carries the server's
// Retry-After advice (zero when absent).
type APIError struct {
	Status     int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("client: server returned %d: %s", e.Status, e.Message)
	}
	return fmt.Sprintf("client: server returned %d", e.Status)
}

// Client is a hardened bgserve API client. Safe for concurrent use.
type Client struct {
	cfg   Config
	hc    *http.Client
	clock Clock
	br    *breaker

	rngMu sync.Mutex
	rng   *rand.Rand

	mRequests *telemetry.Counter
	mRetries  *telemetry.Counter
	mFailures *telemetry.Counter
	mShortCut *telemetry.Counter // calls fast-failed by the open breaker
}

// New builds a Client; cfg.BaseURL is required.
func New(cfg Config) *Client {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{}
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.New()
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = 1
	}
	return &Client{
		cfg:   cfg,
		hc:    cfg.HTTP,
		clock: cfg.Clock,
		br: &breaker{
			clock:     cfg.Clock,
			threshold: cfg.BreakerThreshold,
			cooldown:  cfg.BreakerCooldown,
		},
		rng:       rand.New(rand.NewSource(seed)),
		mRequests: cfg.Telemetry.Counter("client.requests"),
		mRetries:  cfg.Telemetry.Counter("client.retries"),
		mFailures: cfg.Telemetry.Counter("client.failures"),
		mShortCut: cfg.Telemetry.Counter("client.breaker_fastfail"),
	}
}

// Run submits a simulation config and blocks (?wait=1) until the run
// is terminal, returning the full record. Retried transparently; the
// server's canonical-hash dedup makes resubmission idempotent.
func (c *Client) Run(ctx context.Context, cfg experiments.RunConfig) (service.RunView, error) {
	return c.doView(ctx, http.MethodPost, "/v1/runs?wait=1", cfg)
}

// Submit enqueues a simulation config without waiting; the returned
// view carries the run id to poll.
func (c *Client) Submit(ctx context.Context, cfg experiments.RunConfig) (service.RunView, error) {
	return c.doView(ctx, http.MethodPost, "/v1/runs", cfg)
}

// Figure submits a paper-figure sweep and blocks until it finishes.
func (c *Client) Figure(ctx context.Context, fig string, req service.FigureRequest) (service.RunView, error) {
	return c.doView(ctx, http.MethodPost, "/v1/figures/"+url.PathEscape(fig)+"?wait=1", req)
}

// Get fetches one run record by id.
func (c *Client) Get(ctx context.Context, id string) (service.RunView, error) {
	return c.doView(ctx, http.MethodGet, "/v1/runs/"+url.PathEscape(id), nil)
}

// Ready probes /readyz; nil means the server reports ready.
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil, nil)
}

// doView runs a JSON request returning a RunView, capturing response
// headers for callers that care about cache semantics.
func (c *Client) doView(ctx context.Context, method, path string, payload any) (service.RunView, error) {
	var body []byte
	if payload != nil {
		var err error
		if body, err = json.Marshal(payload); err != nil {
			return service.RunView{}, fmt.Errorf("client: encode request: %w", err)
		}
	}
	var v service.RunView
	if err := c.do(ctx, method, path, body, &v, nil); err != nil {
		return service.RunView{}, err
	}
	return v, nil
}

// DoHeaders is doView plus the final attempt's response headers —
// bgload uses X-Cache / X-Chaos to classify outcomes.
func (c *Client) DoHeaders(ctx context.Context, method, path string, payload any) (service.RunView, http.Header, error) {
	var body []byte
	if payload != nil {
		var err error
		if body, err = json.Marshal(payload); err != nil {
			return service.RunView{}, nil, fmt.Errorf("client: encode request: %w", err)
		}
	}
	var v service.RunView
	hdr := make(http.Header)
	if err := c.do(ctx, method, path, body, &v, hdr); err != nil {
		return service.RunView{}, hdr, err
	}
	return v, hdr, nil
}

// do is the retry core: attempt, classify, back off, repeat. The
// caller's ctx bounds the whole call including backoff sleeps.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any, hdr http.Header) error {
	var lastErr error
	var retryAfter time.Duration
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.mRetries.Inc()
			if err := c.clock.Sleep(ctx, c.backoff(attempt-1, retryAfter)); err != nil {
				return fmt.Errorf("client: retry wait: %w (last error: %v)", err, lastErr)
			}
			retryAfter = 0
		}
		if err := c.br.allow(); err != nil {
			c.mShortCut.Inc()
			return err
		}
		c.mRequests.Inc()
		err := c.once(ctx, method, path, body, out, hdr)
		if err == nil {
			c.br.success()
			return nil
		}
		lastErr = err
		if ctx.Err() != nil {
			// Deadline propagation: the caller's budget is spent; whatever
			// failed under it is reported, never retried.
			c.br.failure()
			c.mFailures.Inc()
			return err
		}
		var ae *APIError
		if errors.As(err, &ae) {
			switch {
			case ae.Status == http.StatusTooManyRequests:
				// Load shedding: the server is healthy and told us when to
				// come back. Honor the advice; not a breaker failure.
				c.br.success()
				retryAfter = ae.RetryAfter
			case ae.Status >= 500:
				c.br.failure()
				retryAfter = ae.RetryAfter
			default:
				// Other 4xx: our request is wrong; retrying cannot help.
				c.br.success()
				c.mFailures.Inc()
				return err
			}
		} else {
			// Network error, truncated or undecodable body.
			c.br.failure()
		}
	}
	c.mFailures.Inc()
	return fmt.Errorf("client: giving up after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// once performs a single HTTP attempt.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any, hdr http.Header) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, rd)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if hdr != nil {
		for k := range hdr {
			delete(hdr, k)
		}
		for k, vs := range resp.Header {
			hdr[k] = vs
		}
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		// A truncated body (Content-Length mismatch, cut connection) is
		// indistinguishable from a flaky network: retryable.
		return fmt.Errorf("client: read response: %w", err)
	}
	if resp.StatusCode >= 400 {
		ae := &APIError{Status: resp.StatusCode, RetryAfter: parseRetryAfter(resp.Header)}
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(b, &eb) == nil && eb.Error != "" {
			ae.Message = eb.Error
		} else {
			ae.Message = string(bytes.TrimSpace(b))
		}
		return ae
	}
	if out != nil {
		if err := json.Unmarshal(b, out); err != nil {
			// A 2xx with an undecodable body is corruption in transit (or
			// injected truncation): retryable, and never surfaced as data.
			return fmt.Errorf("client: decode response: %w", err)
		}
	}
	return nil
}

// backoff computes the nth retry delay: exponential growth from
// BaseBackoff capped at MaxBackoff, with "equal jitter" (uniform in
// [d/2, d)) drawn from the client's seeded stream so a seeded run
// replays the same waits. Server Retry-After advice, when present,
// replaces the computed delay verbatim.
func (c *Client) backoff(n int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		return retryAfter
	}
	d := c.cfg.BaseBackoff << (n - 1)
	if d <= 0 || d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	c.rngMu.Lock()
	f := c.rng.Float64()
	c.rngMu.Unlock()
	return d/2 + time.Duration(f*float64(d/2))
}

// parseRetryAfter reads a delay-seconds Retry-After header (the only
// form bgserve emits); absent or unparsable yields zero.
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
