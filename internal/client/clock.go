package client

import (
	"context"
	"time"
)

// Clock abstracts wall time so retry/backoff behaviour is testable
// with a fake clock: `go test` never sleeps for real.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in
	// the latter case. A non-positive d returns immediately (after a
	// ctx check), so cancelled contexts never start a wait.
	Sleep(ctx context.Context, d time.Duration) error
}

// realClock is the production Clock.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
