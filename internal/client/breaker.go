package client

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned without touching the network while the
// circuit breaker is open: the server was failing hard, and hammering
// it during recovery only deepens the outage.
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// breaker is a consecutive-failure circuit breaker with the classic
// three states: closed (normal), open (fast-fail until a cooldown
// elapses), and half-open (exactly one probe request is let through;
// its outcome closes or re-opens the circuit).
type breaker struct {
	clock     Clock
	threshold int           // consecutive failures that open the circuit
	cooldown  time.Duration // open duration before a half-open probe

	mu       sync.Mutex
	fails    int
	state    breakerState
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// allow reports whether a request may proceed. In the open state it
// fast-fails until the cooldown elapses, then admits a single probe.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if b.clock.Now().Sub(b.openedAt) < b.cooldown {
			return ErrCircuitOpen
		}
		b.state = breakerHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return ErrCircuitOpen // one probe at a time
		}
		b.probing = true
		return nil
	}
}

// success records a healthy response: the circuit closes and the
// failure streak resets.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.state = breakerClosed
	b.probing = false
}

// failure records a hard failure (network error or 5xx). A streak of
// threshold failures — or any failed half-open probe — opens the
// circuit.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= b.threshold {
		b.state = breakerOpen
		b.openedAt = b.clock.Now()
		b.probing = false
		b.fails = 0
	}
}
