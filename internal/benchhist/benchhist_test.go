package benchhist

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: bgsched
cpu: Some CPU @ 2.40GHz
BenchmarkFastFinderCold-8   	     100	  11260000 ns/op	 5242880 B/op	    1200 allocs/op
BenchmarkFastFinderWarm-8   	 1234567	       972.4 ns/op	     120 B/op	       3 allocs/op
BenchmarkRunBuildColdVsWarm/Cold-8         	      50	  22000000 ns/op
BenchmarkRunBuildColdVsWarm/Warm-8         	   20000	     61000 ns/op	   18000 B/op	      95 allocs/op
BenchmarkSchedulerDecision/balancing/size-64-8 	    5000	    240000 ns/op
PASS
ok  	bgsched	12.345s
`

func TestParse(t *testing.T) {
	rs, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 {
		t.Fatalf("parsed %d results, want 5: %+v", len(rs), rs)
	}
	byName := map[string]Result{}
	for _, r := range rs {
		byName[r.Name] = r
	}
	warm, ok := byName["BenchmarkFastFinderWarm"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", byName)
	}
	if warm.NsPerOp != 972.4 || warm.Iterations != 1234567 || warm.BytesPerOp != 120 || warm.AllocsPerOp != 3 {
		t.Fatalf("warm = %+v", warm)
	}
	// Sub-benchmark names keep their path; only the procs suffix goes.
	if _, ok := byName["BenchmarkRunBuildColdVsWarm/Warm"]; !ok {
		t.Fatalf("missing sub-benchmark: %v", byName)
	}
	// A non-numeric trailing segment ("size-64") is not a procs suffix.
	if _, ok := byName["BenchmarkSchedulerDecision/balancing/size-64"]; !ok {
		t.Fatalf("size-64 name mangled: %v", byName)
	}
	if cold := byName["BenchmarkRunBuildColdVsWarm/Cold"]; cold.BytesPerOp != 0 {
		t.Fatalf("cold has no B/op column, got %+v", cold)
	}
}

func TestParseDuplicateKeepsLast(t *testing.T) {
	out := "BenchmarkX-4 100 50 ns/op\nBenchmarkX-4 100 75 ns/op\n"
	rs, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].NsPerOp != 75 {
		t.Fatalf("want single result at 75 ns/op, got %+v", rs)
	}
}

func TestCompareAndRegressions(t *testing.T) {
	base := &Snapshot{Benchmarks: []Result{
		{Name: "A", NsPerOp: 100},
		{Name: "B", NsPerOp: 100},
		{Name: "Gone", NsPerOp: 100},
	}}
	cur := []Result{
		{Name: "A", NsPerOp: 130}, // +30%: regression
		{Name: "B", NsPerOp: 90},  // -10%: improvement
		{Name: "New", NsPerOp: 5}, // no baseline: skipped
	}
	ds := Compare(base, cur)
	if len(ds) != 2 {
		t.Fatalf("deltas = %+v, want 2", ds)
	}
	if ds[0].Name != "A" || ds[0].Percent != 30 {
		t.Fatalf("worst-first ordering broken: %+v", ds)
	}
	regs := Regressions(ds, 25)
	if len(regs) != 1 || regs[0].Name != "A" {
		t.Fatalf("regressions = %+v", regs)
	}
	if regs := Regressions(ds, 35); len(regs) != 0 {
		t.Fatalf("threshold 35 should pass, got %+v", regs)
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	dir := t.TempDir()

	// Empty history: no baseline, first snapshot is BENCH_0001.json.
	snap, path, err := Latest(dir)
	if err != nil || snap != nil || path != "" {
		t.Fatalf("empty Latest = %v %q %v", snap, path, err)
	}
	next, err := NextPath(dir)
	if err != nil || filepath.Base(next) != "BENCH_0001.json" {
		t.Fatalf("NextPath = %q %v", next, err)
	}

	if err := Write(next, &Snapshot{Schema: 1, Label: "first",
		Benchmarks: []Result{{Name: "A", NsPerOp: 100}}}); err != nil {
		t.Fatal(err)
	}
	next2, _ := NextPath(dir)
	if filepath.Base(next2) != "BENCH_0002.json" {
		t.Fatalf("NextPath after first = %q", next2)
	}
	if err := Write(next2, &Snapshot{Schema: 1, Label: "second",
		Benchmarks: []Result{{Name: "A", NsPerOp: 110}}}); err != nil {
		t.Fatal(err)
	}

	snap, path, err = Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Label != "second" || filepath.Base(path) != "BENCH_0002.json" {
		t.Fatalf("Latest = %q from %q", snap.Label, path)
	}
	if snap.Benchmarks[0].NsPerOp != 110 {
		t.Fatalf("round trip lost data: %+v", snap.Benchmarks)
	}
}

// TestCompareCarriesMemoryColumns: allocs/op and B/op ride along in
// the deltas, and a baseline entry recorded without -benchmem (zeros)
// counts as claiming zero allocations.
func TestCompareCarriesMemoryColumns(t *testing.T) {
	base := &Snapshot{Benchmarks: []Result{
		{Name: "Kernel", NsPerOp: 100, BytesPerOp: 0, AllocsPerOp: 0},
		{Name: "Build", NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 20},
	}}
	cur := []Result{
		{Name: "Kernel", NsPerOp: 90, BytesPerOp: 64, AllocsPerOp: 2},
		{Name: "Build", NsPerOp: 100, BytesPerOp: 900, AllocsPerOp: 18},
	}
	ds := Compare(base, cur)
	byName := map[string]Delta{}
	for _, d := range ds {
		byName[d.Name] = d
	}
	k := byName["Kernel"]
	if k.OldAllocs != 0 || k.NewAllocs != 2 || k.NewBytes != 64 {
		t.Fatalf("kernel delta lost memory columns: %+v", k)
	}
	if k.AllocGrowth() != 2 {
		t.Fatalf("AllocGrowth = %v, want 2", k.AllocGrowth())
	}
	if b := byName["Build"]; b.AllocGrowth() != -2 {
		t.Fatalf("improvement growth = %v, want -2", b.AllocGrowth())
	}
}

// TestAllocRegressions: the guard is scoped by name pattern and has no
// tolerance — any growth on a matched benchmark fails, improvements
// and unmatched benchmarks pass.
func TestAllocRegressions(t *testing.T) {
	ds := []Delta{
		{Name: "BenchmarkKernelSteadyState", OldAllocs: 0, NewAllocs: 1}, // growth, matched
		{Name: "BenchmarkKernelOther", OldAllocs: 5, NewAllocs: 5},       // flat, matched
		{Name: "BenchmarkBuild", OldAllocs: 10, NewAllocs: 50},           // growth, unmatched
		{Name: "BenchmarkKernelWarm", OldAllocs: 3, NewAllocs: 2},        // improvement, matched
	}
	regs := AllocRegressions(ds, regexp.MustCompile(`^BenchmarkKernel`))
	if len(regs) != 1 || regs[0].Name != "BenchmarkKernelSteadyState" {
		t.Fatalf("alloc regressions = %+v", regs)
	}
	if regs := AllocRegressions(ds, regexp.MustCompile(`^BenchmarkNone`)); len(regs) != 0 {
		t.Fatalf("unmatched pattern flagged %+v", regs)
	}
}
