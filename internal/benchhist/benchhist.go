// Package benchhist parses `go test -bench` output into committed
// benchmark snapshots and compares runs against them — the repository's
// performance ledger. A snapshot is a JSON file named BENCH_NNNN.json
// in a history directory; the highest number is the current baseline.
// The CI bench guard runs the tracked benchmarks, compares against the
// baseline, and fails on regressions beyond a threshold, so performance
// changes are as deliberate (and as reviewable) as golden-digest
// changes.
package benchhist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line's measurements. Name has the
// -GOMAXPROCS suffix stripped, so snapshots compare across machines
// with different core counts.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Snapshot is one committed history entry.
type Snapshot struct {
	Schema int    `json:"schema"`
	Label  string `json:"label,omitempty"`
	Go     string `json:"go,omitempty"`
	GOOS   string `json:"goos,omitempty"`
	GOARCH string `json:"goarch,omitempty"`
	// RecordedUnix is the wall-clock second the snapshot was taken.
	RecordedUnix int64    `json:"recorded_unix,omitempty"`
	Benchmarks   []Result `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkFastFinderWarm-8   1234567   972.4 ns/op   120 B/op   3 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]*)\s+(\d+)\s+([0-9.eE+]+) ns/op(.*)$`)

// unitVal extracts a "<value> <unit>" measurement from a line's tail.
func unitVal(tail, unit string) float64 {
	for _, f := range strings.Split(tail, "\t") {
		f = strings.TrimSpace(f)
		if v, ok := strings.CutSuffix(f, " "+unit); ok {
			if x, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
				return x
			}
		}
	}
	return 0
}

// stripProcs removes the trailing -N GOMAXPROCS suffix from a
// benchmark name (only from the last path segment, so a sub-benchmark
// named "size-64" keeps its name).
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Parse reads `go test -bench` output (possibly several concatenated
// package runs) and returns its benchmark results in input order.
// Non-benchmark lines are ignored; duplicate names keep the last
// measurement.
func Parse(r io.Reader) ([]Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var out []Result
	index := map[string]int{}
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchhist: iterations %q: %w", m[2], err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchhist: ns/op %q: %w", m[3], err)
		}
		res := Result{
			Name:        stripProcs(m[1]),
			Iterations:  iters,
			NsPerOp:     ns,
			BytesPerOp:  unitVal(m[4], "B/op"),
			AllocsPerOp: unitVal(m[4], "allocs/op"),
		}
		if i, ok := index[res.Name]; ok {
			out[i] = res
			continue
		}
		index[res.Name] = len(out)
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Delta is one benchmark's baseline-to-current comparison. Memory
// columns ride along with timing: a benchmark recorded (or run)
// without -benchmem carries zeros, which Compare treats as "no
// allocations claimed" — so an alloc guard over such a pair fails the
// moment allocations appear.
type Delta struct {
	Name    string
	OldNs   float64
	NewNs   float64
	Percent float64 // (new-old)/old * 100; positive = slower

	OldBytes  float64
	NewBytes  float64
	OldAllocs float64
	NewAllocs float64
}

// AllocGrowth is the allocs/op increase over the baseline; positive
// means the current run allocates more per op.
func (d Delta) AllocGrowth() float64 { return d.NewAllocs - d.OldAllocs }

// Compare matches current results against a baseline snapshot by name
// and returns the deltas, sorted worst-regression first. Benchmarks
// present on only one side are skipped: a renamed or added benchmark
// becomes part of the baseline at the next Record, it cannot fail the
// guard retroactively.
func Compare(baseline *Snapshot, current []Result) []Delta {
	old := map[string]Result{}
	for _, r := range baseline.Benchmarks {
		old[r.Name] = r
	}
	var ds []Delta
	for _, r := range current {
		o, ok := old[r.Name]
		if !ok || o.NsPerOp <= 0 {
			continue
		}
		ds = append(ds, Delta{
			Name: r.Name, OldNs: o.NsPerOp, NewNs: r.NsPerOp,
			Percent:   (r.NsPerOp - o.NsPerOp) / o.NsPerOp * 100,
			OldBytes:  o.BytesPerOp,
			NewBytes:  r.BytesPerOp,
			OldAllocs: o.AllocsPerOp,
			NewAllocs: r.AllocsPerOp,
		})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Percent > ds[j].Percent })
	return ds
}

// Regressions filters deltas slower than thresholdPercent.
func Regressions(ds []Delta, thresholdPercent float64) []Delta {
	var out []Delta
	for _, d := range ds {
		if d.Percent > thresholdPercent {
			out = append(out, d)
		}
	}
	return out
}

// AllocRegressions filters deltas whose name matches and whose
// allocs/op grew over the baseline at all. Unlike the percentage
// timing guard there is no tolerance: the matched benchmarks are the
// ones the repository pins allocation-free (or at a fixed count), and
// a single extra allocation per op on a hot loop is a real change
// that must be recorded deliberately.
func AllocRegressions(ds []Delta, match *regexp.Regexp) []Delta {
	var out []Delta
	for _, d := range ds {
		if match.MatchString(d.Name) && d.AllocGrowth() > 0 {
			out = append(out, d)
		}
	}
	return out
}

// snapPattern names history entries; the numeric field orders them.
var snapPattern = regexp.MustCompile(`^BENCH_(\d{4})\.json$`)

// Latest returns the highest-numbered snapshot in dir and its path.
// A missing or empty directory returns (nil, "", nil).
func Latest(dir string) (*Snapshot, string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, "", nil
	}
	if err != nil {
		return nil, "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := snapPattern.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[1])
		if n > bestN {
			best, bestN = e.Name(), n
		}
	}
	if bestN < 0 {
		return nil, "", nil
	}
	path := filepath.Join(dir, best)
	snap, err := Read(path)
	if err != nil {
		return nil, "", err
	}
	return snap, path, nil
}

// NextPath returns the path the next snapshot in dir should be written
// to (BENCH_0001.json in an empty history).
func NextPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil && !os.IsNotExist(err) {
		return "", err
	}
	n := 0
	for _, e := range entries {
		m := snapPattern.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if k, _ := strconv.Atoi(m[1]); k > n {
			n = k
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%04d.json", n+1)), nil
}

// Read loads one snapshot file.
func Read(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("benchhist: %s: %w", path, err)
	}
	return &s, nil
}

// Write stores a snapshot as indented JSON (committed files diff
// cleanly), creating the directory as needed.
func Write(path string, s *Snapshot) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
