package telemetry

import "sync/atomic"

// stripeWidth pads each stripe to its own cache line so concurrent
// writers on different stripes never false-share. 64 bytes covers
// every platform the simulator targets; the waste is 56 bytes per
// stripe, paid once at construction.
type counterStripe struct {
	v atomic.Int64
	_ [56]byte
}

// ShardedCounter is a Counter for hot concurrent increment paths: the
// count is striped across padded slots, so writers that would contend
// on one atomic (a client fleet, a parallel enumeration pool) each hit
// their own cache line. Reads sum the stripes — slightly more work, on
// the assumption that increments vastly outnumber reads.
//
// Writers should resolve a *Stripe handle once (keyed by worker index)
// and increment through it; Add on the counter itself is valid but
// always lands on stripe 0. A nil *ShardedCounter is a no-op
// everywhere, matching the package's nil-safety convention.
type ShardedCounter struct {
	stripes []counterStripe
	mask    uint32
}

// NewShardedCounter returns a counter striped over at least n slots
// (rounded up to a power of two, minimum 1).
func NewShardedCounter(n int) *ShardedCounter {
	w := 1
	for w < n {
		w <<= 1
	}
	return &ShardedCounter{stripes: make([]counterStripe, w), mask: uint32(w - 1)}
}

// Stripe returns the increment handle for worker i (wrapped onto the
// stripe count). Returns nil on a nil counter; a nil *Stripe is a
// no-op.
func (c *ShardedCounter) Stripe(i int) *Stripe {
	if c == nil {
		return nil
	}
	return (*Stripe)(&c.stripes[uint32(i)&c.mask])
}

// Add adds n on stripe 0. No-op on a nil counter.
func (c *ShardedCounter) Add(n int64) {
	if c == nil {
		return
	}
	c.stripes[0].v.Add(n)
}

// Value returns the summed count across stripes; 0 on a nil counter.
// The sum is not an atomic snapshot of all stripes at one instant —
// like any multi-writer counter read, it is exact once writers have
// quiesced and monotonically fresh while they run.
func (c *ShardedCounter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.stripes {
		total += c.stripes[i].v.Load()
	}
	return total
}

// Stripe is one writer's handle onto a ShardedCounter slot.
type Stripe counterStripe

// Inc adds one. No-op on a nil stripe.
func (s *Stripe) Inc() { s.Add(1) }

// Add adds n. No-op on a nil stripe.
func (s *Stripe) Add(n int64) {
	if s == nil {
		return
	}
	s.v.Add(n)
}

// Batch is single-owner local accumulation for a Counter: the hot loop
// calls Inc (one integer add, no atomics, no contention), and the loop
// exits call Flush to publish the pending delta in one atomic Add.
// The simulator's kernel batches its per-event counter this way, so
// instrumentation costs the dispatch loop nothing measurable.
//
// A Batch is owned by exactly one goroutine; the zero value with a nil
// target is a valid no-op accumulator (pending still counts, Flush
// discards). Readers of the underlying counter see batched increments
// only after Flush.
type Batch struct {
	c       *Counter
	pending int64
}

// NewBatch returns a batch accumulating into c (which may be nil).
func NewBatch(c *Counter) Batch { return Batch{c: c} }

// Inc adds one locally.
func (b *Batch) Inc() { b.pending++ }

// Add adds n locally.
func (b *Batch) Add(n int64) { b.pending += n }

// Pending returns the locally accumulated, unflushed delta.
func (b *Batch) Pending() int64 { return b.pending }

// Flush publishes the pending delta to the counter and resets it.
func (b *Batch) Flush() {
	if b.pending != 0 {
		b.c.Add(b.pending)
		b.pending = 0
	}
}
