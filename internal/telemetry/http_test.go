package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerPrometheusDefault(t *testing.T) {
	reg := New()
	reg.Counter("svc.requests").Add(3)
	reg.Gauge("svc.depth").Set(2)

	rec := httptest.NewRecorder()
	Handler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{"# TYPE svc_requests counter", "svc_requests 3", "svc_depth 2"} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestHandlerJSONFormats(t *testing.T) {
	reg := New()
	reg.Counter("svc.requests").Add(7)

	for _, tc := range []struct {
		name, target, accept string
	}{
		{"query param", "/metrics?format=json", ""},
		{"accept header", "/metrics", "application/json"},
	} {
		req := httptest.NewRequest("GET", tc.target, nil)
		if tc.accept != "" {
			req.Header.Set("Accept", tc.accept)
		}
		rec := httptest.NewRecorder()
		Handler(reg).ServeHTTP(rec, req)
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: content-type = %q", tc.name, ct)
		}
		var snap Snapshot
		if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if snap.Counters["svc.requests"] != 7 {
			t.Fatalf("%s: counter = %d", tc.name, snap.Counters["svc.requests"])
		}
	}

	// A scrape that accepts both prefers the Prometheus text format.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/json, text/plain")
	rec := httptest.NewRecorder()
	Handler(reg).ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("mixed accept: content-type = %q", ct)
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("nil registry status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if rec.Code != 200 || !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("nil registry JSON: status=%d body=%q", rec.Code, rec.Body.String())
	}
}
