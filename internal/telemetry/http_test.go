package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestHandlerPrometheusDefault(t *testing.T) {
	reg := New()
	reg.Counter("svc.requests").Add(3)
	reg.Gauge("svc.depth").Set(2)

	rec := httptest.NewRecorder()
	Handler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{"# TYPE svc_requests counter", "svc_requests 3", "svc_depth 2"} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestHandlerJSONFormats(t *testing.T) {
	reg := New()
	reg.Counter("svc.requests").Add(7)

	for _, tc := range []struct {
		name, target, accept string
	}{
		{"query param", "/metrics?format=json", ""},
		{"accept header", "/metrics", "application/json"},
	} {
		req := httptest.NewRequest("GET", tc.target, nil)
		if tc.accept != "" {
			req.Header.Set("Accept", tc.accept)
		}
		rec := httptest.NewRecorder()
		Handler(reg).ServeHTTP(rec, req)
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: content-type = %q", tc.name, ct)
		}
		var snap Snapshot
		if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if snap.Counters["svc.requests"] != 7 {
			t.Fatalf("%s: counter = %d", tc.name, snap.Counters["svc.requests"])
		}
	}

	// A scrape that accepts both prefers the Prometheus text format.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/json, text/plain")
	rec := httptest.NewRecorder()
	Handler(reg).ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("mixed accept: content-type = %q", ct)
	}
}

// TestHandlerConcurrentScrape hammers the handler from parallel
// scrapers while writer goroutines mutate every instrument kind — the
// live-snapshot equivalent of TestConcurrentCounters. Under -race this
// is the scrape-vs-update regression test; without it, it still
// asserts two consistency properties every monitoring consumer relies
// on: each exposition parses whole (no torn writes), and a counter
// never moves backwards between scrapes.
func TestHandlerConcurrentScrape(t *testing.T) {
	reg := New()
	h := Handler(reg)
	// Register up front so even the very first scrape sees the names;
	// the writers then race only on values, which is the property under
	// test.
	c := reg.Counter("svc.requests")
	g := reg.Gauge("svc.depth")
	hist := reg.Histogram("svc.latency")
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Add(1)
				g.Set(float64(i % 8))
				hist.Observe(float64(i%100) / 10)
			}
		}(w)
	}

	var scrapers sync.WaitGroup
	for s := 0; s < 4; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			var last int64 = -1
			for i := 0; i < 50; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
				var snap Snapshot
				if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
					t.Errorf("scrape %d torn mid-update: %v", i, err)
					return
				}
				if got := snap.Counters["svc.requests"]; got < last {
					t.Errorf("counter moved backwards: %d after %d", got, last)
					return
				} else {
					last = got
				}
				// Alternate format on the same registry state.
				rec = httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				if !strings.Contains(rec.Body.String(), "svc_requests") {
					t.Errorf("scrape %d lost the counter:\n%s", i, rec.Body.String())
					return
				}
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	writers.Wait()
}

func TestHandlerNilRegistry(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("nil registry status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if rec.Code != 200 || !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("nil registry JSON: status=%d body=%q", rec.Code, rec.Body.String())
	}
}
