package telemetry

import (
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exact text exposition for a small
// registry with deterministic contents. Histogram quantiles are fed a
// single repeated value so the log-bucket estimate collapses to the
// exact (clamped) observation.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("sim.starts").Add(42)
	r.Counter("finder.shape.calls").Add(7)
	r.Gauge("sim.free_nodes").Set(128)
	h := r.Histogram("sim.job.wait_seconds")
	for i := 0; i < 4; i++ {
		h.Observe(8)
	}

	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	const want = `# TYPE finder_shape_calls counter
finder_shape_calls 7
# TYPE sim_starts counter
sim_starts 42
# TYPE sim_free_nodes gauge
sim_free_nodes 128
# TYPE sim_job_wait_seconds summary
sim_job_wait_seconds{quantile="0.50"} 8
sim_job_wait_seconds{quantile="0.90"} 8
sim_job_wait_seconds{quantile="0.99"} 8
sim_job_wait_seconds_sum 32
sim_job_wait_seconds_count 4
`
	if got := sb.String(); got != want {
		t.Errorf("Prometheus exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"sim.job.wait_seconds": "sim_job_wait_seconds",
		"finder/shape-calls":   "finder_shape_calls",
		"9lives":               "_lives", // leading digit is invalid
		"ok_name":              "ok_name",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPrometheusEmpty ensures an empty snapshot renders to nothing
// rather than erroring.
func TestPrometheusEmpty(t *testing.T) {
	var sb strings.Builder
	if err := New().Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("empty snapshot rendered %q", sb.String())
	}
}
