package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestNilSafety exercises every instrument through a nil registry: the
// whole point of the nil-receiver design is that instrumented code can
// run guard-free with collection disabled.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Errorf("nil counter value = %d", c.Value())
	}
	g := r.Gauge("g")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Errorf("nil gauge value = %g", g.Value())
	}
	h := r.Histogram("h")
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Errorf("nil histogram recorded something")
	}
	tm := r.Timer("t")
	sw := tm.Start()
	sw.Stop()
	tm.Observe(0)
	if s := r.Snapshot(); s != nil {
		t.Errorf("nil registry snapshot = %+v", s)
	}
}

// TestConcurrentCounters hammers one counter, one gauge and one
// histogram from many goroutines; run under -race this is the
// registry's thread-safety proof, and the totals must still be exact.
func TestConcurrentCounters(t *testing.T) {
	r := New()
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Resolve by name concurrently too: first-use registration
			// must be safe, and every goroutine must get the same
			// instrument.
			c := r.Counter("shared.counter")
			h := r.Histogram("shared.hist")
			g := r.Gauge("shared.gauge")
			for k := 0; k < perG; k++ {
				c.Inc()
				h.Observe(float64(k + 1))
				g.Add(1)
			}
		}(i)
	}
	wg.Wait()

	want := int64(goroutines * perG)
	if got := r.Counter("shared.counter").Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := r.Histogram("shared.hist").Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if got := r.Gauge("shared.gauge").Value(); got != float64(want) {
		t.Errorf("gauge = %g, want %d", got, want)
	}
	// Sum of 1..perG per goroutine, accumulated atomically.
	wantSum := float64(goroutines) * float64(perG) * float64(perG+1) / 2
	if got := r.Histogram("shared.hist").Sum(); got != wantSum {
		t.Errorf("histogram sum = %g, want %g", got, wantSum)
	}
}

func TestRegistryReturnsSameInstrument(t *testing.T) {
	r := New()
	if r.Counter("x") != r.Counter("x") {
		t.Error("Counter not idempotent")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Error("Gauge not idempotent")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Error("Histogram not idempotent")
	}
}

func TestSnapshotContents(t *testing.T) {
	r := New()
	r.Counter("jobs.started").Add(7)
	r.Gauge("queue.depth").Set(3.5)
	r.Histogram("wait").Observe(10)
	r.Histogram("wait").Observe(20)

	s := r.Snapshot()
	if s.Counters["jobs.started"] != 7 {
		t.Errorf("counter = %d", s.Counters["jobs.started"])
	}
	if s.Gauges["queue.depth"] != 3.5 {
		t.Errorf("gauge = %g", s.Gauges["queue.depth"])
	}
	h := s.Histograms["wait"]
	if h.Count != 2 || h.Sum != 30 || h.Min != 10 || h.Max != 20 || h.Mean != 15 {
		t.Errorf("histogram stats = %+v", h)
	}
	var sb strings.Builder
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"jobs.started": 7`, `"queue.depth": 3.5`, `"count": 2`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("JSON missing %q:\n%s", want, sb.String())
		}
	}
}
