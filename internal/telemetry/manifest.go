package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"time"
)

// Manifest is the reproducibility record every CLI run emits: enough
// to re-run the exact configuration (config hash, seed, version) and
// to compare runs across PRs (duration plus the metrics snapshot).
type Manifest struct {
	Tool       string    `json:"tool"`
	Version    string    `json:"version"`
	GoVersion  string    `json:"go_version"`
	Args       []string  `json:"args,omitempty"`
	Config     any       `json:"config,omitempty"`
	ConfigHash string    `json:"config_hash,omitempty"`
	Seed       int64     `json:"seed,omitempty"`
	Start      time.Time `json:"start"`
	DurationS  float64   `json:"duration_seconds"`
	Snapshot   *Snapshot `json:"snapshot,omitempty"`
	// Artifacts carries tool-specific structured output, e.g. bgsweep's
	// figure tables with their embedded per-point snapshots.
	Artifacts any `json:"artifacts,omitempty"`

	started time.Time
}

// NewManifest starts a manifest for one tool invocation. config may be
// any JSON-serialisable value describing the run (it is stored and
// hashed); nil skips both fields.
func NewManifest(tool string, args []string, config any) *Manifest {
	now := time.Now()
	m := &Manifest{
		Tool:      tool,
		Version:   Version(),
		GoVersion: runtime.Version(),
		Args:      args,
		Start:     now.UTC(),
		started:   now,
	}
	if config != nil {
		m.Config = config
		m.ConfigHash = ConfigHash(config)
	}
	return m
}

// Finish stamps the run duration and attaches the registry snapshot
// (reg may be nil).
func (m *Manifest) Finish(reg *Registry) {
	m.DurationS = time.Since(m.started).Seconds()
	m.Snapshot = reg.Snapshot()
}

// WriteJSON renders the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ConfigHash returns a short hex digest of the canonical (JSON)
// encoding of cfg, for grouping runs by configuration. Encoding
// failures yield "unhashable".
func ConfigHash(cfg any) string {
	b, err := json.Marshal(cfg)
	if err != nil {
		return "unhashable"
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// Version returns a git-describe-style identifier for the running
// binary, derived from the build info the Go toolchain embeds:
// module version when tagged, otherwise "devel-<rev12>[-dirty]", or
// "unknown" outside module builds (e.g. plain `go test`).
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		return fmt.Sprintf("devel-%s-dirty", rev)
	}
	return "devel-" + rev
}
