package telemetry

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestQuantileKnownDistribution checks quantile estimates against a
// distribution whose quantiles are known in closed form. The log-scale
// buckets grow by 2^(1/8) per step, so estimates must land within
// ~±9% relative error (one bucket width) of the true value.
func TestQuantileKnownDistribution(t *testing.T) {
	r := New()

	// Uniform[0, 1000): true q-quantile is 1000q.
	h := r.Histogram("uniform")
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	for i := 0; i < n; i++ {
		h.Observe(rng.Float64() * 1000)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 500}, {0.90, 900}, {0.99, 990},
	} {
		got := h.Quantile(tc.q)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.10 {
			t.Errorf("uniform q%.2f = %.1f, want %.1f ±10%%", tc.q, got, tc.want)
		}
	}

	// Exponential(mean 100): true q-quantile is -100 ln(1-q). This
	// spans several orders of magnitude, the case log buckets exist for.
	e := r.Histogram("exp")
	for i := 0; i < n; i++ {
		e.Observe(rng.ExpFloat64() * 100)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := -100 * math.Log(1-q)
		got := e.Quantile(q)
		if rel := math.Abs(got-want) / want; rel > 0.10 {
			t.Errorf("exp q%.2f = %.1f, want %.1f ±10%%", q, got, want)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	r := New()
	h := r.Histogram("h")
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	h.Observe(5)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 5 {
			t.Errorf("single-sample q%g = %g, want 5 (clamped to min/max)", q, got)
		}
	}

	// Zero and negative samples land in the zero bucket and pull low
	// quantiles to the observed minimum.
	z := r.Histogram("z")
	z.Observe(0)
	z.Observe(0)
	z.Observe(100)
	if got := z.Quantile(0.5); got != 0 {
		t.Errorf("zero-heavy q50 = %g, want 0", got)
	}
	if got := z.Quantile(1); got != 100 {
		t.Errorf("zero-heavy q100 = %g, want 100", got)
	}
	if z.Count() != 3 {
		t.Errorf("count = %d, want 3", z.Count())
	}
}

// TestBucketLayout pins the index/bound round-trip: every bucket's
// geometric midpoint must map back to that bucket, and out-of-range
// values must clamp rather than panic.
func TestBucketLayout(t *testing.T) {
	for i := 0; i < histBuckets; i++ {
		mid := math.Sqrt(lowerBound(i) * lowerBound(i+1))
		if got := bucketIndex(mid); got != i {
			t.Fatalf("bucket %d midpoint %g maps to %d", i, mid, got)
		}
	}
	if got := bucketIndex(1e-300); got != 0 {
		t.Errorf("tiny value bucket = %d, want 0", got)
	}
	if got := bucketIndex(1e300); got != histBuckets-1 {
		t.Errorf("huge value bucket = %d, want %d", got, histBuckets-1)
	}
}

func TestTimerRecordsSeconds(t *testing.T) {
	r := New()
	tm := r.Timer("op")
	sw := tm.Start()
	time.Sleep(2 * time.Millisecond)
	sw.Stop()
	tm.Observe(50 * time.Millisecond)

	h := r.Histogram("op") // same underlying instrument
	if h.Count() != 2 {
		t.Fatalf("timer recorded %d samples, want 2", h.Count())
	}
	if min := h.Stats().Min; min < 0.002 || min > 1 {
		t.Errorf("timed sleep recorded %.6fs, want >= 2ms", min)
	}
	if max := h.Stats().Max; math.Abs(max-0.05) > 1e-9 {
		t.Errorf("observed duration = %g, want 0.05", max)
	}
}
