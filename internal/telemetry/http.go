package telemetry

import (
	"net/http"
	"strings"
)

// Handler returns an http.Handler exposing live snapshots of the
// registry: Prometheus text exposition by default (the /metrics
// convention), indented JSON with ?format=json or when the request
// prefers application/json. A nil registry serves empty snapshots, so
// wiring the handler is safe before telemetry is enabled.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if snap == nil {
			snap = &Snapshot{}
		}
		if wantsJSON(req) {
			w.Header().Set("Content-Type", "application/json")
			if err := snap.WriteJSON(w); err != nil {
				// Headers are gone; nothing useful left to do.
				return
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = snap.WritePrometheus(w)
	})
}

// wantsJSON decides the exposition format for one scrape request.
func wantsJSON(req *http.Request) bool {
	if req.URL.Query().Get("format") == "json" {
		return true
	}
	accept := req.Header.Get("Accept")
	return strings.Contains(accept, "application/json") &&
		!strings.Contains(accept, "text/plain")
}
