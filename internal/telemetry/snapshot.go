package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Snapshot is a point-in-time copy of every instrument in a registry,
// in a form that serialises cleanly. Maps are rendered in sorted key
// order by both writers.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot captures the current state of all instruments. Returns nil
// on a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramStats, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Stats()
		}
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// promName maps a dotted instrument name to the Prometheus exposition
// charset: [a-zA-Z0-9_:], everything else becomes '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format: counters and gauges as single samples, histograms
// as summaries (quantile series plus _sum and _count). Output order is
// deterministic.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", pn); err != nil {
			return err
		}
		qs := make([]string, 0, len(h.Quantiles))
		for q := range h.Quantiles {
			qs = append(qs, q)
		}
		sort.Strings(qs)
		for _, q := range qs {
			// "p50" -> 0.5, "p90" -> 0.9, "p99" -> 0.99.
			frac := "0." + strings.TrimPrefix(q, "p")
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %g\n", pn, frac, h.Quantiles[q]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}
