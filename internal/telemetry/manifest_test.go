package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	type cfg struct {
		Workload string
		Jobs     int
	}
	r := New()
	r.Counter("sim.starts").Add(3)

	m := NewManifest("bgsim", []string{"-jobs", "10"}, cfg{Workload: "SDSC", Jobs: 10})
	m.Seed = 7
	m.Finish(r)

	if m.Tool != "bgsim" || m.Version == "" || m.GoVersion == "" {
		t.Errorf("manifest identity incomplete: %+v", m)
	}
	if m.ConfigHash == "" || m.ConfigHash == "unhashable" {
		t.Errorf("config hash = %q", m.ConfigHash)
	}
	if m.DurationS < 0 {
		t.Errorf("duration = %g", m.DurationS)
	}
	if m.Snapshot == nil || m.Snapshot.Counters["sim.starts"] != 3 {
		t.Errorf("snapshot not attached: %+v", m.Snapshot)
	}

	var sb strings.Builder
	if err := m.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"tool": "bgsim"`, `"config_hash"`, `"sim.starts": 3`, `"seed": 7`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("manifest JSON missing %q:\n%s", want, sb.String())
		}
	}
}

// TestConfigHashStability: the hash must be a function of the config
// value alone, so identical configs group across runs and differing
// configs separate.
func TestConfigHashStability(t *testing.T) {
	type cfg struct{ A, B int }
	h1 := ConfigHash(cfg{1, 2})
	h2 := ConfigHash(cfg{1, 2})
	h3 := ConfigHash(cfg{1, 3})
	if h1 != h2 {
		t.Errorf("equal configs hash differently: %s vs %s", h1, h2)
	}
	if h1 == h3 {
		t.Errorf("different configs collide: %s", h1)
	}
	if ConfigHash(make(chan int)) != "unhashable" {
		t.Error("unserialisable config did not report unhashable")
	}
}

// TestStartProfiles exercises the pprof/trace wiring end to end: all
// three collectors enabled, files must exist and be non-empty after
// stop.
func TestStartProfiles(t *testing.T) {
	dir := t.TempDir()
	cfg := ProfileConfig{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		Trace:      filepath.Join(dir, "trace.out"),
	}
	stop, err := StartProfiles(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to encode.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cfg.CPUProfile, cfg.MemProfile, cfg.Trace} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// TestStartProfilesDisabled: the zero config starts nothing and the
// stop function is still safe to call.
func TestStartProfilesDisabled(t *testing.T) {
	stop, err := StartProfiles(ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
