package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Log-scale bucket layout. Bucket i covers (lowerBound(i), lowerBound(i+1)]
// with bounds growing by a factor of 2^(1/histSubBuckets): eight
// sub-buckets per octave bounds the relative quantile error at about
// 2^(1/8)-1 ≈ 9%. The covered range is 2^-30 (~1 ns expressed in
// seconds) to 2^30 (~34 simulated years); values outside clamp into
// the edge buckets, values <= 0 count in a dedicated zero bucket.
const (
	histSubBuckets = 8
	histMinExp     = -30 // 2^histMinExp is the lowest bucket bound
	histMaxExp     = 30
	histBuckets    = (histMaxExp - histMinExp) * histSubBuckets
)

// Histogram is a fixed-size log-scale histogram safe for concurrent
// observation. It tracks count, sum, min and max exactly and estimates
// quantiles from the bucket counts.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	zeros   atomic.Int64 // observations <= 0
	count   atomic.Int64
	sum     atomicFloat
	min     atomicFloat
	max     atomicFloat
}

func newHistogram() *Histogram {
	h := new(Histogram)
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
	return h
}

// bucketIndex maps a positive value to its bucket.
func bucketIndex(v float64) int {
	i := int(math.Floor(math.Log2(v)*histSubBuckets)) - histMinExp*histSubBuckets
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// lowerBound returns the lower bound of bucket i.
func lowerBound(i int) float64 {
	return math.Exp2(float64(i+histMinExp*histSubBuckets) / histSubBuckets)
}

// Observe records one sample. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v > 0 {
		h.buckets[bucketIndex(v)].Add(1)
	} else {
		h.zeros.Add(1)
	}
	h.count.Add(1)
	h.sum.add(v)
	h.min.storeMin(v)
	h.max.storeMax(v)
}

// Count returns the number of observations; 0 on a nil histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations; 0 on a nil histogram.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// samples, within the bucket resolution. It returns 0 when empty or
// nil. The exact observed min and max clamp the estimate, so extreme
// quantiles never stray outside the data.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min.load()
	}
	if q >= 1 {
		return h.max.load()
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	cum := h.zeros.Load()
	est := 0.0
	if cum < rank {
		for i := 0; i < histBuckets; i++ {
			cum += h.buckets[i].Load()
			if cum >= rank {
				// Geometric midpoint of the bucket: unbiased for
				// log-uniform data within the bucket.
				est = math.Sqrt(lowerBound(i) * lowerBound(i+1))
				break
			}
		}
	}
	if mn := h.min.load(); est < mn {
		est = mn
	}
	if mx := h.max.load(); est > mx {
		est = mx
	}
	return est
}

// Stats summarises the histogram. Zero value on nil or empty.
func (h *Histogram) Stats() HistogramStats {
	if h == nil || h.count.Load() == 0 {
		return HistogramStats{}
	}
	n := h.count.Load()
	s := HistogramStats{
		Count: n,
		Sum:   h.sum.load(),
		Min:   h.min.load(),
		Max:   h.max.load(),
	}
	s.Mean = s.Sum / float64(n)
	s.Quantiles = map[string]float64{
		"p50": h.Quantile(0.50),
		"p90": h.Quantile(0.90),
		"p99": h.Quantile(0.99),
	}
	return s
}

// HistogramStats is the snapshot form of a histogram.
type HistogramStats struct {
	Count     int64              `json:"count"`
	Sum       float64            `json:"sum"`
	Min       float64            `json:"min"`
	Max       float64            `json:"max"`
	Mean      float64            `json:"mean"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// Timer records wall-clock durations, in seconds, into a histogram.
type Timer struct {
	h *Histogram
}

// Stopwatch is one in-flight timing started by Timer.Start.
type Stopwatch struct {
	t     *Timer
	start time.Time
}

// Start begins a timing; call Stop on the returned stopwatch. Safe on
// a nil timer (Stop is then a no-op).
func (t *Timer) Start() Stopwatch {
	if t == nil {
		return Stopwatch{}
	}
	return Stopwatch{t: t, start: time.Now()}
}

// Observe records an already-measured duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.h.Observe(d.Seconds())
}

// Stop records the elapsed time since Start.
func (s Stopwatch) Stop() {
	if s.t == nil {
		return
	}
	s.t.h.Observe(time.Since(s.start).Seconds())
}

// atomicFloat is a float64 with atomic add and min/max folding.
type atomicFloat struct {
	bits atomic.Uint64
}

func (a *atomicFloat) store(v float64) { a.bits.Store(math.Float64bits(v)) }

func (a *atomicFloat) load() float64 { return math.Float64frombits(a.bits.Load()) }

func (a *atomicFloat) add(v float64) {
	for {
		old := a.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (a *atomicFloat) storeMin(v float64) {
	for {
		old := a.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (a *atomicFloat) storeMax(v float64) {
	for {
		old := a.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
