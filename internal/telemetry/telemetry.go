// Package telemetry is the stdlib-only metrics layer every subsystem
// reports into: atomic counters, gauges, log-scale histograms with
// quantile estimation, and scoped timers, collected in a Registry
// whose Snapshot renders to JSON and Prometheus-style text.
//
// Design points:
//
//   - Nil-safety end to end: a nil *Registry hands out nil instruments,
//     and every instrument method is a no-op on a nil receiver, so
//     instrumented code needs no "is telemetry enabled" guards and the
//     un-instrumented hot path costs one predictable branch.
//   - Handles, not name lookups: call sites resolve instruments once
//     (typically at construction) and hold the pointer; recording is
//     then a single atomic op, safe for concurrent use.
//   - Deterministic output: snapshots list instruments in sorted name
//     order, so diffs between runs are meaningful.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a floating-point metric that can go up and down, e.g. the
// free-node count or queue depth at the latest event.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the current value. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta. No-op on a nil gauge.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the last value set; 0 on a nil gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry holds a run's instruments by name. The zero value is not
// usable; create with New. A nil *Registry is valid everywhere and
// disables collection.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Returns nil (a valid no-op instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// on first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Timer returns a timer recording durations (in seconds) into the
// histogram registered under name. Returns nil on a nil registry.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	return &Timer{h: r.Histogram(name)}
}

// names returns the sorted union of all instrument names, for
// deterministic snapshot and exposition order.
func sortedKeys[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
