package telemetry

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// ProfileConfig names the optional profiling outputs of one CLI run;
// empty paths disable the corresponding collector.
type ProfileConfig struct {
	CPUProfile string // pprof CPU profile path
	MemProfile string // pprof heap profile path (written at stop)
	Trace      string // runtime/trace execution trace path
}

// StartProfiles starts the collectors enabled by cfg and returns a
// stop function that must be called exactly once (typically deferred)
// to flush and close them. On error everything already started is
// stopped.
func StartProfiles(cfg ProfileConfig) (stop func() error, err error) {
	var stops []func() error
	fail := func(e error) (func() error, error) {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]() //nolint:errcheck // best-effort unwind
		}
		return nil, e
	}

	if cfg.CPUProfile != "" {
		f, err := os.Create(cfg.CPUProfile)
		if err != nil {
			return fail(fmt.Errorf("telemetry: cpu profile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("telemetry: cpu profile: %w", err))
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}
	if cfg.Trace != "" {
		f, err := os.Create(cfg.Trace)
		if err != nil {
			return fail(fmt.Errorf("telemetry: trace: %w", err))
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("telemetry: trace: %w", err))
		}
		stops = append(stops, func() error {
			trace.Stop()
			return f.Close()
		})
	}
	if cfg.MemProfile != "" {
		path := cfg.MemProfile
		stops = append(stops, func() error {
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("telemetry: mem profile: %w", err)
			}
			runtime.GC() // up-to-date allocation data
			werr := pprof.WriteHeapProfile(f)
			cerr := f.Close()
			if werr != nil {
				return fmt.Errorf("telemetry: mem profile: %w", werr)
			}
			return cerr
		})
	}

	return func() error {
		var first error
		for i := len(stops) - 1; i >= 0; i-- {
			if e := stops[i](); e != nil && first == nil {
				first = e
			}
		}
		return first
	}, nil
}
