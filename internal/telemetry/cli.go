package telemetry

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

// CLIFlags is the observability flag group shared by every bgsched
// command: a metrics/manifest output path plus the pprof and
// runtime/trace hooks. Register it once per FlagSet, call Registry()
// to obtain the (possibly nil) registry to thread through the run,
// bracket the run with Start/stop, and WriteMetrics at exit.
type CLIFlags struct {
	Metrics string
	Profile ProfileConfig
}

// RegisterCLIFlags registers -metrics, -cpuprofile, -memprofile and
// -trace on fs and returns the bound flag group.
func RegisterCLIFlags(fs *flag.FlagSet) *CLIFlags {
	f := &CLIFlags{}
	fs.StringVar(&f.Metrics, "metrics", "",
		"write a JSON run manifest with the telemetry snapshot to this file (a .prom path emits Prometheus text exposition instead)")
	fs.StringVar(&f.Profile.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&f.Profile.MemProfile, "memprofile", "", "write a pprof heap profile to this file at exit")
	fs.StringVar(&f.Profile.Trace, "trace", "", "write a runtime/trace execution trace to this file")
	return f
}

// Registry returns a fresh registry when -metrics was given and nil
// otherwise, so un-instrumented runs keep the nil fast path.
func (f *CLIFlags) Registry() *Registry {
	if f.Metrics == "" {
		return nil
	}
	return New()
}

// Start begins the profiling collectors requested on the command line
// and returns their stop function (never nil; a no-op when no profile
// flags were set). Typical use:
//
//	stop, err := obs.Start()
//	if err != nil { return err }
//	defer stop()
func (f *CLIFlags) Start() (stop func() error, err error) {
	return StartProfiles(f.Profile)
}

// WriteMetrics finishes the manifest against reg and writes it to the
// -metrics path: an indented JSON manifest by default, or the bare
// snapshot in Prometheus text exposition when the path ends in
// ".prom". A no-op when -metrics was not given.
func (f *CLIFlags) WriteMetrics(m *Manifest, reg *Registry) error {
	if f.Metrics == "" {
		return nil
	}
	m.Finish(reg)
	out, err := os.Create(f.Metrics)
	if err != nil {
		return fmt.Errorf("telemetry: metrics output: %w", err)
	}
	var werr error
	if strings.HasSuffix(f.Metrics, ".prom") {
		if m.Snapshot != nil {
			werr = m.Snapshot.WritePrometheus(out)
		}
	} else {
		werr = m.WriteJSON(out)
	}
	cerr := out.Close()
	if werr != nil {
		return fmt.Errorf("telemetry: metrics output: %w", werr)
	}
	return cerr
}
