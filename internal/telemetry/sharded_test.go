package telemetry

import (
	"sync"
	"testing"
)

// TestShardedCounterConcurrent hammers one counter from a fleet of
// writers on their own stripes; the summed value must be exact. Run
// with -race this also proves the striping introduces no data race.
func TestShardedCounterConcurrent(t *testing.T) {
	const writers, perWriter = 16, 10000
	c := NewShardedCounter(writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := c.Stripe(w)
			for i := 0; i < perWriter; i++ {
				st.Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("Value = %d, want %d", got, writers*perWriter)
	}
}

// TestShardedCounterStripeWrap: more writers than stripes must wrap
// onto shared slots, still counting exactly.
func TestShardedCounterStripeWrap(t *testing.T) {
	c := NewShardedCounter(2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c.Stripe(w).Add(5)
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != 40 {
		t.Fatalf("Value = %d, want 40", got)
	}
}

func TestShardedCounterRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{{0, 1}, {1, 1}, {3, 4}, {4, 4}, {9, 16}} {
		c := NewShardedCounter(tc.ask)
		if len(c.stripes) != tc.want {
			t.Errorf("NewShardedCounter(%d): %d stripes, want %d", tc.ask, len(c.stripes), tc.want)
		}
	}
}

func TestShardedCounterNil(t *testing.T) {
	var c *ShardedCounter
	c.Add(3) // must not panic
	if c.Value() != 0 {
		t.Fatal("nil counter Value != 0")
	}
	st := c.Stripe(7)
	if st != nil {
		t.Fatal("nil counter handed out a non-nil stripe")
	}
	st.Inc() // nil stripe is a no-op
	st.Add(2)
}

func TestShardedCounterDirectAdd(t *testing.T) {
	c := NewShardedCounter(4)
	c.Add(3)
	c.Stripe(2).Add(4)
	if got := c.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
}

// TestBatchFlush covers the local-accumulation contract: increments
// stay invisible to the counter until Flush, and Flush drains exactly
// the pending delta.
func TestBatchFlush(t *testing.T) {
	c := new(Counter)
	b := NewBatch(c)
	b.Inc()
	b.Add(4)
	if c.Value() != 0 {
		t.Fatal("batched increments visible before Flush")
	}
	if b.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", b.Pending())
	}
	b.Flush()
	if c.Value() != 5 {
		t.Fatalf("counter after flush = %d, want 5", c.Value())
	}
	if b.Pending() != 0 {
		t.Fatal("Pending not reset by Flush")
	}
	b.Flush() // idempotent with nothing pending
	if c.Value() != 5 {
		t.Fatal("empty Flush changed the counter")
	}
}

// TestBatchNilCounter: a batch over a nil counter accumulates and
// discards without panicking, so instrumented code needs no guards.
func TestBatchNilCounter(t *testing.T) {
	b := NewBatch(nil)
	b.Inc()
	b.Flush()
	if b.Pending() != 0 {
		t.Fatal("Flush did not reset pending on nil counter")
	}
}
