package sim

import (
	"container/heap"

	"bgsched/internal/job"
)

// eventKind discriminates simulator events (Section 6.1): job arrivals,
// job completions, node failures, checkpoint completions, and — when a
// node downtime is configured — node recoveries.
type eventKind int

const (
	evArrival eventKind = iota
	evFinish
	evFailure
	evCheckpoint
	evCkptPoll
	evNodeUp

	// evKindCount sizes the kernel's dispatch table; keep it last.
	evKindCount
)

func (k eventKind) String() string {
	switch k {
	case evArrival:
		return "arrival"
	case evFinish:
		return "finish"
	case evFailure:
		return "failure"
	case evCheckpoint:
		return "checkpoint"
	case evCkptPoll:
		return "ckpt-poll"
	case evNodeUp:
		return "nodeup"
	}
	return "unknown"
}

// event is one entry of the simulation calendar. Finish and checkpoint
// events carry the epoch of the run they were scheduled for; a restart
// or checkpoint-induced reschedule bumps the job's epoch, silently
// invalidating stale events.
type event struct {
	time  float64
	seq   int64
	kind  eventKind
	jobID job.ID
	epoch int
	node  int
}

// eventQueue is a deterministic min-heap over (time, seq).
type eventQueue struct {
	events  []event
	nextSeq int64
}

func (q *eventQueue) Len() int { return len(q.events) }

func (q *eventQueue) Less(i, j int) bool {
	a, b := q.events[i], q.events[j]
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (q *eventQueue) Swap(i, j int) { q.events[i], q.events[j] = q.events[j], q.events[i] }

func (q *eventQueue) Push(x any) { q.events = append(q.events, x.(event)) }

func (q *eventQueue) Pop() any {
	old := q.events
	n := len(old)
	e := old[n-1]
	q.events = old[:n-1]
	return e
}

// push enqueues an event, stamping its sequence number.
func (q *eventQueue) push(e event) {
	e.seq = q.nextSeq
	q.nextSeq++
	heap.Push(q, e)
}

// pop removes and returns the earliest event.
func (q *eventQueue) pop() event {
	return heap.Pop(q).(event)
}
