package sim

import (
	"bgsched/internal/job"
)

// eventKind discriminates simulator events (Section 6.1): job arrivals,
// job completions, node failures, checkpoint completions, and — when a
// node downtime is configured — node recoveries.
type eventKind int

const (
	evArrival eventKind = iota
	evFinish
	evFailure
	evCheckpoint
	evCkptPoll
	evNodeUp

	// evKindCount sizes the kernel's dispatch table; keep it last.
	evKindCount
)

func (k eventKind) String() string {
	switch k {
	case evArrival:
		return "arrival"
	case evFinish:
		return "finish"
	case evFailure:
		return "failure"
	case evCheckpoint:
		return "checkpoint"
	case evCkptPoll:
		return "ckpt-poll"
	case evNodeUp:
		return "nodeup"
	}
	return "unknown"
}

// event is one entry of the simulation calendar. Finish and checkpoint
// events carry the epoch of the run they were scheduled for; a restart
// or checkpoint-induced reschedule bumps the job's epoch, silently
// invalidating stale events.
type event struct {
	time  float64
	seq   int64
	kind  eventKind
	jobID job.ID
	epoch int
	node  int
}

// eventQueue is a deterministic min-heap over (time, seq), sifted
// directly on the event slice. container/heap's any-typed Push/Pop
// would box every record on and off the calendar — two heap
// allocations per event — so the kernel keeps its own sift routines.
// (time, seq) is a total order because seq is unique, so the pop
// sequence is independent of the heap's internal layout; any valid
// heap arrangement yields byte-identical simulations.
type eventQueue struct {
	events  []event
	nextSeq int64
}

func (q *eventQueue) Len() int { return len(q.events) }

func (q *eventQueue) less(i, j int) bool {
	a, b := &q.events[i], &q.events[j]
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// push enqueues an event, stamping its sequence number.
func (q *eventQueue) push(e event) {
	e.seq = q.nextSeq
	q.nextSeq++
	q.events = append(q.events, e)
	q.siftUp(len(q.events) - 1)
}

// pop removes and returns the earliest event.
func (q *eventQueue) pop() event {
	top := q.events[0]
	n := len(q.events) - 1
	q.events[0] = q.events[n]
	q.events = q.events[:n]
	if n > 0 {
		q.siftDown(0, n)
	}
	return top
}

// init restores the heap invariant over the whole slice; snapshot
// restore loads the calendar as a sorted array, which is already a
// valid min-heap, but establishing the invariant explicitly keeps
// restore independent of that detail.
func (q *eventQueue) init() {
	n := len(q.events)
	for i := n/2 - 1; i >= 0; i-- {
		q.siftDown(i, n)
	}
}

func (q *eventQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.events[i], q.events[parent] = q.events[parent], q.events[i]
		i = parent
	}
}

func (q *eventQueue) siftDown(i, n int) {
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && q.less(c+1, c) {
			c++
		}
		if !q.less(c, i) {
			return
		}
		q.events[i], q.events[c] = q.events[c], q.events[i]
		i = c
	}
}
