package sim

import (
	"bytes"
	"strings"
	"testing"

	"bgsched/internal/core"
	"bgsched/internal/failure"
	"bgsched/internal/job"
	"bgsched/internal/torus"
	"bgsched/internal/trace"
)

// traceNames extracts (name, job) pairs from parsed records, in order.
func traceNames(recs []trace.Record) []string {
	out := make([]string, 0, len(recs))
	for _, r := range recs {
		out = append(out, r.Name)
	}
	return out
}

func TestTraceJobLifecycle(t *testing.T) {
	// One full-machine job killed by a failure at t=50: the trace must
	// carry the full causal chain submit → allocate → start → failure →
	// kill → requeue → allocate → start → finish.
	var buf bytes.Buffer
	runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      []*job.Job{mkJob(1, 0, 128, 100)},
		Failures:  failure.Trace{{Time: 50, Node: 0}},
		Trace:     trace.New(&buf, trace.Options{}),
	})
	recs, err := trace.ReadLog(&buf)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	want := []string{"submit", "allocate", "start", "failure", "kill", "requeue", "allocate", "start", "finish"}
	got := traceNames(recs)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("trace = %v\nwant    %v", got, want)
	}

	bySeq := map[uint64]trace.Record{}
	for _, r := range recs {
		bySeq[r.Seq] = r
	}
	// Walk the chain backwards from the finish record: every hop must
	// resolve, and the kill hop must route through the failure record —
	// the chain's root is the machine fault, not the job's own history.
	finish := recs[len(recs)-1]
	if finish.Name != "finish" || finish.Job != 1 {
		t.Fatalf("last record = %+v", finish)
	}
	var chain []string
	for r := finish; r.Cause != 0; {
		parent, ok := bySeq[r.Cause]
		if !ok {
			t.Fatalf("record %d has dangling cause %d", r.Seq, r.Cause)
		}
		chain = append(chain, parent.Name)
		r = parent
	}
	wantChain := []string{"start", "allocate", "requeue", "kill", "failure"}
	if strings.Join(chain, " ") != strings.Join(wantChain, " ") {
		t.Fatalf("causal chain = %v\nwant         %v", chain, wantChain)
	}
	// The job's own timeline (by Job attribution) still covers the full
	// lifecycle including the pre-failure history.
	tl := trace.JobTimeline(recs, 1)
	wantTL := []string{"submit", "allocate", "start", "kill", "requeue", "allocate", "start", "finish"}
	if got := strings.Join(traceNames(tl), " "); got != strings.Join(wantTL, " ") {
		t.Fatalf("job timeline = %v\nwant         %v", got, wantTL)
	}

	// The kill carries the lost work and the failure carries the node.
	kill := recs[4]
	if kill.Cause != recs[3].Seq {
		t.Fatalf("kill cause = %d, want failure seq %d", kill.Cause, recs[3].Seq)
	}
	if lost := kill.Extra["lost_work"]; lost != float64(128*50) {
		t.Fatalf("kill lost_work = %v, want %v", lost, 128*50)
	}
	if node := recs[3].Extra["node"]; node != float64(0) {
		t.Fatalf("failure node = %v", node)
	}
	// Both starts carry the allocated partition on their allocate hop.
	for _, i := range []int{1, 6} {
		if p, _ := recs[i].Extra["partition"].(string); p == "" {
			t.Fatalf("allocate record %d missing partition: %+v", i, recs[i])
		}
	}
	// Timestamps are simulated time: the restart happens at t=50.
	if recs[7].T != 50 || recs[8].T != 150 {
		t.Fatalf("restart t = %g, finish t = %g; want 50, 150", recs[7].T, recs[8].T)
	}
}

func TestTraceDeterministicAcrossRuns(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		runSim(t, Config{
			Geometry:  torus.BlueGeneL(),
			Scheduler: baselineScheduler(t, core.BackfillEASY),
			Jobs: []*job.Job{
				mkJob(1, 0, 64, 100), mkJob(2, 5, 64, 50), mkJob(3, 10, 128, 30),
			},
			Failures: failure.Trace{{Time: 20, Node: 3}, {Time: 60, Node: 90}},
			Trace:    trace.New(&buf, trace.Options{}),
		})
		return buf.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatal("trace bytes differ between identical runs")
	}
}

func TestFlightRecorderTapsKernel(t *testing.T) {
	fr := trace.NewFlightRecorder(8, nil, "test")
	runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      []*job.Job{mkJob(1, 0, 128, 100)},
		Failures:  failure.Trace{{Time: 50, Node: 0}},
		Flight:    fr,
	})
	evs := fr.Events()
	if len(evs) == 0 {
		t.Fatal("flight recorder saw no kernel events")
	}
	// The run dispatches arrival, failure, and (after the restart) a
	// finish; the bounded ring must retain the tail in dispatch order.
	last := evs[len(evs)-1]
	if last.Kind != "finish" || last.T != 150 {
		t.Fatalf("last flight event = %+v, want finish at t=150", last)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].T < evs[i-1].T {
			t.Fatalf("flight events out of order: %+v before %+v", evs[i-1], evs[i])
		}
	}
}

func TestInvariantViolationDumpsFlight(t *testing.T) {
	// Force an invariant violation by corrupting the conservation
	// counters mid-run via a checkpoint-free simulator: simplest is to
	// run with CheckInvariants and tamper after New.
	var dump bytes.Buffer
	fr := trace.NewFlightRecorder(16, &dump, "violation-test")
	s, err := New(Config{
		Geometry:        torus.BlueGeneL(),
		Scheduler:       baselineScheduler(t, core.BackfillEASY),
		Jobs:            []*job.Job{mkJob(1, 0, 32, 100)},
		CheckInvariants: true,
		Flight:          fr,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.nStarts = 99 // break start-conservation
	if _, err := s.Run(); err == nil {
		t.Fatal("corrupted run should fail invariant check")
	}
	out := dump.String()
	if !strings.Contains(out, "flight recorder dump: violation-test") ||
		!strings.Contains(out, "invariant violation: start-conservation") {
		t.Fatalf("missing or mislabelled flight dump:\n%s", out)
	}
	if !strings.Contains(out, "kind=arrival") {
		t.Fatalf("dump lacks the kernel history:\n%s", out)
	}
}

func TestTraceNilConfigUnchanged(t *testing.T) {
	// A traced and an untraced run of the same config must agree on all
	// outcomes — tracing is pure observation.
	cfg := func(tr *trace.Tracer) Config {
		return Config{
			Geometry:  torus.BlueGeneL(),
			Scheduler: baselineScheduler(t, core.BackfillEASY),
			Jobs:      []*job.Job{mkJob(1, 0, 64, 100), mkJob(2, 5, 128, 50)},
			Failures:  failure.Trace{{Time: 20, Node: 3}},
			Trace:     tr,
		}
	}
	var buf bytes.Buffer
	plain := runSim(t, cfg(nil))
	traced := runSim(t, cfg(trace.New(&buf, trace.Options{})))
	if plain.Summary != traced.Summary {
		t.Fatalf("summaries diverge:\n%+v\n%+v", plain.Summary, traced.Summary)
	}
	if buf.Len() == 0 {
		t.Fatal("traced run wrote nothing")
	}
}
