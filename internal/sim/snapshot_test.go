package sim

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"bgsched/internal/core"
	"bgsched/internal/failure"
	"bgsched/internal/job"
	"bgsched/internal/snapshot"
	"bgsched/internal/torus"
	"bgsched/internal/trace"
	"bgsched/internal/workload"
)

// faultySchedConfig is a small deterministic scenario that exercises
// every mechanism a snapshot must carry: failures (kill + requeue +
// restart), downtime holds, and a queue deep enough that restarts
// contend for space.
func faultySchedConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs: []*job.Job{
			mkJob(1, 0, 64, 100),
			mkJob(2, 0, 64, 200),
			mkJob(3, 5, 64, 50),
			mkJob(4, 8, 32, 80),
		},
		Failures: failure.Trace{{Time: 30, Node: 0}, {Time: 60, Node: 70}},
		Downtime: 40,
	}
}

// splitAt runs cfg to the event boundary at, snapshots, restores into a
// fresh simulator and finishes the run there. Writers attached to cfg
// see prefix + continuation.
func splitAt(t *testing.T, cfg Config, at int64) Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done, err := s.RunToEvent(context.Background(), at)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatalf("run completed before event %d", at)
	}
	st, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewFromSnapshot(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSnapshotSplitRunMatchesFullRun is the package-level equivalence
// check: for every pausable event boundary of the scenario, snapshot +
// restore + continue must reproduce the uninterrupted run — same
// results, byte-identical event log and causal trace.
func TestSnapshotSplitRunMatchesFullRun(t *testing.T) {
	full := faultySchedConfig(t)
	var fullLog, fullTrace bytes.Buffer
	full.EventLog = &fullLog
	full.Trace = trace.New(&fullTrace, trace.Options{})
	full.RecordTimeline = true
	fullRes := runSim(t, full)
	if fullRes.JobKills == 0 {
		t.Fatal("scenario delivered no kills; equivalence check would be toothless")
	}

	for at := int64(1); at < fullRes.EventsDispatched; at++ {
		cfg := faultySchedConfig(t)
		var splitLog, splitTrace bytes.Buffer
		cfg.EventLog = &splitLog
		cfg.Trace = trace.New(&splitTrace, trace.Options{})
		cfg.RecordTimeline = true
		res := splitAt(t, cfg, at)
		if !reflect.DeepEqual(res, fullRes) {
			t.Fatalf("split at %d: results diverged:\n%+v\nvs\n%+v", at, res, fullRes)
		}
		if splitLog.String() != fullLog.String() {
			t.Fatalf("split at %d: event log diverged", at)
		}
		if splitTrace.String() != fullTrace.String() {
			t.Fatalf("split at %d: trace diverged", at)
		}
	}
}

// TestSnapshotPreservesCauseChains pins the causal-trace guarantee the
// byte-identity above implies, explicitly: a kill caused by a failure,
// the requeue caused by the kill, and — across the snapshot boundary —
// a restart whose cause is a requeue recorded before the snapshot was
// taken. The last link only holds if JobProgress.LastSeq survives the
// round trip.
func TestSnapshotPreservesCauseChains(t *testing.T) {
	full := faultySchedConfig(t)
	var buf bytes.Buffer
	full.Trace = trace.New(&buf, trace.Options{})
	fullRes := runSim(t, full)

	recs, err := trace.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	bySeq := map[uint64]trace.Record{}
	for _, r := range recs {
		bySeq[r.Seq] = r
	}
	var kills, requeues []trace.Record
	for _, r := range recs {
		switch r.Name {
		case "kill":
			if cause, ok := bySeq[r.Cause]; !ok || cause.Name != "failure" {
				t.Fatalf("kill %d caused by %+v, want a failure record", r.Seq, cause)
			}
			kills = append(kills, r)
		case "requeue":
			if cause, ok := bySeq[r.Cause]; !ok || cause.Name != "kill" {
				t.Fatalf("requeue %d caused by %+v, want a kill record", r.Seq, cause)
			}
			requeues = append(requeues, r)
		}
	}
	if len(kills) == 0 || len(requeues) == 0 {
		t.Fatal("scenario produced no kill/requeue chain")
	}

	// Find a split where the requeue lands in the prefix and the
	// restart it causes lands in the continuation.
	crossed := false
	for at := int64(1); at < fullRes.EventsDispatched && !crossed; at++ {
		cfg := faultySchedConfig(t)
		var splitBuf bytes.Buffer
		cfg.Trace = trace.New(&splitBuf, trace.Options{})
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if done, err := s.RunToEvent(context.Background(), at); err != nil || done {
			t.Fatalf("split at %d: done=%v err=%v", at, done, err)
		}
		st, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := NewFromSnapshot(cfg, st)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s2.Run(); err != nil {
			t.Fatal(err)
		}
		recs, err := trace.ReadLog(&splitBuf)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			// A restart's allocate record chains to the requeue that put
			// the job back in the queue (the start then chains to the
			// allocate).
			if r.Name != "allocate" || r.Cause == 0 {
				continue
			}
			cause, ok := bySeq[r.Cause]
			if ok && cause.Name == "requeue" && cause.Seq <= st.TraceSeq && r.Seq > st.TraceSeq {
				crossed = true
			}
		}
	}
	if !crossed {
		t.Fatal("no split placed a requeue before the boundary and its restart after it")
	}
}

// TestSnapshotMigrationCauseChain extends the chain check to the
// migration pass: a migrate record's cause must be the finish record
// that triggered the compaction, and migrations must replay identically
// through a snapshot boundary.
func TestSnapshotMigrationCauseChain(t *testing.T) {
	log, err := Synthesize(t)
	if err != nil {
		t.Fatal(err)
	}
	mkCfg := func() Config {
		sched, err := core.NewScheduler(core.Config{Policy: core.Baseline{}, Backfill: core.BackfillEASY, Migration: true})
		if err != nil {
			t.Fatal(err)
		}
		jobs, err := log.ToJobs(torus.BlueGeneL(), workload.ToJobsConfig{LoadScale: 1, ExactEstimates: true})
		if err != nil {
			t.Fatal(err)
		}
		return Config{
			Geometry:      torus.BlueGeneL(),
			Scheduler:     sched,
			Jobs:          jobs,
			MigrationCost: 15,
		}
	}
	cfg := mkCfg()
	var buf bytes.Buffer
	cfg.Trace = trace.New(&buf, trace.Options{})
	fullRes := runSim(t, cfg)
	if fullRes.Migrations == 0 {
		t.Skip("workload triggered no migrations")
	}
	fullTrace := buf.String()
	recs, err := trace.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	bySeq := map[uint64]trace.Record{}
	for _, r := range recs {
		bySeq[r.Seq] = r
	}
	sawMigrate := false
	for _, r := range recs {
		if r.Name != "migrate" {
			continue
		}
		sawMigrate = true
		if cause, ok := bySeq[r.Cause]; !ok || cause.Name != "finish" {
			t.Fatalf("migrate %d caused by %+v, want a finish record", r.Seq, cause)
		}
	}
	if !sawMigrate {
		t.Fatal("migrations counted but no migrate trace records found")
	}

	// A sample of split points is enough here — the exhaustive sweep runs
	// on the smaller failure scenario above.
	for i := 1; i <= 8; i++ {
		at := fullRes.EventsDispatched * int64(i) / 9
		if at < 1 {
			continue
		}
		cfg2 := mkCfg()
		var splitBuf bytes.Buffer
		cfg2.Trace = trace.New(&splitBuf, trace.Options{})
		res := splitAt(t, cfg2, at)
		if res.Migrations != fullRes.Migrations {
			t.Fatalf("split at %d: %d migrations, full run had %d", at, res.Migrations, fullRes.Migrations)
		}
		if splitBuf.String() != fullTrace {
			t.Fatalf("split at %d: migration trace diverged", at)
		}
	}
}

// TestSubsystemSnapshotHooks table-tests the per-subsystem state
// contract: who serializes state, who doesn't, and how payloads are
// treated on restore.
func TestSubsystemSnapshotHooks(t *testing.T) {
	cfg := faultySchedConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range s.subs {
		sub := sub
		t.Run(sub.name(), func(t *testing.T) {
			data, err := sub.SnapshotState()
			if err != nil {
				t.Fatal(err)
			}
			switch sub.name() {
			case "failures", "migration":
				if data != nil {
					t.Fatalf("stateless subsystem serialized %s", data)
				}
			case "checkpoint", "contention":
				// Neither mechanism is configured in this scenario:
				// nothing to keep.
				if data != nil {
					t.Fatalf("disabled %s subsystem serialized %s", sub.name(), data)
				}
			default:
				t.Fatalf("unknown subsystem %q in wiring list", sub.name())
			}
			// A nil payload must always be accepted.
			if err := sub.RestoreState(nil); err != nil {
				t.Fatal(err)
			}
			// A leftover payload for a subsystem that keeps no state (the
			// branch-swap case) is dropped, not an error.
			if err := sub.RestoreState([]byte(`[{"Job":1,"Time":3}]`)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRenderTimelineTable drives the strip-chart renderer through its
// input space: errors, defaults, and the busy-fraction extremes.
func TestRenderTimelineTable(t *testing.T) {
	line := []TimelinePoint{
		{Time: 0, FreeNodes: 0, QueueJobs: 3, Running: 2},
		{Time: 50, FreeNodes: 64, QueueJobs: 1, Running: 1},
		{Time: 100, FreeNodes: 128, QueueJobs: 0, Running: 0},
	}
	cases := []struct {
		name     string
		timeline []TimelinePoint
		n        int
		buckets  int
		wantErr  bool
		want     []string
	}{
		{name: "empty timeline", timeline: nil, n: 128, buckets: 10, wantErr: true},
		{name: "bad machine size", timeline: line, n: 0, buckets: 10, wantErr: true},
		{name: "two buckets", timeline: line, n: 128, buckets: 2,
			want: []string{"busy nodes", "100%", "q=3"}},
		{name: "defaulted buckets", timeline: line, n: 128, buckets: 0,
			want: []string{"busy nodes"}},
		{name: "single point", timeline: line[:1], n: 128, buckets: 3,
			want: []string{"100%"}},
		{name: "idle machine", timeline: []TimelinePoint{{Time: 0, FreeNodes: 128}, {Time: 10, FreeNodes: 128}},
			n: 128, buckets: 2, want: []string{"0%", "q=0"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := RenderTimeline(&buf, tc.timeline, tc.n, tc.buckets)
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			for _, w := range tc.want {
				if !strings.Contains(out, w) {
					t.Fatalf("output missing %q:\n%s", w, out)
				}
			}
			if tc.buckets == 0 {
				// Header plus the 40 default rows.
				if got := strings.Count(out, "\n"); got != 41 {
					t.Fatalf("default bucket count rendered %d lines, want 41", got)
				}
			}
		})
	}
}

// TestSnapshotRefusesTamperedState spot-checks NewFromSnapshot's
// structural defenses at the simulator level (the snapshot package
// fuzzes the codec itself): world and state damage must be rejected,
// never absorbed into a silently-wrong simulation.
func TestSnapshotRefusesTamperedState(t *testing.T) {
	cfg := faultySchedConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if done, err := s.RunToEvent(context.Background(), 6); err != nil || done {
		t.Fatalf("done=%v err=%v", done, err)
	}
	capture := func() *snapshot.State {
		st, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	cases := []struct {
		name   string
		mutate func(st *snapshot.State)
		cfg    func() Config
	}{
		{name: "unknown subsystem", mutate: func(st *snapshot.State) {
			st.Subsystems = append(st.Subsystems, snapshot.SubsystemState{Name: "quantum", Data: []byte(`{}`)})
		}},
		{name: "phantom owner", mutate: func(st *snapshot.State) {
			st.Owners[0] = 999 // not a known job, not down, not free
		}},
		{name: "pending drift", mutate: func(st *snapshot.State) {
			st.Counters.Pending++
		}},
		{name: "world mismatch", cfg: func() Config {
			c := faultySchedConfig(t)
			c.Jobs[0].Actual += 1 // same count, different world hash
			return c
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			st := capture()
			target := cfg
			if tc.cfg != nil {
				target = tc.cfg()
			}
			if tc.mutate != nil {
				tc.mutate(st)
			}
			if _, err := NewFromSnapshot(target, st); err == nil {
				t.Fatal("tampered snapshot accepted")
			}
		})
	}
}
