package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"bgsched/internal/job"
	"bgsched/internal/torus"
)

// LoggedEvent is one line of the structured simulation event log: a
// flat JSON object per state change, for post-hoc analysis with
// standard tooling (jq, dataframes). Fields are omitted when not
// applicable to the event kind.
type LoggedEvent struct {
	// Seq is a monotonically increasing sequence number, starting at 1
	// for the first logged event of a run. Simultaneous events share a
	// timestamp but never a sequence number, so downstream pipelines
	// can order, join and detect gaps without relying on line numbers.
	Seq  uint64  `json:"seq"`
	Time float64 `json:"t"`
	Kind string  `json:"kind"` // arrival|start|finish|failure|kill|checkpoint|migrate|nodeup
	Job  int64   `json:"job,omitempty"`
	Node int     `json:"node,omitempty"`
	Part string  `json:"part,omitempty"`
	// Free is the number of free nodes after the event was applied.
	// Deliberately not omitempty: a fully packed machine must log
	// "free":0 explicitly, since jq-style pipelines assume presence.
	Free int `json:"free"`
	// Queue is the number of waiting jobs after the event; emitted
	// even when zero, for the same reason as Free.
	Queue int `json:"queue"`
}

// eventLogger serialises simulation events to a writer. A nil logger
// discards everything, so call sites need no guards.
type eventLogger struct {
	enc *json.Encoder
	seq uint64
	err error
}

func newEventLogger(w io.Writer) *eventLogger {
	if w == nil {
		return nil
	}
	return &eventLogger{enc: json.NewEncoder(w)}
}

// log stamps the next sequence number on the event and writes it,
// remembering the first encoding error.
func (l *eventLogger) log(e LoggedEvent) {
	if l == nil || l.err != nil {
		return
	}
	l.seq++
	e.Seq = l.seq
	l.err = l.enc.Encode(e)
}

// flushErr surfaces any write error at the end of the run.
func (l *eventLogger) flushErr() error {
	if l == nil || l.err == nil {
		return nil
	}
	return fmt.Errorf("sim: event log: %w", l.err)
}

// logEvent is the simulator's convenience wrapper filling the common
// fields.
func (s *Simulator) logEvent(kind string, id job.ID, node int, part *torus.Partition) {
	if s.elog == nil {
		return
	}
	e := LoggedEvent{
		Time:  s.k.now,
		Kind:  kind,
		Job:   int64(id),
		Node:  node,
		Free:  s.grid.FreeCount(),
		Queue: s.queue.Len(),
	}
	if part != nil {
		e.Part = part.String()
	}
	s.elog.log(e)
}

// EventStreamWriter adapts a per-line sink into the io.Writer
// Config.EventLog expects, so the JSONL event log can be tailed live
// (e.g. streamed over HTTP as NDJSON) instead of only post-processed
// from a file. Written bytes are split on '\n'; each complete line is
// handed to the sink without the newline, and a trailing partial line
// is buffered until the next Write or Close. The sink must not retain
// the slice past the call.
//
// The simulator writes one line per Write, so under normal wiring the
// sink fires exactly once per event with no buffering; the splitting
// makes the adapter correct for any writer that coalesces or splits
// lines (bufio wrappers, tees).
type EventStreamWriter struct {
	sink func(line []byte)
	buf  []byte
}

// NewEventStreamWriter returns a streaming event-log writer delivering
// complete JSONL lines to sink.
func NewEventStreamWriter(sink func(line []byte)) *EventStreamWriter {
	return &EventStreamWriter{sink: sink}
}

// Write implements io.Writer; it never fails.
func (w *EventStreamWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	for {
		i := bytes.IndexByte(w.buf, '\n')
		if i < 0 {
			return len(p), nil
		}
		line := w.buf[:i]
		if len(line) > 0 {
			w.sink(line)
		}
		w.buf = w.buf[i+1:]
	}
}

// Close flushes a trailing partial line, if any. The writer remains
// usable; Close exists so torn final lines (crash artefacts) still
// reach the sink.
func (w *EventStreamWriter) Close() error {
	if len(w.buf) > 0 {
		w.sink(w.buf)
		w.buf = nil
	}
	return nil
}

// ReadEventLog parses a JSONL event log written via Config.EventLog.
func ReadEventLog(r io.Reader) ([]LoggedEvent, error) {
	dec := json.NewDecoder(r)
	var out []LoggedEvent
	for dec.More() {
		var e LoggedEvent
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("sim: event log line %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
	return out, nil
}
