package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"unicode/utf8"

	"bgsched/internal/job"
	"bgsched/internal/torus"
)

// LoggedEvent is one line of the structured simulation event log: a
// flat JSON object per state change, for post-hoc analysis with
// standard tooling (jq, dataframes). Fields are omitted when not
// applicable to the event kind.
type LoggedEvent struct {
	// Seq is a monotonically increasing sequence number, starting at 1
	// for the first logged event of a run. Simultaneous events share a
	// timestamp but never a sequence number, so downstream pipelines
	// can order, join and detect gaps without relying on line numbers.
	Seq  uint64  `json:"seq"`
	Time float64 `json:"t"`
	Kind string  `json:"kind"` // arrival|start|finish|failure|kill|checkpoint|migrate|nodeup
	Job  int64   `json:"job,omitempty"`
	Node int     `json:"node,omitempty"`
	Part string  `json:"part,omitempty"`
	// Free is the number of free nodes after the event was applied.
	// Deliberately not omitempty: a fully packed machine must log
	// "free":0 explicitly, since jq-style pipelines assume presence.
	Free int `json:"free"`
	// Queue is the number of waiting jobs after the event; emitted
	// even when zero, for the same reason as Free.
	Queue int `json:"queue"`
}

// eventLogger serialises simulation events to a writer. A nil logger
// discards everything, so call sites need no guards.
//
// Events are formatted by hand into a reused buffer instead of going
// through json.Encoder: the reflective marshal costs several heap
// allocations per event, which dominates the simulator's hot loop when
// a log is attached. The hand encoder is pinned byte-identical to
// encoding/json by TestEventLogEncodingMatchesStdlib, so downstream
// consumers (and the golden digests) cannot tell the difference.
type eventLogger struct {
	w   io.Writer
	buf []byte // one encoded line, reused across events
	seq uint64
	err error
}

func newEventLogger(w io.Writer) *eventLogger {
	if w == nil {
		return nil
	}
	return &eventLogger{w: w}
}

// log stamps the next sequence number on the event and writes it,
// remembering the first encoding error.
func (l *eventLogger) log(e LoggedEvent, part *torus.Partition) {
	if l == nil || l.err != nil {
		return
	}
	l.seq++
	e.Seq = l.seq
	l.buf = appendLoggedEvent(l.buf[:0], &e, part)
	_, l.err = l.w.Write(l.buf)
}

// appendLoggedEvent encodes e exactly as json.Encoder would — same
// field order, same omitempty behaviour, same number and string
// formats, trailing newline — appending to b. A non-nil part is
// formatted in place of e.Part, saving the String() allocation;
// partition strings are digits, parens, commas, '+' and 'x', none of
// which encoding/json escapes, so raw emission inside quotes is
// byte-identical to quoting the equivalent Go string.
func appendLoggedEvent(b []byte, e *LoggedEvent, part *torus.Partition) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, e.Seq, 10)
	b = append(b, `,"t":`...)
	b = appendJSONFloat(b, e.Time)
	b = append(b, `,"kind":`...)
	b = appendJSONString(b, e.Kind)
	if e.Job != 0 {
		b = append(b, `,"job":`...)
		b = strconv.AppendInt(b, e.Job, 10)
	}
	if e.Node != 0 {
		b = append(b, `,"node":`...)
		b = strconv.AppendInt(b, int64(e.Node), 10)
	}
	if part != nil {
		b = append(b, `,"part":"`...)
		b = appendPartition(b, *part)
		b = append(b, '"')
	} else if e.Part != "" {
		b = append(b, `,"part":`...)
		b = appendJSONString(b, e.Part)
	}
	b = append(b, `,"free":`...)
	b = strconv.AppendInt(b, int64(e.Free), 10)
	b = append(b, `,"queue":`...)
	b = strconv.AppendInt(b, int64(e.Queue), 10)
	return append(b, '}', '\n')
}

// appendJSONFloat matches encoding/json's float64 formatting: shortest
// representation, 'f' form except for very small or very large
// magnitudes, with the exponent's leading zero trimmed ("1e-07" →
// "1e-7"). Simulation clocks are always finite, so the NaN/Inf error
// path json.Encoder has is unreachable here.
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

const jsonHex = "0123456789abcdef"

// appendJSONString quotes s the way json.Encoder does with its default
// HTML escaping: control characters, quotes, backslashes and <, >, &
// are escaped; invalid UTF-8 becomes U+FFFD; U+2028/U+2029 are escaped
// for JS embedding. Event kinds and partition strings are plain ASCII,
// so the fast path is a straight copy.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '"', '\\':
				b = append(b, '\\', c)
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', jsonHex[c>>4], jsonHex[c&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', jsonHex[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// flushErr surfaces any write error at the end of the run.
func (l *eventLogger) flushErr() error {
	if l == nil || l.err == nil {
		return nil
	}
	return fmt.Errorf("sim: event log: %w", l.err)
}

// logEvent is the simulator's convenience wrapper filling the common
// fields.
func (s *Simulator) logEvent(kind string, id job.ID, node int, part *torus.Partition) {
	if s.elog == nil {
		return
	}
	e := LoggedEvent{
		Time:  s.k.now,
		Kind:  kind,
		Job:   int64(id),
		Node:  node,
		Free:  s.grid.FreeCount(),
		Queue: s.queue.Len(),
	}
	s.elog.log(e, part)
}

// appendPartition formats p as Partition.String does —
// "(x,y,z)+XxYxZ" — without the fmt round trip.
func appendPartition(b []byte, p torus.Partition) []byte {
	b = append(b, '(')
	b = strconv.AppendInt(b, int64(p.Base.X), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(p.Base.Y), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(p.Base.Z), 10)
	b = append(b, ')', '+')
	b = strconv.AppendInt(b, int64(p.Shape.X), 10)
	b = append(b, 'x')
	b = strconv.AppendInt(b, int64(p.Shape.Y), 10)
	b = append(b, 'x')
	b = strconv.AppendInt(b, int64(p.Shape.Z), 10)
	return b
}

// EventStreamWriter adapts a per-line sink into the io.Writer
// Config.EventLog expects, so the JSONL event log can be tailed live
// (e.g. streamed over HTTP as NDJSON) instead of only post-processed
// from a file. Written bytes are split on '\n'; each complete line is
// handed to the sink without the newline, and a trailing partial line
// is buffered until the next Write or Close. The sink must not retain
// the slice past the call.
//
// The simulator writes one line per Write, so under normal wiring the
// sink fires exactly once per event with no buffering; the splitting
// makes the adapter correct for any writer that coalesces or splits
// lines (bufio wrappers, tees).
type EventStreamWriter struct {
	sink func(line []byte)
	buf  []byte
}

// NewEventStreamWriter returns a streaming event-log writer delivering
// complete JSONL lines to sink.
func NewEventStreamWriter(sink func(line []byte)) *EventStreamWriter {
	return &EventStreamWriter{sink: sink}
}

// Write implements io.Writer; it never fails.
func (w *EventStreamWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	for {
		i := bytes.IndexByte(w.buf, '\n')
		if i < 0 {
			return len(p), nil
		}
		line := w.buf[:i]
		if len(line) > 0 {
			w.sink(line)
		}
		w.buf = w.buf[i+1:]
	}
}

// Close flushes a trailing partial line, if any. The writer remains
// usable; Close exists so torn final lines (crash artefacts) still
// reach the sink.
func (w *EventStreamWriter) Close() error {
	if len(w.buf) > 0 {
		w.sink(w.buf)
		w.buf = nil
	}
	return nil
}

// ReadEventLog parses a JSONL event log written via Config.EventLog.
func ReadEventLog(r io.Reader) ([]LoggedEvent, error) {
	dec := json.NewDecoder(r)
	var out []LoggedEvent
	for dec.More() {
		var e LoggedEvent
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("sim: event log line %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
	return out, nil
}
