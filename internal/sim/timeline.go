package sim

import (
	"fmt"
	"io"
	"strings"
)

// TimelinePoint is one sample of machine state, recorded at every
// event when Config.RecordTimeline is set.
type TimelinePoint struct {
	Time        float64
	FreeNodes   int
	QueueJobs   int
	QueueDemand int
	Running     int
}

// recordTimeline appends a sample, collapsing repeated samples at the
// same instant (several events can share one timestamp).
func (s *Simulator) recordTimeline() {
	if !s.cfg.RecordTimeline {
		return
	}
	p := TimelinePoint{
		Time:        s.k.now,
		FreeNodes:   s.grid.FreeCount(),
		QueueJobs:   s.queue.Len(),
		QueueDemand: s.queue.DemandNodes(),
		Running:     len(s.running),
	}
	if n := len(s.result.Timeline); n > 0 && s.result.Timeline[n-1].Time == s.k.now {
		s.result.Timeline[n-1] = p
		return
	}
	s.result.Timeline = append(s.result.Timeline, p)
}

// RenderTimeline writes the recorded machine-state timeline as an
// aligned strip chart: one row per time bucket showing the busy
// fraction of the torus and the queue backlog. n is the machine size.
func RenderTimeline(w io.Writer, timeline []TimelinePoint, n, buckets int) error {
	if len(timeline) == 0 {
		return fmt.Errorf("sim: empty timeline (was RecordTimeline set?)")
	}
	if n < 1 {
		return fmt.Errorf("sim: machine size %d", n)
	}
	if buckets < 1 {
		buckets = 40
	}
	t0 := timeline[0].Time
	t1 := timeline[len(timeline)-1].Time
	if t1 <= t0 {
		t1 = t0 + 1
	}
	width := (t1 - t0) / float64(buckets)

	// Time-weighted busy fraction and max queue depth per bucket.
	busy := make([]float64, buckets)
	weight := make([]float64, buckets)
	queue := make([]int, buckets)
	for i, p := range timeline {
		end := t1
		if i+1 < len(timeline) {
			end = timeline[i+1].Time
		}
		frac := float64(n-p.FreeNodes) / float64(n)
		for t := p.Time; t < end; {
			b := int((t - t0) / width)
			if b >= buckets {
				b = buckets - 1
			}
			bucketEnd := t0 + float64(b+1)*width
			if bucketEnd > end {
				bucketEnd = end
			}
			dt := bucketEnd - t
			if dt <= 0 {
				break
			}
			busy[b] += frac * dt
			weight[b] += dt
			if p.QueueJobs > queue[b] {
				queue[b] = p.QueueJobs
			}
			t = bucketEnd
		}
	}

	const barWidth = 50
	if _, err := fmt.Fprintf(w, "%12s  %-*s  %s\n", "time (h)", barWidth, "busy nodes", "queued jobs"); err != nil {
		return err
	}
	for b := 0; b < buckets; b++ {
		f := 0.0
		if weight[b] > 0 {
			f = busy[b] / weight[b]
		}
		bar := int(f*barWidth + 0.5)
		_, err := fmt.Fprintf(w, "%12.1f  |%-*s| %3.0f%%  q=%d\n",
			(t0+float64(b)*width)/3600, barWidth, strings.Repeat("#", bar), f*100, queue[b])
		if err != nil {
			return err
		}
	}
	return nil
}
