package sim

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"bgsched/internal/core"
	"bgsched/internal/failure"
	"bgsched/internal/job"
	"bgsched/internal/torus"
)

func TestEventLogRecordsLifecycle(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      []*job.Job{mkJob(1, 0, 128, 100)},
		Failures:  failure.Trace{{Time: 50, Node: 0}},
		EventLog:  &buf,
	}
	runSim(t, cfg)

	events, err := ReadEventLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]string, len(events))
	for i, e := range events {
		kinds[i] = e.Kind
	}
	joined := strings.Join(kinds, ",")
	// arrival -> start -> failure -> kill -> restart -> finish.
	want := "arrival,start,failure,kill,start,finish"
	if joined != want {
		t.Fatalf("event sequence %q, want %q", joined, want)
	}
	// Times are monotone; free counts sane.
	prev := -1.0
	for _, e := range events {
		if e.Time < prev {
			t.Fatalf("event log time went backwards at %+v", e)
		}
		prev = e.Time
		if e.Free < 0 || e.Free > 128 {
			t.Fatalf("bad free count %d", e.Free)
		}
	}
	// Starts carry partitions; failure carries the node.
	for _, e := range events {
		switch e.Kind {
		case "start", "finish", "kill":
			if e.Part == "" {
				t.Fatalf("%s without partition: %+v", e.Kind, e)
			}
		}
	}
}

// TestEventLogSequenceNumbers: every logged event carries a strictly
// increasing sequence number starting at 1, including simultaneous
// events that share a timestamp.
func TestEventLogSequenceNumbers(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		// Two simultaneous arrivals force equal timestamps with
		// distinct sequence numbers.
		Jobs:     []*job.Job{mkJob(1, 0, 8, 100), mkJob(2, 0, 8, 100)},
		EventLog: &buf,
	}
	runSim(t, cfg)

	events, err := ReadEventLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events logged")
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
	}
}

// TestEventLogEmitsZeroFields: "free" and "queue" must appear in the
// raw JSON even when zero, so downstream jq pipelines that assume
// presence never see an absent field. A full-machine job drives free
// to 0 while a second job waits, covering both fields' zero and
// non-zero states.
func TestEventLogEmitsZeroFields(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      []*job.Job{mkJob(1, 0, 128, 100), mkJob(2, 10, 1, 10)},
		EventLog:  &buf,
	}
	runSim(t, cfg)

	sawFreeZero := false
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !strings.Contains(line, `"free":`) {
			t.Fatalf("line missing free field: %s", line)
		}
		if !strings.Contains(line, `"queue":`) {
			t.Fatalf("line missing queue field: %s", line)
		}
		if !strings.Contains(line, `"seq":`) {
			t.Fatalf("line missing seq field: %s", line)
		}
		if strings.Contains(line, `"free":0,`) || strings.Contains(line, `"free":0}`) {
			sawFreeZero = true
		}
	}
	if !sawFreeZero {
		t.Error("full-machine run never logged free=0 explicitly")
	}
}

func TestEventLogDisabled(t *testing.T) {
	// No EventLog configured: nothing breaks, nothing recorded.
	res := runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      []*job.Job{mkJob(1, 0, 1, 10)},
	})
	if res.Summary.Jobs != 1 {
		t.Fatal("run failed without event log")
	}
}

func TestReadEventLogErrors(t *testing.T) {
	if _, err := ReadEventLog(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed log accepted")
	}
	events, err := ReadEventLog(strings.NewReader(""))
	if err != nil || len(events) != 0 {
		t.Fatalf("empty log: %v, %d events", err, len(events))
	}
}

type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 2 {
		return 0, strings.NewReader("").UnreadByte() // any non-nil error
	}
	return len(p), nil
}

func TestEventLogWriteErrorSurfaces(t *testing.T) {
	cfg := Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      []*job.Job{mkJob(1, 0, 1, 10), mkJob(2, 5, 1, 10)},
		EventLog:  &failingWriter{},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("write error swallowed")
	}
}

// TestEventLogEncodingMatchesStdlib pins the hand-rolled event encoder
// byte-for-byte to encoding/json across the full field matrix —
// omitempty combinations, float edge cases (shortest form, exponent
// notation at both magnitude extremes, exponent zero-trimming) and
// string escaping (quotes, backslashes, control characters, HTML
// characters, invalid UTF-8, U+2028/U+2029). If the stdlib's output
// ever shifts, this fails loudly rather than silently forking the log
// format.
func TestEventLogEncodingMatchesStdlib(t *testing.T) {
	part := torus.Partition{
		Base:  torus.Coord{X: 3, Y: 0, Z: 12},
		Shape: torus.Shape{X: 4, Y: 8, Z: 16},
	}
	cases := []struct {
		e    LoggedEvent
		part *torus.Partition
	}{
		{e: LoggedEvent{Seq: 1, Time: 0, Kind: "arrival"}},
		{e: LoggedEvent{Seq: 2, Time: 12345.678, Kind: "start", Job: 7}, part: &part},
		{e: LoggedEvent{Seq: 3, Time: 1e21, Kind: "failure", Node: 511, Free: 0, Queue: 3}},
		{e: LoggedEvent{Seq: 4, Time: 1e-7, Kind: "finish", Job: 42, Free: 128}},
		{e: LoggedEvent{Seq: 5, Time: 0.1, Kind: "kill", Job: -1, Node: -2, Part: "(0,0,0)+1x1x1"}},
		{e: LoggedEvent{Seq: 6, Time: 2.5e-7, Kind: `we"ird\kind`}},
		{e: LoggedEvent{Seq: 7, Time: 1e300, Kind: "a<b>&c"}},
		{e: LoggedEvent{Seq: 8, Time: 0.30000000000000004, Kind: "ctl\b\f\n\r\t\x01"}},
		{e: LoggedEvent{Seq: 9, Time: -1e-9, Kind: "bad\xffutf8"}},
		{e: LoggedEvent{Seq: 10, Time: -42, Kind: "js\u2028\u2029sep"}},
		{e: LoggedEvent{Seq: 11, Time: 9.999999e20, Kind: "uni\u00e9\u4e16"}},
		{e: LoggedEvent{Seq: 12, Time: 1.000001e21, Kind: ""}},
	}
	for _, tc := range cases {
		e := tc.e
		if tc.part != nil {
			e.Part = tc.part.String()
		}
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(e); err != nil {
			t.Fatal(err)
		}
		got := appendLoggedEvent(nil, &tc.e, tc.part)
		if string(got) != want.String() {
			t.Errorf("encoding mismatch for %+v:\n got %q\nwant %q", tc.e, got, want.String())
		}
	}
}

// TestEventLoggerReusesBuffer: steady-state logging through a warm
// eventLogger performs no per-event heap allocations beyond the
// writer's own.
func TestEventLoggerReusesBuffer(t *testing.T) {
	l := newEventLogger(io.Discard)
	part := torus.Partition{Shape: torus.Shape{X: 2, Y: 2, Z: 2}}
	e := LoggedEvent{Time: 1234.5, Kind: "start", Job: 9, Free: 120, Queue: 2}
	l.log(e, &part) // warm the buffer
	allocs := testing.AllocsPerRun(100, func() {
		l.log(e, &part)
	})
	if allocs != 0 {
		t.Fatalf("eventLogger.log allocates %v per event, want 0", allocs)
	}
}
