package sim

import (
	"bytes"
	"strings"
	"testing"

	"bgsched/internal/core"
	"bgsched/internal/failure"
	"bgsched/internal/job"
	"bgsched/internal/torus"
)

func TestEventLogRecordsLifecycle(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      []*job.Job{mkJob(1, 0, 128, 100)},
		Failures:  failure.Trace{{Time: 50, Node: 0}},
		EventLog:  &buf,
	}
	runSim(t, cfg)

	events, err := ReadEventLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]string, len(events))
	for i, e := range events {
		kinds[i] = e.Kind
	}
	joined := strings.Join(kinds, ",")
	// arrival -> start -> failure -> kill -> restart -> finish.
	want := "arrival,start,failure,kill,start,finish"
	if joined != want {
		t.Fatalf("event sequence %q, want %q", joined, want)
	}
	// Times are monotone; free counts sane.
	prev := -1.0
	for _, e := range events {
		if e.Time < prev {
			t.Fatalf("event log time went backwards at %+v", e)
		}
		prev = e.Time
		if e.Free < 0 || e.Free > 128 {
			t.Fatalf("bad free count %d", e.Free)
		}
	}
	// Starts carry partitions; failure carries the node.
	for _, e := range events {
		switch e.Kind {
		case "start", "finish", "kill":
			if e.Part == "" {
				t.Fatalf("%s without partition: %+v", e.Kind, e)
			}
		}
	}
}

// TestEventLogSequenceNumbers: every logged event carries a strictly
// increasing sequence number starting at 1, including simultaneous
// events that share a timestamp.
func TestEventLogSequenceNumbers(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		// Two simultaneous arrivals force equal timestamps with
		// distinct sequence numbers.
		Jobs:     []*job.Job{mkJob(1, 0, 8, 100), mkJob(2, 0, 8, 100)},
		EventLog: &buf,
	}
	runSim(t, cfg)

	events, err := ReadEventLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events logged")
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
	}
}

// TestEventLogEmitsZeroFields: "free" and "queue" must appear in the
// raw JSON even when zero, so downstream jq pipelines that assume
// presence never see an absent field. A full-machine job drives free
// to 0 while a second job waits, covering both fields' zero and
// non-zero states.
func TestEventLogEmitsZeroFields(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      []*job.Job{mkJob(1, 0, 128, 100), mkJob(2, 10, 1, 10)},
		EventLog:  &buf,
	}
	runSim(t, cfg)

	sawFreeZero := false
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !strings.Contains(line, `"free":`) {
			t.Fatalf("line missing free field: %s", line)
		}
		if !strings.Contains(line, `"queue":`) {
			t.Fatalf("line missing queue field: %s", line)
		}
		if !strings.Contains(line, `"seq":`) {
			t.Fatalf("line missing seq field: %s", line)
		}
		if strings.Contains(line, `"free":0,`) || strings.Contains(line, `"free":0}`) {
			sawFreeZero = true
		}
	}
	if !sawFreeZero {
		t.Error("full-machine run never logged free=0 explicitly")
	}
}

func TestEventLogDisabled(t *testing.T) {
	// No EventLog configured: nothing breaks, nothing recorded.
	res := runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      []*job.Job{mkJob(1, 0, 1, 10)},
	})
	if res.Summary.Jobs != 1 {
		t.Fatal("run failed without event log")
	}
}

func TestReadEventLogErrors(t *testing.T) {
	if _, err := ReadEventLog(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed log accepted")
	}
	events, err := ReadEventLog(strings.NewReader(""))
	if err != nil || len(events) != 0 {
		t.Fatalf("empty log: %v, %d events", err, len(events))
	}
}

type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 2 {
		return 0, strings.NewReader("").UnreadByte() // any non-nil error
	}
	return len(p), nil
}

func TestEventLogWriteErrorSurfaces(t *testing.T) {
	cfg := Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      []*job.Job{mkJob(1, 0, 1, 10), mkJob(2, 5, 1, 10)},
		EventLog:  &failingWriter{},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("write error swallowed")
	}
}
