package sim

import (
	"context"
	"errors"
	"strings"
	"testing"

	"bgsched/internal/core"
	"bgsched/internal/failure"
	"bgsched/internal/job"
	"bgsched/internal/torus"
)

// A churny run (failures, restarts, backfilling) must satisfy every
// conservation invariant at every event.
func TestCheckInvariantsCleanRun(t *testing.T) {
	jobs := []*job.Job{
		mkJob(1, 0, 64, 500),
		mkJob(2, 10, 32, 300),
		mkJob(3, 20, 128, 200),
		mkJob(4, 30, 8, 50),
	}
	tr := failure.Trace{{Time: 100, Node: 3}, {Time: 250, Node: 77}, {Time: 400, Node: 3}}
	tr.Sort()
	res, err := New(Config{
		Geometry:        torus.BlueGeneL(),
		Scheduler:       baselineScheduler(t, core.BackfillEASY),
		Jobs:            jobs,
		Failures:        tr,
		Downtime:        25,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.Run()
	if err != nil {
		t.Fatalf("invariant guard rejected a healthy run: %v", err)
	}
	if len(out.Outcomes) != len(jobs) {
		t.Fatalf("outcomes = %d", len(out.Outcomes))
	}
}

// Corrupting the grid behind the simulator's back must be caught by the
// ownership check on the next event.
func TestCheckInvariantsDetectsRogueAllocation(t *testing.T) {
	s, err := New(Config{
		Geometry:        torus.BlueGeneL(),
		Scheduler:       baselineScheduler(t, core.BackfillNone),
		Jobs:            []*job.Job{mkJob(1, 0, 8, 100)},
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := torus.BlueGeneL()
	rogue := torus.Partition{
		Base:  g.CoordOf(g.N() - 1),
		Shape: torus.Shape{X: 1, Y: 1, Z: 1},
	}
	if err := s.grid.Allocate(rogue, 999); err != nil {
		t.Fatal(err)
	}
	_, err = s.Run()
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *InvariantError", err)
	}
	if ie.Check != "ownership" {
		t.Fatalf("check = %q, want ownership", ie.Check)
	}
	if !strings.Contains(ie.Error(), "999") {
		t.Fatalf("error detail lost the rogue owner: %v", ie)
	}
}

// A leaked start counter must trip start-conservation.
func TestCheckInvariantsDetectsCounterDrift(t *testing.T) {
	s, err := New(Config{
		Geometry:        torus.BlueGeneL(),
		Scheduler:       baselineScheduler(t, core.BackfillNone),
		Jobs:            []*job.Job{mkJob(1, 0, 8, 100)},
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.nStarts = 5 // pretend five starts were dispatched before any event
	_, err = s.Run()
	var ie *InvariantError
	if !errors.As(err, &ie) || ie.Check != "start-conservation" {
		t.Fatalf("err = %v, want start-conservation InvariantError", err)
	}
}

// The guard must be pure observation: the same workload with and
// without it produces identical results.
func TestCheckInvariantsDoesNotPerturbResults(t *testing.T) {
	mk := func(check bool) Result {
		tr := failure.Trace{{Time: 150, Node: 0}}
		res := runSim(t, Config{
			Geometry:        torus.BlueGeneL(),
			Scheduler:       baselineScheduler(t, core.BackfillEASY),
			Jobs:            []*job.Job{mkJob(1, 0, 64, 400), mkJob(2, 5, 16, 100)},
			Failures:        tr,
			CheckInvariants: check,
		})
		return res
	}
	a, b := mk(false), mk(true)
	if a.Summary != b.Summary {
		t.Fatalf("summaries diverged: %+v vs %+v", a.Summary, b.Summary)
	}
	if a.JobKills != b.JobKills || len(a.Outcomes) != len(b.Outcomes) {
		t.Fatal("outcome counts diverged under the invariant guard")
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	s, err := New(Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillNone),
		Jobs:      []*job.Job{mkJob(1, 0, 8, 100)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
