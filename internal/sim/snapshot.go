package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"bgsched/internal/job"
	"bgsched/internal/metrics"
	"bgsched/internal/snapshot"
	"bgsched/internal/torus"
)

// worldJob is the canonical serialized form of one job for world
// hashing: every immutable field, no pointers, fixed field order.
type worldJob struct {
	ID        int64
	Arrival   float64
	Size      int
	AllocSize int
	Estimate  float64
	Actual    float64
}

// computeWorld fingerprints a configuration's immutable inputs: the
// machine geometry, the job log and the failure trace. Snapshot stamps
// it; NewFromSnapshot refuses a config whose world differs, so branch
// replay can swap policies but never the physics.
func computeWorld(cfg Config) (snapshot.World, error) {
	jobs := make([]worldJob, 0, len(cfg.Jobs))
	for _, j := range cfg.Jobs {
		jobs = append(jobs, worldJob{
			ID: int64(j.ID), Arrival: j.Arrival, Size: j.Size,
			AllocSize: j.AllocSize, Estimate: j.Estimate, Actual: j.Actual,
		})
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	jb, err := json.Marshal(jobs)
	if err != nil {
		return snapshot.World{}, fmt.Errorf("sim: hash jobs: %w", err)
	}
	fb, err := json.Marshal(cfg.Failures)
	if err != nil {
		return snapshot.World{}, fmt.Errorf("sim: hash failures: %w", err)
	}
	js, fs := sha256.Sum256(jb), sha256.Sum256(fb)
	return snapshot.World{
		Geometry: cfg.Geometry.Spec(),
		Jobs:     hex.EncodeToString(js[:]),
		Failures: hex.EncodeToString(fs[:]),
	}, nil
}

// Snapshot captures the complete simulator state at the current event
// boundary. Call it on a simulator paused by RunToEvent (done=false);
// the result restores through NewFromSnapshot into a continuation that
// replays byte-identically to the uninterrupted run.
func (s *Simulator) Snapshot() (*snapshot.State, error) {
	world, err := computeWorld(s.cfg)
	if err != nil {
		return nil, err
	}
	st := &snapshot.State{
		World:        world,
		Now:          s.k.now,
		Dispatched:   s.k.dispatched,
		NextEventSeq: s.k.queue.nextSeq,
		Owners:       s.grid.Owners(),
		Tracker:      s.tracker.State(),
	}

	// Calendar, sorted by the (time, seq) dispatch order. The heap's
	// internal layout is traversal-order dependent; the sorted array is
	// the canonical form (and itself a valid min-heap).
	evs := make([]event, len(s.k.queue.events))
	copy(evs, s.k.queue.events)
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].time != evs[j].time {
			return evs[i].time < evs[j].time
		}
		return evs[i].seq < evs[j].seq
	})
	st.Calendar = make([]snapshot.Event, len(evs))
	for i, e := range evs {
		st.Calendar[i] = snapshot.Event{
			Time: e.time, Seq: e.seq, Kind: int(e.kind),
			Job: int64(e.jobID), Epoch: e.epoch, Node: e.node,
		}
	}

	for _, j := range s.queue.Jobs() {
		st.Queue = append(st.Queue, int64(j.ID))
	}

	st.Running = make([]snapshot.RunState, 0, len(s.running))
	for id, r := range s.running {
		st.Running = append(st.Running, snapshot.RunState{
			Job: int64(id), Part: r.part, Start: r.start, Epoch: r.epoch,
			FinishTime: r.finishTime, ExpFinish: r.expFinish,
			OverheadSoFar: r.overheadSoFar, SavedAtStart: r.savedAtStart,
			RestartPenaltyPaid: r.restartPenaltyPaid,
		})
	}
	sort.Slice(st.Running, func(i, j int) bool { return st.Running[i].Job < st.Running[j].Job })

	st.Progress = make([]snapshot.JobProgress, 0, len(s.progress))
	for id, p := range s.progress {
		st.Progress = append(st.Progress, snapshot.JobProgress{
			Job: int64(id), FirstStart: p.firstStart, Started: p.started,
			Restarts: p.restarts, LostWork: p.lostWork, SavedWork: p.savedWork,
			LastStart: p.lastStart, NextEpoch: p.nextEpoch, LastSeq: p.lastSeq,
		})
	}
	sort.Slice(st.Progress, func(i, j int) bool { return st.Progress[i].Job < st.Progress[j].Job })

	st.Outcomes = append([]metrics.Outcome(nil), s.outcomes...)
	st.Counters = snapshot.Counters{
		Pending: s.pending, Starts: s.nStarts, Finishes: s.nFinishes, Kills: s.nKills,
		FailureEvents: s.result.FailureEvents, JobKills: s.result.JobKills,
		Migrations: s.result.Migrations, Checkpoints: s.result.Checkpoints,
		Backfills: s.result.Backfills, LastFinishSeq: s.lastFinishSeq,
	}
	if s.elog != nil {
		st.ElogSeq = s.elog.seq
	}
	if s.cfg.Trace != nil {
		st.TraceSeq = s.cfg.Trace.Seq()
	}
	for _, p := range s.result.Timeline {
		st.Timeline = append(st.Timeline, snapshot.TimelinePoint{
			Time: p.Time, FreeNodes: p.FreeNodes, QueueJobs: p.QueueJobs,
			QueueDemand: p.QueueDemand, Running: p.Running,
		})
	}
	for _, sub := range s.subs {
		data, err := sub.SnapshotState()
		if err != nil {
			return nil, err
		}
		if data != nil {
			st.Subsystems = append(st.Subsystems, snapshot.SubsystemState{Name: sub.name(), Data: data})
		}
	}
	sort.Slice(st.Subsystems, func(i, j int) bool { return st.Subsystems[i].Name < st.Subsystems[j].Name })

	if err := st.Validate(); err != nil {
		return nil, fmt.Errorf("sim: captured inconsistent snapshot: %w", err)
	}
	return st, nil
}

// NewFromSnapshot builds a simulator resuming from a captured state.
// The config must describe the same world (geometry, jobs, failures) —
// everything else (scheduler, finder, checkpoint policy, output
// writers) may differ, which is what makes branch replay a policy
// counterfactual rather than a new run. The restored simulator
// continues with RunToEvent or RunContext.
func NewFromSnapshot(cfg Config, st *snapshot.State) (*Simulator, error) {
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	world, err := computeWorld(cfg)
	if err != nil {
		return nil, err
	}
	if world != st.World {
		return nil, fmt.Errorf("sim: snapshot world mismatch: snapshot {geom %s jobs %.12s failures %.12s}, config {geom %s jobs %.12s failures %.12s}",
			st.World.Geometry, st.World.Jobs, st.World.Failures,
			world.Geometry, world.Jobs, world.Failures)
	}

	s := newSimulator(cfg)
	s.k.now = st.Now
	s.k.dispatched = st.Dispatched

	// Calendar. The serialized form is (time, seq)-sorted, which is
	// already a valid min-heap; Init anyway so correctness never rides
	// on that observation.
	s.k.queue.events = make([]event, len(st.Calendar))
	for i, e := range st.Calendar {
		if e.Kind < 0 || e.Kind >= int(evKindCount) {
			return nil, fmt.Errorf("sim: snapshot calendar entry %d: unknown event kind %d", i, e.Kind)
		}
		s.k.queue.events[i] = event{
			time: e.Time, seq: e.Seq, kind: eventKind(e.Kind),
			jobID: job.ID(e.Job), epoch: e.Epoch, node: e.Node,
		}
	}
	s.k.queue.init()
	s.k.queue.nextSeq = st.NextEventSeq

	// Occupancy, with every owner resolved: a job id we know, or the
	// downtime hold.
	for i, o := range st.Owners {
		if o == torus.FreeOwner || o == downOwner {
			continue
		}
		if o < 0 || s.jobsByID[job.ID(o)] == nil {
			return nil, fmt.Errorf("sim: snapshot node %d owned by unknown job %d", i, o)
		}
	}
	grid, err := torus.NewGridFromOwners(cfg.Geometry, st.Owners)
	if err != nil {
		return nil, fmt.Errorf("sim: snapshot occupancy: %w", err)
	}
	s.grid = grid

	for _, id := range st.Queue {
		j := s.jobsByID[job.ID(id)]
		if j == nil {
			return nil, fmt.Errorf("sim: snapshot queues unknown job %d", id)
		}
		s.queue.Push(j)
	}

	for _, r := range st.Running {
		j := s.jobsByID[job.ID(r.Job)]
		if j == nil {
			return nil, fmt.Errorf("sim: snapshot runs unknown job %d", r.Job)
		}
		ok := cfg.Geometry.ForEachNode(r.Part, func(id int) bool {
			return s.grid.OwnerAt(id) == r.Job
		})
		if !ok {
			return nil, fmt.Errorf("sim: snapshot job %d claims partition %v it does not fully own", r.Job, r.Part)
		}
		s.running[job.ID(r.Job)] = &runState{
			job: j, part: r.Part, start: r.Start, epoch: r.Epoch,
			finishTime: r.FinishTime, expFinish: r.ExpFinish,
			overheadSoFar: r.OverheadSoFar, savedAtStart: r.SavedAtStart,
			restartPenaltyPaid: r.RestartPenaltyPaid,
		}
	}

	for _, p := range st.Progress {
		if s.jobsByID[job.ID(p.Job)] == nil {
			return nil, fmt.Errorf("sim: snapshot tracks unknown job %d", p.Job)
		}
		s.progress[job.ID(p.Job)] = &jobProgress{
			firstStart: p.FirstStart, started: p.Started, restarts: p.Restarts,
			lostWork: p.LostWork, savedWork: p.SavedWork, lastStart: p.LastStart,
			nextEpoch: p.NextEpoch, lastSeq: p.LastSeq,
		}
	}
	if len(s.progress) != len(cfg.Jobs) {
		return nil, fmt.Errorf("sim: snapshot tracks %d jobs, config has %d", len(s.progress), len(cfg.Jobs))
	}

	s.outcomes = append([]metrics.Outcome(nil), st.Outcomes...)
	c := st.Counters
	if c.Pending != len(cfg.Jobs)-c.Finishes {
		return nil, fmt.Errorf("sim: snapshot pending count %d inconsistent with %d jobs, %d finished",
			c.Pending, len(cfg.Jobs), c.Finishes)
	}
	s.pending = c.Pending
	s.nStarts, s.nFinishes, s.nKills = c.Starts, c.Finishes, c.Kills
	s.result.FailureEvents = c.FailureEvents
	s.result.JobKills = c.JobKills
	s.result.Migrations = c.Migrations
	s.result.Checkpoints = c.Checkpoints
	s.result.Backfills = c.Backfills
	s.lastFinishSeq = c.LastFinishSeq

	s.tracker.Restore(st.Tracker)
	if s.elog != nil {
		s.elog.seq = st.ElogSeq
	}
	s.cfg.Trace.AdvanceTo(st.TraceSeq)
	if cfg.RecordTimeline {
		for _, p := range st.Timeline {
			s.result.Timeline = append(s.result.Timeline, TimelinePoint{
				Time: p.Time, FreeNodes: p.FreeNodes, QueueJobs: p.QueueJobs,
				QueueDemand: p.QueueDemand, Running: p.Running,
			})
		}
	}

	byName := make(map[string]json.RawMessage, len(st.Subsystems))
	for _, ss := range st.Subsystems {
		if _, dup := byName[ss.Name]; dup {
			return nil, fmt.Errorf("sim: snapshot has duplicate subsystem state %q", ss.Name)
		}
		byName[ss.Name] = ss.Data
	}
	for _, sub := range s.subs {
		data, ok := byName[sub.name()]
		if ok {
			delete(byName, sub.name())
		}
		if err := sub.RestoreState(data); err != nil {
			return nil, err
		}
	}
	for name := range byName {
		return nil, fmt.Errorf("sim: snapshot carries state for unknown subsystem %q", name)
	}

	// The prefix run already took the initial observation; the restored
	// simulator must not observe the boundary instant a second time.
	s.started = true
	return s, nil
}
