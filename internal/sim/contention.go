package sim

import (
	"encoding/json"
	"fmt"
	"sort"

	"bgsched/internal/contention"
	"bgsched/internal/job"
	"bgsched/internal/trace"
)

// ---------------------------------------------------------------------
// Network contention: runtime dilation from shared torus lines.

// contentionSubsystem charges running jobs for the torus lines their
// partitions share: when a job starts, it and every co-resident
// neighbor whose partition shares lines with it are each dilated by
// the model's per-line charge (internal/contention). The dilation
// extends the affected run's completion via the same epoch-reissue
// idiom checkpoint overheads use, so killed or rescheduled runs never
// see stale finish events. It owns no event kinds — it rides the start
// hook — and a nil config keeps every hook a no-op, so the paper's
// main runs are untouched.
type contentionSubsystem struct {
	s   *Simulator
	cfg *contention.Config

	// Accumulated model state, mirrored into Result as it accrues and
	// round-tripped through snapshots: total charges applied, total
	// dilation seconds, and the per-job dilation breakdown.
	charges int
	total   float64
	perJob  map[job.ID]float64
}

func (c *contentionSubsystem) attach(*kernel) {}

func (c *contentionSubsystem) name() string { return "contention" }

// contentionState is the subsystem's snapshot payload: the aggregate
// counters plus the per-job dilation ledger, jobs sorted so the
// canonical snapshot encoding is stable.
type contentionState struct {
	Charges int                `json:"charges"`
	Total   float64            `json:"total"`
	Jobs    []contentionJobRow `json:"jobs,omitempty"`
}

type contentionJobRow struct {
	Job      job.ID  `json:"job"`
	Dilation float64 `json:"dilation"`
}

// SnapshotState serializes the dilation ledger. A disabled model keeps
// no state (nil), so runs without contention produce the exact
// snapshot bytes they did before the subsystem existed.
func (c *contentionSubsystem) SnapshotState() (json.RawMessage, error) {
	if c.cfg == nil {
		return nil, nil
	}
	st := contentionState{Charges: c.charges, Total: c.total}
	for id := range c.perJob {
		st.Jobs = append(st.Jobs, contentionJobRow{Job: id, Dilation: c.perJob[id]})
	}
	sort.Slice(st.Jobs, func(i, j int) bool { return st.Jobs[i].Job < st.Jobs[j].Job })
	b, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("sim: contention snapshot: %w", err)
	}
	return b, nil
}

// RestoreState feeds a captured ledger back and mirrors the aggregates
// into the restored Result. A branch that disabled contention drops
// the payload (defined branch semantics: the new mechanism starts from
// its own zero state).
func (c *contentionSubsystem) RestoreState(data json.RawMessage) error {
	if data == nil || c.cfg == nil {
		return nil
	}
	var st contentionState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("sim: contention restore: %w", err)
	}
	if st.Charges < 0 || st.Total < 0 {
		return fmt.Errorf("sim: contention restore: negative ledger (charges %d, total %g)", st.Charges, st.Total)
	}
	c.charges = st.Charges
	c.total = st.Total
	c.perJob = make(map[job.ID]float64, len(st.Jobs))
	for _, row := range st.Jobs {
		c.perJob[row.Job] = row.Dilation
	}
	c.s.result.ContentionCharges = st.Charges
	c.s.result.DilationSeconds = st.Total
	return nil
}

// onJobStart charges the contention of the new co-residency: the
// starter pays for every line it shares with each running neighbor,
// and each such neighbor pays for the lines the starter now contends
// on. Neighbors are visited in job-id order, so the charge sequence —
// and with it the event calendar and the causal trace — is
// deterministic. Runs before the checkpoint subsystem's start hook in
// the wiring list, so the first checkpoint is scheduled against the
// final (dilated) epoch and completion.
func (c *contentionSubsystem) onJobStart(r *runState) {
	if c.cfg == nil {
		return
	}
	s := c.s
	ids := make([]job.ID, 0, len(s.running))
	for id := range s.running {
		if id != r.job.ID {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// The starter's own chain record ("start") is the cause of every
	// dilation this co-residency inflicts.
	startSeq := s.progress[r.job.ID].lastSeq
	selfCharge := 0.0
	for _, id := range ids {
		n := s.running[id]
		charge := c.cfg.Charge(s.cfg.Geometry, r.part, n.part)
		if charge <= 0 {
			continue
		}
		selfCharge += charge
		c.dilate(n, charge, startSeq)
	}
	if selfCharge > 0 {
		c.dilate(r, selfCharge, startSeq)
	}
}

// dilate extends one running job's completion by charge seconds. The
// dilation is pure overhead — it produces no work — so it folds into
// overheadSoFar exactly like a checkpoint overhead, keeping the saved-
// work accounting intact, and the pending finish event is reissued
// under a fresh epoch.
func (c *contentionSubsystem) dilate(r *runState, charge float64, cause uint64) {
	s := c.s
	p := s.progress[r.job.ID]
	r.overheadSoFar += charge
	r.finishTime += charge
	r.expFinish += charge
	r.epoch = p.nextEpoch
	p.nextEpoch++
	s.k.push(event{time: r.finishTime, kind: evFinish, jobID: r.job.ID, epoch: r.epoch})

	c.charges++
	c.total += charge
	if c.perJob == nil {
		c.perJob = make(map[job.ID]float64)
	}
	c.perJob[r.job.ID] += charge
	s.result.ContentionCharges++
	s.result.DilationSeconds += charge
	s.met.contentions.Inc()
	s.met.dilation.Observe(charge)
	s.logEvent("dilate", r.job.ID, 0, &r.part)
	if s.cfg.Trace != nil {
		p.lastSeq = s.traceJob("dilate", r.job.ID, cause,
			trace.Num("seconds", charge), trace.Fint("epoch", int64(r.epoch)))
	}
}
