package sim

import (
	"math"
	"testing"

	"bgsched/internal/core"
	"bgsched/internal/failure"
	"bgsched/internal/torus"
	"bgsched/internal/workload"
)

// TestWorkConservation checks the global occupancy ledger: the busy
// node-seconds integrated from the recorded timeline must equal the
// node-seconds of successful runs plus the node-seconds wasted by
// failure-induced restarts. Any leak in allocation, release, restart
// or lost-work accounting breaks this identity.
func TestWorkConservation(t *testing.T) {
	log, err := workload.Synthesize(workload.SDSC(200), 6)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := log.ToJobs(torus.BlueGeneL(), workload.ToJobsConfig{LoadScale: 1, ExactEstimates: true})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := failure.Generate(failure.DefaultGeneratorConfig(128, 60, log.Span()*1.1), 7)
	if err != nil {
		t.Fatal(err)
	}
	sched := baselineScheduler(t, core.BackfillEASY)
	res := runSim(t, Config{
		Geometry:       torus.BlueGeneL(),
		Scheduler:      sched,
		Jobs:           jobs,
		Failures:       trace,
		RecordTimeline: true,
	})

	// Busy node-seconds from the piecewise-constant timeline.
	busy := 0.0
	for i := 0; i+1 < len(res.Timeline); i++ {
		dt := res.Timeline[i+1].Time - res.Timeline[i].Time
		busy += float64(128-res.Timeline[i].FreeNodes) * dt
	}

	// Ledger: successful runs occupy AllocSize*Actual; failed attempts
	// are exactly the recorded LostWork (in allocated node-seconds).
	want := 0.0
	for _, o := range res.Outcomes {
		want += float64(o.AllocSize)*o.Actual + o.LostWork
	}
	if math.Abs(busy-want)/want > 1e-9 {
		t.Fatalf("occupancy ledger broken: timeline busy %.0f node-s, accounted %.0f node-s", busy, want)
	}
	if res.JobKills == 0 {
		t.Fatal("test needs kills to exercise the lost-work ledger")
	}
}
