package sim

import (
	"testing"

	"bgsched/internal/core"
	"bgsched/internal/failure"
	"bgsched/internal/job"
	"bgsched/internal/telemetry"
	"bgsched/internal/torus"
)

// TestTelemetryCounterIdentities runs a failure-heavy simulation with a
// registry attached and asserts the accounting identities that must
// hold at end of run:
//
//	starts   = finishes + kills   (every dispatched run either
//	                               completes or is killed)
//	finishes = arrivals = len(jobs)
//	kills    = restarts = Result.JobKills
//
// plus agreement between the counters and the Result fields the
// simulator already reports.
func TestTelemetryCounterIdentities(t *testing.T) {
	reg := telemetry.New()
	sched, err := core.NewScheduler(core.Config{
		Policy: core.Baseline{}, Backfill: core.BackfillEASY, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*job.Job{
		mkJob(1, 0, 64, 200),
		mkJob(2, 0, 64, 200),
		mkJob(3, 10, 128, 100),
		mkJob(4, 20, 8, 50),
	}
	cfg := Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: sched,
		Jobs:      jobs,
		// Repeated failures on nodes 0 and 64 kill running jobs and
		// force restarts.
		Failures: failure.Trace{
			{Time: 50, Node: 0}, {Time: 60, Node: 64},
			{Time: 260, Node: 0}, {Time: 600, Node: 3},
		},
		Telemetry: reg,
	}
	res := runSim(t, cfg)

	s := reg.Snapshot()
	c := func(name string) int64 { return s.Counters[name] }

	if got, want := c("sim.arrivals"), int64(len(jobs)); got != want {
		t.Errorf("arrivals = %d, want %d", got, want)
	}
	if got, want := c("sim.finishes"), int64(len(jobs)); got != want {
		t.Errorf("finishes = %d, want %d", got, want)
	}
	if c("sim.starts") != c("sim.finishes")+c("sim.kills") {
		t.Errorf("starts (%d) != finishes (%d) + kills (%d)",
			c("sim.starts"), c("sim.finishes"), c("sim.kills"))
	}
	if c("sim.kills") != c("sim.restarts") {
		t.Errorf("kills (%d) != restarts (%d)", c("sim.kills"), c("sim.restarts"))
	}
	if got, want := c("sim.kills"), int64(res.JobKills); got != want {
		t.Errorf("kills counter = %d, Result.JobKills = %d", got, want)
	}
	if got, want := c("sim.failures"), int64(res.FailureEvents); got != want {
		t.Errorf("failures counter = %d, Result.FailureEvents = %d", got, want)
	}
	if c("sim.kills") == 0 {
		t.Error("failure trace produced no kills; identity test is vacuous")
	}
	if c("sim.events") == 0 {
		t.Error("no events counted")
	}

	// The machine drains at end of run: all nodes free, queue empty,
	// nothing running.
	if got := s.Gauges["sim.free_nodes"]; got != 128 {
		t.Errorf("final free_nodes gauge = %g, want 128", got)
	}
	if got := s.Gauges["sim.queue_depth"]; got != 0 {
		t.Errorf("final queue_depth gauge = %g, want 0", got)
	}
	if got := s.Gauges["sim.running_jobs"]; got != 0 {
		t.Errorf("final running_jobs gauge = %g, want 0", got)
	}

	// Per-job distributions: one sample per finished job, and the
	// histogram's wait matches the summary's average within bucket
	// resolution (±10%).
	wait := s.Histograms["sim.job.wait_seconds"]
	if wait.Count != int64(len(jobs)) {
		t.Errorf("wait histogram has %d samples, want %d", wait.Count, len(jobs))
	}
	avgFromHist := wait.Sum / float64(wait.Count)
	if res.Summary.AvgWait > 0 {
		if rel := (avgFromHist - res.Summary.AvgWait) / res.Summary.AvgWait; rel > 1e-9 || rel < -1e-9 {
			t.Errorf("wait histogram mean %.3f != summary avg wait %.3f", avgFromHist, res.Summary.AvgWait)
		}
	}
	if s.Histograms["sim.job.bounded_slowdown"].Count != int64(len(jobs)) {
		t.Error("slowdown histogram incomplete")
	}

	// Scheduler-side instruments flow into the same registry.
	if s.Counters["sched.starts.fcfs"]+s.Counters["sched.starts.backfill"] != c("sim.starts") {
		t.Errorf("scheduler starts (%d fcfs + %d backfill) != sim starts (%d)",
			s.Counters["sched.starts.fcfs"], s.Counters["sched.starts.backfill"], c("sim.starts"))
	}
	if _, ok := s.Histograms["sched.decision.seconds"]; !ok {
		t.Error("no scheduler decision timer samples")
	}
}

// TestTelemetryDisabled: a nil registry must leave behaviour untouched
// (the instrument handles are all nil and every record is a no-op).
func TestTelemetryDisabled(t *testing.T) {
	res := runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      []*job.Job{mkJob(1, 0, 8, 10)},
	})
	if res.Summary.Jobs != 1 {
		t.Fatal("run failed without telemetry")
	}
}
