package sim

import (
	"bytes"
	"strings"
	"testing"

	"bgsched/internal/core"
	"bgsched/internal/job"
	"bgsched/internal/torus"
)

func TestTimelineRecording(t *testing.T) {
	cfg := Config{
		Geometry:       torus.BlueGeneL(),
		Scheduler:      baselineScheduler(t, core.BackfillEASY),
		Jobs:           []*job.Job{mkJob(1, 0, 64, 100), mkJob(2, 10, 64, 100)},
		RecordTimeline: true,
	}
	res := runSim(t, cfg)
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline recorded")
	}
	prev := -1.0
	for i, p := range res.Timeline {
		if p.Time < prev {
			t.Fatalf("timeline point %d goes backwards", i)
		}
		if p.Time == prev {
			t.Fatalf("duplicate timestamp %g at point %d (should collapse)", p.Time, i)
		}
		prev = p.Time
		if p.FreeNodes < 0 || p.FreeNodes > 128 {
			t.Fatalf("free nodes %d out of range", p.FreeNodes)
		}
	}
	// The first sample is the empty machine; at some point both jobs
	// run together (0 free).
	sawFull := false
	for _, p := range res.Timeline {
		if p.FreeNodes == 0 && p.Running == 2 {
			sawFull = true
		}
	}
	if !sawFull {
		t.Fatal("timeline never shows both jobs running")
	}
}

func TestTimelineDisabledByDefault(t *testing.T) {
	res := runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      []*job.Job{mkJob(1, 0, 1, 10)},
	})
	if res.Timeline != nil {
		t.Fatal("timeline recorded without RecordTimeline")
	}
}

func TestRenderTimeline(t *testing.T) {
	timeline := []TimelinePoint{
		{Time: 0, FreeNodes: 128, QueueJobs: 0},
		{Time: 3600, FreeNodes: 0, QueueJobs: 5},
		{Time: 7200, FreeNodes: 64, QueueJobs: 1},
		{Time: 10800, FreeNodes: 128, QueueJobs: 0},
	}
	var buf bytes.Buffer
	if err := RenderTimeline(&buf, timeline, 128, 6); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "busy nodes") || !strings.Contains(out, "q=5") {
		t.Fatalf("render output:\n%s", out)
	}
	// 6 bucket rows + header.
	if got := strings.Count(out, "\n"); got != 7 {
		t.Fatalf("lines = %d, want 7", got)
	}
	if !strings.Contains(out, "100%") {
		t.Fatalf("fully-busy bucket missing:\n%s", out)
	}
}

func TestRenderTimelineErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTimeline(&buf, nil, 128, 10); err == nil {
		t.Error("empty timeline accepted")
	}
	pts := []TimelinePoint{{Time: 0, FreeNodes: 10}}
	if err := RenderTimeline(&buf, pts, 0, 10); err == nil {
		t.Error("zero machine size accepted")
	}
	// Single point and zero buckets must not panic.
	if err := RenderTimeline(&buf, pts, 128, 0); err != nil {
		t.Errorf("single point: %v", err)
	}
}
