package sim

import (
	"strings"
	"testing"

	"bgsched/internal/core"
	"bgsched/internal/failure"
	"bgsched/internal/job"
	"bgsched/internal/torus"
)

func TestEventStreamWriterSplitsLines(t *testing.T) {
	var got []string
	w := NewEventStreamWriter(func(line []byte) { got = append(got, string(line)) })

	// One write per line: the normal json.Encoder pattern.
	w.Write([]byte(`{"seq":1}` + "\n"))
	// Coalesced writes.
	w.Write([]byte(`{"seq":2}` + "\n" + `{"seq":3}` + "\n"))
	// A line torn across writes.
	w.Write([]byte(`{"se`))
	w.Write([]byte(`q":4}` + "\n"))
	// Empty lines are suppressed.
	w.Write([]byte("\n\n"))
	// A trailing partial line only reaches the sink at Close.
	w.Write([]byte(`{"torn":true`))
	if len(got) != 4 {
		t.Fatalf("before Close: %d lines, want 4: %q", len(got), got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	want := []string{`{"seq":1}`, `{"seq":2}`, `{"seq":3}`, `{"seq":4}`, `{"torn":true`}
	if len(got) != len(want) {
		t.Fatalf("lines = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
	// Close with nothing buffered is a no-op.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("idle Close emitted a line: %q", got)
	}
}

// TestEventStreamWriterCarriesSimLog wires the adapter as a real run's
// EventLog and checks it reproduces the JSONL stream line for line.
func TestEventStreamWriterCarriesSimLog(t *testing.T) {
	var lines []string
	esw := NewEventStreamWriter(func(line []byte) { lines = append(lines, string(line)) })
	cfg := Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs: []*job.Job{
			mkJob(1, 0, 128, 100),
			mkJob(2, 10, 64, 50),
		},
		Failures: failure.Trace{{Time: 40, Node: 0}},
		EventLog: esw,
	}
	runSim(t, cfg)
	esw.Close()

	if len(lines) == 0 {
		t.Fatal("no event lines streamed")
	}
	evs, err := ReadEventLog(strings.NewReader(strings.Join(lines, "\n") + "\n"))
	if err != nil {
		t.Fatalf("streamed lines do not re-parse: %v", err)
	}
	if len(evs) != len(lines) {
		t.Fatalf("parsed %d events from %d lines", len(evs), len(lines))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}
