package sim

import (
	"math"
	"math/rand"
	"testing"

	"bgsched/internal/checkpoint"
	"bgsched/internal/core"
	"bgsched/internal/failure"
	"bgsched/internal/job"
	"bgsched/internal/torus"
)

// TestModelMatchesSimulator cross-validates the analytic
// checkpoint.ExpectedRuntime model against the event-driven simulator:
// a single full-machine job under Poisson failures, completion time
// averaged over many replicates, must match the renewal-model
// prediction within sampling error. This ties the two implementations
// of the same physics together.
func TestModelMatchesSimulator(t *testing.T) {
	g := torus.BlueGeneL()
	work := 5000.0
	lam := 1.0 / 8000 // partition failure rate per second

	cases := []struct {
		name string
		ckpt *checkpoint.Config
		p    checkpoint.ModelParams
	}{
		{
			name: "no-checkpointing",
			ckpt: nil,
			p:    checkpoint.ModelParams{Work: work, FailureRate: lam},
		},
		{
			name: "periodic",
			ckpt: &checkpoint.Config{
				Policy:         &checkpoint.Periodic{Interval: 1000},
				Overhead:       20,
				RestartPenalty: 15,
			},
			p: checkpoint.ModelParams{
				Work: work, Interval: 1000, Overhead: 20,
				RestartPenalty: 15, FailureRate: lam,
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := checkpoint.ExpectedRuntime(tc.p)
			if err != nil {
				t.Fatal(err)
			}
			const reps = 300
			rng := rand.New(rand.NewSource(42))
			total := 0.0
			for r := 0; r < reps; r++ {
				// Poisson failure process on one node of the job's
				// partition (the job holds the whole machine, so any
				// node kills it; rate lam on node 0 ≡ partition rate).
				var tr failure.Trace
				tm := 0.0
				for {
					tm += rng.ExpFloat64() / lam
					if tm > 50*work {
						break
					}
					tr = append(tr, failure.Event{Time: tm, Node: 0})
				}
				sched, err := core.NewScheduler(core.Config{Policy: core.Baseline{}, Backfill: core.BackfillNone})
				if err != nil {
					t.Fatal(err)
				}
				alloc, _ := g.RoundUpFeasible(128)
				s, err := New(Config{
					Geometry:  g,
					Scheduler: sched,
					Jobs: []*job.Job{{
						ID: 1, Arrival: 0, Size: 128, AllocSize: alloc,
						Estimate: work, Actual: work,
					}},
					Failures:   tr,
					Checkpoint: tc.ckpt,
				})
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				total += res.Outcomes[0].Finish
			}
			got := total / reps
			// Sampling error of the mean: generous 10% tolerance.
			if math.Abs(got-want)/want > 0.10 {
				t.Fatalf("simulated mean completion %.0f vs analytic %.0f (%.1f%% off)",
					got, want, 100*math.Abs(got-want)/want)
			}
			t.Logf("simulated %.0f vs analytic %.0f", got, want)
		})
	}
}
