package sim

import (
	"encoding/json"
	"fmt"

	"bgsched/internal/checkpoint"
	"bgsched/internal/job"
	"bgsched/internal/torus"
	"bgsched/internal/trace"
)

// A subsystem is one simulator mechanism (failures, checkpointing,
// migration, ...) wired in at construction time: attach registers the
// event-kind handlers it owns on the kernel, and the snapshot hooks
// round-trip whatever private mutable state the mechanism keeps outside
// the kernel calendar (most keep none and return nil). Subsystems may
// additionally implement the lifecycle hooks below; the Simulator
// discovers them by interface assertion when wiring, so adding a
// mechanism is one new type plus one entry in the wiring list — never
// an edit to the event loop or another subsystem.
type subsystem interface {
	attach(k *kernel)
	// name identifies the subsystem's state in a snapshot.
	name() string
	// SnapshotState returns the subsystem's private mutable state as
	// canonical JSON (nil when it keeps none).
	SnapshotState() (json.RawMessage, error)
	// RestoreState resets the subsystem from a prior SnapshotState.
	// A nil payload means the snapshot recorded no state; a non-nil
	// payload for a subsystem reconfigured without that state (a branch
	// that swapped the policy) is ignored, not an error.
	RestoreState(data json.RawMessage) error
}

// startHook runs when a job (re)start is committed, after the finish
// event for the new run is scheduled.
type startHook interface {
	onJobStart(r *runState)
}

// startCostHook contributes a delay charged at the front of a run (the
// checkpoint restore penalty); the sum of all hooks shifts both the
// actual and the scheduler-visible completion.
type startCostHook interface {
	startPenalty(p *jobProgress) float64
}

// finishHook runs after a job completion is committed and its outcome
// recorded, before the scheduler pass that refills the machine.
type finishHook interface {
	afterFinish() error
}

// ---------------------------------------------------------------------
// Failures: transient node faults, job kills, and optional downtime.

// failureSubsystem delivers failure-trace events: the failed node's
// running job (if any) is killed and requeued at its original FCFS
// position, and — when a downtime is configured — the node is held out
// of service until a recovery event returns it.
type failureSubsystem struct {
	s *Simulator
}

func (f *failureSubsystem) attach(k *kernel) {
	k.register(evFailure, f.handleFailure)
	k.register(evNodeUp, f.handleNodeUp)
}

func (f *failureSubsystem) name() string { return "failures" }

// SnapshotState: the failure subsystem keeps no private state — the
// undelivered trace lives in the calendar, downtime holds live in the
// occupancy map (downOwner entries) with their recoveries queued as
// evNodeUp events.
func (f *failureSubsystem) SnapshotState() (json.RawMessage, error) { return nil, nil }

func (f *failureSubsystem) RestoreState(json.RawMessage) error { return nil }

func (f *failureSubsystem) handleFailure(e event) error {
	s := f.s
	if s.pending == 0 {
		return nil
	}
	s.result.FailureEvents++
	s.met.failures.Inc()
	owner := s.grid.OwnerAt(e.node)
	s.logEvent("failure", job.ID(max(owner, 0)), e.node, nil)
	var failSeq uint64
	if s.cfg.Trace != nil { // guard: the variadic fields allocate
		failSeq = s.traceSim("failure", trace.Fint("node", int64(e.node)))
	}
	if owner == downOwner {
		return nil // node already held down; the failure is absorbed
	}
	if owner > 0 {
		if err := f.kill(job.ID(owner), failSeq); err != nil {
			return err
		}
	}
	if s.cfg.Downtime > 0 && s.grid.NodeFree(e.node) {
		p := torus.Partition{Base: s.cfg.Geometry.CoordOf(e.node), Shape: torus.Shape{X: 1, Y: 1, Z: 1}}
		if err := s.grid.Allocate(p, downOwner); err != nil {
			return fmt.Errorf("sim: downtime hold: %w", err)
		}
		s.k.push(event{time: s.k.now + s.cfg.Downtime, kind: evNodeUp, node: e.node})
	}
	if owner > 0 || s.cfg.Downtime > 0 {
		if err := s.schedule(); err != nil {
			return err
		}
	}
	return s.observe()
}

// kill terminates the run of a job hit by a failure and requeues it.
// cause is the trace sequence of the failure record that delivered the
// fault, linking the kill (and the requeue behind it) to its origin.
func (f *failureSubsystem) kill(id job.ID, cause uint64) error {
	s := f.s
	r, ok := s.running[id]
	if !ok {
		return fmt.Errorf("sim: failure killed job %d which is not running", id)
	}
	s.result.JobKills++
	s.nKills++
	s.met.kills.Inc()
	s.met.restarts.Inc()
	if err := s.grid.Release(r.part, int64(id)); err != nil {
		return fmt.Errorf("sim: kill: %w", err)
	}
	p := s.progress[id]
	// Occupancy spent in this run that produced no retained work:
	// everything except the checkpointed progress gained in this run.
	gained := p.savedWork - r.savedAtStart
	wasted := s.k.now - r.start - gained
	if wasted < 0 {
		wasted = 0
	}
	p.lostWork += float64(r.part.Size()) * wasted
	p.restarts++
	s.logEvent("kill", id, 0, &r.part)
	if s.cfg.Trace != nil {
		killSeq := s.traceJob("kill", id, cause,
			trace.F("partition", r.part.String()),
			trace.Num("lost_work", float64(r.part.Size())*wasted))
		p.lastSeq = s.traceJob("requeue", id, killSeq)
	}
	// Removing the run state invalidates this run's pending finish and
	// checkpoint events: their epoch can never match a future run.
	delete(s.running, id)
	s.queue.Push(r.job) // original arrival time: regains FCFS priority
	s.runFree = append(s.runFree, r)
	return nil
}

func (f *failureSubsystem) handleNodeUp(e event) error {
	s := f.s
	p := torus.Partition{Base: s.cfg.Geometry.CoordOf(e.node), Shape: torus.Shape{X: 1, Y: 1, Z: 1}}
	if err := s.grid.Release(p, downOwner); err != nil {
		return fmt.Errorf("sim: node up: %w", err)
	}
	s.logEvent("nodeup", 0, e.node, nil)
	if s.cfg.Trace != nil {
		s.traceSim("nodeup", trace.Fint("node", int64(e.node)))
	}
	if err := s.schedule(); err != nil {
		return err
	}
	return s.observe()
}

// ---------------------------------------------------------------------
// Checkpointing: the Section 8 extension.

// checkpointSubsystem owns the checkpoint calendar: it schedules
// checkpoint (and policy re-poll) events for running jobs, charges the
// checkpoint overhead, banks saved work, and charges the restore
// penalty when a restarted job resumes from a checkpoint. A nil config
// keeps every hook a no-op, matching the paper's main runs.
type checkpointSubsystem struct {
	s   *Simulator
	cfg *checkpoint.Config
}

func (c *checkpointSubsystem) attach(k *kernel) {
	k.register(evCheckpoint, c.handleCheckpoint)
	k.register(evCkptPoll, c.handlePoll)
}

func (c *checkpointSubsystem) name() string { return "checkpoint" }

// SnapshotState delegates to the policy when it carries mutable per-run
// state (checkpoint.Stateful — the prediction-triggered policy's
// per-job trigger throttle). Banked saved work lives in jobProgress and
// pending checkpoints in the calendar, so stateless policies serialize
// nothing.
func (c *checkpointSubsystem) SnapshotState() (json.RawMessage, error) {
	if c.cfg == nil {
		return nil, nil
	}
	sp, ok := c.cfg.Policy.(checkpoint.Stateful)
	if !ok {
		return nil, nil
	}
	b, err := sp.StateJSON()
	if err != nil {
		return nil, fmt.Errorf("sim: checkpoint snapshot: %w", err)
	}
	return b, nil
}

// RestoreState feeds the captured policy state back. A branch that
// swapped to a stateless policy (or disabled checkpointing) drops the
// payload: the new policy starts from its own zero state, which is the
// defined branch semantics.
func (c *checkpointSubsystem) RestoreState(data json.RawMessage) error {
	if data == nil || c.cfg == nil {
		return nil
	}
	sp, ok := c.cfg.Policy.(checkpoint.Stateful)
	if !ok {
		return nil
	}
	if err := sp.RestoreJSON(data); err != nil {
		return fmt.Errorf("sim: checkpoint restore: %w", err)
	}
	return nil
}

func (c *checkpointSubsystem) handleCheckpoint(e event) error {
	s := c.s
	r, ok := s.running[e.jobID]
	if !ok || r.epoch != e.epoch || c.cfg == nil {
		return nil // stale
	}
	p := s.progress[e.jobID]
	// Work completed in this run up to now (checkpoint overheads and
	// the restart penalty do not produce work).
	done := (s.k.now - r.start) - r.overheadSoFar - r.restartPenaltyPaid
	if done < 0 {
		done = 0
	}
	p.savedWork = r.savedAtStart + done
	if p.savedWork > r.job.Actual {
		p.savedWork = r.job.Actual
	}
	s.result.Checkpoints++
	s.met.checkpoints.Inc()
	s.logEvent("checkpoint", e.jobID, 0, &r.part)
	if s.cfg.Trace != nil {
		p.lastSeq = s.traceJob("checkpoint", e.jobID, p.lastSeq,
			trace.Num("saved_work", p.savedWork))
	}

	// The checkpoint itself costs Overhead: completion slips, and the
	// finish event is reissued under a fresh epoch.
	over := c.cfg.Overhead
	r.overheadSoFar += over
	r.finishTime += over
	r.expFinish += over
	r.epoch = p.nextEpoch
	p.nextEpoch++
	s.k.push(event{time: r.finishTime, kind: evFinish, jobID: e.jobID, epoch: r.epoch})
	c.scheduleNext(r)
	return nil
}

// handlePoll re-consults the checkpoint policy for a running job.
func (c *checkpointSubsystem) handlePoll(e event) error {
	r, ok := c.s.running[e.jobID]
	if !ok || r.epoch != e.epoch || c.cfg == nil {
		return nil // stale
	}
	c.scheduleNext(r)
	return nil
}

// scheduleNext consults the policy for the job's next checkpoint and
// enqueues it. If the policy has nothing scheduled and a poll interval
// is configured, a re-poll is enqueued instead so prediction-triggered
// policies see the sliding horizon.
func (c *checkpointSubsystem) scheduleNext(r *runState) {
	if c.cfg == nil {
		return
	}
	s := c.s
	nodes := s.cfg.Geometry.Nodes(r.part)
	if t, ok := c.cfg.Policy.Next(int64(r.job.ID), s.k.now, r.expFinish, nodes); ok {
		s.k.push(event{time: t, kind: evCheckpoint, jobID: r.job.ID, epoch: r.epoch})
		return
	}
	if poll := c.cfg.PollInterval; poll > 0 && s.k.now+poll < r.expFinish {
		s.k.push(event{time: s.k.now + poll, kind: evCkptPoll, jobID: r.job.ID, epoch: r.epoch})
	}
}

// onJobStart schedules the first checkpoint of a fresh run.
func (c *checkpointSubsystem) onJobStart(r *runState) { c.scheduleNext(r) }

// startPenalty charges the restore cost when a job restarts from a
// checkpoint: only a run that has banked saved work pays it.
func (c *checkpointSubsystem) startPenalty(p *jobProgress) float64 {
	if c.cfg == nil || p.savedWork <= 0 {
		return 0
	}
	return c.cfg.RestartPenalty
}

// ---------------------------------------------------------------------
// Migration: the scheduler's compaction pass at job completion.

// migrationSubsystem re-places running jobs after a completion when the
// scheduler's migration pass is enabled, charging the configured
// checkpoint-and-restart cost per move. It owns no event kinds — it
// rides the finish hook — but registering it as a subsystem keeps all
// cross-cutting mechanisms in one wiring list.
type migrationSubsystem struct {
	s *Simulator
}

func (m *migrationSubsystem) attach(*kernel) {}

func (m *migrationSubsystem) name() string { return "migration" }

// SnapshotState: migration is stateless — it re-derives moves from the
// machine state at every finish.
func (m *migrationSubsystem) SnapshotState() (json.RawMessage, error) { return nil, nil }

func (m *migrationSubsystem) RestoreState(json.RawMessage) error { return nil }

// afterFinish runs the scheduler's compaction pass and applies the
// moves; it fires between the completed job's accounting and the
// scheduler pass that refills the machine.
func (m *migrationSubsystem) afterFinish() error {
	s := m.s
	if !s.cfg.Scheduler.Config().Migration {
		return nil
	}
	list := s.runningList()
	if len(list) == 0 {
		return nil
	}
	moves, err := s.cfg.Scheduler.Migrate(s.grid, list)
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	for _, mv := range moves {
		r := s.running[list[mv.JobIndex].Job.ID]
		r.part = mv.To
		s.result.Migrations++
		s.met.migrations.Inc()
		if cost := s.cfg.MigrationCost; cost > 0 {
			// The move checkpoints and restarts the job: completion
			// slips and the pause produces no work. The pending finish
			// event is reissued under a fresh epoch.
			p := s.progress[r.job.ID]
			r.overheadSoFar += cost
			r.finishTime += cost
			r.expFinish += cost
			r.epoch = p.nextEpoch
			p.nextEpoch++
			s.k.push(event{time: r.finishTime, kind: evFinish, jobID: r.job.ID, epoch: r.epoch})
		}
		s.logEvent("migrate", r.job.ID, 0, &mv.To)
		if s.cfg.Trace != nil {
			p := s.progress[r.job.ID]
			p.lastSeq = s.traceJob("migrate", r.job.ID, s.lastFinishSeq,
				trace.F("to", mv.To.String()), trace.Num("cost", s.cfg.MigrationCost))
		}
	}
	return nil
}
