package sim

import (
	"fmt"

	"bgsched/internal/job"
	"bgsched/internal/torus"
)

// InvariantError reports a conservation invariant violated during a run
// with Config.CheckInvariants set. It names the check and carries the
// simulation time at which the violation was observed, so a failing
// sweep point can be reproduced by replaying the same configuration.
type InvariantError struct {
	Time   float64 // simulation time of the violating event
	Check  string  // which invariant failed (e.g. "free-count")
	Detail string  // human-readable specifics
}

// Error implements error.
func (e *InvariantError) Error() string {
	return fmt.Sprintf("sim: invariant %q violated at t=%g: %s", e.Check, e.Time, e.Detail)
}

// verifyInvariants validates machine-state conservation after one
// event. It is pure observation: the grid and run state are never
// modified. The checks, in order:
//
//  1. ownership: every allocated node belongs to a currently running
//     job or to a configured downtime hold — probe markers must never
//     escape a policy evaluation;
//  2. free-count: the grid's cached free count is non-negative and
//     equals a fresh scan of the occupancy map;
//  3. partition-ownership: each running job owns every node of its
//     recorded partition (exclusive per-node owners make this also a
//     pairwise non-overlap proof);
//  4. node-conservation: free + held-down + running-partition nodes
//     account for the whole machine;
//  5. start-conservation: starts = finishes + kills + currently
//     running (no run state is ever leaked or double-counted).
//
// Event-time monotonicity, the remaining invariant, is enforced
// unconditionally by the Run loop itself.
func (s *Simulator) verifyInvariants() error {
	gr := s.grid
	g := s.cfg.Geometry
	n := g.N()

	free, down := 0, 0
	for id := 0; id < n; id++ {
		switch owner := gr.OwnerAt(id); {
		case owner == torus.FreeOwner:
			free++
		case owner == downOwner:
			down++
		case owner > 0:
			if _, ok := s.running[job.ID(owner)]; !ok {
				return &InvariantError{Time: s.k.now, Check: "ownership",
					Detail: fmt.Sprintf("node %d owned by job %d which is not running", id, owner)}
			}
		default:
			return &InvariantError{Time: s.k.now, Check: "ownership",
				Detail: fmt.Sprintf("node %d held by reserved owner %d", id, owner)}
		}
	}
	if fc := gr.FreeCount(); fc < 0 || fc != free {
		return &InvariantError{Time: s.k.now, Check: "free-count",
			Detail: fmt.Sprintf("cached free count %d, occupancy scan found %d", fc, free)}
	}

	claimed := 0
	for id, r := range s.running {
		bad := -1
		g.ForEachNode(r.part, func(node int) bool {
			if gr.OwnerAt(node) != int64(id) {
				bad = node
				return false
			}
			return true
		})
		if bad >= 0 {
			return &InvariantError{Time: s.k.now, Check: "partition-ownership",
				Detail: fmt.Sprintf("job %d's partition %v includes node %d owned by %d",
					id, r.part, bad, gr.OwnerAt(bad))}
		}
		claimed += r.part.Size()
	}
	if free+down+claimed != n {
		return &InvariantError{Time: s.k.now, Check: "node-conservation",
			Detail: fmt.Sprintf("free %d + down %d + running %d != machine %d", free, down, claimed, n)}
	}

	if s.nStarts != s.nFinishes+s.nKills+len(s.running) {
		return &InvariantError{Time: s.k.now, Check: "start-conservation",
			Detail: fmt.Sprintf("starts %d != finishes %d + kills %d + running %d",
				s.nStarts, s.nFinishes, s.nKills, len(s.running))}
	}
	return nil
}
