package sim

import (
	"bgsched/internal/job"
	"bgsched/internal/trace"
)

// Causal trace emission. Every job carries its lifecycle as a chain of
// trace records — submit → allocate → start → [checkpoint | kill →
// requeue]* → finish — linked through jobProgress.lastSeq, so the chain
// behind any outcome can be walked backwards from the finish record.
// Cross-cutting events (failures, node recoveries) are "sim"-category
// records; a kill's Cause points at the failure record that delivered
// the fault rather than the job's own previous record, which is exactly
// the paper's causal story (a fault cascades into a kill, a requeue,
// and lost work).
//
// All records carry simulated time only, so for a fixed configuration
// the emitted bytes are identical whatever the build cache state or
// partition finder — the golden-trace test pins this.

// traceJob emits one lifecycle record for a job and returns its
// sequence number for chaining. The nil check keeps the untraced hot
// path to a single branch, before any field construction.
func (s *Simulator) traceJob(name string, id job.ID, cause uint64, fields ...trace.Field) uint64 {
	if s.cfg.Trace == nil {
		return 0
	}
	return s.cfg.Trace.Emit(trace.Rec{
		Cat: "job", Name: name, T: s.k.now, Job: int64(id), Cause: cause, Fields: fields,
	})
}

// traceSim emits one machine-level record (failure delivery, node
// recovery) not attributed to a job.
func (s *Simulator) traceSim(name string, fields ...trace.Field) uint64 {
	if s.cfg.Trace == nil {
		return 0
	}
	return s.cfg.Trace.Emit(trace.Rec{Cat: "sim", Name: name, T: s.k.now, Fields: fields})
}

// flightTap adapts kernel dispatches into flight-recorder entries; the
// kernel calls it blindly, keeping the mechanism out of the event loop.
func (s *Simulator) flightTap(e event) {
	s.cfg.Flight.Record(trace.FlightEvent{
		T:     e.time,
		Seq:   e.seq,
		Kind:  e.kind.String(),
		Job:   int64(e.jobID),
		Epoch: e.epoch,
		Node:  e.node,
	})
}
