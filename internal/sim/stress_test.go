package sim

import (
	"math"
	"math/rand"
	"testing"

	"bgsched/internal/checkpoint"
	"bgsched/internal/core"
	"bgsched/internal/failure"
	"bgsched/internal/job"
	"bgsched/internal/predict"
	"bgsched/internal/torus"
)

// TestSimStressInvariants runs many small randomized simulations across
// scheduler/backfill/migration/checkpoint configurations and checks
// global invariants on every one.
func TestSimStressInvariants(t *testing.T) {
	g := torus.BlueGeneL()
	rng := rand.New(rand.NewSource(77))

	for trial := 0; trial < 25; trial++ {
		// Random workload.
		nJobs := 20 + rng.Intn(60)
		jobs := make([]*job.Job, nJobs)
		arr := 0.0
		for i := range jobs {
			arr += rng.ExpFloat64() * 300
			size := 1 + rng.Intn(128)
			alloc, ok := g.RoundUpFeasible(size)
			if !ok {
				t.Fatal("size not feasible")
			}
			jobs[i] = &job.Job{
				ID: job.ID(i + 1), Arrival: arr, Size: size, AllocSize: alloc,
				Estimate: 10 + rng.Float64()*3000, Actual: 10 + rng.Float64()*3000,
			}
			jobs[i].Actual = jobs[i].Estimate // paper mode
		}
		// Random failures across ~the workload span.
		var trace failure.Trace
		nFail := rng.Intn(40)
		for i := 0; i < nFail; i++ {
			trace = append(trace, failure.Event{
				Time: rng.Float64() * (arr + 5000),
				Node: rng.Intn(g.N()),
			})
		}
		trace.Sort()
		ix := failure.NewIndex(g.N(), trace)

		// Random configuration.
		var policy core.Policy
		switch trial % 3 {
		case 0:
			policy = core.Baseline{}
		case 1:
			policy = &core.Balancing{Prober: &predict.Balancing{Index: ix, Confidence: rng.Float64()}}
		default:
			policy = &core.TieBreak{Oracle: predict.NewTieBreak(ix, rng.Float64(), 3)}
		}
		backfills := []core.BackfillMode{core.BackfillNone, core.BackfillAggressive, core.BackfillEASY}
		sched, err := core.NewScheduler(core.Config{
			Policy:    policy,
			Backfill:  backfills[trial%len(backfills)],
			Migration: trial%2 == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Geometry:  g,
			Scheduler: sched,
			Jobs:      jobs,
			Failures:  trace,
		}
		if trial%4 == 0 {
			cfg.Downtime = rng.Float64() * 500
		}
		if trial%5 == 0 {
			cfg.Checkpoint = &checkpoint.Config{
				Policy:   &checkpoint.Periodic{Interval: 200 + rng.Float64()*1000},
				Overhead: rng.Float64() * 20,
			}
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Invariant: every job finishes exactly once.
		if len(res.Outcomes) != nJobs {
			t.Fatalf("trial %d: %d outcomes for %d jobs", trial, len(res.Outcomes), nJobs)
		}
		seen := map[job.ID]bool{}
		for _, o := range res.Outcomes {
			if seen[o.ID] {
				t.Fatalf("trial %d: job %d finished twice", trial, o.ID)
			}
			seen[o.ID] = true
			// Time sanity.
			if o.LastStart < o.Arrival || o.Finish < o.LastStart || o.FirstStart > o.LastStart {
				t.Fatalf("trial %d: job %d inconsistent times %+v", trial, o.ID, o)
			}
			// Without checkpointing the successful run takes exactly
			// Actual; with it, at least Actual.
			runLen := o.Finish - o.LastStart
			if cfg.Checkpoint == nil {
				if math.Abs(runLen-o.Actual) > 1e-6 && o.Restarts >= 0 {
					// The final run always executes the full remaining
					// work; with no checkpointing that is all of it.
					t.Fatalf("trial %d: job %d final run %.3f != actual %.3f",
						trial, o.ID, runLen, o.Actual)
				}
			} else if runLen < o.Actual-1e-6 && o.Restarts == 0 {
				t.Fatalf("trial %d: job %d ran %.3f < actual %.3f with checkpointing",
					trial, o.ID, runLen, o.Actual)
			}
			if o.Restarts == 0 && o.LostWork != 0 {
				t.Fatalf("trial %d: job %d lost work without restarts", trial, o.ID)
			}
		}
		// Invariant: capacity fractions sum to 1 and are sane.
		sum := res.Summary.Utilization + res.Summary.UnusedCapacity + res.Summary.LostCapacity
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("trial %d: capacity sum %g", trial, sum)
		}
		if res.Summary.Utilization < 0 || res.Summary.UnusedCapacity < 0 {
			t.Fatalf("trial %d: negative capacity component %+v", trial, res.Summary)
		}
		// Kills cannot exceed failure events; restarts equal kills.
		if res.JobKills > res.FailureEvents {
			t.Fatalf("trial %d: kills %d > failures %d", trial, res.JobKills, res.FailureEvents)
		}
		if res.Summary.TotalRestarts != res.JobKills {
			t.Fatalf("trial %d: restarts %d != kills %d", trial, res.Summary.TotalRestarts, res.JobKills)
		}
	}
}
