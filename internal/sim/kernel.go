package sim

import "fmt"

// handlerFunc processes one popped calendar event.
type handlerFunc func(event) error

// kernel is the deterministic discrete-event core of the simulator: a
// calendar heap ordered by (time, sequence) — so simultaneous events
// replay in exactly their insertion order — the simulation clock, and a
// dispatch table mapping each event kind to the handler its subsystem
// registered at wiring time. The kernel knows nothing about jobs,
// machines or policies; subsystems own all semantics.
type kernel struct {
	queue    eventQueue
	now      float64
	handlers [evKindCount]handlerFunc

	// dispatched counts events popped and dispatched since the start of
	// the run. It survives snapshot/restore, so "event seq N" names the
	// same boundary in an uninterrupted run and in any prefix+continue
	// decomposition of it.
	dispatched int64

	// tap, when set, observes every dispatched event before its handler
	// runs (the flight recorder's hook). Pure observation: the kernel
	// stays mechanism-free, and a crashing handler has already had its
	// triggering event recorded.
	tap func(event)
}

// register installs the handler for one event kind. Each kind has
// exactly one owner; a second registration is a wiring bug.
func (k *kernel) register(kind eventKind, h handlerFunc) {
	if kind < 0 || int(kind) >= len(k.handlers) {
		panic(fmt.Sprintf("sim: register: event kind %d out of range", int(kind)))
	}
	if k.handlers[kind] != nil {
		panic(fmt.Sprintf("sim: handler for %v registered twice", kind))
	}
	k.handlers[kind] = h
}

// push enqueues an event; the queue stamps its sequence number, so two
// events at the same timestamp pop in push order.
func (k *kernel) push(e event) { k.queue.push(e) }

// pending returns the number of queued events.
func (k *kernel) pending() int { return k.queue.Len() }

// step pops the earliest event, advances the clock and dispatches to
// the registered handler. Time must be monotone: an event behind the
// clock aborts the run, since it means a subsystem scheduled into the
// past.
func (k *kernel) step() error {
	e := k.queue.pop()
	if e.time < k.now {
		return fmt.Errorf("sim: event time went backwards: %g after %g", e.time, k.now)
	}
	k.now = e.time
	if e.kind < 0 || int(e.kind) >= len(k.handlers) || k.handlers[e.kind] == nil {
		return fmt.Errorf("sim: unknown event kind %d", int(e.kind))
	}
	k.dispatched++
	if k.tap != nil {
		k.tap(e)
	}
	return k.handlers[e.kind](e)
}
