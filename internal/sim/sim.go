// Package sim is the event-driven simulator of Section 6.1: it replays
// a job log against a failure trace on the simulated BG/L torus,
// invoking the configured scheduler at every arrival, completion and
// failure-induced restart, and produces the paper's timing and
// capacity metrics.
//
// Simulation semantics follow the paper:
//
//   - jobs scheduled for execution start immediately (no dispatch
//     latency);
//   - failures are transient: the node is instantly reusable, but the
//     job running on it loses all unsaved work and re-enters the queue
//     at its original FCFS position;
//   - without checkpointing (the paper's main configuration) "unsaved"
//     means everything: the job restarts from the beginning.
//
// Extensions beyond the paper's main runs, all off by default:
// per-failure node downtime, and checkpointing with periodic or
// prediction-triggered policies (Section 8 future work).
package sim

import (
	"context"
	"fmt"
	"io"
	"sort"

	"bgsched/internal/checkpoint"
	"bgsched/internal/core"
	"bgsched/internal/failure"
	"bgsched/internal/job"
	"bgsched/internal/metrics"
	"bgsched/internal/telemetry"
	"bgsched/internal/torus"
)

// downOwner marks nodes held unavailable during a configured downtime.
const downOwner int64 = -2

// Config assembles one simulation run.
type Config struct {
	Geometry  torus.Geometry
	Scheduler *core.Scheduler
	Jobs      []*job.Job
	Failures  failure.Trace

	// Downtime holds a failed node out of service for this many
	// seconds. The paper's model uses 0 (transient faults, instant
	// recovery); Section 7.1 discusses the consequences.
	Downtime float64

	// MigrationCost charges each migrated job this many seconds of
	// checkpoint-and-restart delay. The paper's model migrates for
	// free (0); a real BG/L migration checkpoints the job, moves it,
	// and restarts it.
	MigrationCost float64

	// Checkpoint enables the Section 8 checkpointing extension.
	Checkpoint *checkpoint.Config

	// RecordTimeline samples machine state at every event into
	// Result.Timeline, for RenderTimeline and debugging.
	RecordTimeline bool

	// CheckInvariants validates machine-state conservation after every
	// event (see verifyInvariants in invariants.go): free-node count
	// consistent with the occupancy map, running partitions exclusively
	// owned and non-overlapping, whole-machine node conservation, and
	// starts = finishes + kills + running. A violation aborts the run
	// with an *InvariantError. Costs one occupancy scan per event;
	// intended for debugging and hardened sweeps, off by default.
	CheckInvariants bool

	// EventLog, when non-nil, receives one JSON object per simulation
	// state change (see LoggedEvent / ReadEventLog).
	EventLog io.Writer

	// Telemetry, when non-nil, receives the run's counters, gauges and
	// per-job distributions ("sim.*" instruments; see simMetrics). A
	// nil registry disables collection with no other behaviour change.
	Telemetry *telemetry.Registry
}

// simMetrics holds the simulator's instruments, resolved once in New.
// With a nil registry every handle is nil and recording is a no-op.
type simMetrics struct {
	events      *telemetry.Counter // sim.events: simulation events processed
	arrivals    *telemetry.Counter // sim.arrivals
	starts      *telemetry.Counter // sim.starts: job (re)starts dispatched
	finishes    *telemetry.Counter // sim.finishes
	failures    *telemetry.Counter // sim.failures: failure events delivered
	kills       *telemetry.Counter // sim.kills: failures that killed a running job
	restarts    *telemetry.Counter // sim.restarts: killed jobs requeued for re-execution
	checkpoints *telemetry.Counter // sim.checkpoints
	migrations  *telemetry.Counter // sim.migrations
	backfills   *telemetry.Counter // sim.backfills: starts ahead of the queue head

	freeNodes   *telemetry.Gauge // sim.free_nodes, sampled at every event
	queueDepth  *telemetry.Gauge // sim.queue_depth, sampled at every event
	runningJobs *telemetry.Gauge // sim.running_jobs, sampled at every event

	wait     *telemetry.Histogram // sim.job.wait_seconds (paper t_w, per finished job)
	response *telemetry.Histogram // sim.job.response_seconds (t_r)
	slowdown *telemetry.Histogram // sim.job.bounded_slowdown
}

func newSimMetrics(reg *telemetry.Registry) simMetrics {
	return simMetrics{
		events:      reg.Counter("sim.events"),
		arrivals:    reg.Counter("sim.arrivals"),
		starts:      reg.Counter("sim.starts"),
		finishes:    reg.Counter("sim.finishes"),
		failures:    reg.Counter("sim.failures"),
		kills:       reg.Counter("sim.kills"),
		restarts:    reg.Counter("sim.restarts"),
		checkpoints: reg.Counter("sim.checkpoints"),
		migrations:  reg.Counter("sim.migrations"),
		backfills:   reg.Counter("sim.backfills"),
		freeNodes:   reg.Gauge("sim.free_nodes"),
		queueDepth:  reg.Gauge("sim.queue_depth"),
		runningJobs: reg.Gauge("sim.running_jobs"),
		wait:        reg.Histogram("sim.job.wait_seconds"),
		response:    reg.Histogram("sim.job.response_seconds"),
		slowdown:    reg.Histogram("sim.job.bounded_slowdown"),
	}
}

// Result is the outcome of a run.
type Result struct {
	Outcomes []metrics.Outcome
	Summary  metrics.Summary

	FailureEvents int // failure events delivered within the run
	JobKills      int // failures that killed a running job
	Migrations    int // migration moves performed
	Checkpoints   int // checkpoints taken
	Backfills     int // jobs started ahead of the queue head

	// Timeline holds machine-state samples when Config.RecordTimeline
	// is set; nil otherwise.
	Timeline []TimelinePoint
}

// runState is the mutable execution state of one job.
type runState struct {
	job   *job.Job
	part  torus.Partition
	start float64
	epoch int
	// finishTime is the absolute completion time under the current
	// schedule (including checkpoint overheads incurred so far).
	finishTime float64
	// expFinish is the scheduler-visible estimated completion.
	expFinish float64
	// overheadSoFar is checkpoint overhead accumulated in this run.
	overheadSoFar float64
	// savedAtStart is the checkpointed work the run began with.
	savedAtStart float64
	// restartPenaltyPaid is the restore cost charged at this start.
	restartPenaltyPaid float64
}

// jobProgress is per-job state that survives restarts.
type jobProgress struct {
	firstStart float64
	started    bool
	restarts   int
	lostWork   float64
	savedWork  float64 // checkpointed work, seconds of computation
	lastStart  float64
	// nextEpoch issues globally unique epochs for this job's finish and
	// checkpoint events, across restarts and checkpoint reschedules.
	nextEpoch int
}

// Simulator holds the state of one run. Create with New, execute with
// Run; a Simulator is single-use.
type Simulator struct {
	cfg      Config
	grid     *torus.Grid
	queue    *job.Queue
	events   eventQueue
	running  map[job.ID]*runState
	progress map[job.ID]*jobProgress
	jobsByID map[job.ID]*job.Job
	elog     *eventLogger
	met      simMetrics
	tracker  metrics.CapacityTracker
	outcomes []metrics.Outcome
	result   Result
	now      float64
	pending  int // jobs not yet finished

	// Conservation counters for the invariant guard: every start must
	// eventually be matched by a finish or a kill.
	nStarts   int
	nFinishes int
	nKills    int
}

// New validates the configuration and prepares a simulator.
func New(cfg Config) (*Simulator, error) {
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("sim: Scheduler is required")
	}
	if len(cfg.Jobs) == 0 {
		return nil, fmt.Errorf("sim: no jobs")
	}
	if cfg.Downtime < 0 {
		return nil, fmt.Errorf("sim: negative downtime %g", cfg.Downtime)
	}
	if cfg.MigrationCost < 0 {
		return nil, fmt.Errorf("sim: negative migration cost %g", cfg.MigrationCost)
	}
	if cfg.Checkpoint != nil {
		if err := cfg.Checkpoint.Validate(); err != nil {
			return nil, err
		}
	}
	n := cfg.Geometry.N()
	if n == 0 {
		return nil, fmt.Errorf("sim: empty geometry")
	}
	seen := make(map[job.ID]bool, len(cfg.Jobs))
	for _, j := range cfg.Jobs {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		if j.AllocSize > n {
			return nil, fmt.Errorf("sim: %v cannot fit on %d-node machine", j, n)
		}
		if seen[j.ID] {
			return nil, fmt.Errorf("sim: duplicate job id %d", j.ID)
		}
		seen[j.ID] = true
	}
	if err := cfg.Failures.Validate(n); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	s := &Simulator{
		cfg:      cfg,
		elog:     newEventLogger(cfg.EventLog),
		met:      newSimMetrics(cfg.Telemetry),
		grid:     torus.NewGrid(cfg.Geometry),
		queue:    job.NewQueue(),
		running:  make(map[job.ID]*runState),
		progress: make(map[job.ID]*jobProgress),
		pending:  len(cfg.Jobs),
	}
	// Arrivals in time order, then failures: the sequence numbers make
	// simultaneous events deterministic.
	jobs := make([]*job.Job, len(cfg.Jobs))
	copy(jobs, cfg.Jobs)
	sort.Slice(jobs, func(i, k int) bool {
		if jobs[i].Arrival != jobs[k].Arrival {
			return jobs[i].Arrival < jobs[k].Arrival
		}
		return jobs[i].ID < jobs[k].ID
	})
	for _, j := range jobs {
		s.events.push(event{time: j.Arrival, kind: evArrival, jobID: j.ID})
		s.progress[j.ID] = &jobProgress{}
	}
	for _, f := range cfg.Failures {
		s.events.push(event{time: f.Time, kind: evFailure, node: f.Node})
	}
	s.jobsByID = make(map[job.ID]*job.Job, len(jobs))
	for _, j := range jobs {
		s.jobsByID[j.ID] = j
	}
	return s, nil
}

// Run executes the simulation to completion and returns the result.
func (s *Simulator) Run() (Result, error) {
	return s.RunContext(context.Background())
}

// cancelCheckStride is how many events RunContext processes between
// context polls. Event handling is microseconds; checking every event
// would put a mutexed ctx.Err() on the hot path for no responsiveness
// gain.
const cancelCheckStride = 256

// RunContext executes the simulation to completion, aborting with
// ctx.Err() if the context is cancelled mid-run. Cancellation is
// checked between events (every cancelCheckStride of them), so a
// cancelled run returns promptly and never leaves a handler half
// applied.
func (s *Simulator) RunContext(ctx context.Context) (Result, error) {
	if err := s.observe(); err != nil {
		return Result{}, err
	}
	for processed := 0; s.pending > 0; processed++ {
		if processed%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		if s.events.Len() == 0 {
			return Result{}, fmt.Errorf("sim: deadlock at t=%g: %d jobs unfinished, no events pending",
				s.now, s.pending)
		}
		e := s.events.pop()
		if e.time < s.now {
			return Result{}, fmt.Errorf("sim: event time went backwards: %g after %g", e.time, s.now)
		}
		s.now = e.time
		s.met.events.Inc()
		var err error
		switch e.kind {
		case evArrival:
			err = s.handleArrival(e)
		case evFinish:
			err = s.handleFinish(e)
		case evFailure:
			err = s.handleFailure(e)
		case evCheckpoint:
			err = s.handleCheckpoint(e)
		case evCkptPoll:
			err = s.handleCkptPoll(e)
		case evNodeUp:
			err = s.handleNodeUp(e)
		default:
			err = fmt.Errorf("sim: unknown event kind %d", int(e.kind))
		}
		if err == nil && s.cfg.CheckInvariants {
			err = s.verifyInvariants()
		}
		if err != nil {
			return Result{}, err
		}
	}
	unused, err := s.tracker.CloseAt(s.now)
	if err != nil {
		return Result{}, err
	}
	if err := s.elog.flushErr(); err != nil {
		return Result{}, err
	}
	summary, err := metrics.Summarize(s.outcomes, s.cfg.Geometry.N(), unused)
	if err != nil {
		return Result{}, err
	}
	s.result.Outcomes = s.outcomes
	s.result.Summary = summary
	return s.result, nil
}

// observe feeds the capacity tracker with the current (f, q) state and
// refreshes the machine-state gauges.
func (s *Simulator) observe() error {
	s.recordTimeline()
	s.met.freeNodes.Set(float64(s.grid.FreeCount()))
	s.met.queueDepth.Set(float64(s.queue.Len()))
	s.met.runningJobs.Set(float64(len(s.running)))
	return s.tracker.Observe(s.now, s.grid.FreeCount(), s.queue.DemandNodes())
}

func (s *Simulator) handleArrival(e event) error {
	j := s.jobsByID[e.jobID]
	if j == nil {
		return fmt.Errorf("sim: arrival for unknown job %d", e.jobID)
	}
	s.queue.Push(j)
	s.met.arrivals.Inc()
	s.logEvent("arrival", j.ID, 0, nil)
	if err := s.schedule(); err != nil {
		return err
	}
	return s.observe()
}

func (s *Simulator) handleFinish(e event) error {
	r, ok := s.running[e.jobID]
	if !ok || r.epoch != e.epoch {
		return nil // stale: the run was killed or rescheduled
	}
	if err := s.grid.Release(r.part, int64(e.jobID)); err != nil {
		return fmt.Errorf("sim: finish: %w", err)
	}
	delete(s.running, e.jobID)
	s.nFinishes++
	s.met.finishes.Inc()
	s.logEvent("finish", e.jobID, 0, &r.part)
	p := s.progress[e.jobID]
	wait := r.start - r.job.Arrival
	response := s.now - r.job.Arrival
	s.met.wait.Observe(wait)
	s.met.response.Observe(response)
	s.met.slowdown.Observe(metrics.BoundedSlowdown(response, r.job.Estimate))
	s.outcomes = append(s.outcomes, metrics.Outcome{
		ID:         e.jobID,
		Arrival:    r.job.Arrival,
		FirstStart: p.firstStart,
		LastStart:  r.start,
		Finish:     s.now,
		Estimate:   r.job.Estimate,
		Actual:     r.job.Actual,
		Size:       r.job.Size,
		AllocSize:  r.job.AllocSize,
		Restarts:   p.restarts,
		LostWork:   p.lostWork,
	})
	s.pending--

	if s.cfg.Scheduler.Config().Migration {
		if err := s.migrate(); err != nil {
			return err
		}
	}
	if err := s.schedule(); err != nil {
		return err
	}
	return s.observe()
}

func (s *Simulator) handleFailure(e event) error {
	if s.pending == 0 {
		return nil
	}
	s.result.FailureEvents++
	s.met.failures.Inc()
	owner := s.grid.OwnerAt(e.node)
	s.logEvent("failure", job.ID(max64(owner, 0)), e.node, nil)
	if owner == downOwner {
		return nil // node already held down; the failure is absorbed
	}
	if owner > 0 {
		if err := s.kill(job.ID(owner)); err != nil {
			return err
		}
	}
	if s.cfg.Downtime > 0 && s.grid.NodeFree(e.node) {
		p := torus.Partition{Base: s.cfg.Geometry.CoordOf(e.node), Shape: torus.Shape{X: 1, Y: 1, Z: 1}}
		if err := s.grid.Allocate(p, downOwner); err != nil {
			return fmt.Errorf("sim: downtime hold: %w", err)
		}
		s.events.push(event{time: s.now + s.cfg.Downtime, kind: evNodeUp, node: e.node})
	}
	if owner > 0 || s.cfg.Downtime > 0 {
		if err := s.schedule(); err != nil {
			return err
		}
	}
	return s.observe()
}

// kill terminates the run of a job hit by a failure and requeues it.
func (s *Simulator) kill(id job.ID) error {
	r, ok := s.running[id]
	if !ok {
		return fmt.Errorf("sim: failure killed job %d which is not running", id)
	}
	s.result.JobKills++
	s.nKills++
	s.met.kills.Inc()
	s.met.restarts.Inc()
	if err := s.grid.Release(r.part, int64(id)); err != nil {
		return fmt.Errorf("sim: kill: %w", err)
	}
	p := s.progress[id]
	// Occupancy spent in this run that produced no retained work:
	// everything except the checkpointed progress gained in this run.
	gained := p.savedWork - r.savedAtStart
	wasted := s.now - r.start - gained
	if wasted < 0 {
		wasted = 0
	}
	p.lostWork += float64(r.part.Size()) * wasted
	p.restarts++
	s.logEvent("kill", id, 0, &r.part)
	// Removing the run state invalidates this run's pending finish and
	// checkpoint events: their epoch can never match a future run.
	delete(s.running, id)
	s.queue.Push(r.job) // original arrival time: regains FCFS priority
	return nil
}

func (s *Simulator) handleNodeUp(e event) error {
	p := torus.Partition{Base: s.cfg.Geometry.CoordOf(e.node), Shape: torus.Shape{X: 1, Y: 1, Z: 1}}
	if err := s.grid.Release(p, downOwner); err != nil {
		return fmt.Errorf("sim: node up: %w", err)
	}
	s.logEvent("nodeup", 0, e.node, nil)
	if err := s.schedule(); err != nil {
		return err
	}
	return s.observe()
}

func (s *Simulator) handleCheckpoint(e event) error {
	r, ok := s.running[e.jobID]
	if !ok || r.epoch != e.epoch || s.cfg.Checkpoint == nil {
		return nil // stale
	}
	p := s.progress[e.jobID]
	// Work completed in this run up to now (checkpoint overheads and
	// the restart penalty do not produce work).
	done := (s.now - r.start) - r.overheadSoFar - r.restartPenaltyPaid
	if done < 0 {
		done = 0
	}
	p.savedWork = r.savedAtStart + done
	if p.savedWork > r.job.Actual {
		p.savedWork = r.job.Actual
	}
	s.result.Checkpoints++
	s.met.checkpoints.Inc()
	s.logEvent("checkpoint", e.jobID, 0, &r.part)

	// The checkpoint itself costs Overhead: completion slips, and the
	// finish event is reissued under a fresh epoch.
	over := s.cfg.Checkpoint.Overhead
	r.overheadSoFar += over
	r.finishTime += over
	r.expFinish += over
	r.epoch = p.nextEpoch
	p.nextEpoch++
	s.events.push(event{time: r.finishTime, kind: evFinish, jobID: e.jobID, epoch: r.epoch})
	s.scheduleNextCheckpoint(r)
	return nil
}

// handleCkptPoll re-consults the checkpoint policy for a running job.
func (s *Simulator) handleCkptPoll(e event) error {
	r, ok := s.running[e.jobID]
	if !ok || r.epoch != e.epoch || s.cfg.Checkpoint == nil {
		return nil // stale
	}
	s.scheduleNextCheckpoint(r)
	return nil
}

// scheduleNextCheckpoint consults the policy for the job's next
// checkpoint and enqueues it. If the policy has nothing scheduled and a
// poll interval is configured, a re-poll is enqueued instead so
// prediction-triggered policies see the sliding horizon.
func (s *Simulator) scheduleNextCheckpoint(r *runState) {
	if s.cfg.Checkpoint == nil {
		return
	}
	nodes := s.cfg.Geometry.Nodes(r.part)
	if t, ok := s.cfg.Checkpoint.Policy.Next(int64(r.job.ID), s.now, r.expFinish, nodes); ok {
		s.events.push(event{time: t, kind: evCheckpoint, jobID: r.job.ID, epoch: r.epoch})
		return
	}
	if poll := s.cfg.Checkpoint.PollInterval; poll > 0 && s.now+poll < r.expFinish {
		s.events.push(event{time: s.now + poll, kind: evCkptPoll, jobID: r.job.ID, epoch: r.epoch})
	}
}

// schedule invokes the scheduler and starts the jobs it selects.
func (s *Simulator) schedule() error {
	decisions, err := s.cfg.Scheduler.Schedule(s.grid, s.queue, s.runningList(), s.now)
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	for _, d := range decisions {
		s.start(d)
	}
	// Count backfills: started jobs that left an older job waiting.
	if s.queue.Len() > 0 {
		oldest := s.queue.Peek()
		for _, d := range decisions {
			if d.Job.Arrival > oldest.Arrival ||
				(d.Job.Arrival == oldest.Arrival && d.Job.ID > oldest.ID) {
				s.result.Backfills++
				s.met.backfills.Inc()
			}
		}
	}
	return nil
}

// start activates one scheduling decision: the partition was already
// allocated by the scheduler.
func (s *Simulator) start(d core.Decision) {
	p := s.progress[d.Job.ID]
	penalty := 0.0
	if s.cfg.Checkpoint != nil && p.savedWork > 0 {
		penalty = s.cfg.Checkpoint.RestartPenalty
	}
	remainingActual := d.Job.Actual - p.savedWork
	if remainingActual < 0 {
		remainingActual = 0
	}
	remainingEst := d.Job.Estimate - p.savedWork
	if remainingEst < 1 {
		remainingEst = 1
	}
	epoch := p.nextEpoch
	p.nextEpoch++
	r := &runState{
		job:                d.Job,
		part:               d.Part,
		start:              s.now,
		epoch:              epoch,
		finishTime:         s.now + penalty + remainingActual,
		expFinish:          s.now + penalty + remainingEst,
		savedAtStart:       p.savedWork,
		restartPenaltyPaid: penalty,
	}
	s.running[d.Job.ID] = r
	if !p.started {
		p.started = true
		p.firstStart = s.now
	}
	p.lastStart = s.now
	s.nStarts++
	s.met.starts.Inc()
	s.logEvent("start", d.Job.ID, 0, &d.Part)
	s.events.push(event{time: r.finishTime, kind: evFinish, jobID: d.Job.ID, epoch: r.epoch})
	s.scheduleNextCheckpoint(r)
}

// runningList snapshots the running jobs for the scheduler, in
// deterministic job-id order.
func (s *Simulator) runningList() []core.Running {
	ids := make([]job.ID, 0, len(s.running))
	for id := range s.running {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]core.Running, 0, len(ids))
	for _, id := range ids {
		r := s.running[id]
		out = append(out, core.Running{Job: r.job, Part: r.part, Start: r.start, ExpFinish: r.expFinish})
	}
	return out
}

// migrate runs the scheduler's compaction pass and applies the moves.
func (s *Simulator) migrate() error {
	list := s.runningList()
	if len(list) == 0 {
		return nil
	}
	moves, err := s.cfg.Scheduler.Migrate(s.grid, list)
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	for _, m := range moves {
		r := s.running[list[m.JobIndex].Job.ID]
		r.part = m.To
		s.result.Migrations++
		s.met.migrations.Inc()
		if cost := s.cfg.MigrationCost; cost > 0 {
			// The move checkpoints and restarts the job: completion
			// slips and the pause produces no work. The pending finish
			// event is reissued under a fresh epoch.
			p := s.progress[r.job.ID]
			r.overheadSoFar += cost
			r.finishTime += cost
			r.expFinish += cost
			r.epoch = p.nextEpoch
			p.nextEpoch++
			s.events.push(event{time: r.finishTime, kind: evFinish, jobID: r.job.ID, epoch: r.epoch})
		}
		s.logEvent("migrate", r.job.ID, 0, &m.To)
	}
	return nil
}

// max64 clamps negative owner ids (probe/down markers) to zero for the
// event log.
func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
