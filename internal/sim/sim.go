// Package sim is the event-driven simulator of Section 6.1: it replays
// a job log against a failure trace on the simulated BG/L torus,
// invoking the configured scheduler at every arrival, completion and
// failure-induced restart, and produces the paper's timing and
// capacity metrics.
//
// Simulation semantics follow the paper:
//
//   - jobs scheduled for execution start immediately (no dispatch
//     latency);
//   - failures are transient: the node is instantly reusable, but the
//     job running on it loses all unsaved work and re-enters the queue
//     at its original FCFS position;
//   - without checkpointing (the paper's main configuration) "unsaved"
//     means everything: the job restarts from the beginning.
//
// Extensions beyond the paper's main runs, all off by default:
// per-failure node downtime, and checkpointing with periodic or
// prediction-triggered policies (Section 8 future work).
//
// Internally the simulator is a deterministic event-kernel plus
// registered subsystems: the kernel (kernel.go) owns the calendar heap,
// the clock and a per-event-kind dispatch table; each mechanism —
// failures, checkpointing, migration (subsystems.go) — registers the
// handlers and lifecycle hooks it owns at construction time. The
// Simulator itself handles only the core lifecycle (arrival, start,
// finish) and the scheduler pass.
package sim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"

	"bgsched/internal/checkpoint"
	"bgsched/internal/contention"
	"bgsched/internal/core"
	"bgsched/internal/failure"
	"bgsched/internal/job"
	"bgsched/internal/metrics"
	"bgsched/internal/telemetry"
	"bgsched/internal/torus"
	"bgsched/internal/trace"
)

// downOwner marks nodes held unavailable during a configured downtime.
const downOwner int64 = -2

// Config assembles one simulation run.
type Config struct {
	Geometry  torus.Geometry
	Scheduler *core.Scheduler
	Jobs      []*job.Job
	Failures  failure.Trace

	// Downtime holds a failed node out of service for this many
	// seconds. The paper's model uses 0 (transient faults, instant
	// recovery); Section 7.1 discusses the consequences.
	Downtime float64

	// MigrationCost charges each migrated job this many seconds of
	// checkpoint-and-restart delay. The paper's model migrates for
	// free (0); a real BG/L migration checkpoints the job, moves it,
	// and restarts it.
	MigrationCost float64

	// Checkpoint enables the Section 8 checkpointing extension.
	Checkpoint *checkpoint.Config

	// Contention enables the network-contention model: co-resident jobs
	// whose partitions share torus lines dilate each other's runtime
	// (see internal/contention). Nil — the paper's model — charges
	// nothing.
	Contention *contention.Config

	// RecordTimeline samples machine state at every event into
	// Result.Timeline, for RenderTimeline and debugging.
	RecordTimeline bool

	// CheckInvariants validates machine-state conservation after every
	// event (see verifyInvariants in invariants.go): free-node count
	// consistent with the occupancy map, running partitions exclusively
	// owned and non-overlapping, whole-machine node conservation, and
	// starts = finishes + kills + running. A violation aborts the run
	// with an *InvariantError. Costs one occupancy scan per event;
	// intended for debugging and hardened sweeps, off by default.
	CheckInvariants bool

	// EventLog, when non-nil, receives one JSON object per simulation
	// state change (see LoggedEvent / ReadEventLog).
	EventLog io.Writer

	// Telemetry, when non-nil, receives the run's counters, gauges and
	// per-job distributions ("sim.*" instruments; see simMetrics). A
	// nil registry disables collection with no other behaviour change.
	Telemetry *telemetry.Registry

	// Trace, when non-nil, receives the run's causal lifecycle records:
	// per-job submit/allocate/start/checkpoint/kill/requeue/finish
	// chains plus machine-level failure and recovery events, linked by
	// cause (see internal/trace). Records carry simulated time only, so
	// traced bytes are deterministic for a fixed configuration.
	Trace *trace.Tracer

	// Flight, when non-nil, remembers the last kernel dispatches in a
	// bounded ring, dumped on invariant violations (and, via the global
	// registry, on contained panics or SIGQUIT) so a crash ships the
	// event history that led up to it.
	Flight *trace.FlightRecorder
}

// simMetrics holds the simulator's instruments, resolved once in New.
// With a nil registry every handle is nil and recording is a no-op.
type simMetrics struct {
	events      *telemetry.Counter // sim.events: simulation events processed
	arrivals    *telemetry.Counter // sim.arrivals
	starts      *telemetry.Counter // sim.starts: job (re)starts dispatched
	finishes    *telemetry.Counter // sim.finishes
	failures    *telemetry.Counter // sim.failures: failure events delivered
	kills       *telemetry.Counter // sim.kills: failures that killed a running job
	restarts    *telemetry.Counter // sim.restarts: killed jobs requeued for re-execution
	checkpoints *telemetry.Counter // sim.checkpoints
	migrations  *telemetry.Counter // sim.migrations
	backfills   *telemetry.Counter // sim.backfills: starts ahead of the queue head
	contentions *telemetry.Counter // sim.contention.charges: dilation charges applied

	freeNodes   *telemetry.Gauge // sim.free_nodes, sampled at every event
	queueDepth  *telemetry.Gauge // sim.queue_depth, sampled at every event
	runningJobs *telemetry.Gauge // sim.running_jobs, sampled at every event

	wait     *telemetry.Histogram // sim.job.wait_seconds (paper t_w, per finished job)
	response *telemetry.Histogram // sim.job.response_seconds (t_r)
	slowdown *telemetry.Histogram // sim.job.bounded_slowdown
	dilation *telemetry.Histogram // sim.job.dilation_seconds, per contention charge
}

func newSimMetrics(reg *telemetry.Registry) simMetrics {
	return simMetrics{
		events:      reg.Counter("sim.events"),
		arrivals:    reg.Counter("sim.arrivals"),
		starts:      reg.Counter("sim.starts"),
		finishes:    reg.Counter("sim.finishes"),
		failures:    reg.Counter("sim.failures"),
		kills:       reg.Counter("sim.kills"),
		restarts:    reg.Counter("sim.restarts"),
		checkpoints: reg.Counter("sim.checkpoints"),
		migrations:  reg.Counter("sim.migrations"),
		backfills:   reg.Counter("sim.backfills"),
		contentions: reg.Counter("sim.contention.charges"),
		freeNodes:   reg.Gauge("sim.free_nodes"),
		queueDepth:  reg.Gauge("sim.queue_depth"),
		runningJobs: reg.Gauge("sim.running_jobs"),
		wait:        reg.Histogram("sim.job.wait_seconds"),
		response:    reg.Histogram("sim.job.response_seconds"),
		slowdown:    reg.Histogram("sim.job.bounded_slowdown"),
		dilation:    reg.Histogram("sim.job.dilation_seconds"),
	}
}

// Result is the outcome of a run.
type Result struct {
	Outcomes []metrics.Outcome
	Summary  metrics.Summary

	FailureEvents int // failure events delivered within the run
	JobKills      int // failures that killed a running job
	Migrations    int // migration moves performed
	Checkpoints   int // checkpoints taken
	Backfills     int // jobs started ahead of the queue head

	// ContentionCharges counts the dilation charges the contention
	// model applied; DilationSeconds is the simulated time they added
	// across all affected runs. Both zero when the model is off.
	ContentionCharges int
	DilationSeconds   float64

	// Timeline holds machine-state samples when Config.RecordTimeline
	// is set; nil otherwise.
	Timeline []TimelinePoint

	// EventsDispatched is the total number of calendar events the kernel
	// dispatched over the run — the exclusive upper bound of the valid
	// snapshot seq range.
	EventsDispatched int64
}

// runState is the mutable execution state of one job.
type runState struct {
	job   *job.Job
	part  torus.Partition
	start float64
	epoch int
	// finishTime is the absolute completion time under the current
	// schedule (including checkpoint overheads incurred so far).
	finishTime float64
	// expFinish is the scheduler-visible estimated completion.
	expFinish float64
	// overheadSoFar is checkpoint overhead accumulated in this run.
	overheadSoFar float64
	// savedAtStart is the checkpointed work the run began with.
	savedAtStart float64
	// restartPenaltyPaid is the restore cost charged at this start.
	restartPenaltyPaid float64
}

// jobProgress is per-job state that survives restarts.
type jobProgress struct {
	firstStart float64
	started    bool
	restarts   int
	lostWork   float64
	savedWork  float64 // checkpointed work, seconds of computation
	lastStart  float64
	// nextEpoch issues globally unique epochs for this job's finish and
	// checkpoint events, across restarts and checkpoint reschedules.
	nextEpoch int
	// lastSeq is the trace sequence number of this job's most recent
	// lifecycle record, the Cause of its next one.
	lastSeq uint64
}

// Simulator holds the state of one run. Create with New, execute with
// Run; a Simulator is single-use.
type Simulator struct {
	cfg      Config
	k        kernel
	grid     *torus.Grid
	queue    *job.Queue
	running  map[job.ID]*runState
	progress map[job.ID]*jobProgress
	jobsByID map[job.ID]*job.Job
	elog     *eventLogger
	met      simMetrics
	tracker  metrics.CapacityTracker
	outcomes []metrics.Outcome
	result   Result
	pending  int // jobs not yet finished

	// Registered subsystems (for the snapshot hooks) and their lifecycle
	// hooks, discovered at wiring time.
	subs           []subsystem
	startHooks     []startHook
	startCostHooks []startCostHook
	finishHooks    []finishHook

	// started flips when the run's initial observation has been taken;
	// a simulator restored from a snapshot starts true, because the
	// prefix run already observed that instant.
	started bool

	// Conservation counters for the invariant guard: every start must
	// eventually be matched by a finish or a kill.
	nStarts   int
	nFinishes int
	nKills    int

	// Steady-state reuse: runFree recycles runState records between
	// runs (a finish or kill returns the record after its last read),
	// and runIDs/runBuf back the scheduler's running-list snapshot.
	// Together with the scheduler's own buffers this keeps the event
	// loop free of per-event heap allocations.
	runFree []*runState
	runIDs  []job.ID
	runBuf  []core.Running

	// lastFinishSeq is the trace sequence of the most recent finish
	// record — the cause of any migration moves it triggers.
	lastFinishSeq uint64
}

// validateConfig checks the constraints every simulator — fresh or
// restored — must satisfy.
func validateConfig(cfg Config) error {
	if cfg.Scheduler == nil {
		return fmt.Errorf("sim: Scheduler is required")
	}
	if len(cfg.Jobs) == 0 {
		return fmt.Errorf("sim: no jobs")
	}
	if cfg.Downtime < 0 {
		return fmt.Errorf("sim: negative downtime %g", cfg.Downtime)
	}
	if cfg.MigrationCost < 0 {
		return fmt.Errorf("sim: negative migration cost %g", cfg.MigrationCost)
	}
	if cfg.Checkpoint != nil {
		if err := cfg.Checkpoint.Validate(); err != nil {
			return err
		}
	}
	if err := cfg.Contention.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	n := cfg.Geometry.N()
	if n == 0 {
		return fmt.Errorf("sim: empty geometry")
	}
	seen := make(map[job.ID]bool, len(cfg.Jobs))
	for _, j := range cfg.Jobs {
		if err := j.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		if j.AllocSize > n {
			return fmt.Errorf("sim: %v cannot fit on %d-node machine", j, n)
		}
		if seen[j.ID] {
			return fmt.Errorf("sim: duplicate job id %d", j.ID)
		}
		seen[j.ID] = true
	}
	if err := cfg.Failures.Validate(n); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return nil
}

// newSimulator builds the simulator shell for a validated config: the
// dispatch table wired, subsystems registered, maps allocated — but the
// calendar empty and no state loaded. New loads the initial calendar;
// NewFromSnapshot restores a serialized one.
func newSimulator(cfg Config) *Simulator {
	s := &Simulator{
		cfg:      cfg,
		elog:     newEventLogger(cfg.EventLog),
		met:      newSimMetrics(cfg.Telemetry),
		grid:     torus.NewGrid(cfg.Geometry),
		queue:    job.NewQueue(),
		running:  make(map[job.ID]*runState),
		progress: make(map[job.ID]*jobProgress),
		pending:  len(cfg.Jobs),
	}
	if cfg.Flight != nil {
		s.k.tap = s.flightTap
	}
	// Wire the dispatch table: the core lifecycle handlers, then each
	// subsystem's own event kinds and lifecycle hooks.
	s.k.register(evArrival, s.handleArrival)
	s.k.register(evFinish, s.handleFinish)
	s.subs = []subsystem{
		&failureSubsystem{s: s},
		// Contention precedes checkpointing so its start-hook dilation
		// settles a run's final epoch and completion before the first
		// checkpoint is scheduled against them.
		&contentionSubsystem{s: s, cfg: cfg.Contention},
		&checkpointSubsystem{s: s, cfg: cfg.Checkpoint},
		&migrationSubsystem{s: s},
	}
	for _, sub := range s.subs {
		sub.attach(&s.k)
		if h, ok := sub.(startHook); ok {
			s.startHooks = append(s.startHooks, h)
		}
		if h, ok := sub.(startCostHook); ok {
			s.startCostHooks = append(s.startCostHooks, h)
		}
		if h, ok := sub.(finishHook); ok {
			s.finishHooks = append(s.finishHooks, h)
		}
	}
	s.jobsByID = make(map[job.ID]*job.Job, len(cfg.Jobs))
	for _, j := range cfg.Jobs {
		s.jobsByID[j.ID] = j
	}
	return s
}

// New validates the configuration and prepares a simulator: the core
// arrival/finish handlers and every subsystem register their event
// handlers on the kernel, and the initial calendar (arrivals, failure
// trace) is loaded.
func New(cfg Config) (*Simulator, error) {
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	s := newSimulator(cfg)

	// Arrivals in time order, then failures: the sequence numbers make
	// simultaneous events deterministic.
	jobs := make([]*job.Job, len(cfg.Jobs))
	copy(jobs, cfg.Jobs)
	sort.Slice(jobs, func(i, k int) bool {
		if jobs[i].Arrival != jobs[k].Arrival {
			return jobs[i].Arrival < jobs[k].Arrival
		}
		return jobs[i].ID < jobs[k].ID
	})
	for _, j := range jobs {
		s.k.push(event{time: j.Arrival, kind: evArrival, jobID: j.ID})
		s.progress[j.ID] = &jobProgress{}
	}
	for _, f := range cfg.Failures {
		s.k.push(event{time: f.Time, kind: evFailure, node: f.Node})
	}
	return s, nil
}

// Run executes the simulation to completion and returns the result.
func (s *Simulator) Run() (Result, error) {
	return s.RunContext(context.Background())
}

// cancelCheckStride is how many events RunContext processes between
// context polls. Event handling is microseconds; checking every event
// would put a mutexed ctx.Err() on the hot path for no responsiveness
// gain.
const cancelCheckStride = 256

// RunContext executes the simulation to completion, aborting with
// ctx.Err() if the context is cancelled mid-run. Cancellation is
// checked between events (every cancelCheckStride of them), so a
// cancelled run returns promptly and never leaves a handler half
// applied. RunContext also continues a simulator paused by RunToEvent
// or restored by NewFromSnapshot.
func (s *Simulator) RunContext(ctx context.Context) (Result, error) {
	if _, err := s.RunToEvent(ctx, -1); err != nil {
		return Result{}, err
	}
	return s.Finalize()
}

// EventsDispatched returns the number of calendar events dispatched so
// far (counting from the start of the run, across snapshot/restore).
func (s *Simulator) EventsDispatched() int64 { return s.k.dispatched }

// RunToEvent processes events until the kernel's dispatched count
// reaches upTo or the run completes, whichever comes first; upTo < 0
// means no limit. It returns done=true when every job has finished.
// A paused simulator (done=false, nil error) sits exactly on an event
// boundary: Snapshot captures it, and a further RunToEvent or
// RunContext call continues it.
func (s *Simulator) RunToEvent(ctx context.Context, upTo int64) (bool, error) {
	// The flight recorder joins the process-wide registry for the run's
	// duration, so SIGQUIT and contained-panic dumps cover it while
	// live; an invariant violation dumps it directly below.
	trace.RegisterFlight(s.cfg.Flight)
	defer trace.UnregisterFlight(s.cfg.Flight)
	span := s.cfg.Trace.Begin("sim", "run")
	defer span.End()
	// The per-event counter accumulates locally and publishes once per
	// RunToEvent call: a batched add on exit instead of an atomic op
	// per dispatched event. Readers of sim.events see the total when
	// the call returns (Finalize always follows the last one).
	ev := telemetry.NewBatch(s.met.events)
	defer ev.Flush()
	if !s.started {
		s.started = true
		if err := s.observe(); err != nil {
			return false, err
		}
	}
	for processed := 0; s.pending > 0; processed++ {
		if upTo >= 0 && s.k.dispatched >= upTo {
			return false, nil
		}
		if processed%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return false, err
			}
		}
		if s.k.pending() == 0 {
			return false, fmt.Errorf("sim: deadlock at t=%g: %d jobs unfinished, no events pending",
				s.k.now, s.pending)
		}
		ev.Inc()
		err := s.k.step()
		if err == nil && s.cfg.CheckInvariants {
			err = s.verifyInvariants()
		}
		if err != nil {
			var ie *InvariantError
			if errors.As(err, &ie) {
				_ = s.cfg.Flight.Dump("invariant violation: " + ie.Check)
			}
			return false, err
		}
	}
	return true, nil
}

// Finalize closes the capacity integral, flushes the output streams and
// computes the run summary. Call once, after RunToEvent reports done.
func (s *Simulator) Finalize() (Result, error) {
	unused, err := s.tracker.CloseAt(s.k.now)
	if err != nil {
		return Result{}, err
	}
	if err := s.elog.flushErr(); err != nil {
		return Result{}, err
	}
	if err := s.cfg.Trace.Err(); err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}
	summary, err := metrics.Summarize(s.outcomes, s.cfg.Geometry.N(), unused)
	if err != nil {
		return Result{}, err
	}
	s.result.Outcomes = s.outcomes
	s.result.Summary = summary
	s.result.EventsDispatched = s.k.dispatched
	return s.result, nil
}

// observe feeds the capacity tracker with the current (f, q) state and
// refreshes the machine-state gauges.
func (s *Simulator) observe() error {
	s.recordTimeline()
	s.met.freeNodes.Set(float64(s.grid.FreeCount()))
	s.met.queueDepth.Set(float64(s.queue.Len()))
	s.met.runningJobs.Set(float64(len(s.running)))
	return s.tracker.Observe(s.k.now, s.grid.FreeCount(), s.queue.DemandNodes())
}

func (s *Simulator) handleArrival(e event) error {
	j := s.jobsByID[e.jobID]
	if j == nil {
		return fmt.Errorf("sim: arrival for unknown job %d", e.jobID)
	}
	s.queue.Push(j)
	s.met.arrivals.Inc()
	s.logEvent("arrival", j.ID, 0, nil)
	if s.cfg.Trace != nil { // guard: the variadic fields allocate
		s.progress[j.ID].lastSeq = s.traceJob("submit", j.ID, 0,
			trace.Fint("size", int64(j.Size)))
	}
	if err := s.schedule(); err != nil {
		return err
	}
	return s.observe()
}

func (s *Simulator) handleFinish(e event) error {
	r, ok := s.running[e.jobID]
	if !ok || r.epoch != e.epoch {
		return nil // stale: the run was killed or rescheduled
	}
	if err := s.grid.Release(r.part, int64(e.jobID)); err != nil {
		return fmt.Errorf("sim: finish: %w", err)
	}
	delete(s.running, e.jobID)
	s.nFinishes++
	s.met.finishes.Inc()
	s.logEvent("finish", e.jobID, 0, &r.part)
	p := s.progress[e.jobID]
	wait := r.start - r.job.Arrival
	response := s.k.now - r.job.Arrival
	if s.cfg.Trace != nil {
		p.lastSeq = s.traceJob("finish", e.jobID, p.lastSeq,
			trace.Num("wait", wait), trace.Num("response", response),
			trace.Fint("restarts", int64(p.restarts)))
		s.lastFinishSeq = p.lastSeq
	}
	s.met.wait.Observe(wait)
	s.met.response.Observe(response)
	s.met.slowdown.Observe(metrics.BoundedSlowdown(response, r.job.Estimate))
	s.outcomes = append(s.outcomes, metrics.Outcome{
		ID:         e.jobID,
		Arrival:    r.job.Arrival,
		FirstStart: p.firstStart,
		LastStart:  r.start,
		Finish:     s.k.now,
		Estimate:   r.job.Estimate,
		Actual:     r.job.Actual,
		Size:       r.job.Size,
		AllocSize:  r.job.AllocSize,
		Restarts:   p.restarts,
		LostWork:   p.lostWork,
	})
	s.pending--
	s.runFree = append(s.runFree, r) // last read of r above

	for _, h := range s.finishHooks {
		if err := h.afterFinish(); err != nil {
			return err
		}
	}
	if err := s.schedule(); err != nil {
		return err
	}
	return s.observe()
}

// schedule invokes the scheduler and starts the jobs it selects.
func (s *Simulator) schedule() error {
	decisions, err := s.cfg.Scheduler.Schedule(s.grid, s.queue, s.runningList(), s.k.now)
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	for _, d := range decisions {
		s.start(d)
	}
	// Count backfills: started jobs that left an older job waiting.
	if s.queue.Len() > 0 {
		oldest := s.queue.Peek()
		for _, d := range decisions {
			if d.Job.Arrival > oldest.Arrival ||
				(d.Job.Arrival == oldest.Arrival && d.Job.ID > oldest.ID) {
				s.result.Backfills++
				s.met.backfills.Inc()
			}
		}
	}
	return nil
}

// start activates one scheduling decision: the partition was already
// allocated by the scheduler.
func (s *Simulator) start(d core.Decision) {
	p := s.progress[d.Job.ID]
	penalty := 0.0
	for _, h := range s.startCostHooks {
		penalty += h.startPenalty(p)
	}
	remainingActual := d.Job.Actual - p.savedWork
	if remainingActual < 0 {
		remainingActual = 0
	}
	remainingEst := d.Job.Estimate - p.savedWork
	if remainingEst < 1 {
		remainingEst = 1
	}
	epoch := p.nextEpoch
	p.nextEpoch++
	var r *runState
	if n := len(s.runFree); n > 0 {
		r = s.runFree[n-1]
		s.runFree = s.runFree[:n-1]
	} else {
		r = new(runState)
	}
	*r = runState{
		job:                d.Job,
		part:               d.Part,
		start:              s.k.now,
		epoch:              epoch,
		finishTime:         s.k.now + penalty + remainingActual,
		expFinish:          s.k.now + penalty + remainingEst,
		savedAtStart:       p.savedWork,
		restartPenaltyPaid: penalty,
	}
	s.running[d.Job.ID] = r
	if !p.started {
		p.started = true
		p.firstStart = s.k.now
	}
	p.lastStart = s.k.now
	s.nStarts++
	s.met.starts.Inc()
	s.logEvent("start", d.Job.ID, 0, &d.Part)
	if s.cfg.Trace != nil {
		p.lastSeq = s.traceJob("allocate", d.Job.ID, p.lastSeq,
			trace.F("partition", d.Part.String()))
		p.lastSeq = s.traceJob("start", d.Job.ID, p.lastSeq,
			trace.Num("wait", s.k.now-d.Job.Arrival), trace.Fint("epoch", int64(epoch)))
	}
	s.k.push(event{time: r.finishTime, kind: evFinish, jobID: d.Job.ID, epoch: r.epoch})
	for _, h := range s.startHooks {
		h.onJobStart(r)
	}
}

// runningList snapshots the running jobs for the scheduler, in
// deterministic job-id order.
func (s *Simulator) runningList() []core.Running {
	ids := s.runIDs[:0]
	for id := range s.running {
		ids = append(ids, id)
	}
	// Insertion sort: ids are unique, so the order matches any
	// comparison sort, without sort.Slice's per-call swapper
	// allocation; the running set is small (bounded by the machine).
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	s.runIDs = ids
	out := s.runBuf[:0]
	for _, id := range ids {
		r := s.running[id]
		out = append(out, core.Running{Job: r.job, Part: r.part, Start: r.start, ExpFinish: r.expFinish})
	}
	s.runBuf = out
	return out
}
