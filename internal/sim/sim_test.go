package sim

import (
	"math"
	"reflect"
	"testing"

	"bgsched/internal/checkpoint"
	"bgsched/internal/core"
	"bgsched/internal/failure"
	"bgsched/internal/job"
	"bgsched/internal/predict"
	"bgsched/internal/torus"
	"bgsched/internal/workload"
)

func mkJob(id int, arrival float64, size int, runtime float64) *job.Job {
	g := torus.BlueGeneL()
	alloc, ok := g.RoundUpFeasible(size)
	if !ok {
		panic("bad size")
	}
	return &job.Job{ID: job.ID(id), Arrival: arrival, Size: size, AllocSize: alloc,
		Estimate: runtime, Actual: runtime}
}

func baselineScheduler(t *testing.T, mode core.BackfillMode) *core.Scheduler {
	t.Helper()
	s, err := core.NewScheduler(core.Config{Policy: core.Baseline{}, Backfill: mode})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func runSim(t *testing.T, cfg Config) Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleJobNoFailures(t *testing.T) {
	res := runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      []*job.Job{mkJob(1, 0, 32, 100)},
	})
	if len(res.Outcomes) != 1 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	o := res.Outcomes[0]
	if o.LastStart != 0 || o.Finish != 100 {
		t.Fatalf("start/finish = %g/%g, want 0/100", o.LastStart, o.Finish)
	}
	if o.Restarts != 0 || res.JobKills != 0 {
		t.Fatal("phantom restarts")
	}
	if res.Summary.AvgSlowdown != 1 {
		t.Fatalf("slowdown = %g, want 1", res.Summary.AvgSlowdown)
	}
	// 32 nodes for 100s on a 128-node machine over T=100: util 0.25.
	if math.Abs(res.Summary.Utilization-0.25) > 1e-9 {
		t.Fatalf("utilization = %g, want 0.25", res.Summary.Utilization)
	}
	// Remaining capacity was free with an empty queue: unused.
	if math.Abs(res.Summary.UnusedCapacity-0.75) > 1e-9 {
		t.Fatalf("unused = %g, want 0.75", res.Summary.UnusedCapacity)
	}
	if math.Abs(res.Summary.LostCapacity) > 1e-9 {
		t.Fatalf("lost = %g, want 0", res.Summary.LostCapacity)
	}
}

func TestSequentialJobsQueueing(t *testing.T) {
	// Two full-machine jobs: the second waits for the first.
	res := runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillNone),
		Jobs: []*job.Job{
			mkJob(1, 0, 128, 100),
			mkJob(2, 10, 128, 100),
		},
	})
	byID := map[job.ID]int{}
	for i, o := range res.Outcomes {
		byID[o.ID] = i
	}
	o2 := res.Outcomes[byID[2]]
	if o2.LastStart != 100 {
		t.Fatalf("job 2 started at %g, want 100", o2.LastStart)
	}
	if o2.Finish != 200 {
		t.Fatalf("job 2 finished at %g, want 200", o2.Finish)
	}
	if got := o2.Wait(); got != 90 {
		t.Fatalf("job 2 wait = %g, want 90", got)
	}
	// While job 2 waited, demand (128) >= free (0): nothing unused in
	// [10,100); before t=10 free=0 too. After t=100 the queue is empty
	// and free=0 while job 2 runs. Unused must be 0.
	if res.Summary.UnusedCapacity != 0 {
		t.Fatalf("unused = %g, want 0", res.Summary.UnusedCapacity)
	}
}

func TestFailureKillsAndRestartsJob(t *testing.T) {
	// One full-machine job; a failure at t=50 restarts it from scratch.
	res := runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      []*job.Job{mkJob(1, 0, 128, 100)},
		Failures:  failure.Trace{{Time: 50, Node: 0}},
	})
	o := res.Outcomes[0]
	if o.Restarts != 1 || res.JobKills != 1 {
		t.Fatalf("restarts = %d, kills = %d", o.Restarts, res.JobKills)
	}
	if o.LastStart != 50 || o.Finish != 150 {
		t.Fatalf("restarted run = [%g, %g], want [50, 150]", o.LastStart, o.Finish)
	}
	if o.FirstStart != 0 {
		t.Fatalf("first start = %g, want 0", o.FirstStart)
	}
	// 128 nodes for 50 s wasted.
	if o.LostWork != 128*50 {
		t.Fatalf("lost work = %g, want 6400", o.LostWork)
	}
	if res.Summary.LostCapacity <= 0 {
		t.Fatal("lost capacity must be positive after a kill")
	}
}

func TestFailureOnFreeNodeHarmless(t *testing.T) {
	res := runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      []*job.Job{mkJob(1, 0, 1, 100)},
		Failures:  failure.Trace{{Time: 50, Node: 127}}, // job of size 1 sits at node 0
	})
	o := res.Outcomes[0]
	if o.Restarts != 0 {
		t.Fatalf("failure on free node restarted the job (restarts=%d)", o.Restarts)
	}
	if res.FailureEvents != 1 || res.JobKills != 0 {
		t.Fatalf("events=%d kills=%d", res.FailureEvents, res.JobKills)
	}
}

func TestFailureAfterFinishIgnored(t *testing.T) {
	res := runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      []*job.Job{mkJob(1, 0, 128, 100)},
		Failures:  failure.Trace{{Time: 100.5, Node: 0}, {Time: 200, Node: 3}},
	})
	if res.Outcomes[0].Restarts != 0 {
		t.Fatal("failure after completion restarted the job")
	}
}

func TestRepeatedFailuresSameJob(t *testing.T) {
	res := runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      []*job.Job{mkJob(1, 0, 128, 100)},
		Failures: failure.Trace{
			{Time: 30, Node: 0}, {Time: 60, Node: 5}, {Time: 90, Node: 10},
		},
	})
	o := res.Outcomes[0]
	if o.Restarts != 3 {
		t.Fatalf("restarts = %d, want 3", o.Restarts)
	}
	// Runs: [0,30) killed, [30,60) killed, [60,90) killed, [90,190] ok.
	if o.LastStart != 90 || o.Finish != 190 {
		t.Fatalf("final run [%g, %g], want [90, 190]", o.LastStart, o.Finish)
	}
}

func TestRestartRegainsFCFSPriority(t *testing.T) {
	// Job 1 (arrival 0) is killed at t=50; job 2 (arrival 10) is
	// waiting. On the restart scheduling pass, job 1 must start first.
	res := runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillNone),
		Jobs: []*job.Job{
			mkJob(1, 0, 128, 100),
			mkJob(2, 10, 128, 10),
		},
		Failures: failure.Trace{{Time: 50, Node: 0}},
	})
	byID := map[job.ID]metrics0{}
	for _, o := range res.Outcomes {
		byID[o.ID] = metrics0{o.LastStart, o.Finish}
	}
	if byID[1].start != 50 {
		t.Fatalf("job 1 restarted at %g, want 50 (ahead of job 2)", byID[1].start)
	}
	if byID[2].start != 150 {
		t.Fatalf("job 2 started at %g, want 150", byID[2].start)
	}
}

type metrics0 struct{ start, finish float64 }

func TestBackfillAroundBlockedHead(t *testing.T) {
	// Job 1 occupies the machine until t=100. Job 2 (arrival 1) needs
	// the full machine. Job 3 (arrival 2) is small and short: EASY
	// backfills it before t=100.
	res := runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs: []*job.Job{
			mkJob(1, 0, 128, 100),
			mkJob(2, 1, 128, 50),
			mkJob(3, 2, 8, 200), // too long to finish before 100 and overlaps reservation
			mkJob(4, 3, 8, 20),  // short: safe backfill
		},
	})
	var s3, s4 float64
	for _, o := range res.Outcomes {
		switch o.ID {
		case 3:
			s3 = o.LastStart
		case 4:
			s4 = o.LastStart
		}
	}
	_ = s3
	if s4 != 100 {
		// Job 4 cannot backfill at t=3 because the machine is entirely
		// full (no free nodes at all). It can only start at t=100 with
		// job 2... unless job 2 starts first. Accept either 100-epoch
		// consistency: job 2 has priority; with job 2 running the
		// machine is full again until 150.
		t.Logf("job 4 started at %g", s4)
	}
	if res.Summary.Jobs != 4 {
		t.Fatal("not all jobs finished")
	}
}

// A real backfill scenario with free nodes: head needs more than free,
// small job fits in the hole.
func TestBackfillUsesHole(t *testing.T) {
	res := runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs: []*job.Job{
			mkJob(1, 0, 64, 100),  // holds half the machine
			mkJob(2, 1, 128, 50),  // head: blocked until t=100
			mkJob(3, 2, 32, 50),   // fits in the free half, finishes at 52 < 100
			mkJob(4, 3, 32, 5000), // long: would delay head; must wait
		},
	})
	starts := map[job.ID]float64{}
	for _, o := range res.Outcomes {
		starts[o.ID] = o.LastStart
	}
	if starts[3] != 2 {
		t.Fatalf("short job 3 should backfill at t=2, got %g", starts[3])
	}
	if starts[4] < 100 {
		t.Fatalf("long job 4 backfilled at %g, delaying the head", starts[4])
	}
	if starts[2] != 100 {
		t.Fatalf("head started at %g, want 100 (reservation honoured)", starts[2])
	}
	if res.Backfills == 0 {
		t.Fatal("backfill counter not incremented")
	}
}

func TestDowntimeHoldsNode(t *testing.T) {
	// Machine of one free column; failure with downtime blocks a
	// size-128 job until the node recovers.
	res := runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs: []*job.Job{
			mkJob(1, 0, 1, 10),     // runs on node 0, t in [0,10)
			mkJob(2, 20, 128, 100), // needs every node
		},
		Failures: failure.Trace{{Time: 15, Node: 0}},
		Downtime: 30,
	})
	starts := map[job.ID]float64{}
	for _, o := range res.Outcomes {
		starts[o.ID] = o.LastStart
	}
	if starts[2] != 45 {
		t.Fatalf("full-machine job started at %g, want 45 (after downtime)", starts[2])
	}
}

func TestFailureDuringDowntimeAbsorbed(t *testing.T) {
	res := runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      []*job.Job{mkJob(1, 0, 1, 200)},
		Failures: failure.Trace{
			{Time: 10, Node: 5},
			{Time: 20, Node: 5}, // node 5 still down: absorbed
		},
		Downtime: 50,
	})
	if res.FailureEvents != 2 {
		t.Fatalf("failure events = %d", res.FailureEvents)
	}
	if res.JobKills != 0 {
		t.Fatal("job on node 0 was killed by failures on node 5")
	}
}

func TestDeterminism(t *testing.T) {
	build := func() Config {
		log, err := Synthesize(t)
		if err != nil {
			t.Fatal(err)
		}
		jobs, err := log.ToJobs(torus.BlueGeneL(), workload.ToJobsConfig{LoadScale: 1, ExactEstimates: true})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := failure.Generate(failure.DefaultGeneratorConfig(128, 100, log.Span()+1000), 5)
		if err != nil {
			t.Fatal(err)
		}
		ix := failure.NewIndex(128, tr)
		sched, err := core.NewScheduler(core.Config{
			Policy:   &core.Balancing{Prober: &predict.Balancing{Index: ix, Confidence: 0.3}},
			Backfill: core.BackfillEASY,
		})
		if err != nil {
			t.Fatal(err)
		}
		return Config{
			Geometry:  torus.BlueGeneL(),
			Scheduler: sched,
			Jobs:      jobs,
			Failures:  tr,
		}
	}
	r1 := runSim(t, build())
	r2 := runSim(t, build())
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("identical configurations produced different results")
	}
}

// Synthesize builds a small deterministic workload for sim tests.
func Synthesize(t *testing.T) (*workload.Log, error) {
	t.Helper()
	cfg := workload.SDSC(150)
	return workload.Synthesize(cfg, 42)
}

func TestMigrationRuns(t *testing.T) {
	sched, err := core.NewScheduler(core.Config{
		Policy:    core.Baseline{},
		Backfill:  core.BackfillEASY,
		Migration: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	log, err := Synthesize(t)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := log.ToJobs(torus.BlueGeneL(), workload.ToJobsConfig{LoadScale: 1, ExactEstimates: true})
	if err != nil {
		t.Fatal(err)
	}
	res := runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: sched,
		Jobs:      jobs,
	})
	if res.Summary.Jobs != len(jobs) {
		t.Fatalf("finished %d of %d jobs", res.Summary.Jobs, len(jobs))
	}
	// Fragmented torus workloads essentially always trigger some move.
	if res.Migrations == 0 {
		t.Log("warning: no migrations occurred (not fatal, but unexpected)")
	}
}

func TestMigrationCostDelaysJobs(t *testing.T) {
	// Same seeded workload with and without a migration cost: the
	// migrated jobs' completions slip, so the total response time must
	// strictly increase while the fault-free work total is unchanged.
	log, err := Synthesize(t)
	if err != nil {
		t.Fatal(err)
	}
	run := func(cost float64) Result {
		sched, err := core.NewScheduler(core.Config{
			Policy: core.Baseline{}, Backfill: core.BackfillEASY, Migration: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs, err := log.ToJobs(torus.BlueGeneL(), workload.ToJobsConfig{LoadScale: 1, ExactEstimates: true})
		if err != nil {
			t.Fatal(err)
		}
		return runSim(t, Config{
			Geometry:      torus.BlueGeneL(),
			Scheduler:     sched,
			Jobs:          jobs,
			MigrationCost: cost,
		})
	}
	free := run(0)
	if free.Migrations == 0 {
		t.Skip("workload triggered no migrations")
	}
	paid := run(600)
	if paid.Migrations == 0 {
		t.Fatal("costed run migrated nothing")
	}
	if paid.Summary.AvgResponse <= free.Summary.AvgResponse {
		t.Fatalf("migration cost did not increase response: %.1f vs %.1f",
			paid.Summary.AvgResponse, free.Summary.AvgResponse)
	}
}

func TestNegativeMigrationCostRejected(t *testing.T) {
	sched := baselineScheduler(t, core.BackfillNone)
	_, err := New(Config{
		Geometry:      torus.BlueGeneL(),
		Scheduler:     sched,
		Jobs:          []*job.Job{mkJob(1, 0, 1, 10)},
		MigrationCost: -1,
	})
	if err == nil {
		t.Fatal("negative migration cost accepted")
	}
}

func TestNewValidation(t *testing.T) {
	sched := baselineScheduler(t, core.BackfillNone)
	good := Config{Geometry: torus.BlueGeneL(), Scheduler: sched, Jobs: []*job.Job{mkJob(1, 0, 1, 10)}}

	cfg := good
	cfg.Scheduler = nil
	if _, err := New(cfg); err == nil {
		t.Error("nil scheduler accepted")
	}
	cfg = good
	cfg.Jobs = nil
	if _, err := New(cfg); err == nil {
		t.Error("no jobs accepted")
	}
	cfg = good
	cfg.Jobs = []*job.Job{mkJob(1, 0, 1, 10), mkJob(1, 5, 1, 10)}
	if _, err := New(cfg); err == nil {
		t.Error("duplicate job ids accepted")
	}
	cfg = good
	cfg.Downtime = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative downtime accepted")
	}
	cfg = good
	cfg.Failures = failure.Trace{{Time: 5, Node: 500}}
	if _, err := New(cfg); err == nil {
		t.Error("out-of-range failure node accepted")
	}
	cfg = good
	bad := mkJob(2, 0, 1, 10)
	bad.AllocSize = 500
	cfg.Jobs = []*job.Job{bad}
	if _, err := New(cfg); err == nil {
		t.Error("oversized job accepted")
	}
}

func TestCheckpointingReducesLoss(t *testing.T) {
	// A 1000-second full-machine job killed at t=900. Without
	// checkpointing it restarts from scratch (finish ~1900); with
	// 100-second periodic checkpoints it resumes near t=900.
	jobs := func() []*job.Job { return []*job.Job{mkJob(1, 0, 128, 1000)} }
	fails := failure.Trace{{Time: 900, Node: 0}}

	plain := runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      jobs(),
		Failures:  fails,
	})
	ckpt := runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      jobs(),
		Failures:  fails,
		Checkpoint: &checkpoint.Config{
			Policy:         &checkpoint.Periodic{Interval: 100},
			Overhead:       5,
			RestartPenalty: 10,
		},
	})
	if plain.Outcomes[0].Finish != 1900 {
		t.Fatalf("plain finish = %g, want 1900", plain.Outcomes[0].Finish)
	}
	if ckpt.Checkpoints == 0 {
		t.Fatal("no checkpoints taken")
	}
	if ckpt.Outcomes[0].Finish >= plain.Outcomes[0].Finish {
		t.Fatalf("checkpointing did not help: %g vs %g", ckpt.Outcomes[0].Finish, plain.Outcomes[0].Finish)
	}
	if ckpt.Outcomes[0].LostWork >= plain.Outcomes[0].LostWork {
		t.Fatalf("checkpointing did not reduce lost work: %g vs %g",
			ckpt.Outcomes[0].LostWork, plain.Outcomes[0].LostWork)
	}
}

func TestCheckpointOverheadWithoutFailures(t *testing.T) {
	// Checkpoint overhead must delay completion even without failures.
	res := runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      []*job.Job{mkJob(1, 0, 128, 1000)},
		Checkpoint: &checkpoint.Config{
			Policy:   &checkpoint.Periodic{Interval: 300},
			Overhead: 10,
		},
	})
	o := res.Outcomes[0]
	if o.Finish <= 1000 {
		t.Fatalf("finish = %g, want > 1000 (overhead charged)", o.Finish)
	}
	if res.Checkpoints < 2 {
		t.Fatalf("checkpoints = %d, want >= 2", res.Checkpoints)
	}
	want := 1000 + float64(res.Checkpoints)*10
	if math.Abs(o.Finish-want) > 1e-6 {
		t.Fatalf("finish = %g, want %g (1000 + %d*10)", o.Finish, want, res.Checkpoints)
	}
}

func TestPredictionTriggeredCheckpoint(t *testing.T) {
	// Failure at t=500; the prediction-triggered policy checkpoints
	// shortly before it, so the job resumes with most work saved.
	tr := failure.Trace{{Time: 500, Node: 0}}
	ix := failure.NewIndex(128, tr)
	res := runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      []*job.Job{mkJob(1, 0, 128, 1000)},
		Failures:  tr,
		Checkpoint: &checkpoint.Config{
			Policy: &checkpoint.PredictionTriggered{
				Oracle:  &predict.Perfect{Index: ix},
				Horizon: 600,
				Lead:    50,
				MinGap:  100,
			},
			Overhead:       5,
			RestartPenalty: 5,
		},
	})
	if res.Checkpoints == 0 {
		t.Fatal("prediction-triggered policy never fired")
	}
	o := res.Outcomes[0]
	// Without checkpointing finish would be 1500; with the save at
	// t=50+ the loss shrinks dramatically.
	if o.Finish >= 1490 {
		t.Fatalf("finish = %g; prediction-triggered checkpoint did not help", o.Finish)
	}
}

func TestCapacityFractionsSumToOne(t *testing.T) {
	log, err := Synthesize(t)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := log.ToJobs(torus.BlueGeneL(), workload.ToJobsConfig{LoadScale: 1.2, ExactEstimates: true})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := failure.Generate(failure.DefaultGeneratorConfig(128, 200, log.Span()+1000), 3)
	if err != nil {
		t.Fatal(err)
	}
	res := runSim(t, Config{
		Geometry:  torus.BlueGeneL(),
		Scheduler: baselineScheduler(t, core.BackfillEASY),
		Jobs:      jobs,
		Failures:  tr,
	})
	sum := res.Summary.Utilization + res.Summary.UnusedCapacity + res.Summary.LostCapacity
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("capacity fractions sum to %g", sum)
	}
	if res.Summary.LostCapacity < 0 {
		t.Fatalf("negative lost capacity %g", res.Summary.LostCapacity)
	}
	if res.Summary.Jobs != len(jobs) {
		t.Fatalf("finished %d of %d", res.Summary.Jobs, len(jobs))
	}
}

// Fault-aware scheduling with a good predictor must beat the
// fault-unaware baseline on the same workload and failure trace.
func TestFaultAwareBeatsBaselineUnderFailures(t *testing.T) {
	log, err := workload.Synthesize(workload.SDSC(250), 8)
	if err != nil {
		t.Fatal(err)
	}
	jobs := func() []*job.Job {
		js, err := log.ToJobs(torus.BlueGeneL(), workload.ToJobsConfig{LoadScale: 1, ExactEstimates: true})
		if err != nil {
			t.Fatal(err)
		}
		return js
	}
	// Failure density in the paper's regime (roughly one failure per
	// machine-day); at extreme densities every partition is flagged and
	// prediction cannot help — the saturation effect of Section 7.1.
	tr, err := failure.Generate(failure.DefaultGeneratorConfig(128, 60, log.Span()+1000), 4)
	if err != nil {
		t.Fatal(err)
	}
	ix := failure.NewIndex(128, tr)

	run := func(policy core.Policy) Result {
		sched, err := core.NewScheduler(core.Config{Policy: policy, Backfill: core.BackfillEASY})
		if err != nil {
			t.Fatal(err)
		}
		return runSim(t, Config{
			Geometry:  torus.BlueGeneL(),
			Scheduler: sched,
			Jobs:      jobs(),
			Failures:  tr,
		})
	}
	base := run(core.Baseline{})
	aware := run(&core.Balancing{Prober: &predict.Balancing{Index: ix, Confidence: 0.5}})
	if aware.JobKills >= base.JobKills {
		t.Fatalf("fault-aware kills %d >= baseline %d", aware.JobKills, base.JobKills)
	}
	if aware.Summary.AvgSlowdown >= base.Summary.AvgSlowdown {
		t.Fatalf("fault-aware slowdown %.2f >= baseline %.2f",
			aware.Summary.AvgSlowdown, base.Summary.AvgSlowdown)
	}
}
