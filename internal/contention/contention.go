// Package contention models network contention on the torus: jobs
// whose partitions occupy common torus lines compete for the same
// wires, and both run longer for it. The model is deliberately simple
// and fully deterministic — a flat per-shared-line runtime dilation,
// charged once per co-residency when the later job starts — so it
// composes with the simulator's byte-reproducibility guarantees
// (golden digests, snapshot equivalence) instead of fighting them.
//
// The geometry underneath is torus.SharedLines: for two disjoint
// partitions, the number of axis-parallel torus lines both occupy,
// which is where their traffic would collide under dimension-ordered
// routing. Bender et al. use the same line-sharing view to motivate
// communication-aware allocation; this package is the cost side of
// that argument, the placement scorer (internal/partition) the
// avoidance side.
package contention

import (
	"fmt"

	"bgsched/internal/torus"
)

// Levels lists the selectable contention presets in ascending
// severity. "off" (or the empty string) disables the model.
var Levels = []string{"off", "low", "medium", "high"}

// Config parameterises the model. A nil *Config disables contention
// everywhere it is consulted.
type Config struct {
	// Alpha is the runtime dilation, in simulated seconds, charged per
	// shared torus line when two partitions co-reside: when a job
	// starts, it and each running neighbor are each dilated by
	// Alpha * SharedLines(new, neighbor).
	Alpha float64
	// Level names the preset this config came from, for reports and
	// config hashing; free-form when built by hand.
	Level string
}

// FromLevel maps a preset name to a Config. "" and "off" return
// (nil, nil) — contention disabled; unknown names are rejected with
// the registered levels listed.
func FromLevel(level string) (*Config, error) {
	switch level {
	case "", "off":
		return nil, nil
	case "low":
		return &Config{Alpha: 5, Level: "low"}, nil
	case "medium":
		return &Config{Alpha: 20, Level: "medium"}, nil
	case "high":
		return &Config{Alpha: 60, Level: "high"}, nil
	}
	return nil, fmt.Errorf("contention: unknown level %q (want off, low, medium or high)", level)
}

// Validate rejects configs the simulator cannot run.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	if c.Alpha < 0 {
		return fmt.Errorf("contention: Alpha = %v, must be >= 0", c.Alpha)
	}
	return nil
}

// Charge returns the dilation, in simulated seconds, that partitions p
// and q inflict on each other while co-resident: Alpha per shared
// torus line. Zero on a nil config or for partitions whose traffic
// never shares a wire.
func (c *Config) Charge(g torus.Geometry, p, q torus.Partition) float64 {
	if c == nil || c.Alpha == 0 {
		return 0
	}
	return c.Alpha * float64(g.SharedLines(p, q))
}
