package contention

import (
	"strings"
	"testing"

	"bgsched/internal/torus"
)

func TestFromLevel(t *testing.T) {
	for _, off := range []string{"", "off"} {
		cfg, err := FromLevel(off)
		if err != nil || cfg != nil {
			t.Fatalf("FromLevel(%q) = %v, %v; want nil, nil", off, cfg, err)
		}
	}
	var last float64
	for _, level := range []string{"low", "medium", "high"} {
		cfg, err := FromLevel(level)
		if err != nil {
			t.Fatalf("FromLevel(%q): %v", level, err)
		}
		if cfg.Level != level {
			t.Fatalf("FromLevel(%q).Level = %q", level, cfg.Level)
		}
		if cfg.Alpha <= last {
			t.Fatalf("levels must be ascending: %q alpha %v after %v", level, cfg.Alpha, last)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("preset %q invalid: %v", level, err)
		}
		last = cfg.Alpha
	}
	_, err := FromLevel("catastrophic")
	if err == nil {
		t.Fatal("unknown level accepted")
	}
	for _, level := range Levels {
		if !strings.Contains(err.Error(), level) {
			t.Fatalf("error %q does not list level %q", err, level)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (*Config)(nil).Validate(); err != nil {
		t.Fatalf("nil config: %v", err)
	}
	if err := (&Config{Alpha: -1}).Validate(); err == nil {
		t.Fatal("negative alpha accepted")
	}
}

func TestCharge(t *testing.T) {
	g := torus.BlueGeneL()
	sameCol := [2]torus.Partition{
		{Base: torus.Coord{X: 0, Y: 0, Z: 0}, Shape: torus.Shape{X: 1, Y: 1, Z: 2}},
		{Base: torus.Coord{X: 0, Y: 0, Z: 4}, Shape: torus.Shape{X: 1, Y: 1, Z: 2}},
	}
	apart := torus.Partition{Base: torus.Coord{X: 2, Y: 2, Z: 0}, Shape: torus.Shape{X: 1, Y: 1, Z: 2}}

	var nilCfg *Config
	if got := nilCfg.Charge(g, sameCol[0], sameCol[1]); got != 0 {
		t.Fatalf("nil config charge = %v", got)
	}
	cfg := &Config{Alpha: 20}
	// One shared Z line -> exactly alpha.
	if got := cfg.Charge(g, sameCol[0], sameCol[1]); got != 20 {
		t.Fatalf("same-column charge = %v, want 20", got)
	}
	if got := cfg.Charge(g, sameCol[0], apart); got != 0 {
		t.Fatalf("disjoint-line charge = %v, want 0", got)
	}
	// Symmetric by construction.
	if cfg.Charge(g, sameCol[0], sameCol[1]) != cfg.Charge(g, sameCol[1], sameCol[0]) {
		t.Fatal("charge is not symmetric")
	}
}
