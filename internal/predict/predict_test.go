package predict

import (
	"math"
	"math/rand"
	"testing"

	"bgsched/internal/failure"
)

func indexWith(events ...failure.Event) *failure.Index {
	tr := failure.Trace(events)
	tr.Sort()
	return failure.NewIndex(128, tr)
}

func TestBalancingPredictor(t *testing.T) {
	ix := indexWith(failure.Event{Time: 100, Node: 3})
	b := &Balancing{Index: ix, Confidence: 0.4}
	if got := b.NodeFailProb(3, 0, 200); got != 0.4 {
		t.Fatalf("failing node prob = %g, want confidence 0.4", got)
	}
	if got := b.NodeFailProb(3, 150, 300); got != 0 {
		t.Fatalf("window after failure: prob = %g, want 0", got)
	}
	if got := b.NodeFailProb(5, 0, 200); got != 0 {
		t.Fatalf("healthy node prob = %g, want 0", got)
	}
	if got := b.NodeFailProb(3, 0, 50); got != 0 {
		t.Fatalf("window before failure: prob = %g, want 0", got)
	}
}

func TestTieBreakExtremes(t *testing.T) {
	ix := indexWith(failure.Event{Time: 100, Node: 3})
	always := NewTieBreak(ix, 1.0, 1)
	never := NewTieBreak(ix, 0.0, 1)
	if !always.NodeWillFail(3, 0, 200) {
		t.Fatal("accuracy 1 must detect a real failure")
	}
	if never.NodeWillFail(3, 0, 200) {
		t.Fatal("accuracy 0 must never answer yes")
	}
	// No false positives at any accuracy.
	if always.NodeWillFail(4, 0, 200) {
		t.Fatal("false positive on healthy node")
	}
	if always.NodeWillFail(3, 150, 300) {
		t.Fatal("false positive outside window")
	}
}

func TestTieBreakPartition(t *testing.T) {
	ix := indexWith(failure.Event{Time: 100, Node: 3})
	tb := NewTieBreak(ix, 1.0, 1)
	if !tb.PartitionWillFail([]int{1, 2, 3}, 0, 200) {
		t.Fatal("partition containing failing node must be flagged")
	}
	if tb.PartitionWillFail([]int{1, 2, 4}, 0, 200) {
		t.Fatal("healthy partition flagged")
	}
	if tb.PartitionWillFail(nil, 0, 200) {
		t.Fatal("empty partition flagged")
	}
}

// TestTieBreakAccuracyRate: over many distinct failures, the detection
// rate must approximate the accuracy parameter.
func TestTieBreakAccuracyRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var tr failure.Trace
	for i := 0; i < 4000; i++ {
		tr = append(tr, failure.Event{Time: float64(i)*10 + rng.Float64(), Node: i % 128})
	}
	tr.Sort()
	ix := failure.NewIndex(128, tr)
	for _, acc := range []float64{0.1, 0.5, 0.9} {
		tb := NewTieBreak(ix, acc, 77)
		hits := 0
		for i := 0; i < 4000; i++ {
			node := i % 128
			center := float64(i) * 10
			if tb.NodeWillFail(node, center-1, center+5) {
				hits++
			}
		}
		rate := float64(hits) / 4000
		if math.Abs(rate-acc) > 0.05 {
			t.Errorf("accuracy %g: detection rate %.3f, want within 0.05", acc, rate)
		}
	}
}

// TestTieBreakConsistency: the consistent predictor must answer
// identical queries identically, and its answer for a given failure
// must not depend on query order.
func TestTieBreakConsistency(t *testing.T) {
	ix := indexWith(
		failure.Event{Time: 100, Node: 3},
		failure.Event{Time: 500, Node: 7},
	)
	tb := NewTieBreak(ix, 0.5, 9)
	first := tb.NodeWillFail(3, 0, 200)
	for i := 0; i < 20; i++ {
		tb.NodeWillFail(7, 0, 600) // interleave other queries
		if got := tb.NodeWillFail(3, 0, 200); got != first {
			t.Fatal("consistent predictor changed its answer")
		}
	}
}

func TestTieBreakInconsistentMode(t *testing.T) {
	ix := indexWith(failure.Event{Time: 100, Node: 3})
	tb := &TieBreak{Index: ix, Accuracy: 0.5, Consistent: false, Rng: rand.New(rand.NewSource(5))}
	saw := map[bool]bool{}
	for i := 0; i < 200; i++ {
		saw[tb.NodeWillFail(3, 0, 200)] = true
	}
	if !saw[true] || !saw[false] {
		t.Fatal("inconsistent mode at accuracy 0.5 should produce both answers")
	}
}

func TestPerfectAndNull(t *testing.T) {
	ix := indexWith(failure.Event{Time: 100, Node: 3})
	p := &Perfect{Index: ix}
	if p.NodeFailProb(3, 0, 200) != 1 || p.NodeFailProb(4, 0, 200) != 0 {
		t.Fatal("Perfect NodeFailProb wrong")
	}
	if !p.PartitionWillFail([]int{3}, 0, 200) || p.PartitionWillFail([]int{4}, 0, 200) {
		t.Fatal("Perfect PartitionWillFail wrong")
	}
	var n Null
	if n.NodeFailProb(3, 0, 200) != 0 || n.PartitionWillFail([]int{3}, 0, 200) {
		t.Fatal("Null predictor must see no failures")
	}
}

func TestCombineIndependent(t *testing.T) {
	if got := CombineIndependent(nil); got != 0 {
		t.Fatalf("empty combine = %g", got)
	}
	if got := CombineIndependent([]float64{0.5}); got != 0.5 {
		t.Fatalf("single combine = %g", got)
	}
	got := CombineIndependent([]float64{0.5, 0.5})
	if math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("combine(0.5, 0.5) = %g, want 0.75", got)
	}
	if got := CombineIndependent([]float64{1, 0}); got != 1 {
		t.Fatalf("combine with certain failure = %g", got)
	}
}

func TestCombineMax(t *testing.T) {
	if got := CombineMax(nil); got != 0 {
		t.Fatalf("empty max = %g", got)
	}
	if got := CombineMax([]float64{0.2, 0.7, 0.3}); got != 0.7 {
		t.Fatalf("max = %g", got)
	}
}

// CombineIndependent always dominates CombineMax: the union bound of
// independent events is at least the largest single probability.
func TestCombineDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 1000; trial++ {
		probs := make([]float64, 1+rng.Intn(8))
		for i := range probs {
			probs[i] = rng.Float64()
		}
		ci, cm := CombineIndependent(probs), CombineMax(probs)
		if ci < cm-1e-12 {
			t.Fatalf("CombineIndependent(%v) = %g < CombineMax = %g", probs, ci, cm)
		}
		if ci < 0 || ci > 1 || cm < 0 || cm > 1 {
			t.Fatalf("combine out of [0,1]: %g, %g", ci, cm)
		}
	}
}

func TestHashUnitRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		u := hashUnit(i, float64(i)*3.7, 42)
		if u < 0 || u >= 1 {
			t.Fatalf("hashUnit out of range: %g", u)
		}
	}
	// Different seeds decorrelate.
	same := 0
	for i := 0; i < 1000; i++ {
		a := hashUnit(i, 100, 1) < 0.5
		b := hashUnit(i, 100, 2) < 0.5
		if a == b {
			same++
		}
	}
	if same > 600 || same < 400 {
		t.Fatalf("seeds correlate: %d/1000 agreements", same)
	}
}
