package predict

import (
	"fmt"
	"math/rand"
)

// NodePredictor is any predictor that can answer the boolean per-node
// question "will this node fail within (now, until]?".
type NodePredictor interface {
	NodeWillFail(node int, now, until float64) bool
}

// Confusion is the confusion matrix of a boolean predictor against the
// ground-truth failure log.
type Confusion struct {
	TP, FP, TN, FN int
}

// Precision returns TP / (TP + FP), or 0 when the predictor never says
// yes.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP / (TP + FN) — the paper's "accuracy" a is exactly
// this quantity (1 minus the false-negative rate).
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FalsePositiveRate returns FP / (FP + TN).
func (c Confusion) FalsePositiveRate() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// Total returns the number of evaluated queries.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// String renders the matrix with derived rates.
func (c Confusion) String() string {
	return fmt.Sprintf("tp=%d fp=%d tn=%d fn=%d precision=%.3f recall=%.3f fpr=%.4f",
		c.TP, c.FP, c.TN, c.FN, c.Precision(), c.Recall(), c.FalsePositiveRate())
}

// TruthSource answers ground-truth window queries; *failure.Index
// satisfies it.
type TruthSource interface {
	HasFailureWithin(node int, after, until float64) bool
	Nodes() int
}

// EvalConfig parameterises Evaluate.
type EvalConfig struct {
	Span    float64 // time range to sample query instants from
	Horizon float64 // prediction window length s
	Samples int     // number of random (node, time) queries
	Seed    int64
	// SkipBefore excludes query times earlier than this (e.g. to give
	// a learned predictor a training prefix).
	SkipBefore float64
}

// Evaluate measures a boolean node predictor against the ground truth
// over randomly sampled queries. The paper quotes exactly these
// quantities when justifying its accuracy knob: recall (= accuracy a)
// and the false-positive rate that real predictors keep "well below"
// the false-negative rate.
func Evaluate(truth TruthSource, pred NodePredictor, cfg EvalConfig) (Confusion, error) {
	if cfg.Span <= 0 || cfg.Horizon <= 0 {
		return Confusion{}, fmt.Errorf("predict: bad evaluation window span=%g horizon=%g", cfg.Span, cfg.Horizon)
	}
	if cfg.Samples < 1 {
		return Confusion{}, fmt.Errorf("predict: %d samples", cfg.Samples)
	}
	if cfg.SkipBefore >= cfg.Span {
		return Confusion{}, fmt.Errorf("predict: SkipBefore %g >= Span %g", cfg.SkipBefore, cfg.Span)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var c Confusion
	for i := 0; i < cfg.Samples; i++ {
		node := rng.Intn(truth.Nodes())
		t := cfg.SkipBefore + rng.Float64()*(cfg.Span-cfg.SkipBefore)
		actual := truth.HasFailureWithin(node, t, t+cfg.Horizon)
		predicted := pred.NodeWillFail(node, t, t+cfg.Horizon)
		switch {
		case actual && predicted:
			c.TP++
		case actual && !predicted:
			c.FN++
		case !actual && predicted:
			c.FP++
		default:
			c.TN++
		}
	}
	return c, nil
}
