package predict_test

import (
	"fmt"

	"bgsched/internal/failure"
	"bgsched/internal/predict"
)

// The paper's balancing predictor: it flags nodes that really fail
// within the query window, with probability equal to the confidence
// knob.
func ExampleBalancing() {
	trace := failure.Trace{{Time: 5000, Node: 3}}
	index := failure.NewIndex(128, trace)
	predictor := &predict.Balancing{Index: index, Confidence: 0.4}

	fmt.Println(predictor.NodeFailProb(3, 0, 6000))   // failure inside window
	fmt.Println(predictor.NodeFailProb(3, 6000, 9e9)) // window after the failure
	fmt.Println(predictor.NodeFailProb(7, 0, 6000))   // healthy node
	// Output:
	// 0.4
	// 0
	// 0
}

// Folding per-node probabilities into a partition failure probability
// with the Section 5.2.1 independence product.
func ExampleCombineIndependent() {
	pf := predict.CombineIndependent([]float64{0.5, 0.5, 0})
	fmt.Println(pf)
	// Output:
	// 0.75
}

// Measuring a predictor's quality against the ground-truth failure
// log. The tie-breaking predictor's measured recall equals its
// accuracy knob, with zero false positives by construction.
func ExampleEvaluate() {
	trace, _ := failure.Generate(failure.DefaultGeneratorConfig(64, 2000, 30*86400), 5)
	index := failure.NewIndex(64, trace)
	oracle := predict.NewTieBreak(index, 0.7, 9)

	conf, _ := predict.Evaluate(index, oracle, predict.EvalConfig{
		Span:    30 * 86400,
		Horizon: 12 * 3600,
		Samples: 30000,
		Seed:    2,
	})
	fmt.Printf("recall ~ %.1f, false positives: %d\n", conf.Recall(), conf.FP)
	// Output:
	// recall ~ 0.7, false positives: 0
}
