// Package predict implements the paper's fault-prediction mechanisms
// (Section 4). As in the paper, predictors are not statistical models:
// they answer queries by consulting the failure log itself, degraded by
// a tunable confidence (balancing predictor) or accuracy / false-
// negative rate (tie-breaking predictor). This isolates the scheduling
// question — "how good must a predictor be to help?" — from any
// particular prediction algorithm.
package predict

import (
	"math/rand"

	"bgsched/internal/failure"
)

// NodeProber is the balancing-predictor interface: the estimated
// probability that a node fails in the window (now, until].
type NodeProber interface {
	NodeFailProb(node int, now, until float64) float64
}

// PartitionOracle is the tie-breaking-predictor interface: a boolean
// answer to "will any node of this partition fail in (now, until]?".
type PartitionOracle interface {
	PartitionWillFail(nodes []int, now, until float64) bool
}

// Balancing is the paper's balancing predictor (Section 4.1): it
// returns Confidence for a node that really does fail inside the
// window according to the failure log, and 0 otherwise.
type Balancing struct {
	Index      *failure.Index
	Confidence float64 // the parameter "a" in [0, 1]
}

// NodeFailProb implements NodeProber.
func (b *Balancing) NodeFailProb(node int, now, until float64) float64 {
	if b.Index.HasFailureWithin(node, now, until) {
		return b.Confidence
	}
	return 0
}

var _ NodeProber = (*Balancing)(nil)

// TieBreak is the paper's tie-breaking predictor (Section 4.2). For a
// node that really fails inside the window it answers "yes" with
// probability Accuracy (so the false-negative probability is
// 1-Accuracy); for a node that does not fail it always answers "no"
// (no false positives, as justified in the paper). A partition is
// predicted to fail if any of its nodes answers "yes".
//
// When Consistent is true (the default used by the experiments), the
// yes/no draw for a given upcoming failure event is a deterministic
// hash of (node, failure time, seed): the predictor either "knows"
// about a particular failure or it does not, and repeated queries agree
// with each other. When Consistent is false each query draws fresh
// randomness from Rng, matching a literal reading of the paper.
type TieBreak struct {
	Index      *failure.Index
	Accuracy   float64 // the parameter "a" = 1 - P(false negative)
	Consistent bool
	IntSeed    int64      // folded into the consistent hash
	Rng        *rand.Rand // used when !Consistent
}

// NewTieBreak returns a consistent tie-breaking predictor.
func NewTieBreak(ix *failure.Index, accuracy float64, seed int64) *TieBreak {
	return &TieBreak{
		Index:      ix,
		Accuracy:   accuracy,
		Consistent: true,
		IntSeed:    seed,
	}
}

// hashUnit maps (node, time, seed) to a uniform float64 in [0, 1),
// deterministically across runs and processes.
func hashUnit(node int, t float64, seed int64) float64 {
	// A small xorshift-style mixer over the three inputs; this is not
	// cryptographic, just a stable stateless PRF.
	x := uint64(node+1)*0x9E3779B97F4A7C15 ^ uint64(int64(t*1000)) ^ uint64(seed)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// NodeWillFail answers the per-node query.
func (tb *TieBreak) NodeWillFail(node int, now, until float64) bool {
	ft, ok := tb.Index.NextFailure(node, now)
	if !ok || ft > until {
		return false // no real failure in window: never a false positive
	}
	if tb.Accuracy >= 1 {
		return true
	}
	if tb.Accuracy <= 0 {
		return false
	}
	if tb.Consistent {
		return hashUnit(node, ft, tb.IntSeed) < tb.Accuracy
	}
	return tb.Rng.Float64() < tb.Accuracy
}

// PartitionWillFail implements PartitionOracle.
func (tb *TieBreak) PartitionWillFail(nodes []int, now, until float64) bool {
	for _, n := range nodes {
		if tb.NodeWillFail(n, now, until) {
			return true
		}
	}
	return false
}

var _ PartitionOracle = (*TieBreak)(nil)

// Perfect is an oracle with confidence/accuracy 1: it reports exactly
// the failure log. It implements both predictor interfaces and is used
// for upper-bound ablations.
type Perfect struct {
	Index *failure.Index
}

// NodeFailProb implements NodeProber.
func (p *Perfect) NodeFailProb(node int, now, until float64) float64 {
	if p.Index.HasFailureWithin(node, now, until) {
		return 1
	}
	return 0
}

// PartitionWillFail implements PartitionOracle.
func (p *Perfect) PartitionWillFail(nodes []int, now, until float64) bool {
	for _, n := range nodes {
		if p.Index.HasFailureWithin(n, now, until) {
			return true
		}
	}
	return false
}

// Null is the no-prediction predictor (a = 0): every node looks healthy.
// Schedulers driven by Null degenerate to the fault-unaware baseline.
type Null struct{}

// NodeFailProb implements NodeProber.
func (Null) NodeFailProb(int, float64, float64) float64 { return 0 }

// PartitionWillFail implements PartitionOracle.
func (Null) PartitionWillFail([]int, float64, float64) bool { return false }

var (
	_ NodeProber      = (*Perfect)(nil)
	_ PartitionOracle = (*Perfect)(nil)
	_ NodeProber      = Null{}
	_ PartitionOracle = Null{}
)

// CombineIndependent folds per-node failure probabilities into a
// partition failure probability assuming independence:
// P_f = 1 - prod(1 - p_n). This is the Section 5.2.1 formula.
func CombineIndependent(probs []float64) float64 {
	surv := 1.0
	for _, p := range probs {
		surv *= 1 - p
	}
	return 1 - surv
}

// CombineMax folds per-node probabilities with the Section 4.1 formula
// P_f = max_n p_n.
func CombineMax(probs []float64) float64 {
	m := 0.0
	for _, p := range probs {
		if p > m {
			m = p
		}
	}
	return m
}
