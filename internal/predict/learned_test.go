package predict

import (
	"testing"

	"bgsched/internal/failure"
)

func TestLearnedValidate(t *testing.T) {
	ix := failure.NewIndex(8, nil)
	good := NewLearned(ix)
	if err := good.Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	cases := []func(*Learned){
		func(l *Learned) { l.History = nil },
		func(l *Learned) { l.TrainWindow = 0 },
		func(l *Learned) { l.BurstBoost = 0.5 },
		func(l *Learned) { l.BurstWindow = -1 },
		func(l *Learned) { l.PriorRate = -1 },
		func(l *Learned) { l.Threshold = 1.5 },
	}
	for i, mut := range cases {
		l := NewLearned(ix)
		mut(l)
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestLearnedUsesOnlyHistory(t *testing.T) {
	// A node with failures only in the future must look (almost) safe:
	// the prediction may not peek past the query time.
	tr := failure.Trace{{Time: 5000, Node: 3}, {Time: 6000, Node: 3}}
	ix := failure.NewIndex(8, tr)
	l := NewLearned(ix)
	p := l.NodeFailProb(3, 1000, 2000)
	// Only the prior contributes: tiny.
	if p > 0.01 {
		t.Fatalf("future leakage: P = %g before any observed failure", p)
	}
	// After the failures are history, the node looks hot.
	pAfter := l.NodeFailProb(3, 7000, 7000+3600)
	if pAfter <= p {
		t.Fatalf("history ignored: %g <= %g", pAfter, p)
	}
}

func TestLearnedBurstBoost(t *testing.T) {
	tr := failure.Trace{{Time: 1000, Node: 2}}
	ix := failure.NewIndex(8, tr)
	l := NewLearned(ix)
	l.BurstWindow = 3600
	// Query shortly after the failure: hot.
	hot := l.NodeFailProb(2, 1500, 1500+3600)
	// Query long after: cold (same single event in the train window).
	cold := l.NodeFailProb(2, 1000+10*3600, 1000+11*3600)
	if hot <= cold {
		t.Fatalf("burst boost missing: hot %g <= cold %g", hot, cold)
	}
}

func TestLearnedProbabilityRange(t *testing.T) {
	tr := failure.Trace{}
	for i := 0; i < 50; i++ {
		tr = append(tr, failure.Event{Time: float64(i * 100), Node: 1})
	}
	ix := failure.NewIndex(8, tr)
	l := NewLearned(ix)
	for _, horizon := range []float64{1, 3600, 1e6} {
		p := l.NodeFailProb(1, 5000, 5000+horizon)
		if p < 0 || p > 1 {
			t.Fatalf("probability %g outside [0,1]", p)
		}
	}
	if got := l.NodeFailProb(1, 100, 100); got != 0 {
		t.Fatalf("empty window prob = %g", got)
	}
	if got := l.NodeFailProb(1, 100, 50); got != 0 {
		t.Fatalf("inverted window prob = %g", got)
	}
}

func TestLearnedPartitionOracle(t *testing.T) {
	// Node 4 fails every hour: near-certain to fail again soon.
	tr := failure.Trace{}
	for i := 0; i < 100; i++ {
		tr = append(tr, failure.Event{Time: float64(i) * 3600, Node: 4})
	}
	ix := failure.NewIndex(8, tr)
	l := NewLearned(ix)
	now := 100 * 3600.0
	if !l.NodeWillFail(4, now, now+4*3600) {
		t.Fatal("chronically failing node not flagged")
	}
	if l.NodeWillFail(5, now, now+4*3600) {
		t.Fatal("quiet node flagged")
	}
	if !l.PartitionWillFail([]int{5, 4}, now, now+4*3600) {
		t.Fatal("partition containing hot node not flagged")
	}
	if l.PartitionWillFail([]int{5, 6}, now, now+4*3600) {
		t.Fatal("quiet partition flagged")
	}
}

// The learned predictor must beat the base rate on a skewed bursty
// trace: recall well above the fraction of time flagged.
func TestLearnedPredictiveSkill(t *testing.T) {
	span := 60 * 24 * 3600.0
	cfg := failure.DefaultGeneratorConfig(128, 600, span)
	tr, err := failure.Generate(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	ix := failure.NewIndex(128, tr)
	l := NewLearned(ix)
	conf, err := Evaluate(ix, l, EvalConfig{
		Span:       span,
		Horizon:    6 * 3600,
		Samples:    20000,
		Seed:       3,
		SkipBefore: span / 4, // training prefix
	})
	if err != nil {
		t.Fatal(err)
	}
	if conf.TP == 0 {
		t.Fatalf("no true positives: %v", conf)
	}
	if conf.Recall() < 0.15 {
		t.Fatalf("recall %.3f too low: %v", conf.Recall(), conf)
	}
	if conf.FalsePositiveRate() > 0.10 {
		t.Fatalf("false positive rate %.3f too high: %v", conf.FalsePositiveRate(), conf)
	}
	// The paper's premise: fpr well below the false-negative-driven
	// miss rate is achievable by simple predictors.
	if conf.FalsePositiveRate() >= 1-conf.Recall() {
		t.Logf("note: fpr %.3f not below miss rate %.3f (acceptable, but unusual)",
			conf.FalsePositiveRate(), 1-conf.Recall())
	}
}

func TestEvaluateErrors(t *testing.T) {
	ix := failure.NewIndex(8, nil)
	l := NewLearned(ix)
	bad := []EvalConfig{
		{Span: 0, Horizon: 1, Samples: 10},
		{Span: 100, Horizon: 0, Samples: 10},
		{Span: 100, Horizon: 1, Samples: 0},
		{Span: 100, Horizon: 1, Samples: 10, SkipBefore: 200},
	}
	for i, cfg := range bad {
		if _, err := Evaluate(ix, l, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestConfusionDerivedRates(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, TN: 85, FN: 5}
	if got := c.Precision(); got != 0.8 {
		t.Errorf("precision = %g", got)
	}
	if got := c.Recall(); got != 8.0/13 {
		t.Errorf("recall = %g", got)
	}
	if got := c.FalsePositiveRate(); got != 2.0/87 {
		t.Errorf("fpr = %g", got)
	}
	if c.Total() != 100 {
		t.Errorf("total = %d", c.Total())
	}
	var zero Confusion
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.FalsePositiveRate() != 0 {
		t.Error("zero matrix rates")
	}
	if c.String() == "" {
		t.Error("String")
	}
}

// The tie-break predictor measured through Evaluate must show recall
// equal to its accuracy knob and zero false positives — the knob and
// the measurement agree.
func TestEvaluateTieBreakMatchesKnob(t *testing.T) {
	span := 30 * 24 * 3600.0
	tr, err := failure.Generate(failure.DefaultGeneratorConfig(64, 2000, span), 5)
	if err != nil {
		t.Fatal(err)
	}
	ix := failure.NewIndex(64, tr)
	tb := NewTieBreak(ix, 0.7, 9)
	conf, err := Evaluate(ix, tb, EvalConfig{Span: span, Horizon: 12 * 3600, Samples: 30000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if conf.FP != 0 {
		t.Fatalf("tie-break predictor produced %d false positives", conf.FP)
	}
	if r := conf.Recall(); r < 0.6 || r > 0.8 {
		t.Fatalf("recall %.3f, want ~0.7 (the accuracy knob)", r)
	}
}
