package predict

import (
	"fmt"
	"math"

	"bgsched/internal/failure"
)

// Learned is a statistical failure predictor in the spirit of the
// event-prediction work the paper builds on (Sahoo et al., KDD 2003):
// it estimates per-node hazard rates from the observed failure history
// and raises them during bursts. Unlike the Balancing and TieBreak
// predictors — which consult the future failure log degraded by a
// quality knob — Learned only ever reads events strictly before the
// query time, so it exhibits genuine false positives and false
// negatives, and its quality is a measured property rather than a
// parameter.
//
// Model: the hazard of node n at time t is the event count over the
// trailing TrainWindow divided by the window, multiplied by BurstBoost
// if the node failed within the trailing BurstWindow (failures cluster;
// a recent failure is the strongest predictor of another one). The
// probability of failure within (t, t+s] is 1 - exp(-hazard*s).
type Learned struct {
	History *failure.Index

	// TrainWindow is the trailing history length used for the base
	// rate, seconds. Typical: one to four weeks.
	TrainWindow float64
	// BurstWindow is the recency window that marks a node as "hot".
	BurstWindow float64
	// BurstBoost multiplies the hazard of a hot node.
	BurstBoost float64
	// MachineBoost multiplies every node's hazard while any node has
	// failed within BurstWindow: real failure logs (and this
	// repository's generator) cluster simultaneous events across
	// different nodes, so one node's failure raises everyone's
	// short-term risk.
	MachineBoost float64
	// PriorRate is the machine-wide failure rate (per node per second)
	// assumed before any local evidence; it keeps cold nodes from
	// looking perfectly safe.
	PriorRate float64
	// Threshold converts probabilities into the boolean partition
	// oracle: a node with window failure probability above it counts
	// as "will fail".
	Threshold float64

	// machine-hot memo (see machineHot).
	hotCacheTime float64
	hotCache     bool
	hotCacheSet  bool
}

// NewLearned returns a Learned predictor with sensible defaults for a
// machine-day-scale failure density.
func NewLearned(history *failure.Index) *Learned {
	return &Learned{
		History:      history,
		TrainWindow:  14 * 24 * 3600,
		BurstWindow:  2 * 3600,
		BurstBoost:   50,
		MachineBoost: 8,
		PriorRate:    1.0 / (128 * 4 * 24 * 3600), // ~1 failure per 4 machine-days
		Threshold:    0.25,
	}
}

// Validate reports configuration errors.
func (l *Learned) Validate() error {
	switch {
	case l.History == nil:
		return fmt.Errorf("predict: Learned.History is required")
	case l.TrainWindow <= 0:
		return fmt.Errorf("predict: TrainWindow = %g", l.TrainWindow)
	case l.BurstWindow < 0 || l.BurstBoost < 1:
		return fmt.Errorf("predict: burst config %g/%g", l.BurstWindow, l.BurstBoost)
	case l.MachineBoost < 1:
		return fmt.Errorf("predict: MachineBoost = %g, want >= 1", l.MachineBoost)
	case l.PriorRate < 0:
		return fmt.Errorf("predict: PriorRate = %g", l.PriorRate)
	case l.Threshold < 0 || l.Threshold > 1:
		return fmt.Errorf("predict: Threshold = %g", l.Threshold)
	}
	return nil
}

// hazard estimates the failure rate (per second) of node at time now,
// using only events strictly before now.
func (l *Learned) hazard(node int, now float64) float64 {
	lo := now - l.TrainWindow
	if lo < 0 {
		lo = 0
	}
	window := now - lo
	rate := l.PriorRate
	if window > 0 {
		// CountWithin is (after, until]; use until just below now so
		// an event exactly at the query instant is excluded.
		n := l.History.CountWithin(node, lo, math.Nextafter(now, 0))
		rate += float64(n) / window
	}
	if l.BurstWindow > 0 {
		if l.History.HasFailureWithin(node, now-l.BurstWindow, math.Nextafter(now, 0)) {
			rate *= l.BurstBoost
		} else if l.MachineBoost > 1 && l.machineHot(now) {
			rate *= l.MachineBoost
		}
	}
	return rate
}

// machineHot reports whether any node failed within the trailing
// BurstWindow. The last answer is memoised per query time: placement
// evaluation asks about every node of a partition at the same instant.
func (l *Learned) machineHot(now float64) bool {
	if l.hotCacheTime == now && l.hotCacheSet {
		return l.hotCache
	}
	hot := false
	for n := 0; n < l.History.Nodes(); n++ {
		if l.History.HasFailureWithin(n, now-l.BurstWindow, math.Nextafter(now, 0)) {
			hot = true
			break
		}
	}
	l.hotCacheTime = now
	l.hotCache = hot
	l.hotCacheSet = true
	return hot
}

// NodeFailProb implements NodeProber: P(node fails in (now, until]).
func (l *Learned) NodeFailProb(node int, now, until float64) float64 {
	if until <= now {
		return 0
	}
	return 1 - math.Exp(-l.hazard(node, now)*(until-now))
}

// NodeWillFail answers the boolean per-node query via Threshold.
func (l *Learned) NodeWillFail(node int, now, until float64) bool {
	return l.NodeFailProb(node, now, until) > l.Threshold
}

// PartitionWillFail implements PartitionOracle.
func (l *Learned) PartitionWillFail(nodes []int, now, until float64) bool {
	for _, n := range nodes {
		if l.NodeWillFail(n, now, until) {
			return true
		}
	}
	return false
}

var (
	_ NodeProber      = (*Learned)(nil)
	_ PartitionOracle = (*Learned)(nil)
)
