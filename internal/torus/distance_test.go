package torus

import (
	"math/rand"
	"testing"
)

func TestAxisDist(t *testing.T) {
	cases := []struct {
		a, b, dim int
		wrap      bool
		want      int
	}{
		{0, 0, 8, true, 0},
		{0, 3, 8, true, 3},
		{0, 5, 8, true, 3}, // shorter the wrapped way
		{0, 5, 8, false, 5},
		{7, 0, 8, true, 1},
		{1, 3, 4, true, 2},
		{0, 3, 4, true, 1},
	}
	for _, c := range cases {
		if got := AxisDist(c.a, c.b, c.dim, c.wrap); got != c.want {
			t.Errorf("AxisDist(%d,%d,dim=%d,wrap=%v) = %d, want %d", c.a, c.b, c.dim, c.wrap, got, c.want)
		}
	}
}

// bruteAvgPairwiseDist averages g.Dist over every ordered node pair of
// the partition, self-pairs included — the definition AvgPairwiseDist
// computes in closed per-axis form.
func bruteAvgPairwiseDist(g Geometry, p Partition) float64 {
	ids := g.Nodes(p)
	total := 0
	for _, a := range ids {
		for _, b := range ids {
			total += g.Dist(g.CoordOf(a), g.CoordOf(b))
		}
	}
	return float64(total) / float64(len(ids)*len(ids))
}

func TestAvgPairwiseDistMatchesBruteForce(t *testing.T) {
	g := BlueGeneL()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		p := randomPartition(rng, g)
		want := bruteAvgPairwiseDist(g, p)
		got := g.AvgPairwiseDist(p)
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("AvgPairwiseDist(%v) = %v, brute force %v", p, got, want)
		}
	}
	// Compact vs stretched: a 2x2x2 cube must beat a 1x1x8 line.
	cube := Partition{Shape: Shape{X: 2, Y: 2, Z: 2}}
	line := Partition{Shape: Shape{X: 1, Y: 1, Z: 8}}
	if g.AvgPairwiseDist(cube) >= g.AvgPairwiseDist(line) {
		t.Fatalf("cube %v should be more compact than line %v",
			g.AvgPairwiseDist(cube), g.AvgPairwiseDist(line))
	}
}

func randomPartition(rng *rand.Rand, g Geometry) Partition {
	shape := Shape{
		X: 1 + rng.Intn(g.Dims.X),
		Y: 1 + rng.Intn(g.Dims.Y),
		Z: 1 + rng.Intn(g.Dims.Z),
	}
	base := Coord{X: rng.Intn(g.Dims.X), Y: rng.Intn(g.Dims.Y), Z: rng.Intn(g.Dims.Z)}
	return Partition{Base: base, Shape: shape}
}

// bruteSharedLines counts, per axis, the lines whose node sets
// intersect both partitions.
func bruteSharedLines(g Geometry, p, q Partition) int {
	type lineKey struct{ axis, a, b int }
	occupied := func(part Partition) map[lineKey]bool {
		m := make(map[lineKey]bool)
		for _, id := range g.Nodes(part) {
			c := g.CoordOf(id)
			m[lineKey{0, c.Y, c.Z}] = true // line along X
			m[lineKey{1, c.X, c.Z}] = true // line along Y
			m[lineKey{2, c.X, c.Y}] = true // line along Z
		}
		return m
	}
	pm, qm := occupied(p), occupied(q)
	n := 0
	for k := range pm {
		if qm[k] {
			n++
		}
	}
	return n
}

func TestSharedLinesMatchesBruteForce(t *testing.T) {
	g := BlueGeneL()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		p, q := randomPartition(rng, g), randomPartition(rng, g)
		if got, want := g.SharedLines(p, q), bruteSharedLines(g, p, q); got != want {
			t.Fatalf("SharedLines(%v, %v) = %d, brute force %d", p, q, got, want)
		}
	}
}

func TestSharedLinesDisjointColumns(t *testing.T) {
	g := BlueGeneL()
	p := Partition{Base: Coord{0, 0, 0}, Shape: Shape{1, 1, 2}}
	q := Partition{Base: Coord{0, 0, 4}, Shape: Shape{1, 1, 2}}
	// Same (x, y) column: exactly one shared Z line, no X or Y lines.
	if got := g.SharedLines(p, q); got != 1 {
		t.Fatalf("SharedLines same column = %d, want 1", got)
	}
	far := Partition{Base: Coord{2, 2, 0}, Shape: Shape{1, 1, 2}}
	if got := g.SharedLines(p, far); got != 0 {
		t.Fatalf("SharedLines disjoint lines = %d, want 0", got)
	}
}

// bruteLineLoad counts, for every busy node outside p, the number of
// axes on which that node lies on a line p occupies.
func bruteLineLoad(gr *Grid, p Partition) int {
	g := gr.Geometry()
	load := 0
	for id := 0; id < g.N(); id++ {
		if gr.NodeFree(id) || g.ContainsNode(p, id) {
			continue
		}
		c := g.CoordOf(id)
		inX := inSpan(c.X, p.Base.X, p.Shape.X, g.Dims.X)
		inY := inSpan(c.Y, p.Base.Y, p.Shape.Y, g.Dims.Y)
		inZ := inSpan(c.Z, p.Base.Z, p.Shape.Z, g.Dims.Z)
		if inX && inY { // on one of p's Z lines
			load++
		}
		if inX && inZ { // on one of p's Y lines
			load++
		}
		if inY && inZ { // on one of p's X lines
			load++
		}
	}
	return load
}

func TestLineLoadMatchesBruteForce(t *testing.T) {
	g := BlueGeneL()
	gr := NewGrid(g)
	if got := gr.LineLoad(Partition{Shape: Shape{2, 2, 2}}); got != 0 {
		t.Fatalf("LineLoad on empty grid = %d, want 0", got)
	}
	rng := rand.New(rand.NewSource(17))
	owner := int64(1)
	for id := 0; id < g.N(); id++ {
		if rng.Float64() < 0.35 {
			p := Partition{Base: g.CoordOf(id), Shape: Shape{1, 1, 1}}
			if err := gr.Allocate(p, owner); err != nil {
				t.Fatal(err)
			}
			owner++
		}
	}
	for i := 0; i < 200; i++ {
		p := randomPartition(rng, g)
		if got, want := gr.LineLoad(p), bruteLineLoad(gr, p); got != want {
			t.Fatalf("LineLoad(%v) = %d, brute force %d", p, got, want)
		}
	}
}
