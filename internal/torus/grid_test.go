package torus

import (
	"math/rand"
	"testing"
)

func TestGridAllocateRelease(t *testing.T) {
	g := BlueGeneL()
	gr := NewGrid(g)
	if gr.FreeCount() != 128 {
		t.Fatalf("new grid FreeCount = %d, want 128", gr.FreeCount())
	}
	p := Partition{Base: Coord{0, 0, 0}, Shape: Shape{2, 2, 2}}
	if err := gr.Allocate(p, 42); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if gr.FreeCount() != 120 {
		t.Fatalf("FreeCount after alloc = %d, want 120", gr.FreeCount())
	}
	for _, id := range g.Nodes(p) {
		if gr.OwnerAt(id) != 42 {
			t.Fatalf("node %d owner = %d, want 42", id, gr.OwnerAt(id))
		}
		if gr.NodeFree(id) {
			t.Fatalf("node %d should not be free", id)
		}
	}
	if gr.PartitionFree(p) {
		t.Fatal("allocated partition reported free")
	}
	if err := gr.Release(p, 42); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if gr.FreeCount() != 128 {
		t.Fatalf("FreeCount after release = %d, want 128", gr.FreeCount())
	}
	if !gr.PartitionFree(p) {
		t.Fatal("released partition not free")
	}
}

func TestGridAllocateErrors(t *testing.T) {
	g := BlueGeneL()
	gr := NewGrid(g)
	p := Partition{Base: Coord{0, 0, 0}, Shape: Shape{2, 2, 2}}
	if err := gr.Allocate(p, FreeOwner); err == nil {
		t.Error("Allocate with FreeOwner id must fail")
	}
	if err := gr.Allocate(Partition{Base: Coord{0, 0, 0}, Shape: Shape{9, 1, 1}}, 1); err == nil {
		t.Error("Allocate with oversized shape must fail")
	}
	if err := gr.Allocate(p, 1); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	// Overlapping allocation must fail and leave state unchanged.
	q := Partition{Base: Coord{1, 1, 1}, Shape: Shape{2, 2, 2}}
	if err := gr.Allocate(q, 2); err == nil {
		t.Error("overlapping Allocate must fail")
	}
	if gr.FreeCount() != 120 {
		t.Errorf("failed Allocate changed FreeCount to %d", gr.FreeCount())
	}
	for id := 0; id < g.N(); id++ {
		if gr.OwnerAt(id) == 2 {
			t.Fatal("failed Allocate left owner marks behind")
		}
	}
}

func TestGridReleaseErrors(t *testing.T) {
	g := BlueGeneL()
	gr := NewGrid(g)
	p := Partition{Base: Coord{0, 0, 0}, Shape: Shape{2, 2, 2}}
	if err := gr.Allocate(p, 7); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := gr.Release(p, 8); err == nil {
		t.Error("Release by wrong owner must fail")
	}
	if gr.FreeCount() != 120 {
		t.Errorf("failed Release changed FreeCount to %d", gr.FreeCount())
	}
	if err := gr.Release(Partition{Base: Coord{0, 0, 0}, Shape: Shape{0, 1, 1}}, 7); err == nil {
		t.Error("Release of invalid partition must fail")
	}
}

func TestGridWrapAllocation(t *testing.T) {
	g := BlueGeneL()
	gr := NewGrid(g)
	// Partition wrapping around all three dimensions.
	p := Partition{Base: Coord{3, 3, 7}, Shape: Shape{2, 2, 2}}
	if err := gr.Allocate(p, 5); err != nil {
		t.Fatalf("Allocate wrapped: %v", err)
	}
	expected := map[Coord]bool{}
	for _, x := range []int{3, 0} {
		for _, y := range []int{3, 0} {
			for _, z := range []int{7, 0} {
				expected[Coord{x, y, z}] = true
			}
		}
	}
	for id := 0; id < g.N(); id++ {
		want := expected[g.CoordOf(id)]
		got := gr.OwnerAt(id) == 5
		if got != want {
			t.Fatalf("node %v allocated=%v, want %v", g.CoordOf(id), got, want)
		}
	}
}

func TestGridClone(t *testing.T) {
	g := BlueGeneL()
	gr := NewGrid(g)
	p := Partition{Base: Coord{0, 0, 0}, Shape: Shape{4, 4, 1}}
	if err := gr.Allocate(p, 3); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	cl := gr.Clone()
	if cl.FreeCount() != gr.FreeCount() {
		t.Fatal("clone FreeCount mismatch")
	}
	// Mutating the clone must not affect the original.
	if err := cl.Release(p, 3); err != nil {
		t.Fatalf("clone Release: %v", err)
	}
	if gr.PartitionFree(p) {
		t.Fatal("mutating clone affected original grid")
	}
}

func TestGridFreeMask(t *testing.T) {
	g := BlueGeneL()
	gr := NewGrid(g)
	p := Partition{Base: Coord{1, 1, 1}, Shape: Shape{1, 1, 3}}
	if err := gr.Allocate(p, 9); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	mask := gr.FreeMask()
	for id := 0; id < g.N(); id++ {
		if mask[id] != gr.NodeFree(id) {
			t.Fatalf("FreeMask[%d] = %v, NodeFree = %v", id, mask[id], gr.NodeFree(id))
		}
	}
}

// TestGridDoubleFreeDoubleAllocate covers the cell-level misuse cases:
// allocating over a busy cell and freeing an already-free cell must
// both error and leave every occupancy summary untouched.
func TestGridDoubleFreeDoubleAllocate(t *testing.T) {
	g := BlueGeneL()
	cell := Partition{Base: Coord{1, 2, 3}, Shape: Shape{1, 1, 1}}
	block := Partition{Base: Coord{1, 2, 2}, Shape: Shape{1, 1, 4}}
	cases := []struct {
		name string
		prep func(gr *Grid) error // establishes the pre-state
		op   func(gr *Grid) error // the misuse that must fail
	}{
		{
			"double allocate same cell",
			func(gr *Grid) error { return gr.Allocate(cell, 1) },
			func(gr *Grid) error { return gr.Allocate(cell, 2) },
		},
		{
			"double allocate overlapping block",
			func(gr *Grid) error { return gr.Allocate(cell, 1) },
			func(gr *Grid) error { return gr.Allocate(block, 2) },
		},
		{
			"double free via repeated release",
			func(gr *Grid) error {
				if err := gr.Allocate(cell, 1); err != nil {
					return err
				}
				return gr.Release(cell, 1)
			},
			func(gr *Grid) error { return gr.Release(cell, 1) },
		},
		{
			"free-owner release of free cells",
			func(gr *Grid) error { return nil },
			func(gr *Grid) error { return gr.Release(cell, FreeOwner) },
		},
		{
			"free-owner release of busy cells",
			func(gr *Grid) error { return gr.Allocate(cell, 1) },
			func(gr *Grid) error { return gr.Release(cell, FreeOwner) },
		},
		{
			"free-owner allocate",
			func(gr *Grid) error { return nil },
			func(gr *Grid) error { return gr.Allocate(cell, FreeOwner) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gr := NewGrid(g)
			if err := tc.prep(gr); err != nil {
				t.Fatalf("prep: %v", err)
			}
			free, hash := gr.FreeCount(), gr.OccupancyHash()
			if err := tc.op(gr); err == nil {
				t.Fatal("misuse succeeded, want error")
			}
			if gr.FreeCount() != free {
				t.Errorf("failed op changed FreeCount %d -> %d", free, gr.FreeCount())
			}
			if gr.OccupancyHash() != hash {
				t.Errorf("failed op changed OccupancyHash")
			}
			assertSummaries(t, gr)
		})
	}
}

// assertSummaries recomputes every incremental occupancy summary from
// the owner array and compares it against the maintained values.
func assertSummaries(t *testing.T, gr *Grid) {
	t.Helper()
	g := gr.Geometry()
	dims := g.Dims
	var hash uint64
	colHash := make([]uint64, dims.X*dims.Y)
	colBusy := make([]int, dims.X*dims.Y)
	plane := [3][]int{make([]int, dims.X), make([]int, dims.Y), make([]int, dims.Z)}
	free := 0
	for id := 0; id < g.N(); id++ {
		if gr.NodeFree(id) {
			free++
			continue
		}
		k := nodeKey(id)
		col := id / dims.Z
		hash ^= k
		colHash[col] ^= k
		colBusy[col]++
		c := g.CoordOf(id)
		plane[0][c.X]++
		plane[1][c.Y]++
		plane[2][c.Z]++
	}
	if gr.FreeCount() != free {
		t.Errorf("FreeCount = %d, recomputed %d", gr.FreeCount(), free)
	}
	if gr.OccupancyHash() != hash {
		t.Errorf("OccupancyHash = %#x, recomputed %#x", gr.OccupancyHash(), hash)
	}
	for col := range colBusy {
		if gr.ColumnBusy(col) != colBusy[col] {
			t.Errorf("ColumnBusy(%d) = %d, recomputed %d", col, gr.ColumnBusy(col), colBusy[col])
		}
		if gr.ColumnHash(col) != colHash[col] {
			t.Errorf("ColumnHash(%d) = %#x, recomputed %#x", col, gr.ColumnHash(col), colHash[col])
		}
	}
	for axis := 0; axis < 3; axis++ {
		for k := range plane[axis] {
			if gr.PlaneBusy(axis, k) != plane[axis][k] {
				t.Errorf("PlaneBusy(%d,%d) = %d, recomputed %d", axis, k, gr.PlaneBusy(axis, k), plane[axis][k])
			}
		}
	}
}

// TestGridOccupancyHashRecurrence: the hash must depend only on the
// free/busy pattern, so allocate+release round-trips restore it, equal
// patterns hash equally across distinct grids, and owner identities do
// not contribute.
func TestGridOccupancyHashRecurrence(t *testing.T) {
	g := BlueGeneL()
	gr := NewGrid(g)
	empty := gr.OccupancyHash()
	p := Partition{Base: Coord{3, 3, 6}, Shape: Shape{2, 2, 3}} // wraps all axes
	if err := gr.Allocate(p, 1); err != nil {
		t.Fatal(err)
	}
	busy := gr.OccupancyHash()
	if busy == empty {
		t.Fatal("allocation did not change the occupancy hash")
	}
	if err := gr.Release(p, 1); err != nil {
		t.Fatal(err)
	}
	if gr.OccupancyHash() != empty {
		t.Fatal("allocate+release did not restore the occupancy hash")
	}
	other := NewGrid(g)
	if err := other.Allocate(p, 999); err != nil { // different owner, same pattern
		t.Fatal(err)
	}
	if other.OccupancyHash() != busy {
		t.Fatal("equal occupancy patterns hash differently across grids/owners")
	}
	if other.ID() == gr.ID() {
		t.Fatal("distinct grids share an ID")
	}
	if cl := other.Clone(); cl.OccupancyHash() != busy || cl.ID() == other.ID() {
		t.Fatal("clone must keep the hash and get a fresh ID")
	}
}

// TestGridRandomWorkload exercises a long random allocate/release
// sequence and checks the free-count invariant throughout.
func TestGridRandomWorkload(t *testing.T) {
	g := BlueGeneL()
	gr := NewGrid(g)
	rng := rand.New(rand.NewSource(99))
	type alloc struct {
		p     Partition
		owner int64
	}
	var live []alloc
	nextOwner := int64(1)
	for step := 0; step < 5000; step++ {
		if len(live) > 0 && rng.Intn(2) == 0 {
			i := rng.Intn(len(live))
			a := live[i]
			if err := gr.Release(a.p, a.owner); err != nil {
				t.Fatalf("step %d: Release(%v): %v", step, a.p, err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		} else {
			p := Partition{
				Base:  Coord{rng.Intn(4), rng.Intn(4), rng.Intn(8)},
				Shape: Shape{1 + rng.Intn(2), 1 + rng.Intn(2), 1 + rng.Intn(3)},
			}
			if gr.PartitionFree(p) {
				if err := gr.Allocate(p, nextOwner); err != nil {
					t.Fatalf("step %d: Allocate(%v): %v", step, p, err)
				}
				live = append(live, alloc{p, nextOwner})
				nextOwner++
			}
		}
		want := g.N()
		for _, a := range live {
			want -= a.p.Size()
		}
		if gr.FreeCount() != want {
			t.Fatalf("step %d: FreeCount = %d, want %d", step, gr.FreeCount(), want)
		}
		if step%500 == 0 {
			assertSummaries(t, gr)
		}
	}
	assertSummaries(t, gr)
}
