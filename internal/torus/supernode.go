package torus

import "fmt"

// SupernodeMap relates the physical compute-node torus to the
// supernode torus the scheduler allocates. On BlueGene/L the machine
// is a 32x32x64 torus of compute nodes, partitions are composed of
// 8x8x8 blocks, and the scheduler therefore sees a 4x4x8 torus of
// 512-node supernodes (Section 3.1). Failures happen to compute
// nodes; the map folds them onto the supernode that contains them.
type SupernodeMap struct {
	Compute Geometry // the physical machine
	Block   Shape    // compute nodes per supernode along each axis
	Super   Geometry // the scheduler's view
}

// NewSupernodeMap validates divisibility and builds the map.
func NewSupernodeMap(compute Geometry, block Shape) (*SupernodeMap, error) {
	if !block.Positive() {
		return nil, fmt.Errorf("torus: block %v not positive", block)
	}
	if compute.Dims.X%block.X != 0 || compute.Dims.Y%block.Y != 0 || compute.Dims.Z%block.Z != 0 {
		return nil, fmt.Errorf("torus: block %v does not tile machine %v", block, compute.Dims)
	}
	super := NewGeometry(compute.Dims.X/block.X, compute.Dims.Y/block.Y, compute.Dims.Z/block.Z, compute.Wrap)
	return &SupernodeMap{Compute: compute, Block: block, Super: super}, nil
}

// BlueGeneLMap returns the real machine's mapping: a 32x32x64 compute
// torus tiled by 8x8x8 blocks into the 4x4x8 supernode torus.
func BlueGeneLMap() *SupernodeMap {
	m, err := NewSupernodeMap(NewGeometry(32, 32, 64, true), Shape{X: 8, Y: 8, Z: 8})
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	return m
}

// SupernodeOf returns the dense supernode id containing the compute
// node with the given dense id.
func (m *SupernodeMap) SupernodeOf(computeID int) (int, error) {
	if computeID < 0 || computeID >= m.Compute.N() {
		return 0, fmt.Errorf("torus: compute node %d outside machine of %d", computeID, m.Compute.N())
	}
	c := m.Compute.CoordOf(computeID)
	return m.Super.Index(Coord{X: c.X / m.Block.X, Y: c.Y / m.Block.Y, Z: c.Z / m.Block.Z}), nil
}

// ComputeNodesPerSupernode returns the block volume (512 on BG/L).
func (m *SupernodeMap) ComputeNodesPerSupernode() int { return m.Block.Size() }
