package torus

import "fmt"

// Partition is a contiguous rectangular block of nodes, identified by a
// base coordinate and an extent along each dimension. On a torus the
// block may wrap around any dimension.
type Partition struct {
	Base  Coord
	Shape Shape
}

// Size returns the number of nodes in the partition.
func (p Partition) Size() int { return p.Shape.Size() }

// String returns the partition as "base+shape".
func (p Partition) String() string {
	return fmt.Sprintf("%v+%v", p.Base, p.Shape)
}

// ForEachNode calls fn with the dense node id of every node in the
// partition, stopping early if fn returns false. It reports whether the
// iteration ran to completion.
func (g Geometry) ForEachNode(p Partition, fn func(id int) bool) bool {
	for dx := 0; dx < p.Shape.X; dx++ {
		x := p.Base.X + dx
		if x >= g.Dims.X {
			x -= g.Dims.X
		}
		for dy := 0; dy < p.Shape.Y; dy++ {
			y := p.Base.Y + dy
			if y >= g.Dims.Y {
				y -= g.Dims.Y
			}
			rowBase := (x*g.Dims.Y + y) * g.Dims.Z
			for dz := 0; dz < p.Shape.Z; dz++ {
				z := p.Base.Z + dz
				if z >= g.Dims.Z {
					z -= g.Dims.Z
				}
				if !fn(rowBase + z) {
					return false
				}
			}
		}
	}
	return true
}

// Nodes returns the dense ids of every node in the partition.
func (g Geometry) Nodes(p Partition) []int {
	ids := make([]int, 0, p.Size())
	g.ForEachNode(p, func(id int) bool {
		ids = append(ids, id)
		return true
	})
	return ids
}

// ContainsNode reports whether the node with the given dense id lies
// inside partition p.
func (g Geometry) ContainsNode(p Partition, id int) bool {
	c := g.CoordOf(id)
	return inSpan(c.X, p.Base.X, p.Shape.X, g.Dims.X) &&
		inSpan(c.Y, p.Base.Y, p.Shape.Y, g.Dims.Y) &&
		inSpan(c.Z, p.Base.Z, p.Shape.Z, g.Dims.Z)
}

// inSpan reports whether coordinate v lies in the (possibly wrapping)
// interval [start, start+length) modulo dim.
func inSpan(v, start, length, dim int) bool {
	if length >= dim {
		return true
	}
	d := v - start
	if d < 0 {
		d += dim
	}
	return d < length
}

// spansOverlap reports whether two wrapping intervals
// [a, a+al) and [b, b+bl) modulo dim intersect.
func spansOverlap(a, al, b, bl, dim int) bool {
	if al >= dim || bl >= dim {
		return true
	}
	// They overlap iff either start lies within the other interval.
	return inSpan(b, a, al, dim) || inSpan(a, b, bl, dim)
}

// Overlaps reports whether partitions p and q share at least one node.
func (g Geometry) Overlaps(p, q Partition) bool {
	return spansOverlap(p.Base.X, p.Shape.X, q.Base.X, q.Shape.X, g.Dims.X) &&
		spansOverlap(p.Base.Y, p.Shape.Y, q.Base.Y, q.Shape.Y, g.Dims.Y) &&
		spansOverlap(p.Base.Z, p.Shape.Z, q.Base.Z, q.Shape.Z, g.Dims.Z)
}

// ShapesOf returns every shape <x,y,z> with x*y*z == size that fits in
// the machine, in deterministic lexicographic order. Orientations are
// distinct shapes (1x2x4 and 4x2x1 are both returned). This is the set
// SHAPES of the paper's Appendix 9.
func (g Geometry) ShapesOf(size int) []Shape {
	var shapes []Shape
	if size < 1 || size > g.N() {
		return nil
	}
	for x := 1; x <= g.Dims.X; x++ {
		if size%x != 0 {
			continue
		}
		rest := size / x
		for y := 1; y <= g.Dims.Y; y++ {
			if rest%y != 0 {
				continue
			}
			z := rest / y
			if z >= 1 && z <= g.Dims.Z {
				shapes = append(shapes, Shape{x, y, z})
			}
		}
	}
	return shapes
}

// FeasibleSizes returns, in increasing order, every partition size that
// can be realised as a rectangular block on this machine.
func (g Geometry) FeasibleSizes() []int {
	seen := make(map[int]bool)
	for x := 1; x <= g.Dims.X; x++ {
		for y := 1; y <= g.Dims.Y; y++ {
			for z := 1; z <= g.Dims.Z; z++ {
				seen[x*y*z] = true
			}
		}
	}
	sizes := make([]int, 0, len(seen))
	for s := 1; s <= g.N(); s++ {
		if seen[s] {
			sizes = append(sizes, s)
		}
	}
	return sizes
}

// RoundUpFeasible returns the smallest feasible partition size >= want,
// or (0, false) if want exceeds the machine size. Job requests that
// cannot form a rectangular block (e.g. 11 nodes on a 4x4x8 torus) are
// rounded up to the next feasible size, as in earlier BG/L scheduling
// studies.
func (g Geometry) RoundUpFeasible(want int) (int, bool) {
	if want < 1 {
		want = 1
	}
	if want > g.N() {
		return 0, false
	}
	for s := want; s <= g.N(); s++ {
		if len(g.ShapesOf(s)) > 0 {
			return s, true
		}
	}
	return 0, false
}
