// Package torus models the three-dimensional torus of BlueGene/L
// supernodes: coordinates, wraparound arithmetic, rectangular partitions,
// and the occupancy grid the scheduler allocates from.
//
// Following the paper (Section 3.1), the machine seen by the job
// scheduler is a 4x4x8 torus of supernodes, each supernode being an
// 8x8x8 block of 512 compute nodes. Throughout this repository "node"
// means a supernode unless explicitly stated otherwise.
package torus

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Coord is a node coordinate in the torus.
type Coord struct {
	X, Y, Z int
}

// String returns the coordinate as "(x,y,z)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d,%d)", c.X, c.Y, c.Z) }

// Shape is the extent of a rectangular partition along each dimension.
// All extents are at least 1 for a valid shape.
type Shape struct {
	X, Y, Z int
}

// Size returns the number of nodes covered by the shape.
func (s Shape) Size() int { return s.X * s.Y * s.Z }

// String returns the shape as "XxYxZ".
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.X, s.Y, s.Z) }

// Positive reports whether every extent is at least 1.
func (s Shape) Positive() bool { return s.X >= 1 && s.Y >= 1 && s.Z >= 1 }

// FitsIn reports whether the shape fits inside dims without rotation.
func (s Shape) FitsIn(dims Shape) bool {
	return s.X <= dims.X && s.Y <= dims.Y && s.Z <= dims.Z
}

// Geometry describes a torus: its dimensions and whether partitions may
// wrap around the edges. BG/L is a torus, so Wrap is normally true; a
// mesh (Wrap=false) is supported for ablation studies.
type Geometry struct {
	Dims Shape
	Wrap bool
}

// NewGeometry returns the geometry of an x*y*z machine.
// It panics if any dimension is not positive: geometry is fixed program
// configuration, not runtime input.
func NewGeometry(x, y, z int, wrap bool) Geometry {
	if x < 1 || y < 1 || z < 1 {
		panic(fmt.Sprintf("torus: invalid geometry %dx%dx%d", x, y, z))
	}
	return Geometry{Dims: Shape{x, y, z}, Wrap: wrap}
}

// BlueGeneL returns the 4x4x8 supernode torus used throughout the paper.
func BlueGeneL() Geometry { return NewGeometry(4, 4, 8, true) }

// Parse builds a geometry from a spec like "4x4x8" (torus) or
// "4x4x8/mesh". It is the format the command-line tools accept.
func Parse(spec string) (Geometry, error) {
	wrap := true
	if i := strings.IndexByte(spec, '/'); i >= 0 {
		switch spec[i+1:] {
		case "mesh":
			wrap = false
		case "torus":
		default:
			return Geometry{}, fmt.Errorf("torus: bad topology %q (want torus or mesh)", spec[i+1:])
		}
		spec = spec[:i]
	}
	parts := strings.Split(spec, "x")
	if len(parts) != 3 {
		return Geometry{}, fmt.Errorf("torus: bad geometry %q (want XxYxZ)", spec)
	}
	dims := make([]int, 3)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return Geometry{}, fmt.Errorf("torus: bad dimension %q in %q", p, spec)
		}
		dims[i] = v
	}
	return NewGeometry(dims[0], dims[1], dims[2], wrap), nil
}

// Spec renders the geometry in the format Parse accepts.
func (g Geometry) Spec() string {
	topo := "torus"
	if !g.Wrap {
		topo = "mesh"
	}
	return fmt.Sprintf("%dx%dx%d/%s", g.Dims.X, g.Dims.Y, g.Dims.Z, topo)
}

// N returns the total number of nodes in the machine.
func (g Geometry) N() int { return g.Dims.Size() }

// Contains reports whether c is a canonical coordinate of the machine
// (each component within [0, dim)).
func (g Geometry) Contains(c Coord) bool {
	return c.X >= 0 && c.X < g.Dims.X &&
		c.Y >= 0 && c.Y < g.Dims.Y &&
		c.Z >= 0 && c.Z < g.Dims.Z
}

// Index maps a canonical coordinate to a dense node id in [0, N).
// Ids are assigned x-major: id = (x*DimsY + y)*DimsZ + z.
func (g Geometry) Index(c Coord) int {
	return (c.X*g.Dims.Y+c.Y)*g.Dims.Z + c.Z
}

// CoordOf is the inverse of Index.
func (g Geometry) CoordOf(id int) Coord {
	z := id % g.Dims.Z
	rest := id / g.Dims.Z
	y := rest % g.Dims.Y
	x := rest / g.Dims.Y
	return Coord{x, y, z}
}

// Normalize wraps a coordinate into canonical range. With Wrap=false it
// returns ok=false for out-of-range coordinates.
func (g Geometry) Normalize(c Coord) (Coord, bool) {
	if g.Contains(c) {
		return c, true
	}
	if !g.Wrap {
		return Coord{}, false
	}
	return Coord{mod(c.X, g.Dims.X), mod(c.Y, g.Dims.Y), mod(c.Z, g.Dims.Z)}, true
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// ErrBadPartition is returned for structurally invalid partitions.
var ErrBadPartition = errors.New("torus: invalid partition")

// ValidPartition reports whether p is a legal partition of the machine:
// positive shape, shape no larger than the machine in any dimension,
// base canonical, and — on a mesh — no wraparound.
func (g Geometry) ValidPartition(p Partition) bool {
	if !p.Shape.Positive() || !p.Shape.FitsIn(g.Dims) || !g.Contains(p.Base) {
		return false
	}
	if !g.Wrap {
		if p.Base.X+p.Shape.X > g.Dims.X ||
			p.Base.Y+p.Shape.Y > g.Dims.Y ||
			p.Base.Z+p.Shape.Z > g.Dims.Z {
			return false
		}
	}
	return true
}
