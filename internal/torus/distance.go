package torus

// Communication geometry: wrapped hop distances, shared torus lines
// between partitions, and the line load a partition's traffic sees from
// the rest of the machine. These are the inputs of the placement scorer
// (internal/partition) and the contention model (internal/contention):
// everything here is pure integer arithmetic over coordinates, so the
// derived scores are byte-reproducible.

// AxisDist returns the hop distance between coordinates a and b along
// one dimension of extent dim: the shorter way around when wrap is set,
// the linear distance otherwise.
func AxisDist(a, b, dim int, wrap bool) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if wrap && dim-d < d {
		d = dim - d
	}
	return d
}

// Dist returns the Manhattan hop distance between two coordinates on
// the machine (per-axis shortest way, wrap-aware).
func (g Geometry) Dist(a, b Coord) int {
	return AxisDist(a.X, b.X, g.Dims.X, g.Wrap) +
		AxisDist(a.Y, b.Y, g.Dims.Y, g.Wrap) +
		AxisDist(a.Z, b.Z, g.Dims.Z, g.Wrap)
}

// axisMeanDist returns the mean hop distance along one axis over all
// ordered offset pairs (i, j) in [0, ext)^2 — self-pairs included — for
// a span of extent ext on a dimension of size dim. The result is
// independent of the span's base: torus distance depends only on the
// offset difference.
func axisMeanDist(ext, dim int, wrap bool) float64 {
	if ext <= 1 {
		return 0
	}
	total := 0
	for i := 0; i < ext; i++ {
		for j := 0; j < ext; j++ {
			total += AxisDist(i%dim, j%dim, dim, wrap)
		}
	}
	return float64(total) / float64(ext*ext)
}

// AvgPairwiseDist returns the mean Manhattan hop distance over all
// ordered node pairs of the partition (self-pairs included, so a
// single-node partition scores 0). Manhattan distance decomposes per
// axis and offsets within a span are uniform, so the mean is the sum of
// three per-axis means — O(extent^2) per axis rather than O(size^2)
// pairs.
//
// This is the compactness half of the placement score: Bender et al.
// use exactly this metric ("average pairwise distance") as the proxy
// for a job's internal communication cost.
func (g Geometry) AvgPairwiseDist(p Partition) float64 {
	return axisMeanDist(p.Shape.X, g.Dims.X, g.Wrap) +
		axisMeanDist(p.Shape.Y, g.Dims.Y, g.Wrap) +
		axisMeanDist(p.Shape.Z, g.Dims.Z, g.Wrap)
}

// spanOverlapLen returns how many coordinate values in [0, dim) lie in
// both wrapping intervals [a, a+al) and [b, b+bl) modulo dim. On a
// torus the intersection of two wrapped intervals can be two disjoint
// segments, so this counts positions rather than subtracting endpoints.
func spanOverlapLen(a, al, b, bl, dim int) int {
	n := 0
	for v := 0; v < dim; v++ {
		if inSpan(v, a, al, dim) && inSpan(v, b, bl, dim) {
			n++
		}
	}
	return n
}

// SharedLines returns the number of axis-parallel torus lines occupied
// by both partitions, summed over the three axes. A line along the X
// axis is identified by a (y, z) pair; p occupies it iff y falls in p's
// Y span and z in its Z span, so the X-axis count is the product of the
// Y- and Z-span overlaps (and cyclically for the other axes).
//
// For two disjoint running partitions this counts the torus lines on
// which their traffic shares wires — the pairwise link load the
// contention model charges for.
func (g Geometry) SharedLines(p, q Partition) int {
	ox := spanOverlapLen(p.Base.X, p.Shape.X, q.Base.X, q.Shape.X, g.Dims.X)
	oy := spanOverlapLen(p.Base.Y, p.Shape.Y, q.Base.Y, q.Shape.Y, g.Dims.Y)
	oz := spanOverlapLen(p.Base.Z, p.Shape.Z, q.Base.Z, q.Shape.Z, g.Dims.Z)
	return oy*oz + ox*oz + ox*oy
}

// LineLoad returns the projected link overlap between partition p and
// the grid's current occupancy: over every torus line p occupies, the
// number of busy nodes on that line that lie outside p. Each such node
// is a neighbor competing for wires p's traffic crosses, so lower is
// better. Nodes shared by several of p's lines are counted once per
// line (once per axis), matching SharedLines' per-axis accounting.
func (gr *Grid) LineLoad(p Partition) int {
	g := gr.Geometry()
	dims := g.Dims
	load := 0
	// Lines along Z: one per (x, y) column of p.
	for dx := 0; dx < p.Shape.X; dx++ {
		x := (p.Base.X + dx) % dims.X
		for dy := 0; dy < p.Shape.Y; dy++ {
			y := (p.Base.Y + dy) % dims.Y
			col := (x*dims.Y + y) * dims.Z
			for z := 0; z < dims.Z; z++ {
				if !gr.NodeFree(col+z) && !inSpan(z, p.Base.Z, p.Shape.Z, dims.Z) {
					load++
				}
			}
		}
	}
	// Lines along Y: one per (x, z) pair of p.
	for dx := 0; dx < p.Shape.X; dx++ {
		x := (p.Base.X + dx) % dims.X
		for dz := 0; dz < p.Shape.Z; dz++ {
			z := (p.Base.Z + dz) % dims.Z
			for y := 0; y < dims.Y; y++ {
				if !gr.NodeFree((x*dims.Y+y)*dims.Z+z) && !inSpan(y, p.Base.Y, p.Shape.Y, dims.Y) {
					load++
				}
			}
		}
	}
	// Lines along X: one per (y, z) pair of p.
	for dy := 0; dy < p.Shape.Y; dy++ {
		y := (p.Base.Y + dy) % dims.Y
		for dz := 0; dz < p.Shape.Z; dz++ {
			z := (p.Base.Z + dz) % dims.Z
			for x := 0; x < dims.X; x++ {
				if !gr.NodeFree((x*dims.Y+y)*dims.Z+z) && !inSpan(x, p.Base.X, p.Shape.X, dims.X) {
					load++
				}
			}
		}
	}
	return load
}
