package torus_test

import (
	"fmt"

	"bgsched/internal/torus"
)

// Allocating and releasing a partition on the BlueGene/L torus.
func Example() {
	machine := torus.BlueGeneL()
	grid := torus.NewGrid(machine)

	p := torus.Partition{
		Base:  torus.Coord{X: 3, Y: 3, Z: 7}, // wraps around all axes
		Shape: torus.Shape{X: 2, Y: 2, Z: 2},
	}
	if err := grid.Allocate(p, 42); err != nil {
		fmt.Println("allocate:", err)
		return
	}
	fmt.Println("allocated", p, "free nodes:", grid.FreeCount())

	if err := grid.Release(p, 42); err != nil {
		fmt.Println("release:", err)
		return
	}
	fmt.Println("released, free nodes:", grid.FreeCount())
	// Output:
	// allocated (3,3,7)+2x2x2 free nodes: 120
	// released, free nodes: 128
}

// Job sizes that cannot form a rectangular block are rounded up to the
// next feasible size.
func ExampleGeometry_RoundUpFeasible() {
	g := torus.BlueGeneL()
	for _, want := range []int{7, 11, 100} {
		got, _ := g.RoundUpFeasible(want)
		fmt.Printf("%d -> %d\n", want, got)
	}
	// Output:
	// 7 -> 7
	// 11 -> 12
	// 100 -> 112
}

// The paper's SHAPES set: every orientation of a given partition size.
func ExampleGeometry_ShapesOf() {
	g := torus.BlueGeneL()
	for _, s := range g.ShapesOf(16) {
		fmt.Println(s)
	}
	// Output:
	// 1x2x8
	// 1x4x4
	// 2x1x8
	// 2x2x4
	// 2x4x2
	// 4x1x4
	// 4x2x2
	// 4x4x1
}

// Mapping compute-node failures onto scheduler supernodes.
func ExampleSupernodeMap() {
	m := torus.BlueGeneLMap()
	computeNode := m.Compute.Index(torus.Coord{X: 17, Y: 9, Z: 40})
	super, _ := m.SupernodeOf(computeNode)
	fmt.Println("compute node", computeNode, "is in supernode", m.Super.CoordOf(super))
	// Output:
	// compute node 35432 is in supernode (2,1,5)
}
