package torus

import (
	"fmt"
	"sync/atomic"
)

// FreeOwner is the owner value of an unallocated node.
const FreeOwner int64 = 0

// gridIDs hands out process-unique grid identities; see Grid.ID.
var gridIDs atomic.Uint64

// Grid is the occupancy map of the machine: which job (by opaque int64
// owner id) holds each node. Owner ids must be non-zero.
//
// Alongside the raw owner array the grid maintains incremental
// occupancy summaries, updated in O(1) per node on every allocate and
// release (so O(partition volume) per operation):
//
//   - a Zobrist-style occupancy hash of the free/busy pattern, whole
//     grid and per z-column, used by caching partition finders to
//     detect state changes (and state *recurrences*: an allocate
//     followed by the matching release restores the hash);
//   - per-z-column busy counts (the projection of the occupancy onto
//     the x-y plane);
//   - per-axis plane busy counts (the projection onto each axis).
//
// Grid is not safe for concurrent use; the simulator is single-threaded
// by design (a discrete-event loop), and experiment-level parallelism
// uses one Grid per simulation.
type Grid struct {
	geom      Geometry
	owner     []int64
	freeCount int

	id        uint64   // process-unique identity, fresh per NewGrid/Clone
	hash      uint64   // occupancy hash of the free/busy pattern
	colHash   []uint64 // occupancy hash per z-column (len X*Y)
	colBusy   []int    // busy nodes per z-column (len X*Y)
	planeBusy [3][]int // busy nodes per plane orthogonal to x, y, z

	watchers []colWatcher // column-invalidation callbacks, in handle order
	nextW    int          // next watcher handle
}

// colWatcher is one registered column-invalidation callback.
type colWatcher struct {
	h  int
	fn func(col int)
}

// NewGrid returns an empty occupancy grid for the machine.
func NewGrid(g Geometry) *Grid {
	return &Grid{
		geom:      g,
		owner:     make([]int64, g.N()),
		freeCount: g.N(),
		id:        gridIDs.Add(1),
		colHash:   make([]uint64, g.Dims.X*g.Dims.Y),
		colBusy:   make([]int, g.Dims.X*g.Dims.Y),
		planeBusy: [3][]int{
			make([]int, g.Dims.X),
			make([]int, g.Dims.Y),
			make([]int, g.Dims.Z),
		},
	}
}

// Geometry returns the machine geometry of the grid.
func (gr *Grid) Geometry() Geometry { return gr.geom }

// FreeCount returns the number of unallocated nodes.
func (gr *Grid) FreeCount() int { return gr.freeCount }

// NodeFree reports whether the node with the given dense id is free.
func (gr *Grid) NodeFree(id int) bool { return gr.owner[id] == FreeOwner }

// OwnerAt returns the owner of the node with the given dense id, or
// FreeOwner if the node is unallocated.
func (gr *Grid) OwnerAt(id int) int64 { return gr.owner[id] }

// ID returns the grid's process-unique identity. Every NewGrid and
// Clone gets a fresh id, so caches keyed by it can never confuse two
// grids (unlike pointer keys, which the allocator may reuse).
func (gr *Grid) ID() uint64 { return gr.id }

// OccupancyHash returns a 64-bit hash of the grid's free/busy pattern
// (owner identities do not contribute). It is maintained incrementally:
// flipping a node XORs a fixed per-node key, so any sequence of
// operations that restores the occupancy pattern restores the hash.
// Caching finders use it as their invalidation key.
func (gr *Grid) OccupancyHash() uint64 { return gr.hash }

// ColumnHash returns the occupancy hash restricted to z-column col
// (col = x*DimsY + y). Finders use it to resynchronise per-column
// derived state only for the columns that actually changed.
func (gr *Grid) ColumnHash(col int) uint64 { return gr.colHash[col] }

// ColumnBusy returns the number of allocated nodes in z-column col:
// the occupancy projected onto the x-y plane.
func (gr *Grid) ColumnBusy(col int) int { return gr.colBusy[col] }

// PlaneBusy returns the number of allocated nodes in the k-th plane
// orthogonal to the given axis (0 = x, 1 = y, 2 = z): the occupancy
// projected onto that axis.
func (gr *Grid) PlaneBusy(axis, k int) int { return gr.planeBusy[axis][k] }

// AddColumnWatcher registers a callback invoked whenever the occupancy
// of a z-column changes (once per node flip, so a watcher typically
// dedupes). Caching finders use it to mark derived per-column state
// dirty instead of re-scanning every column hash on each query. The
// returned handle removes the watcher via RemoveColumnWatcher. Watchers
// are not copied by Clone: derived state is attached to one grid
// identity.
func (gr *Grid) AddColumnWatcher(fn func(col int)) int {
	h := gr.nextW
	gr.nextW++
	gr.watchers = append(gr.watchers, colWatcher{h: h, fn: fn})
	return h
}

// RemoveColumnWatcher unregisters a watcher by the handle
// AddColumnWatcher returned. Unknown handles are ignored.
func (gr *Grid) RemoveColumnWatcher(h int) {
	for i, w := range gr.watchers {
		if w.h == h {
			gr.watchers = append(gr.watchers[:i], gr.watchers[i+1:]...)
			return
		}
	}
}

// notifyCol fires the column watchers for one changed column.
func (gr *Grid) notifyCol(col int) {
	for _, w := range gr.watchers {
		w.fn(col)
	}
}

// nodeKey is the fixed Zobrist key of a node: a splitmix64 step over
// the dense id. Deterministic across grids so equal occupancy patterns
// hash equally on any grid of the same geometry.
func nodeKey(id int) uint64 {
	z := uint64(id) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// flip maintains the incremental summaries for one node changing
// between free and busy; delta is +1 when the node becomes busy and
// -1 when it becomes free.
func (gr *Grid) flip(id, delta int) {
	k := nodeKey(id)
	col := id / gr.geom.Dims.Z
	gr.hash ^= k
	gr.colHash[col] ^= k
	gr.colBusy[col] += delta
	gr.planeBusy[0][col/gr.geom.Dims.Y] += delta
	gr.planeBusy[1][col%gr.geom.Dims.Y] += delta
	gr.planeBusy[2][id%gr.geom.Dims.Z] += delta
	if len(gr.watchers) > 0 {
		gr.notifyCol(col)
	}
}

// PartitionHashDelta returns the XOR of the Zobrist keys of p's nodes:
// exactly the amount OccupancyHash changes by when every node of p
// flips between free and busy. It is read-only, letting callers
// evaluate hypothetical placements (hash of "grid with p allocated")
// without mutating the grid or firing watchers.
func (gr *Grid) PartitionHashDelta(p Partition) uint64 {
	var d uint64
	gr.geom.ForEachNode(p, func(id int) bool {
		d ^= nodeKey(id)
		return true
	})
	return d
}

// PartitionFree reports whether every node of p is unallocated.
func (gr *Grid) PartitionFree(p Partition) bool {
	return gr.geom.ForEachNode(p, func(id int) bool {
		return gr.owner[id] == FreeOwner
	})
}

// Allocate assigns every node of p to owner. It fails if the partition
// is invalid, the owner id is FreeOwner, or any node is already taken
// (double-allocating a cell is an error, never a silent overwrite).
func (gr *Grid) Allocate(p Partition, owner int64) error {
	if owner == FreeOwner {
		return fmt.Errorf("torus: cannot allocate to the free owner id")
	}
	if !gr.geom.ValidPartition(p) {
		return fmt.Errorf("torus: allocate %v: %w", p, ErrBadPartition)
	}
	if !gr.PartitionFree(p) {
		return fmt.Errorf("torus: allocate %v for owner %d: partition not free", p, owner)
	}
	gr.geom.ForEachNode(p, func(id int) bool {
		gr.owner[id] = owner
		gr.flip(id, +1)
		return true
	})
	gr.freeCount -= p.Size()
	return nil
}

// Release frees every node of p, verifying each is held by owner.
// Releasing with the free owner id is an error: it would "free" cells
// that are already free, silently corrupting the free count and the
// occupancy summaries (the double-free analogue of Allocate's
// not-free check).
func (gr *Grid) Release(p Partition, owner int64) error {
	if owner == FreeOwner {
		return fmt.Errorf("torus: release %v: cannot release the free owner id (double free)", p)
	}
	if !gr.geom.ValidPartition(p) {
		return fmt.Errorf("torus: release %v: %w", p, ErrBadPartition)
	}
	ok := gr.geom.ForEachNode(p, func(id int) bool {
		return gr.owner[id] == owner
	})
	if !ok {
		return fmt.Errorf("torus: release %v: partition not fully owned by %d", p, owner)
	}
	gr.geom.ForEachNode(p, func(id int) bool {
		gr.owner[id] = FreeOwner
		gr.flip(id, -1)
		return true
	})
	gr.freeCount += p.Size()
	return nil
}

// Clone returns a deep copy of the grid under a fresh identity.
// Schedulers use clones to evaluate hypothetical placements without
// disturbing machine state.
func (gr *Grid) Clone() *Grid {
	cp := &Grid{
		geom:      gr.geom,
		owner:     append([]int64(nil), gr.owner...),
		freeCount: gr.freeCount,
		id:        gridIDs.Add(1),
		hash:      gr.hash,
		colHash:   append([]uint64(nil), gr.colHash...),
		colBusy:   append([]int(nil), gr.colBusy...),
	}
	for a := range gr.planeBusy {
		cp.planeBusy[a] = append([]int(nil), gr.planeBusy[a]...)
	}
	return cp
}

// CopyFrom overwrites the grid's contents with src's, keeping the
// receiver's identity and watchers. It is the allocation-free
// counterpart of Clone for reusable scratch grids: a stable identity
// lets caching finders keep one derived state for the scratch instead
// of rebuilding per clone. Column watchers fire for every column whose
// occupancy differs between the old and new contents, so derived state
// stays exactly as fresh as it would under individual flips. The
// geometries must match.
func (gr *Grid) CopyFrom(src *Grid) error {
	if gr.geom != src.geom {
		return fmt.Errorf("torus: CopyFrom geometry mismatch: %s vs %s", gr.geom.Spec(), src.geom.Spec())
	}
	if len(gr.watchers) > 0 {
		for col := range gr.colHash {
			if gr.colHash[col] != src.colHash[col] {
				gr.notifyCol(col)
			}
		}
	}
	copy(gr.owner, src.owner)
	gr.freeCount = src.freeCount
	gr.hash = src.hash
	copy(gr.colHash, src.colHash)
	copy(gr.colBusy, src.colBusy)
	for a := range gr.planeBusy {
		copy(gr.planeBusy[a], src.planeBusy[a])
	}
	return nil
}

// Owners returns a copy of the raw owner array, one owner id per dense
// node id (FreeOwner for unallocated nodes). It is the grid's complete
// source-of-truth state: every incremental summary — free count,
// occupancy hashes, column and plane projections — is derived from it,
// which is what makes NewGridFromOwners an exact restore.
func (gr *Grid) Owners() []int64 {
	return append([]int64(nil), gr.owner...)
}

// NewGridFromOwners reconstructs a grid of geometry g from a serialized
// owner array, rebuilding every incremental summary from scratch. The
// result carries a fresh grid identity, so finder caches keyed by grid
// id can never serve state from the pre-snapshot grid; the occupancy
// hashes, being pure functions of the free/busy pattern, come out equal
// to the original's.
func NewGridFromOwners(g Geometry, owners []int64) (*Grid, error) {
	if len(owners) != g.N() {
		return nil, fmt.Errorf("torus: owner array has %d entries, geometry %s has %d nodes",
			len(owners), g.Spec(), g.N())
	}
	gr := NewGrid(g)
	for id, o := range owners {
		if o == FreeOwner {
			continue
		}
		gr.owner[id] = o
		gr.flip(id, +1)
		gr.freeCount--
	}
	return gr, nil
}

// FreeMask returns a snapshot bitmap where true means the node is free.
func (gr *Grid) FreeMask() []bool {
	m := make([]bool, len(gr.owner))
	for i, o := range gr.owner {
		m[i] = o == FreeOwner
	}
	return m
}
