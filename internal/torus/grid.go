package torus

import "fmt"

// FreeOwner is the owner value of an unallocated node.
const FreeOwner int64 = 0

// Grid is the occupancy map of the machine: which job (by opaque int64
// owner id) holds each node. Owner ids must be non-zero.
//
// Grid is not safe for concurrent use; the simulator is single-threaded
// by design (a discrete-event loop), and experiment-level parallelism
// uses one Grid per simulation.
type Grid struct {
	geom      Geometry
	owner     []int64
	freeCount int
}

// NewGrid returns an empty occupancy grid for the machine.
func NewGrid(g Geometry) *Grid {
	return &Grid{
		geom:      g,
		owner:     make([]int64, g.N()),
		freeCount: g.N(),
	}
}

// Geometry returns the machine geometry of the grid.
func (gr *Grid) Geometry() Geometry { return gr.geom }

// FreeCount returns the number of unallocated nodes.
func (gr *Grid) FreeCount() int { return gr.freeCount }

// NodeFree reports whether the node with the given dense id is free.
func (gr *Grid) NodeFree(id int) bool { return gr.owner[id] == FreeOwner }

// OwnerAt returns the owner of the node with the given dense id, or
// FreeOwner if the node is unallocated.
func (gr *Grid) OwnerAt(id int) int64 { return gr.owner[id] }

// PartitionFree reports whether every node of p is unallocated.
func (gr *Grid) PartitionFree(p Partition) bool {
	return gr.geom.ForEachNode(p, func(id int) bool {
		return gr.owner[id] == FreeOwner
	})
}

// Allocate assigns every node of p to owner. It fails if the partition
// is invalid, the owner id is FreeOwner, or any node is already taken.
func (gr *Grid) Allocate(p Partition, owner int64) error {
	if owner == FreeOwner {
		return fmt.Errorf("torus: cannot allocate to the free owner id")
	}
	if !gr.geom.ValidPartition(p) {
		return fmt.Errorf("torus: allocate %v: %w", p, ErrBadPartition)
	}
	if !gr.PartitionFree(p) {
		return fmt.Errorf("torus: allocate %v for owner %d: partition not free", p, owner)
	}
	gr.geom.ForEachNode(p, func(id int) bool {
		gr.owner[id] = owner
		return true
	})
	gr.freeCount -= p.Size()
	return nil
}

// Release frees every node of p, verifying each is held by owner.
func (gr *Grid) Release(p Partition, owner int64) error {
	if !gr.geom.ValidPartition(p) {
		return fmt.Errorf("torus: release %v: %w", p, ErrBadPartition)
	}
	ok := gr.geom.ForEachNode(p, func(id int) bool {
		return gr.owner[id] == owner
	})
	if !ok {
		return fmt.Errorf("torus: release %v: partition not fully owned by %d", p, owner)
	}
	gr.geom.ForEachNode(p, func(id int) bool {
		gr.owner[id] = FreeOwner
		return true
	})
	gr.freeCount += p.Size()
	return nil
}

// Clone returns a deep copy of the grid. Schedulers use clones to
// evaluate hypothetical placements without disturbing machine state.
func (gr *Grid) Clone() *Grid {
	owner := make([]int64, len(gr.owner))
	copy(owner, gr.owner)
	return &Grid{geom: gr.geom, owner: owner, freeCount: gr.freeCount}
}

// FreeMask returns a snapshot bitmap where true means the node is free.
func (gr *Grid) FreeMask() []bool {
	m := make([]bool, len(gr.owner))
	for i, o := range gr.owner {
		m[i] = o == FreeOwner
	}
	return m
}
