package torus

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGeometryPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive dimension")
		}
	}()
	NewGeometry(4, 0, 8, true)
}

func TestBlueGeneL(t *testing.T) {
	g := BlueGeneL()
	if g.Dims != (Shape{4, 4, 8}) {
		t.Fatalf("BlueGeneL dims = %v, want 4x4x8", g.Dims)
	}
	if !g.Wrap {
		t.Fatal("BlueGeneL must be a torus (Wrap=true)")
	}
	if g.N() != 128 {
		t.Fatalf("BlueGeneL N = %d, want 128", g.N())
	}
}

func TestIndexCoordRoundTrip(t *testing.T) {
	g := NewGeometry(3, 5, 7, true)
	seen := make(map[int]bool)
	for x := 0; x < 3; x++ {
		for y := 0; y < 5; y++ {
			for z := 0; z < 7; z++ {
				c := Coord{x, y, z}
				id := g.Index(c)
				if id < 0 || id >= g.N() {
					t.Fatalf("Index(%v) = %d out of range", c, id)
				}
				if seen[id] {
					t.Fatalf("Index(%v) = %d collides", c, id)
				}
				seen[id] = true
				if back := g.CoordOf(id); back != c {
					t.Fatalf("CoordOf(Index(%v)) = %v", c, back)
				}
			}
		}
	}
	if len(seen) != g.N() {
		t.Fatalf("covered %d ids, want %d", len(seen), g.N())
	}
}

func TestContains(t *testing.T) {
	g := NewGeometry(4, 4, 8, true)
	cases := []struct {
		c    Coord
		want bool
	}{
		{Coord{0, 0, 0}, true},
		{Coord{3, 3, 7}, true},
		{Coord{4, 0, 0}, false},
		{Coord{0, -1, 0}, false},
		{Coord{0, 0, 8}, false},
	}
	for _, tc := range cases {
		if got := g.Contains(tc.c); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.c, got, tc.want)
		}
	}
}

func TestNormalizeWrap(t *testing.T) {
	g := NewGeometry(4, 4, 8, true)
	c, ok := g.Normalize(Coord{5, -1, 8})
	if !ok || c != (Coord{1, 3, 0}) {
		t.Fatalf("Normalize = %v, %v; want (1,3,0), true", c, ok)
	}
}

func TestNormalizeMeshRejects(t *testing.T) {
	g := NewGeometry(4, 4, 8, false)
	if _, ok := g.Normalize(Coord{4, 0, 0}); ok {
		t.Fatal("mesh Normalize accepted out-of-range coordinate")
	}
	if c, ok := g.Normalize(Coord{1, 2, 3}); !ok || c != (Coord{1, 2, 3}) {
		t.Fatalf("mesh Normalize rejected in-range coordinate: %v %v", c, ok)
	}
}

func TestShapeSizeAndFits(t *testing.T) {
	s := Shape{2, 3, 4}
	if s.Size() != 24 {
		t.Fatalf("Size = %d, want 24", s.Size())
	}
	if !s.FitsIn(Shape{4, 4, 8}) {
		t.Fatal("2x3x4 should fit in 4x4x8")
	}
	if (Shape{5, 1, 1}).FitsIn(Shape{4, 4, 8}) {
		t.Fatal("5x1x1 should not fit in 4x4x8")
	}
	if (Shape{0, 1, 1}).Positive() {
		t.Fatal("0x1x1 should not be positive")
	}
}

func TestValidPartition(t *testing.T) {
	torus := NewGeometry(4, 4, 8, true)
	mesh := NewGeometry(4, 4, 8, false)

	wrapping := Partition{Base: Coord{3, 0, 0}, Shape: Shape{2, 1, 1}}
	if !torus.ValidPartition(wrapping) {
		t.Error("torus should allow wrapping partition")
	}
	if mesh.ValidPartition(wrapping) {
		t.Error("mesh should reject wrapping partition")
	}
	if torus.ValidPartition(Partition{Base: Coord{0, 0, 0}, Shape: Shape{5, 1, 1}}) {
		t.Error("shape larger than dimension must be invalid even with wrap")
	}
	if torus.ValidPartition(Partition{Base: Coord{4, 0, 0}, Shape: Shape{1, 1, 1}}) {
		t.Error("non-canonical base must be invalid")
	}
	if torus.ValidPartition(Partition{Base: Coord{0, 0, 0}, Shape: Shape{0, 1, 1}}) {
		t.Error("zero-extent shape must be invalid")
	}
	full := Partition{Base: Coord{1, 2, 3}, Shape: Shape{4, 4, 8}}
	if !torus.ValidPartition(full) {
		t.Error("full-machine partition from any base must be valid on a torus")
	}
}

func TestNodesCountAndUniqueness(t *testing.T) {
	g := NewGeometry(4, 4, 8, true)
	p := Partition{Base: Coord{3, 3, 6}, Shape: Shape{2, 2, 4}}
	ids := g.Nodes(p)
	if len(ids) != p.Size() {
		t.Fatalf("Nodes returned %d ids, want %d", len(ids), p.Size())
	}
	seen := make(map[int]bool)
	for _, id := range ids {
		if id < 0 || id >= g.N() {
			t.Fatalf("node id %d out of range", id)
		}
		if seen[id] {
			t.Fatalf("duplicate node id %d", id)
		}
		seen[id] = true
		if !g.ContainsNode(p, id) {
			t.Fatalf("ContainsNode(%v, %d) = false for an enumerated node", p, id)
		}
	}
}

func TestContainsNodeNegative(t *testing.T) {
	g := NewGeometry(4, 4, 8, true)
	p := Partition{Base: Coord{0, 0, 0}, Shape: Shape{2, 2, 2}}
	in := make(map[int]bool)
	for _, id := range g.Nodes(p) {
		in[id] = true
	}
	for id := 0; id < g.N(); id++ {
		if g.ContainsNode(p, id) != in[id] {
			t.Fatalf("ContainsNode(%v, %d) = %v, want %v", p, id, !in[id], in[id])
		}
	}
}

func TestForEachNodeEarlyStop(t *testing.T) {
	g := NewGeometry(4, 4, 8, true)
	p := Partition{Base: Coord{0, 0, 0}, Shape: Shape{4, 4, 8}}
	count := 0
	done := g.ForEachNode(p, func(int) bool {
		count++
		return count < 10
	})
	if done {
		t.Fatal("ForEachNode should report early termination")
	}
	if count != 10 {
		t.Fatalf("visited %d nodes before stop, want 10", count)
	}
}

// TestOverlapsMatchesNodeSets cross-checks the interval-arithmetic
// overlap test against brute-force node set intersection.
func TestOverlapsMatchesNodeSets(t *testing.T) {
	g := NewGeometry(4, 4, 8, true)
	rng := rand.New(rand.NewSource(7))
	randPart := func() Partition {
		return Partition{
			Base:  Coord{rng.Intn(4), rng.Intn(4), rng.Intn(8)},
			Shape: Shape{1 + rng.Intn(4), 1 + rng.Intn(4), 1 + rng.Intn(8)},
		}
	}
	for trial := 0; trial < 2000; trial++ {
		p, q := randPart(), randPart()
		inP := make(map[int]bool)
		for _, id := range g.Nodes(p) {
			inP[id] = true
		}
		brute := false
		for _, id := range g.Nodes(q) {
			if inP[id] {
				brute = true
				break
			}
		}
		if got := g.Overlaps(p, q); got != brute {
			t.Fatalf("Overlaps(%v, %v) = %v, brute force = %v", p, q, got, brute)
		}
	}
}

func TestOverlapsSymmetric(t *testing.T) {
	g := NewGeometry(4, 4, 8, true)
	f := func(bx, by, bz, sx, sy, sz, cx, cy, cz, tx, ty, tz uint8) bool {
		p := Partition{
			Base:  Coord{int(bx % 4), int(by % 4), int(bz % 8)},
			Shape: Shape{1 + int(sx%4), 1 + int(sy%4), 1 + int(sz%8)},
		}
		q := Partition{
			Base:  Coord{int(cx % 4), int(cy % 4), int(cz % 8)},
			Shape: Shape{1 + int(tx%4), 1 + int(ty%4), 1 + int(tz%8)},
		}
		return g.Overlaps(p, q) == g.Overlaps(q, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapsSelf(t *testing.T) {
	g := NewGeometry(4, 4, 8, true)
	f := func(bx, by, bz, sx, sy, sz uint8) bool {
		p := Partition{
			Base:  Coord{int(bx % 4), int(by % 4), int(bz % 8)},
			Shape: Shape{1 + int(sx%4), 1 + int(sy%4), 1 + int(sz%8)},
		}
		return g.Overlaps(p, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShapesOf(t *testing.T) {
	g := BlueGeneL()
	shapes := g.ShapesOf(8)
	if len(shapes) == 0 {
		t.Fatal("no shapes for size 8")
	}
	seen := make(map[Shape]bool)
	for _, s := range shapes {
		if s.Size() != 8 {
			t.Errorf("shape %v has size %d, want 8", s, s.Size())
		}
		if !s.FitsIn(g.Dims) {
			t.Errorf("shape %v does not fit machine", s)
		}
		if seen[s] {
			t.Errorf("duplicate shape %v", s)
		}
		seen[s] = true
	}
	// 8 = 1*1*8, 1*2*4, 1*4*2, 2*1*4, 2*2*2, 2*4*1, 4*1*2, 4*2*1
	if len(shapes) != 8 {
		t.Errorf("ShapesOf(8) returned %d shapes, want 8", len(shapes))
	}
}

func TestShapesOfEdgeCases(t *testing.T) {
	g := BlueGeneL()
	if s := g.ShapesOf(0); s != nil {
		t.Errorf("ShapesOf(0) = %v, want nil", s)
	}
	if s := g.ShapesOf(129); s != nil {
		t.Errorf("ShapesOf(129) = %v, want nil", s)
	}
	if s := g.ShapesOf(128); len(s) != 1 || s[0] != (Shape{4, 4, 8}) {
		t.Errorf("ShapesOf(128) = %v, want [4x4x8]", s)
	}
	// 11 is prime and > 8, so it cannot be realised.
	if s := g.ShapesOf(11); len(s) != 0 {
		t.Errorf("ShapesOf(11) = %v, want empty", s)
	}
}

func TestFeasibleSizesAndRoundUp(t *testing.T) {
	g := BlueGeneL()
	sizes := g.FeasibleSizes()
	if len(sizes) == 0 || sizes[0] != 1 || sizes[len(sizes)-1] != 128 {
		t.Fatalf("FeasibleSizes = %v", sizes)
	}
	feasible := make(map[int]bool)
	for _, s := range sizes {
		feasible[s] = true
		if len(g.ShapesOf(s)) == 0 {
			t.Errorf("size %d reported feasible but has no shapes", s)
		}
	}
	if feasible[11] {
		t.Error("11 must not be feasible on 4x4x8")
	}
	got, ok := g.RoundUpFeasible(11)
	if !ok || got != 12 {
		t.Fatalf("RoundUpFeasible(11) = %d, %v; want 12, true", got, ok)
	}
	if got, ok := g.RoundUpFeasible(0); !ok || got != 1 {
		t.Fatalf("RoundUpFeasible(0) = %d, %v; want 1, true", got, ok)
	}
	if _, ok := g.RoundUpFeasible(129); ok {
		t.Fatal("RoundUpFeasible(129) must fail")
	}
	// Round-up is idempotent on feasible sizes.
	for _, s := range sizes {
		if got, ok := g.RoundUpFeasible(s); !ok || got != s {
			t.Fatalf("RoundUpFeasible(%d) = %d, %v; want identity", s, got, ok)
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		spec string
		want Geometry
	}{
		{"4x4x8", NewGeometry(4, 4, 8, true)},
		{"4x4x8/torus", NewGeometry(4, 4, 8, true)},
		{"8x8x16/mesh", NewGeometry(8, 8, 16, false)},
		{" 2 x 3 x 4 ", NewGeometry(2, 3, 4, true)},
	}
	for _, tc := range cases {
		got, err := Parse(tc.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Parse(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
	bad := []string{"", "4x4", "4x4x8x2", "4xax8", "0x4x8", "-1x4x8", "4x4x8/ring"}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, g := range []Geometry{BlueGeneL(), NewGeometry(8, 8, 8, false)} {
		back, err := Parse(g.Spec())
		if err != nil {
			t.Fatalf("Parse(Spec) of %v: %v", g, err)
		}
		if back != g {
			t.Fatalf("round trip %v -> %q -> %v", g, g.Spec(), back)
		}
	}
}

func TestStringMethods(t *testing.T) {
	if got := (Coord{1, 2, 3}).String(); got != "(1,2,3)" {
		t.Errorf("Coord.String = %q", got)
	}
	if got := (Shape{4, 4, 8}).String(); got != "4x4x8" {
		t.Errorf("Shape.String = %q", got)
	}
	p := Partition{Base: Coord{1, 0, 0}, Shape: Shape{2, 2, 2}}
	if got := p.String(); got != "(1,0,0)+2x2x2" {
		t.Errorf("Partition.String = %q", got)
	}
}
