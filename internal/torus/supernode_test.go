package torus

import "testing"

func TestBlueGeneLMap(t *testing.T) {
	m := BlueGeneLMap()
	if m.Compute.Dims != (Shape{32, 32, 64}) {
		t.Fatalf("compute dims = %v", m.Compute.Dims)
	}
	if m.Super.Dims != (Shape{4, 4, 8}) {
		t.Fatalf("super dims = %v, want the paper's 4x4x8", m.Super.Dims)
	}
	if m.ComputeNodesPerSupernode() != 512 {
		t.Fatalf("nodes per supernode = %d, want 512", m.ComputeNodesPerSupernode())
	}
	if m.Compute.N() != 65536 {
		t.Fatalf("compute N = %d, want 65536", m.Compute.N())
	}
}

func TestSupernodeOf(t *testing.T) {
	m := BlueGeneLMap()
	// Compute node (0,0,0) is in supernode (0,0,0).
	id, err := m.SupernodeOf(m.Compute.Index(Coord{0, 0, 0}))
	if err != nil || id != m.Super.Index(Coord{0, 0, 0}) {
		t.Fatalf("origin: %d, %v", id, err)
	}
	// Compute node (7,7,7) still in supernode 0; (8,0,0) in (1,0,0).
	id, err = m.SupernodeOf(m.Compute.Index(Coord{7, 7, 7}))
	if err != nil || id != 0 {
		t.Fatalf("(7,7,7): %d, %v", id, err)
	}
	id, err = m.SupernodeOf(m.Compute.Index(Coord{8, 0, 0}))
	if err != nil || id != m.Super.Index(Coord{1, 0, 0}) {
		t.Fatalf("(8,0,0): %d, %v", id, err)
	}
	// Last compute node maps to last supernode.
	id, err = m.SupernodeOf(m.Compute.N() - 1)
	if err != nil || id != m.Super.N()-1 {
		t.Fatalf("last: %d, %v", id, err)
	}
	if _, err := m.SupernodeOf(-1); err == nil {
		t.Fatal("negative id accepted")
	}
	if _, err := m.SupernodeOf(m.Compute.N()); err == nil {
		t.Fatal("out-of-range id accepted")
	}
}

// Every supernode receives exactly Block.Size() compute nodes.
func TestSupernodeMapPartitionOfComputeNodes(t *testing.T) {
	m, err := NewSupernodeMap(NewGeometry(8, 8, 8, true), Shape{2, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, m.Super.N())
	for id := 0; id < m.Compute.N(); id++ {
		sid, err := m.SupernodeOf(id)
		if err != nil {
			t.Fatal(err)
		}
		counts[sid]++
	}
	for sid, c := range counts {
		if c != m.ComputeNodesPerSupernode() {
			t.Fatalf("supernode %d has %d compute nodes, want %d", sid, c, m.ComputeNodesPerSupernode())
		}
	}
}

func TestNewSupernodeMapErrors(t *testing.T) {
	if _, err := NewSupernodeMap(NewGeometry(8, 8, 8, true), Shape{3, 2, 2}); err == nil {
		t.Fatal("non-tiling block accepted")
	}
	if _, err := NewSupernodeMap(NewGeometry(8, 8, 8, true), Shape{0, 2, 2}); err == nil {
		t.Fatal("zero block accepted")
	}
}
