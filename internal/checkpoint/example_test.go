package checkpoint_test

import (
	"fmt"

	"bgsched/internal/checkpoint"
)

// Choosing a periodic checkpoint interval: Young's first-order formula
// versus the numeric optimum of the full renewal model.
func ExampleYoungInterval() {
	mtbf := 4 * 86400.0 // the paper's "one failure per four days"
	overhead := 60.0

	young, _ := checkpoint.YoungInterval(mtbf, overhead)

	best, _, _ := checkpoint.OptimalInterval(checkpoint.ModelParams{
		Work:        12 * 3600,
		Overhead:    overhead,
		FailureRate: 1 / mtbf,
	})
	fmt.Printf("Young: %.0fs, numeric optimum: within [%.0f, %.0f]\n",
		young, young/2, young*2)
	fmt.Println("optimum in that range:", best > young/2 && best < young*2)
	// Output:
	// Young: 6440s, numeric optimum: within [3220, 12880]
	// optimum in that range: true
}

// The expected completion time of a job under failures, with and
// without checkpointing.
func ExampleExpectedRuntime() {
	base := checkpoint.ModelParams{
		Work:        50000,
		FailureRate: 1.0 / 10000,
		Overhead:    30,
	}
	plain, _ := checkpoint.ExpectedRuntime(base)

	withCkpt := base
	withCkpt.Interval = 800
	ckpt, _ := checkpoint.ExpectedRuntime(withCkpt)

	fmt.Println("checkpointing helps:", ckpt < plain)
	// Output:
	// checkpointing helps: true
}
