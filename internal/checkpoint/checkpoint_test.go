package checkpoint

import (
	"testing"

	"bgsched/internal/failure"
	"bgsched/internal/predict"
)

func TestPeriodicNext(t *testing.T) {
	p := &Periodic{Interval: 100}
	if got, ok := p.Next(1, 50, 1000, nil); !ok || got != 150 {
		t.Fatalf("Next = %g, %v; want 150, true", got, ok)
	}
	// No checkpoint at or past completion.
	if _, ok := p.Next(1, 950, 1000, nil); ok {
		t.Fatal("checkpoint scheduled past expected finish")
	}
	if _, ok := p.Next(1, 900, 1000, nil); ok {
		t.Fatal("checkpoint exactly at finish should be skipped")
	}
	if got, ok := p.Next(1, 899, 1000, nil); !ok || got != 999 {
		t.Fatalf("Next = %g, %v", got, ok)
	}
}

func TestPeriodicDisabled(t *testing.T) {
	p := &Periodic{Interval: 0}
	if _, ok := p.Next(1, 0, 1000, nil); ok {
		t.Fatal("zero interval must disable checkpoints")
	}
	if (&Periodic{}).Name() != "periodic" {
		t.Fatal("name")
	}
}

func TestPredictionTriggeredFires(t *testing.T) {
	ix := failure.NewIndex(8, failure.Trace{{Time: 500, Node: 3}})
	p := &PredictionTriggered{
		Oracle:  &predict.Perfect{Index: ix},
		Horizon: 200,
		Lead:    20,
		MinGap:  100,
	}
	// At t=100 the failure (t=500) is outside the 200s horizon.
	if _, ok := p.Next(1, 100, 1000, []int{3}); ok {
		t.Fatal("fired outside horizon")
	}
	// At t=350 the failure is within horizon: checkpoint at 370.
	got, ok := p.Next(1, 350, 1000, []int{3})
	if !ok || got != 370 {
		t.Fatalf("Next = %g, %v; want 370, true", got, ok)
	}
	// MinGap suppresses an immediate re-trigger.
	if _, ok := p.Next(1, 360, 1000, []int{3}); ok {
		t.Fatal("re-triggered within MinGap")
	}
	// After the gap it may fire again.
	if _, ok := p.Next(1, 460, 1000, []int{3}); !ok {
		t.Fatal("did not re-arm after MinGap")
	}
}

// MinGap suppression must be per job: a trigger for one job must not
// silence another job whose partition is also at risk.
func TestPredictionTriggeredMinGapPerJob(t *testing.T) {
	ix := failure.NewIndex(8, failure.Trace{{Time: 100, Node: 2}, {Time: 100, Node: 5}})
	p := &PredictionTriggered{
		Oracle:  &predict.Perfect{Index: ix},
		Horizon: 500,
		Lead:    10,
		MinGap:  1000,
	}
	if _, ok := p.Next(1, 0, 2000, []int{2}); !ok {
		t.Fatal("job 1 did not trigger")
	}
	if _, ok := p.Next(2, 1, 2000, []int{5}); !ok {
		t.Fatal("job 2 suppressed by job 1's MinGap")
	}
	if _, ok := p.Next(1, 2, 2000, []int{2}); ok {
		t.Fatal("job 1 re-triggered within its own MinGap")
	}
}

func TestPredictionTriggeredHealthyPartition(t *testing.T) {
	ix := failure.NewIndex(8, failure.Trace{{Time: 500, Node: 3}})
	p := &PredictionTriggered{
		Oracle:  &predict.Perfect{Index: ix},
		Horizon: 1000,
		Lead:    10,
	}
	if _, ok := p.Next(1, 0, 1000, []int{1, 2}); ok {
		t.Fatal("fired for a partition with no predicted failures")
	}
}

func TestPredictionTriggeredEdges(t *testing.T) {
	p := &PredictionTriggered{}
	if _, ok := p.Next(1, 0, 1000, []int{1}); ok {
		t.Fatal("nil oracle fired")
	}
	ix := failure.NewIndex(8, failure.Trace{{Time: 990, Node: 1}})
	p2 := &PredictionTriggered{
		Oracle:  &predict.Perfect{Index: ix},
		Horizon: 100,
		Lead:    50,
	}
	// Lead pushes the checkpoint past the finish: skip.
	if _, ok := p2.Next(1, 960, 1000, []int{1}); ok {
		t.Fatal("checkpoint scheduled past finish")
	}
	if p2.Name() != "prediction-triggered" {
		t.Fatal("name")
	}
}

func TestYoungInterval(t *testing.T) {
	// sqrt(2 * 60 * 4*86400) for a 4-day MTBF and 60 s overhead.
	got, err := YoungInterval(4*86400, 60)
	if err != nil {
		t.Fatal(err)
	}
	want := 6441.1 // sqrt(2*60*345600) ≈ 6440.5
	if got < want-5 || got > want+5 {
		t.Fatalf("YoungInterval = %g, want ≈ %g", got, want)
	}
	if _, err := YoungInterval(0, 60); err == nil {
		t.Error("zero MTBF accepted")
	}
	if _, err := YoungInterval(86400, 0); err == nil {
		t.Error("zero overhead accepted")
	}
	// Longer MTBF means longer interval.
	a, _ := YoungInterval(86400, 60)
	b, _ := YoungInterval(10*86400, 60)
	if b <= a {
		t.Fatal("interval not increasing in MTBF")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (&Config{}).Validate(); err == nil {
		t.Error("nil policy accepted")
	}
	if err := (&Config{Policy: &Periodic{Interval: 1}, Overhead: -1}).Validate(); err == nil {
		t.Error("negative overhead accepted")
	}
	if err := (&Config{Policy: &Periodic{Interval: 1}, RestartPenalty: -1}).Validate(); err == nil {
		t.Error("negative restart penalty accepted")
	}
	if err := (&Config{Policy: &Periodic{Interval: 1}, Overhead: 5, RestartPenalty: 5}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
