package checkpoint

import (
	"math"
	"testing"
)

func TestExpectedRuntimeFailureFree(t *testing.T) {
	// No failures, no checkpointing: exactly the work.
	rt, err := ExpectedRuntime(ModelParams{Work: 1000})
	if err != nil || rt != 1000 {
		t.Fatalf("rt = %g, %v", rt, err)
	}
	// No failures, 3 checkpoints at 250/500/750 (ceil(1000/250)-1 = 3).
	rt, err = ExpectedRuntime(ModelParams{Work: 1000, Interval: 250, Overhead: 10})
	if err != nil || rt != 1030 {
		t.Fatalf("rt = %g, %v; want 1030", rt, err)
	}
	// Interval >= work: no checkpoints.
	rt, err = ExpectedRuntime(ModelParams{Work: 1000, Interval: 5000, Overhead: 10})
	if err != nil || rt != 1000 {
		t.Fatalf("rt = %g, %v", rt, err)
	}
}

func TestExpectedRuntimeErrors(t *testing.T) {
	if _, err := ExpectedRuntime(ModelParams{Work: 0}); err == nil {
		t.Error("zero work accepted")
	}
	if _, err := ExpectedRuntime(ModelParams{Work: 10, Overhead: -1}); err == nil {
		t.Error("negative overhead accepted")
	}
}

func TestExpectedRuntimeNoCheckpointClosedForm(t *testing.T) {
	// Without checkpointing, E[T] = (e^{λW} - 1)/λ (+ restart terms).
	lam := 1e-4
	work := 5000.0
	rt, err := ExpectedRuntime(ModelParams{Work: work, FailureRate: lam})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Expm1(lam*work) / lam
	if math.Abs(rt-want) > 1e-6*want {
		t.Fatalf("rt = %g, want %g", rt, want)
	}
	if rt <= work {
		t.Fatal("failures must inflate runtime")
	}
}

func TestExpectedRuntimeCheckpointingHelpsUnderFailures(t *testing.T) {
	p := ModelParams{Work: 50000, Overhead: 30, RestartPenalty: 30, FailureRate: 1.0 / 10000}
	plain, err := ExpectedRuntime(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Interval = 3000
	ckpt, err := ExpectedRuntime(p)
	if err != nil {
		t.Fatal(err)
	}
	if ckpt >= plain {
		t.Fatalf("checkpointing did not help: %g vs %g", ckpt, plain)
	}
}

func TestOptimalIntervalNearYoung(t *testing.T) {
	// With small overhead relative to MTBF, the numeric optimum should
	// be in the neighbourhood of Young's approximation.
	mtbf := 20000.0
	overhead := 20.0
	p := ModelParams{Work: 200000, Overhead: overhead, FailureRate: 1 / mtbf}
	best, rt, err := OptimalInterval(p)
	if err != nil {
		t.Fatal(err)
	}
	young, err := YoungInterval(mtbf, overhead)
	if err != nil {
		t.Fatal(err)
	}
	if best < young/2 || best > young*2 {
		t.Fatalf("optimal interval %g too far from Young %g", best, young)
	}
	// The optimum must beat both a much denser and a much sparser choice.
	for _, iv := range []float64{best / 8, best * 8} {
		q := p
		q.Interval = iv
		other, err := ExpectedRuntime(q)
		if err != nil {
			t.Fatal(err)
		}
		if other < rt {
			t.Fatalf("interval %g (rt %g) beats 'optimal' %g (rt %g)", iv, other, best, rt)
		}
	}
}

func TestOptimalIntervalErrors(t *testing.T) {
	if _, _, err := OptimalInterval(ModelParams{}); err == nil {
		t.Error("zero work accepted")
	}
}
