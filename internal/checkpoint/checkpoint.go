// Package checkpoint implements the paper's future-work extension
// (Section 8): checkpointing policies whose intervals adapt to fault
// prediction. The simulator charges a fixed overhead per checkpoint and,
// when a job is killed by a node failure, restarts it from its last
// completed checkpoint instead of from scratch.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"bgsched/internal/predict"
)

// Policy decides when a running job should next checkpoint.
type Policy interface {
	Name() string
	// Next returns the absolute time of the next checkpoint for the
	// job identified by jobID running on the given nodes, where now is
	// the current time and expFinish the job's expected completion.
	// ok=false means no checkpoint is currently scheduled (the
	// simulator will re-poll per Config.PollInterval).
	Next(jobID int64, now, expFinish float64, nodes []int) (t float64, ok bool)
}

// Periodic checkpoints every Interval seconds of wall-clock time.
type Periodic struct {
	Interval float64
}

// Name implements Policy.
func (p *Periodic) Name() string { return "periodic" }

// Next implements Policy.
func (p *Periodic) Next(_ int64, now, expFinish float64, _ []int) (float64, bool) {
	if p.Interval <= 0 {
		return 0, false
	}
	t := now + p.Interval
	if t >= expFinish {
		return 0, false // no point checkpointing at/after completion
	}
	return t, true
}

// PredictionTriggered checkpoints only when the predictor expects a
// node of the job's partition to fail soon: if a failure is predicted
// within Horizon seconds, a checkpoint is scheduled Lead seconds from
// now (so the state is saved just before the anticipated failure).
// This is the "checkpoint close to the time when one of its nodes is
// likely to fail" strategy sketched in the paper's introduction.
type PredictionTriggered struct {
	Oracle  predict.PartitionOracle
	Horizon float64 // how far ahead to look for predicted failures
	Lead    float64 // delay from the query to the checkpoint itself
	// MinGap suppresses re-checkpointing storms: after a triggered
	// checkpoint the policy stays quiet for at least MinGap seconds
	// (per job).
	MinGap float64

	lastTrigger map[int64]float64
}

// Name implements Policy.
func (p *PredictionTriggered) Name() string { return "prediction-triggered" }

// Next implements Policy.
func (p *PredictionTriggered) Next(jobID int64, now, expFinish float64, nodes []int) (float64, bool) {
	if p.Oracle == nil || p.Horizon <= 0 {
		return 0, false
	}
	if last, ok := p.lastTrigger[jobID]; ok && now-last < p.MinGap {
		return 0, false
	}
	until := now + p.Horizon
	if until > expFinish {
		until = expFinish
	}
	if until <= now || !p.Oracle.PartitionWillFail(nodes, now, until) {
		return 0, false
	}
	t := now + p.Lead
	if t >= expFinish {
		return 0, false
	}
	if p.lastTrigger == nil {
		p.lastTrigger = make(map[int64]float64)
	}
	p.lastTrigger[jobID] = now
	return t, true
}

// Stateful is implemented by policies carrying mutable per-run state
// that must survive a snapshot/restore cycle. StateJSON returns a
// canonical (deterministic-bytes) JSON encoding of the state;
// RestoreJSON resets the policy to a previously captured state.
// Stateless policies simply don't implement it.
type Stateful interface {
	StateJSON() ([]byte, error)
	RestoreJSON([]byte) error
}

// triggerEntry is one lastTrigger map entry in the canonical (sorted by
// job id) serialized form.
type triggerEntry struct {
	Job  int64
	Time float64
}

// StateJSON implements Stateful: the per-job last-trigger times, sorted
// by job id for deterministic bytes.
func (p *PredictionTriggered) StateJSON() ([]byte, error) {
	entries := make([]triggerEntry, 0, len(p.lastTrigger))
	for id, t := range p.lastTrigger {
		entries = append(entries, triggerEntry{Job: id, Time: t})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Job < entries[j].Job })
	return json.Marshal(entries)
}

// RestoreJSON implements Stateful.
func (p *PredictionTriggered) RestoreJSON(b []byte) error {
	var entries []triggerEntry
	if err := json.Unmarshal(b, &entries); err != nil {
		return fmt.Errorf("checkpoint: restore prediction-triggered state: %w", err)
	}
	p.lastTrigger = nil
	if len(entries) == 0 {
		return nil
	}
	p.lastTrigger = make(map[int64]float64, len(entries))
	for _, e := range entries {
		p.lastTrigger[e.Job] = e.Time
	}
	return nil
}

// YoungInterval returns the classic first-order optimal periodic
// checkpoint interval sqrt(2 * overhead * MTBF) (Young, 1974). It is
// the natural default when no failure prediction is available; the
// prediction-triggered policy is this paper's alternative.
func YoungInterval(mtbf, overhead float64) (float64, error) {
	if mtbf <= 0 {
		return 0, fmt.Errorf("checkpoint: MTBF = %g, want > 0", mtbf)
	}
	if overhead <= 0 {
		return 0, fmt.Errorf("checkpoint: overhead = %g, want > 0", overhead)
	}
	return math.Sqrt(2 * overhead * mtbf), nil
}

// Config couples a policy with its cost model for the simulator.
type Config struct {
	Policy Policy
	// Overhead is the wall-clock cost of taking one checkpoint,
	// seconds. While checkpointing the job makes no progress, so its
	// completion is pushed back by Overhead.
	Overhead float64
	// RestartPenalty is the wall-clock cost of restoring from a
	// checkpoint after a failure, seconds.
	RestartPenalty float64
	// PollInterval re-consults the policy this often while a job runs
	// and the policy has no checkpoint scheduled. Required for
	// prediction-triggered policies, whose answer changes as the
	// predicted-failure horizon slides forward; periodic policies can
	// leave it zero.
	PollInterval float64
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Policy == nil {
		return fmt.Errorf("checkpoint: Policy is required")
	}
	if c.Overhead < 0 || c.RestartPenalty < 0 {
		return fmt.Errorf("checkpoint: negative cost (overhead %g, restart %g)", c.Overhead, c.RestartPenalty)
	}
	if c.PollInterval < 0 {
		return fmt.Errorf("checkpoint: negative poll interval %g", c.PollInterval)
	}
	return nil
}
