package checkpoint

import (
	"fmt"
	"math"
)

// ModelParams describe a job under the classic periodic-checkpointing
// renewal model: the job needs Work seconds of computation on a
// partition whose failures arrive as a Poisson process with rate
// FailureRate (per second, summed over the partition's nodes).
type ModelParams struct {
	Work           float64 // useful computation required, seconds
	Interval       float64 // checkpoint period, seconds (0 = no checkpointing)
	Overhead       float64 // cost per checkpoint, seconds
	RestartPenalty float64 // cost to restore after a failure, seconds
	FailureRate    float64 // partition failure rate, per second
}

// ExpectedRuntime returns the expected wall-clock completion time of
// the job under the standard first-order renewal analysis. For an
// exponential failure process with rate λ, a segment that needs τ
// seconds of uninterrupted progress takes (e^{λτ} - 1)/λ expected
// wall-clock seconds including retries; with checkpointing every
// Interval seconds the job is a chain of such segments of length
// Interval+Overhead (the last possibly shorter), each restartable from
// its own beginning after a RestartPenalty.
//
// It is the analytic counterpart of the simulator's checkpointing
// machinery; TestModelMatchesSimulator validates the two against each
// other.
func ExpectedRuntime(p ModelParams) (float64, error) {
	if p.Work <= 0 {
		return 0, fmt.Errorf("checkpoint: Work = %g", p.Work)
	}
	if p.Overhead < 0 || p.RestartPenalty < 0 || p.Interval < 0 || p.FailureRate < 0 {
		return 0, fmt.Errorf("checkpoint: negative parameter in %+v", p)
	}
	if p.FailureRate == 0 {
		// Failure-free: just the work plus checkpoint overheads.
		if p.Interval <= 0 || p.Interval >= p.Work {
			return p.Work, nil
		}
		nCkpt := math.Ceil(p.Work/p.Interval) - 1
		return p.Work + nCkpt*p.Overhead, nil
	}

	// segment(τ): expected wall-clock to push τ seconds of progress
	// through, restarting from the segment start (after a restore
	// penalty) on each failure.
	lam := p.FailureRate
	segment := func(tau float64) float64 {
		// E[T] satisfies the standard renewal equation; closed form:
		// E[T] = (e^{λ(τ)} - 1)/λ + (e^{λτ} - 1) * penalty
		grow := math.Expm1(lam * tau)
		return grow/lam + grow*p.RestartPenalty
	}

	if p.Interval <= 0 || p.Interval >= p.Work {
		// No checkpointing: one segment of the whole job.
		return segment(p.Work), nil
	}
	full := math.Floor(p.Work / p.Interval)
	rem := p.Work - full*p.Interval
	total := full * segment(p.Interval+p.Overhead)
	if rem > 1e-12 {
		total += segment(rem)
	} else {
		// The last full segment needs no checkpoint at its end.
		total -= segment(p.Interval+p.Overhead) - segment(p.Interval)
	}
	return total, nil
}

// OptimalInterval numerically minimises ExpectedRuntime over the
// checkpoint interval, returning the best interval and its expected
// runtime. Young's formula is its first-order approximation.
func OptimalInterval(p ModelParams) (bestInterval, bestRuntime float64, err error) {
	if p.Work <= 0 {
		return 0, 0, fmt.Errorf("checkpoint: Work = %g", p.Work)
	}
	// Golden-section search over a broad bracket.
	lo, hi := math.Max(p.Overhead, 1), p.Work
	if lo >= hi {
		rt, err := ExpectedRuntime(p)
		return 0, rt, err
	}
	phi := (math.Sqrt(5) - 1) / 2
	f := func(interval float64) float64 {
		q := p
		q.Interval = interval
		rt, ferr := ExpectedRuntime(q)
		if ferr != nil {
			return math.Inf(1)
		}
		return rt
	}
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < 200 && b-a > 1e-3*(hi-lo); i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = f(d)
		}
	}
	bestInterval = (a + b) / 2
	bestRuntime = f(bestInterval)
	return bestInterval, bestRuntime, nil
}
