package failure

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"bgsched/internal/resilience"
	"bgsched/internal/telemetry"
)

// WriteCSV writes the trace as "time_seconds,node" rows with a header.
func WriteCSV(w io.Writer, tr Trace) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"time_seconds", "node"}); err != nil {
		return err
	}
	for _, e := range tr {
		rec := []string{
			strconv.FormatFloat(e.Time, 'f', -1, 64),
			strconv.Itoa(e.Node),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadOptions controls how ReadCSVWith treats malformed input.
type ReadOptions struct {
	// Lenient skips malformed lines instead of failing fast, recording
	// line-scoped reasons in the ingest report.
	Lenient bool
	// MaxErrors caps the line errors retained in the report
	// (<= 0 means resilience.DefaultMaxLineErrors).
	MaxErrors int
	// Metrics, when non-nil, receives ingest.csv.* counters mirroring
	// the report, so skipped lines surface in run manifests.
	Metrics *telemetry.Registry
}

// ReadCSV parses a trace written by WriteCSV (or an external failure
// log in the same two-column format), failing fast on the first
// malformed line. Lines starting with '#' and the header row are
// skipped. The result is sorted.
func ReadCSV(r io.Reader) (Trace, error) {
	tr, _, err := ReadCSVWith(r, ReadOptions{})
	return tr, err
}

// ReadCSVWith parses a failure trace under the given options,
// returning an ingest report alongside the trace. Out-of-order events
// are counted in the report but are not an error in either mode — the
// trace has always been sorted on return. The report is non-nil even
// on error.
func ReadCSVWith(r io.Reader, opt ReadOptions) (Trace, *resilience.IngestReport, error) {
	rep := resilience.NewIngestReport(opt.MaxErrors)
	defer func() {
		if opt.Metrics != nil {
			opt.Metrics.Counter("ingest.csv.lines").Add(int64(rep.Lines))
			opt.Metrics.Counter("ingest.csv.records").Add(int64(rep.Records))
			opt.Metrics.Counter("ingest.csv.skipped").Add(int64(rep.Skipped))
			opt.Metrics.Counter("ingest.csv.out_of_order").Add(int64(rep.OutOfOrder))
		}
	}()
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.Comment = '#'
	var tr Trace
	line := 0
	lastTime := math.Inf(-1)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			var pe *csv.ParseError
			if opt.Lenient && errors.As(err, &pe) {
				// Quoting damage within one record; the reader resyncs
				// on the next line.
				rep.Lines++
				rep.AddError(pe.Line, pe.Err.Error())
				continue
			}
			return nil, rep, fmt.Errorf("failure: csv: %w", err)
		}
		line++
		if line == 1 && strings.EqualFold(strings.TrimSpace(rec[0]), "time_seconds") {
			continue
		}
		rep.Lines++
		ev, reason := parseCSVEvent(rec)
		if reason != "" {
			if !opt.Lenient {
				return nil, rep, fmt.Errorf("failure: line %d: %s", line, reason)
			}
			rep.AddError(line, reason)
			continue
		}
		if ev.Time < lastTime {
			rep.OutOfOrder++
		}
		lastTime = ev.Time
		tr = append(tr, ev)
	}
	rep.Records = len(tr)
	tr.Sort()
	return tr, rep, nil
}

// parseCSVEvent converts one CSV record into an Event, returning a
// non-empty reason if the record is malformed: too few fields, an
// unparseable, non-finite, or negative time, or an unparseable or
// negative node index.
func parseCSVEvent(rec []string) (Event, string) {
	if len(rec) < 2 {
		return Event{}, fmt.Sprintf("want 2 fields, got %d", len(rec))
	}
	t, err := strconv.ParseFloat(strings.TrimSpace(rec[0]), 64)
	if err != nil {
		return Event{}, fmt.Sprintf("bad time %q: %v", rec[0], err)
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return Event{}, fmt.Sprintf("non-finite time %q", rec[0])
	}
	if t < 0 {
		return Event{}, fmt.Sprintf("negative time %g", t)
	}
	n, err := strconv.Atoi(strings.TrimSpace(rec[1]))
	if err != nil {
		return Event{}, fmt.Sprintf("bad node %q: %v", rec[1], err)
	}
	if n < 0 {
		return Event{}, fmt.Sprintf("negative node %d", n)
	}
	return Event{Time: t, Node: n}, ""
}
