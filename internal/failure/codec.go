package failure

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV writes the trace as "time_seconds,node" rows with a header.
func WriteCSV(w io.Writer, tr Trace) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"time_seconds", "node"}); err != nil {
		return err
	}
	for _, e := range tr {
		rec := []string{
			strconv.FormatFloat(e.Time, 'f', -1, 64),
			strconv.Itoa(e.Node),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV (or an external failure
// log in the same two-column format). Lines starting with '#' and the
// header row are skipped. The result is sorted.
func ReadCSV(r io.Reader) (Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.Comment = '#'
	var tr Trace
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("failure: csv: %w", err)
		}
		line++
		if len(rec) < 2 {
			return nil, fmt.Errorf("failure: line %d: want 2 fields, got %d", line, len(rec))
		}
		if line == 1 && strings.EqualFold(strings.TrimSpace(rec[0]), "time_seconds") {
			continue
		}
		t, err := strconv.ParseFloat(strings.TrimSpace(rec[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("failure: line %d: bad time %q: %w", line, rec[0], err)
		}
		n, err := strconv.Atoi(strings.TrimSpace(rec[1]))
		if err != nil {
			return nil, fmt.Errorf("failure: line %d: bad node %q: %w", line, rec[1], err)
		}
		tr = append(tr, Event{Time: t, Node: n})
	}
	tr.Sort()
	return tr, nil
}
