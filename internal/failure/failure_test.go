package failure

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateExactCountAndBounds(t *testing.T) {
	cfg := DefaultGeneratorConfig(128, 4000, 90*24*3600)
	tr, err := Generate(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 4000 {
		t.Fatalf("generated %d events, want 4000", len(tr))
	}
	if err := tr.Validate(128); err != nil {
		t.Fatal(err)
	}
	for _, e := range tr {
		if e.Time < 0 || e.Time >= cfg.Span {
			t.Fatalf("event time %g outside [0, %g)", e.Time, cfg.Span)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGeneratorConfig(128, 1000, 1e6)
	a, err := Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c, err := Generate(cfg, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateZeroCount(t *testing.T) {
	tr, err := Generate(DefaultGeneratorConfig(128, 0, 1e6), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 0 {
		t.Fatalf("Count=0 produced %d events", len(tr))
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	bad := []GeneratorConfig{
		{Nodes: 0, Span: 1, Count: 1},
		{Nodes: 10, Span: 0, Count: 1},
		{Nodes: 10, Span: 1, Count: -1},
	}
	for _, cfg := range bad {
		if _, err := Generate(cfg, 1); err == nil {
			t.Errorf("Generate accepted bad config %+v", cfg)
		}
	}
}

// TestGenerateSkew checks the hazard skew: with NodeSkew > 0 the top
// decile of nodes must account for a clear majority of events.
func TestGenerateSkew(t *testing.T) {
	cfg := DefaultGeneratorConfig(128, 8000, 1e7)
	cfg.NodeSkew = 1.2
	tr, err := Generate(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 128)
	for _, e := range tr {
		counts[e.Node]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top := 0
	for _, c := range counts[:13] { // top ~10%
		top += c
	}
	frac := float64(top) / float64(len(tr))
	if frac < 0.4 {
		t.Fatalf("top decile of nodes holds %.0f%% of failures, want skew >= 40%%", frac*100)
	}

	cfg.NodeSkew = 0
	trU, err := Generate(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	countsU := make([]int, 128)
	for _, e := range trU {
		countsU[e.Node]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(countsU)))
	topU := 0
	for _, c := range countsU[:13] {
		topU += c
	}
	if float64(topU)/float64(len(trU)) > frac {
		t.Fatal("uniform hazard more skewed than Zipf hazard")
	}
}

// TestGenerateBurstiness: with bursts enabled, far more event pairs
// land within a short window of each other than under a plain process.
func TestGenerateBurstiness(t *testing.T) {
	span := 365 * 24 * 3600.0
	closePairs := func(tr Trace, window float64) int {
		n := 0
		for i := 1; i < len(tr); i++ {
			if tr[i].Time-tr[i-1].Time <= window {
				n++
			}
		}
		return n
	}
	cfg := DefaultGeneratorConfig(128, 3000, span)
	bursty, err := Generate(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BurstProb = 0
	plain, err := Generate(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	cb, cp := closePairs(bursty, 600), closePairs(plain, 600)
	if cb <= cp {
		t.Fatalf("bursty trace has %d close pairs, plain has %d; want bursty > plain", cb, cp)
	}
}

func TestSubsample(t *testing.T) {
	tr := make(Trace, 100)
	for i := range tr {
		tr[i] = Event{Time: float64(i), Node: i % 10}
	}
	sub := Subsample(tr, 10)
	if len(sub) != 10 {
		t.Fatalf("Subsample len = %d", len(sub))
	}
	for i := 1; i < len(sub); i++ {
		if sub[i].Time <= sub[i-1].Time {
			t.Fatal("subsample not increasing in time")
		}
	}
	if got := Subsample(tr, 200); len(got) != 100 {
		t.Fatalf("oversized Subsample len = %d, want original 100", len(got))
	}
	if got := Subsample(tr, 0); len(got) != 0 {
		t.Fatalf("Subsample(0) len = %d", len(got))
	}
	if got := Subsample(tr, -5); len(got) != 0 {
		t.Fatalf("Subsample(-5) len = %d", len(got))
	}
}

func TestMapNodes(t *testing.T) {
	tr := Trace{{Time: 5, Node: 10}, {Time: 1, Node: 2}, {Time: 3, Node: 99}}
	tr.Sort()
	mapped := MapNodes(tr, func(n int) (int, error) {
		if n >= 50 {
			return 0, errInvalid
		}
		return n / 2, nil
	})
	if len(mapped) != 2 {
		t.Fatalf("mapped %d events, want 2 (one rejected)", len(mapped))
	}
	if mapped[0].Node != 1 || mapped[1].Node != 5 {
		t.Fatalf("mapped = %v", mapped)
	}
	if err := mapped.Validate(25); err != nil {
		t.Fatal(err)
	}
}

var errInvalid = fmt.Errorf("invalid")

func TestIndexMatchesBruteForce(t *testing.T) {
	cfg := DefaultGeneratorConfig(32, 500, 1e5)
	tr, err := Generate(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(32, tr)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 3000; trial++ {
		node := rng.Intn(32)
		after := rng.Float64() * 1e5
		until := after + rng.Float64()*2e4
		brute := false
		count := 0
		for _, e := range tr {
			if e.Node == node && e.Time > after && e.Time <= until {
				brute = true
				count++
			}
		}
		if got := ix.HasFailureWithin(node, after, until); got != brute {
			t.Fatalf("HasFailureWithin(%d, %g, %g) = %v, brute = %v", node, after, until, got, brute)
		}
		if got := ix.CountWithin(node, after, until); got != count {
			t.Fatalf("CountWithin(%d, %g, %g) = %d, brute = %d", node, after, until, got, count)
		}
	}
}

func TestIndexNextFailure(t *testing.T) {
	tr := Trace{{Time: 10, Node: 1}, {Time: 20, Node: 1}, {Time: 30, Node: 2}}
	ix := NewIndex(4, tr)
	if tm, ok := ix.NextFailure(1, 0); !ok || tm != 10 {
		t.Fatalf("NextFailure(1, 0) = %g, %v", tm, ok)
	}
	if tm, ok := ix.NextFailure(1, 10); !ok || tm != 20 {
		t.Fatalf("NextFailure(1, 10) = %g, %v; strict after semantics", tm, ok)
	}
	if _, ok := ix.NextFailure(1, 20); ok {
		t.Fatal("NextFailure past last event must report none")
	}
	if _, ok := ix.NextFailure(3, 0); ok {
		t.Fatal("NextFailure on failure-free node must report none")
	}
	if _, ok := ix.NextFailure(-1, 0); ok {
		t.Fatal("NextFailure on out-of-range node must report none")
	}
	if ix.FailureCount(1) != 2 || ix.FailureCount(0) != 0 {
		t.Fatal("FailureCount wrong")
	}
}

func TestIndexWindowEdges(t *testing.T) {
	ix := NewIndex(2, Trace{{Time: 100, Node: 0}})
	if ix.HasFailureWithin(0, 100, 200) {
		t.Fatal("event at window-open boundary must be excluded")
	}
	if !ix.HasFailureWithin(0, 99, 100) {
		t.Fatal("event at window-close boundary must be included")
	}
	if ix.HasFailureWithin(0, 200, 100) {
		t.Fatal("inverted window must be empty")
	}
	if ix.HasFailureWithin(5, 0, 1000) {
		t.Fatal("out-of-range node must report no failures")
	}
}

func TestIndexProperty(t *testing.T) {
	tr := Trace{}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		tr = append(tr, Event{Time: math.Floor(rng.Float64() * 1000), Node: rng.Intn(8)})
	}
	tr.Sort()
	ix := NewIndex(8, tr)
	// Window monotonicity: enlarging a window never loses a failure.
	f := func(node uint8, a, d1, d2 uint16) bool {
		n := int(node % 8)
		after := float64(a)
		u1 := after + float64(d1)
		u2 := u1 + float64(d2)
		if ix.HasFailureWithin(n, after, u1) && !ix.HasFailureWithin(n, after, u2) {
			return false
		}
		return ix.CountWithin(n, after, u2) >= ix.CountWithin(n, after, u1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	cfg := DefaultGeneratorConfig(64, 200, 1e5)
	tr, err := Generate(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatal("CSV round trip mismatch")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"time_seconds,node\nabc,1\n",
		"time_seconds,node\n1.5,xyz\n",
		"justonefield\n",
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadCSV accepted %q", in)
		}
	}
	// Comments and missing header are fine.
	tr, err := ReadCSV(strings.NewReader("# a comment\n5,3\n1,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 2 || tr[0].Time != 1 {
		t.Fatalf("ReadCSV = %v", tr)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	if err := (Trace{{Time: -1, Node: 0}}).Validate(4); err == nil {
		t.Error("negative time accepted")
	}
	if err := (Trace{{Time: 1, Node: 9}}).Validate(4); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := (Trace{{Time: 5, Node: 0}, {Time: 1, Node: 0}}).Validate(4); err == nil {
		t.Error("unsorted trace accepted")
	}
}
