package failure

import "sort"

// Index answers "does node n fail within a time window" queries in
// O(log k). It is the data structure behind both the balancing and the
// tie-breaking predictors: the paper's predictors are defined directly
// in terms of lookups into the failure log (Section 4).
type Index struct {
	nodes  int
	byNode [][]float64
}

// NewIndex builds the per-node time index for a trace.
func NewIndex(nodes int, tr Trace) *Index {
	ix := &Index{nodes: nodes, byNode: make([][]float64, nodes)}
	for _, e := range tr {
		if e.Node >= 0 && e.Node < nodes {
			ix.byNode[e.Node] = append(ix.byNode[e.Node], e.Time)
		}
	}
	for _, times := range ix.byNode {
		sort.Float64s(times)
	}
	return ix
}

// Nodes returns the machine size the index was built for.
func (ix *Index) Nodes() int { return ix.nodes }

// HasFailureWithin reports whether node has a failure event with time
// in the half-open window (after, until].
func (ix *Index) HasFailureWithin(node int, after, until float64) bool {
	if node < 0 || node >= ix.nodes || until <= after {
		return false
	}
	times := ix.byNode[node]
	i := sort.SearchFloat64s(times, after)
	// Skip events exactly at 'after': the window is open on the left.
	for i < len(times) && times[i] == after {
		i++
	}
	return i < len(times) && times[i] <= until
}

// NextFailure returns the first failure of node strictly after the
// given time, if any.
func (ix *Index) NextFailure(node int, after float64) (float64, bool) {
	if node < 0 || node >= ix.nodes {
		return 0, false
	}
	times := ix.byNode[node]
	i := sort.SearchFloat64s(times, after)
	for i < len(times) && times[i] == after {
		i++
	}
	if i == len(times) {
		return 0, false
	}
	return times[i], true
}

// CountWithin returns the number of failures of node in (after, until].
func (ix *Index) CountWithin(node int, after, until float64) int {
	if node < 0 || node >= ix.nodes || until <= after {
		return 0
	}
	times := ix.byNode[node]
	lo := sort.SearchFloat64s(times, after)
	for lo < len(times) && times[lo] == after {
		lo++
	}
	hi := sort.Search(len(times), func(i int) bool { return times[i] > until })
	return hi - lo
}

// FailureCount returns the total number of indexed events for node.
func (ix *Index) FailureCount(node int) int {
	if node < 0 || node >= ix.nodes {
		return 0
	}
	return len(ix.byNode[node])
}
