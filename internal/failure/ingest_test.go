package failure

import (
	"strings"
	"testing"

	"bgsched/internal/resilience"
	"bgsched/internal/telemetry"
)

func TestReadCSVStrictRejectsHardenedFields(t *testing.T) {
	cases := map[string]string{
		"truncated line": "justonefield\n",
		"NaN time":       "nan,3\n",
		"Inf time":       "+Inf,3\n",
		"negative time":  "-5,3\n",
		"negative node":  "5,-3\n",
		"bad node":       "5,zz\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted in strict mode", name)
		}
	}
}

func TestReadCSVLenientSkipsMalformed(t *testing.T) {
	in := strings.Join([]string{
		"time_seconds,node",
		"10,1",
		"justonefield", // truncated
		"nan,2",        // NaN time
		"-4,2",         // negative time
		"7,-1",         // negative node
		"5,2",          // good, out of order
		`6,"2"x`,       // CSV quoting damage; the reader resyncs after it
		"20,0",
	}, "\n") + "\n"
	tr, rep, err := ReadCSVWith(strings.NewReader(in), ReadOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 3 {
		t.Fatalf("kept %d events: %+v", len(tr), tr)
	}
	// The result is sorted despite out-of-order input.
	if tr[0].Time != 5 || tr[1].Time != 10 || tr[2].Time != 20 {
		t.Fatalf("trace = %+v", tr)
	}
	if rep.Records != 3 || rep.Skipped != 5 || rep.OutOfOrder != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Errors) != 5 {
		t.Fatalf("line errors = %+v", rep.Errors)
	}
	if rep.Errors[0].Line != 3 || !strings.Contains(rep.Errors[0].Reason, "fields") {
		t.Fatalf("first error = %+v", rep.Errors[0])
	}
}

func TestReadCSVErrorCap(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("time_seconds,node\n")
	for i := 0; i < resilience.DefaultMaxLineErrors+7; i++ {
		sb.WriteString("bad,row,oops\n")
	}
	_, rep, err := ReadCSVWith(strings.NewReader(sb.String()), ReadOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != resilience.DefaultMaxLineErrors+7 {
		t.Fatalf("Skipped = %d", rep.Skipped)
	}
	if len(rep.Errors) != resilience.DefaultMaxLineErrors || !rep.ErrorsTruncated {
		t.Fatalf("errors = %d truncated = %v", len(rep.Errors), rep.ErrorsTruncated)
	}
}

func TestReadCSVMetricsCounters(t *testing.T) {
	reg := telemetry.New()
	_, _, err := ReadCSVWith(strings.NewReader("1,2\nbad\n3,4\n"), ReadOptions{Lenient: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]int64{
		"ingest.csv.lines":   3,
		"ingest.csv.records": 2,
		"ingest.csv.skipped": 1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func FuzzReadCSV(f *testing.F) {
	f.Add("time_seconds,node\n1.5,3\n2,0\n")
	f.Add("# comment\n5,3\n1,2\n")
	f.Add("justonefield\n")
	f.Add("nan,1\n-1,2\n1e309,3\n")
	f.Add("\"unterminated,1\n2,2\n")
	f.Add("")
	f.Add("\x00,\xff\n")
	f.Fuzz(func(t *testing.T, in string) {
		// Strict mode must never panic.
		ReadCSV(strings.NewReader(in))

		// Lenient mode must never panic nor error on in-memory input,
		// and every surviving event must be valid and sorted.
		tr, rep, err := ReadCSVWith(strings.NewReader(in), ReadOptions{Lenient: true})
		if err != nil {
			t.Fatalf("lenient parse failed: %v", err)
		}
		if rep.Records != len(tr) {
			t.Fatalf("report records %d != %d events", rep.Records, len(tr))
		}
		for i, ev := range tr {
			if ev.Time < 0 || ev.Node < 0 {
				t.Fatalf("invalid event %d survived lenient parse: %+v", i, ev)
			}
			if i > 0 && ev.Time < tr[i-1].Time {
				t.Fatalf("trace unsorted at %d: %+v", i, tr)
			}
		}
	})
}
