package failure

import (
	"math"
	"strings"
	"testing"
)

func TestAnalyzeBasics(t *testing.T) {
	tr := Trace{
		{Time: 0, Node: 0},
		{Time: 100, Node: 1},
		{Time: 86400, Node: 0},
	}
	s, err := Analyze(tr, 4, 600)
	if err != nil {
		t.Fatal(err)
	}
	if s.Events != 3 || s.Span != 86400 {
		t.Fatalf("events/span = %d/%g", s.Events, s.Span)
	}
	if s.RatePerDay != 3 {
		t.Fatalf("rate = %g", s.RatePerDay)
	}
	if s.MTBF != 43200 {
		t.Fatalf("MTBF = %g", s.MTBF)
	}
	if s.NodesAffected != 2 {
		t.Fatalf("nodes = %d", s.NodesAffected)
	}
	// One of two gaps (100s) is within the 600s burst window.
	if s.BurstFraction != 0.5 {
		t.Fatalf("burst fraction = %g", s.BurstFraction)
	}
	if !strings.Contains(s.String(), "events=3") {
		t.Fatal("String")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil, 4, 600); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := Analyze(Trace{{Time: 1, Node: 9}}, 4, 600); err == nil {
		t.Error("invalid trace accepted")
	}
}

// The synthetic generator must produce traces whose measured character
// matches its knobs: bursty (CV > 1) and skewed.
func TestAnalyzeGeneratorCharacter(t *testing.T) {
	span := 90 * 24 * 3600.0
	bursty, err := Generate(DefaultGeneratorConfig(128, 2000, span), 3)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Analyze(bursty, 128, 600)
	if err != nil {
		t.Fatal(err)
	}
	if sb.CV <= 1.1 {
		t.Fatalf("bursty trace CV = %.2f, want > 1.1", sb.CV)
	}
	if sb.TopDecileShare < 0.4 {
		t.Fatalf("top-decile share = %.2f, want >= 0.4", sb.TopDecileShare)
	}

	plain := DefaultGeneratorConfig(128, 2000, span)
	plain.BurstProb = 0
	plain.NodeSkew = 0
	uniform, err := Generate(plain, 3)
	if err != nil {
		t.Fatal(err)
	}
	su, err := Analyze(uniform, 128, 600)
	if err != nil {
		t.Fatal(err)
	}
	if su.CV >= sb.CV {
		t.Fatalf("uniform CV %.2f >= bursty CV %.2f", su.CV, sb.CV)
	}
	// A Poisson-like process has CV near 1.
	if math.Abs(su.CV-1) > 0.25 {
		t.Fatalf("plain process CV = %.2f, want ~1", su.CV)
	}
}

func TestNodeMTBF(t *testing.T) {
	tr := Trace{
		{Time: 0, Node: 2},
		{Time: 1000, Node: 2},
		{Time: 3000, Node: 2},
		{Time: 50, Node: 3},
	}
	mtbf, ok := NodeMTBF(tr, 2)
	if !ok || mtbf != 1500 {
		t.Fatalf("NodeMTBF = %g, %v", mtbf, ok)
	}
	if _, ok := NodeMTBF(tr, 3); ok {
		t.Fatal("single-event node should have no MTBF")
	}
	if _, ok := NodeMTBF(tr, 7); ok {
		t.Fatal("absent node should have no MTBF")
	}
}
