package failure_test

import (
	"fmt"

	"bgsched/internal/failure"
)

// Generating a bursty failure trace and querying it the way the
// predictors do.
func ExampleGenerate() {
	cfg := failure.DefaultGeneratorConfig(128, 1000, 90*86400)
	trace, err := failure.Generate(cfg, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	index := failure.NewIndex(128, trace)

	stats, _ := failure.Analyze(trace, 128, 600)
	fmt.Println("events:", stats.Events)
	fmt.Println("bursty (CV > 1):", stats.CV > 1)
	fmt.Println("skewed (top decile > 40%):", stats.TopDecileShare > 0.4)

	// Does node 0 fail in the first simulated day?
	fmt.Println("node 0 fails on day 1:", index.HasFailureWithin(0, 0, 86400))
	// Output:
	// events: 1000
	// bursty (CV > 1): true
	// skewed (top decile > 40%): true
	// node 0 fails on day 1: false
}
