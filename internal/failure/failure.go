// Package failure models node-failure traces: the event type, a
// synthetic generator reproducing the statistical character of the
// cluster failure logs used by the paper (Sahoo et al., KDD 2003), a
// fast per-node time index for the predictors, and a CSV codec.
//
// The paper's failure data has three load-bearing properties that the
// generator reproduces (Sections 6.2 and 7.1):
//
//   - failures are temporally bursty: "many instances of multiple
//     failure events, simultaneously reported from different nodes";
//   - per-node hazard is heavily skewed: a small set of nodes produces
//     most events;
//   - the total count is rescaled to a target (e.g. 4000 for the SDSC
//     span, 0..4000 in steps of 500 for the failure-rate sweeps).
package failure

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Event is one transient node failure. Per Section 6.1 the node is
// immediately available again; only the job running there (if any) is
// killed.
type Event struct {
	Time float64 // seconds from simulation origin
	Node int     // dense node id
}

// Trace is a failure log sorted by time.
type Trace []Event

// Sort orders the trace by (Time, Node).
func (tr Trace) Sort() {
	sort.Slice(tr, func(i, j int) bool {
		if tr[i].Time != tr[j].Time {
			return tr[i].Time < tr[j].Time
		}
		return tr[i].Node < tr[j].Node
	})
}

// Validate checks the trace is sorted, non-negative in time, and within
// the node range.
func (tr Trace) Validate(nodes int) error {
	for i, e := range tr {
		if e.Time < 0 {
			return fmt.Errorf("failure %d: negative time %g", i, e.Time)
		}
		if e.Node < 0 || e.Node >= nodes {
			return fmt.Errorf("failure %d: node %d out of [0,%d)", i, e.Node, nodes)
		}
		if i > 0 && tr[i-1].Time > e.Time {
			return fmt.Errorf("failure %d: trace not sorted (%g after %g)", i, e.Time, tr[i-1].Time)
		}
	}
	return nil
}

// GeneratorConfig parameterises the synthetic failure generator.
type GeneratorConfig struct {
	Nodes int     // machine size; events target dense ids [0, Nodes)
	Span  float64 // seconds covered by the trace
	Count int     // exact number of events to emit

	// BurstProb is the probability that a seed event starts a burst of
	// correlated failures. Zero gives a plain inhomogeneous process.
	BurstProb float64
	// BurstMean is the mean number of extra events per burst
	// (geometric). Values <= 0 disable bursts regardless of BurstProb.
	BurstMean float64
	// BurstWindow is the time spread of a burst in seconds; burst
	// members land within roughly this window of the seed.
	BurstWindow float64
	// NodeSkew is the Zipf-like exponent of the per-node hazard
	// weights; 0 means uniform hazard, 1-2 gives the "few bad nodes"
	// shape seen in real logs.
	NodeSkew float64
}

// DefaultGeneratorConfig mirrors the character of the 350-node cluster
// trace of Sahoo et al.: strongly bursty with a skewed node population.
func DefaultGeneratorConfig(nodes, count int, span float64) GeneratorConfig {
	return GeneratorConfig{
		Nodes:       nodes,
		Span:        span,
		Count:       count,
		BurstProb:   0.35,
		BurstMean:   3,
		BurstWindow: 600, // ten minutes
		NodeSkew:    1.2,
	}
}

// Generate produces a deterministic synthetic trace with exactly
// cfg.Count events in [0, cfg.Span).
func Generate(cfg GeneratorConfig, seed int64) (Trace, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("failure: Nodes = %d", cfg.Nodes)
	}
	if cfg.Span <= 0 {
		return nil, fmt.Errorf("failure: Span = %g", cfg.Span)
	}
	if cfg.Count < 0 {
		return nil, fmt.Errorf("failure: Count = %d", cfg.Count)
	}
	if cfg.Count == 0 {
		return Trace{}, nil
	}
	rng := rand.New(rand.NewSource(seed))

	weights := nodeWeights(cfg.Nodes, cfg.NodeSkew, rng)
	pick := newWeightedPicker(weights)

	tr := make(Trace, 0, cfg.Count+16)
	for len(tr) < cfg.Count {
		seedTime := rng.Float64() * cfg.Span
		seedNode := pick.sample(rng)
		tr = append(tr, Event{Time: seedTime, Node: seedNode})
		if cfg.BurstMean > 0 && rng.Float64() < cfg.BurstProb {
			extra := geometric(cfg.BurstMean, rng)
			for k := 0; k < extra && len(tr) < cfg.Count; k++ {
				dt := rng.ExpFloat64() * cfg.BurstWindow
				t := seedTime + dt
				if t >= cfg.Span {
					t = math.Nextafter(cfg.Span, 0)
				}
				// Burst members hit other nodes: real logs show
				// simultaneous reports from different nodes.
				n := pick.sample(rng)
				if n == seedNode {
					n = (n + 1 + rng.Intn(cfg.Nodes-1)) % cfg.Nodes
				}
				tr = append(tr, Event{Time: t, Node: n})
			}
		}
	}
	tr = tr[:cfg.Count]
	tr.Sort()
	return tr, nil
}

// geometric samples a geometric count with the given mean (>= 0).
func geometric(mean float64, rng *rand.Rand) int {
	if mean <= 0 {
		return 0
	}
	p := 1 / (mean + 1)
	n := 0
	for rng.Float64() > p {
		n++
		if n > 1000 {
			break
		}
	}
	return n
}

// nodeWeights builds Zipf-like hazard weights over a random permutation
// of the nodes, so the "bad" nodes are scattered across the torus
// rather than clustered at low ids.
func nodeWeights(nodes int, skew float64, rng *rand.Rand) []float64 {
	w := make([]float64, nodes)
	perm := rng.Perm(nodes)
	for rank, node := range perm {
		w[node] = 1 / math.Pow(float64(rank+1), skew)
	}
	return w
}

// weightedPicker samples indices proportionally to fixed weights using
// a cumulative table and binary search.
type weightedPicker struct {
	cum []float64
}

func newWeightedPicker(w []float64) *weightedPicker {
	cum := make([]float64, len(w))
	total := 0.0
	for i, x := range w {
		total += x
		cum[i] = total
	}
	return &weightedPicker{cum: cum}
}

func (p *weightedPicker) sample(rng *rand.Rand) int {
	total := p.cum[len(p.cum)-1]
	x := rng.Float64() * total
	return sort.SearchFloat64s(p.cum, x)
}

// MapNodes rewrites every event's node through the given mapping —
// typically a torus.SupernodeMap folding compute-node failures onto
// the supernodes the scheduler allocates. Events the mapper rejects
// are dropped. The result is sorted.
func MapNodes(tr Trace, mapper func(int) (int, error)) Trace {
	out := make(Trace, 0, len(tr))
	for _, e := range tr {
		n, err := mapper(e.Node)
		if err != nil {
			continue
		}
		out = append(out, Event{Time: e.Time, Node: n})
	}
	out.Sort()
	return out
}

// Subsample returns an evenly spaced subset of n events, preserving the
// temporal pattern of the original trace. It is how a real (or larger
// synthetic) log is rescaled down to the paper's target counts. If
// n >= len(tr) the trace is returned unchanged.
func Subsample(tr Trace, n int) Trace {
	if n >= len(tr) {
		return tr
	}
	if n <= 0 {
		return Trace{}
	}
	out := make(Trace, 0, n)
	step := float64(len(tr)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, tr[int(float64(i)*step)])
	}
	return out
}
