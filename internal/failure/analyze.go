package failure

import (
	"fmt"
	"math"
	"sort"
)

// TraceStats summarises the statistical character of a failure trace —
// the properties Section 7.1 of the paper leans on when explaining the
// saturation of the slowdown curves.
type TraceStats struct {
	Events int
	Span   float64 // seconds between first and last event

	// RatePerDay is the machine-wide failure rate.
	RatePerDay float64
	// MTBF is the machine-wide mean time between failures, seconds.
	MTBF float64
	// NodesAffected counts nodes with at least one event.
	NodesAffected int
	// TopDecileShare is the fraction of events on the top 10% of
	// nodes — the hazard-skew measure.
	TopDecileShare float64
	// BurstFraction is the fraction of events within BurstWindow of
	// the previous event — the temporal-clustering measure.
	BurstFraction float64
	// CV is the coefficient of variation of inter-event gaps; 1 for a
	// Poisson process, > 1 for bursty traces.
	CV float64
}

// Analyze computes TraceStats with the given burst window (seconds).
func Analyze(tr Trace, nodes int, burstWindow float64) (TraceStats, error) {
	if len(tr) == 0 {
		return TraceStats{}, fmt.Errorf("failure: empty trace")
	}
	if err := tr.Validate(nodes); err != nil {
		return TraceStats{}, err
	}
	s := TraceStats{Events: len(tr)}
	s.Span = tr[len(tr)-1].Time - tr[0].Time
	if s.Span > 0 {
		s.RatePerDay = float64(len(tr)) / (s.Span / 86400)
	}
	if len(tr) > 1 && s.Span > 0 {
		s.MTBF = s.Span / float64(len(tr)-1)
	}

	perNode := make(map[int]int)
	for _, e := range tr {
		perNode[e.Node]++
	}
	s.NodesAffected = len(perNode)
	counts := make([]int, 0, len(perNode))
	for _, c := range perNode {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top := len(counts) / 10
	if top == 0 {
		top = 1
	}
	topSum := 0
	for _, c := range counts[:top] {
		topSum += c
	}
	s.TopDecileShare = float64(topSum) / float64(len(tr))

	if len(tr) > 1 {
		gaps := make([]float64, 0, len(tr)-1)
		inBurst := 0
		for i := 1; i < len(tr); i++ {
			gap := tr[i].Time - tr[i-1].Time
			gaps = append(gaps, gap)
			if gap <= burstWindow {
				inBurst++
			}
		}
		s.BurstFraction = float64(inBurst) / float64(len(gaps))
		mean := 0.0
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		if mean > 0 {
			variance := 0.0
			for _, g := range gaps {
				d := g - mean
				variance += d * d
			}
			variance /= float64(len(gaps))
			s.CV = math.Sqrt(variance) / mean
		}
	}
	return s, nil
}

// NodeMTBF estimates the mean time between failures of one node from
// the trace, over the observation span. Nodes with fewer than two
// events get ok=false.
func NodeMTBF(tr Trace, node int) (float64, bool) {
	var times []float64
	for _, e := range tr {
		if e.Node == node {
			times = append(times, e.Time)
		}
	}
	if len(times) < 2 {
		return 0, false
	}
	return (times[len(times)-1] - times[0]) / float64(len(times)-1), true
}

// String renders the stats on a few lines.
func (s TraceStats) String() string {
	return fmt.Sprintf(
		"events=%d span=%.1fd rate=%.2f/day mtbf=%.0fs nodes=%d top-decile=%.0f%% burst-frac=%.0f%% cv=%.2f",
		s.Events, s.Span/86400, s.RatePerDay, s.MTBF, s.NodesAffected,
		s.TopDecileShare*100, s.BurstFraction*100, s.CV)
}
