package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoundedSlowdown(t *testing.T) {
	// Long job, no wait: slowdown 1.
	if got := BoundedSlowdown(100, 100); got != 1 {
		t.Fatalf("BoundedSlowdown(100,100) = %g", got)
	}
	// Short job bounded by Gamma in both places.
	if got := BoundedSlowdown(5, 5); got != 1 {
		t.Fatalf("BoundedSlowdown(5,5) = %g, want 1 (Γ-bounded)", got)
	}
	// Waited job.
	if got := BoundedSlowdown(300, 100); got != 3 {
		t.Fatalf("BoundedSlowdown(300,100) = %g", got)
	}
	// Tiny job with long wait: denominator clamps at Γ.
	if got := BoundedSlowdown(100, 1); got != 10 {
		t.Fatalf("BoundedSlowdown(100,1) = %g, want 10", got)
	}
}

func TestBoundedSlowdownPaperLiteral(t *testing.T) {
	// For estimates above Γ the denominator is Γ itself.
	if got := BoundedSlowdownPaper(300, 100); got != 30 {
		t.Fatalf("BoundedSlowdownPaper(300,100) = %g, want 30", got)
	}
	if got := BoundedSlowdownPaper(100, 5); got != 20 {
		t.Fatalf("BoundedSlowdownPaper(100,5) = %g, want 20", got)
	}
}

func TestSlowdownAtLeastOne(t *testing.T) {
	f := func(respRaw, estRaw uint16) bool {
		resp := float64(respRaw)
		est := float64(estRaw%1000) + 1
		if resp < est {
			resp = est // response is at least the run time
		}
		return BoundedSlowdown(resp, est) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestOutcomeAccessors(t *testing.T) {
	o := Outcome{Arrival: 100, FirstStart: 150, LastStart: 200, Finish: 500, Estimate: 300}
	if o.Wait() != 100 {
		t.Fatalf("Wait = %g", o.Wait())
	}
	if o.Response() != 400 {
		t.Fatalf("Response = %g", o.Response())
	}
	if got := o.Slowdown(); math.Abs(got-400.0/300) > 1e-12 {
		t.Fatalf("Slowdown = %g", got)
	}
}

func TestCapacityTracker(t *testing.T) {
	var c CapacityTracker
	// 10 free, 0 demand for 5s -> 50 unused node-sec.
	if err := c.Observe(0, 10, 0); err != nil {
		t.Fatal(err)
	}
	// 4 free, 6 demand for 5s -> 0 (demand exceeds free).
	if err := c.Observe(5, 4, 6); err != nil {
		t.Fatal(err)
	}
	// 8 free, 3 demand for 10s -> 50.
	if err := c.Observe(10, 8, 3); err != nil {
		t.Fatal(err)
	}
	got, err := c.CloseAt(20)
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Fatalf("unused integral = %g, want 100", got)
	}
}

func TestCapacityTrackerBackwardsTime(t *testing.T) {
	var c CapacityTracker
	if err := c.Observe(10, 5, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(5, 5, 0); err == nil {
		t.Fatal("backwards time accepted")
	}
}

func TestCapacityTrackerZeroLengthIntervals(t *testing.T) {
	var c CapacityTracker
	for i := 0; i < 5; i++ {
		if err := c.Observe(3, 10, 0); err != nil {
			t.Fatal(err)
		}
	}
	if c.UnusedNodeSeconds() != 0 {
		t.Fatalf("zero-length intervals accumulated %g", c.UnusedNodeSeconds())
	}
}

func TestSummarize(t *testing.T) {
	outcomes := []Outcome{
		{ID: 1, Arrival: 0, LastStart: 0, FirstStart: 0, Finish: 100, Estimate: 100, Actual: 100, Size: 64},
		{ID: 2, Arrival: 0, LastStart: 100, FirstStart: 100, Finish: 200, Estimate: 100, Actual: 100, Size: 64, Restarts: 1, LostWork: 320},
	}
	// Machine of 128 nodes; T = 200; work = 64*100*2 = 12800;
	// capacity = 25600 -> util = 0.5.
	s, err := Summarize(outcomes, 128, 6400)
	if err != nil {
		t.Fatal(err)
	}
	if s.Jobs != 2 {
		t.Fatalf("Jobs = %d", s.Jobs)
	}
	if s.AvgWait != 50 {
		t.Fatalf("AvgWait = %g, want 50", s.AvgWait)
	}
	if s.AvgResponse != 150 {
		t.Fatalf("AvgResponse = %g, want 150", s.AvgResponse)
	}
	if want := (1.0 + 2.0) / 2; s.AvgSlowdown != want {
		t.Fatalf("AvgSlowdown = %g, want %g", s.AvgSlowdown, want)
	}
	if s.Utilization != 0.5 {
		t.Fatalf("Utilization = %g, want 0.5", s.Utilization)
	}
	if s.UnusedCapacity != 0.25 {
		t.Fatalf("UnusedCapacity = %g, want 0.25", s.UnusedCapacity)
	}
	if math.Abs(s.LostCapacity-0.25) > 1e-12 {
		t.Fatalf("LostCapacity = %g, want 0.25", s.LostCapacity)
	}
	if s.TotalRestarts != 1 || s.LostWorkNodeSec != 320 {
		t.Fatalf("restarts/lost = %d/%g", s.TotalRestarts, s.LostWorkNodeSec)
	}
	if s.MakespanSeconds != 200 {
		t.Fatalf("Makespan = %g", s.MakespanSeconds)
	}
	if s.MaxSlowdown != 2 || s.MedianSlowdown != 1.5 {
		t.Fatalf("Max/Median slowdown = %g/%g", s.MaxSlowdown, s.MedianSlowdown)
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize(nil, 128, 0); err == nil {
		t.Error("empty outcomes accepted")
	}
	bad := []Outcome{{ID: 1, Arrival: 100, LastStart: 50, Finish: 200, Estimate: 10, Actual: 10, Size: 1}}
	if _, err := Summarize(bad, 128, 0); err == nil {
		t.Error("start before arrival accepted")
	}
	ok := []Outcome{{ID: 1, Arrival: 0, LastStart: 0, Finish: 10, Estimate: 10, Actual: 10, Size: 1}}
	if _, err := Summarize(ok, 0, 0); err == nil {
		t.Error("zero machine size accepted")
	}
}

// Capacity identity: util + unused + lost = 1 by construction, and with
// no failures and no idle-with-demand time the three parts are
// consistent under random loads.
func TestCapacityIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(200)
		jobs := 1 + rng.Intn(20)
		outcomes := make([]Outcome, jobs)
		for i := range outcomes {
			arr := rng.Float64() * 1000
			run := 1 + rng.Float64()*1000
			wait := rng.Float64() * 100
			outcomes[i] = Outcome{
				ID: 1, Arrival: arr, FirstStart: arr + wait, LastStart: arr + wait,
				Finish: arr + wait + run, Estimate: run, Actual: run,
				Size: 1 + rng.Intn(n),
			}
		}
		unused := rng.Float64() * 1000
		s, err := Summarize(outcomes, n, unused)
		if err != nil {
			t.Fatal(err)
		}
		if sum := s.Utilization + s.UnusedCapacity + s.LostCapacity; math.Abs(sum-1) > 1e-9 {
			t.Fatalf("capacity fractions sum to %g", sum)
		}
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {-1, 1}, {2, 5},
	}
	for _, tc := range cases {
		if got := percentile(vals, tc.p); got != tc.want {
			t.Errorf("percentile(%g) = %g, want %g", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(empty) = %g", got)
	}
	if got := percentile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Errorf("interpolated percentile = %g, want 1.5", got)
	}
}
