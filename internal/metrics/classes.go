package metrics

import (
	"fmt"
	"sort"
)

// SizeClass aggregates outcomes for jobs within one requested-size
// band. Scheduling studies conventionally break slowdown down by job
// size: small jobs backfill easily while large jobs pay for
// fragmentation, and fault-aware placement shifts that balance.
type SizeClass struct {
	MinSize, MaxSize int // inclusive band of requested node counts
	Jobs             int
	AvgSlowdown      float64
	AvgWait          float64
	AvgResponse      float64
	Restarts         int
}

// DefaultSizeBounds split the paper's 128-node machine into the bands
// 1-8, 9-32, 33-64 and 65-128.
var DefaultSizeBounds = []int{8, 32, 64, 128}

// BySizeClass aggregates outcomes into size bands. bounds lists the
// inclusive upper edge of each band in ascending order; jobs larger
// than the last bound form a final overflow band. Empty bands are
// returned with Jobs == 0 so callers can print aligned tables.
func BySizeClass(outcomes []Outcome, bounds []int) ([]SizeClass, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("metrics: no size bounds")
	}
	if !sort.IntsAreSorted(bounds) {
		return nil, fmt.Errorf("metrics: size bounds %v not ascending", bounds)
	}
	if bounds[0] < 1 {
		return nil, fmt.Errorf("metrics: size bound %d < 1", bounds[0])
	}
	classes := make([]SizeClass, len(bounds)+1)
	lo := 1
	for i, b := range bounds {
		classes[i].MinSize = lo
		classes[i].MaxSize = b
		lo = b + 1
	}
	classes[len(bounds)].MinSize = lo
	classes[len(bounds)].MaxSize = int(^uint(0) >> 1)

	for i := range outcomes {
		o := &outcomes[i]
		k := sort.SearchInts(bounds, o.Size)
		c := &classes[k]
		c.Jobs++
		c.AvgSlowdown += o.Slowdown()
		c.AvgWait += o.Wait()
		c.AvgResponse += o.Response()
		c.Restarts += o.Restarts
	}
	for i := range classes {
		if classes[i].Jobs > 0 {
			n := float64(classes[i].Jobs)
			classes[i].AvgSlowdown /= n
			classes[i].AvgWait /= n
			classes[i].AvgResponse /= n
		}
	}
	// Drop the overflow band if nothing landed there.
	if classes[len(classes)-1].Jobs == 0 {
		classes = classes[:len(classes)-1]
	}
	return classes, nil
}

// Label renders the band as "lo-hi" ("129+" for the overflow band).
func (c SizeClass) Label() string {
	if c.MaxSize == int(^uint(0)>>1) {
		return fmt.Sprintf("%d+", c.MinSize)
	}
	return fmt.Sprintf("%d-%d", c.MinSize, c.MaxSize)
}
