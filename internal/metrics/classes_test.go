package metrics

import "testing"

func mkOutcome(size int, wait, run float64, restarts int) Outcome {
	return Outcome{
		Arrival: 0, FirstStart: wait, LastStart: wait, Finish: wait + run,
		Estimate: run, Actual: run, Size: size, Restarts: restarts,
	}
}

func TestBySizeClass(t *testing.T) {
	outcomes := []Outcome{
		mkOutcome(1, 0, 100, 0),    // band 1-8, slowdown 1
		mkOutcome(8, 100, 100, 1),  // band 1-8, slowdown 2
		mkOutcome(16, 300, 100, 0), // band 9-32, slowdown 4
		mkOutcome(128, 0, 100, 0),  // band 65-128, slowdown 1
	}
	classes, err := BySizeClass(outcomes, DefaultSizeBounds)
	if err != nil {
		t.Fatal(err)
	}
	// Overflow band empty: dropped. 4 remaining bands.
	if len(classes) != 4 {
		t.Fatalf("classes = %d, want 4", len(classes))
	}
	small := classes[0]
	if small.Label() != "1-8" || small.Jobs != 2 {
		t.Fatalf("small band = %+v", small)
	}
	if small.AvgSlowdown != 1.5 {
		t.Fatalf("small slowdown = %g, want 1.5", small.AvgSlowdown)
	}
	if small.AvgWait != 50 {
		t.Fatalf("small wait = %g", small.AvgWait)
	}
	if small.Restarts != 1 {
		t.Fatalf("small restarts = %d", small.Restarts)
	}
	if classes[1].Jobs != 1 || classes[1].AvgSlowdown != 4 {
		t.Fatalf("mid band = %+v", classes[1])
	}
	if classes[2].Jobs != 0 {
		t.Fatalf("33-64 band should be empty: %+v", classes[2])
	}
	if classes[3].Label() != "65-128" || classes[3].Jobs != 1 {
		t.Fatalf("large band = %+v", classes[3])
	}
}

func TestBySizeClassOverflow(t *testing.T) {
	outcomes := []Outcome{mkOutcome(500, 0, 100, 0)}
	classes, err := BySizeClass(outcomes, []int{8, 128})
	if err != nil {
		t.Fatal(err)
	}
	last := classes[len(classes)-1]
	if last.Label() != "129+" || last.Jobs != 1 {
		t.Fatalf("overflow band = %+v", last)
	}
}

func TestBySizeClassErrors(t *testing.T) {
	if _, err := BySizeClass(nil, nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := BySizeClass(nil, []int{32, 8}); err == nil {
		t.Error("unsorted bounds accepted")
	}
	if _, err := BySizeClass(nil, []int{0, 8}); err == nil {
		t.Error("zero bound accepted")
	}
}

func TestBySizeClassBoundaryAssignment(t *testing.T) {
	// A size exactly at a bound belongs to the lower band.
	outcomes := []Outcome{mkOutcome(8, 0, 100, 0), mkOutcome(9, 0, 100, 0)}
	classes, err := BySizeClass(outcomes, []int{8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if classes[0].Jobs != 1 || classes[1].Jobs != 1 {
		t.Fatalf("boundary assignment wrong: %+v", classes[:2])
	}
}
