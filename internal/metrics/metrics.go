// Package metrics computes the paper's evaluation metrics (Sections 3.4
// and 6.1): per-job wait time, response time and bounded slowdown, and
// the system-level capacity split into utilised, unused and lost
// fractions.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"bgsched/internal/job"
)

// Gamma is the bounded-slowdown threshold (seconds), Γ = 10 in the
// paper.
const Gamma = 10.0

// BoundedSlowdown is the standard JSSPP bounded slowdown
// max(t_r, Γ) / max(t_e, Γ).
func BoundedSlowdown(response, estimate float64) float64 {
	return math.Max(response, Gamma) / math.Max(estimate, Gamma)
}

// BoundedSlowdownPaper is the formula exactly as printed in the paper,
// max(t_r, Γ) / min(t_e, Γ). For any job longer than Γ the denominator
// is the constant Γ, which makes the metric a scaled response time;
// this is almost certainly a typo in the paper (see DESIGN.md), but the
// literal form is kept for comparison.
func BoundedSlowdownPaper(response, estimate float64) float64 {
	return math.Max(response, Gamma) / math.Min(estimate, Gamma)
}

// Outcome is the simulator's record of one finished job.
type Outcome struct {
	ID         job.ID
	Arrival    float64
	FirstStart float64 // first time the job began executing
	LastStart  float64 // latest (re)start time t_s; the paper's start value
	Finish     float64 // actual completion time t_f
	Estimate   float64 // estimated execution time t_e
	Actual     float64 // actual execution time of the successful run
	Size       int     // requested nodes s_j
	AllocSize  int     // allocated partition size
	Restarts   int     // number of failure-induced restarts
	LostWork   float64 // node-seconds thrown away by failures
}

// Wait returns the paper's wait time t_w = t_s - t_a (latest start).
func (o *Outcome) Wait() float64 { return o.LastStart - o.Arrival }

// Response returns t_r = t_f - t_a.
func (o *Outcome) Response() float64 { return o.Finish - o.Arrival }

// Slowdown returns the standard bounded slowdown of the outcome.
func (o *Outcome) Slowdown() float64 { return BoundedSlowdown(o.Response(), o.Estimate) }

// CapacityTracker integrates the unused-capacity function
// ∫ max(0, f(t) - q(t)) dt from piecewise-constant observations of the
// number of free nodes f and the queued node demand q. Observe must be
// called with non-decreasing times at every instant either value
// changes; each call closes the interval since the previous one using
// the previous values.
type CapacityTracker struct {
	started  bool
	lastTime float64
	free     int
	demand   int
	unused   float64
}

// Observe records the state (free nodes, queued demand) holding from
// time t onward.
func (c *CapacityTracker) Observe(t float64, freeNodes, queuedDemand int) error {
	if c.started {
		if t < c.lastTime {
			return fmt.Errorf("metrics: time went backwards: %g after %g", t, c.lastTime)
		}
		if excess := c.free - c.demand; excess > 0 {
			c.unused += float64(excess) * (t - c.lastTime)
		}
	}
	c.started = true
	c.lastTime = t
	c.free = freeNodes
	c.demand = queuedDemand
	return nil
}

// CloseAt integrates up to the final time t and returns the accumulated
// unused node-seconds.
func (c *CapacityTracker) CloseAt(t float64) (float64, error) {
	if err := c.Observe(t, c.free, c.demand); err != nil {
		return 0, err
	}
	return c.unused, nil
}

// UnusedNodeSeconds returns the integral accumulated so far.
func (c *CapacityTracker) UnusedNodeSeconds() float64 { return c.unused }

// TrackerState is the exported state of a CapacityTracker, for
// snapshot/restore: the integral accumulated so far plus the open
// interval's left endpoint and values.
type TrackerState struct {
	Started  bool
	LastTime float64
	Free     int
	Demand   int
	Unused   float64
}

// State captures the tracker for serialization.
func (c *CapacityTracker) State() TrackerState {
	return TrackerState{Started: c.started, LastTime: c.lastTime, Free: c.free, Demand: c.demand, Unused: c.unused}
}

// Restore resets the tracker to a previously captured state; subsequent
// Observe calls continue the integral exactly where the capture left it.
func (c *CapacityTracker) Restore(st TrackerState) {
	c.started = st.Started
	c.lastTime = st.LastTime
	c.free = st.Free
	c.demand = st.Demand
	c.unused = st.Unused
}

// Summary aggregates a simulation run.
type Summary struct {
	Jobs int

	AvgWait          float64
	AvgResponse      float64
	AvgSlowdown      float64 // standard bounded slowdown
	AvgSlowdownPaper float64 // literal paper formula
	MedianSlowdown   float64
	MaxSlowdown      float64

	TotalRestarts   int
	LostWorkNodeSec float64
	MakespanSeconds float64 // T = max t_f - min t_a
	Utilization     float64 // ω_util
	UnusedCapacity  float64 // ω_unused
	LostCapacity    float64 // ω_lost
}

// Summarize computes the run summary for a machine of n nodes given the
// per-job outcomes and the integrated unused node-seconds.
func Summarize(outcomes []Outcome, n int, unusedNodeSec float64) (Summary, error) {
	if len(outcomes) == 0 {
		return Summary{}, fmt.Errorf("metrics: no outcomes")
	}
	if n <= 0 {
		return Summary{}, fmt.Errorf("metrics: machine size %d", n)
	}
	var s Summary
	s.Jobs = len(outcomes)
	minArr := math.Inf(1)
	maxFin := math.Inf(-1)
	slowdowns := make([]float64, 0, len(outcomes))
	work := 0.0
	for i := range outcomes {
		o := &outcomes[i]
		if o.Finish < o.LastStart || o.LastStart < o.Arrival {
			return Summary{}, fmt.Errorf("metrics: job %d: inconsistent times a=%g s=%g f=%g",
				o.ID, o.Arrival, o.LastStart, o.Finish)
		}
		minArr = math.Min(minArr, o.Arrival)
		maxFin = math.Max(maxFin, o.Finish)
		s.AvgWait += o.Wait()
		s.AvgResponse += o.Response()
		sd := o.Slowdown()
		slowdowns = append(slowdowns, sd)
		s.AvgSlowdown += sd
		s.AvgSlowdownPaper += BoundedSlowdownPaper(o.Response(), o.Estimate)
		s.TotalRestarts += o.Restarts
		s.LostWorkNodeSec += o.LostWork
		work += float64(o.Size) * o.Actual
	}
	nf := float64(len(outcomes))
	s.AvgWait /= nf
	s.AvgResponse /= nf
	s.AvgSlowdown /= nf
	s.AvgSlowdownPaper /= nf
	sort.Float64s(slowdowns)
	s.MedianSlowdown = percentile(slowdowns, 0.5)
	s.MaxSlowdown = slowdowns[len(slowdowns)-1]

	s.MakespanSeconds = maxFin - minArr
	if s.MakespanSeconds > 0 {
		capacity := s.MakespanSeconds * float64(n)
		s.Utilization = work / capacity
		s.UnusedCapacity = unusedNodeSec / capacity
	}
	s.LostCapacity = 1 - s.Utilization - s.UnusedCapacity
	return s, nil
}

// percentile returns the p-quantile (0..1) of sorted values by linear
// interpolation.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
