package service

import (
	"context"
	"fmt"
	"net/http"
	"sync"

	"bgsched/internal/experiments"
	"bgsched/internal/sim"
	"bgsched/internal/snapshot"
	"bgsched/internal/telemetry"
	"bgsched/internal/trace"
)

// BranchRequest is the POST /v1/runs/{id}/branch payload: replay the
// parent run's world from the event boundary AtSeq under a modified
// policy.
type BranchRequest struct {
	AtSeq  int64              `json:"at_seq"`
	Branch experiments.Branch `json:"branch"`
}

// branchConfig is the canonical config of a branch run. The parent's
// canonical config (not its id) pins the world, so the cache key — and
// therefore result reuse — survives parent-run eviction and restarts.
type branchConfig struct {
	Parent     experiments.RunConfig `json:"parent"`
	ParentID   string                `json:"parent_id"`
	ParentHash string                `json:"parent_hash"`
	AtSeq      int64                 `json:"at_seq"`
	Branch     experiments.Branch    `json:"branch"`
}

// BranchResult is the payload of a completed branch replay.
type BranchResult struct {
	ParentID   string             `json:"parent_id"`
	ParentHash string             `json:"parent_hash"`
	AtSeq      int64              `json:"at_seq"`
	Branch     experiments.Branch `json:"branch"`
	SimResult
}

// snapshotCache is a tiny LRU of parent-prefix snapshots keyed by
// (parent config hash, at_seq): sibling branches off the same point
// reuse one prefix execution instead of re-simulating it. States are
// immutable once cached (sim.NewFromSnapshot never mutates its input),
// so one entry can feed any number of concurrent branch runs. Hit/miss
// is visible only in the service counters, never in result payloads —
// a chaos cache-drop replay must stay byte-identical.
type snapshotCache struct {
	mu    sync.Mutex
	cap   int
	items map[string]*snapshot.State
	order []string // LRU, most recent last
}

func newSnapshotCache(capacity int) *snapshotCache {
	return &snapshotCache{cap: capacity, items: make(map[string]*snapshot.State)}
}

func (c *snapshotCache) get(key string) *snapshot.State {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.items[key]
	if !ok {
		return nil
	}
	c.touchLocked(key)
	return st
}

func (c *snapshotCache) add(key string, st *snapshot.State) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[key]; !ok && len(c.items) >= c.cap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.items, oldest)
	}
	c.items[key] = st
	c.touchLocked(key)
}

func (c *snapshotCache) touchLocked(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.order = append(c.order, key)
}

// snapshotCacheSize bounds retained parent-prefix snapshots. Snapshots
// are a few hundred KB each; branch grids fan many branches off few
// points, so a small cache captures the reuse.
const snapshotCacheSize = 8

// handleSubmitBranch accepts a what-if replay of an existing simulation
// run: restore the parent's state at the requested event boundary, swap
// in the branch's policy overrides, and run the rest of the schedule.
func (s *Server) handleSubmitBranch(w http.ResponseWriter, req *http.Request) {
	parent := s.lookup(req.PathValue("id"))
	if parent == nil {
		s.writeErr(w, http.StatusNotFound, "no such run")
		return
	}
	if parent.kind != kindSim {
		s.writeErr(w, http.StatusConflict, "branching requires a simulation run, parent is kind "+parent.kind)
		return
	}
	s.mu.Lock()
	parentCfg, ok := parent.cfg.(experiments.RunConfig)
	parentHash := parent.hash
	s.mu.Unlock()
	if !ok {
		s.writeErr(w, http.StatusConflict, "parent run's configuration is unavailable")
		return
	}
	var br BranchRequest
	if !s.decodeBody(w, req, &br) {
		return
	}
	if br.AtSeq < 1 {
		s.writeErr(w, http.StatusBadRequest, fmt.Sprintf("at_seq must be >= 1, got %d", br.AtSeq))
		return
	}
	// The branch config must be valid stand-alone: apply the overrides
	// and run them through the same gate as a direct submission.
	applied := br.Branch.Apply(parentCfg).Canonical()
	if applied.FinderWorkers > maxFinderWorkers {
		s.writeErr(w, http.StatusBadRequest,
			fmt.Sprintf("finder_workers must be <= %d, got %d", maxFinderWorkers, applied.FinderWorkers))
		return
	}
	if err := s.validateRunConfig(applied); err != nil {
		s.writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	bc := branchConfig{
		Parent:     parentCfg,
		ParentID:   parent.id,
		ParentHash: parentHash,
		AtSeq:      br.AtSeq,
		Branch:     br.Branch,
	}
	// ParentID is excluded from the hash: two parents with identical
	// canonical configs pin the same world, so their branches are the
	// same computation and must share one cache entry.
	hash := telemetry.ConfigHash(struct {
		Kind       string
		ParentHash string
		AtSeq      int64
		Branch     experiments.Branch
	}{kindBranch, parentHash, br.AtSeq, br.Branch})
	s.submit(w, req, kindBranch, hash, bc)
}

// executeBranch runs one branch replay: obtain the parent-prefix
// snapshot (cached across sibling branches), restore under the branch
// config with the run's output streams wired, and continue to the end
// of the schedule.
func (s *Server) executeBranch(ctx context.Context, r *run) (any, error) {
	bc := r.cfg.(branchConfig)
	key := fmt.Sprintf("%s@%d", bc.ParentHash, bc.AtSeq)
	st := s.snapshots.get(key)
	if st != nil {
		s.m.branchSnapshotHits.Inc()
	} else {
		s.m.branchSnapshotMisses.Inc()
		// The prefix replays the parent's canonical config with no output
		// streams attached: its event log and trace belong to the parent
		// run, not to this branch. With no writers the captured stream
		// origins (ElogSeq, TraceSeq) are zero, so a branch's own streams
		// are identical whether the snapshot came from cache or not.
		var err error
		st, err = experiments.SnapshotAt(ctx, bc.Parent, bc.AtSeq)
		if err != nil {
			return nil, err
		}
		s.snapshots.add(key, st)
	}

	cfg := bc.Branch.Apply(bc.Parent)
	reg := telemetry.New()
	cfg.Telemetry = reg
	esw := sim.NewEventStreamWriter(r.events.append)
	cfg.EventLog = esw
	tsw := sim.NewEventStreamWriter(r.traces.append)
	cfg.Trace = trace.New(tsw, trace.Options{WallSpans: true})
	cfg.Trace.Meta(trace.F("run", r.id), trace.F("branch_of", bc.ParentID),
		trace.Fint("at_seq", bc.AtSeq), trace.F("scheduler", string(cfg.Scheduler)))
	if s.cfg.FlightEvents > 0 {
		cfg.Flight = trace.NewFlightRecorder(s.cfg.FlightEvents, nil, "run "+r.id)
	}
	res, err := experiments.ResumeFromSnapshot(ctx, cfg, st)
	esw.Close()
	tsw.Close()
	if err != nil {
		return nil, err
	}
	return BranchResult{
		ParentID:   bc.ParentID,
		ParentHash: bc.ParentHash,
		AtSeq:      bc.AtSeq,
		Branch:     bc.Branch,
		SimResult: SimResult{
			Summary:       res.Summary,
			FailureEvents: res.FailureEvents,
			JobKills:      res.JobKills,
			Migrations:    res.Migrations,
			Checkpoints:   res.Checkpoints,
			Backfills:     res.Backfills,
			Telemetry:     reg.Snapshot(),
		},
	}, nil
}
