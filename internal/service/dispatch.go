package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"bgsched/internal/experiments"
	"bgsched/internal/resilience"
	"bgsched/internal/sim"
	"bgsched/internal/telemetry"
	"bgsched/internal/trace"
)

// errQueueFull is returned by enqueue when the bounded queue is
// saturated; the handler maps it to 429 + Retry-After.
var errQueueFull = errors.New("service: run queue full")

// errDraining is returned by enqueue once the server drains; the
// handler maps it to 503.
var errDraining = errors.New("service: draining, not accepting runs")

// enqueue registers a new run and places it on the bounded queue
// without ever blocking: a full queue is backpressure, reported to the
// client, not absorbed into unbounded memory.
func (s *Server) enqueue(kind, hash string, cfg any, wait bool) (*run, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errDraining
	}
	r := &run{
		kind:      kind,
		hash:      hash,
		cfg:       cfg,
		state:     StateQueued,
		submitted: time.Now(),
		events:    newEventBuffer(s.cfg.MaxEventBytes),
		traces:    newEventBuffer(s.cfg.MaxEventBytes),
		done:      make(chan struct{}),
	}
	r.ctx, r.cancel = context.WithCancel(s.baseCtx)
	select {
	case s.queue <- r:
	default:
		r.cancel()
		return nil, errQueueFull
	}
	r.id = s.nextRunIDLocked()
	if wait {
		r.waiters++
		r.ephemeral = true
	}
	s.runs[r.id] = r
	s.order = append(s.order, r)
	s.byHash[hash] = r
	s.enforceRetentionLocked()
	s.m.queueDepth.Add(1)
	s.m.runsSubmitted.Inc()
	return r, nil
}

// runOne executes one dequeued run with a deadline, panic containment
// and retries, then publishes the terminal record.
func (s *Server) runOne(r *run) {
	s.m.queueDepth.Add(-1)
	s.mu.Lock()
	if r.state != StateQueued { // cancelled while queued
		s.mu.Unlock()
		return
	}
	r.state = StateRunning
	r.started = time.Now()
	s.m.queueWait.Observe(r.started.Sub(r.submitted).Seconds())
	s.mu.Unlock()

	ctx, cancel := context.WithTimeout(r.ctx, s.cfg.RunTimeout)
	defer cancel()

	exec := s.executeTask
	if s.execHook != nil {
		exec = s.execHook
	}
	var payload any
	var err error
	attempts := 0
	for {
		attempts++
		if attempts > 1 {
			r.events.reset() // a retry restarts the event stream
			r.traces.reset() // ... and the causal trace
		}
		err = resilience.Safe(func() error {
			// The chaos dispatch seam fails whole attempts, so injected
			// faults exercise the same retry machinery organic ones do.
			if s.cfg.Chaos != nil {
				if ferr := s.cfg.Chaos.Exec(); ferr != nil {
					return ferr
				}
			}
			var execErr error
			payload, execErr = exec(ctx, r)
			return execErr
		})
		if err == nil || resilience.Canceled(err) {
			break
		}
		if _, isPanic := resilience.IsPanic(err); isPanic {
			s.m.runPanics.Inc()
		}
		if attempts > s.cfg.Retries {
			break
		}
		s.m.runRetries.Inc()
	}
	s.finish(r, attempts, payload, err)
}

// executeTask runs the simulation or figure sweep for r, streaming the
// event log into the run's buffer as it is produced. Both paths build
// their simulations through the staged run-builder (internal/build), so
// every request served by this process shares one artifact cache:
// repeated or near-identical submissions — the common shape of service
// traffic — reuse synthesized workloads and failure traces instead of
// regenerating them. (Distinct from the server's result cache, which
// dedups whole runs by config hash; the artifact cache accelerates runs
// that are merely similar.)
func (s *Server) executeTask(ctx context.Context, r *run) (any, error) {
	switch r.kind {
	case kindSim:
		cfg := r.cfg.(experiments.RunConfig)
		reg := telemetry.New()
		cfg.Telemetry = reg
		esw := sim.NewEventStreamWriter(r.events.append)
		cfg.EventLog = esw
		// The causal trace streams into its own buffer the same way the
		// event log does; wall spans are on so the request's build stages
		// show up alongside the simulated-time lifecycle records.
		tsw := sim.NewEventStreamWriter(r.traces.append)
		cfg.Trace = trace.New(tsw, trace.Options{WallSpans: true})
		cfg.Trace.Meta(trace.F("run", r.id), trace.F("workload", cfg.Workload),
			trace.F("scheduler", string(cfg.Scheduler)), trace.Fint("seed", cfg.Seed))
		if s.cfg.FlightEvents > 0 {
			// Registered/unregistered around the run by sim.RunContext, so
			// GET /debug/flight sees exactly the in-flight runs.
			cfg.Flight = trace.NewFlightRecorder(s.cfg.FlightEvents, nil, "run "+r.id)
		}
		res, err := experiments.RunContext(ctx, cfg)
		esw.Close()
		tsw.Close()
		if err != nil {
			return nil, err
		}
		return SimResult{
			Summary:       res.Summary,
			FailureEvents: res.FailureEvents,
			JobKills:      res.JobKills,
			Migrations:    res.Migrations,
			Checkpoints:   res.Checkpoints,
			Backfills:     res.Backfills,
			Telemetry:     reg.Snapshot(),
		}, nil
	case kindBranch:
		return s.executeBranch(ctx, r)
	case kindFigure:
		fc := r.cfg.(figureConfig)
		spec, err := experiments.SpecByID(fc.Figure)
		if err != nil {
			return nil, err
		}
		eng := &experiments.Engine{Ctx: ctx, Workers: fc.workers}
		tables, err := spec.Run(eng, fc.Options)
		if err != nil {
			return nil, err
		}
		return FigureResult{Figure: spec.ID, Title: spec.Title, Tables: tables}, nil
	}
	return nil, fmt.Errorf("service: unknown run kind %q", r.kind)
}

// finish publishes r's terminal state: renders the immutable record
// body, updates the cache and metrics, journals successful runs, and
// releases everyone blocked on the run.
func (s *Server) finish(r *run, attempts int, payload any, err error) {
	s.mu.Lock()
	r.attempts = attempts
	r.finished = time.Now()
	switch {
	case err == nil:
		resultJSON, merr := json.Marshal(payload)
		if merr != nil {
			r.state = StateFailed
			r.errMsg = fmt.Sprintf("encode result: %v", merr)
			s.m.runsFailed.Inc()
			break
		}
		r.state = StateDone
		r.result = resultJSON
		s.m.runsCompleted.Inc()
		s.m.runDuration.Observe(r.finished.Sub(r.started).Seconds())
	case resilience.Canceled(err):
		r.state = StateCanceled
		r.errMsg = r.cancelReason
		if r.errMsg == "" {
			r.errMsg = err.Error()
		}
		s.m.runsCanceled.Inc()
	default:
		r.state = StateFailed
		r.errMsg = err.Error()
		s.m.runsFailed.Inc()
	}
	s.sealLocked(r)
	persist := r.state == StateDone
	body := r.body
	s.mu.Unlock()

	r.events.close()
	if r.traces != nil {
		r.traces.close()
	}
	// Journal before releasing waiters: a client that observed the run
	// complete (wait=1) must also observe the journal's health state —
	// otherwise a /readyz probe issued right after a successful waited
	// run can race ahead of the failure-streak reset below.
	if persist && s.journal != nil {
		lines, _ := r.events.counts()
		events := make([]string, 0, lines)
		got, _, _, _ := r.events.wait(context.Background(), 0)
		for _, ln := range got {
			events = append(events, string(ln))
		}
		if jerr := s.journal.append(persistedRun{Body: body, Events: events}); jerr != nil {
			// Failures are counted and tracked as a consecutive streak:
			// /readyz flips to degraded at journalDegradedAfter, because a
			// persistently failing journal silently forfeits restart
			// durability.
			s.m.journalErrors.Inc()
			s.journalFails.Add(1)
			s.logError("state journal append failed", "run", r.id, "err", jerr)
		} else {
			s.journalFails.Store(0)
		}
	}
	close(r.done)
}

// sealLocked renders the terminal record body and removes the run from
// the in-flight coalescing index. Caller holds s.mu.
func (s *Server) sealLocked(r *run) {
	body, err := json.Marshal(s.viewLocked(r, true))
	if err != nil {
		// The view is plain data; this cannot realistically fail, but a
		// record must exist for the terminal state regardless.
		body = []byte(fmt.Sprintf(`{"id":%q,"state":%q,"error":"encode record failed"}`, r.id, r.state))
	}
	r.body = body
	if s.byHash[r.hash] == r {
		delete(s.byHash, r.hash)
	}
	if r.state == StateDone {
		if evicted := s.cache.add(r.hash, r); evicted > 0 {
			s.m.cacheEvictions.Add(int64(evicted))
		}
	}
}

// cancelRun requests cancellation: a queued run transitions to
// canceled immediately (the worker will skip it); a running run has
// its context cancelled and the executor publishes the terminal state.
// Returns false if the run was already terminal.
func (s *Server) cancelRun(r *run, reason string) bool {
	s.mu.Lock()
	switch r.state {
	case StateQueued:
		r.state = StateCanceled
		r.cancelReason = reason
		r.errMsg = reason
		r.finished = time.Now()
		s.m.runsCanceled.Inc()
		s.sealLocked(r)
		s.mu.Unlock()
		r.cancel()
		r.events.close()
		if r.traces != nil {
			r.traces.close()
		}
		close(r.done)
		return true
	case StateRunning:
		r.cancelReason = reason
		s.mu.Unlock()
		r.cancel()
		return true
	}
	s.mu.Unlock()
	return false
}

// logError emits an operational (non-access) log line when logging is
// configured.
func (s *Server) logError(msg string, args ...any) {
	if s.accessLg != nil {
		s.accessLg.Error(msg, args...)
	}
}
