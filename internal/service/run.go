package service

import (
	"context"
	"encoding/json"
	"time"

	"bgsched/internal/experiments"
	"bgsched/internal/metrics"
	"bgsched/internal/telemetry"
)

// State is a run's lifecycle state.
type State string

// Run lifecycle: queued -> running -> done | failed | canceled.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

func (st State) terminal() bool {
	return st == StateDone || st == StateFailed || st == StateCanceled
}

// Run kinds.
const (
	kindSim    = "sim"
	kindFigure = "figure"
	kindBranch = "branch"
)

// FigureRequest is the POST /v1/figures/{fig} payload. Workers bounds
// the sweep engine's point parallelism for this request (clamped by
// the server); it is deliberately excluded from the cache hash because
// it changes execution speed, never the resulting tables.
type FigureRequest struct {
	Options experiments.Options
	Workers int
}

// figureConfig is the canonical config of a figure run (the hashed
// form plus the non-hashed execution knob).
type figureConfig struct {
	Figure  string              `json:"figure"`
	Options experiments.Options `json:"options"`
	workers int
}

// SimResult is the payload of a completed simulation run. Outcomes are
// deliberately summarised: per-job rows live in the event stream, not
// the cached record.
type SimResult struct {
	Summary       metrics.Summary     `json:"summary"`
	FailureEvents int                 `json:"failure_events"`
	JobKills      int                 `json:"job_kills"`
	Migrations    int                 `json:"migrations"`
	Checkpoints   int                 `json:"checkpoints"`
	Backfills     int                 `json:"backfills"`
	Telemetry     *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// FigureResult is the payload of a completed figure sweep.
type FigureResult struct {
	Figure string               `json:"figure"`
	Title  string               `json:"title"`
	Tables []*experiments.Table `json:"tables"`
}

// run is one tracked request. Mutable fields are guarded by Server.mu;
// the event buffer has its own lock; ctx/cancel/done are set once at
// creation.
type run struct {
	id     string
	kind   string
	hash   string
	cfg    any // experiments.RunConfig or figureConfig (canonical)
	events *eventBuffer
	// traces buffers the run's NDJSON causal trace (internal/trace)
	// exactly as events buffers the sim event log; nil on runs restored
	// from the state journal (traces are not persisted).
	traces *eventBuffer

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	state        State
	errMsg       string
	cancelReason string
	attempts     int
	submitted    time.Time
	started      time.Time
	finished     time.Time
	result       json.RawMessage
	// body is the full record rendered once at the terminal transition;
	// every later read (cache hits, GET, wait responses, the state
	// journal) serves these exact bytes, which is what makes cache hits
	// byte-identical.
	body []byte
	// waiters counts ?wait=1 clients attached to this run; ephemeral
	// marks a run created by a waiting client, whose disconnect cancels
	// the run if nobody else is waiting.
	waiters   int
	ephemeral bool
}

// RunView is the JSON rendering of a run record. Summary listings omit
// Config and Result.
type RunView struct {
	ID         string          `json:"id"`
	Kind       string          `json:"kind"`
	State      State           `json:"state"`
	ConfigHash string          `json:"config_hash"`
	Submitted  time.Time       `json:"submitted"`
	Started    *time.Time      `json:"started,omitempty"`
	Finished   *time.Time      `json:"finished,omitempty"`
	DurationS  float64         `json:"duration_seconds,omitempty"`
	Attempts   int             `json:"attempts,omitempty"`
	Error      string          `json:"error,omitempty"`
	Events     int             `json:"events"`
	Dropped    int             `json:"events_dropped,omitempty"`
	Traces     int             `json:"trace_records,omitempty"`
	Config     any             `json:"config,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// viewLocked renders a run. Caller holds s.mu.
func (s *Server) viewLocked(r *run, full bool) RunView {
	v := RunView{
		ID:         r.id,
		Kind:       r.kind,
		State:      r.state,
		ConfigHash: r.hash,
		Submitted:  r.submitted.UTC(),
		Attempts:   r.attempts,
		Error:      r.errMsg,
	}
	if !r.started.IsZero() {
		t := r.started.UTC()
		v.Started = &t
	}
	if !r.finished.IsZero() {
		t := r.finished.UTC()
		v.Finished = &t
		if !r.started.IsZero() {
			v.DurationS = r.finished.Sub(r.started).Seconds()
		}
	}
	if r.events != nil {
		v.Events, v.Dropped = r.events.counts()
	}
	if r.traces != nil {
		v.Traces, _ = r.traces.counts()
	}
	if full {
		v.Config = r.cfg
		v.Result = r.result
	}
	return v
}
