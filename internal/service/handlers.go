package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"

	"bgsched/internal/experiments"
	"bgsched/internal/partition"
	"bgsched/internal/telemetry"
	"bgsched/internal/torus"
	"bgsched/internal/trace"
	"bgsched/internal/workload"
)

// buildHandler wires the route table and the middleware chain:
// access logging (with request IDs) around concurrency limiting
// around the mux.
func (s *Server) buildHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("GET /metrics", telemetry.Handler(s.reg))
	mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	mux.HandleFunc("GET /v1/runs", s.handleListRuns)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGetRun)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancelRun)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleStreamEvents)
	mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleStreamTrace)
	mux.HandleFunc("POST /v1/runs/{id}/branch", s.handleSubmitBranch)
	mux.HandleFunc("POST /v1/figures/{fig}", s.handleSubmitFigure)
	mux.HandleFunc("GET /debug/flight", s.handleFlightDump)
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	// Outside-in: access logging sees every outcome, panic recovery
	// turns handler (and injected) panics into counted 500s, the
	// limiter sheds load, and the chaos layer — a no-op without an
	// injector — degrades whatever the limiter admitted.
	return s.accessLogged(s.recovered(s.limited(s.chaotic(mux))))
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// journalDegradedAfter is how many consecutive journal-append failures
// flip /readyz to degraded: one failed fsync can be a blip, a streak
// means completed results are not being persisted and a restart would
// lose them.
const journalDegradedAfter = 3

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	if streak := s.journalFails.Load(); streak >= journalDegradedAfter {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "degraded: state journal failing (%d consecutive append errors)\n", streak)
		return
	}
	io.WriteString(w, "ready\n")
}

// handleSubmitRun accepts a simulation request: the body is a JSON
// experiments.RunConfig (Go field names as keys, unknown fields
// rejected). The config is canonicalised before hashing, so
// default-equivalent submissions share one cache entry.
func (s *Server) handleSubmitRun(w http.ResponseWriter, req *http.Request) {
	var cfg experiments.RunConfig
	if !s.decodeBody(w, req, &cfg) {
		return
	}
	cfg = cfg.Canonical()
	if cfg.FinderWorkers > maxFinderWorkers {
		cfg.FinderWorkers = maxFinderWorkers
	}
	if err := s.validateRunConfig(cfg); err != nil {
		s.writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	hash := telemetry.ConfigHash(struct {
		Kind   string
		Config experiments.RunConfig
	}{kindSim, cfg})
	s.submit(w, req, kindSim, hash, cfg)
}

// handleSubmitFigure accepts a paper-figure sweep request for
// /v1/figures/{fig}; the body is a FigureRequest ({} for defaults).
func (s *Server) handleSubmitFigure(w http.ResponseWriter, req *http.Request) {
	spec, err := experiments.SpecByID(req.PathValue("fig"))
	if err != nil {
		s.writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	var fr FigureRequest
	if !s.decodeBody(w, req, &fr) {
		return
	}
	fr.Options = fr.Options.Canonical()
	if err := s.validateFigureOptions(fr.Options); err != nil {
		s.writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if fr.Workers < 0 {
		fr.Workers = 0
	}
	if fr.Workers > maxSweepWorkers {
		fr.Workers = maxSweepWorkers
	}
	if fr.Workers == 0 {
		fr.Workers = 1 // inside the service, sweep points default to sequential
	}
	cfg := figureConfig{Figure: spec.ID, Options: fr.Options, workers: fr.Workers}
	// Workers is excluded from the hash on purpose: parallelism changes
	// wall-clock, never the tables (the engine fills disjoint slots).
	hash := telemetry.ConfigHash(struct {
		Kind    string
		Figure  string
		Options experiments.Options
	}{kindFigure, spec.ID, fr.Options})
	s.submit(w, req, kindFigure, hash, cfg)
}

// submit is the shared submission path: serve a cache hit
// byte-identically, coalesce onto an in-flight identical run, or
// enqueue a fresh one; with ?wait=1 block until the run is terminal
// (and cancel it if this client created it and disconnects first).
func (s *Server) submit(w http.ResponseWriter, req *http.Request, kind, hash string, cfg any) {
	wait := isTruthy(req.URL.Query().Get("wait"))

	s.mu.Lock()
	if hit := s.cache.get(hash); hit != nil {
		// The chaos cache seam can force a miss: the run re-executes and
		// determinism demands the replayed result be byte-identical —
		// exactly the property a soak verifies. (Lock order s.mu → chaos
		// site mutex; nothing takes them the other way.)
		if s.cfg.Chaos != nil && s.cfg.Chaos.CacheDrop() {
			w.Header().Set("X-Chaos", "cache-drop")
		} else {
			body := hit.body
			s.mu.Unlock()
			s.m.cacheHits.Inc()
			w.Header().Set("X-Cache", "hit")
			s.writeJSONBytes(w, http.StatusOK, body)
			return
		}
	}
	r := s.byHash[hash]
	if r != nil {
		if wait {
			r.waiters++
		}
		s.mu.Unlock()
		s.m.runsCoalesced.Inc()
		w.Header().Set("X-Coalesced", "true")
	} else {
		s.mu.Unlock()
		s.m.cacheMisses.Inc()
		var err error
		r, err = s.enqueue(kind, hash, cfg, wait)
		switch {
		case errors.Is(err, errQueueFull):
			s.m.queueRejected.Inc()
			s.writeTooMany(w, "run queue full, retry later")
			return
		case errors.Is(err, errDraining):
			s.writeErr(w, http.StatusServiceUnavailable, "server is draining")
			return
		case err != nil:
			s.writeErr(w, http.StatusInternalServerError, err.Error())
			return
		}
	}
	w.Header().Set("X-Cache", "miss")
	w.Header().Set("Location", "/v1/runs/"+r.id)

	if !wait {
		s.mu.Lock()
		view := s.viewLocked(r, false)
		s.mu.Unlock()
		s.writeJSON(w, http.StatusAccepted, view)
		return
	}
	select {
	case <-r.done:
		s.mu.Lock()
		body := r.body
		s.mu.Unlock()
		s.writeJSONBytes(w, http.StatusOK, body)
	case <-req.Context().Done():
		// The waiting client went away. If it was the run's creator and
		// nobody else is waiting, the run's results have no audience:
		// cancel it so the worker (or the queue slot) frees up.
		s.mu.Lock()
		r.waiters--
		abandon := r.ephemeral && r.waiters <= 0 && !r.state.terminal()
		s.mu.Unlock()
		if abandon {
			s.cancelRun(r, "client disconnected")
		}
	}
}

func (s *Server) handleListRuns(w http.ResponseWriter, req *http.Request) {
	filter := State(req.URL.Query().Get("state"))
	s.mu.Lock()
	views := make([]RunView, 0, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- { // newest first
		r := s.order[i]
		if filter != "" && r.state != filter {
			continue
		}
		views = append(views, s.viewLocked(r, false))
	}
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, struct {
		Count int       `json:"count"`
		Runs  []RunView `json:"runs"`
	}{len(views), views})
}

func (s *Server) handleGetRun(w http.ResponseWriter, req *http.Request) {
	r := s.lookup(req.PathValue("id"))
	if r == nil {
		s.writeErr(w, http.StatusNotFound, "no such run")
		return
	}
	s.mu.Lock()
	body := r.body
	var view RunView
	if body == nil {
		view = s.viewLocked(r, true)
	}
	s.mu.Unlock()
	if body != nil {
		s.writeJSONBytes(w, http.StatusOK, body)
		return
	}
	s.writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleCancelRun(w http.ResponseWriter, req *http.Request) {
	r := s.lookup(req.PathValue("id"))
	if r == nil {
		s.writeErr(w, http.StatusNotFound, "no such run")
		return
	}
	if !s.cancelRun(r, "canceled by client") {
		s.writeErr(w, http.StatusConflict, "run already finished")
		return
	}
	s.mu.Lock()
	view := s.viewLocked(r, false)
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, view)
}

// handleStreamEvents serves the run's JSONL event log as NDJSON,
// replaying what exists and following live output until the run
// finishes or the client disconnects.
func (s *Server) handleStreamEvents(w http.ResponseWriter, req *http.Request) {
	r := s.lookup(req.PathValue("id"))
	if r == nil {
		s.writeErr(w, http.StatusNotFound, "no such run")
		return
	}
	s.streamNDJSON(w, req, r.events)
}

// handleStreamTrace serves the run's causal trace (internal/trace
// NDJSON records) with the same replay-and-follow semantics as the
// event stream. Runs restored from the state journal have no retained
// trace.
func (s *Server) handleStreamTrace(w http.ResponseWriter, req *http.Request) {
	r := s.lookup(req.PathValue("id"))
	if r == nil {
		s.writeErr(w, http.StatusNotFound, "no such run")
		return
	}
	if r.traces == nil {
		s.writeErr(w, http.StatusNotFound, "no trace retained for this run")
		return
	}
	s.streamNDJSON(w, req, r.traces)
}

// handleFlightDump writes a plain-text dump of every registered kernel
// flight recorder — one per in-flight simulation run — for live
// incident inspection without waiting for a SIGQUIT.
func (s *Server) handleFlightDump(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	if n := trace.DumpFlights(w, "debug endpoint"); n == 0 {
		io.WriteString(w, "no flight recorders registered (no simulation in flight)\n")
	}
}

// streamNDJSON replays buffer lines as NDJSON and follows live output
// until the buffer closes or the client disconnects.
func (s *Server) streamNDJSON(w http.ResponseWriter, req *http.Request, buf *eventBuffer) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	s.m.streamsActive.Add(1)
	defer s.m.streamsActive.Add(-1)

	cursor := 0
	for {
		// wait hands back every line past the cursor, so when closed is
		// set the returned batch is the stream's tail.
		lines, next, closed, err := buf.wait(req.Context(), cursor)
		if err != nil {
			return // client gone
		}
		for _, ln := range lines {
			if _, werr := w.Write(ln); werr != nil {
				return
			}
			if _, werr := io.WriteString(w, "\n"); werr != nil {
				return
			}
		}
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if closed {
			return
		}
		cursor = next
	}
}

// lookup resolves a run id.
func (s *Server) lookup(id string) *run {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs[id]
}

// maxFinderWorkers and maxSweepWorkers bound per-request parallelism
// so one client cannot monopolise the host.
const (
	maxFinderWorkers = 8
	maxSweepWorkers  = 4
)

// validateRunConfig rejects configs that are malformed or outsized
// before they consume a queue slot. cfg is already canonical.
func (s *Server) validateRunConfig(cfg experiments.RunConfig) error {
	if cfg.JobCount < 1 || cfg.JobCount > s.cfg.MaxJobs {
		return fmt.Errorf("JobCount must be in [1, %d], got %d", s.cfg.MaxJobs, cfg.JobCount)
	}
	if cfg.Machine != "" {
		if _, err := torus.Parse(cfg.Machine); err != nil {
			return fmt.Errorf("Machine: %v", err)
		}
	}
	if _, err := workload.PresetByName(cfg.Workload, cfg.JobCount); err != nil {
		return fmt.Errorf("Workload: %v", err)
	}
	if _, err := partition.ByName(cfg.Finder, cfg.FinderWorkers); err != nil {
		return fmt.Errorf("Finder: %v", err)
	}
	switch cfg.Scheduler {
	case experiments.SchedBaseline, experiments.SchedBalancing, experiments.SchedTieBreak,
		experiments.SchedBalancingLearned, experiments.SchedTieBreakLearned:
	default:
		return fmt.Errorf("Scheduler: unknown kind %q", cfg.Scheduler)
	}
	if cfg.Param < 0 || cfg.Param > 1 {
		return fmt.Errorf("Param must be in [0, 1], got %g", cfg.Param)
	}
	if cfg.LoadScale <= 0 || cfg.LoadScale > 100 {
		return fmt.Errorf("LoadScale must be in (0, 100], got %g", cfg.LoadScale)
	}
	for name, v := range map[string]float64{
		"EstimateFactor": cfg.EstimateFactor, "FailureScale": cfg.FailureScale,
		"MigrationCost": cfg.MigrationCost, "Downtime": cfg.Downtime,
		"CheckpointInterval": cfg.CheckpointInterval, "CheckpointOverhead": cfg.CheckpointOverhead,
		"CheckpointRestart": cfg.CheckpointRestart,
	} {
		if v < 0 {
			return fmt.Errorf("%s must be >= 0, got %g", name, v)
		}
	}
	if cfg.FailureNominal < 0 {
		return fmt.Errorf("FailureNominal must be >= 0, got %d", cfg.FailureNominal)
	}
	return nil
}

// validateFigureOptions rejects malformed or outsized sweep options.
// opt is already canonical.
func (s *Server) validateFigureOptions(opt experiments.Options) error {
	if opt.JobCount < 1 || opt.JobCount > s.cfg.MaxJobs {
		return fmt.Errorf("JobCount must be in [1, %d], got %d", s.cfg.MaxJobs, opt.JobCount)
	}
	if opt.Replications < 1 || opt.Replications > 16 {
		return fmt.Errorf("Replications must be in [1, 16], got %d", opt.Replications)
	}
	switch opt.Metric {
	case experiments.MetricSlowdown, experiments.MetricResponse, experiments.MetricWait:
	default:
		return fmt.Errorf("Metric: unknown %q", opt.Metric)
	}
	switch opt.Aggregate {
	case experiments.AggMean, experiments.AggMedian:
	default:
		return fmt.Errorf("Aggregate: unknown %q", opt.Aggregate)
	}
	if opt.FailureScale < 0 {
		return fmt.Errorf("FailureScale must be >= 0, got %g", opt.FailureScale)
	}
	return nil
}

// decodeBody strictly decodes the JSON request body into v, answering
// 4xx itself on failure. An empty body decodes as all defaults.
func (s *Server) decodeBody(w http.ResponseWriter, req *http.Request, v any) bool {
	body := http.MaxBytesReader(w, req.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	err := dec.Decode(v)
	switch {
	case errors.Is(err, io.EOF):
		return true // empty body: defaults
	case err != nil:
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		s.writeErr(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return false
	}
	if dec.More() {
		s.writeErr(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

func isTruthy(v string) bool {
	switch v {
	case "1", "true", "yes":
		return true
	}
	return false
}

// writeJSON marshals v as the response with the given status.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, "encode response: "+err.Error())
		return
	}
	s.writeJSONBytes(w, status, b)
}

// writeJSONBytes serves pre-rendered JSON bytes verbatim (newline
// terminated for curl friendliness).
func (s *Server) writeJSONBytes(w http.ResponseWriter, status int, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(b)
	if len(b) == 0 || b[len(b)-1] != '\n' {
		io.WriteString(w, "\n")
	}
}

// writeErr serves a JSON error object. (5xx responses are counted by
// the access-log middleware, which sees every handler's status.)
func (s *Server) writeErr(w http.ResponseWriter, status int, msg string) {
	b, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	s.writeJSONBytes(w, status, b)
}
