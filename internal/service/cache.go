package service

import "container/list"

// lruCache maps canonical config hashes to completed runs with
// least-recently-used eviction. Not self-locking: the Server guards it
// with its own mutex, which also covers the run-state reads done while
// serving a hit.
type lruCache struct {
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	hash string
	r    *run
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached run for hash and marks it recently used.
func (c *lruCache) get(hash string) *run {
	el, ok := c.items[hash]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).r
}

// add inserts (or refreshes) a completed run, returning how many
// entries were evicted to stay within capacity.
func (c *lruCache) add(hash string, r *run) (evicted int) {
	if el, ok := c.items[hash]; ok {
		el.Value.(*cacheEntry).r = r
		c.ll.MoveToFront(el)
		return 0
	}
	c.items[hash] = c.ll.PushFront(&cacheEntry{hash: hash, r: r})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).hash)
		evicted++
	}
	return evicted
}

// remove drops hash from the cache if present (registry retention
// evicting the backing run).
func (c *lruCache) remove(hash string) {
	if el, ok := c.items[hash]; ok {
		c.ll.Remove(el)
		delete(c.items, hash)
	}
}

func (c *lruCache) len() int { return c.ll.Len() }
