// Package service turns the experiment stack into a long-running
// scheduling-simulation daemon: a stdlib-only JSON-over-HTTP API that
// accepts simulation and paper-figure sweep requests, executes them on
// a bounded asynchronous queue with panic containment, retries,
// deadlines and cancellation, and serves completed results from an LRU
// cache keyed by the canonical config hash.
//
// Because experiments.Run is deterministic (same canonical RunConfig
// and seed produce identical results), the cache is exact: a repeated
// identical POST /v1/runs returns the byte-identical stored body
// without re-simulating.
//
// Surface:
//
//	POST /v1/runs            submit a RunConfig; ?wait=1 blocks until done
//	GET  /v1/runs            list runs (?state= filters)
//	GET  /v1/runs/{id}       one run record (full body once terminal)
//	DELETE /v1/runs/{id}     cancel a queued or running run
//	GET  /v1/runs/{id}/events  live NDJSON stream of the sim event log
//	GET  /v1/runs/{id}/trace   live NDJSON stream of the causal trace
//	POST /v1/figures/{fig}   submit a paper-figure sweep (fig3..fig10, ...)
//	GET  /debug/flight       dump of in-flight kernel flight recorders
//	GET  /healthz, /readyz, /metrics, /debug/pprof (opt-in)
//
// Operational behaviour: a saturated queue answers 429 with
// Retry-After, an over-limit request load answers 429 immediately,
// draining (SIGTERM) finishes in-flight runs and answers 503 to new
// submissions, and completed runs are journalled so a restarted server
// comes back with a warm cache.
package service

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bgsched/internal/chaos"
	"bgsched/internal/telemetry"
	"bgsched/internal/trace"
)

// FaultInjector is the seam contract the server consults for injected
// faults: one decision per HTTP request, per run-execution attempt, per
// result-cache hit and per state-journal append. Implemented by
// *chaos.Injector; a nil field disables injection entirely.
type FaultInjector interface {
	// Request decides the fault treatment of one HTTP request
	// (operational probes are never consulted).
	Request() chaos.RequestFault
	// Exec decides whether one run-execution attempt fails.
	Exec() error
	// CacheDrop decides whether a result-cache hit is dropped, forcing
	// a deterministic re-execution.
	CacheDrop() bool
	// Journal decides whether one state-journal append fails.
	Journal() error
}

// Config tunes one Server. The zero value is usable: every field has a
// default chosen for tests and small deployments.
type Config struct {
	// Workers is the number of concurrent run executors (default 2).
	Workers int
	// QueueDepth bounds the async run queue; a full queue rejects
	// submissions with 429 + Retry-After (default 16).
	QueueDepth int
	// CacheSize bounds the completed-run LRU cache (default 128).
	CacheSize int
	// RunTimeout is the per-run execution deadline, spanning retries
	// (default 10m).
	RunTimeout time.Duration
	// Retries is how many extra attempts a failed or panicking run gets
	// before it is recorded as failed (0 means the default of 1; a
	// negative value disables retries).
	Retries int
	// MaxJobs caps RunConfig.JobCount / Options.JobCount per request,
	// bounding the work one submission can demand (default 20000).
	MaxJobs int
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// MaxInFlight bounds concurrently served API requests; excess
	// requests get an immediate 429. Health, readiness and metrics
	// endpoints are exempt (default 64).
	MaxInFlight int
	// MaxRuns bounds the in-memory run registry; the oldest terminal
	// runs are evicted first (default 512).
	MaxRuns int
	// MaxEventBytes bounds the retained event log per run; beyond it
	// events are dropped and counted (default 8 MiB).
	MaxEventBytes int
	// StatePath, when non-empty, appends every completed run to a JSONL
	// state journal and reloads it on startup, so results and the cache
	// survive a restart.
	StatePath string
	// EnablePprof mounts /debug/pprof.
	EnablePprof bool
	// AccessLog, when non-nil, receives one structured (JSON) log line
	// per request.
	AccessLog io.Writer
	// Telemetry is the service metrics registry; nil creates one.
	Telemetry *telemetry.Registry
	// Trace, when non-nil, receives one span per served HTTP request
	// (category "http", named method+path, carrying the request ID).
	// Request spans are wall-clock records, so the tracer must be built
	// with trace.Options{WallSpans: true} to see them.
	Trace *trace.Tracer
	// FlightEvents sizes the per-run kernel flight recorder ring wired
	// into every simulation run (default 256); negative disables the
	// recorder. Recorders of in-flight runs are registered globally and
	// show up on GET /debug/flight and SIGQUIT dumps.
	FlightEvents int
	// Chaos, when non-nil, is consulted at the middleware, dispatch,
	// cache and journal seams for deterministic fault injection
	// (internal/chaos). Operational probes (/healthz, /readyz,
	// /metrics, /debug/*) are exempt so health stays an honest signal
	// during a soak. Nil disables injection.
	Chaos FaultInjector
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.RunTimeout <= 0 {
		c.RunTimeout = 10 * time.Minute
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 1
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 20000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 512
	}
	if c.MaxEventBytes <= 0 {
		c.MaxEventBytes = 8 << 20
	}
	if c.FlightEvents == 0 {
		c.FlightEvents = 256
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.New()
	}
	return c
}

// serviceMetrics holds the resolved service instruments (handles, per
// the telemetry package's design).
type serviceMetrics struct {
	httpRequests    *telemetry.Counter
	httpErrors      *telemetry.Counter
	httpPanics      *telemetry.Counter
	limiterRejected *telemetry.Counter
	chaosInjected   *telemetry.Counter

	cacheHits      *telemetry.Counter
	cacheMisses    *telemetry.Counter
	cacheEvictions *telemetry.Counter

	queueDepth    *telemetry.Gauge
	queueRejected *telemetry.Counter
	queueWait     *telemetry.Histogram

	runsSubmitted *telemetry.Counter
	runsCompleted *telemetry.Counter
	runsFailed    *telemetry.Counter
	runsCanceled  *telemetry.Counter
	runsCoalesced *telemetry.Counter
	runRetries    *telemetry.Counter
	runPanics     *telemetry.Counter
	runDuration   *telemetry.Histogram

	branchSnapshotHits   *telemetry.Counter
	branchSnapshotMisses *telemetry.Counter

	journalErrors      *telemetry.Counter
	journalRestoreSkip *telemetry.Counter

	streamsActive *telemetry.Gauge
}

func newServiceMetrics(reg *telemetry.Registry) serviceMetrics {
	return serviceMetrics{
		httpRequests:       reg.Counter("service.http.requests"),
		httpErrors:         reg.Counter("service.http.errors"),
		httpPanics:         reg.Counter("service.http.panics"),
		limiterRejected:    reg.Counter("service.http.limiter_rejected"),
		chaosInjected:      reg.Counter("service.chaos.requests_faulted"),
		cacheHits:          reg.Counter("service.cache.hits"),
		cacheMisses:        reg.Counter("service.cache.misses"),
		cacheEvictions:     reg.Counter("service.cache.evictions"),
		queueDepth:         reg.Gauge("service.queue.depth"),
		queueRejected:      reg.Counter("service.queue.rejected"),
		queueWait:          reg.Histogram("service.queue.wait_seconds"),
		runsSubmitted:      reg.Counter("service.runs.submitted"),
		runsCompleted:      reg.Counter("service.runs.completed"),
		runsFailed:         reg.Counter("service.runs.failed"),
		runsCanceled:       reg.Counter("service.runs.canceled"),
		runsCoalesced:      reg.Counter("service.runs.coalesced"),
		runRetries:         reg.Counter("service.runs.retries"),
		runPanics:          reg.Counter("service.runs.panics"),
		runDuration:        reg.Histogram("service.run.duration_seconds"),
		branchSnapshotHits:   reg.Counter("service.branch.snapshot_hits"),
		branchSnapshotMisses: reg.Counter("service.branch.snapshot_misses"),
		journalErrors:        reg.Counter("service.journal_errors"),
		journalRestoreSkip: reg.Counter("service.journal_restore_skipped"),
		streamsActive:      reg.Gauge("service.streams.active"),
	}
}

// Server is the scheduling-simulation service. Create with New, mount
// via Handler, stop with Close.
type Server struct {
	cfg Config
	reg *telemetry.Registry
	m   serviceMetrics

	handler  http.Handler
	accessLg *slog.Logger
	inflight chan struct{}
	reqSeq   atomic.Int64

	baseCtx    context.Context
	baseCancel context.CancelFunc

	queue     chan *run
	workersWG sync.WaitGroup
	closeOnce sync.Once

	// execHook, when non-nil, replaces executeTask — a deterministic
	// seam for tests that need runs to block or fail on command. Set
	// before the first submission.
	execHook func(ctx context.Context, r *run) (any, error)

	journal *stateJournal
	// journalFails counts consecutive journal-append failures; at
	// journalDegradedAfter the /readyz probe reports degraded, because a
	// persistently failing journal means completed work will not survive
	// the next restart. Any successful append resets it.
	journalFails atomic.Int64

	// snapshots caches parent-prefix snapshots for branch replays, so
	// sibling branches off one point share the prefix execution.
	snapshots *snapshotCache

	mu       sync.Mutex
	draining bool
	runs     map[string]*run
	order    []*run          // submission order, for listing + retention
	byHash   map[string]*run // queued/running runs, for request coalescing
	cache    *lruCache
	idSeq    int64
}

// New builds a Server, reloading the state journal when configured,
// and starts its worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Telemetry,
		m:        newServiceMetrics(cfg.Telemetry),
		inflight: make(chan struct{}, cfg.MaxInFlight),
		queue:    make(chan *run, cfg.QueueDepth),
		runs:     make(map[string]*run),
		byHash:   make(map[string]*run),
		cache:    newLRUCache(cfg.CacheSize),

		snapshots: newSnapshotCache(snapshotCacheSize),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	if cfg.AccessLog != nil {
		s.accessLg = slog.New(slog.NewJSONHandler(cfg.AccessLog, nil))
	}
	if cfg.StatePath != "" {
		jnl, restored, report, err := openStateJournal(cfg.StatePath)
		if err != nil {
			return nil, err
		}
		s.journal = jnl
		if cfg.Chaos != nil {
			s.journal.fault = cfg.Chaos.Journal
		}
		if skipped := report.malformed + report.badCRC; skipped > 0 {
			s.m.journalRestoreSkip.Add(int64(skipped))
			s.logError("state journal restore skipped records",
				"malformed", report.malformed, "bad_crc", report.badCRC, "restored", len(restored))
		}
		s.restore(restored)
	}
	s.handler = s.buildHandler()
	for w := 0; w < cfg.Workers; w++ {
		s.workersWG.Add(1)
		go func() {
			defer s.workersWG.Done()
			for r := range s.queue {
				s.runOne(r)
			}
		}()
	}
	return s, nil
}

// Handler returns the service's HTTP handler (mountable under
// httptest.Server or http.Server alike).
func (s *Server) Handler() http.Handler { return s.handler }

// Registry returns the service metrics registry.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// BeginDrain flips the server into draining mode: /readyz turns 503
// and new submissions are refused, while queued and in-flight runs
// keep executing. Idempotent.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Close drains the service: no new submissions are accepted, queued
// and in-flight runs finish, then the workers exit and the state
// journal is closed. If ctx expires first, every remaining run is
// cancelled and Close waits for the workers to observe it. The HTTP
// listener is owned by the caller (shut it down first or concurrently).
func (s *Server) Close(ctx context.Context) error {
	s.BeginDrain()
	s.closeOnce.Do(func() {
		// Submissions check draining and enqueue under s.mu, so after
		// BeginDrain no further send can race this close.
		s.mu.Lock()
		close(s.queue)
		s.mu.Unlock()
	})
	done := make(chan struct{})
	go func() {
		s.workersWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.baseCancel() // hard-cancel every remaining run
		<-done
		err = ctx.Err()
	}
	s.baseCancel()
	if s.journal != nil {
		if cerr := s.journal.close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// nextRunID mints a registry-unique run id. Caller holds s.mu.
func (s *Server) nextRunIDLocked() string {
	s.idSeq++
	return fmt.Sprintf("r-%06d", s.idSeq)
}
