package service

import (
	"context"
	"sync"
)

// eventBuffer accumulates one run's JSONL event lines in memory and
// lets any number of stream subscribers replay and follow them. The
// simulator appends from the executing worker; HTTP streams read
// concurrently. Retention is byte-bounded: past maxBytes further lines
// are dropped (and counted) rather than growing without limit.
type eventBuffer struct {
	mu       sync.Mutex
	lines    [][]byte
	bytes    int
	maxBytes int
	dropped  int
	closed   bool
	wake     chan struct{}
}

func newEventBuffer(maxBytes int) *eventBuffer {
	return &eventBuffer{maxBytes: maxBytes, wake: make(chan struct{})}
}

// append stores a copy of one event line. No-op after close.
func (b *eventBuffer) append(line []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	if b.maxBytes > 0 && b.bytes+len(line) > b.maxBytes {
		b.dropped++
		return
	}
	cp := make([]byte, len(line))
	copy(cp, line)
	b.lines = append(b.lines, cp)
	b.bytes += len(cp)
	b.broadcastLocked()
}

// reset discards buffered lines (a retried run restarts its event
// stream from scratch); subscribers whose cursor is past the new end
// restart from the beginning.
func (b *eventBuffer) reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.lines, b.bytes, b.dropped = nil, 0, 0
	b.broadcastLocked()
}

// close marks the stream complete and wakes all subscribers.
// Idempotent.
func (b *eventBuffer) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	b.broadcastLocked()
}

func (b *eventBuffer) broadcastLocked() {
	close(b.wake)
	b.wake = make(chan struct{})
}

// counts returns (stored, dropped) line counts.
func (b *eventBuffer) counts() (int, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.lines), b.dropped
}

// wait blocks until lines beyond cursor `from` exist, the buffer is
// closed, or ctx is done. It returns the new lines (shared, immutable
// once appended), the advanced cursor, and whether the buffer has been
// closed. A cursor past the end (the buffer was reset) restarts at 0.
func (b *eventBuffer) wait(ctx context.Context, from int) (lines [][]byte, next int, closed bool, err error) {
	b.mu.Lock()
	for {
		if from > len(b.lines) {
			from = 0
		}
		if len(b.lines) > from || b.closed {
			lines = b.lines[from:]
			next = from + len(lines)
			closed = b.closed
			b.mu.Unlock()
			return lines, next, closed, nil
		}
		ch := b.wake
		b.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, from, false, ctx.Err()
		}
		b.mu.Lock()
	}
}

// replay pre-fills a buffer (journal restore) and closes it.
func (b *eventBuffer) replay(lines []string) {
	b.mu.Lock()
	for _, ln := range lines {
		b.lines = append(b.lines, []byte(ln))
		b.bytes += len(ln)
	}
	b.closed = true
	b.broadcastLocked()
	b.mu.Unlock()
}
