package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"bgsched/internal/chaos"
)

// stubChaos is a hand-steered FaultInjector for tests that need one
// seam to fail on command.
type stubChaos struct {
	journalFail atomic.Bool
	execFails   atomic.Int64 // remaining Exec calls to fail
}

func (c *stubChaos) Request() chaos.RequestFault { return chaos.RequestFault{} }
func (c *stubChaos) CacheDrop() bool             { return false }
func (c *stubChaos) Exec() error {
	if c.execFails.Add(-1) >= 0 {
		return chaos.ErrExec
	}
	return nil
}
func (c *stubChaos) Journal() error {
	if c.journalFail.Load() {
		return chaos.ErrJournalWrite
	}
	return nil
}

func TestRetryAfterAdaptsToQueueAndRunDuration(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	}()

	// No completed runs, empty queue: floor of one second.
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("idle retryAfterSeconds = %d, want 1", got)
	}
	// Mean run duration 4s, 3 queued, 2 workers: ceil(4*4/2) = 8.
	s.m.runDuration.Observe(4.0)
	s.m.queueDepth.Add(3)
	if got := s.retryAfterSeconds(); got != 8 {
		t.Fatalf("retryAfterSeconds = %d, want 8", got)
	}
	// Pathological durations clamp at 60.
	s.m.runDuration.Observe(10000)
	if got := s.retryAfterSeconds(); got != 60 {
		t.Fatalf("clamped retryAfterSeconds = %d, want 60", got)
	}
}

// TestQueueFull429CarriesAdaptiveRetryAfter pins the end-to-end header:
// with one blocked worker and two queued runs (no completed durations,
// so the 1s default mean), the advice is ceil((2+1)*1/1) = 3 seconds.
func TestQueueFull429CarriesAdaptiveRetryAfter(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	s.execHook = func(ctx context.Context, r *run) (any, error) {
		started <- struct{}{}
		select {
		case <-release:
			return SimResult{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		close(release)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Close(ctx)
	}()

	submit := func(seed int) *http.Response {
		body := fmt.Sprintf(`{"Workload":"NASA","JobCount":60,"Seed":%d}`, seed)
		resp, _ := postJSON(t, ts.URL+"/v1/runs", body)
		return resp
	}
	if resp := submit(1); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1 = %d", resp.StatusCode)
	}
	<-started // worker busy; queue drains no further
	for seed := 2; seed <= 3; seed++ {
		if resp := submit(seed); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d", seed, resp.StatusCode)
		}
	}
	resp := submit(4)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit 4 = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want 3 (depth 2, mean 1s, 1 worker)", ra)
	}
	if got := strconv.Itoa(s.retryAfterSeconds()); got != "3" {
		t.Fatalf("retryAfterSeconds = %s", got)
	}
}

func TestChaosInjectedErrorResponses(t *testing.T) {
	inj := chaos.New(chaos.Config{Seed: 1, ErrorP: 1})
	_, ts := newTestServer(t, Config{Chaos: inj})

	resp, _ := postJSON(t, ts.URL+"/v1/runs?wait=1", tinyRunBody)
	if resp.StatusCode < 500 {
		t.Fatalf("chaos error status = %d, want 5xx", resp.StatusCode)
	}
	if resp.Header.Get("X-Chaos") != "error" {
		t.Fatalf("injected error missing X-Chaos header")
	}
	// Operational probes are exempt: health stays honest mid-chaos.
	if resp, _ := getBody(t, ts.URL+"/healthz"); resp.StatusCode != 200 {
		t.Fatalf("healthz under chaos = %d", resp.StatusCode)
	}
	if resp, _ := getBody(t, ts.URL+"/metrics"); resp.StatusCode != 200 {
		t.Fatalf("metrics under chaos = %d", resp.StatusCode)
	}
	if n, _ := metricValue(t, ts.URL, "service_chaos_requests_faulted"); n < 1 {
		t.Fatalf("service_chaos_requests_faulted = %v, want >= 1", n)
	}
}

func TestChaosInjectedPanicIsContained(t *testing.T) {
	inj := chaos.New(chaos.Config{Seed: 2, PanicP: 1})
	_, ts := newTestServer(t, Config{Chaos: inj})

	resp, _ := postJSON(t, ts.URL+"/v1/runs", tinyRunBody)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected panic = %d, want 500", resp.StatusCode)
	}
	if resp.Header.Get("X-Chaos") != "panic" {
		t.Fatal("injected panic missing X-Chaos header")
	}
	if n, _ := metricValue(t, ts.URL, "service_http_panics"); n < 1 {
		t.Fatalf("service_http_panics = %v, want >= 1", n)
	}
	// The server survives: with the injector exhausted of panics it
	// would still panic every request, so assert on a probe instead.
	if resp, _ := getBody(t, ts.URL+"/readyz"); resp.StatusCode != 200 {
		t.Fatalf("readyz after contained panics = %d", resp.StatusCode)
	}
}

// resultSummary extracts the simulated-time summary from a RunView
// result. That is the deterministic portion of a result: the embedded
// telemetry snapshot carries wall-clock timing histograms and
// build-cache hit/miss counters, which legitimately differ between
// executions of the same config. Corruption checks (here and in
// bgload) therefore compare summaries, not whole result payloads.
func resultSummary(t *testing.T, result []byte) string {
	t.Helper()
	var r struct {
		Summary json.RawMessage `json:"summary"`
	}
	if err := json.Unmarshal(result, &r); err != nil || len(r.Summary) == 0 {
		t.Fatalf("result has no summary (err=%v):\n%s", err, result)
	}
	return string(r.Summary)
}

// TestChaosCacheDropForcesIdenticalReplay: a forced cache miss
// re-executes the run, and simulation determinism makes the replayed
// summary identical — the property the soak's corruption check rests
// on.
func TestChaosCacheDropForcesIdenticalReplay(t *testing.T) {
	inj := chaos.New(chaos.Config{Seed: 3, CacheDropP: 1})
	_, ts := newTestServer(t, Config{Chaos: inj})

	resp, first := postJSON(t, ts.URL+"/v1/runs?wait=1", tinyRunBody)
	if resp.StatusCode != 200 {
		t.Fatalf("first submit = %d %s", resp.StatusCode, first)
	}
	v1 := decodeView(t, first)
	if v1.State != StateDone {
		t.Fatalf("first run state = %s (%s)", v1.State, v1.Error)
	}

	resp, second := postJSON(t, ts.URL+"/v1/runs?wait=1", tinyRunBody)
	if resp.StatusCode != 200 {
		t.Fatalf("second submit = %d %s", resp.StatusCode, second)
	}
	if resp.Header.Get("X-Chaos") != "cache-drop" {
		t.Fatalf("second submit not marked cache-drop (X-Cache=%q)", resp.Header.Get("X-Cache"))
	}
	v2 := decodeView(t, second)
	if v2.State != StateDone {
		t.Fatalf("replayed run state = %s (%s)", v2.State, v2.Error)
	}
	if v2.ID == v1.ID {
		t.Fatal("cache drop did not create a fresh run")
	}
	if s1, s2 := resultSummary(t, v1.Result), resultSummary(t, v2.Result); s1 != s2 {
		t.Fatalf("forced re-execution diverged:\n%s\n---\n%s", s1, s2)
	}
}

// TestChaosExecFaultRetriesThenRecovers: an injected execution fault
// fails one attempt; the server's retry machinery reruns it and the
// run still completes.
func TestChaosExecFaultRetriesThenRecovers(t *testing.T) {
	st := &stubChaos{}
	st.execFails.Store(1) // fail exactly the first attempt
	_, ts := newTestServer(t, Config{Retries: 2, Chaos: st})

	resp, body := postJSON(t, ts.URL+"/v1/runs?wait=1", tinyRunBody)
	if resp.StatusCode != 200 {
		t.Fatalf("submit = %d %s", resp.StatusCode, body)
	}
	v := decodeView(t, body)
	if v.State != StateDone {
		t.Fatalf("state = %s (%s), want done despite injected exec faults", v.State, v.Error)
	}
	if v.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (injected fault consumed one)", v.Attempts)
	}
}

// TestJournalFailureStreakDegradesReadiness covers the journal_errors
// counter and the /readyz flip: three consecutive append failures mark
// the service degraded; one success clears it.
func TestJournalFailureStreakDegradesReadiness(t *testing.T) {
	st := &stubChaos{}
	st.journalFail.Store(true)
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{StatePath: filepath.Join(dir, "state.jsonl"), Chaos: st})

	submit := func(seed int) RunView {
		body := fmt.Sprintf(`{"Workload":"NASA","JobCount":60,"Seed":%d}`, seed)
		resp, b := postJSON(t, ts.URL+"/v1/runs?wait=1", body)
		if resp.StatusCode != 200 {
			t.Fatalf("submit seed %d = %d %s", seed, resp.StatusCode, b)
		}
		v := decodeView(t, b)
		if v.State != StateDone {
			t.Fatalf("seed %d state = %s (%s)", seed, v.State, v.Error)
		}
		return v
	}

	for seed := 1; seed <= journalDegradedAfter; seed++ {
		submit(seed)
	}
	if n, _ := metricValue(t, ts.URL, "service_journal_errors"); n != journalDegradedAfter {
		t.Fatalf("service_journal_errors = %v, want %d", n, journalDegradedAfter)
	}
	resp, b := getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(b, []byte("degraded")) {
		t.Fatalf("readyz with failing journal = %d %q, want 503 degraded", resp.StatusCode, b)
	}

	// The journal heals; the next persisted run resets the streak.
	st.journalFail.Store(false)
	submit(99)
	resp, _ = getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != 200 {
		t.Fatalf("readyz after journal recovery = %d, want 200", resp.StatusCode)
	}
}

// TestJournalRestoreSkipsCorruptTail covers the CRC hardening end to
// end: a record corrupted on disk (still valid JSON) and a torn tail
// are both skipped at restore — startup succeeds, intact records keep
// their warm-cache hits, and the corrupted one re-executes.
func TestJournalRestoreSkipsCorruptTail(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "state.jsonl")
	cfgA := `{"Workload":"NASA","JobCount":60,"Seed":11}`
	cfgB := `{"Workload":"NASA","JobCount":60,"Seed":22}`

	s1, err := New(Config{StatePath: state})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	var bodyA, bodyB []byte
	for _, c := range []struct {
		cfg string
		dst *[]byte
	}{{cfgA, &bodyA}, {cfgB, &bodyB}} {
		resp, b := postJSON(t, ts1.URL+"/v1/runs?wait=1", c.cfg)
		if resp.StatusCode != 200 {
			t.Fatalf("submit = %d %s", resp.StatusCode, b)
		}
		*c.dst = b
	}
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Corrupt run A's record in a way that still parses as JSON (the
	// id mutates), and tear the file's tail mid-append.
	data, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := bytes.Replace(data, []byte(`r-000001`), []byte(`r-000091`), 1)
	if bytes.Equal(corrupted, data) {
		t.Fatalf("journal does not contain r-000001:\n%s", data)
	}
	corrupted = append(corrupted, []byte(`{"type":"run","body":{"id":"r-00`)...)
	if err := os.WriteFile(state, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{StatePath: state})
	if err != nil {
		t.Fatalf("restore over corrupt journal failed startup: %v", err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Close(ctx)
	}()

	if n, _ := metricValue(t, ts2.URL, "service_journal_restore_skipped"); n != 2 {
		t.Fatalf("service_journal_restore_skipped = %v, want 2 (1 bad CRC + 1 torn)", n)
	}
	// Run B survived byte-identically...
	resp, got := postJSON(t, ts2.URL+"/v1/runs", cfgB)
	if resp.StatusCode != 200 || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("run B after restore: status %d X-Cache=%q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(got, bodyB) {
		t.Fatal("run B cache hit not byte-identical after corrupt-tail restore")
	}
	// ...while run A's poisoned record was refused, so it re-executes
	// rather than serving corrupt bytes.
	resp, got = postJSON(t, ts2.URL+"/v1/runs?wait=1", cfgA)
	if resp.StatusCode != 200 || resp.Header.Get("X-Cache") == "hit" {
		t.Fatalf("run A after restore: status %d X-Cache=%q, want re-execution", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	va, va2 := decodeView(t, bodyA), decodeView(t, got)
	if resultSummary(t, va.Result) != resultSummary(t, va2.Result) {
		t.Fatal("re-executed run A summary diverged from the original")
	}
}

// TestParseStateJournalBitFlip pins the checksum unit behaviour:
// a single flipped byte that keeps the line valid JSON is caught by
// the per-record CRC; truncation is caught as a malformed line.
func TestParseStateJournalBitFlip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	j, _, _, err := openStateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := persistedRun{Body: []byte(`{"id":"r-000001","state":"done","value":12345}`), Events: []string{"e1", "e2"}}
	if err := j.append(rec); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	if got, report := parseStateJournal(data); len(got) != 1 || report != (restoreReport{}) {
		t.Fatalf("clean parse: %d records, report %+v", len(got), report)
	}
	flipped := bytes.Replace(data, []byte("12345"), []byte("12845"), 1)
	if got, report := parseStateJournal(flipped); len(got) != 0 || report.badCRC != 1 {
		t.Fatalf("bit-flipped parse: %d records, report %+v, want badCRC=1", len(got), report)
	}
	truncated := data[:len(data)/2]
	if got, report := parseStateJournal(truncated); len(got) != 0 || report.malformed != 1 {
		t.Fatalf("truncated parse: %d records, report %+v, want malformed=1", len(got), report)
	}
	// Pre-checksum records (no crc field) are still accepted.
	legacy := []byte(`{"type":"run","body":{"id":"r-000009","state":"done"}}` + "\n")
	if got, report := parseStateJournal(legacy); len(got) != 1 || report != (restoreReport{}) {
		t.Fatalf("legacy parse: %d records, report %+v", len(got), report)
	}
}
