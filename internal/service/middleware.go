package service

import (
	"fmt"
	"math"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"bgsched/internal/trace"
)

// opsEndpoint reports whether a path is an operational probe that must
// stay responsive even under load shedding.
func opsEndpoint(path string) bool {
	return path == "/healthz" || path == "/readyz" || path == "/metrics" ||
		path == "/debug/flight" || strings.HasPrefix(path, "/debug/pprof")
}

// retryAfterSeconds derives the Retry-After advice for 429 responses
// from live state: with depth runs queued ahead and the observed mean
// run duration spread over the worker pool, a client retrying sooner
// than (depth+1)·mean/workers will almost certainly meet the same full
// queue. Clamped to [1, 60] seconds; before any run has completed the
// mean defaults to one second.
func (s *Server) retryAfterSeconds() int {
	depth := s.m.queueDepth.Value()
	if depth < 0 {
		depth = 0
	}
	mean := 1.0
	if n := s.m.runDuration.Count(); n > 0 {
		mean = s.m.runDuration.Sum() / float64(n)
		if mean < 0.05 {
			mean = 0.05
		}
	}
	secs := int(math.Ceil((depth + 1) * mean / float64(s.cfg.Workers)))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// writeTooMany answers 429 with adaptive Retry-After advice.
func (s *Server) writeTooMany(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	s.writeErr(w, http.StatusTooManyRequests, msg)
}

// limited sheds load beyond Config.MaxInFlight concurrently served API
// requests with an immediate 429; probes bypass the limiter so health
// checks and scrapes keep working while the API is saturated.
func (s *Server) limited(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if opsEndpoint(req.URL.Path) {
			next.ServeHTTP(w, req)
			return
		}
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			s.m.limiterRejected.Inc()
			s.writeTooMany(w, "too many concurrent requests")
			return
		}
		next.ServeHTTP(w, req)
	})
}

// chaosPanicValue marks injected handler panics so the recovery
// middleware can tag them without logging a stack (the stack is the
// injection site, not a bug).
const chaosPanicValue = "chaos: injected handler panic"

// chaotic applies the configured fault injector's per-request decision:
// injected latency, a synthetic 5xx, a handler panic, and slow or
// truncated response bodies. Operational probes are exempt. Injected
// error responses and panics carry an X-Chaos header so clients and
// soak reports can separate synthetic faults from organic ones.
func (s *Server) chaotic(next http.Handler) http.Handler {
	if s.cfg.Chaos == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if opsEndpoint(req.URL.Path) {
			next.ServeHTTP(w, req)
			return
		}
		f := s.cfg.Chaos.Request()
		if f.Injected() {
			s.m.chaosInjected.Inc()
		}
		if f.Delay > 0 {
			select {
			case <-time.After(f.Delay):
			case <-req.Context().Done():
				return
			}
		}
		if f.ErrorStatus != 0 {
			w.Header().Set("X-Chaos", "error")
			s.writeErr(w, f.ErrorStatus, "chaos: injected error")
			return
		}
		if f.SlowWrite > 0 || f.TruncateAfter > 0 {
			w = &faultWriter{ResponseWriter: w, slow: f.SlowWrite,
				truncate: f.TruncateAfter > 0, remaining: f.TruncateAfter}
		}
		if f.Panic {
			panic(chaosPanicValue)
		}
		next.ServeHTTP(w, req)
	})
}

// faultWriter degrades a response body on command: a per-write delay
// (slow-loris shape) and/or truncation after N bytes. Truncated writes
// report full success to the handler — the corruption is strictly on
// the wire, which is where the client must detect it.
type faultWriter struct {
	http.ResponseWriter
	slow      time.Duration
	truncate  bool
	remaining int
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	if fw.slow > 0 {
		time.Sleep(fw.slow)
	}
	if !fw.truncate {
		return fw.ResponseWriter.Write(p)
	}
	if fw.remaining <= 0 {
		return len(p), nil
	}
	n := len(p)
	if n > fw.remaining {
		n = fw.remaining
	}
	if _, err := fw.ResponseWriter.Write(p[:n]); err != nil {
		return 0, err
	}
	fw.remaining -= n
	return len(p), nil
}

// Flush forwards to the underlying writer when it supports streaming.
func (fw *faultWriter) Flush() {
	if f, ok := fw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// recovered contains handler panics — injected or organic — so one bad
// request can never take the serving goroutine down with a connection
// reset when a 500 will do. Panics after the response started are
// reported on the closed connection instead (nothing useful can be
// written); http.ErrAbortHandler keeps its net/http meaning.
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			s.m.httpPanics.Inc()
			if vs, ok := v.(string); ok && vs == chaosPanicValue {
				w.Header().Set("X-Chaos", "panic")
			} else {
				s.logError("handler panic", "path", req.URL.Path,
					"panic", fmt.Sprint(v), "stack", string(debug.Stack()))
			}
			if sw, ok := w.(*statusWriter); ok && sw.status != 0 {
				return // response already started; the connection is lost
			}
			s.writeErr(w, http.StatusInternalServerError, "internal error")
		}()
		next.ServeHTTP(w, req)
	})
}

// statusWriter records the status and byte count of a response and
// forwards Flush for streaming handlers.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports streaming.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// accessLogged assigns each request an ID (honouring a caller-supplied
// X-Request-ID), counts it, and emits one structured log line with the
// outcome.
func (s *Server) accessLogged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s.m.httpRequests.Inc()
		id := req.Header.Get("X-Request-ID")
		if id == "" {
			id = fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		// The request span reuses the request ID as its trace identity,
		// so one grep links the access log line, the span, and any run
		// trace the request produced. Nil tracer: Begin/End are no-ops.
		sp := s.cfg.Trace.Begin("http", req.Method+" "+req.URL.Path, trace.F("req", id))
		next.ServeHTTP(sw, req)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		sp.End(trace.Fint("status", int64(sw.status)), trace.Fint("bytes", sw.bytes))
		if sw.status >= 500 {
			s.m.httpErrors.Inc()
		}
		if s.accessLg != nil {
			s.accessLg.Info("request",
				"id", id,
				"method", req.Method,
				"path", req.URL.Path,
				"status", sw.status,
				"bytes", sw.bytes,
				"duration_ms", float64(time.Since(start).Microseconds())/1000,
				"remote", req.RemoteAddr,
			)
		}
	})
}
