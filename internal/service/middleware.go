package service

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"bgsched/internal/trace"
)

// opsEndpoint reports whether a path is an operational probe that must
// stay responsive even under load shedding.
func opsEndpoint(path string) bool {
	return path == "/healthz" || path == "/readyz" || path == "/metrics" ||
		path == "/debug/flight" || strings.HasPrefix(path, "/debug/pprof")
}

// limited sheds load beyond Config.MaxInFlight concurrently served API
// requests with an immediate 429; probes bypass the limiter so health
// checks and scrapes keep working while the API is saturated.
func (s *Server) limited(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if opsEndpoint(req.URL.Path) {
			next.ServeHTTP(w, req)
			return
		}
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			s.m.limiterRejected.Inc()
			w.Header().Set("Retry-After", "1")
			s.writeErr(w, http.StatusTooManyRequests, "too many concurrent requests")
			return
		}
		next.ServeHTTP(w, req)
	})
}

// statusWriter records the status and byte count of a response and
// forwards Flush for streaming handlers.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports streaming.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// accessLogged assigns each request an ID (honouring a caller-supplied
// X-Request-ID), counts it, and emits one structured log line with the
// outcome.
func (s *Server) accessLogged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s.m.httpRequests.Inc()
		id := req.Header.Get("X-Request-ID")
		if id == "" {
			id = fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		// The request span reuses the request ID as its trace identity,
		// so one grep links the access log line, the span, and any run
		// trace the request produced. Nil tracer: Begin/End are no-ops.
		sp := s.cfg.Trace.Begin("http", req.Method+" "+req.URL.Path, trace.F("req", id))
		next.ServeHTTP(sw, req)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		sp.End(trace.Fint("status", int64(sw.status)), trace.Fint("bytes", sw.bytes))
		if sw.status >= 500 {
			s.m.httpErrors.Inc()
		}
		if s.accessLg != nil {
			s.accessLg.Info("request",
				"id", id,
				"method", req.Method,
				"path", req.URL.Path,
				"status", sw.status,
				"bytes", sw.bytes,
				"duration_ms", float64(time.Since(start).Microseconds())/1000,
				"remote", req.RemoteAddr,
			)
		}
	})
}
