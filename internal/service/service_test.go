package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bgsched/internal/trace"
)

// newTestServer builds a Server + httptest front end with fast-test
// defaults; cleanup drains it.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.RunTimeout == 0 {
		cfg.RunTimeout = time.Minute
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s, ts
}

// tinyRunBody is a sub-second simulation request.
const tinyRunBody = `{"Workload":"NASA","JobCount":60,"FailureNominal":500,"Scheduler":"balancing","Param":0.1}`

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func decodeView(t *testing.T, b []byte) RunView {
	t.Helper()
	var v RunView
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("decode run view: %v\n%s", err, b)
	}
	return v
}

// metricValue scrapes /metrics and returns the value line for a
// Prometheus sample name, e.g. "service_cache_hits".
func metricValue(t *testing.T, baseURL, name string) (float64, bool) {
	t.Helper()
	_, b := getBody(t, baseURL+"/metrics")
	for _, line := range strings.Split(string(b), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			var v float64
			if _, err := fmt.Sscanf(fields[1], "%g", &v); err != nil {
				t.Fatalf("parse metric %s: %v", line, err)
			}
			return v, true
		}
	}
	return 0, false
}

func TestHealthAndReady(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, b := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != 200 || string(b) != "ok\n" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, b)
	}
	resp, _ = getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != 200 {
		t.Fatalf("readyz = %d", resp.StatusCode)
	}
	s.BeginDrain()
	resp, _ = getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", resp.StatusCode)
	}
	resp, b = postJSON(t, ts.URL+"/v1/runs", tinyRunBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit = %d %s, want 503", resp.StatusCode, b)
	}
}

func TestRunEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, body := postJSON(t, ts.URL+"/v1/runs?wait=1", tinyRunBody)
	if resp.StatusCode != 200 {
		t.Fatalf("wait submit = %d %s", resp.StatusCode, body)
	}
	v := decodeView(t, body)
	if v.State != StateDone {
		t.Fatalf("state = %s (%s)", v.State, v.Error)
	}
	if v.Events == 0 {
		t.Fatal("completed run reports zero events")
	}
	var res struct {
		Summary struct{ Jobs int }
	}
	if err := json.Unmarshal(v.Result, &res); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if res.Summary.Jobs != 60 {
		t.Fatalf("summary jobs = %d, want 60", res.Summary.Jobs)
	}

	// The record endpoint serves the identical stored body.
	resp, got := getBody(t, ts.URL+"/v1/runs/"+v.ID)
	if resp.StatusCode != 200 || !bytes.Equal(got, body) {
		t.Fatalf("GET record differs from wait body (status %d)", resp.StatusCode)
	}

	// The event stream replays the whole JSONL log.
	resp, events := getBody(t, ts.URL+"/v1/runs/"+v.ID+"/events")
	if resp.StatusCode != 200 {
		t.Fatalf("events = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content-type = %q", ct)
	}
	lines := 0
	sc := bufio.NewScanner(bytes.NewReader(events))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var e struct {
			Seq  uint64 `json:"seq"`
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line: %v\n%s", err, sc.Bytes())
		}
		lines++
	}
	if lines != v.Events {
		t.Fatalf("streamed %d events, record says %d", lines, v.Events)
	}

	// Listing shows the run.
	_, list := getBody(t, ts.URL+"/v1/runs")
	var ls struct {
		Count int
		Runs  []RunView
	}
	if err := json.Unmarshal(list, &ls); err != nil || ls.Count != 1 || ls.Runs[0].ID != v.ID {
		t.Fatalf("listing wrong: err=%v body=%s", err, list)
	}
}

func TestCacheHitByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, first := postJSON(t, ts.URL+"/v1/runs?wait=1", tinyRunBody)
	if resp.StatusCode != 200 {
		t.Fatalf("first submit = %d %s", resp.StatusCode, first)
	}
	if h := resp.Header.Get("X-Cache"); h != "miss" {
		t.Fatalf("first X-Cache = %q, want miss", h)
	}

	// A semantically identical config with defaults spelled out must
	// canonicalise onto the same cache entry.
	equivalent := `{"Workload":"NASA","JobCount":60,"LoadScale":1.0,"FailureNominal":500,"Scheduler":"balancing","Param":0.1,"Backfill":2}`
	for i, body := range []string{tinyRunBody, equivalent} {
		resp, repeat := postJSON(t, ts.URL+"/v1/runs", body)
		if resp.StatusCode != 200 {
			t.Fatalf("repeat %d = %d %s", i, resp.StatusCode, repeat)
		}
		if h := resp.Header.Get("X-Cache"); h != "hit" {
			t.Fatalf("repeat %d X-Cache = %q, want hit", i, h)
		}
		if !bytes.Equal(repeat, first) {
			t.Fatalf("repeat %d body differs from first:\n%s\n---\n%s", i, repeat, first)
		}
	}

	if hits, ok := metricValue(t, ts.URL, "service_cache_hits"); !ok || hits != 2 {
		t.Fatalf("service_cache_hits = %v, want 2", hits)
	}
	if misses, _ := metricValue(t, ts.URL, "service_cache_misses"); misses != 1 {
		t.Fatalf("service_cache_misses = %v, want 1", misses)
	}
	if done, _ := metricValue(t, ts.URL, "service_runs_completed"); done != 1 {
		t.Fatalf("service_runs_completed = %v, want 1", done)
	}
}

// TestQueueSaturation429: with one worker and a one-slot queue, the
// third concurrent distinct submission must be rejected with 429 and
// Retry-After, and counted in /metrics.
func TestQueueSaturation429(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	s.execHook = func(ctx context.Context, r *run) (any, error) {
		started <- struct{}{}
		select {
		case <-release:
			return SimResult{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		close(release)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Close(ctx)
	}()

	submit := func(seed int) (*http.Response, []byte) {
		body := fmt.Sprintf(`{"Workload":"NASA","JobCount":60,"Seed":%d}`, seed)
		return postJSON(t, ts.URL+"/v1/runs", body)
	}

	resp, b := submit(1) // dequeued by the worker, blocks in execHook
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1 = %d %s", resp.StatusCode, b)
	}
	<-started // worker is now busy
	resp, b = submit(2)
	if resp.StatusCode != http.StatusAccepted { // occupies the queue slot
		t.Fatalf("submit 2 = %d %s", resp.StatusCode, b)
	}
	resp, b = submit(3)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit 3 = %d %s, want 429", resp.StatusCode, b)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if rejected, _ := metricValue(t, ts.URL, "service_queue_rejected"); rejected != 1 {
		t.Fatalf("service_queue_rejected = %v, want 1", rejected)
	}
	// A duplicate of the queued config coalesces rather than occupying
	// another slot (and rather than being rejected).
	resp, b = submit(2)
	if resp.StatusCode != http.StatusAccepted || resp.Header.Get("X-Coalesced") != "true" {
		t.Fatalf("duplicate submit = %d coalesced=%q %s", resp.StatusCode, resp.Header.Get("X-Coalesced"), b)
	}
}

// TestClientDisconnectCancelsRun: a run created by a ?wait=1 client is
// cancelled when that client disconnects — verified end to end with a
// real simulation whose event loop observes the context.
func TestClientDisconnectCancelsRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	// A large invariant-checked run: long enough that the disconnect
	// arrives mid-execution on any machine.
	slow := `{"Workload":"SDSC","JobCount":8000,"FailureNominal":2000,"CheckInvariants":true}`
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/runs?wait=1", strings.NewReader(slow))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	// Wait until the run exists and is past queued, then disconnect.
	var id string
	deadline := time.Now().Add(15 * time.Second)
	for id == "" {
		if time.Now().After(deadline) {
			t.Fatal("run never started")
		}
		_, b := getBody(t, ts.URL+"/v1/runs")
		var ls struct{ Runs []RunView }
		json.Unmarshal(b, &ls)
		if len(ls.Runs) > 0 && ls.Runs[0].State == StateRunning {
			id = ls.Runs[0].ID
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("expected the waiting request to fail after disconnect")
	}

	for {
		if time.Now().After(deadline) {
			t.Fatal("run was not cancelled after client disconnect")
		}
		_, b := getBody(t, ts.URL+"/v1/runs/"+id)
		v := decodeView(t, b)
		if v.State.terminal() {
			if v.State != StateCanceled {
				t.Fatalf("terminal state = %s (%s), want canceled", v.State, v.Error)
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, ts2 := getBody(t, ts.URL+"/metrics?format=json") // still serving
	_ = ts2
}

// TestGracefulDrain: draining finishes the in-flight run, refuses new
// work, and Close returns once the worker is idle.
func TestGracefulDrain(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s.execHook = func(ctx context.Context, r *run) (any, error) {
		started <- struct{}{}
		select {
		case <-release:
			return SimResult{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, b := postJSON(t, ts.URL+"/v1/runs", tinyRunBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d %s", resp.StatusCode, b)
	}
	id := decodeView(t, b).ID
	<-started

	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		closed <- s.Close(ctx)
	}()

	// Draining: new submissions refused, in-flight run still running.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, _ := postJSON(t, ts.URL+"/v1/runs", `{"Workload":"SDSC","JobCount":70}`)
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain never refused new work (last status %d)", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case err := <-closed:
		t.Fatalf("Close returned %v before the in-flight run finished", err)
	default:
	}

	close(release) // let the run finish
	if err := <-closed; err != nil {
		t.Fatalf("Close = %v", err)
	}
	_, b = getBody(t, ts.URL+"/v1/runs/"+id)
	if v := decodeView(t, b); v.State != StateDone {
		t.Fatalf("drained run state = %s (%s), want done", v.State, v.Error)
	}
}

// TestStateJournalSurvivesRestart: completed runs reload from the
// state journal, and the warm cache still returns byte-identical
// bodies.
func TestStateJournalSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.jsonl")

	s1, err := New(Config{StatePath: path})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	resp, first := postJSON(t, ts1.URL+"/v1/runs?wait=1", tinyRunBody)
	if resp.StatusCode != 200 {
		t.Fatalf("submit = %d %s", resp.StatusCode, first)
	}
	v := decodeView(t, first)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ts1.Close()
	if err := s1.Close(ctx); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{StatePath: path})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Close(ctx)

	resp, cached := postJSON(t, ts2.URL+"/v1/runs", tinyRunBody)
	if resp.StatusCode != 200 || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("post-restart submit = %d cache=%q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(cached, first) {
		t.Fatalf("post-restart cache body differs:\n%s\n---\n%s", cached, first)
	}
	_, rec := getBody(t, ts2.URL+"/v1/runs/"+v.ID)
	if !bytes.Equal(rec, first) {
		t.Fatal("restored record differs")
	}
	_, events := getBody(t, ts2.URL+"/v1/runs/"+v.ID+"/events")
	if got := strings.Count(string(events), "\n"); got != v.Events {
		t.Fatalf("restored events = %d lines, want %d", got, v.Events)
	}
}

func TestFigureSweepEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep in -short mode")
	}
	_, ts := newTestServer(t, Config{Workers: 2})
	body := `{"Options":{"JobCount":40,"Replications":1},"Workers":2}`
	resp, b := postJSON(t, ts.URL+"/v1/figures/fig3?wait=1", body)
	if resp.StatusCode != 200 {
		t.Fatalf("figure submit = %d %s", resp.StatusCode, b)
	}
	v := decodeView(t, b)
	if v.State != StateDone || v.Kind != kindFigure {
		t.Fatalf("figure run = %s/%s (%s)", v.Kind, v.State, v.Error)
	}
	var fr FigureResult
	if err := json.Unmarshal(v.Result, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Figure != "fig3" || len(fr.Tables) != 1 || len(fr.Tables[0].Series) != 3 {
		t.Fatalf("unexpected figure result: %+v", fr)
	}
	// Same options, different Workers: still a cache hit (parallelism
	// is excluded from the hash).
	resp, b2 := postJSON(t, ts.URL+"/v1/figures/fig3", `{"Options":{"JobCount":40,"Replications":1},"Workers":1}`)
	if resp.Header.Get("X-Cache") != "hit" || !bytes.Equal(b2, b) {
		t.Fatalf("figure repeat: cache=%q identical=%v", resp.Header.Get("X-Cache"), bytes.Equal(b2, b))
	}

	resp, _ = postJSON(t, ts.URL+"/v1/figures/fig99", "{}")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown figure = %d, want 404", resp.StatusCode)
	}
}

func TestValidationErrors(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxJobs: 100})
	cases := []struct {
		name, body string
		status     int
	}{
		{"unknown scheduler", `{"Scheduler":"quantum"}`, 400},
		{"oversized jobcount", `{"JobCount":5000}`, 400},
		{"bad machine", `{"Machine":"not-a-machine"}`, 400},
		{"bad workload", `{"Workload":"KRONOS"}`, 400},
		{"bad finder", `{"Finder":"psychic"}`, 400},
		{"param range", `{"Param":1.5}`, 400},
		{"unknown field", `{"Bogus":1}`, 400},
		{"broken json", `{"JobCount":`, 400},
	}
	for _, tc := range cases {
		resp, b := postJSON(t, ts.URL+"/v1/runs", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d %s, want %d", tc.name, resp.StatusCode, b, tc.status)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(b, &e); err != nil || e.Error == "" {
			t.Errorf("%s: no JSON error body: %s", tc.name, b)
		}
	}
	if submitted, _ := metricValue(t, ts.URL, "service_runs_submitted"); submitted != 0 {
		t.Fatalf("invalid requests consumed queue slots: submitted = %v", submitted)
	}
	_ = s

	resp, _ := getBody(t, ts.URL+"/v1/runs/r-999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing run = %d, want 404", resp.StatusCode)
	}
}

// TestLiveEventStream: a subscriber attached while the run executes
// receives the event log incrementally and the stream terminates when
// the run does.
func TestLiveEventStream(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	step := make(chan struct{})
	s.execHook = func(ctx context.Context, r *run) (any, error) {
		r.events.append([]byte(`{"seq":1,"kind":"arrival"}`))
		<-step
		r.events.append([]byte(`{"seq":2,"kind":"finish"}`))
		return SimResult{}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Close(ctx)
	}()

	resp, b := postJSON(t, ts.URL+"/v1/runs", tinyRunBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d %s", resp.StatusCode, b)
	}
	id := decodeView(t, b).ID

	streamResp, err := http.Get(ts.URL + "/v1/runs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	rd := bufio.NewReader(streamResp.Body)

	line1, err := rd.ReadString('\n')
	if err != nil || !strings.Contains(line1, `"arrival"`) {
		t.Fatalf("first streamed line: %q err=%v", line1, err)
	}
	close(step)
	line2, err := rd.ReadString('\n')
	if err != nil || !strings.Contains(line2, `"finish"`) {
		t.Fatalf("second streamed line: %q err=%v", line2, err)
	}
	if _, err := rd.ReadString('\n'); err != io.EOF {
		t.Fatalf("stream did not terminate with the run: %v", err)
	}
}

// TestParallelClientsRace hammers the cache, queue, listing and
// streaming endpoints from many goroutines; run with -race this is
// the concurrency regression test for the whole service.
func TestParallelClientsRace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64, CacheSize: 4})

	configs := make([]string, 6)
	for i := range configs {
		configs[i] = fmt.Sprintf(`{"Workload":"NASA","JobCount":40,"Seed":%d}`, i+1)
	}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				cfg := configs[(c+i)%len(configs)]
				if i%3 == 0 {
					resp, _ := postJSON(t, ts.URL+"/v1/runs?wait=1", cfg)
					resp.Body.Close()
				} else {
					resp, b := postJSON(t, ts.URL+"/v1/runs", cfg)
					resp.Body.Close()
					if resp.StatusCode == http.StatusAccepted || resp.StatusCode == 200 {
						if id := decodeView(t, b).ID; id != "" {
							r1, _ := getBody(t, ts.URL+"/v1/runs/"+id)
							r1.Body.Close()
							r2, _ := getBody(t, ts.URL+"/v1/runs/"+id+"/events")
							r2.Body.Close()
						}
					}
				}
				if i%4 == 0 {
					r, _ := getBody(t, ts.URL+"/v1/runs")
					r.Body.Close()
					m, _ := getBody(t, ts.URL+"/metrics")
					m.Body.Close()
				}
			}
		}(c)
	}
	wg.Wait()

	// Every terminal run must be done (no failures slipped through).
	_, b := getBody(t, ts.URL+"/v1/runs")
	var ls struct{ Runs []RunView }
	if err := json.Unmarshal(b, &ls); err != nil {
		t.Fatal(err)
	}
	for _, r := range ls.Runs {
		if r.State == StateFailed {
			t.Fatalf("run %s failed: %s", r.ID, r.Error)
		}
	}
	if hits, _ := metricValue(t, ts.URL, "service_cache_hits"); hits == 0 {
		t.Fatal("expected cache hits under the hammer")
	}
}

// TestTraceEndpointServesCausalTrace checks that a completed sim run's
// causal trace streams back as parseable trace records: a meta record
// naming the run, the per-job lifecycle, and (because the service
// tracer enables wall spans) the build/sim spans.
func TestTraceEndpointServesCausalTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, body := postJSON(t, ts.URL+"/v1/runs?wait=1", tinyRunBody)
	if resp.StatusCode != 200 {
		t.Fatalf("wait submit = %d %s", resp.StatusCode, body)
	}
	v := decodeView(t, body)
	if v.State != StateDone {
		t.Fatalf("state = %s (%s)", v.State, v.Error)
	}
	if v.Traces == 0 {
		t.Fatal("completed run reports zero trace records")
	}

	resp, raw := getBody(t, ts.URL+"/v1/runs/"+v.ID+"/trace")
	if resp.StatusCode != 200 {
		t.Fatalf("trace = %d %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace content-type = %q", ct)
	}
	recs, err := trace.ReadLog(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(recs) != v.Traces {
		t.Fatalf("streamed %d trace records, record says %d", len(recs), v.Traces)
	}
	if recs[0].Cat != "meta" || recs[0].Extra["run"] != v.ID {
		t.Fatalf("first record is not the run meta: %+v", recs[0])
	}
	names := map[string]int{}
	spans := 0
	for _, r := range recs {
		names[r.Cat+"/"+r.Name]++
		if r.Span {
			spans++
		}
	}
	for _, want := range []string{"job/submit", "job/allocate", "job/start", "job/finish", "build/build", "sim/run"} {
		if names[want] == 0 {
			t.Fatalf("trace lacks %q records; have %v", want, names)
		}
	}
	if spans == 0 {
		t.Fatal("service trace carries no wall spans")
	}

	// No simulation in flight: the flight dump endpoint reports so.
	resp, flight := getBody(t, ts.URL+"/debug/flight")
	if resp.StatusCode != 200 || !bytes.Contains(flight, []byte("no flight recorders registered")) {
		t.Fatalf("flight dump = %d %q", resp.StatusCode, flight)
	}
}

// TestFlightDumpDuringRun holds a run in flight via the exec hook and
// checks /debug/flight surfaces its registered recorder.
func TestFlightDumpDuringRun(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1})
	s.execHook = func(ctx context.Context, r *run) (any, error) {
		fr := trace.NewFlightRecorder(4, nil, "run "+r.id)
		fr.Record(trace.FlightEvent{T: 1, Seq: 1, Kind: "arrival", Job: 7})
		trace.RegisterFlight(fr)
		defer trace.UnregisterFlight(fr)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return SimResult{}, nil
	}

	resp, body := postJSON(t, ts.URL+"/v1/runs", tinyRunBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d %s", resp.StatusCode, body)
	}
	id := decodeView(t, body).ID

	// Wait for the run to be in flight, then dump.
	deadline := time.Now().Add(5 * time.Second)
	var flight []byte
	for {
		_, flight = getBody(t, ts.URL+"/debug/flight")
		if bytes.Contains(flight, []byte("flight recorder dump: run "+id)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight dump never showed run %s:\n%s", id, flight)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !bytes.Contains(flight, []byte("kind=arrival")) {
		t.Fatalf("dump lacks recorded event:\n%s", flight)
	}
	close(release)
}

// TestMetricsDuringConcurrentCompletion scrapes /metrics continuously
// while distinct runs complete on a multi-worker pool, asserting the
// exposition is never torn mid-drain and the completion counter is
// monotone across scrapes — the consistency contract a Prometheus
// scraper depends on. With -race this doubles as the regression test
// for telemetry updates racing snapshot serialization inside the
// service.
func TestMetricsDuringConcurrentCompletion(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})

	const runs = 12
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for i := 0; i < runs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				body := fmt.Sprintf(`{"Workload":"NASA","JobCount":40,"Seed":%d}`, i+1)
				resp, _ := postJSON(t, ts.URL+"/v1/runs?wait=1", body)
				resp.Body.Close()
			}(i)
		}
		wg.Wait()
	}()

	var last float64 = -1
	for alive := true; alive; {
		select {
		case <-done:
			alive = false // one final scrape below observes the end state
		default:
		}
		resp, b := getBody(t, ts.URL+"/metrics")
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("scrape = %d", resp.StatusCode)
		}
		// Torn expositions show up as a missing terminal newline or a
		// value line that doesn't parse.
		if len(b) == 0 || b[len(b)-1] != '\n' {
			t.Fatalf("truncated exposition: %q", b)
		}
		completed := 0.0
		for _, line := range strings.Split(string(b), "\n") {
			f := strings.Fields(line)
			if len(f) == 2 && f[0] == "service_runs_completed" {
				if _, err := fmt.Sscanf(f[1], "%g", &completed); err != nil {
					t.Fatalf("unparseable counter mid-drain: %q", line)
				}
			}
		}
		if completed < last {
			t.Fatalf("service_runs_completed moved backwards: %g after %g", completed, last)
		}
		last = completed
	}
	if last != runs {
		t.Fatalf("final service_runs_completed = %g, want %d", last, runs)
	}
}
