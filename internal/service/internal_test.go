package service

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	r1, r2, r3 := &run{id: "r1"}, &run{id: "r2"}, &run{id: "r3"}

	if ev := c.add("a", r1); ev != 0 {
		t.Fatalf("add a evicted %d", ev)
	}
	c.add("b", r2)
	if got := c.get("a"); got != r1 { // touch "a": "b" becomes LRU
		t.Fatalf("get a = %v", got)
	}
	if ev := c.add("c", r3); ev != 1 {
		t.Fatalf("add c evicted %d, want 1", ev)
	}
	if c.get("b") != nil {
		t.Fatal("LRU entry b survived eviction")
	}
	if c.get("a") != r1 || c.get("c") != r3 {
		t.Fatal("recently used entries were evicted")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}

	// Refreshing an existing key replaces the run without eviction.
	r1b := &run{id: "r1b"}
	if ev := c.add("a", r1b); ev != 0 || c.get("a") != r1b {
		t.Fatalf("refresh: evicted=%d got=%v", ev, c.get("a"))
	}
	c.remove("a")
	if c.get("a") != nil || c.len() != 1 {
		t.Fatal("remove did not drop the entry")
	}
	c.remove("a") // absent: no-op
}

func TestEventBufferReplayAndFollow(t *testing.T) {
	b := newEventBuffer(0)
	b.append([]byte("one"))
	b.append([]byte("two"))

	ctx := context.Background()
	lines, next, closed, err := b.wait(ctx, 0)
	if err != nil || closed || len(lines) != 2 || next != 2 {
		t.Fatalf("replay: lines=%d next=%d closed=%v err=%v", len(lines), next, closed, err)
	}
	if string(lines[0]) != "one" || string(lines[1]) != "two" {
		t.Fatalf("replay content: %q %q", lines[0], lines[1])
	}

	// A follower blocks until the next append.
	got := make(chan string, 1)
	go func() {
		lines, _, _, _ := b.wait(ctx, next)
		got <- string(lines[0])
	}()
	time.Sleep(10 * time.Millisecond) // let the follower park
	b.append([]byte("three"))
	select {
	case s := <-got:
		if s != "three" {
			t.Fatalf("follower got %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower never woke")
	}

	// close wakes blocked waiters with closed=true and an empty batch.
	done := make(chan struct{})
	go func() {
		lines, _, closed, _ := b.wait(ctx, 3)
		if len(lines) != 0 || !closed {
			t.Errorf("post-close wait: lines=%d closed=%v", len(lines), closed)
		}
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	b.close()
	<-done
	b.close() // idempotent
	b.append([]byte("late"))
	if n, _ := b.counts(); n != 3 {
		t.Fatalf("append after close stored a line: %d", n)
	}
}

func TestEventBufferResetRestartsCursor(t *testing.T) {
	b := newEventBuffer(0)
	b.append([]byte("a"))
	b.append([]byte("b"))
	b.reset()
	b.append([]byte("c"))
	// A subscriber whose cursor (2) is past the new end restarts at 0.
	lines, next, _, err := b.wait(context.Background(), 2)
	if err != nil || len(lines) != 1 || string(lines[0]) != "c" || next != 1 {
		t.Fatalf("after reset: lines=%v next=%d err=%v", lines, next, err)
	}
}

func TestEventBufferByteCapDrops(t *testing.T) {
	b := newEventBuffer(10)
	b.append([]byte("12345"))  // 5 bytes
	b.append([]byte("67890"))  // 10 bytes, at the cap
	b.append([]byte("x"))      // would exceed: dropped
	b.append([]byte("yzyzyz")) // dropped
	stored, dropped := b.counts()
	if stored != 2 || dropped != 2 {
		t.Fatalf("stored=%d dropped=%d, want 2/2", stored, dropped)
	}
}

func TestEventBufferWaitCancellation(t *testing.T) {
	b := newEventBuffer(0)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, _, err := b.wait(ctx, 0)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("cancelled wait returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled wait never returned")
	}
}

// TestEventBufferConcurrent hammers one buffer from appenders and
// followers; meaningful under -race.
func TestEventBufferConcurrent(t *testing.T) {
	b := newEventBuffer(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.append([]byte(fmt.Sprintf("w%d-%d", w, i)))
			}
		}(w)
	}
	ctx, cancelReaders := context.WithCancel(context.Background())
	var readers sync.WaitGroup
	for rdr := 0; rdr < 4; rdr++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			cursor := 0
			for {
				lines, next, closed, err := b.wait(ctx, cursor)
				if err != nil || closed {
					return
				}
				for _, ln := range lines {
					_ = len(ln)
				}
				cursor = next
			}
		}()
	}
	wg.Wait()
	b.close()
	readers.Wait()
	cancelReaders()
	if n, _ := b.counts(); n != 800 {
		t.Fatalf("stored %d lines, want 800", n)
	}
}

func TestParseStateJournalToleratesTornLine(t *testing.T) {
	data := []byte(`{"type":"run","body":{"id":"r-000001","state":"done"},"events":["e1"]}
not json at all
{"type":"other","body":{"id":"r-000002","state":"done"}}
{"type":"run","body":{"id":"r-000003","state":"done"}}
{"type":"run","body":{"id":"r-0000`) // torn mid-append
	got, report := parseStateJournal(data)
	if len(got) != 2 {
		t.Fatalf("parsed %d records, want 2", len(got))
	}
	if len(got[0].Events) != 1 || got[0].Events[0] != "e1" {
		t.Fatalf("record 0 events: %v", got[0].Events)
	}
	// "not json at all", the wrong-type line, and the torn tail all
	// count as malformed skips.
	if report.malformed != 3 || report.badCRC != 0 {
		t.Fatalf("report = %+v, want 3 malformed", report)
	}
}

func TestIDNumber(t *testing.T) {
	for id, want := range map[string]int64{
		"r-000042": 42, "r-1": 1, "x-000042": 0, "r-abc": 0, "": 0,
	} {
		if got := idNumber(id); got != want {
			t.Errorf("idNumber(%q) = %d, want %d", id, got, want)
		}
	}
}

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Workers != 2 || c.QueueDepth != 16 || c.CacheSize != 128 ||
		c.RunTimeout != 10*time.Minute || c.Retries != 1 || c.MaxJobs != 20000 {
		t.Fatalf("zero-value defaults wrong: %+v", c)
	}
	if c.Telemetry == nil {
		t.Fatal("nil Telemetry not defaulted")
	}
	if got := (Config{Retries: -1}).withDefaults().Retries; got != 0 {
		t.Fatalf("Retries -1 -> %d, want 0 (disabled)", got)
	}
	if got := (Config{Retries: 3}).withDefaults().Retries; got != 3 {
		t.Fatalf("Retries 3 -> %d", got)
	}
}
