package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// persistedRun is one line of the service state journal: the rendered
// terminal record (served verbatim after restore, preserving the
// byte-identical cache-hit guarantee across restarts) plus the event
// lines the run produced.
type persistedRun struct {
	Type   string          `json:"type"` // always "run"
	Body   json.RawMessage `json:"body"`
	Events []string        `json:"events,omitempty"`
}

// stateJournal is the append-only JSONL store of completed runs,
// mirroring the resilience package's journal discipline: one synced
// write per record, a tolerant reader that skips a torn final line.
type stateJournal struct {
	mu sync.Mutex
	f  *os.File
}

// openStateJournal loads the existing journal at path (if any) and
// opens it for appending.
func openStateJournal(path string) (*stateJournal, []persistedRun, error) {
	var restored []persistedRun
	if data, err := os.ReadFile(path); err == nil {
		restored = parseStateJournal(data)
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("service: read state journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: open state journal: %w", err)
	}
	return &stateJournal{f: f}, restored, nil
}

// parseStateJournal decodes journal lines, skipping malformed ones
// (the final line may be torn by a crash mid-append).
func parseStateJournal(data []byte) []persistedRun {
	var out []persistedRun
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var p persistedRun
		if err := json.Unmarshal(line, &p); err != nil || p.Type != "run" || len(p.Body) == 0 {
			continue
		}
		out = append(out, p)
	}
	return out
}

// append durably records one completed run. Safe on a nil journal.
func (j *stateJournal) append(p persistedRun) error {
	if j == nil {
		return nil
	}
	p.Type = "run"
	b, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("service: journal encode: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("service: journal write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("service: journal sync: %w", err)
	}
	return nil
}

// close closes the journal file. Safe on nil.
func (j *stateJournal) close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// restore rebuilds terminal runs from journal records: they re-enter
// the registry and (successful ones) the cache, and their event logs
// are replayable, so a restarted server answers for work done before
// the restart. Called from New before the workers start.
func (s *Server) restore(records []persistedRun) {
	for _, p := range records {
		var v RunView
		if err := json.Unmarshal(p.Body, &v); err != nil || v.ID == "" || !v.State.terminal() {
			continue
		}
		r := &run{
			id:        v.ID,
			kind:      v.Kind,
			hash:      v.ConfigHash,
			state:     v.State,
			errMsg:    v.Error,
			attempts:  v.Attempts,
			submitted: v.Submitted,
			result:    v.Result,
			body:      append([]byte(nil), p.Body...),
			events:    newEventBuffer(s.cfg.MaxEventBytes),
			done:      make(chan struct{}),
		}
		if v.Started != nil {
			r.started = *v.Started
		}
		if v.Finished != nil {
			r.finished = *v.Finished
		} else {
			r.finished = time.Now()
		}
		r.ctx, r.cancel = context.WithCancel(s.baseCtx)
		r.cancel() // terminal: nothing to cancel
		close(r.done)
		r.events.replay(p.Events)

		if prev, ok := s.runs[r.id]; ok {
			// Duplicate id in the journal (shouldn't happen): keep the
			// later record.
			s.removeFromOrder(prev)
		}
		s.runs[r.id] = r
		s.order = append(s.order, r)
		if r.state == StateDone {
			s.cache.add(r.hash, r)
		}
		if n := idNumber(r.id); n > s.idSeq {
			s.idSeq = n
		}
	}
	s.enforceRetentionLocked()
}

// idNumber extracts the numeric suffix of "r-NNNNNN" ids (0 when the
// id has another shape).
func idNumber(id string) int64 {
	rest, ok := strings.CutPrefix(id, "r-")
	if !ok {
		return 0
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// removeFromOrder drops r from the submission-order slice.
func (s *Server) removeFromOrder(victim *run) {
	for i, r := range s.order {
		if r == victim {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// enforceRetentionLocked evicts the oldest terminal runs beyond
// Config.MaxRuns from the registry (and cache). Queued and running
// runs are never evicted. Caller holds s.mu.
func (s *Server) enforceRetentionLocked() {
	if len(s.order) <= s.cfg.MaxRuns {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.cfg.MaxRuns
	for _, r := range s.order {
		if excess > 0 && r.state.terminal() {
			delete(s.runs, r.id)
			if s.cache.get(r.hash) == r {
				s.cache.remove(r.hash)
			}
			excess--
			continue
		}
		kept = append(kept, r)
	}
	s.order = kept
}
