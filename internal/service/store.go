package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"bgsched/internal/experiments"
)

// persistedRun is one line of the service state journal: the rendered
// terminal record (served verbatim after restore, preserving the
// byte-identical cache-hit guarantee across restarts) plus the event
// lines the run produced. CRC is the record's own checksum (CRC-32C
// over the line marshalled with CRC empty), so corruption that still
// parses as JSON — a flipped digit, a spliced tail — is caught at
// restore instead of being served as a byte-identical "cached" result.
type persistedRun struct {
	Type   string          `json:"type"` // always "run"
	Body   json.RawMessage `json:"body"`
	Events []string        `json:"events,omitempty"`
	CRC    string          `json:"crc,omitempty"`
}

// checksum computes the record's CRC-32C with the CRC field cleared.
// The round trip is exact: Body is a RawMessage (bytes preserved
// verbatim) and Events re-encode identically, so a record verified at
// restore re-marshals to the same base bytes it was checksummed over.
func (p persistedRun) checksum() (string, error) {
	p.CRC = ""
	base, err := json.Marshal(p)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%08x", crc32.Checksum(base, crcTable)), nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// stateJournal is the append-only JSONL store of completed runs,
// mirroring the resilience package's journal discipline: one synced
// write per record, a tolerant reader that skips a torn final line.
type stateJournal struct {
	mu sync.Mutex
	f  *os.File
	// fault, when non-nil, is the chaos seam: consulted before every
	// append, a returned error fails the append without touching the
	// file (the injected shapes are write failure and disk-full).
	fault func() error
}

// restoreReport summarises one journal load: how many lines were
// skipped as malformed (torn tail, non-JSON) or as checksum failures
// (bit flips that still parse).
type restoreReport struct {
	malformed int
	badCRC    int
}

// openStateJournal loads the existing journal at path (if any) and
// opens it for appending. Corrupt or torn records are skipped, never
// fatal: a journal that got damaged must degrade to a smaller warm
// cache, not block startup.
func openStateJournal(path string) (*stateJournal, []persistedRun, restoreReport, error) {
	var restored []persistedRun
	var report restoreReport
	if data, err := os.ReadFile(path); err == nil {
		restored, report = parseStateJournal(data)
	} else if !os.IsNotExist(err) {
		return nil, nil, report, fmt.Errorf("service: read state journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, report, fmt.Errorf("service: open state journal: %w", err)
	}
	return &stateJournal{f: f}, restored, report, nil
}

// parseStateJournal decodes journal lines, skipping malformed ones
// (the final line may be torn by a crash mid-append) and ones whose
// per-record checksum no longer matches (bit flips, spliced tails).
// Records written before checksumming existed (no crc field) are
// accepted as-is.
func parseStateJournal(data []byte) ([]persistedRun, restoreReport) {
	var out []persistedRun
	var report restoreReport
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var p persistedRun
		if err := json.Unmarshal(line, &p); err != nil || p.Type != "run" || len(p.Body) == 0 {
			report.malformed++
			continue
		}
		if p.CRC != "" {
			want, err := p.checksum()
			if err != nil || want != p.CRC {
				report.badCRC++
				continue
			}
		}
		out = append(out, p)
	}
	return out, report
}

// append durably records one completed run. Safe on a nil journal.
func (j *stateJournal) append(p persistedRun) error {
	if j == nil {
		return nil
	}
	if j.fault != nil {
		if err := j.fault(); err != nil {
			return err
		}
	}
	p.Type = "run"
	crc, err := p.checksum()
	if err != nil {
		return fmt.Errorf("service: journal encode: %w", err)
	}
	p.CRC = crc
	b, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("service: journal encode: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("service: journal write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("service: journal sync: %w", err)
	}
	return nil
}

// close closes the journal file. Safe on nil.
func (j *stateJournal) close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// restore rebuilds terminal runs from journal records: they re-enter
// the registry and (successful ones) the cache, and their event logs
// are replayable, so a restarted server answers for work done before
// the restart. Called from New before the workers start.
func (s *Server) restore(records []persistedRun) {
	for _, p := range records {
		var v RunView
		if err := json.Unmarshal(p.Body, &v); err != nil || v.ID == "" || !v.State.terminal() {
			continue
		}
		r := &run{
			id:        v.ID,
			kind:      v.Kind,
			hash:      v.ConfigHash,
			state:     v.State,
			errMsg:    v.Error,
			attempts:  v.Attempts,
			submitted: v.Submitted,
			result:    v.Result,
			body:      append([]byte(nil), p.Body...),
			events:    newEventBuffer(s.cfg.MaxEventBytes),
			done:      make(chan struct{}),
		}
		// Re-hydrate the typed config of restored simulation runs, so a
		// journal-restored parent can still be branched from.
		if v.Kind == kindSim && v.Config != nil {
			if cb, err := json.Marshal(v.Config); err == nil {
				var rc experiments.RunConfig
				if err := json.Unmarshal(cb, &rc); err == nil {
					r.cfg = rc
				}
			}
		}
		if v.Started != nil {
			r.started = *v.Started
		}
		if v.Finished != nil {
			r.finished = *v.Finished
		} else {
			r.finished = time.Now()
		}
		r.ctx, r.cancel = context.WithCancel(s.baseCtx)
		r.cancel() // terminal: nothing to cancel
		close(r.done)
		r.events.replay(p.Events)

		if prev, ok := s.runs[r.id]; ok {
			// Duplicate id in the journal (shouldn't happen): keep the
			// later record.
			s.removeFromOrder(prev)
		}
		s.runs[r.id] = r
		s.order = append(s.order, r)
		if r.state == StateDone {
			s.cache.add(r.hash, r)
		}
		if n := idNumber(r.id); n > s.idSeq {
			s.idSeq = n
		}
	}
	s.enforceRetentionLocked()
}

// idNumber extracts the numeric suffix of "r-NNNNNN" ids (0 when the
// id has another shape).
func idNumber(id string) int64 {
	rest, ok := strings.CutPrefix(id, "r-")
	if !ok {
		return 0
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// removeFromOrder drops r from the submission-order slice.
func (s *Server) removeFromOrder(victim *run) {
	for i, r := range s.order {
		if r == victim {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// enforceRetentionLocked evicts the oldest terminal runs beyond
// Config.MaxRuns from the registry (and cache). Queued and running
// runs are never evicted. Caller holds s.mu.
func (s *Server) enforceRetentionLocked() {
	if len(s.order) <= s.cfg.MaxRuns {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.cfg.MaxRuns
	for _, r := range s.order {
		if excess > 0 && r.state.terminal() {
			delete(s.runs, r.id)
			if s.cache.get(r.hash) == r {
				s.cache.remove(r.hash)
			}
			excess--
			continue
		}
		kept = append(kept, r)
	}
	s.order = kept
}
