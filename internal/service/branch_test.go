package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// branchOf posts a branch request against a parent run id and returns
// the terminal view (?wait=1).
func branchOf(t *testing.T, baseURL, parentID, body string) (*http.Response, RunView) {
	t.Helper()
	resp, b := postJSON(t, baseURL+"/v1/runs/"+parentID+"/branch?wait=1", body)
	return resp, decodeView(t, b)
}

// TestBranchEndToEnd covers the what-if replay path: run a parent,
// branch it under a different scheduler, and check the branch result is
// a complete, distinct simulation outcome wired to its parent.
func TestBranchEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, b := postJSON(t, ts.URL+"/v1/runs?wait=1", tinyRunBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("parent: status %d: %s", resp.StatusCode, b)
	}
	parent := decodeView(t, b)
	if parent.State != StateDone {
		t.Fatalf("parent state %s: %s", parent.State, parent.Error)
	}
	var parentRes SimResult
	if err := json.Unmarshal(parent.Result, &parentRes); err != nil {
		t.Fatal(err)
	}

	resp, view := branchOf(t, ts.URL, parent.ID, `{"at_seq":80,"branch":{"scheduler":"baseline"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("branch: status %d", resp.StatusCode)
	}
	if view.State != StateDone {
		t.Fatalf("branch state %s: %s", view.State, view.Error)
	}
	if view.Kind != kindBranch {
		t.Fatalf("branch kind %q", view.Kind)
	}
	if view.Events == 0 {
		t.Fatal("branch run streamed no events")
	}
	var br BranchResult
	if err := json.Unmarshal(view.Result, &br); err != nil {
		t.Fatal(err)
	}
	if br.ParentID != parent.ID || br.AtSeq != 80 {
		t.Fatalf("branch result parentage: %+v", br)
	}
	if br.ParentHash != parent.ConfigHash {
		t.Fatalf("branch parent hash %s, parent run hash %s", br.ParentHash, parent.ConfigHash)
	}
	if br.Summary.Jobs != parentRes.Summary.Jobs {
		t.Fatalf("branch finished %d jobs, parent %d", br.Summary.Jobs, parentRes.Summary.Jobs)
	}
}

// TestBranchSnapshotCacheReuse pins the cached-prefix property: sibling
// branches off the same (parent, at_seq) point re-simulate the prefix
// once. The reuse is observable only in the service counters — results
// stay byte-identical either way.
func TestBranchSnapshotCacheReuse(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, b := postJSON(t, ts.URL+"/v1/runs?wait=1", tinyRunBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("parent: status %d: %s", resp.StatusCode, b)
	}
	parent := decodeView(t, b)

	if resp, view := branchOf(t, ts.URL, parent.ID, `{"at_seq":80,"branch":{"scheduler":"baseline"}}`); resp.StatusCode != http.StatusOK || view.State != StateDone {
		t.Fatalf("first branch: status %d state %s %s", resp.StatusCode, view.State, view.Error)
	}
	if v, ok := metricValue(t, ts.URL, "service_branch_snapshot_misses"); !ok || v != 1 {
		t.Fatalf("snapshot misses after first branch = %v (present %v), want 1", v, ok)
	}
	// A different branch off the same point must hit the snapshot cache.
	if resp, view := branchOf(t, ts.URL, parent.ID, `{"at_seq":80,"branch":{"scheduler":"tiebreak","param":0.5}}`); resp.StatusCode != http.StatusOK || view.State != StateDone {
		t.Fatalf("second branch: status %d state %s %s", resp.StatusCode, view.State, view.Error)
	}
	if v, ok := metricValue(t, ts.URL, "service_branch_snapshot_hits"); !ok || v != 1 {
		t.Fatalf("snapshot hits after second branch = %v (present %v), want 1", v, ok)
	}
	if v, _ := metricValue(t, ts.URL, "service_branch_snapshot_misses"); v != 1 {
		t.Fatalf("snapshot misses after second branch = %v, want still 1", v)
	}

	// An identical branch resubmission is a whole-result cache hit and
	// never reaches the executor.
	resp, _ = postJSON(t, ts.URL+"/v1/runs/"+parent.ID+"/branch?wait=1", `{"at_seq":80,"branch":{"scheduler":"baseline"}}`)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("identical branch resubmission: X-Cache %q, want hit", resp.Header.Get("X-Cache"))
	}
}

// TestBranchNoopMatchesParent is the service-level equivalence pin: an
// empty branch replayed from any boundary must reproduce the parent's
// summary exactly.
func TestBranchNoopMatchesParent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, b := postJSON(t, ts.URL+"/v1/runs?wait=1", tinyRunBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("parent: status %d: %s", resp.StatusCode, b)
	}
	parent := decodeView(t, b)
	var parentRes SimResult
	if err := json.Unmarshal(parent.Result, &parentRes); err != nil {
		t.Fatal(err)
	}
	_, view := branchOf(t, ts.URL, parent.ID, `{"at_seq":40,"branch":{}}`)
	if view.State != StateDone {
		t.Fatalf("no-op branch state %s: %s", view.State, view.Error)
	}
	var br BranchResult
	if err := json.Unmarshal(view.Result, &br); err != nil {
		t.Fatal(err)
	}
	if br.Summary != parentRes.Summary {
		t.Fatalf("no-op branch summary diverged:\nparent %+v\nbranch %+v", parentRes.Summary, br.Summary)
	}
	if br.JobKills != parentRes.JobKills || br.Backfills != parentRes.Backfills {
		t.Fatalf("no-op branch counters diverged: %+v vs %+v", br.SimResult, parentRes)
	}
}

// TestBranchRejections covers the refusal surface: unknown parent,
// non-sim parent, malformed seq, invalid branch config, and a seq past
// the end of the parent's schedule.
func TestBranchRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, b := postJSON(t, ts.URL+"/v1/runs?wait=1", tinyRunBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("parent: status %d: %s", resp.StatusCode, b)
	}
	parent := decodeView(t, b)

	if resp, _ := postJSON(t, ts.URL+"/v1/runs/r-999999/branch", `{"at_seq":10}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown parent: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/runs/"+parent.ID+"/branch", `{"at_seq":0}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("at_seq 0: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/runs/"+parent.ID+"/branch", `{"at_seq":10,"branch":{"scheduler":"warp-drive"}}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad scheduler: status %d, want 400", resp.StatusCode)
	}

	// Figure runs cannot be branched.
	resp, b = postJSON(t, ts.URL+"/v1/figures/fig3?wait=1", `{"Options":{"JobCount":40,"FailureCounts":[100]}}`)
	if resp.StatusCode == http.StatusOK {
		fig := decodeView(t, b)
		if resp, _ := postJSON(t, ts.URL+"/v1/runs/"+fig.ID+"/branch", `{"at_seq":10}`); resp.StatusCode != http.StatusConflict {
			t.Fatalf("figure parent: status %d, want 409", resp.StatusCode)
		}
	}

	// A seq the parent run never reaches fails the branch run itself.
	_, view := branchOf(t, ts.URL, parent.ID, `{"at_seq":1000000000}`)
	if view.State != StateFailed {
		t.Fatalf("unreachable seq: state %s, want failed", view.State)
	}
	if want := "snapshot point not reached"; !strings.Contains(view.Error, want) {
		t.Fatalf("unreachable seq error %q, want substring %q", view.Error, want)
	}
}
