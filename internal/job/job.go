// Package job defines the parallel job model and the FCFS wait queue
// used by the schedulers. A job is the unit the paper's scheduler sees:
// an arrival time, a node count, and an estimated execution time
// (Section 3.2).
package job

import "fmt"

// ID identifies a job. IDs are positive; they double as grid owner ids.
type ID int64

// Job is an immutable description of one parallel job. Mutable
// scheduling state (start time, restarts, partition) lives in the
// simulator, not here.
type Job struct {
	ID      ID
	Arrival float64 // arrival time t_a, seconds from simulation origin
	Size    int     // requested nodes s_j (supernodes)
	// AllocSize is the partition size actually allocated: Size rounded
	// up to the next size realisable as a rectangular block on the
	// machine. AllocSize >= Size >= 1.
	AllocSize int
	Estimate  float64 // estimated execution time t_e, seconds
	// Actual is the true execution time. The paper's runs take the
	// estimate as exact; SWF replays may differ (Actual <= or >= Estimate).
	Actual float64
}

// Validate reports a descriptive error for structurally impossible jobs.
func (j *Job) Validate() error {
	switch {
	case j.ID <= 0:
		return fmt.Errorf("job %d: non-positive id", j.ID)
	case j.Size < 1:
		return fmt.Errorf("job %d: size %d < 1", j.ID, j.Size)
	case j.AllocSize < j.Size:
		return fmt.Errorf("job %d: alloc size %d < requested %d", j.ID, j.AllocSize, j.Size)
	case j.Estimate <= 0:
		return fmt.Errorf("job %d: estimate %g <= 0", j.ID, j.Estimate)
	case j.Actual <= 0:
		return fmt.Errorf("job %d: actual runtime %g <= 0", j.ID, j.Actual)
	case j.Arrival < 0:
		return fmt.Errorf("job %d: negative arrival %g", j.ID, j.Arrival)
	}
	return nil
}

func (j *Job) String() string {
	return fmt.Sprintf("job %d (s=%d alloc=%d t_e=%.0fs arr=%.0fs)",
		j.ID, j.Size, j.AllocSize, j.Estimate, j.Arrival)
}
