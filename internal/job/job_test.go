package job

import (
	"math/rand"
	"strings"
	"testing"
)

func validJob() *Job {
	return &Job{ID: 1, Arrival: 0, Size: 4, AllocSize: 4, Estimate: 100, Actual: 100}
}

func TestValidate(t *testing.T) {
	if err := validJob().Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Job)
	}{
		{"zero id", func(j *Job) { j.ID = 0 }},
		{"negative id", func(j *Job) { j.ID = -3 }},
		{"zero size", func(j *Job) { j.Size = 0 }},
		{"alloc below size", func(j *Job) { j.AllocSize = 3 }},
		{"zero estimate", func(j *Job) { j.Estimate = 0 }},
		{"zero actual", func(j *Job) { j.Actual = 0 }},
		{"negative arrival", func(j *Job) { j.Arrival = -1 }},
	}
	for _, tc := range cases {
		j := validJob()
		tc.mutate(j)
		if err := j.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid job %+v", tc.name, j)
		}
	}
}

func TestJobString(t *testing.T) {
	s := validJob().String()
	if !strings.Contains(s, "job 1") || !strings.Contains(s, "s=4") {
		t.Errorf("String = %q", s)
	}
}

func TestQueueFCFSOrder(t *testing.T) {
	q := NewQueue()
	q.Push(&Job{ID: 2, Arrival: 10})
	q.Push(&Job{ID: 1, Arrival: 5})
	q.Push(&Job{ID: 3, Arrival: 20})
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	if q.Peek().ID != 1 {
		t.Fatalf("Peek = %v, want job 1", q.Peek())
	}
	wantOrder := []ID{1, 2, 3}
	for i, want := range wantOrder {
		if q.At(i).ID != want {
			t.Fatalf("At(%d) = %d, want %d", i, q.At(i).ID, want)
		}
	}
}

func TestQueueTieBreakByID(t *testing.T) {
	q := NewQueue()
	q.Push(&Job{ID: 7, Arrival: 10})
	q.Push(&Job{ID: 4, Arrival: 10})
	if q.At(0).ID != 4 || q.At(1).ID != 7 {
		t.Fatalf("equal arrivals not ordered by id: %d, %d", q.At(0).ID, q.At(1).ID)
	}
}

func TestQueueRestartRegainsPriority(t *testing.T) {
	q := NewQueue()
	q.Push(&Job{ID: 1, Arrival: 0})
	q.Push(&Job{ID: 2, Arrival: 50})
	first := q.RemoveAt(0) // job 1 starts running
	if first.ID != 1 {
		t.Fatal("wrong head")
	}
	q.Push(&Job{ID: 3, Arrival: 100})
	// Job 1 is killed by a failure and re-enters with original arrival.
	q.Push(first)
	if q.Peek().ID != 1 {
		t.Fatalf("restarted job must head the queue, got %d", q.Peek().ID)
	}
}

func TestQueueRemove(t *testing.T) {
	q := NewQueue()
	for i := 1; i <= 5; i++ {
		q.Push(&Job{ID: ID(i), Arrival: float64(i)})
	}
	if !q.Remove(3) {
		t.Fatal("Remove(3) = false")
	}
	if q.Remove(3) {
		t.Fatal("Remove(3) twice = true")
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < q.Len(); i++ {
		if q.At(i).ID == 3 {
			t.Fatal("removed job still present")
		}
	}
}

func TestQueueRemoveMissing(t *testing.T) {
	q := NewQueue()
	if q.Remove(1) {
		t.Fatal("Remove on empty queue = true")
	}
	if q.Peek() != nil {
		t.Fatal("Peek on empty queue != nil")
	}
}

func TestQueueDemandNodes(t *testing.T) {
	q := NewQueue()
	if q.DemandNodes() != 0 {
		t.Fatal("empty queue demand != 0")
	}
	q.Push(&Job{ID: 1, Size: 3, AllocSize: 4})
	q.Push(&Job{ID: 2, Size: 5, AllocSize: 8})
	if got := q.DemandNodes(); got != 8 {
		t.Fatalf("DemandNodes = %d, want 8 (requested sizes)", got)
	}
}

func TestQueueJobsIsCopy(t *testing.T) {
	q := NewQueue()
	q.Push(&Job{ID: 1})
	jobs := q.Jobs()
	jobs[0] = nil
	if q.Peek() == nil {
		t.Fatal("mutating Jobs() result affected the queue")
	}
}

func TestQueueRandomisedOrderInvariant(t *testing.T) {
	q := NewQueue()
	rng := rand.New(rand.NewSource(11))
	for i := 1; i <= 500; i++ {
		q.Push(&Job{ID: ID(i), Arrival: float64(rng.Intn(100))})
		if rng.Intn(3) == 0 && q.Len() > 0 {
			q.RemoveAt(rng.Intn(q.Len()))
		}
		for k := 1; k < q.Len(); k++ {
			a, b := q.At(k-1), q.At(k)
			if a.Arrival > b.Arrival || (a.Arrival == b.Arrival && a.ID > b.ID) {
				t.Fatalf("queue order violated at %d: %v before %v", k, a, b)
			}
		}
	}
}
