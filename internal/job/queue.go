package job

import "sort"

// Queue is the scheduler's wait queue, ordered first-come first-served
// by (Arrival, ID). A job killed by a node failure re-enters the queue
// with its original arrival time, so it regains its FCFS priority
// rather than going to the back.
type Queue struct {
	jobs []*Job
}

// NewQueue returns an empty wait queue.
func NewQueue() *Queue { return &Queue{} }

// Len returns the number of waiting jobs.
func (q *Queue) Len() int { return len(q.jobs) }

// Push inserts j in FCFS position.
func (q *Queue) Push(j *Job) {
	i := sort.Search(len(q.jobs), func(i int) bool {
		a := q.jobs[i]
		if a.Arrival != j.Arrival {
			return a.Arrival > j.Arrival
		}
		return a.ID > j.ID
	})
	q.jobs = append(q.jobs, nil)
	copy(q.jobs[i+1:], q.jobs[i:])
	q.jobs[i] = j
}

// Peek returns the queue head (the oldest waiting job) without removing
// it, or nil if the queue is empty.
func (q *Queue) Peek() *Job {
	if len(q.jobs) == 0 {
		return nil
	}
	return q.jobs[0]
}

// At returns the i-th waiting job in FCFS order.
func (q *Queue) At(i int) *Job { return q.jobs[i] }

// RemoveAt removes and returns the i-th waiting job.
func (q *Queue) RemoveAt(i int) *Job {
	j := q.jobs[i]
	copy(q.jobs[i:], q.jobs[i+1:])
	q.jobs[len(q.jobs)-1] = nil
	q.jobs = q.jobs[:len(q.jobs)-1]
	return j
}

// Remove removes the job with the given id, reporting whether it was
// present.
func (q *Queue) Remove(id ID) bool {
	for i, j := range q.jobs {
		if j.ID == id {
			q.RemoveAt(i)
			return true
		}
	}
	return false
}

// DemandNodes returns the total number of nodes requested by waiting
// jobs — the q(t) of the paper's unused-capacity integral. The
// requested (not rounded-up) sizes are summed, matching the paper's
// definition in terms of job requests.
func (q *Queue) DemandNodes() int {
	total := 0
	for _, j := range q.jobs {
		total += j.Size
	}
	return total
}

// Jobs returns the waiting jobs in FCFS order. The slice is a copy; the
// jobs are shared.
func (q *Queue) Jobs() []*Job {
	out := make([]*Job, len(q.jobs))
	copy(out, q.jobs)
	return out
}
