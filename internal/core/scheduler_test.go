package core

import (
	"testing"

	"bgsched/internal/failure"
	"bgsched/internal/job"
	"bgsched/internal/partition"
	"bgsched/internal/predict"
	"bgsched/internal/torus"
)

func newTestScheduler(t *testing.T, mode BackfillMode) *Scheduler {
	t.Helper()
	s, err := NewScheduler(Config{Policy: Baseline{}, Backfill: mode})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler(Config{}); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := NewScheduler(Config{Policy: Baseline{}, Backfill: BackfillMode(9)}); err == nil {
		t.Error("bad backfill mode accepted")
	}
	s, err := NewScheduler(Config{Policy: Baseline{}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Config().Finder == nil {
		t.Error("default finder not installed")
	}
}

func TestBackfillModeString(t *testing.T) {
	for mode, want := range map[BackfillMode]string{
		BackfillNone: "none", BackfillAggressive: "aggressive", BackfillEASY: "easy",
	} {
		if mode.String() != want {
			t.Errorf("String(%d) = %q", int(mode), mode.String())
		}
	}
	if got := BackfillMode(7).String(); got != "BackfillMode(7)" {
		t.Errorf("unknown mode String = %q", got)
	}
}

func TestScheduleStartsFCFS(t *testing.T) {
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	q := job.NewQueue()
	q.Push(testJob(1, 64, 100))
	q.Push(testJob(2, 64, 100))
	q.Push(testJob(3, 64, 100)) // won't fit: machine holds only 128

	s := newTestScheduler(t, BackfillNone)
	ds, err := s.Schedule(gr, q, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("started %d jobs, want 2", len(ds))
	}
	if ds[0].Job.ID != 1 || ds[1].Job.ID != 2 {
		t.Fatalf("start order %d, %d", ds[0].Job.ID, ds[1].Job.ID)
	}
	if q.Len() != 1 || q.Peek().ID != 3 {
		t.Fatalf("queue after schedule: len=%d", q.Len())
	}
	if gr.FreeCount() != 0 {
		t.Fatalf("free count = %d, want 0", gr.FreeCount())
	}
	// Decisions' partitions must be allocated to the right owners.
	for _, d := range ds {
		for _, id := range g.Nodes(d.Part) {
			if gr.OwnerAt(id) != int64(d.Job.ID) {
				t.Fatalf("node %d owner = %d, want %d", id, gr.OwnerAt(id), d.Job.ID)
			}
		}
	}
}

func TestScheduleNoBackfillBlocksBehindHead(t *testing.T) {
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	// Occupy half the machine so a 128-node head cannot start.
	if err := gr.Allocate(torus.Partition{Base: torus.Coord{}, Shape: torus.Shape{X: 4, Y: 4, Z: 4}}, 99); err != nil {
		t.Fatal(err)
	}
	q := job.NewQueue()
	q.Push(testJob(1, 128, 100)) // blocked head
	q.Push(testJob(2, 1, 10))    // would fit

	s := newTestScheduler(t, BackfillNone)
	ds, err := s.Schedule(gr, q, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Fatalf("BackfillNone started %d jobs behind a blocked head", len(ds))
	}
}

func TestScheduleAggressiveBackfill(t *testing.T) {
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	if err := gr.Allocate(torus.Partition{Base: torus.Coord{}, Shape: torus.Shape{X: 4, Y: 4, Z: 4}}, 99); err != nil {
		t.Fatal(err)
	}
	q := job.NewQueue()
	q.Push(testJob(1, 128, 100))
	q.Push(testJob(2, 8, 10))
	q.Push(testJob(3, 8, 10))

	s := newTestScheduler(t, BackfillAggressive)
	ds, err := s.Schedule(gr, q, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("aggressive backfill started %d jobs, want 2", len(ds))
	}
	if q.Peek().ID != 1 {
		t.Fatal("head must remain queued")
	}
}

func TestScheduleEASYProtectsReservation(t *testing.T) {
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	// One running job holds half the machine until t=100.
	runningJob := testJob(50, 64, 100)
	part := torus.Partition{Base: torus.Coord{}, Shape: torus.Shape{X: 4, Y: 4, Z: 4}}
	if err := gr.Allocate(part, int64(runningJob.ID)); err != nil {
		t.Fatal(err)
	}
	running := []Running{{Job: runningJob, Part: part, Start: 0, ExpFinish: 100}}

	q := job.NewQueue()
	q.Push(testJob(1, 128, 1000)) // head: needs the whole machine, reserved at t=100
	longJob := testJob(2, 64, 1000)
	q.Push(longJob) // would finish way past the reservation and must overlap it

	s := newTestScheduler(t, BackfillEASY)
	ds, err := s.Schedule(gr, q, running, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Fatalf("EASY allowed a backfill that delays the head: %v", ds)
	}

	// A short job that finishes before t=100 is allowed.
	q2 := job.NewQueue()
	q2.Push(testJob(1, 128, 1000))
	q2.Push(testJob(3, 64, 50))
	ds, err = s.Schedule(gr, q2, running, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Job.ID != 3 {
		t.Fatalf("EASY rejected a safe backfill: %v", ds)
	}
}

func TestScheduleEASYDisjointBackfill(t *testing.T) {
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	// Running job holds a 4x4x2 slab (z in 0..1) until t=100.
	runningJob := testJob(50, 32, 100)
	part := torus.Partition{Base: torus.Coord{}, Shape: torus.Shape{X: 4, Y: 4, Z: 2}}
	if err := gr.Allocate(part, int64(runningJob.ID)); err != nil {
		t.Fatal(err)
	}
	running := []Running{{Job: runningJob, Part: part, Start: 0, ExpFinish: 100}}

	q := job.NewQueue()
	// Head needs 128 nodes; reservation at t=100 covering the machine.
	q.Push(testJob(1, 128, 1000))
	// A long small job cannot avoid the full-machine reservation and
	// cannot finish in time: must not start.
	q.Push(testJob(2, 8, 1000))
	s := newTestScheduler(t, BackfillEASY)
	ds, err := s.Schedule(gr, q, running, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Fatalf("backfill overlapped a full-machine reservation: %v", ds)
	}

	// Now a tighter scenario: occupy everything except the running slab
	// and the z=7 plane, so the head (32 nodes) only fits where the
	// running job sits; its reservation covers the slab, and a long
	// small job in the z=7 plane is disjoint from it and may backfill.
	gr2 := torus.NewGrid(g)
	if err := gr2.Allocate(torus.Partition{Base: torus.Coord{Z: 2}, Shape: torus.Shape{X: 4, Y: 4, Z: 5}}, 98); err != nil {
		t.Fatal(err)
	}
	// Free: z=0..1 slab (running) and z=7 plane (16 nodes).
	if err := gr2.Allocate(part, int64(runningJob.ID)); err != nil {
		t.Fatal(err)
	}
	qq := job.NewQueue()
	qq.Push(testJob(5, 32, 1000)) // head: only fits in the slab at t=100
	qq.Push(testJob(6, 8, 1000))  // long, but fits in the z=7 plane: disjoint from reservation
	ds, err = s.Schedule(gr2, qq, running, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Job.ID != 6 {
		t.Fatalf("disjoint long backfill should start: %v", ds)
	}
	for _, id := range g.Nodes(ds[0].Part) {
		c := g.CoordOf(id)
		if c.Z < 2 {
			t.Fatalf("backfill touched the reserved slab at %v", c)
		}
	}
}

// Aggressive backfill scans the queue in FCFS order: when two queued
// jobs compete for the same hole, the older one gets it.
func TestAggressiveBackfillFCFSOrder(t *testing.T) {
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	// 96 nodes busy; a 32-node hole remains.
	if err := gr.Allocate(torus.Partition{Base: torus.Coord{}, Shape: torus.Shape{X: 4, Y: 4, Z: 6}}, 99); err != nil {
		t.Fatal(err)
	}
	q := job.NewQueue()
	q.Push(testJob(1, 128, 100)) // blocked head
	older := testJob(2, 32, 100)
	older.Arrival = 10
	newer := testJob(3, 32, 100)
	newer.Arrival = 20
	q.Push(newer)
	q.Push(older)

	s := newTestScheduler(t, BackfillAggressive)
	ds, err := s.Schedule(gr, q, nil, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Job.ID != 2 {
		t.Fatalf("backfill order wrong: %v", ds)
	}
}

// The fault-aware window passed to the predictor is the job's
// remaining estimate from "now": a placement at time t for a job with
// estimate e must ignore failures after t+e.
func TestBalancingWindowEndsAtEstimate(t *testing.T) {
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	// Two symmetric candidate columns; one fails *after* the job would
	// complete. Balancing must treat both as equally safe and pick by
	// MFP order, i.e. not systematically avoid the late-failing one.
	for id := 0; id < g.N(); id++ {
		c := g.CoordOf(id)
		inA := c.X == 0 && c.Y == 0 && c.Z < 4
		inB := c.X == 2 && c.Y == 2 && c.Z < 4
		if !inA && !inB {
			if err := gr.Allocate(torus.Partition{Base: c, Shape: torus.Shape{X: 1, Y: 1, Z: 1}}, 99); err != nil {
				t.Fatal(err)
			}
		}
	}
	lateNode := g.Index(torus.Coord{X: 0, Y: 0, Z: 1})
	ix := failure.NewIndex(g.N(), failure.Trace{{Time: 5000, Node: lateNode}})
	pol := &Balancing{Prober: &predict.Balancing{Index: ix, Confidence: 0.9}}
	j := testJob(1, 4, 1000) // finishes at t=1000, long before the failure
	cands := partition.ShapeFinder{}.FreeOfSize(gr, 4)
	idx := mustChoose(t, pol, ctxFor(gr, j, 0), cands)
	// Both candidates have P_f = 0; the first (deterministic order)
	// must win, even though it contains the late-failing node.
	if idx != 0 {
		t.Fatalf("late failure outside the window influenced placement: chose %d", idx)
	}
}

func TestScheduleEmptyQueue(t *testing.T) {
	s := newTestScheduler(t, BackfillEASY)
	ds, err := s.Schedule(torus.NewGrid(torus.BlueGeneL()), job.NewQueue(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Fatal("empty queue produced decisions")
	}
}

func TestScheduleWithFaultAwarePolicies(t *testing.T) {
	// Smoke test: both fault-aware policies drive a full Schedule call.
	for _, pol := range []Policy{
		&Balancing{Prober: predict.Null{}},
		&TieBreak{Oracle: predict.Null{}},
	} {
		s, err := NewScheduler(Config{Policy: pol, Backfill: BackfillEASY})
		if err != nil {
			t.Fatal(err)
		}
		gr := torus.NewGrid(torus.BlueGeneL())
		q := job.NewQueue()
		q.Push(testJob(1, 32, 100))
		q.Push(testJob(2, 64, 100))
		ds, err := s.Schedule(gr, q, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(ds) != 2 {
			t.Fatalf("%s: started %d, want 2", pol.Name(), len(ds))
		}
	}
}

func TestMigrateCompacts(t *testing.T) {
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	s := newTestScheduler(t, BackfillNone)

	// Fragment: two 4x4x1 plane jobs at z=0 and z=4 split the free
	// space into two 4x4x3 regions (MFP 48). Migrating one plane next
	// to the other yields a 4x4x6 free block (MFP 96).
	j1, j2 := testJob(1, 16, 100), testJob(2, 16, 100)
	p1 := torus.Partition{Base: torus.Coord{Z: 0}, Shape: torus.Shape{X: 4, Y: 4, Z: 1}}
	p2 := torus.Partition{Base: torus.Coord{Z: 4}, Shape: torus.Shape{X: 4, Y: 4, Z: 1}}
	if err := gr.Allocate(p1, 1); err != nil {
		t.Fatal(err)
	}
	if err := gr.Allocate(p2, 2); err != nil {
		t.Fatal(err)
	}
	if _, mfp := partition.MaxFree(gr); mfp != 48 {
		t.Fatalf("precondition MFP = %d, want 48", mfp)
	}
	running := []Running{
		{Job: j1, Part: p1, Start: 0, ExpFinish: 100},
		{Job: j2, Part: p2, Start: 0, ExpFinish: 100},
	}
	moves, err := s.Migrate(gr, running)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Fatal("no migrations on a fragmented machine")
	}
	if _, mfp := partition.MaxFree(gr); mfp < 96 {
		t.Fatalf("post-migration MFP = %d, want >= 96", mfp)
	}
	// Grid must stay consistent: both jobs still hold their sizes.
	if gr.FreeCount() != 128-32 {
		t.Fatalf("free count = %d", gr.FreeCount())
	}
}

func TestMigrateNoopWhenCompact(t *testing.T) {
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	s := newTestScheduler(t, BackfillNone)
	j1 := testJob(1, 64, 100)
	p1 := torus.Partition{Base: torus.Coord{}, Shape: torus.Shape{X: 4, Y: 4, Z: 4}}
	if err := gr.Allocate(p1, 1); err != nil {
		t.Fatal(err)
	}
	moves, err := s.Migrate(gr, []Running{{Job: j1, Part: p1, Start: 0, ExpFinish: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Fatalf("compact layout migrated: %v", moves)
	}
}

func TestMigrateEmptyRunning(t *testing.T) {
	s := newTestScheduler(t, BackfillNone)
	moves, err := s.Migrate(torus.NewGrid(torus.BlueGeneL()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Fatal("migrations from nothing")
	}
}
