package core

import (
	"fmt"
	"sort"

	"bgsched/internal/torus"
)

// Migration is one job move produced by the compaction pass.
type Migration struct {
	JobIndex int // index into the running slice passed to Migrate
	From, To torus.Partition
}

// Migrate performs one greedy defragmentation pass in the spirit of
// Krevat's migration: running jobs are considered largest-first, and a
// job is moved when re-placing it strictly increases the machine's
// maximal free partition. In the paper's model migration is free (jobs
// are checkpointed and restarted elsewhere without cost); the simulator
// charges any configured overhead separately.
//
// The grid is updated in place; the returned migrations tell the caller
// how to update its running-job records.
func (s *Scheduler) Migrate(gr *torus.Grid, running []Running) ([]Migration, error) {
	order := make([]int, len(running))
	for i := range order {
		order[i] = i
	}
	// Largest jobs first: moving them frees the most contiguity.
	sort.Slice(order, func(a, b int) bool {
		ja, jb := running[order[a]].Job, running[order[b]].Job
		if ja.AllocSize != jb.AllocSize {
			return ja.AllocSize > jb.AllocSize
		}
		return ja.ID < jb.ID
	})

	var moves []Migration
	parts := make([]torus.Partition, len(running))
	for i, r := range running {
		parts[i] = r.Part
	}
	// Probe-only context: no MFPBefore/MFPPart, so every evaluation runs
	// the real probe (migration compares placements, not a fixed bound),
	// still through the scheduler's MFP cache.
	ctx := &PlacementContext{Grid: gr, MFP: s.mfp}
	for _, idx := range order {
		r := running[idx]
		owner := int64(r.Job.ID)
		orig := parts[idx]
		if err := gr.Release(orig, owner); err != nil {
			return moves, fmt.Errorf("core: migrate release: %w", err)
		}
		cands := s.cfg.Finder.FreeOfSize(gr, r.Job.AllocSize)
		bestIdx := -1
		bestMFP, err := mfpAfter(ctx, orig)
		if err != nil {
			return moves, fmt.Errorf("core: migrate probe: %w", err)
		}
		for i, p := range cands {
			if p == orig {
				continue
			}
			after, err := mfpAfter(ctx, p)
			if err != nil {
				return moves, fmt.Errorf("core: migrate probe: %w", err)
			}
			if after > bestMFP {
				bestMFP = after
				bestIdx = i
			}
		}
		target := orig
		if bestIdx >= 0 {
			target = cands[bestIdx]
			moves = append(moves, Migration{JobIndex: idx, From: orig, To: target})
			parts[idx] = target
		}
		if err := gr.Allocate(target, owner); err != nil {
			return moves, fmt.Errorf("core: migrate allocate: %w", err)
		}
	}
	return moves, nil
}
