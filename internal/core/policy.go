// Package core implements the paper's primary contribution: the job
// placement policies — Krevat's maximal-free-partition (MFP) heuristic,
// the fault-aware balancing algorithm (Section 5.2.1) and the
// tie-breaking algorithm (Section 5.2.2) — and the FCFS space-sharing
// scheduler with backfilling and migration they plug into.
package core

import (
	"fmt"

	"bgsched/internal/job"
	"bgsched/internal/partition"
	"bgsched/internal/predict"
	"bgsched/internal/torus"
)

// probeOwner marks hypothetical allocations while a policy evaluates a
// candidate placement. It never escapes a Choose call.
const probeOwner int64 = -1

// PlacementContext is everything a policy may consult when ranking
// candidate partitions for one job.
type PlacementContext struct {
	Grid      *torus.Grid
	Job       *job.Job
	Now       float64
	MFPBefore int // maximal free partition size before placing the job
	// MFPPart is a maximal free partition achieving MFPBefore (zero
	// Shape when unknown or the machine is full). When consistent with
	// MFPBefore it licenses the disjointness shortcut: placing a
	// candidate that does not touch MFPPart cannot shrink the MFP —
	// occupancy only grows, so the MFP cannot grow either, and MFPPart
	// itself stays free — hence MFP(after) == MFPBefore exactly,
	// without a probe.
	MFPPart torus.Partition
	// MFP, when non-nil, memoizes MaxFree content-addressed by
	// occupancy hash, so the probe evaluations that do run are O(1) on
	// state recurrences. Nil falls back to the uncached computation.
	MFP *partition.MFPCache

	// Policy scratch, reused across Choose calls by a scheduler that
	// reuses its context; policies must not let it escape.
	floats []float64
	ints   []int

	// maxParts lazily holds the complete set of maximal free
	// rectangles of Grid (see partition.MaxFreeAll), computed on first
	// use within one decision and reset by the scheduler between
	// decisions. A placement disjoint from any member provably keeps
	// the MFP at MFPBefore, so most probe evaluations reduce to
	// overlap checks.
	maxParts      []torus.Partition
	maxPartsValid bool
}

// maxRects returns the complete maximal-free-rectangle set for the
// context's grid, computing it once per decision.
func (ctx *PlacementContext) maxRects() []torus.Partition {
	if !ctx.maxPartsValid {
		ctx.maxParts, _ = ctx.MFP.MaxFreeAll(ctx.Grid, ctx.maxParts)
		ctx.maxPartsValid = true
	}
	return ctx.maxParts
}

// resetDecision invalidates per-decision lazy state; the scheduler
// calls it when re-priming the context for a new grid state.
func (ctx *PlacementContext) resetDecision() { ctx.maxPartsValid = false }

// Policy ranks candidate partitions for a job and picks one.
// Choose returns the index of the selected candidate, or -1 to decline
// placement (no built-in policy declines; the escape hatch exists for
// experimental policies). A non-nil error means the policy could not
// evaluate the candidates — typically an internal grid inconsistency —
// and aborts the scheduling decision; it must leave the grid unchanged.
type Policy interface {
	Name() string
	Choose(ctx *PlacementContext, cands []torus.Partition) (int, error)
}

// mfpShortcut reports whether the context carries a maximal free
// partition consistent with MFPBefore, enabling the disjointness
// shortcut in mfpAfter.
func (ctx *PlacementContext) mfpShortcut() bool {
	return ctx.MFPBefore > 0 && ctx.MFPPart.Shape.Size() == ctx.MFPBefore
}

// mfpAfter returns the MFP size of the grid with p hypothetically
// allocated. When the context's MFPPart is consistent and p does not
// overlap it, the answer is MFPBefore with no grid mutation at all —
// the common case once the machine fragments. Otherwise the probe
// allocation runs and is always rolled back (the allocate + release
// pair restores the occupancy hash, which is what lets the MFP cache
// and the finder caches survive probing). A failed probe means internal
// inconsistency (candidates come from a finder over this same grid),
// reported as an error rather than a panic so one bad sweep point
// cannot take down its siblings.
func mfpAfter(ctx *PlacementContext, p torus.Partition) (int, error) {
	gr := ctx.Grid
	if ctx.mfpShortcut() {
		g := gr.Geometry()
		if !g.Overlaps(p, ctx.MFPPart) {
			return ctx.MFPBefore, nil
		}
		// Exact, not heuristic: after == MFPBefore iff p is disjoint
		// from at least one maximal free rectangle (that rectangle
		// stays free; conversely a surviving MFP-sized rectangle was
		// already maximal). Only placements cutting into every maximal
		// rectangle still need a real evaluation.
		for _, m := range ctx.maxRects() {
			if !g.Overlaps(p, m) {
				return ctx.MFPBefore, nil
			}
		}
	}
	if ctx.MFP != nil {
		// The cached path never mutates the grid: validity is checked up
		// front (the same conditions Allocate enforces) and the MFP of
		// the hypothetical state comes from the probe overlay, keyed by
		// the exact hash a real allocation would produce.
		if !gr.Geometry().ValidPartition(p) || !gr.PartitionFree(p) {
			return 0, fmt.Errorf("core: probe allocation of %v failed: partition invalid or not free", p)
		}
		_, size := ctx.MFP.MaxFreeProbe(gr, p)
		return size, nil
	}
	if err := gr.Allocate(p, probeOwner); err != nil {
		return 0, fmt.Errorf("core: probe allocation of %v failed: %w", p, err)
	}
	_, size := partition.MaxFree(gr)
	if err := gr.Release(p, probeOwner); err != nil {
		return 0, fmt.Errorf("core: probe release of %v failed: %w", p, err)
	}
	return size, nil
}

// Baseline is Krevat's placement heuristic: keep the maximal free
// partition as large as possible, i.e. minimise
// L_MFP = MFP(before) - MFP(after). Ties break to the first candidate
// in the finder's deterministic order.
type Baseline struct{}

// Name implements Policy.
func (Baseline) Name() string { return "baseline" }

// Choose implements Policy. The scan stops at the first candidate whose
// after-MFP equals MFPBefore: the MFP can never grow under an
// allocation, so no later candidate can beat it, and ties already break
// to the earliest index — the selection is identical to the full scan.
func (Baseline) Choose(ctx *PlacementContext, cands []torus.Partition) (int, error) {
	bound := ctx.mfpShortcut()
	best := -1
	bestMFP := -1
	for i, p := range cands {
		after, err := mfpAfter(ctx, p)
		if err != nil {
			return -1, err
		}
		if after > bestMFP {
			bestMFP = after
			best = i
			if bound && after == ctx.MFPBefore {
				break
			}
		}
	}
	return best, nil
}

// Combiner folds per-node failure probabilities into a partition
// failure probability P_f.
type Combiner func([]float64) float64

// PartitionFailProb evaluates P_f for partition p over the window
// (now, until] under the given node prober and combiner.
func PartitionFailProb(g torus.Geometry, prober predict.NodeProber, p torus.Partition, now, until float64, combine Combiner) float64 {
	return partitionFailProbInto(nil, g, prober, p, now, until, combine)
}

// partitionFailProbInto is PartitionFailProb gathering node
// probabilities into a caller-owned buffer so repeated evaluations do
// not allocate. probs only needs capacity; it is truncated first.
func partitionFailProbInto(probs []float64, g torus.Geometry, prober predict.NodeProber, p torus.Partition, now, until float64, combine Combiner) float64 {
	probs = probs[:0]
	g.ForEachNode(p, func(id int) bool {
		probs = append(probs, prober.NodeFailProb(id, now, until))
		return true
	})
	return combine(probs)
}

// Balancing is the paper's balancing algorithm: minimise the total
// expected loss E_loss = L_MFP + L_PF, where L_MFP is the free space
// consumed from the maximal free partition and L_PF = P_f * s_j is the
// expected work lost if the partition fails before the job completes
// (the job is assumed to fail just before completion; Section 5.2.1).
type Balancing struct {
	Prober predict.NodeProber
	// Combine folds node probabilities into P_f. Defaults to
	// predict.CombineIndependent (the Section 5.2.1 product formula);
	// predict.CombineMax gives the Section 4.1 variant.
	Combine Combiner
}

// Name implements Policy.
func (b *Balancing) Name() string { return "balancing" }

// Choose implements Policy.
func (b *Balancing) Choose(ctx *PlacementContext, cands []torus.Partition) (int, error) {
	combine := b.Combine
	if combine == nil {
		combine = predict.CombineIndependent
	}
	g := ctx.Grid.Geometry()
	until := ctx.Now + ctx.Job.Estimate
	if cap(ctx.floats) < ctx.Job.AllocSize {
		ctx.floats = make([]float64, 0, ctx.Job.AllocSize)
	}
	best := -1
	bestLoss := 0.0
	for i, p := range cands {
		after, err := mfpAfter(ctx, p)
		if err != nil {
			return -1, err
		}
		lMFP := float64(ctx.MFPBefore - after)
		pf := partitionFailProbInto(ctx.floats, g, b.Prober, p, ctx.Now, until, combine)
		loss := lMFP + pf*float64(ctx.Job.Size)
		if best == -1 || loss < bestLoss {
			best = i
			bestLoss = loss
		}
	}
	return best, nil
}

// TieBreak is the paper's tie-breaking algorithm: rank candidates by
// the baseline MFP heuristic, and among the candidates tied at the
// optimal MFP prefer one the tie-breaking predictor expects to survive
// the job. If every tied candidate is predicted to fail, the choice is
// arbitrary (the first; Section 4.2).
type TieBreak struct {
	Oracle predict.PartitionOracle
}

// Name implements Policy.
func (tb *TieBreak) Name() string { return "tiebreak" }

// Choose implements Policy.
func (tb *TieBreak) Choose(ctx *PlacementContext, cands []torus.Partition) (int, error) {
	if len(cands) == 0 {
		return -1, nil
	}
	g := ctx.Grid.Geometry()
	until := ctx.Now + ctx.Job.Estimate

	bestMFP := -1
	if cap(ctx.ints) < len(cands) {
		ctx.ints = make([]int, len(cands))
	}
	afters := ctx.ints[:len(cands)]
	for i, p := range cands {
		after, err := mfpAfter(ctx, p)
		if err != nil {
			return -1, err
		}
		afters[i] = after
		if afters[i] > bestMFP {
			bestMFP = afters[i]
		}
	}
	first := -1
	for i, p := range cands {
		if afters[i] != bestMFP {
			continue
		}
		if first == -1 {
			first = i
		}
		if !tb.Oracle.PartitionWillFail(g.Nodes(p), ctx.Now, until) {
			return i, nil // tied on MFP and predicted healthy
		}
	}
	return first, nil // all tied candidates predicted to fail: arbitrary
}

var (
	_ Policy = Baseline{}
	_ Policy = (*Balancing)(nil)
	_ Policy = (*TieBreak)(nil)
)
