// Package core implements the paper's primary contribution: the job
// placement policies — Krevat's maximal-free-partition (MFP) heuristic,
// the fault-aware balancing algorithm (Section 5.2.1) and the
// tie-breaking algorithm (Section 5.2.2) — and the FCFS space-sharing
// scheduler with backfilling and migration they plug into.
package core

import (
	"fmt"

	"bgsched/internal/job"
	"bgsched/internal/partition"
	"bgsched/internal/predict"
	"bgsched/internal/torus"
)

// probeOwner marks hypothetical allocations while a policy evaluates a
// candidate placement. It never escapes a Choose call.
const probeOwner int64 = -1

// PlacementContext is everything a policy may consult when ranking
// candidate partitions for one job.
type PlacementContext struct {
	Grid      *torus.Grid
	Job       *job.Job
	Now       float64
	MFPBefore int // maximal free partition size before placing the job
}

// Policy ranks candidate partitions for a job and picks one.
// Choose returns the index of the selected candidate, or -1 to decline
// placement (no built-in policy declines; the escape hatch exists for
// experimental policies). A non-nil error means the policy could not
// evaluate the candidates — typically an internal grid inconsistency —
// and aborts the scheduling decision; it must leave the grid unchanged.
type Policy interface {
	Name() string
	Choose(ctx *PlacementContext, cands []torus.Partition) (int, error)
}

// mfpAfter returns the MFP size of the grid with p hypothetically
// allocated. The probe allocation is always rolled back. A failed
// probe means internal inconsistency (candidates come from a finder
// over this same grid), reported as an error rather than a panic so
// one bad sweep point cannot take down its siblings.
func mfpAfter(gr *torus.Grid, p torus.Partition) (int, error) {
	if err := gr.Allocate(p, probeOwner); err != nil {
		return 0, fmt.Errorf("core: probe allocation of %v failed: %w", p, err)
	}
	_, size := partition.MaxFree(gr)
	if err := gr.Release(p, probeOwner); err != nil {
		return 0, fmt.Errorf("core: probe release of %v failed: %w", p, err)
	}
	return size, nil
}

// Baseline is Krevat's placement heuristic: keep the maximal free
// partition as large as possible, i.e. minimise
// L_MFP = MFP(before) - MFP(after). Ties break to the first candidate
// in the finder's deterministic order.
type Baseline struct{}

// Name implements Policy.
func (Baseline) Name() string { return "baseline" }

// Choose implements Policy.
func (Baseline) Choose(ctx *PlacementContext, cands []torus.Partition) (int, error) {
	best := -1
	bestMFP := -1
	for i, p := range cands {
		after, err := mfpAfter(ctx.Grid, p)
		if err != nil {
			return -1, err
		}
		if after > bestMFP {
			bestMFP = after
			best = i
		}
	}
	return best, nil
}

// Combiner folds per-node failure probabilities into a partition
// failure probability P_f.
type Combiner func([]float64) float64

// PartitionFailProb evaluates P_f for partition p over the window
// (now, until] under the given node prober and combiner.
func PartitionFailProb(g torus.Geometry, prober predict.NodeProber, p torus.Partition, now, until float64, combine Combiner) float64 {
	probs := make([]float64, 0, p.Size())
	g.ForEachNode(p, func(id int) bool {
		probs = append(probs, prober.NodeFailProb(id, now, until))
		return true
	})
	return combine(probs)
}

// Balancing is the paper's balancing algorithm: minimise the total
// expected loss E_loss = L_MFP + L_PF, where L_MFP is the free space
// consumed from the maximal free partition and L_PF = P_f * s_j is the
// expected work lost if the partition fails before the job completes
// (the job is assumed to fail just before completion; Section 5.2.1).
type Balancing struct {
	Prober predict.NodeProber
	// Combine folds node probabilities into P_f. Defaults to
	// predict.CombineIndependent (the Section 5.2.1 product formula);
	// predict.CombineMax gives the Section 4.1 variant.
	Combine Combiner
}

// Name implements Policy.
func (b *Balancing) Name() string { return "balancing" }

// Choose implements Policy.
func (b *Balancing) Choose(ctx *PlacementContext, cands []torus.Partition) (int, error) {
	combine := b.Combine
	if combine == nil {
		combine = predict.CombineIndependent
	}
	g := ctx.Grid.Geometry()
	until := ctx.Now + ctx.Job.Estimate
	best := -1
	bestLoss := 0.0
	for i, p := range cands {
		after, err := mfpAfter(ctx.Grid, p)
		if err != nil {
			return -1, err
		}
		lMFP := float64(ctx.MFPBefore - after)
		pf := PartitionFailProb(g, b.Prober, p, ctx.Now, until, combine)
		loss := lMFP + pf*float64(ctx.Job.Size)
		if best == -1 || loss < bestLoss {
			best = i
			bestLoss = loss
		}
	}
	return best, nil
}

// TieBreak is the paper's tie-breaking algorithm: rank candidates by
// the baseline MFP heuristic, and among the candidates tied at the
// optimal MFP prefer one the tie-breaking predictor expects to survive
// the job. If every tied candidate is predicted to fail, the choice is
// arbitrary (the first; Section 4.2).
type TieBreak struct {
	Oracle predict.PartitionOracle
}

// Name implements Policy.
func (tb *TieBreak) Name() string { return "tiebreak" }

// Choose implements Policy.
func (tb *TieBreak) Choose(ctx *PlacementContext, cands []torus.Partition) (int, error) {
	if len(cands) == 0 {
		return -1, nil
	}
	g := ctx.Grid.Geometry()
	until := ctx.Now + ctx.Job.Estimate

	bestMFP := -1
	afters := make([]int, len(cands))
	for i, p := range cands {
		after, err := mfpAfter(ctx.Grid, p)
		if err != nil {
			return -1, err
		}
		afters[i] = after
		if afters[i] > bestMFP {
			bestMFP = afters[i]
		}
	}
	first := -1
	for i, p := range cands {
		if afters[i] != bestMFP {
			continue
		}
		if first == -1 {
			first = i
		}
		if !tb.Oracle.PartitionWillFail(g.Nodes(p), ctx.Now, until) {
			return i, nil // tied on MFP and predicted healthy
		}
	}
	return first, nil // all tied candidates predicted to fail: arbitrary
}

var (
	_ Policy = Baseline{}
	_ Policy = (*Balancing)(nil)
	_ Policy = (*TieBreak)(nil)
)
