package core

import (
	"fmt"
	"math"
	"sort"

	"bgsched/internal/job"
	"bgsched/internal/partition"
	"bgsched/internal/telemetry"
	"bgsched/internal/torus"
)

// BackfillMode selects how the scheduler fills around a blocked queue
// head.
type BackfillMode int

const (
	// BackfillNone: strict FCFS; nothing runs ahead of the head.
	BackfillNone BackfillMode = iota
	// BackfillAggressive: any queued job that fits starts immediately,
	// with no reservation protecting the head (can delay it).
	BackfillAggressive
	// BackfillEASY: the head receives a reservation (time and
	// partition) computed from the estimated completions of running
	// jobs; a later job may start only if it will finish before the
	// reservation time or does not intersect the reserved partition.
	BackfillEASY
)

// String implements fmt.Stringer.
func (m BackfillMode) String() string {
	switch m {
	case BackfillNone:
		return "none"
	case BackfillAggressive:
		return "aggressive"
	case BackfillEASY:
		return "easy"
	}
	return fmt.Sprintf("BackfillMode(%d)", int(m))
}

// Config assembles a scheduler.
type Config struct {
	Policy   Policy
	Finder   partition.Finder // nil defaults to the shape finder
	Backfill BackfillMode
	// Migration enables the compaction pass (Krevat's migration):
	// after releases, running jobs may be moved to defragment the
	// torus. The paper's model migrates without cost.
	Migration bool
	// Telemetry, when non-nil, receives per-decision instrumentation
	// ("sched.*" instruments; see NewScheduler). A nil registry
	// disables collection with no other behaviour change.
	Telemetry *telemetry.Registry
}

// schedMetrics holds the scheduler's instruments, resolved once at
// construction. With a nil registry every field is a nil handle and
// all recording is a no-op.
type schedMetrics struct {
	decision          *telemetry.Timer     // sched.decision.seconds: one Schedule call
	startsFCFS        *telemetry.Counter   // sched.starts.fcfs
	startsBackfill    *telemetry.Counter   // sched.starts.backfill
	backfillAttempts  *telemetry.Counter   // sched.backfill.attempts
	backfillSuccesses *telemetry.Counter   // sched.backfill.successes
	reservations      *telemetry.Counter   // sched.reservations.computed
	reservationDrain  *telemetry.Histogram // sched.reservations.drain_depth: releases simulated until the head fits
}

func newSchedMetrics(reg *telemetry.Registry) schedMetrics {
	return schedMetrics{
		decision:          reg.Timer("sched.decision.seconds"),
		startsFCFS:        reg.Counter("sched.starts.fcfs"),
		startsBackfill:    reg.Counter("sched.starts.backfill"),
		backfillAttempts:  reg.Counter("sched.backfill.attempts"),
		backfillSuccesses: reg.Counter("sched.backfill.successes"),
		reservations:      reg.Counter("sched.reservations.computed"),
		reservationDrain:  reg.Histogram("sched.reservations.drain_depth"),
	}
}

// Running describes a job currently executing, as the scheduler sees
// it. ExpFinish is the simulator's estimate of when its partition
// frees (start + estimated execution time).
type Running struct {
	Job       *job.Job
	Part      torus.Partition
	Start     float64
	ExpFinish float64
}

// Decision is one job start issued by Schedule. The partition has
// already been allocated on the grid when the decision is returned.
type Decision struct {
	Job  *job.Job
	Part torus.Partition
}

// Scheduler implements the paper's FCFS space-sharing scheduler: at
// every scheduling point it starts the queue head whenever any
// partition of the job's size is free, placing it according to the
// configured policy, and then backfills per the configured mode.
type Scheduler struct {
	cfg Config
	met schedMetrics
}

// NewScheduler validates the configuration and returns a scheduler.
func NewScheduler(cfg Config) (*Scheduler, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("core: Config.Policy is required")
	}
	if cfg.Finder == nil {
		cfg.Finder = partition.Instrumented(partition.ShapeFinder{}, cfg.Telemetry)
	}
	switch cfg.Backfill {
	case BackfillNone, BackfillAggressive, BackfillEASY:
	default:
		return nil, fmt.Errorf("core: unknown backfill mode %d", int(cfg.Backfill))
	}
	return &Scheduler{cfg: cfg, met: newSchedMetrics(cfg.Telemetry)}, nil
}

// Config returns the scheduler's configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Schedule starts as many queued jobs as the policy and backfill mode
// allow at time now. It allocates partitions on gr, removes started
// jobs from q, and returns the start decisions in order. running lists
// the currently executing jobs (used by EASY reservations).
func (s *Scheduler) Schedule(gr *torus.Grid, q *job.Queue, running []Running, now float64) ([]Decision, error) {
	sw := s.met.decision.Start()
	defer sw.Stop()
	var started []Decision

	// Phase 1: strict FCFS from the head.
	for q.Len() > 0 {
		head := q.Peek()
		d, ok, err := s.tryStart(gr, head, now)
		if err != nil {
			return started, err
		}
		if !ok {
			break
		}
		q.RemoveAt(0)
		started = append(started, d)
		s.met.startsFCFS.Inc()
	}
	if q.Len() == 0 || s.cfg.Backfill == BackfillNone {
		return started, nil
	}

	// Phase 2: backfill around the blocked head.
	switch s.cfg.Backfill {
	case BackfillAggressive:
		// Scan the rest of the queue in FCFS order; anything that fits
		// starts now.
		for i := 1; i < q.Len(); {
			j := q.At(i)
			s.met.backfillAttempts.Inc()
			d, ok, err := s.tryStart(gr, j, now)
			if err != nil {
				return started, err
			}
			if !ok {
				i++
				continue
			}
			q.RemoveAt(i)
			started = append(started, d)
			s.met.backfillSuccesses.Inc()
			s.met.startsBackfill.Inc()
		}
	case BackfillEASY:
		res, err := s.reservation(gr, q.Peek(), append(running, runningFrom(started, now)...), now)
		if err != nil {
			return started, err
		}
		for i := 1; i < q.Len(); {
			j := q.At(i)
			s.met.backfillAttempts.Inc()
			d, ok, err := s.tryBackfill(gr, j, now, res)
			if err != nil {
				return started, err
			}
			if !ok {
				i++
				continue
			}
			q.RemoveAt(i)
			started = append(started, d)
			s.met.backfillSuccesses.Inc()
			s.met.startsBackfill.Inc()
		}
	}
	return started, nil
}

// runningFrom views this call's fresh decisions as running jobs so the
// EASY reservation accounts for them.
func runningFrom(ds []Decision, now float64) []Running {
	rs := make([]Running, len(ds))
	for i, d := range ds {
		rs[i] = Running{Job: d.Job, Part: d.Part, Start: now, ExpFinish: now + d.Job.Estimate}
	}
	return rs
}

// preferPlacement gives a placement-searching finder (partition.Placer,
// e.g. the annealing finder) its say: the candidate it picks is swapped
// to the front of the slice. Every policy tie-breaks toward the first
// candidate, so this changes the decision only among policy-equal
// candidates — the legal set is exactly what the finder returned.
// Finders hand out fresh slices, so the in-place swap is safe.
func (s *Scheduler) preferPlacement(gr *torus.Grid, cands []torus.Partition) {
	pl, ok := s.cfg.Finder.(partition.Placer)
	if !ok || len(cands) < 2 {
		return
	}
	if k := pl.Place(gr, cands); k > 0 && k < len(cands) {
		cands[0], cands[k] = cands[k], cands[0]
	}
}

// tryStart attempts to place j now; on success the partition is
// allocated and the decision returned.
func (s *Scheduler) tryStart(gr *torus.Grid, j *job.Job, now float64) (Decision, bool, error) {
	cands := s.cfg.Finder.FreeOfSize(gr, j.AllocSize)
	if len(cands) == 0 {
		return Decision{}, false, nil
	}
	s.preferPlacement(gr, cands)
	_, mfp := partition.MaxFree(gr)
	ctx := &PlacementContext{Grid: gr, Job: j, Now: now, MFPBefore: mfp}
	idx, err := s.cfg.Policy.Choose(ctx, cands)
	if err != nil {
		return Decision{}, false, fmt.Errorf("core: policy %s: %w", s.cfg.Policy.Name(), err)
	}
	if idx < 0 {
		return Decision{}, false, nil
	}
	if idx >= len(cands) {
		return Decision{}, false, fmt.Errorf("core: policy %s chose index %d of %d candidates",
			s.cfg.Policy.Name(), idx, len(cands))
	}
	p := cands[idx]
	if err := gr.Allocate(p, int64(j.ID)); err != nil {
		return Decision{}, false, fmt.Errorf("core: start %v: %w", j, err)
	}
	return Decision{Job: j, Part: p}, true, nil
}

// reservationState describes the EASY guarantee for the queue head: it
// will start no later than Time on partition Part.
type reservationState struct {
	Time float64
	Part torus.Partition
	// ok distinguishes a real reservation from the degenerate case
	// where none could be computed (then only finish-before-Time
	// backfills with Time = +Inf are allowed, i.e. everything).
	ok bool
}

// reservation simulates the estimated completions of running jobs on a
// scratch grid to find the earliest time the head job fits, and the
// partition it would then occupy.
func (s *Scheduler) reservation(gr *torus.Grid, head *job.Job, running []Running, now float64) (reservationState, error) {
	s.met.reservations.Inc()
	scratch := gr.Clone()
	byFinish := make([]Running, len(running))
	copy(byFinish, running)
	sort.Slice(byFinish, func(i, j int) bool { return byFinish[i].ExpFinish < byFinish[j].ExpFinish })

	check := func(t float64) (reservationState, bool, error) {
		cands := s.cfg.Finder.FreeOfSize(scratch, head.AllocSize)
		if len(cands) == 0 {
			return reservationState{}, false, nil
		}
		s.preferPlacement(scratch, cands)
		_, mfp := partition.MaxFree(scratch)
		ctx := &PlacementContext{Grid: scratch, Job: head, Now: t, MFPBefore: mfp}
		idx, err := s.cfg.Policy.Choose(ctx, cands)
		if err != nil {
			return reservationState{}, false, fmt.Errorf("core: reservation policy %s: %w", s.cfg.Policy.Name(), err)
		}
		if idx < 0 || idx >= len(cands) {
			idx = 0
		}
		return reservationState{Time: t, Part: cands[idx], ok: true}, true, nil
	}

	for i, r := range byFinish {
		if err := scratch.Release(r.Part, int64(r.Job.ID)); err != nil {
			return reservationState{}, fmt.Errorf("core: reservation: %w", err)
		}
		res, ok, err := check(math.Max(r.ExpFinish, now))
		if err != nil {
			return reservationState{}, err
		}
		if ok {
			s.met.reservationDrain.Observe(float64(i + 1))
			return res, nil
		}
	}
	// Head cannot fit even on the drained machine (possible only if its
	// allocation exceeds machine capacity, which upstream validation
	// prevents). Degenerate reservation: no constraint.
	return reservationState{Time: math.Inf(1), ok: false}, nil
}

// tryBackfill starts j now if doing so cannot delay the reserved head
// start: either j is estimated to finish before the reservation time,
// or its partition does not intersect the reserved partition.
func (s *Scheduler) tryBackfill(gr *torus.Grid, j *job.Job, now float64, res reservationState) (Decision, bool, error) {
	cands := s.cfg.Finder.FreeOfSize(gr, j.AllocSize)
	if len(cands) == 0 {
		return Decision{}, false, nil
	}
	finishesInTime := now+j.Estimate <= res.Time
	if !finishesInTime && res.ok {
		g := gr.Geometry()
		filtered := cands[:0:0]
		for _, p := range cands {
			if !g.Overlaps(p, res.Part) {
				filtered = append(filtered, p)
			}
		}
		cands = filtered
		if len(cands) == 0 {
			return Decision{}, false, nil
		}
	}
	s.preferPlacement(gr, cands)
	_, mfp := partition.MaxFree(gr)
	ctx := &PlacementContext{Grid: gr, Job: j, Now: now, MFPBefore: mfp}
	idx, err := s.cfg.Policy.Choose(ctx, cands)
	if err != nil {
		return Decision{}, false, fmt.Errorf("core: backfill policy %s: %w", s.cfg.Policy.Name(), err)
	}
	if idx < 0 {
		return Decision{}, false, nil
	}
	if idx >= len(cands) {
		return Decision{}, false, fmt.Errorf("core: policy %s chose index %d of %d candidates",
			s.cfg.Policy.Name(), idx, len(cands))
	}
	p := cands[idx]
	if err := gr.Allocate(p, int64(j.ID)); err != nil {
		return Decision{}, false, fmt.Errorf("core: backfill %v: %w", j, err)
	}
	return Decision{Job: j, Part: p}, true, nil
}
