package core

import (
	"fmt"
	"math"
	"sort"

	"bgsched/internal/job"
	"bgsched/internal/partition"
	"bgsched/internal/telemetry"
	"bgsched/internal/torus"
)

// BackfillMode selects how the scheduler fills around a blocked queue
// head.
type BackfillMode int

const (
	// BackfillNone: strict FCFS; nothing runs ahead of the head.
	BackfillNone BackfillMode = iota
	// BackfillAggressive: any queued job that fits starts immediately,
	// with no reservation protecting the head (can delay it).
	BackfillAggressive
	// BackfillEASY: the head receives a reservation (time and
	// partition) computed from the estimated completions of running
	// jobs; a later job may start only if it will finish before the
	// reservation time or does not intersect the reserved partition.
	BackfillEASY
)

// String implements fmt.Stringer.
func (m BackfillMode) String() string {
	switch m {
	case BackfillNone:
		return "none"
	case BackfillAggressive:
		return "aggressive"
	case BackfillEASY:
		return "easy"
	}
	return fmt.Sprintf("BackfillMode(%d)", int(m))
}

// Config assembles a scheduler.
type Config struct {
	Policy   Policy
	Finder   partition.Finder // nil defaults to the shape finder
	Backfill BackfillMode
	// Migration enables the compaction pass (Krevat's migration):
	// after releases, running jobs may be moved to defragment the
	// torus. The paper's model migrates without cost.
	Migration bool
	// Telemetry, when non-nil, receives per-decision instrumentation
	// ("sched.*" instruments; see NewScheduler). A nil registry
	// disables collection with no other behaviour change.
	Telemetry *telemetry.Registry
}

// schedMetrics holds the scheduler's instruments, resolved once at
// construction. With a nil registry every field is a nil handle and
// all recording is a no-op.
type schedMetrics struct {
	decision          *telemetry.Timer     // sched.decision.seconds: one Schedule call
	startsFCFS        *telemetry.Counter   // sched.starts.fcfs
	startsBackfill    *telemetry.Counter   // sched.starts.backfill
	backfillAttempts  *telemetry.Counter   // sched.backfill.attempts
	backfillSuccesses *telemetry.Counter   // sched.backfill.successes
	reservations      *telemetry.Counter   // sched.reservations.computed
	reservationDrain  *telemetry.Histogram // sched.reservations.drain_depth: releases simulated until the head fits
}

func newSchedMetrics(reg *telemetry.Registry) schedMetrics {
	return schedMetrics{
		decision:          reg.Timer("sched.decision.seconds"),
		startsFCFS:        reg.Counter("sched.starts.fcfs"),
		startsBackfill:    reg.Counter("sched.starts.backfill"),
		backfillAttempts:  reg.Counter("sched.backfill.attempts"),
		backfillSuccesses: reg.Counter("sched.backfill.successes"),
		reservations:      reg.Counter("sched.reservations.computed"),
		reservationDrain:  reg.Histogram("sched.reservations.drain_depth"),
	}
}

// Running describes a job currently executing, as the scheduler sees
// it. ExpFinish is the simulator's estimate of when its partition
// frees (start + estimated execution time).
type Running struct {
	Job       *job.Job
	Part      torus.Partition
	Start     float64
	ExpFinish float64
}

// Decision is one job start issued by Schedule. The partition has
// already been allocated on the grid when the decision is returned.
type Decision struct {
	Job  *job.Job
	Part torus.Partition
}

// Scheduler implements the paper's FCFS space-sharing scheduler: at
// every scheduling point it starts the queue head whenever any
// partition of the job's size is free, placing it according to the
// configured policy, and then backfills per the configured mode.
//
// The scheduler owns every buffer its decision loop needs — candidate
// lists, the placement context, the EASY reservation's running-set and
// scratch grid, the returned decision slice — plus a content-addressed
// MFP cache, so a steady-state Schedule call performs no heap
// allocations. The reuse is invisible in behaviour: decisions are
// byte-identical to the allocate-per-call implementation. A Scheduler
// is consequently not safe for concurrent use (it never was; the
// simulator's event loop is single-threaded).
type Scheduler struct {
	cfg Config
	met schedMetrics

	mfp      *partition.MFPCache
	ctx      PlacementContext   // reused placement context
	cands    []torus.Partition  // candidate buffer for tryStart/tryBackfill
	resCands []torus.Partition  // candidate buffer for reservation probes
	started  []Decision         // returned by Schedule; valid until the next call
	resRun   []Running          // running ∪ fresh starts, for the reservation
	scratch  *torus.Grid        // reservation scratch (stable identity)
	sorter   runningByExpFinish // reusable sort.Interface for the drain order
}

// runningByExpFinish sorts a Running slice by expected finish time.
// Using sort.Sort on a pointer receiver (instead of sort.Slice, whose
// reflect-based swapper allocates per call) keeps reservations
// allocation-free; both entry points run the same pdqsort, so the
// permutation — including the treatment of equal keys — is unchanged.
type runningByExpFinish struct{ rs []Running }

func (s *runningByExpFinish) Len() int           { return len(s.rs) }
func (s *runningByExpFinish) Less(i, j int) bool { return s.rs[i].ExpFinish < s.rs[j].ExpFinish }
func (s *runningByExpFinish) Swap(i, j int)      { s.rs[i], s.rs[j] = s.rs[j], s.rs[i] }

// NewScheduler validates the configuration and returns a scheduler.
func NewScheduler(cfg Config) (*Scheduler, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("core: Config.Policy is required")
	}
	if cfg.Finder == nil {
		cfg.Finder = partition.Instrumented(partition.ShapeFinder{}, cfg.Telemetry)
	}
	switch cfg.Backfill {
	case BackfillNone, BackfillAggressive, BackfillEASY:
	default:
		return nil, fmt.Errorf("core: unknown backfill mode %d", int(cfg.Backfill))
	}
	return &Scheduler{
		cfg: cfg,
		met: newSchedMetrics(cfg.Telemetry),
		mfp: partition.NewMFPCache(16384),
	}, nil
}

// freeOfSize queries the finder into buf when it supports buffered
// queries, falling back to the allocating interface otherwise. The
// returned slice must be treated as owned by the caller of freeOfSize
// either way (buffered finders fill buf; plain finders hand out fresh
// slices).
func (s *Scheduler) freeOfSize(gr *torus.Grid, size int, buf *[]torus.Partition) []torus.Partition {
	if bf, ok := s.cfg.Finder.(partition.BufferedFinder); ok {
		*buf = bf.FreeOfSizeInto(gr, size, (*buf)[:0])
		return *buf
	}
	return s.cfg.Finder.FreeOfSize(gr, size)
}

// maxFree is MaxFree through the scheduler's content-addressed cache.
func (s *Scheduler) maxFree(gr *torus.Grid) (torus.Partition, int) {
	return s.mfp.MaxFree(gr)
}

// placementCtx primes the reused placement context for one decision,
// preserving the policy scratch buffers across calls.
func (s *Scheduler) placementCtx(gr *torus.Grid, j *job.Job, now float64) *PlacementContext {
	part, mfp := s.maxFree(gr)
	s.ctx.Grid = gr
	s.ctx.Job = j
	s.ctx.Now = now
	s.ctx.MFPBefore = mfp
	s.ctx.MFPPart = part
	s.ctx.MFP = s.mfp
	s.ctx.resetDecision()
	return &s.ctx
}

// Config returns the scheduler's configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Schedule starts as many queued jobs as the policy and backfill mode
// allow at time now. It allocates partitions on gr, removes started
// jobs from q, and returns the start decisions in order. running lists
// the currently executing jobs (used by EASY reservations). The
// returned slice is owned by the scheduler and valid until the next
// Schedule call; callers that keep decisions across calls must copy.
func (s *Scheduler) Schedule(gr *torus.Grid, q *job.Queue, running []Running, now float64) ([]Decision, error) {
	sw := s.met.decision.Start()
	defer sw.Stop()
	s.started = s.started[:0]

	// Phase 1: strict FCFS from the head.
	for q.Len() > 0 {
		head := q.Peek()
		d, ok, err := s.tryStart(gr, head, now)
		if err != nil {
			return s.started, err
		}
		if !ok {
			break
		}
		q.RemoveAt(0)
		s.started = append(s.started, d)
		s.met.startsFCFS.Inc()
	}
	if q.Len() == 0 || s.cfg.Backfill == BackfillNone {
		return s.started, nil
	}

	// Phase 2: backfill around the blocked head.
	switch s.cfg.Backfill {
	case BackfillAggressive:
		// Scan the rest of the queue in FCFS order; anything that fits
		// starts now.
		for i := 1; i < q.Len(); {
			j := q.At(i)
			s.met.backfillAttempts.Inc()
			d, ok, err := s.tryStart(gr, j, now)
			if err != nil {
				return s.started, err
			}
			if !ok {
				i++
				continue
			}
			q.RemoveAt(i)
			s.started = append(s.started, d)
			s.met.backfillSuccesses.Inc()
			s.met.startsBackfill.Inc()
		}
	case BackfillEASY:
		// The reservation must see the machine as it will be: running
		// jobs plus this call's fresh starts, gathered into a reused
		// buffer.
		s.resRun = append(s.resRun[:0], running...)
		for _, d := range s.started {
			s.resRun = append(s.resRun, Running{Job: d.Job, Part: d.Part, Start: now, ExpFinish: now + d.Job.Estimate})
		}
		res, err := s.reservation(gr, q.Peek(), s.resRun, now)
		if err != nil {
			return s.started, err
		}
		for i := 1; i < q.Len(); {
			j := q.At(i)
			s.met.backfillAttempts.Inc()
			d, ok, err := s.tryBackfill(gr, j, now, res)
			if err != nil {
				return s.started, err
			}
			if !ok {
				i++
				continue
			}
			q.RemoveAt(i)
			s.started = append(s.started, d)
			s.met.backfillSuccesses.Inc()
			s.met.startsBackfill.Inc()
		}
	}
	return s.started, nil
}

// preferPlacement gives a placement-searching finder (partition.Placer,
// e.g. the annealing finder) its say: the candidate it picks is swapped
// to the front of the slice. Every policy tie-breaks toward the first
// candidate, so this changes the decision only among policy-equal
// candidates — the legal set is exactly what the finder returned.
// Finders hand out fresh slices, so the in-place swap is safe.
func (s *Scheduler) preferPlacement(gr *torus.Grid, cands []torus.Partition) {
	pl, ok := s.cfg.Finder.(partition.Placer)
	if !ok || len(cands) < 2 {
		return
	}
	if k := pl.Place(gr, cands); k > 0 && k < len(cands) {
		cands[0], cands[k] = cands[k], cands[0]
	}
}

// tryStart attempts to place j now; on success the partition is
// allocated and the decision returned.
func (s *Scheduler) tryStart(gr *torus.Grid, j *job.Job, now float64) (Decision, bool, error) {
	cands := s.freeOfSize(gr, j.AllocSize, &s.cands)
	if len(cands) == 0 {
		return Decision{}, false, nil
	}
	s.preferPlacement(gr, cands)
	ctx := s.placementCtx(gr, j, now)
	idx, err := s.cfg.Policy.Choose(ctx, cands)
	if err != nil {
		return Decision{}, false, fmt.Errorf("core: policy %s: %w", s.cfg.Policy.Name(), err)
	}
	if idx < 0 {
		return Decision{}, false, nil
	}
	if idx >= len(cands) {
		return Decision{}, false, fmt.Errorf("core: policy %s chose index %d of %d candidates",
			s.cfg.Policy.Name(), idx, len(cands))
	}
	p := cands[idx]
	if err := gr.Allocate(p, int64(j.ID)); err != nil {
		return Decision{}, false, fmt.Errorf("core: start %v: %w", j, err)
	}
	return Decision{Job: j, Part: p}, true, nil
}

// reservationState describes the EASY guarantee for the queue head: it
// will start no later than Time on partition Part.
type reservationState struct {
	Time float64
	Part torus.Partition
	// ok distinguishes a real reservation from the degenerate case
	// where none could be computed (then only finish-before-Time
	// backfills with Time = +Inf are allowed, i.e. everything).
	ok bool
}

// reservation simulates the estimated completions of running jobs on a
// scratch grid to find the earliest time the head job fits, and the
// partition it would then occupy. The scratch grid is reused across
// calls under a stable identity (CopyFrom instead of Clone), so the
// finder keeps one derived state for it and resynchronises only the
// columns that changed; running may be sorted in place (callers pass
// the scheduler's own buffer).
func (s *Scheduler) reservation(gr *torus.Grid, head *job.Job, running []Running, now float64) (reservationState, error) {
	s.met.reservations.Inc()
	if s.scratch == nil || s.scratch.Geometry() != gr.Geometry() {
		s.scratch = gr.Clone()
	} else if err := s.scratch.CopyFrom(gr); err != nil {
		return reservationState{}, fmt.Errorf("core: reservation: %w", err)
	}
	scratch := s.scratch
	s.sorter.rs = running
	sort.Sort(&s.sorter)
	s.sorter.rs = nil

	check := func(t float64) (reservationState, bool, error) {
		cands := s.freeOfSize(scratch, head.AllocSize, &s.resCands)
		if len(cands) == 0 {
			return reservationState{}, false, nil
		}
		s.preferPlacement(scratch, cands)
		ctx := s.placementCtx(scratch, head, t)
		idx, err := s.cfg.Policy.Choose(ctx, cands)
		if err != nil {
			return reservationState{}, false, fmt.Errorf("core: reservation policy %s: %w", s.cfg.Policy.Name(), err)
		}
		if idx < 0 || idx >= len(cands) {
			idx = 0
		}
		return reservationState{Time: t, Part: cands[idx], ok: true}, true, nil
	}

	for i, r := range running {
		if err := scratch.Release(r.Part, int64(r.Job.ID)); err != nil {
			return reservationState{}, fmt.Errorf("core: reservation: %w", err)
		}
		res, ok, err := check(math.Max(r.ExpFinish, now))
		if err != nil {
			return reservationState{}, err
		}
		if ok {
			s.met.reservationDrain.Observe(float64(i + 1))
			return res, nil
		}
	}
	// Head cannot fit even on the drained machine (possible only if its
	// allocation exceeds machine capacity, which upstream validation
	// prevents). Degenerate reservation: no constraint.
	return reservationState{Time: math.Inf(1), ok: false}, nil
}

// tryBackfill starts j now if doing so cannot delay the reserved head
// start: either j is estimated to finish before the reservation time,
// or its partition does not intersect the reserved partition.
func (s *Scheduler) tryBackfill(gr *torus.Grid, j *job.Job, now float64, res reservationState) (Decision, bool, error) {
	cands := s.freeOfSize(gr, j.AllocSize, &s.cands)
	if len(cands) == 0 {
		return Decision{}, false, nil
	}
	finishesInTime := now+j.Estimate <= res.Time
	if !finishesInTime && res.ok {
		// Filter in place: the candidate buffer is ours (buffered
		// finder) or a fresh slice (plain finder), and the kept order is
		// the original order either way.
		g := gr.Geometry()
		filtered := cands[:0]
		for _, p := range cands {
			if !g.Overlaps(p, res.Part) {
				filtered = append(filtered, p)
			}
		}
		cands = filtered
		if len(cands) == 0 {
			return Decision{}, false, nil
		}
	}
	s.preferPlacement(gr, cands)
	ctx := s.placementCtx(gr, j, now)
	idx, err := s.cfg.Policy.Choose(ctx, cands)
	if err != nil {
		return Decision{}, false, fmt.Errorf("core: backfill policy %s: %w", s.cfg.Policy.Name(), err)
	}
	if idx < 0 {
		return Decision{}, false, nil
	}
	if idx >= len(cands) {
		return Decision{}, false, fmt.Errorf("core: policy %s chose index %d of %d candidates",
			s.cfg.Policy.Name(), idx, len(cands))
	}
	p := cands[idx]
	if err := gr.Allocate(p, int64(j.ID)); err != nil {
		return Decision{}, false, fmt.Errorf("core: backfill %v: %w", j, err)
	}
	return Decision{Job: j, Part: p}, true, nil
}
