package core

import (
	"errors"
	"strings"
	"testing"

	"bgsched/internal/failure"
	"bgsched/internal/job"
	"bgsched/internal/partition"
	"bgsched/internal/predict"
	"bgsched/internal/torus"
)

func testJob(id int, size int, est float64) *job.Job {
	g := torus.BlueGeneL()
	alloc, ok := g.RoundUpFeasible(size)
	if !ok {
		panic("bad size")
	}
	return &job.Job{ID: job.ID(id), Size: size, AllocSize: alloc, Estimate: est, Actual: est}
}

func ctxFor(gr *torus.Grid, j *job.Job, now float64) *PlacementContext {
	_, mfp := partition.MaxFree(gr)
	return &PlacementContext{Grid: gr, Job: j, Now: now, MFPBefore: mfp}
}

func mustMFPAfter(t *testing.T, gr *torus.Grid, p torus.Partition) int {
	t.Helper()
	after, err := mfpAfter(&PlacementContext{Grid: gr}, p)
	if err != nil {
		t.Fatal(err)
	}
	return after
}

func mustChoose(t *testing.T, pol Policy, ctx *PlacementContext, cands []torus.Partition) int {
	t.Helper()
	idx, err := pol.Choose(ctx, cands)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestMfpAfterRollsBack(t *testing.T) {
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	p := torus.Partition{Base: torus.Coord{}, Shape: torus.Shape{X: 2, Y: 2, Z: 2}}
	before := gr.FreeCount()
	after, err := mfpAfter(&PlacementContext{Grid: gr}, p)
	if err != nil {
		t.Fatal(err)
	}
	if gr.FreeCount() != before {
		t.Fatal("mfpAfter leaked a probe allocation")
	}
	if after >= 128 {
		t.Fatalf("mfpAfter = %d, must shrink below full machine", after)
	}
	if !gr.PartitionFree(p) {
		t.Fatal("probe partition left allocated")
	}
}

func TestBaselineKeepsMFPLarge(t *testing.T) {
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	// Occupy half the machine (z in [0,4)), leaving a 4x4x4 free block.
	half := torus.Partition{Base: torus.Coord{}, Shape: torus.Shape{X: 4, Y: 4, Z: 4}}
	if err := gr.Allocate(half, 99); err != nil {
		t.Fatal(err)
	}
	j := testJob(1, 8, 100)
	cands := partition.ShapeFinder{}.FreeOfSize(gr, 8)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	idx := mustChoose(t, Baseline{}, ctxFor(gr, j, 0), cands)
	if idx < 0 || idx >= len(cands) {
		t.Fatalf("Choose = %d", idx)
	}
	chosen := cands[idx]
	// The chosen placement must achieve the best possible MFP-after.
	best := -1
	for _, p := range cands {
		if a := mustMFPAfter(t, gr, p); a > best {
			best = a
		}
	}
	if got := mustMFPAfter(t, gr, chosen); got != best {
		t.Fatalf("baseline chose MFP-after %d, best achievable %d", got, best)
	}
}

func TestPartitionFailProb(t *testing.T) {
	g := torus.BlueGeneL()
	p := torus.Partition{Base: torus.Coord{}, Shape: torus.Shape{X: 2, Y: 1, Z: 1}}
	nodes := g.Nodes(p)
	tr := failure.Trace{{Time: 50, Node: nodes[0]}}
	tr.Sort()
	ix := failure.NewIndex(g.N(), tr)
	prober := &predict.Balancing{Index: ix, Confidence: 0.4}

	got := PartitionFailProb(g, prober, p, 0, 100, predict.CombineIndependent)
	if got != 0.4 {
		t.Fatalf("P_f = %g, want 0.4 (single failing node)", got)
	}
	if got := PartitionFailProb(g, prober, p, 60, 100, predict.CombineIndependent); got != 0 {
		t.Fatalf("window after failure: P_f = %g", got)
	}
	if got := PartitionFailProb(g, prober, p, 0, 100, predict.CombineMax); got != 0.4 {
		t.Fatalf("max combiner P_f = %g", got)
	}
}

// The balancing policy must avoid a partition that is predicted to fail
// when an equally good stable partition exists.
func TestBalancingAvoidsPredictedFailure(t *testing.T) {
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	j := testJob(1, 128, 1000) // full machine: exactly one candidate normally
	// Use a small job with two symmetric candidates instead: fill all
	// but two disjoint 1x1x4 columns.
	gr = torus.NewGrid(g)
	jSmall := testJob(2, 4, 1000)
	// Occupy everything except columns at (0,0,z0..3) and (2,2, 4..7).
	for id := 0; id < g.N(); id++ {
		c := g.CoordOf(id)
		inA := c.X == 0 && c.Y == 0 && c.Z < 4
		inB := c.X == 2 && c.Y == 2 && c.Z >= 4
		if !inA && !inB {
			if err := gr.Allocate(torus.Partition{Base: c, Shape: torus.Shape{X: 1, Y: 1, Z: 1}}, 99); err != nil {
				t.Fatal(err)
			}
		}
	}
	nodeInA := g.Index(torus.Coord{X: 0, Y: 0, Z: 1})
	tr := failure.Trace{{Time: 500, Node: nodeInA}}
	ix := failure.NewIndex(g.N(), tr)

	for _, conf := range []float64{0.1, 0.5, 0.9} {
		pol := &Balancing{Prober: &predict.Balancing{Index: ix, Confidence: conf}}
		cands := partition.ShapeFinder{}.FreeOfSize(gr, 4)
		if len(cands) != 2 {
			t.Fatalf("expected exactly 2 candidates, got %d", len(cands))
		}
		idx := mustChoose(t, pol, ctxFor(gr, jSmall, 0), cands)
		chosen := cands[idx]
		if g.ContainsNode(chosen, nodeInA) {
			t.Fatalf("confidence %g: balancing chose the failing partition", conf)
		}
	}
	_ = j
}

// With a low confidence, the balancing policy must prefer a larger MFP
// over a stable partition when the MFP difference dominates E_loss; at
// high confidence the stable partition must win. This is the Figure 2
// (a)/(b) trade-off.
//
// Geometry: region A is an exact 2x2x2 pocket (placing an 8-node job
// there costs no MFP but every node of A fails); region B is a 2x2x3
// block (stable, but placing the job there shrinks the machine MFP
// from 12 to 8, i.e. L_MFP = 4). E_loss(A) = 8*(1-(1-a)^8) crosses
// E_loss(B) = 4 near a = 0.083.
func TestBalancingConfidenceTradeoff(t *testing.T) {
	g := torus.BlueGeneL()
	base := torus.NewGrid(g)
	for id := 0; id < g.N(); id++ {
		c := g.CoordOf(id)
		inA := c.X < 2 && c.Y < 2 && c.Z < 2
		inB := c.X >= 2 && c.Y >= 2 && c.Z >= 4 && c.Z < 7
		if !inA && !inB {
			if err := base.Allocate(torus.Partition{Base: c, Shape: torus.Shape{X: 1, Y: 1, Z: 1}}, 99); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Every node of the pocket A fails during the job.
	var tr failure.Trace
	for x := 0; x < 2; x++ {
		for y := 0; y < 2; y++ {
			for z := 0; z < 2; z++ {
				tr = append(tr, failure.Event{Time: 500, Node: g.Index(torus.Coord{X: x, Y: y, Z: z})})
			}
		}
	}
	tr.Sort()
	ix := failure.NewIndex(g.N(), tr)

	j := testJob(3, 8, 1000)
	cands := partition.ShapeFinder{}.FreeOfSize(base, 8)
	if len(cands) != 3 {
		t.Fatalf("expected 3 candidates (1 in pocket, 2 in block), got %d", len(cands))
	}
	low := &Balancing{Prober: &predict.Balancing{Index: ix, Confidence: 0.05}}
	high := &Balancing{Prober: &predict.Balancing{Index: ix, Confidence: 0.95}}

	idxLow := mustChoose(t, low, ctxFor(base, j, 0), cands)
	idxHigh := mustChoose(t, high, ctxFor(base, j, 0), cands)
	pocketNode := g.Index(torus.Coord{X: 0, Y: 0, Z: 0})
	if !g.ContainsNode(cands[idxLow], pocketNode) {
		t.Fatal("low confidence should accept the risky pocket to preserve the MFP")
	}
	if g.ContainsNode(cands[idxHigh], pocketNode) {
		t.Fatal("high confidence should pay L_MFP to avoid the failing pocket")
	}
}

func TestTieBreakPrefersHealthyAmongTied(t *testing.T) {
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	// Two symmetric free columns (ties on MFP); one will fail.
	for id := 0; id < g.N(); id++ {
		c := g.CoordOf(id)
		inA := c.X == 0 && c.Y == 0 && c.Z < 4
		inB := c.X == 2 && c.Y == 2 && c.Z < 4
		if !inA && !inB {
			if err := gr.Allocate(torus.Partition{Base: c, Shape: torus.Shape{X: 1, Y: 1, Z: 1}}, 99); err != nil {
				t.Fatal(err)
			}
		}
	}
	badNode := g.Index(torus.Coord{X: 0, Y: 0, Z: 2})
	ix := failure.NewIndex(g.N(), failure.Trace{{Time: 100, Node: badNode}})
	pol := &TieBreak{Oracle: predict.NewTieBreak(ix, 1.0, 1)}
	j := testJob(4, 4, 1000)
	cands := partition.ShapeFinder{}.FreeOfSize(gr, 4)
	if len(cands) != 2 {
		t.Fatalf("want 2 candidates, got %d", len(cands))
	}
	idx := mustChoose(t, pol, ctxFor(gr, j, 0), cands)
	if g.ContainsNode(cands[idx], badNode) {
		t.Fatal("tie-break chose the partition predicted to fail")
	}
}

func TestTieBreakAllPredictedFailPicksFirstTied(t *testing.T) {
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	var tr failure.Trace
	for id := 0; id < g.N(); id++ {
		tr = append(tr, failure.Event{Time: 100, Node: id})
	}
	tr.Sort()
	ix := failure.NewIndex(g.N(), tr)
	pol := &TieBreak{Oracle: predict.NewTieBreak(ix, 1.0, 1)}
	j := testJob(5, 8, 1000)
	cands := partition.ShapeFinder{}.FreeOfSize(gr, 8)
	idx := mustChoose(t, pol, ctxFor(gr, j, 0), cands)
	if idx < 0 || idx >= len(cands) {
		t.Fatalf("Choose = %d with all candidates failing; must still pick one", idx)
	}
	// Must be tied at the optimal MFP.
	best := -1
	for _, p := range cands {
		if a := mustMFPAfter(t, gr, p); a > best {
			best = a
		}
	}
	if got := mustMFPAfter(t, gr, cands[idx]); got != best {
		t.Fatalf("fallback pick is not MFP-optimal: %d vs %d", got, best)
	}
}

func TestTieBreakEmptyCandidates(t *testing.T) {
	pol := &TieBreak{Oracle: predict.Null{}}
	gr := torus.NewGrid(torus.BlueGeneL())
	if idx := mustChoose(t, pol, ctxFor(gr, testJob(1, 1, 10), 0), nil); idx != -1 {
		t.Fatalf("Choose(nil candidates) = %d, want -1", idx)
	}
}

// With a Null predictor, balancing and tie-break must degenerate to the
// baseline choice.
func TestFaultAwareDegenerateToBaseline(t *testing.T) {
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	occ := torus.Partition{Base: torus.Coord{}, Shape: torus.Shape{X: 4, Y: 4, Z: 3}}
	if err := gr.Allocate(occ, 99); err != nil {
		t.Fatal(err)
	}
	j := testJob(6, 8, 500)
	cands := partition.ShapeFinder{}.FreeOfSize(gr, 8)
	baseIdx := mustChoose(t, Baseline{}, ctxFor(gr, j, 0), cands)
	balIdx := mustChoose(t, &Balancing{Prober: predict.Null{}}, ctxFor(gr, j, 0), cands)
	tbIdx := mustChoose(t, &TieBreak{Oracle: predict.Null{}}, ctxFor(gr, j, 0), cands)
	if mustMFPAfter(t, gr, cands[balIdx]) != mustMFPAfter(t, gr, cands[baseIdx]) {
		t.Fatal("balancing with null predictor diverged from baseline MFP")
	}
	if mustMFPAfter(t, gr, cands[tbIdx]) != mustMFPAfter(t, gr, cands[baseIdx]) {
		t.Fatal("tie-break with null predictor diverged from baseline MFP")
	}
}

// A probe over an inconsistent grid (the candidate is already
// allocated) must surface as an error, not a panic.
func TestMfpAfterInconsistentGridErrors(t *testing.T) {
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	p := torus.Partition{Base: torus.Coord{}, Shape: torus.Shape{X: 2, Y: 2, Z: 2}}
	if err := gr.Allocate(p, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := mfpAfter(&PlacementContext{Grid: gr}, p); err == nil {
		t.Fatal("probe of an already-allocated partition succeeded")
	}
}

// errPolicy always fails; scheduling must propagate the error.
type errPolicy struct{}

func (errPolicy) Name() string { return "errpolicy" }
func (errPolicy) Choose(*PlacementContext, []torus.Partition) (int, error) {
	return -1, errors.New("synthetic policy failure")
}

func TestSchedulePropagatesPolicyError(t *testing.T) {
	s, err := NewScheduler(Config{Policy: errPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	q := job.NewQueue()
	q.Push(testJob(1, 8, 100))
	_, err = s.Schedule(torus.NewGrid(torus.BlueGeneL()), q, nil, 0)
	if err == nil || !strings.Contains(err.Error(), "synthetic policy failure") {
		t.Fatalf("Schedule error = %v, want wrapped policy failure", err)
	}
	if q.Len() != 1 {
		t.Fatal("failed scheduling decision consumed the queued job")
	}
}

func TestPolicyNames(t *testing.T) {
	if (Baseline{}).Name() != "baseline" {
		t.Error("baseline name")
	}
	if (&Balancing{}).Name() != "balancing" {
		t.Error("balancing name")
	}
	if (&TieBreak{}).Name() != "tiebreak" {
		t.Error("tiebreak name")
	}
}
