package partition

import "bgsched/internal/torus"

// MFPCache memoizes MaxFree results content-addressed by the grid's
// occupancy hash. The maximal free partition is a pure function of the
// geometry and the free/busy pattern, and the grid maintains a Zobrist
// hash of that pattern incrementally — so a state *recurrence* (most
// importantly the allocate/release probe pair placement policies issue
// per candidate, and repeated decisions against an unchanged machine)
// becomes an O(1) lookup instead of a full plane sweep.
//
// The cache is direct-mapped: each (geometry, hash) key owns one slot
// chosen by mixing the hash, and a colliding insert simply overwrites.
// That keeps lookups, inserts and evictions allocation-free, which the
// simulator's zero-alloc steady-state guarantee depends on; hash
// quality makes slot conflicts rare in practice. Entries are values
// (torus.Partition has no pointers), so callers can never corrupt the
// cache through a result.
//
// MFPCache is not safe for concurrent use; the scheduler hot path it
// serves is single-threaded. The zero value is not usable — use
// NewMFPCache.
type MFPCache struct {
	slots   []mfpSlot
	mask    uint64
	scratch mfpScratch
	hits    uint64
	misses  uint64
}

type mfpSlot struct {
	geom torus.Geometry
	hash uint64
	part torus.Partition
	size int
	used bool
}

// NewMFPCache returns a cache with at least the given number of slots
// (rounded up to a power of two; minimum 16).
func NewMFPCache(slots int) *MFPCache {
	n := 16
	for n < slots {
		n <<= 1
	}
	return &MFPCache{slots: make([]mfpSlot, n), mask: uint64(n - 1)}
}

// MaxFree returns MaxFree(gr), served from the cache when the grid's
// occupancy pattern (and geometry) was seen before. A nil cache
// degrades to the uncached computation.
func (c *MFPCache) MaxFree(gr *torus.Grid) (torus.Partition, int) {
	if c == nil {
		return MaxFree(gr)
	}
	h := gr.OccupancyHash()
	geom := gr.Geometry()
	// The occupancy hash is already well-mixed (splitmix64 node keys),
	// but XOR-fold the high bits in so low-bit-sparse patterns cannot
	// cluster onto few slots.
	s := &c.slots[(h^(h>>32))&c.mask]
	if s.used && s.hash == h && s.geom == geom {
		c.hits++
		return s.part, s.size
	}
	c.misses++
	part, size := maxFreeWith(&c.scratch, gr)
	*s = mfpSlot{geom: geom, hash: h, part: part, size: size, used: true}
	return part, size
}

// MaxFreeProbe returns MaxFree of the grid as it would be with p
// additionally allocated, without mutating the grid: the probe hash is
// the occupancy hash XOR p's key delta (exactly what a real allocation
// would produce, so entries are shared with MaxFree lookups of the
// post-allocation state), and a miss recomputes against a blocked-node
// overlay instead of an allocate/release round trip — no Zobrist
// maintenance, no watcher notifications, no owner bookkeeping.
// The caller is responsible for p being free and valid.
func (c *MFPCache) MaxFreeProbe(gr *torus.Grid, p torus.Partition) (torus.Partition, int) {
	if c == nil {
		sc := scratchPool.Get().(*mfpScratch)
		defer scratchPool.Put(sc)
		return maxFreeProbeWith(sc, gr, p)
	}
	h := gr.OccupancyHash() ^ gr.PartitionHashDelta(p)
	geom := gr.Geometry()
	s := &c.slots[(h^(h>>32))&c.mask]
	if s.used && s.hash == h && s.geom == geom {
		c.hits++
		return s.part, s.size
	}
	c.misses++
	part, size := maxFreeProbeWith(&c.scratch, gr, p)
	*s = mfpSlot{geom: geom, hash: h, part: part, size: size, used: true}
	return part, size
}

// MaxFreeAll is the package-level MaxFreeAll on the cache's own
// scratch, keeping the per-decision maximal-rectangle enumeration off
// the shared pool. Results are not memoized in the slot table — the
// caller caches the list for the decision it serves. A nil cache
// degrades to the pooled computation.
func (c *MFPCache) MaxFreeAll(gr *torus.Grid, buf []torus.Partition) ([]torus.Partition, int) {
	if c == nil {
		return MaxFreeAll(gr, buf)
	}
	return maxFreeAllWith(&c.scratch, gr, buf)
}

// maxFreeProbeWith is maxFreeWith with the nodes of p treated as busy,
// via the scratch's blocked overlay (marked before, cleared after).
func maxFreeProbeWith(sc *mfpScratch, gr *torus.Grid, p torus.Partition) (torus.Partition, int) {
	g := gr.Geometry()
	sc.ensure(g)
	g.ForEachNode(p, func(id int) bool { sc.blocked[id] = true; return true })
	part, size := maxFreeWith(sc, gr)
	g.ForEachNode(p, func(id int) bool { sc.blocked[id] = false; return true })
	return part, size
}

// Stats reports cache hits and misses since construction.
func (c *MFPCache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits, c.misses
}
