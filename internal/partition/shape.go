package partition

import (
	"sync"

	"bgsched/internal/torus"
)

// ShapeFinder is the paper's Appendix 9 partition-finder: for a job of
// size s it enumerates only the divisor-triple shapes SHAPES(s), scans
// base locations in increasing (x, y, z) order, and rejects candidates
// early using run-length information built lazily, on an as-needed
// basis. On an empty torus the cost is O(M^3 * f(s)^3) where f(s) is
// the divisor count of s, versus O(M^9) naive and O(M^5) for POP.
type ShapeFinder struct {
	// Metrics, when non-nil, receives per-call search-cost telemetry.
	Metrics *Metrics
}

// Name implements Finder.
func (ShapeFinder) Name() string { return "shape" }

// shapeScratch holds the lazily built run-length tables; pooled because
// the scheduler calls FreeOfSize on every placement attempt.
type shapeScratch struct {
	runs    []int
	haveCol []bool
}

var shapePool = sync.Pool{New: func() any { return new(shapeScratch) }}

// FreeOfSize implements Finder.
func (f ShapeFinder) FreeOfSize(gr *torus.Grid, size int) []torus.Partition {
	sw := f.Metrics.startTimer()
	g := gr.Geometry()
	dims := g.Dims
	shapes := g.ShapesOf(size)
	if len(shapes) == 0 {
		f.Metrics.noShapes(sw)
		return nil
	}
	bases, rejects := 0, 0

	sc := shapePool.Get().(*shapeScratch)
	defer shapePool.Put(sc)
	plane := dims.X * dims.Y
	if cap(sc.runs) < g.N() {
		sc.runs = make([]int, g.N())
	}
	if cap(sc.haveCol) < plane {
		sc.haveCol = make([]bool, plane)
	}
	runs := sc.runs[:g.N()]
	haveCol := sc.haveCol[:plane]
	for i := range haveCol {
		haveCol[i] = false
	}

	// Lazily built z run lengths: column (x, y) is materialised only
	// when a candidate first touches it.
	colRuns := func(x, y int) []int {
		col := x*dims.Y + y
		base := col * dims.Z
		if !haveCol[col] {
			computeRunsInto(func(z int) bool { return gr.NodeFree(base + z) },
				dims.Z, g.Wrap, runs[base:base+dims.Z])
			haveCol[col] = true
		}
		return runs[base : base+dims.Z]
	}

	var out []torus.Partition
	for _, shape := range shapes {
		rx := baseRange(dims.X, shape.X, g.Wrap)
		ry := baseRange(dims.Y, shape.Y, g.Wrap)
		rz := baseRange(dims.Z, shape.Z, g.Wrap)
		for bx := 0; bx < rx; bx++ {
			for by := 0; by < ry; by++ {
			nextBase:
				for bz := 0; bz < rz; bz++ {
					bases++
					// Check the footprint column by column; the z run
					// length at bz answers "is the whole z-window free"
					// in O(1) per column.
					for dx := 0; dx < shape.X; dx++ {
						x := bx + dx
						if x >= dims.X {
							x -= dims.X
						}
						for dy := 0; dy < shape.Y; dy++ {
							y := by + dy
							if y >= dims.Y {
								y -= dims.Y
							}
							if colRuns(x, y)[bz] < shape.Z {
								// Early termination: the base dies on
								// the first short column, before the
								// rest of the footprint is touched.
								rejects++
								continue nextBase
							}
						}
					}
					out = append(out, torus.Partition{
						Base:  torus.Coord{X: bx, Y: by, Z: bz},
						Shape: shape,
					})
				}
			}
		}
	}
	sortPartitions(out)
	f.Metrics.observe(sw, len(out), bases, rejects)
	return out
}
