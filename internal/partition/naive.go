package partition

import "bgsched/internal/torus"

// NaiveFinder is the exhaustive baseline the paper's Appendix 9 compares
// against: it enumerates every base location and every shape of the
// requested size and checks each candidate node by node. On an empty
// M x M x M torus this costs O(M^9); it exists as the correctness oracle
// and the benchmark baseline.
type NaiveFinder struct {
	// Metrics, when non-nil, receives per-call search-cost telemetry.
	Metrics *Metrics
}

// Name implements Finder.
func (NaiveFinder) Name() string { return "naive" }

// FreeOfSize implements Finder by brute force.
func (f NaiveFinder) FreeOfSize(gr *torus.Grid, size int) []torus.Partition {
	sw := f.Metrics.startTimer()
	g := gr.Geometry()
	dims := g.Dims
	bases, rejects := 0, 0
	var out []torus.Partition
	// Enumerate all shapes (not just divisor triples) and filter by
	// size, mirroring the "find all free partitions of any size, then
	// select the subset" description of the naive algorithm.
	for sx := 1; sx <= dims.X; sx++ {
		for sy := 1; sy <= dims.Y; sy++ {
			for sz := 1; sz <= dims.Z; sz++ {
				if sx*sy*sz != size {
					continue
				}
				shape := torus.Shape{X: sx, Y: sy, Z: sz}
				for bx := 0; bx < baseRange(dims.X, sx, g.Wrap); bx++ {
					for by := 0; by < baseRange(dims.Y, sy, g.Wrap); by++ {
						for bz := 0; bz < baseRange(dims.Z, sz, g.Wrap); bz++ {
							p := torus.Partition{
								Base:  torus.Coord{X: bx, Y: by, Z: bz},
								Shape: shape,
							}
							bases++
							if gr.PartitionFree(p) {
								out = append(out, p)
							} else {
								// PartitionFree stops at the first busy
								// node: the naive algorithm's only form
								// of early termination.
								rejects++
							}
						}
					}
				}
			}
		}
	}
	sortPartitions(out)
	f.Metrics.observe(sw, len(out), bases, rejects)
	return out
}

// MaxFreeNaive computes the MFP by brute force over all sizes. It is
// the correctness oracle for MaxFree.
func MaxFreeNaive(gr *torus.Grid) (torus.Partition, int) {
	g := gr.Geometry()
	dims := g.Dims
	best := 0
	var bestPart torus.Partition
	for sx := 1; sx <= dims.X; sx++ {
		for sy := 1; sy <= dims.Y; sy++ {
			for sz := 1; sz <= dims.Z; sz++ {
				if sx*sy*sz <= best {
					continue
				}
				shape := torus.Shape{X: sx, Y: sy, Z: sz}
				for bx := 0; bx < baseRange(dims.X, sx, g.Wrap); bx++ {
					for by := 0; by < baseRange(dims.Y, sy, g.Wrap); by++ {
						for bz := 0; bz < baseRange(dims.Z, sz, g.Wrap); bz++ {
							p := torus.Partition{
								Base:  torus.Coord{X: bx, Y: by, Z: bz},
								Shape: shape,
							}
							if gr.PartitionFree(p) {
								best = shape.Size()
								bestPart = p
							}
						}
					}
				}
			}
		}
	}
	return bestPart, best
}
