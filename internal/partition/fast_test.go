package partition

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"bgsched/internal/telemetry"
	"bgsched/internal/torus"
)

// TestFastFinderCacheHitAndInvalidation: repeated queries between
// state changes are answered from the cache; any allocate or release
// changes the key and forces re-enumeration with the new state.
func TestFastFinderCacheHitAndInvalidation(t *testing.T) {
	g := torus.BlueGeneL()
	gr := randomGrid(t, g, 0.4, 11)
	reg := telemetry.New()
	f := Instrumented(NewFastFinder(0), reg).(*FastFinder)

	first := f.FreeOfSize(gr, 8)
	if got := f.Metrics.CacheMisses.Value(); got != 1 {
		t.Fatalf("misses after first query = %d, want 1", got)
	}
	second := f.FreeOfSize(gr, 8)
	if got := f.Metrics.CacheHits.Value(); got != 1 {
		t.Fatalf("hits after repeat query = %d, want 1", got)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cache hit returned different candidates")
	}

	p := first[0]
	if err := gr.Allocate(p, 999); err != nil {
		t.Fatal(err)
	}
	after := f.FreeOfSize(gr, 8)
	if got := f.Metrics.CacheMisses.Value(); got != 2 {
		t.Fatalf("misses after state change = %d, want 2", got)
	}
	if f.Metrics.CacheInvalidations.Value() == 0 {
		t.Fatal("state change rebuilt no derived columns")
	}
	for _, q := range after {
		if g.Overlaps(q, p) {
			t.Fatalf("stale candidate %v overlaps fresh allocation %v", q, p)
		}
	}
	want := (ShapeFinder{}).FreeOfSize(gr, 8)
	if !reflect.DeepEqual(after, want) {
		t.Fatalf("post-invalidation result diverges from shape finder (%d vs %d)", len(after), len(want))
	}
}

// TestFastFinderRecurrenceHit: an allocate followed by the matching
// release restores the occupancy hash, so the next query re-hits the
// cache instead of re-enumerating — the pattern placement policies
// generate when they probe hypothetical placements.
func TestFastFinderRecurrenceHit(t *testing.T) {
	g := torus.BlueGeneL()
	gr := randomGrid(t, g, 0.15, 12)
	reg := telemetry.New()
	f := Instrumented(NewFastFinder(0), reg).(*FastFinder)

	before := f.FreeOfSize(gr, 8)
	if len(before) == 0 {
		t.Fatal("no candidates to probe")
	}
	for _, p := range before {
		if err := gr.Allocate(p, 123); err != nil {
			t.Fatal(err)
		}
		if err := gr.Release(p, 123); err != nil {
			t.Fatal(err)
		}
	}
	misses := f.Metrics.CacheMisses.Value()
	again := f.FreeOfSize(gr, 8)
	if got := f.Metrics.CacheMisses.Value(); got != misses {
		t.Fatalf("probe round-trips caused a re-enumeration (misses %d -> %d)", misses, got)
	}
	if !reflect.DeepEqual(before, again) {
		t.Fatal("recurrence hit returned different candidates")
	}
}

// TestFastFinderParallelIdenticalToSequential: the parallel pool must
// be byte-identical to sequential enumeration on the same states.
func TestFastFinderParallelIdenticalToSequential(t *testing.T) {
	for _, wrap := range []bool{true, false} {
		g := torus.NewGeometry(4, 4, 8, wrap)
		for seed := int64(0); seed < 20; seed++ {
			gr := randomGrid(t, g, float64(seed%10)/10, 3000+seed)
			for _, size := range []int{1, 4, 8, 16, 32, 64, 128} {
				// Fresh finders each round: no shared cache, so both
				// actually enumerate.
				seq := NewFastFinder(1).FreeOfSize(gr, size)
				par := NewFastFinder(8).FreeOfSize(gr, size)
				if !reflect.DeepEqual(seq, par) {
					t.Fatalf("wrap=%v seed=%d size=%d: parallel (%d parts) != sequential (%d parts)",
						wrap, seed, size, len(par), len(seq))
				}
			}
		}
	}
}

// TestFastFinderManyGrids: the per-grid derived state is bounded;
// cycling through more grids than the bound must stay correct.
func TestFastFinderManyGrids(t *testing.T) {
	g := torus.BlueGeneL()
	f := NewFastFinder(0)
	grids := make([]*torus.Grid, 3*maxCachedGrids)
	for i := range grids {
		grids[i] = randomGrid(t, g, 0.35, 500+int64(i))
	}
	for round := 0; round < 3; round++ {
		for i, gr := range grids {
			got := f.FreeOfSize(gr, 8)
			want := (ShapeFinder{}).FreeOfSize(gr, 8)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d grid %d: fast (%d) != shape (%d)", round, i, len(got), len(want))
			}
		}
	}
}

// TestFastFinderResultIsolation: callers may mutate the returned slice
// without corrupting the cache.
func TestFastFinderResultIsolation(t *testing.T) {
	g := torus.BlueGeneL()
	gr := randomGrid(t, g, 0.3, 77)
	f := NewFastFinder(0)
	first := f.FreeOfSize(gr, 8)
	if len(first) == 0 {
		t.Fatal("need candidates")
	}
	first[0] = torus.Partition{Base: torus.Coord{X: -9}, Shape: torus.Shape{X: -9}}
	second := f.FreeOfSize(gr, 8)
	if second[0].Base.X == -9 {
		t.Fatal("mutating a returned slice corrupted the cache")
	}
}

// TestFastFinderConcurrentQueries hammers one finder from many
// goroutines over several grids; run under -race this is the
// concurrency guard for the cache and pool code.
func TestFastFinderConcurrentQueries(t *testing.T) {
	g := torus.BlueGeneL()
	grids := []*torus.Grid{
		randomGrid(t, g, 0.0, 1),
		randomGrid(t, g, 0.3, 2),
		randomGrid(t, g, 0.6, 3),
	}
	want := make([][]torus.Partition, len(grids))
	for i, gr := range grids {
		want[i] = ShapeFinder{}.FreeOfSize(gr, 8)
	}
	f := NewFastFinder(4)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for iter := 0; iter < 50; iter++ {
				i := rng.Intn(len(grids))
				if got := f.FreeOfSize(grids[i], 8); !reflect.DeepEqual(got, want[i]) {
					errs <- "concurrent query diverged"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestFastFinderNoShapesAndFullGrid covers the degenerate exits: sizes
// with no legal shape, and a machine with fewer free nodes than the
// request.
func TestFastFinderNoShapesAndFullGrid(t *testing.T) {
	g := torus.BlueGeneL()
	f := NewFastFinder(0)
	gr := torus.NewGrid(g)
	if got := f.FreeOfSize(gr, 11); got != nil { // 11 is not a feasible size on 4x4x8
		t.Fatalf("infeasible size returned %d parts", len(got))
	}
	if err := gr.Allocate(torus.Partition{Shape: g.Dims}, 1); err != nil {
		t.Fatal(err)
	}
	if got := f.FreeOfSize(gr, 8); got != nil {
		t.Fatalf("full machine returned %d parts", len(got))
	}
}
