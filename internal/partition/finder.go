// Package partition implements the free-partition search algorithms the
// scheduler relies on: the naive exhaustive search, a Projection-of-
// Partitions (POP) style dynamic-programming finder in the spirit of
// Krevat et al., and the paper's shape-enumeration finder (Appendix 9)
// with lazily built run-length tables and early termination.
//
// All finders return exactly the same set of partitions; they differ
// only in asymptotic cost. The set is the paper's FREEPARTS: every
// free, contiguous, rectangular partition of a requested size.
//
// Canonicalisation: when a shape spans a full torus dimension, every
// base along that dimension denotes the same node set; finders emit
// only the base with component 0, so each distinct node set appears
// exactly once.
package partition

import (
	"fmt"
	"strings"
	"sync"

	"bgsched/internal/torus"
)

// Finder enumerates all free partitions of an exact size.
type Finder interface {
	// FreeOfSize returns every free partition of exactly size nodes,
	// canonicalised and in deterministic order.
	FreeOfSize(gr *torus.Grid, size int) []torus.Partition
	// Name identifies the algorithm in benchmarks and reports.
	Name() string
}

// BufferedFinder is the optional allocation-free query capability of a
// Finder: FreeOfSizeInto answers into a caller-owned buffer instead of
// handing out a fresh slice. The scheduler detects it by type assertion
// and reuses one candidate buffer across decisions, which is what keeps
// the simulator's steady-state event loop free of per-event heap
// allocations. Implementations must return exactly the partitions (and
// order) FreeOfSize would.
type BufferedFinder interface {
	Finder
	// FreeOfSizeInto appends every free partition of exactly size nodes
	// to buf[:0] and returns it. The result aliases buf (or its
	// reallocation) and is valid only until the buffer's next use.
	FreeOfSizeInto(gr *torus.Grid, size int, buf []torus.Partition) []torus.Partition
}

// Names lists the selectable finder algorithms in ByName order.
var Names = []string{"naive", "pop", "shape", "fast", "anneal"}

// ByName constructs the named finder algorithm: "naive", "pop",
// "shape" (also the default for an empty name), "fast" or "anneal".
// workers bounds the parallel enumeration pool of the fast and anneal
// finders (<= 1 keeps them sequential) and is ignored by the others.
// The anneal finder's placement search gets seed 0; use ByNameSeeded
// to steer it.
func ByName(name string, workers int) (Finder, error) {
	return ByNameSeeded(name, workers, 0)
}

// ByNameSeeded is ByName with an explicit placement-search seed for the
// "anneal" finder (the other algorithms are deterministic and ignore
// it). An unknown name is rejected with the registered names listed.
func ByNameSeeded(name string, workers int, seed int64) (Finder, error) {
	switch name {
	case "", "shape":
		return ShapeFinder{}, nil
	case "naive":
		return NaiveFinder{}, nil
	case "pop":
		return POPFinder{}, nil
	case "fast":
		return NewFastFinder(workers), nil
	case "anneal":
		return NewAnnealFinder(seed, workers), nil
	}
	return nil, fmt.Errorf("partition: unknown finder %q (registered finders: %s)",
		name, strings.Join(Names, ", "))
}

// baseRange returns the number of candidate base positions along a
// dimension of extent dim for a shape extent ext.
func baseRange(dim, ext int, wrap bool) int {
	if ext > dim {
		return 0
	}
	if !wrap {
		return dim - ext + 1
	}
	if ext == dim {
		return 1 // all bases equivalent; canonical base is 0
	}
	return dim
}

// partitionLess is the canonical finder output order: lexicographic by
// shape then base. Candidates within one finder result are always
// distinct, so the order is total and algorithm-independent.
func partitionLess(a, b torus.Partition) bool {
	if a.Shape != b.Shape {
		if a.Shape.X != b.Shape.X {
			return a.Shape.X < b.Shape.X
		}
		if a.Shape.Y != b.Shape.Y {
			return a.Shape.Y < b.Shape.Y
		}
		return a.Shape.Z < b.Shape.Z
	}
	if a.Base.X != b.Base.X {
		return a.Base.X < b.Base.X
	}
	if a.Base.Y != b.Base.Y {
		return a.Base.Y < b.Base.Y
	}
	return a.Base.Z < b.Base.Z
}

// sortPartitions orders partitions lexicographically by shape then base,
// giving every finder the same deterministic output order. Elements are
// distinct, so any comparison sort yields the same result; a hand-rolled
// heapsort (after an already-sorted fast path — enumeration emits in
// order) keeps the hot path allocation-free, unlike sort.Slice, whose
// reflective swapper escapes to the heap on every call.
func sortPartitions(ps []torus.Partition) {
	sorted := true
	for i := 1; i < len(ps); i++ {
		if partitionLess(ps[i], ps[i-1]) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	n := len(ps)
	for i := n/2 - 1; i >= 0; i-- {
		siftPartitions(ps, i, n)
	}
	for i := n - 1; i > 0; i-- {
		ps[0], ps[i] = ps[i], ps[0]
		siftPartitions(ps, 0, i)
	}
}

// siftPartitions restores the max-heap property for root i over ps[:n].
func siftPartitions(ps []torus.Partition, i, n int) {
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && partitionLess(ps[c], ps[c+1]) {
			c++
		}
		if !partitionLess(ps[i], ps[c]) {
			return
		}
		ps[i], ps[c] = ps[c], ps[i]
		i = c
	}
}

// computeRunsInto fills runs[i] with the length of the maximal run of
// true values starting at index i (wrap-aware, capped at n).
// len(runs) must be >= n; val is consulted for indices [0, n).
func computeRunsInto(val func(int) bool, n int, wrap bool, runs []int) {
	allTrue := true
	for i := n - 1; i >= 0; i-- {
		if !val(i) {
			runs[i] = 0
			allTrue = false
		} else if i == n-1 {
			runs[i] = 1
		} else {
			runs[i] = runs[i+1] + 1
		}
	}
	if allTrue {
		for i := 0; i < n; i++ {
			runs[i] = n
		}
		return
	}
	if wrap && n > 1 && val(n-1) && val(0) {
		// Extend runs touching the high edge around the wrap point.
		head := runs[0]
		for i := n - 1; i >= 0 && val(i); i-- {
			runs[i] += head
			if runs[i] > n {
				runs[i] = n
			}
		}
	}
}

// computeRunsBool is computeRunsInto specialised to a bool slice: the
// MFP sweeps call it in their innermost loops, where the generic
// version's indirect predicate call per element is measurable.
func computeRunsBool(vals []bool, wrap bool, runs []int) {
	n := len(vals)
	allTrue := true
	for i := n - 1; i >= 0; i-- {
		if !vals[i] {
			runs[i] = 0
			allTrue = false
		} else if i == n-1 {
			runs[i] = 1
		} else {
			runs[i] = runs[i+1] + 1
		}
	}
	if allTrue {
		for i := 0; i < n; i++ {
			runs[i] = n
		}
		return
	}
	if wrap && n > 1 && vals[n-1] && vals[0] {
		head := runs[0]
		for i := n - 1; i >= 0 && vals[i]; i-- {
			runs[i] += head
			if runs[i] > n {
				runs[i] = n
			}
		}
	}
}

// mfpScratch holds reusable buffers for MaxFree; pooled to keep the
// hot placement-evaluation path allocation-free. blocked is the probe
// overlay: nodes marked true are treated as busy regardless of the
// grid, letting MaxFreeProbe evaluate hypothetical placements without
// mutating grid state. It is all-false except inside maxFreeProbeWith,
// which clears its marks before returning.
type mfpScratch struct {
	zRuns   []int  // per-node z run lengths
	freeOK  []bool // per-node free-and-not-blocked flags
	colOK   []bool // dimX*dimY projected plane
	yRun    []int  // dimX*dimY y-run lengths on the plane
	rowOK   []bool // dimX row flags
	xRun    []int  // dimX x-run lengths
	blocked []bool // probe overlay, len N, normally all-false
}

var scratchPool = sync.Pool{New: func() any { return new(mfpScratch) }}

func (s *mfpScratch) ensure(g torus.Geometry) {
	n := g.N()
	plane := g.Dims.X * g.Dims.Y
	if cap(s.zRuns) < n {
		s.zRuns = make([]int, n)
	}
	s.zRuns = s.zRuns[:n]
	if cap(s.blocked) < n {
		s.blocked = make([]bool, n)
	}
	s.blocked = s.blocked[:n]
	if cap(s.freeOK) < n {
		s.freeOK = make([]bool, n)
	}
	s.freeOK = s.freeOK[:n]
	if cap(s.colOK) < plane {
		s.colOK = make([]bool, plane)
		s.yRun = make([]int, plane)
	}
	s.colOK = s.colOK[:plane]
	s.yRun = s.yRun[:plane]
	if cap(s.rowOK) < g.Dims.X {
		s.rowOK = make([]bool, g.Dims.X)
		s.xRun = make([]int, g.Dims.X)
	}
	s.rowOK = s.rowOK[:g.Dims.X]
	s.xRun = s.xRun[:g.Dims.X]
}

// fillZRuns computes per-column z run lengths of free nodes.
func (s *mfpScratch) fillZRuns(gr *torus.Grid) {
	g := gr.Geometry()
	dims := g.Dims
	n := g.N()
	for i := 0; i < n; i++ {
		s.freeOK[i] = gr.NodeFree(i) && !s.blocked[i]
	}
	cols := dims.X * dims.Y
	for c := 0; c < cols; c++ {
		col := c * dims.Z
		computeRunsBool(s.freeOK[col:col+dims.Z], g.Wrap, s.zRuns[col:col+dims.Z])
	}
}

// MaxFree returns the maximal free partition (MFP) of the grid: the
// free, contiguous, rectangular partition with the greatest node count,
// and that count. If the machine is completely full it returns size 0.
//
// The MFP is the quantity Krevat's heuristic (and this paper's L_MFP
// factor) is built on. The implementation projects each z-window onto a
// 2D plane and finds the plane's maximum all-true rectangle, reusing
// pooled scratch buffers so repeated hypothetical-placement evaluations
// do not allocate.
func MaxFree(gr *torus.Grid) (torus.Partition, int) {
	sc := scratchPool.Get().(*mfpScratch)
	defer scratchPool.Put(sc)
	return maxFreeWith(sc, gr)
}

// maxFreeWith is MaxFree on an explicit scratch, for callers (the
// MFPCache) that own their buffers and must never touch the shared
// pool on the hot path.
func maxFreeWith(sc *mfpScratch, gr *torus.Grid) (torus.Partition, int) {
	g := gr.Geometry()
	dims := g.Dims
	sc.ensure(g)
	sc.fillZRuns(gr)

	best := 0
	var bestPart torus.Partition
	plane := dims.X * dims.Y

	for bz := 0; bz < dims.Z; bz++ {
		// Descending sz gives the strongest pruning: once a window
		// cannot beat the best volume even with a full plane, no
		// smaller sz at this bz can either.
		for sz := dims.Z; sz >= 1; sz-- {
			if plane*sz <= best {
				break
			}
			if g.Wrap && sz == dims.Z && bz != 0 {
				continue
			}
			if !g.Wrap && bz+sz > dims.Z {
				continue
			}
			// Project: column (x,y) is usable if its z-run covers the
			// window.
			usable := 0
			for x := 0; x < dims.X; x++ {
				row := x * dims.Y
				zrow := row * dims.Z
				for y := 0; y < dims.Y; y++ {
					ok := sc.zRuns[zrow+y*dims.Z+bz] >= sz
					sc.colOK[row+y] = ok
					if ok {
						usable++
					}
				}
			}
			if usable*sz <= best {
				continue
			}
			area, bx, by, sx, sy := sc.maxRect2D(dims.X, dims.Y, g.Wrap)
			if area*sz > best {
				best = area * sz
				bestPart = torus.Partition{
					Base:  torus.Coord{X: bx, Y: by, Z: bz},
					Shape: torus.Shape{X: sx, Y: sy, Z: sz},
				}
			}
		}
	}
	return bestPart, best
}

// MaxFreeAll appends to buf[:0] every maximal free rectangle: each
// free, contiguous, rectangular partition whose node count equals the
// MFP size (canonicalised like the finders' output), and returns the
// list with that size. The complete set is what makes the placement
// policies' no-probe shortcut exact: a hypothetical placement keeps
// the MFP size unchanged if and only if it is disjoint from at least
// one of these rectangles — "if" because that rectangle stays free,
// "only if" because any free rectangle of MFP size after the placement
// was already a maximal free rectangle before it.
func MaxFreeAll(gr *torus.Grid, buf []torus.Partition) ([]torus.Partition, int) {
	sc := scratchPool.Get().(*mfpScratch)
	defer scratchPool.Put(sc)
	return maxFreeAllWith(sc, gr, buf)
}

// maxFreeAllWith is the collecting variant of maxFreeWith: same sweep,
// but pruning only on strictly-worse bounds so ties survive, and every
// rectangle matching the best volume is emitted. Completeness holds
// because a maximal rectangle is maximal in every dimension — the
// sweep's run lengths recover exactly its extents at its own window —
// and buf is reset whenever the best volume grows, so stale smaller
// entries never linger.
func maxFreeAllWith(sc *mfpScratch, gr *torus.Grid, buf []torus.Partition) ([]torus.Partition, int) {
	g := gr.Geometry()
	dims := g.Dims
	sc.ensure(g)
	sc.fillZRuns(gr)

	best := 0
	buf = buf[:0]
	plane := dims.X * dims.Y
	dx, dy := dims.X, dims.Y

	for bz := 0; bz < dims.Z; bz++ {
		for sz := dims.Z; sz >= 1; sz-- {
			if plane*sz < best {
				break
			}
			if g.Wrap && sz == dims.Z && bz != 0 {
				continue
			}
			if !g.Wrap && bz+sz > dims.Z {
				continue
			}
			usable := 0
			for x := 0; x < dx; x++ {
				row := x * dy
				zrow := row * dims.Z
				for y := 0; y < dy; y++ {
					ok := sc.zRuns[zrow+y*dims.Z+bz] >= sz
					sc.colOK[row+y] = ok
					if ok {
						usable++
					}
				}
			}
			if usable*sz < best || usable == 0 {
				continue
			}
			for x := 0; x < dx; x++ {
				row := x * dy
				computeRunsBool(sc.colOK[row:row+dy], g.Wrap, sc.yRun[row:row+dy])
			}
			for by0 := 0; by0 < dy; by0++ {
				for sy0 := dy; sy0 >= 1; sy0-- {
					if dx*sy0*sz < best {
						break
					}
					if g.Wrap && sy0 == dy && by0 != 0 {
						continue
					}
					if !g.Wrap && by0+sy0 > dy {
						continue
					}
					for x := 0; x < dx; x++ {
						sc.rowOK[x] = sc.yRun[x*dy+by0] >= sy0
					}
					computeRunsBool(sc.rowOK[:dx], g.Wrap, sc.xRun)
					for x := 0; x < dx; x++ {
						r := sc.xRun[x]
						if r == 0 {
							continue
						}
						if g.Wrap && r == dx && x != 0 {
							continue
						}
						a := r * sy0 * sz
						if a > best {
							best = a
							buf = buf[:0]
						}
						if a == best {
							buf = append(buf, torus.Partition{
								Base:  torus.Coord{X: x, Y: by0, Z: bz},
								Shape: torus.Shape{X: r, Y: sy0, Z: sz},
							})
						}
					}
				}
			}
		}
	}
	return buf, best
}

// MaxFreeSize returns just the size of the maximal free partition.
func MaxFreeSize(gr *torus.Grid) int {
	_, s := MaxFree(gr)
	return s
}

// maxRect2D finds the maximum-area all-true rectangle in the scratch's
// colOK plane (dx*dy, wrap-aware in both dimensions). Rectangles
// spanning a full dimension are canonicalised to base 0.
func (s *mfpScratch) maxRect2D(dx, dy int, wrap bool) (area, bx, by, sx, sy int) {
	for x := 0; x < dx; x++ {
		row := x * dy
		computeRunsBool(s.colOK[row:row+dy], wrap, s.yRun[row:row+dy])
	}
	for by0 := 0; by0 < dy; by0++ {
		for sy0 := dy; sy0 >= 1; sy0-- {
			if dx*sy0 <= area {
				break
			}
			if wrap && sy0 == dy && by0 != 0 {
				continue
			}
			if !wrap && by0+sy0 > dy {
				continue
			}
			for x := 0; x < dx; x++ {
				s.rowOK[x] = s.yRun[x*dy+by0] >= sy0
			}
			computeRunsBool(s.rowOK[:dx], wrap, s.xRun)
			for x := 0; x < dx; x++ {
				r := s.xRun[x]
				if wrap && r == dx && x != 0 {
					continue
				}
				if a := r * sy0; a > area {
					area, bx, by, sx, sy = a, x, by0, r, sy0
				}
			}
		}
	}
	return
}
