// Package partition implements the free-partition search algorithms the
// scheduler relies on: the naive exhaustive search, a Projection-of-
// Partitions (POP) style dynamic-programming finder in the spirit of
// Krevat et al., and the paper's shape-enumeration finder (Appendix 9)
// with lazily built run-length tables and early termination.
//
// All finders return exactly the same set of partitions; they differ
// only in asymptotic cost. The set is the paper's FREEPARTS: every
// free, contiguous, rectangular partition of a requested size.
//
// Canonicalisation: when a shape spans a full torus dimension, every
// base along that dimension denotes the same node set; finders emit
// only the base with component 0, so each distinct node set appears
// exactly once.
package partition

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"bgsched/internal/torus"
)

// Finder enumerates all free partitions of an exact size.
type Finder interface {
	// FreeOfSize returns every free partition of exactly size nodes,
	// canonicalised and in deterministic order.
	FreeOfSize(gr *torus.Grid, size int) []torus.Partition
	// Name identifies the algorithm in benchmarks and reports.
	Name() string
}

// Names lists the selectable finder algorithms in ByName order.
var Names = []string{"naive", "pop", "shape", "fast", "anneal"}

// ByName constructs the named finder algorithm: "naive", "pop",
// "shape" (also the default for an empty name), "fast" or "anneal".
// workers bounds the parallel enumeration pool of the fast and anneal
// finders (<= 1 keeps them sequential) and is ignored by the others.
// The anneal finder's placement search gets seed 0; use ByNameSeeded
// to steer it.
func ByName(name string, workers int) (Finder, error) {
	return ByNameSeeded(name, workers, 0)
}

// ByNameSeeded is ByName with an explicit placement-search seed for the
// "anneal" finder (the other algorithms are deterministic and ignore
// it). An unknown name is rejected with the registered names listed.
func ByNameSeeded(name string, workers int, seed int64) (Finder, error) {
	switch name {
	case "", "shape":
		return ShapeFinder{}, nil
	case "naive":
		return NaiveFinder{}, nil
	case "pop":
		return POPFinder{}, nil
	case "fast":
		return NewFastFinder(workers), nil
	case "anneal":
		return NewAnnealFinder(seed, workers), nil
	}
	return nil, fmt.Errorf("partition: unknown finder %q (registered finders: %s)",
		name, strings.Join(Names, ", "))
}

// baseRange returns the number of candidate base positions along a
// dimension of extent dim for a shape extent ext.
func baseRange(dim, ext int, wrap bool) int {
	if ext > dim {
		return 0
	}
	if !wrap {
		return dim - ext + 1
	}
	if ext == dim {
		return 1 // all bases equivalent; canonical base is 0
	}
	return dim
}

// sortPartitions orders partitions lexicographically by shape then base,
// giving every finder the same deterministic output order.
func sortPartitions(ps []torus.Partition) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		if a.Shape != b.Shape {
			if a.Shape.X != b.Shape.X {
				return a.Shape.X < b.Shape.X
			}
			if a.Shape.Y != b.Shape.Y {
				return a.Shape.Y < b.Shape.Y
			}
			return a.Shape.Z < b.Shape.Z
		}
		if a.Base.X != b.Base.X {
			return a.Base.X < b.Base.X
		}
		if a.Base.Y != b.Base.Y {
			return a.Base.Y < b.Base.Y
		}
		return a.Base.Z < b.Base.Z
	})
}

// computeRunsInto fills runs[i] with the length of the maximal run of
// true values starting at index i (wrap-aware, capped at n).
// len(runs) must be >= n; val is consulted for indices [0, n).
func computeRunsInto(val func(int) bool, n int, wrap bool, runs []int) {
	allTrue := true
	for i := n - 1; i >= 0; i-- {
		if !val(i) {
			runs[i] = 0
			allTrue = false
		} else if i == n-1 {
			runs[i] = 1
		} else {
			runs[i] = runs[i+1] + 1
		}
	}
	if allTrue {
		for i := 0; i < n; i++ {
			runs[i] = n
		}
		return
	}
	if wrap && n > 1 && val(n-1) && val(0) {
		// Extend runs touching the high edge around the wrap point.
		head := runs[0]
		for i := n - 1; i >= 0 && val(i); i-- {
			runs[i] += head
			if runs[i] > n {
				runs[i] = n
			}
		}
	}
}

// mfpScratch holds reusable buffers for MaxFree; pooled to keep the
// hot placement-evaluation path allocation-free.
type mfpScratch struct {
	zRuns []int  // per-node z run lengths
	colOK []bool // dimX*dimY projected plane
	yRun  []int  // dimX*dimY y-run lengths on the plane
	rowOK []bool // dimX row flags
	xRun  []int  // dimX x-run lengths
}

var scratchPool = sync.Pool{New: func() any { return new(mfpScratch) }}

func (s *mfpScratch) ensure(g torus.Geometry) {
	n := g.N()
	plane := g.Dims.X * g.Dims.Y
	if cap(s.zRuns) < n {
		s.zRuns = make([]int, n)
	}
	s.zRuns = s.zRuns[:n]
	if cap(s.colOK) < plane {
		s.colOK = make([]bool, plane)
		s.yRun = make([]int, plane)
	}
	s.colOK = s.colOK[:plane]
	s.yRun = s.yRun[:plane]
	if cap(s.rowOK) < g.Dims.X {
		s.rowOK = make([]bool, g.Dims.X)
		s.xRun = make([]int, g.Dims.X)
	}
	s.rowOK = s.rowOK[:g.Dims.X]
	s.xRun = s.xRun[:g.Dims.X]
}

// fillZRuns computes per-column z run lengths of free nodes.
func (s *mfpScratch) fillZRuns(gr *torus.Grid) {
	g := gr.Geometry()
	dims := g.Dims
	for x := 0; x < dims.X; x++ {
		for y := 0; y < dims.Y; y++ {
			col := (x*dims.Y + y) * dims.Z
			computeRunsInto(func(z int) bool { return gr.NodeFree(col + z) },
				dims.Z, g.Wrap, s.zRuns[col:col+dims.Z])
		}
	}
}

// MaxFree returns the maximal free partition (MFP) of the grid: the
// free, contiguous, rectangular partition with the greatest node count,
// and that count. If the machine is completely full it returns size 0.
//
// The MFP is the quantity Krevat's heuristic (and this paper's L_MFP
// factor) is built on. The implementation projects each z-window onto a
// 2D plane and finds the plane's maximum all-true rectangle, reusing
// pooled scratch buffers so repeated hypothetical-placement evaluations
// do not allocate.
func MaxFree(gr *torus.Grid) (torus.Partition, int) {
	g := gr.Geometry()
	dims := g.Dims
	sc := scratchPool.Get().(*mfpScratch)
	defer scratchPool.Put(sc)
	sc.ensure(g)
	sc.fillZRuns(gr)

	best := 0
	var bestPart torus.Partition
	plane := dims.X * dims.Y

	for bz := 0; bz < dims.Z; bz++ {
		// Descending sz gives the strongest pruning: once a window
		// cannot beat the best volume even with a full plane, no
		// smaller sz at this bz can either.
		for sz := dims.Z; sz >= 1; sz-- {
			if plane*sz <= best {
				break
			}
			if g.Wrap && sz == dims.Z && bz != 0 {
				continue
			}
			if !g.Wrap && bz+sz > dims.Z {
				continue
			}
			// Project: column (x,y) is usable if its z-run covers the
			// window.
			usable := 0
			for x := 0; x < dims.X; x++ {
				row := x * dims.Y
				zrow := row * dims.Z
				for y := 0; y < dims.Y; y++ {
					ok := sc.zRuns[zrow+y*dims.Z+bz] >= sz
					sc.colOK[row+y] = ok
					if ok {
						usable++
					}
				}
			}
			if usable*sz <= best {
				continue
			}
			area, bx, by, sx, sy := sc.maxRect2D(dims.X, dims.Y, g.Wrap)
			if area*sz > best {
				best = area * sz
				bestPart = torus.Partition{
					Base:  torus.Coord{X: bx, Y: by, Z: bz},
					Shape: torus.Shape{X: sx, Y: sy, Z: sz},
				}
			}
		}
	}
	return bestPart, best
}

// MaxFreeSize returns just the size of the maximal free partition.
func MaxFreeSize(gr *torus.Grid) int {
	_, s := MaxFree(gr)
	return s
}

// maxRect2D finds the maximum-area all-true rectangle in the scratch's
// colOK plane (dx*dy, wrap-aware in both dimensions). Rectangles
// spanning a full dimension are canonicalised to base 0.
func (s *mfpScratch) maxRect2D(dx, dy int, wrap bool) (area, bx, by, sx, sy int) {
	for x := 0; x < dx; x++ {
		row := x * dy
		computeRunsInto(func(y int) bool { return s.colOK[row+y] }, dy, wrap, s.yRun[row:row+dy])
	}
	for by0 := 0; by0 < dy; by0++ {
		for sy0 := dy; sy0 >= 1; sy0-- {
			if dx*sy0 <= area {
				break
			}
			if wrap && sy0 == dy && by0 != 0 {
				continue
			}
			if !wrap && by0+sy0 > dy {
				continue
			}
			for x := 0; x < dx; x++ {
				s.rowOK[x] = s.yRun[x*dy+by0] >= sy0
			}
			computeRunsInto(func(x int) bool { return s.rowOK[x] }, dx, wrap, s.xRun)
			for x := 0; x < dx; x++ {
				r := s.xRun[x]
				if wrap && r == dx && x != 0 {
					continue
				}
				if a := r * sy0; a > area {
					area, bx, by, sx, sy = a, x, by0, r, sy0
				}
			}
		}
	}
	return
}
