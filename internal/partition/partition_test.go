package partition

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"bgsched/internal/torus"
)

// finders lists every algorithm; the agreement tests below replay each
// grid against all of them. Both fast variants (sequential and
// parallel) ride along so the cache and pool paths face the same
// scrutiny as the scan-based finders.
var finders = []Finder{NaiveFinder{}, POPFinder{}, ShapeFinder{}, NewFastFinder(0), NewFastFinder(4), NewAnnealFinder(1, 0)}

func randomGrid(t *testing.T, g torus.Geometry, fillProb float64, seed int64) *torus.Grid {
	t.Helper()
	gr := torus.NewGrid(g)
	rng := rand.New(rand.NewSource(seed))
	owner := int64(1)
	for id := 0; id < g.N(); id++ {
		if rng.Float64() < fillProb {
			c := g.CoordOf(id)
			p := torus.Partition{Base: c, Shape: torus.Shape{X: 1, Y: 1, Z: 1}}
			if err := gr.Allocate(p, owner); err != nil {
				t.Fatalf("Allocate: %v", err)
			}
			owner++
		}
	}
	return gr
}

func TestFindersAgreeOnEmptyGrid(t *testing.T) {
	for _, g := range []torus.Geometry{torus.BlueGeneL(), torus.NewGeometry(4, 4, 8, false)} {
		gr := torus.NewGrid(g)
		for _, size := range []int{1, 2, 3, 8, 12, 32, 64, 128} {
			want := finders[0].FreeOfSize(gr, size)
			for _, f := range finders[1:] {
				got := f.FreeOfSize(gr, size)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("wrap=%v size=%d: %s returned %d parts, %s returned %d",
						g.Wrap, size, finders[0].Name(), len(want), f.Name(), len(got))
				}
			}
		}
	}
}

// TestFindersAgreeAsymmetric covers a machine with three distinct
// dimensions, where axis-confusion bugs show up.
func TestFindersAgreeAsymmetric(t *testing.T) {
	for _, wrap := range []bool{true, false} {
		g := torus.NewGeometry(3, 5, 7, wrap)
		for seed := int64(0); seed < 10; seed++ {
			gr := randomGrid(t, g, float64(seed)/10, 900+seed)
			for _, size := range []int{1, 3, 5, 7, 15, 21, 35, 105} {
				want := finders[0].FreeOfSize(gr, size)
				for _, f := range finders[1:] {
					got := f.FreeOfSize(gr, size)
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("3x5x7 wrap=%v seed=%d size=%d: %s != %s (%d vs %d)",
							wrap, seed, size, f.Name(), finders[0].Name(), len(got), len(want))
					}
				}
			}
			_, fast := MaxFree(gr)
			_, naive := MaxFreeNaive(gr)
			if fast != naive {
				t.Fatalf("3x5x7 wrap=%v seed=%d: MaxFree %d != naive %d", wrap, seed, fast, naive)
			}
		}
	}
}

func TestFindersAgreeOnRandomGrids(t *testing.T) {
	for _, wrap := range []bool{true, false} {
		g := torus.NewGeometry(4, 4, 8, wrap)
		for seed := int64(0); seed < 30; seed++ {
			fill := float64(seed%10) / 10.0
			gr := randomGrid(t, g, fill, seed)
			for _, size := range []int{1, 2, 4, 6, 8, 16, 24, 32, 64, 128} {
				want := finders[0].FreeOfSize(gr, size)
				for _, f := range finders[1:] {
					got := f.FreeOfSize(gr, size)
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("wrap=%v seed=%d fill=%.1f size=%d: %s != %s (%d vs %d parts)",
							wrap, seed, fill, size, f.Name(), finders[0].Name(), len(got), len(want))
					}
				}
			}
		}
	}
}

func TestFreeOfSizeResultsAreActuallyFree(t *testing.T) {
	g := torus.BlueGeneL()
	for seed := int64(0); seed < 10; seed++ {
		gr := randomGrid(t, g, 0.4, 100+seed)
		for _, f := range finders {
			for _, size := range []int{4, 8, 16} {
				for _, p := range f.FreeOfSize(gr, size) {
					if p.Size() != size {
						t.Fatalf("%s returned partition %v of size %d, want %d", f.Name(), p, p.Size(), size)
					}
					if !g.ValidPartition(p) {
						t.Fatalf("%s returned invalid partition %v", f.Name(), p)
					}
					if !gr.PartitionFree(p) {
						t.Fatalf("%s returned non-free partition %v", f.Name(), p)
					}
				}
			}
		}
	}
}

func TestFreeOfSizeCanonicalBases(t *testing.T) {
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	for _, f := range finders {
		seen := make(map[torus.Partition]bool)
		for _, p := range f.FreeOfSize(gr, 128) {
			if seen[p] {
				t.Fatalf("%s returned duplicate partition %v", f.Name(), p)
			}
			seen[p] = true
			if p.Base != (torus.Coord{}) {
				t.Fatalf("%s: full-machine partition must have canonical base 0, got %v", f.Name(), p)
			}
		}
		// Full x extent: base.X must be 0.
		for _, p := range f.FreeOfSize(gr, 16) {
			if p.Shape.X == 4 && p.Base.X != 0 {
				t.Fatalf("%s: shape spanning x must have Base.X=0, got %v", f.Name(), p)
			}
		}
	}
}

func TestFreeOfSizeInfeasible(t *testing.T) {
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	for _, f := range finders {
		if got := f.FreeOfSize(gr, 11); len(got) != 0 {
			t.Errorf("%s: FreeOfSize(11) = %v, want empty (infeasible)", f.Name(), got)
		}
		if got := f.FreeOfSize(gr, 0); len(got) != 0 {
			t.Errorf("%s: FreeOfSize(0) = %v, want empty", f.Name(), got)
		}
		if got := f.FreeOfSize(gr, 200); len(got) != 0 {
			t.Errorf("%s: FreeOfSize(200) = %v, want empty", f.Name(), got)
		}
	}
}

func TestFreeOfSizeOnFullMachine(t *testing.T) {
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	full := torus.Partition{Base: torus.Coord{}, Shape: torus.Shape{X: 4, Y: 4, Z: 8}}
	if err := gr.Allocate(full, 1); err != nil {
		t.Fatal(err)
	}
	for _, f := range finders {
		for _, size := range []int{1, 8, 128} {
			if got := f.FreeOfSize(gr, size); len(got) != 0 {
				t.Errorf("%s: full machine FreeOfSize(%d) = %d parts, want 0", f.Name(), size, len(got))
			}
		}
	}
}

func TestMaxFreeMatchesNaive(t *testing.T) {
	for _, wrap := range []bool{true, false} {
		g := torus.NewGeometry(4, 4, 8, wrap)
		for seed := int64(0); seed < 40; seed++ {
			fill := float64(seed%10) / 10.0
			gr := randomGrid(t, g, fill, 500+seed)
			pFast, sFast := MaxFree(gr)
			_, sNaive := MaxFreeNaive(gr)
			if sFast != sNaive {
				t.Fatalf("wrap=%v seed=%d: MaxFree size = %d, naive = %d", wrap, seed, sFast, sNaive)
			}
			if sFast > 0 {
				if !gr.PartitionFree(pFast) {
					t.Fatalf("MaxFree returned non-free partition %v", pFast)
				}
				if pFast.Size() != sFast {
					t.Fatalf("MaxFree partition %v has size %d, reported %d", pFast, pFast.Size(), sFast)
				}
			}
		}
	}
}

func TestMaxFreeEmptyAndFull(t *testing.T) {
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	p, s := MaxFree(gr)
	if s != 128 || p.Size() != 128 {
		t.Fatalf("empty machine MaxFree = %v size %d, want full 128", p, s)
	}
	full := torus.Partition{Base: torus.Coord{}, Shape: torus.Shape{X: 4, Y: 4, Z: 8}}
	if err := gr.Allocate(full, 1); err != nil {
		t.Fatal(err)
	}
	if _, s := MaxFree(gr); s != 0 {
		t.Fatalf("full machine MaxFree size = %d, want 0", s)
	}
	if s := MaxFreeSize(torus.NewGrid(g)); s != 128 {
		t.Fatalf("MaxFreeSize(empty) = %d, want 128", s)
	}
}

func TestMaxFreeWrapWindow(t *testing.T) {
	// Occupy the middle z plane; the largest free box must wrap around
	// the z edge on a torus but not on a mesh.
	for _, wrap := range []bool{true, false} {
		g := torus.NewGeometry(4, 4, 8, wrap)
		gr := torus.NewGrid(g)
		plane := torus.Partition{Base: torus.Coord{Z: 4}, Shape: torus.Shape{X: 4, Y: 4, Z: 1}}
		if err := gr.Allocate(plane, 1); err != nil {
			t.Fatal(err)
		}
		_, s := MaxFree(gr)
		want := 4 * 4 * 4 // mesh: z in [0,4)
		if wrap {
			want = 4 * 4 * 7 // torus: z window [5..7,0..3] wraps
		}
		if s != want {
			t.Fatalf("wrap=%v MaxFree size = %d, want %d", wrap, s, want)
		}
	}
}

func TestFinderNames(t *testing.T) {
	names := map[string]bool{}
	for _, f := range finders {
		if f.Name() == "" {
			t.Fatal("empty finder name")
		}
		if _, isFast := f.(*FastFinder); isFast {
			continue // both fast variants intentionally share a name
		}
		if names[f.Name()] {
			t.Fatalf("duplicate finder name %q", f.Name())
		}
		names[f.Name()] = true
	}
	for _, name := range Names {
		f, err := ByName(name, 2)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if f.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, f.Name())
		}
	}
	if f, err := ByName("", 0); err != nil || f.Name() != "shape" {
		t.Fatalf("ByName(\"\") = %v, %v; want the shape default", f, err)
	}
	_, err := ByName("bogus", 0)
	if err == nil {
		t.Fatal("ByName must reject unknown algorithms")
	}
	// The rejection must tell the caller what IS available: every
	// registered name appears in the message.
	for _, name := range Names {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("ByName error %q does not list registered finder %q", err, name)
		}
	}
}

// TestByNameRoundTrip covers every registered name: construction
// succeeds, the finder reports the same name back, and the seeded
// variant threads the seed into the annealer.
func TestByNameRoundTrip(t *testing.T) {
	for _, name := range Names {
		for _, workers := range []int{0, 2} {
			f, err := ByNameSeeded(name, workers, 42)
			if err != nil {
				t.Fatalf("ByNameSeeded(%q, %d): %v", name, workers, err)
			}
			if f.Name() != name {
				t.Fatalf("ByNameSeeded(%q).Name() = %q", name, f.Name())
			}
			if af, ok := f.(*AnnealFinder); ok && af.Seed() != 42 {
				t.Fatalf("anneal finder seed = %d, want 42", af.Seed())
			}
		}
	}
}

func benchGrid(b *testing.B, fill float64) *torus.Grid {
	b.Helper()
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	rng := rand.New(rand.NewSource(1))
	owner := int64(1)
	for id := 0; id < g.N(); id++ {
		if rng.Float64() < fill {
			c := g.CoordOf(id)
			if err := gr.Allocate(torus.Partition{Base: c, Shape: torus.Shape{X: 1, Y: 1, Z: 1}}, owner); err != nil {
				b.Fatal(err)
			}
			owner++
		}
	}
	return gr
}

func BenchmarkFreeOfSize(b *testing.B) {
	gr := benchGrid(b, 0.3)
	for _, f := range finders {
		b.Run(f.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.FreeOfSize(gr, 8)
			}
		})
	}
}

func BenchmarkMaxFree(b *testing.B) {
	gr := benchGrid(b, 0.3)
	b.Run("projection", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MaxFree(gr)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MaxFreeNaive(gr)
		}
	})
}
