package partition_test

import (
	"fmt"

	"bgsched/internal/partition"
	"bgsched/internal/torus"
)

// Finding every free partition for an 8-node job, and the machine's
// maximal free partition, after half the torus is occupied.
func Example() {
	g := torus.BlueGeneL()
	grid := torus.NewGrid(g)

	// Occupy the z < 4 half of the machine.
	half := torus.Partition{Base: torus.Coord{}, Shape: torus.Shape{X: 4, Y: 4, Z: 4}}
	if err := grid.Allocate(half, 1); err != nil {
		fmt.Println(err)
		return
	}

	finder := partition.ShapeFinder{} // the paper's Appendix 9 algorithm
	cands := finder.FreeOfSize(grid, 8)
	fmt.Println("free 8-node partitions:", len(cands))
	fmt.Println("first candidate:", cands[0])

	mfp, size := partition.MaxFree(grid)
	fmt.Println("maximal free partition:", mfp, "=", size, "nodes")
	// Output:
	// free 8-node partitions: 136
	// first candidate: (0,0,4)+1x2x4
	// maximal free partition: (0,0,4)+4x4x4 = 64 nodes
}
