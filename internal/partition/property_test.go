package partition_test

import (
	"fmt"
	"math/rand"
	"testing"

	"bgsched/internal/partition"
	"bgsched/internal/partition/oracle"
	"bgsched/internal/torus"
)

// This file is the property-based layer of the finder test suite:
// instead of fixed examples, it draws hundreds of random occupancy
// patterns, checks the universal properties every finder must uphold,
// and — the part example tests cannot do — shrinks any failure to a
// minimal reproduction before reporting it. Shrinking frees one busy
// cell at a time as long as the property still fails, so the dump in
// the failure message shows the fewest busy nodes that trigger the
// bug, not the random noise the generator happened to draw.

// buildGrid materialises an occupancy pattern (busy mask) as a grid.
func buildGrid(t testing.TB, g torus.Geometry, busy []bool) *torus.Grid {
	t.Helper()
	gr := torus.NewGrid(g)
	owner := int64(1)
	for id, b := range busy {
		if !b {
			continue
		}
		p := torus.Partition{Base: g.CoordOf(id), Shape: torus.Shape{X: 1, Y: 1, Z: 1}}
		if err := gr.Allocate(p, owner); err != nil {
			t.Fatalf("building occupancy: %v", err)
		}
		owner++
	}
	return gr
}

// randomBusy draws a busy mask with the given fill probability.
func randomBusy(g torus.Geometry, fill float64, rng *rand.Rand) []bool {
	busy := make([]bool, g.N())
	for i := range busy {
		busy[i] = rng.Float64() < fill
	}
	return busy
}

// property is a predicate over one (grid, size) input; nil means it
// holds, an error describes the violation.
type property func(g torus.Geometry, busy []bool, size int) error

// shrink greedily minimises a failing busy mask: repeatedly free any
// single busy cell whose removal keeps the property failing, until no
// cell can be removed. The result is a local minimum — every busy cell
// in it is necessary for the failure.
func shrink(g torus.Geometry, busy []bool, size int, prop property) ([]bool, error) {
	busy = append([]bool(nil), busy...)
	err := prop(g, busy, size)
	if err == nil {
		return busy, nil
	}
	for changed := true; changed; {
		changed = false
		for id := range busy {
			if !busy[id] {
				continue
			}
			busy[id] = false
			if e := prop(g, busy, size); e != nil {
				err = e // keep the minimal failure's own message
				changed = true
				continue
			}
			busy[id] = true
		}
	}
	return busy, err
}

// reportShrunk fails the test with the minimal reproduction.
func reportShrunk(t *testing.T, g torus.Geometry, busy []bool, size int, prop property) {
	t.Helper()
	minBusy, err := shrink(g, busy, size, prop)
	n := 0
	for _, b := range minBusy {
		if b {
			n++
		}
	}
	t.Fatalf("property violated; minimal reproduction (%d busy cells, size=%d):\n%s%v",
		n, size, oracle.DumpGrid(buildGrid(t, g, minBusy)), err)
}

// checkFinderProperties verifies every universal finder property on
// one input: each candidate is a valid rectangular partition of
// exactly the requested size, fully free, canonically based, and the
// list is strictly sorted (hence duplicate-free).
func checkFinderProperties(f partition.Finder) property {
	return func(g torus.Geometry, busy []bool, size int) error {
		gr := torus.NewGrid(g)
		owner := int64(1)
		for id, b := range busy {
			if !b {
				continue
			}
			p := torus.Partition{Base: g.CoordOf(id), Shape: torus.Shape{X: 1, Y: 1, Z: 1}}
			if err := gr.Allocate(p, owner); err != nil {
				return nil // unreachable for unit allocations
			}
			owner++
		}
		ps := f.FreeOfSize(gr, size)
		for j, p := range ps {
			switch {
			case !g.ValidPartition(p):
				return fmt.Errorf("%s: candidate %d (%v) is not a valid partition", f.Name(), j, p)
			case p.Size() != size:
				return fmt.Errorf("%s: candidate %d (%v) has size %d, want %d", f.Name(), j, p, p.Size(), size)
			case !gr.PartitionFree(p):
				return fmt.Errorf("%s: candidate %d (%v) is not fully free", f.Name(), j, p)
			case p.Shape.X == g.Dims.X && p.Base.X != 0,
				p.Shape.Y == g.Dims.Y && p.Base.Y != 0,
				p.Shape.Z == g.Dims.Z && p.Base.Z != 0:
				return fmt.Errorf("%s: candidate %d (%v) is not canonicalised", f.Name(), j, p)
			}
		}
		for j := 1; j < len(ps); j++ {
			if !partitionLessTest(ps[j-1], ps[j]) {
				return fmt.Errorf("%s: candidates %d..%d out of order or duplicated (%v then %v)",
					f.Name(), j-1, j, ps[j-1], ps[j])
			}
		}
		return nil
	}
}

// checkAgreesWithNaive is the differential property: identical result
// sets to the exhaustive reference.
func checkAgreesWithNaive(f partition.Finder) property {
	return func(g torus.Geometry, busy []bool, size int) error {
		gr := torus.NewGrid(g)
		owner := int64(1)
		for id, b := range busy {
			if !b {
				continue
			}
			p := torus.Partition{Base: g.CoordOf(id), Shape: torus.Shape{X: 1, Y: 1, Z: 1}}
			if err := gr.Allocate(p, owner); err != nil {
				return nil
			}
			owner++
		}
		want := (partition.NaiveFinder{}).FreeOfSize(gr, size)
		got := f.FreeOfSize(gr, size)
		if len(got) != len(want) {
			return fmt.Errorf("%s found %d candidates, naive found %d", f.Name(), len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				return fmt.Errorf("%s candidate %d is %v, naive has %v", f.Name(), j, got[j], want[j])
			}
		}
		return nil
	}
}

// partitionLessTest mirrors the finders' shape-major output order.
func partitionLessTest(a, b torus.Partition) bool {
	if a.Shape != b.Shape {
		if a.Shape.X != b.Shape.X {
			return a.Shape.X < b.Shape.X
		}
		if a.Shape.Y != b.Shape.Y {
			return a.Shape.Y < b.Shape.Y
		}
		return a.Shape.Z < b.Shape.Z
	}
	if a.Base.X != b.Base.X {
		return a.Base.X < b.Base.X
	}
	if a.Base.Y != b.Base.Y {
		return a.Base.Y < b.Base.Y
	}
	return a.Base.Z < b.Base.Z
}

// propertyFinders builds a fresh finder set per run so the fast
// finder's cache state cannot couple test cases.
func propertyFinders() []partition.Finder {
	return []partition.Finder{
		partition.NaiveFinder{},
		partition.POPFinder{},
		partition.ShapeFinder{},
		partition.NewFastFinder(0),
		partition.NewFastFinder(4),
	}
}

// TestFinderProperties draws random occupancy patterns over torus and
// mesh geometries and checks the universal properties of every finder,
// shrinking any failure to a minimal busy set before reporting.
func TestFinderProperties(t *testing.T) {
	geoms := []torus.Geometry{
		torus.BlueGeneL(),
		torus.NewGeometry(4, 4, 8, false),
		torus.NewGeometry(3, 5, 7, true),
	}
	rng := rand.New(rand.NewSource(20260806))
	for _, g := range geoms {
		sizes := g.FeasibleSizes()
		for trial := 0; trial < 60; trial++ {
			busy := randomBusy(g, rng.Float64(), rng)
			size := sizes[rng.Intn(len(sizes))]
			for _, f := range propertyFinders() {
				prop := checkFinderProperties(f)
				if err := prop(g, busy, size); err != nil {
					t.Logf("initial failure: %v", err)
					reportShrunk(t, g, busy, size, prop)
				}
			}
		}
	}
}

// TestFinderAgreementProperty is the differential property under the
// same generator: every finder matches the naive reference exactly,
// with shrinking on failure.
func TestFinderAgreementProperty(t *testing.T) {
	g := torus.NewGeometry(3, 3, 4, true)
	sizes := g.FeasibleSizes()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 80; trial++ {
		busy := randomBusy(g, rng.Float64(), rng)
		size := sizes[rng.Intn(len(sizes))]
		for _, f := range propertyFinders()[1:] {
			prop := checkAgreesWithNaive(f)
			if err := prop(g, busy, size); err != nil {
				t.Logf("initial failure: %v", err)
				reportShrunk(t, g, busy, size, prop)
			}
		}
	}
}

// TestShrinkerActuallyShrinks proves the shrinker does its job: given
// a property that fails whenever one specific cell is busy, shrinking
// a heavily-filled failing state must reduce it to exactly that cell.
func TestShrinkerActuallyShrinks(t *testing.T) {
	g := torus.NewGeometry(3, 3, 4, true)
	target := g.Index(torus.Coord{X: 1, Y: 2, Z: 3})
	prop := func(_ torus.Geometry, busy []bool, _ int) error {
		if busy[target] {
			return fmt.Errorf("cell %d is busy", target)
		}
		return nil
	}
	rng := rand.New(rand.NewSource(7))
	busy := randomBusy(g, 0.8, rng)
	busy[target] = true
	minBusy, err := shrink(g, busy, 1, prop)
	if err == nil {
		t.Fatal("shrink lost the failure")
	}
	for id, b := range minBusy {
		if b != (id == target) {
			t.Fatalf("shrunk state is not minimal: cell %d busy=%v", id, b)
		}
	}
}
