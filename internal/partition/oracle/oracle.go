// Package oracle is the differential-testing harness for the
// free-partition finders: it replays allocate/free/query operation
// sequences against every finder algorithm simultaneously — naive
// exhaustive, POP projection, shape enumeration and the cached fast
// path — and fails on any divergence in feasibility (one algorithm
// finds candidates another does not), candidate sets, per-candidate
// validity (rectangular, fully free, exactly the requested size), or
// the maximal-free-partition size.
//
// The paper's finders are pure functions of the occupancy grid, which
// makes exact differential testing possible: FreEPARTS is a defined
// set, so any two correct algorithms must return identical, sorted,
// canonicalised slices. The oracle is what lets the optimized fast
// path ship with proof it never diverges from the O(M^9) reference.
//
// Operations are plain values, so sequences come from three sources:
// RandomOps (seeded generators for the randomized regression suite),
// DecodeOps (byte strings, for the native fuzz target), and literal
// slices (regression cases distilled from failures).
package oracle

import (
	"fmt"
	"math/rand"
	"strings"

	"bgsched/internal/partition"
	"bgsched/internal/torus"
)

// OpKind is the operation discriminator.
type OpKind uint8

const (
	// OpAlloc queries all finders for Size, verifies agreement, then
	// allocates the candidate selected by Pick (no-op when none fit).
	OpAlloc OpKind = iota
	// OpFree releases the live allocation selected by Pick (no-op when
	// nothing is allocated).
	OpFree
	// OpQuery queries all finders for Size and verifies agreement plus
	// the MFP invariants, mutating nothing.
	OpQuery
	// OpSnapshot round-trips the occupancy grid through its serialized
	// owner map (the same mechanism simulator snapshot restore uses) and
	// swaps the live grid for the restored copy, then re-verifies finder
	// agreement on it. The restored grid has a fresh identity, so a
	// finder cache keyed on grid identity that survived the swap — stale
	// state a restore must never inherit — diverges here.
	OpSnapshot
	opKinds // count sentinel
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpAlloc:
		return "alloc"
	case OpFree:
		return "free"
	case OpQuery:
		return "query"
	case OpSnapshot:
		return "snapshot"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one replayable operation. Out-of-range values are reduced
// modulo the legal range during replay, so every byte string and every
// random draw is a valid sequence (crucial for fuzzing: the whole
// input space is reachable states, not parse errors).
type Op struct {
	Kind OpKind
	Size int // alloc/query: requested partition size
	Pick int // alloc: candidate index; free: live-allocation index
}

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o.Kind {
	case OpFree:
		return fmt.Sprintf("free(pick=%d)", o.Pick)
	default:
		return fmt.Sprintf("%v(size=%d, pick=%d)", o.Kind, o.Size, o.Pick)
	}
}

// DefaultFinders returns the full algorithm set under test: the three
// scan finders, the fast path in both sequential and parallel
// configurations, and the annealing finder.
func DefaultFinders() []partition.Finder {
	return []partition.Finder{
		partition.NaiveFinder{},
		partition.POPFinder{},
		partition.ShapeFinder{},
		partition.NewFastFinder(0),
		partition.NewFastFinder(4),
		// The annealing finder delegates enumeration to an embedded fast
		// finder; riding in the oracle set proves its candidate sets stay
		// byte-identical (including across the OpSnapshot identity swap)
		// — only its placement preference differs, and that is outside
		// FreeOfSize.
		partition.NewAnnealFinder(1, 0),
	}
}

// Report tallies one replay.
type Report struct {
	Ops         int // operations executed
	Allocs      int // successful allocations
	Frees       int // successful releases
	Queries     int // finder comparisons performed (queries + alloc lookups)
	Comparisons int // pairwise finder result comparisons
	Snapshots   int // grid snapshot/restore round-trips
}

// DivergenceError describes a detected finder disagreement or
// invariant violation, with enough state to reproduce it: the op
// index, the offending finder, and the exact occupancy grid.
type DivergenceError struct {
	OpIndex int
	Op      Op
	Size    int    // effective (clamped) query size
	Finder  string // algorithm that diverged or misbehaved
	Detail  string
	Grid    string // DumpGrid of the machine state at failure
}

// Error implements error.
func (e *DivergenceError) Error() string {
	return fmt.Sprintf("oracle: op %d %v (size %d): finder %s: %s\n%s",
		e.OpIndex, e.Op, e.Size, e.Finder, e.Detail, e.Grid)
}

// DumpGrid renders the occupancy as one x-row by y-column block per
// z-slice ('.' free, '#' busy), the shape divergence reports embed.
func DumpGrid(gr *torus.Grid) string {
	g := gr.Geometry()
	dims := g.Dims
	var b strings.Builder
	fmt.Fprintf(&b, "machine %s, %d/%d free\n", g.Spec(), gr.FreeCount(), g.N())
	for z := 0; z < dims.Z; z++ {
		fmt.Fprintf(&b, "z=%d\n", z)
		for x := 0; x < dims.X; x++ {
			for y := 0; y < dims.Y; y++ {
				if gr.NodeFree(g.Index(torus.Coord{X: x, Y: y, Z: z})) {
					b.WriteByte('.')
				} else {
					b.WriteByte('#')
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// liveAlloc is one allocation the replay can later free.
type liveAlloc struct {
	part  torus.Partition
	owner int64
}

// Replay executes ops on a fresh grid of geometry g, checking every
// query against every finder. It returns the replay tallies and the
// first divergence (nil error means all finders agreed everywhere).
// Finders defaults to DefaultFinders when nil; the first entry is the
// reference the others are compared against, so keep the naive finder
// first for a trustworthy oracle.
func Replay(g torus.Geometry, ops []Op, finders []partition.Finder) (*Report, error) {
	if len(finders) == 0 {
		finders = DefaultFinders()
	}
	gr := torus.NewGrid(g)
	rep := &Report{}
	var live []liveAlloc
	nextOwner := int64(1)

	for i, op := range ops {
		rep.Ops++
		switch op.Kind % opKinds {
		case OpQuery:
			size := clampSize(op.Size, g)
			if _, err := checkQuery(rep, gr, size, finders, i, op); err != nil {
				return rep, err
			}
			if err := checkMFP(gr, i, op); err != nil {
				return rep, err
			}
		case OpAlloc:
			size := clampSize(op.Size, g)
			cands, err := checkQuery(rep, gr, size, finders, i, op)
			if err != nil {
				return rep, err
			}
			if len(cands) == 0 {
				continue // infeasible now; legal no-op
			}
			p := cands[mod(op.Pick, len(cands))]
			if err := gr.Allocate(p, nextOwner); err != nil {
				return rep, &DivergenceError{
					OpIndex: i, Op: op, Size: size, Finder: finders[0].Name(),
					Detail: fmt.Sprintf("returned unallocatable candidate %v: %v", p, err),
					Grid:   DumpGrid(gr),
				}
			}
			live = append(live, liveAlloc{part: p, owner: nextOwner})
			nextOwner++
			rep.Allocs++
		case OpSnapshot:
			owners := gr.Owners()
			restored, err := torus.NewGridFromOwners(g, owners)
			if err != nil {
				return rep, &DivergenceError{
					OpIndex: i, Op: op, Finder: "snapshot",
					Detail: fmt.Sprintf("owner round-trip rejected a live grid: %v", err),
					Grid:   DumpGrid(gr),
				}
			}
			if restored.FreeCount() != gr.FreeCount() {
				return rep, &DivergenceError{
					OpIndex: i, Op: op, Finder: "snapshot",
					Detail: fmt.Sprintf("restored grid has %d free nodes, original %d",
						restored.FreeCount(), gr.FreeCount()),
					Grid: DumpGrid(gr),
				}
			}
			gr = restored
			rep.Snapshots++
			// Every finder must agree on the restored grid exactly as it
			// did on the original.
			size := clampSize(op.Size, g)
			if _, err := checkQuery(rep, gr, size, finders, i, op); err != nil {
				return rep, err
			}
			if err := checkMFP(gr, i, op); err != nil {
				return rep, err
			}
		case OpFree:
			if len(live) == 0 {
				continue // nothing allocated; legal no-op
			}
			idx := mod(op.Pick, len(live))
			a := live[idx]
			if err := gr.Release(a.part, a.owner); err != nil {
				return rep, &DivergenceError{
					OpIndex: i, Op: op, Finder: "grid",
					Detail: fmt.Sprintf("release of live allocation %v failed: %v", a.part, err),
					Grid:   DumpGrid(gr),
				}
			}
			live[idx] = live[len(live)-1]
			live = live[:len(live)-1]
			rep.Frees++
		}
	}
	return rep, nil
}

// checkQuery runs every finder for size, validates each candidate of
// each finder, and verifies all result sets are identical to the
// reference (finders[0]). Returns the reference candidates.
func checkQuery(rep *Report, gr *torus.Grid, size int, finders []partition.Finder, opIndex int, op Op) ([]torus.Partition, error) {
	rep.Queries++
	g := gr.Geometry()
	ref := finders[0].FreeOfSize(gr, size)
	if err := validateSet(g, gr, ref, size, finders[0].Name(), opIndex, op); err != nil {
		return nil, err
	}
	for _, f := range finders[1:] {
		rep.Comparisons++
		got := f.FreeOfSize(gr, size)
		if err := validateSet(g, gr, got, size, f.Name(), opIndex, op); err != nil {
			return nil, err
		}
		if len(got) != len(ref) {
			return nil, &DivergenceError{
				OpIndex: opIndex, Op: op, Size: size, Finder: f.Name(),
				Detail: fmt.Sprintf("found %d candidates, reference %s found %d",
					len(got), finders[0].Name(), len(ref)),
				Grid: DumpGrid(gr),
			}
		}
		for j := range got {
			if got[j] != ref[j] {
				return nil, &DivergenceError{
					OpIndex: opIndex, Op: op, Size: size, Finder: f.Name(),
					Detail: fmt.Sprintf("candidate %d is %v, reference %s has %v",
						j, got[j], finders[0].Name(), ref[j]),
					Grid: DumpGrid(gr),
				}
			}
		}
	}
	return ref, nil
}

// validateSet checks the per-candidate invariants every finder must
// uphold: legal rectangular partition (wraparound included), exactly
// the requested size, fully free, canonical bases on full-span
// dimensions, and strictly sorted output (which also forbids
// duplicates).
func validateSet(g torus.Geometry, gr *torus.Grid, ps []torus.Partition, size int, finder string, opIndex int, op Op) error {
	fail := func(detail string) error {
		return &DivergenceError{
			OpIndex: opIndex, Op: op, Size: size, Finder: finder,
			Detail: detail, Grid: DumpGrid(gr),
		}
	}
	for j, p := range ps {
		if !g.ValidPartition(p) {
			return fail(fmt.Sprintf("candidate %d (%v) is not a valid partition", j, p))
		}
		if p.Size() != size {
			return fail(fmt.Sprintf("candidate %d (%v) has size %d, want %d", j, p, p.Size(), size))
		}
		if !gr.PartitionFree(p) {
			return fail(fmt.Sprintf("candidate %d (%v) is not fully free", j, p))
		}
		if (p.Shape.X == g.Dims.X && p.Base.X != 0) ||
			(p.Shape.Y == g.Dims.Y && p.Base.Y != 0) ||
			(p.Shape.Z == g.Dims.Z && p.Base.Z != 0) {
			return fail(fmt.Sprintf("candidate %d (%v) is not canonicalised", j, p))
		}
		if j > 0 && !partitionLess(ps[j-1], p) {
			return fail(fmt.Sprintf("candidates %d..%d out of order or duplicated (%v then %v)",
				j-1, j, ps[j-1], p))
		}
	}
	return nil
}

// checkMFP cross-checks the incremental MaxFree against the brute-
// force oracle: equal sizes, and a reported partition that is valid,
// free and of the reported size (whenever the machine is not full).
func checkMFP(gr *torus.Grid, opIndex int, op Op) error {
	g := gr.Geometry()
	part, got := partition.MaxFree(gr)
	_, want := partition.MaxFreeNaive(gr)
	fail := func(detail string) error {
		return &DivergenceError{
			OpIndex: opIndex, Op: op, Finder: "maxfree",
			Detail: detail, Grid: DumpGrid(gr),
		}
	}
	if got != want {
		return fail(fmt.Sprintf("MaxFree size %d, naive oracle %d", got, want))
	}
	if got == 0 {
		return nil
	}
	if !g.ValidPartition(part) || part.Size() != got || !gr.PartitionFree(part) {
		return fail(fmt.Sprintf("MaxFree partition %v invalid for reported size %d", part, got))
	}
	return nil
}

// partitionLess is the finders' output order: shape-major, then base.
func partitionLess(a, b torus.Partition) bool {
	if a.Shape != b.Shape {
		if a.Shape.X != b.Shape.X {
			return a.Shape.X < b.Shape.X
		}
		if a.Shape.Y != b.Shape.Y {
			return a.Shape.Y < b.Shape.Y
		}
		return a.Shape.Z < b.Shape.Z
	}
	if a.Base.X != b.Base.X {
		return a.Base.X < b.Base.X
	}
	if a.Base.Y != b.Base.Y {
		return a.Base.Y < b.Base.Y
	}
	return a.Base.Z < b.Base.Z
}

// clampSize reduces any integer into the legal request range [1, N].
func clampSize(size int, g torus.Geometry) int {
	return mod(size, g.N()) + 1
}

// mod is a non-negative modulo for pick/size reduction.
func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// RandomOps generates a seeded operation sequence of length n:
// roughly 40% allocations, 25% frees, 30% queries and 5% snapshot
// round-trips, with sizes drawn
// from the machine's feasible sizes (biased small, the way real job
// streams are) and occasional arbitrary sizes to exercise the
// no-legal-shape exits.
func RandomOps(g torus.Geometry, n int, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	feasible := g.FeasibleSizes()
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		var op Op
		switch r := rng.Float64(); {
		case r < 0.40:
			op.Kind = OpAlloc
		case r < 0.65:
			op.Kind = OpFree
		case r < 0.95:
			op.Kind = OpQuery
		default:
			op.Kind = OpSnapshot
		}
		if op.Kind != OpFree {
			if rng.Float64() < 0.85 {
				// Feasible, biased to the small sizes that dominate job
				// logs (squaring the uniform draw skews low).
				u := rng.Float64()
				op.Size = feasible[int(u*u*float64(len(feasible)))] - 1 // -1: clampSize adds 1 back
			} else {
				op.Size = rng.Intn(g.N()) // arbitrary, may have no shape
			}
		}
		op.Pick = rng.Intn(1 << 16)
		ops = append(ops, op)
	}
	return ops
}

// Config describes one randomized oracle run.
type Config struct {
	// Geometry of the machine; zero value means the BG/L 4x4x8 torus.
	Geometry torus.Geometry
	// Ops per sequence (default 32).
	Ops int
	// Seed drives the op generator.
	Seed int64
	// Finders under test; nil means DefaultFinders.
	Finders []partition.Finder
}

// Run generates a random op sequence from cfg and replays it.
func Run(cfg Config) (*Report, error) {
	g := cfg.Geometry
	if g.N() == 0 {
		g = torus.BlueGeneL()
	}
	n := cfg.Ops
	if n <= 0 {
		n = 32
	}
	return Replay(g, RandomOps(g, n, cfg.Seed), cfg.Finders)
}

// DecodeOps turns a byte string into an op sequence, three bytes per
// op (kind, size, pick); trailing bytes are dropped. Every byte string
// decodes to a valid sequence.
func DecodeOps(data []byte) []Op {
	ops := make([]Op, 0, len(data)/3)
	for i := 0; i+2 < len(data); i += 3 {
		ops = append(ops, Op{
			Kind: OpKind(data[i]) % opKinds,
			Size: int(data[i+1]),
			Pick: int(data[i+2]),
		})
	}
	return ops
}

// EncodeOps is the inverse of DecodeOps, used to build fuzz seed
// corpora from literal sequences.
func EncodeOps(ops []Op) []byte {
	data := make([]byte, 0, len(ops)*3)
	for _, op := range ops {
		data = append(data, byte(op.Kind), byte(op.Size), byte(op.Pick))
	}
	return data
}
