package oracle

import (
	"testing"

	"bgsched/internal/torus"
)

// fuzzGeoms are the machines the fuzzer replays on: small enough that
// the naive reference finder stays cheap per op, torus and mesh so the
// wraparound logic is under fire too.
var fuzzGeoms = []torus.Geometry{
	torus.NewGeometry(3, 3, 4, true),
	torus.NewGeometry(3, 3, 4, false),
}

// maxFuzzOps caps the decoded sequence so a single input cannot stall
// the fuzzer (each query brute-forces the naive finder).
const maxFuzzOps = 64

// FuzzFinderEquivalence feeds byte-encoded op sequences through the
// differential oracle. Any input where the finders disagree — or where
// any finder returns an invalid, non-free, non-canonical or unsorted
// candidate — crashes the fuzz run with a replayable grid dump.
func FuzzFinderEquivalence(f *testing.F) {
	// Wraparound partitions: picks near the top of the range select
	// late candidates, whose windows wrap the torus edges.
	f.Add(EncodeOps([]Op{
		{Kind: OpAlloc, Size: 5, Pick: 250},
		{Kind: OpAlloc, Size: 11, Pick: 251},
		{Kind: OpQuery, Size: 5, Pick: 0},
		{Kind: OpFree, Size: 0, Pick: 252},
		{Kind: OpQuery, Size: 17, Pick: 0},
	}))
	// Full torus: one machine-sized allocation, then queries against a
	// machine with zero free nodes (size byte 35 clamps to N=36).
	f.Add(EncodeOps([]Op{
		{Kind: OpAlloc, Size: 35, Pick: 0},
		{Kind: OpQuery, Size: 0, Pick: 0},
		{Kind: OpQuery, Size: 35, Pick: 0},
		{Kind: OpFree, Size: 0, Pick: 0},
		{Kind: OpQuery, Size: 35, Pick: 0},
	}))
	// Single free cell: unit allocations to the brink, leaving exactly
	// one node free, then queries of every feasibility class.
	singleFree := make([]Op, 0, 35+3)
	for i := 0; i < 35; i++ {
		singleFree = append(singleFree, Op{Kind: OpAlloc, Size: 0, Pick: i})
	}
	singleFree = append(singleFree,
		Op{Kind: OpQuery, Size: 0, Pick: 0},
		Op{Kind: OpQuery, Size: 1, Pick: 0},
		Op{Kind: OpQuery, Size: 35, Pick: 0},
	)
	f.Add(EncodeOps(singleFree))
	// Churn: interleaved allocate/free/query with odd sizes.
	f.Add(EncodeOps([]Op{
		{Kind: OpAlloc, Size: 3, Pick: 1},
		{Kind: OpAlloc, Size: 8, Pick: 7},
		{Kind: OpFree, Size: 0, Pick: 0},
		{Kind: OpAlloc, Size: 23, Pick: 99},
		{Kind: OpQuery, Size: 29, Pick: 0},
		{Kind: OpFree, Size: 0, Pick: 1},
		{Kind: OpQuery, Size: 2, Pick: 0},
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		ops := DecodeOps(data)
		if len(ops) > maxFuzzOps {
			ops = ops[:maxFuzzOps]
		}
		for _, g := range fuzzGeoms {
			if _, err := Replay(g, ops, nil); err != nil {
				t.Fatalf("wrap=%v: %v", g.Wrap, err)
			}
		}
	})
}
