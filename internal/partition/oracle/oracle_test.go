package oracle

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"bgsched/internal/partition"
	"bgsched/internal/torus"
)

// TestOracleRandomizedSequences is the headline differential run the
// issue demands: over a thousand randomized allocate/free/query
// sequences replayed against all finder algorithms at once, on small
// exhaustive geometries (where the naive reference is cheap enough to
// brute-force every query) and the real BG/L torus. Zero divergence
// tolerated.
func TestOracleRandomizedSequences(t *testing.T) {
	cases := []struct {
		geom torus.Geometry
		seqs int
		ops  int
	}{
		{torus.NewGeometry(3, 3, 4, true), 400, 30},
		{torus.NewGeometry(3, 3, 4, false), 300, 30},
		{torus.BlueGeneL(), 350, 25},
	}
	totalSeqs, totalOps, totalQueries := 0, 0, 0
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s_wrap=%v", tc.geom.Spec(), tc.geom.Wrap), func(t *testing.T) {
			t.Parallel()
			for seed := 0; seed < tc.seqs; seed++ {
				rep, err := Run(Config{Geometry: tc.geom, Ops: tc.ops, Seed: int64(seed)})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				totalOps += rep.Ops
				totalQueries += rep.Queries
			}
		})
		totalSeqs += tc.seqs
	}
	if totalSeqs < 1000 {
		t.Fatalf("only %d sequences configured, the oracle suite must run at least 1000", totalSeqs)
	}
}

// TestOracleStressesAllocAndFree makes sure the random mix actually
// mutates state: a run that never allocates or frees would be a
// read-only smoke test wearing an oracle costume.
func TestOracleStressesAllocAndFree(t *testing.T) {
	rep, err := Run(Config{Geometry: torus.NewGeometry(3, 3, 4, true), Ops: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Allocs == 0 || rep.Frees == 0 {
		t.Fatalf("degenerate run: %d allocs, %d frees over %d ops", rep.Allocs, rep.Frees, rep.Ops)
	}
	if rep.Comparisons == 0 {
		t.Fatal("no finder comparisons performed")
	}
}

// evilFinder wraps a real finder and corrupts its output in a
// configurable way — the self-test proving the oracle actually detects
// each class of divergence instead of vacuously passing.
type evilFinder struct {
	inner   partition.Finder
	corrupt func([]torus.Partition) []torus.Partition
}

func (e evilFinder) Name() string { return "evil" }

func (e evilFinder) FreeOfSize(gr *torus.Grid, size int) []torus.Partition {
	return e.corrupt(e.inner.FreeOfSize(gr, size))
}

// TestOracleDetectsDivergence: for every corruption mode the replay
// must fail with a DivergenceError naming the evil finder and carrying
// a grid dump.
func TestOracleDetectsDivergence(t *testing.T) {
	g := torus.NewGeometry(3, 3, 4, true)
	modes := []struct {
		name    string
		corrupt func([]torus.Partition) []torus.Partition
	}{
		{"drops a candidate", func(ps []torus.Partition) []torus.Partition {
			if len(ps) > 0 {
				return ps[1:]
			}
			return ps
		}},
		{"reorders candidates", func(ps []torus.Partition) []torus.Partition {
			if len(ps) > 1 {
				ps = append([]torus.Partition(nil), ps...)
				ps[0], ps[len(ps)-1] = ps[len(ps)-1], ps[0]
			}
			return ps
		}},
		{"shifts a base off the free set", func(ps []torus.Partition) []torus.Partition {
			if len(ps) > 0 {
				ps = append([]torus.Partition(nil), ps...)
				ps[0].Base.X = (ps[0].Base.X + 1) % 3
			}
			return ps
		}},
		{"invents an out-of-range partition", func(ps []torus.Partition) []torus.Partition {
			return append(append([]torus.Partition(nil), ps...),
				torus.Partition{Base: torus.Coord{X: 99}, Shape: torus.Shape{X: 1, Y: 1, Z: 1}})
		}},
	}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			finders := []partition.Finder{
				partition.NaiveFinder{},
				evilFinder{inner: partition.ShapeFinder{}, corrupt: m.corrupt},
			}
			var failed bool
			for seed := int64(0); seed < 20 && !failed; seed++ {
				_, err := Replay(g, RandomOps(g, 40, seed), finders)
				if err == nil {
					continue
				}
				failed = true
				var div *DivergenceError
				if !errors.As(err, &div) {
					t.Fatalf("want *DivergenceError, got %T: %v", err, err)
				}
				if div.Finder != "evil" && div.Finder != "naive" {
					t.Fatalf("divergence blamed on %q: %v", div.Finder, err)
				}
				if !strings.Contains(err.Error(), "machine") {
					t.Fatalf("divergence report is missing the grid dump:\n%v", err)
				}
			}
			if !failed {
				t.Fatal("oracle never noticed the corrupted finder")
			}
		})
	}
}

// TestOracleDetectsBrokenReference: corruption of the reference
// (index 0) must also surface, via per-candidate validation.
func TestOracleDetectsBrokenReference(t *testing.T) {
	g := torus.NewGeometry(3, 3, 4, true)
	finders := []partition.Finder{
		evilFinder{inner: partition.NaiveFinder{}, corrupt: func(ps []torus.Partition) []torus.Partition {
			if len(ps) > 1 {
				ps = append([]torus.Partition(nil), ps...)
				ps[0], ps[1] = ps[1], ps[0] // break sortedness
			}
			return ps
		}},
		partition.ShapeFinder{},
	}
	var sawError bool
	for seed := int64(0); seed < 20 && !sawError; seed++ {
		_, err := Replay(g, RandomOps(g, 40, seed), finders)
		sawError = err != nil
	}
	if !sawError {
		t.Fatal("oracle accepted an out-of-order reference result set")
	}
}

// TestReplayLiteralSequences exercises hand-built corner sequences:
// saturating the machine, fully draining it, and querying at both
// extremes.
func TestReplayLiteralSequences(t *testing.T) {
	g := torus.NewGeometry(3, 3, 4, true)
	n := g.N()
	var ops []Op
	// Fill the machine with unit allocations, query along the way...
	for i := 0; i < n; i++ {
		ops = append(ops, Op{Kind: OpAlloc, Size: 0, Pick: i})
		if i%6 == 0 {
			ops = append(ops, Op{Kind: OpQuery, Size: i % n, Pick: 0})
		}
	}
	// ...query the full machine, then drain it completely and query again.
	ops = append(ops, Op{Kind: OpQuery, Size: 0}, Op{Kind: OpQuery, Size: n - 1})
	for i := 0; i < n; i++ {
		ops = append(ops, Op{Kind: OpFree, Pick: i * 7})
	}
	ops = append(ops, Op{Kind: OpQuery, Size: n - 1})

	rep, err := Replay(g, ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Allocs != n {
		t.Fatalf("saturation made %d allocations, want %d", rep.Allocs, n)
	}
	if rep.Frees != n {
		t.Fatalf("drain made %d frees, want %d", rep.Frees, n)
	}
}

// TestEncodeDecodeOpsRoundTrip pins the byte format the fuzz target
// feeds on.
func TestEncodeDecodeOpsRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: OpAlloc, Size: 7, Pick: 200},
		{Kind: OpFree, Size: 0, Pick: 3},
		{Kind: OpQuery, Size: 127, Pick: 0},
	}
	got := DecodeOps(EncodeOps(ops))
	if len(got) != len(ops) {
		t.Fatalf("round trip length %d, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d round-tripped to %v, want %v", i, got[i], ops[i])
		}
	}
	if got := DecodeOps([]byte{1, 2}); len(got) != 0 {
		t.Fatalf("trailing bytes decoded to %d ops, want 0", len(got))
	}
}

// TestDumpGridShape checks the failure-report dump renders every node
// exactly once with the expected markers.
func TestDumpGridShape(t *testing.T) {
	g := torus.NewGeometry(2, 3, 2, false)
	gr := torus.NewGrid(g)
	if err := gr.Allocate(torus.Partition{Shape: torus.Shape{X: 1, Y: 1, Z: 1}}, 1); err != nil {
		t.Fatal(err)
	}
	dump := DumpGrid(gr)
	if got := strings.Count(dump, "#"); got != 1 {
		t.Fatalf("dump shows %d busy nodes, want 1:\n%s", got, dump)
	}
	if got := strings.Count(dump, "."); got != g.N()-1 {
		t.Fatalf("dump shows %d free nodes, want %d:\n%s", got, g.N()-1, dump)
	}
	if !strings.Contains(dump, "z=1") {
		t.Fatalf("dump is missing z slices:\n%s", dump)
	}
}

// TestOracleSnapshotMidSequence pins the OpSnapshot semantics: a
// sequence that allocates, snapshots (owner-map round-trip plus grid
// swap), then keeps mutating and querying must replay divergence-free
// against every finder — including the cached fast path, whose state
// must not survive the identity change a restore implies.
func TestOracleSnapshotMidSequence(t *testing.T) {
	g := torus.NewGeometry(3, 3, 4, true)
	n := g.N()
	var ops []Op
	for i := 0; i < 8; i++ {
		ops = append(ops, Op{Kind: OpAlloc, Size: i % n, Pick: i})
	}
	ops = append(ops, Op{Kind: OpSnapshot, Size: 3})
	for i := 0; i < 6; i++ {
		ops = append(ops,
			Op{Kind: OpFree, Pick: i * 5},
			Op{Kind: OpQuery, Size: (i * 7) % n},
			Op{Kind: OpSnapshot, Size: i % n},
			Op{Kind: OpAlloc, Size: (i * 3) % n, Pick: i},
		)
	}
	rep, err := Replay(g, ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Snapshots != 7 {
		t.Fatalf("replayed %d snapshots, want 7", rep.Snapshots)
	}
	if rep.Allocs == 0 || rep.Frees == 0 {
		t.Fatalf("degenerate sequence: %d allocs, %d frees", rep.Allocs, rep.Frees)
	}
}

// TestOracleRandomMixIncludesSnapshots keeps RandomOps honest about the
// new op: across a handful of seeds the generated mix must exercise
// snapshot round-trips, not just claim to.
func TestOracleRandomMixIncludesSnapshots(t *testing.T) {
	total := 0
	for seed := int64(0); seed < 10; seed++ {
		rep, err := Run(Config{Geometry: torus.NewGeometry(3, 3, 4, true), Ops: 100, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		total += rep.Snapshots
	}
	if total == 0 {
		t.Fatal("1000 random ops produced zero snapshot round-trips")
	}
}

// TestOracleSnapshotDetectsStaleCache proves the snapshot op actually
// catches the failure class it exists for: a finder that caches by grid
// identity and keeps serving the pre-swap snapshot's results diverges.
func TestOracleSnapshotDetectsStaleCache(t *testing.T) {
	g := torus.NewGeometry(3, 3, 4, true)
	stale := &staleCacheFinder{inner: partition.ShapeFinder{}}
	finders := []partition.Finder{partition.NaiveFinder{}, stale}
	ops := []Op{
		{Kind: OpAlloc, Size: 3, Pick: 0},
		{Kind: OpQuery, Size: 3}, // primes the stale cache
		{Kind: OpSnapshot, Size: 3},
		{Kind: OpAlloc, Size: 3, Pick: 1}, // occupancy changed; cache still answers
		{Kind: OpQuery, Size: 3},
	}
	_, err := Replay(g, ops, finders)
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("stale-cache finder survived the snapshot replay: %v", err)
	}
	if div.Finder != "stale-cache" {
		t.Fatalf("divergence blamed on %q, want stale-cache", div.Finder)
	}
}

// staleCacheFinder memoizes its first answer per size and never
// invalidates — the bug OpSnapshot is designed to flush out.
type staleCacheFinder struct {
	inner partition.Finder
	memo  map[int][]torus.Partition
}

func (f *staleCacheFinder) Name() string { return "stale-cache" }

func (f *staleCacheFinder) FreeOfSize(gr *torus.Grid, size int) []torus.Partition {
	if f.memo == nil {
		f.memo = make(map[int][]torus.Partition)
	}
	if ps, ok := f.memo[size]; ok {
		return ps
	}
	ps := f.inner.FreeOfSize(gr, size)
	f.memo[size] = ps
	return ps
}
