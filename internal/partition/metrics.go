package partition

import (
	"bgsched/internal/telemetry"
)

// Metrics holds the per-algorithm search-cost instruments a finder
// reports into. A nil *Metrics disables collection at the cost of one
// branch per call, so the zero-value finders stay cheap.
//
// Names are "finder.<algo>.*":
//
//	calls           FreeOfSize invocations
//	candidates      histogram of result-set sizes per call
//	bases_scanned   candidate base positions examined
//	early_rejects   bases discarded before the full footprint check
//	no_shape_exits  calls that terminated early with no legal shape
//	seconds         wall time per call
//
// The fast finder additionally reports its cache behaviour:
//
//	cache_hits          queries answered from the memoized result cache
//	cache_misses        queries that had to enumerate
//	cache_invalidations z-columns of derived occupancy state rebuilt
//	                    because the underlying grid changed
type Metrics struct {
	Calls        *telemetry.Counter
	Candidates   *telemetry.Histogram
	BasesScanned *telemetry.Counter
	EarlyRejects *telemetry.Counter
	NoShapeExits *telemetry.Counter
	Seconds      *telemetry.Timer

	CacheHits          *telemetry.Counter
	CacheMisses        *telemetry.Counter
	CacheInvalidations *telemetry.Counter
}

// NewMetrics resolves the instruments for one algorithm. Returns nil
// (collection disabled) on a nil registry. The cache instruments are
// resolved only for the "fast" algorithm; they stay nil (no-op) for
// the cacheless finders so snapshots do not grow dead series.
func NewMetrics(reg *telemetry.Registry, algo string) *Metrics {
	if reg == nil {
		return nil
	}
	prefix := "finder." + algo + "."
	m := &Metrics{
		Calls:        reg.Counter(prefix + "calls"),
		Candidates:   reg.Histogram(prefix + "candidates"),
		BasesScanned: reg.Counter(prefix + "bases_scanned"),
		EarlyRejects: reg.Counter(prefix + "early_rejects"),
		NoShapeExits: reg.Counter(prefix + "no_shape_exits"),
		Seconds:      reg.Timer(prefix + "seconds"),
	}
	if algo == "fast" {
		m.CacheHits = reg.Counter(prefix + "cache_hits")
		m.CacheMisses = reg.Counter(prefix + "cache_misses")
		m.CacheInvalidations = reg.Counter(prefix + "cache_invalidations")
	}
	return m
}

// startTimer begins the per-call timing; safe on nil.
func (m *Metrics) startTimer() telemetry.Stopwatch {
	if m == nil {
		return telemetry.Stopwatch{}
	}
	return m.Seconds.Start()
}

// observe folds one completed call's locally accumulated tallies into
// the shared instruments; safe on nil.
func (m *Metrics) observe(sw telemetry.Stopwatch, candidates, bases, earlyRejects int) {
	if m == nil {
		return
	}
	sw.Stop()
	m.Calls.Inc()
	m.Candidates.Observe(float64(candidates))
	m.BasesScanned.Add(int64(bases))
	m.EarlyRejects.Add(int64(earlyRejects))
}

// noShapes records a call that exited before any base scan because the
// requested size has no legal shape on this geometry; safe on nil.
func (m *Metrics) noShapes(sw telemetry.Stopwatch) {
	if m == nil {
		return
	}
	sw.Stop()
	m.Calls.Inc()
	m.Candidates.Observe(0)
	m.NoShapeExits.Inc()
}

// cacheHit records a query answered from the memoized cache; safe on
// nil.
func (m *Metrics) cacheHit() {
	if m == nil {
		return
	}
	m.CacheHits.Inc()
}

// cacheMiss records a query that enumerated, plus how many columns of
// derived occupancy state the miss had to rebuild; safe on nil.
func (m *Metrics) cacheMiss(rebuiltColumns int) {
	if m == nil {
		return
	}
	m.CacheMisses.Inc()
	m.CacheInvalidations.Add(int64(rebuiltColumns))
}

// Instrumented wires reg into a copy of each known finder kind (in
// place for the stateful fast finder); other Finder implementations
// pass through unchanged. It is the one-liner CLIs and the experiments
// harness use to attach search-cost telemetry without caring which
// algorithm is configured.
func Instrumented(f Finder, reg *telemetry.Registry) Finder {
	if reg == nil {
		return f
	}
	switch ff := f.(type) {
	case NaiveFinder:
		ff.Metrics = NewMetrics(reg, ff.Name())
		return ff
	case POPFinder:
		ff.Metrics = NewMetrics(reg, ff.Name())
		return ff
	case ShapeFinder:
		ff.Metrics = NewMetrics(reg, ff.Name())
		return ff
	case *FastFinder:
		ff.Metrics = NewMetrics(reg, ff.Name())
		return ff
	case *AnnealFinder:
		// Instrument the embedded enumerator under the anneal name; the
		// concrete type (and with it the Placer capability the scheduler
		// detects) is preserved.
		ff.inner.Metrics = NewMetrics(reg, ff.Name())
		return ff
	}
	return f
}
