package partition

import (
	"math/rand"
	"testing"

	"bgsched/internal/torus"
)

func annealGrid(t *testing.T, fill float64, seed int64) *torus.Grid {
	t.Helper()
	g := torus.BlueGeneL()
	gr := torus.NewGrid(g)
	rng := rand.New(rand.NewSource(seed))
	owner := int64(1)
	for id := 0; id < g.N(); id++ {
		if rng.Float64() < fill {
			p := torus.Partition{Base: g.CoordOf(id), Shape: torus.Shape{X: 1, Y: 1, Z: 1}}
			if err := gr.Allocate(p, owner); err != nil {
				t.Fatal(err)
			}
			owner++
		}
	}
	return gr
}

// The annealed placement is a pure function of (seed, occupancy hash,
// candidate set): repeated calls, a different finder instance with the
// same seed, and a grid rebuilt from Owners (fresh grid identity, same
// occupancy) must all pick the same candidate.
func TestAnnealPlaceDeterministic(t *testing.T) {
	gr := annealGrid(t, 0.4, 3)
	f := NewAnnealFinder(7, 0)
	for _, size := range []int{4, 8, 16} {
		cands := f.FreeOfSize(gr, size)
		if len(cands) < 2 {
			continue
		}
		want := f.Place(gr, cands)
		for i := 0; i < 3; i++ {
			if got := f.Place(gr, cands); got != want {
				t.Fatalf("size %d: repeat call chose %d, want %d", size, got, want)
			}
		}
		if got := NewAnnealFinder(7, 4).Place(gr, cands); got != want {
			t.Fatalf("size %d: fresh same-seed finder chose %d, want %d", size, got, want)
		}
		rebuilt, err := torus.NewGridFromOwners(gr.Geometry(), gr.Owners())
		if err != nil {
			t.Fatal(err)
		}
		if got := f.Place(rebuilt, f.FreeOfSize(rebuilt, size)); got != want {
			t.Fatalf("size %d: rebuilt grid chose %d, want %d", size, got, want)
		}
	}
}

// The walk starts at candidate 0 and tracks the best score visited, so
// the annealed choice can never score worse than the default
// first-candidate placement.
func TestAnnealPlaceNeverWorseThanDefault(t *testing.T) {
	for gseed := int64(1); gseed <= 5; gseed++ {
		gr := annealGrid(t, 0.45, gseed)
		f := NewAnnealFinder(gseed, 0)
		for _, size := range []int{2, 4, 8} {
			cands := f.FreeOfSize(gr, size)
			if len(cands) == 0 {
				continue
			}
			idx := f.Place(gr, cands)
			if idx < 0 || idx >= len(cands) {
				t.Fatalf("Place returned out-of-range index %d of %d", idx, len(cands))
			}
			if got, def := PlacementScore(gr, cands[idx]), PlacementScore(gr, cands[0]); got > def {
				t.Fatalf("grid seed %d size %d: annealed score %v worse than default %v", gseed, size, got, def)
			}
		}
	}
}

// The enumeration half must stay byte-identical to the reference
// finder: Place only reorders preference, never the legal set.
func TestAnnealFreeOfSizeMatchesShape(t *testing.T) {
	gr := annealGrid(t, 0.4, 9)
	f := NewAnnealFinder(1, 0)
	ref := ShapeFinder{}
	for _, size := range []int{1, 4, 8, 32} {
		got, want := f.FreeOfSize(gr, size), ref.FreeOfSize(gr, size)
		if len(got) != len(want) {
			t.Fatalf("size %d: %d candidates, reference %d", size, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("size %d index %d: %v vs %v", size, i, got[i], want[i])
			}
		}
	}
}
