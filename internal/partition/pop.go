package partition

import "bgsched/internal/torus"

// POPFinder is a Projection-of-Partitions style finder in the spirit of
// Krevat et al.: the 3D search is reduced to a sequence of 2D searches
// by projecting, for each z-window, the columns that are free across
// the whole window onto a 2D plane, and then reducing each 2D search to
// 1D run-length scans. The cost is O(M^5)-ish, independent of the
// divisor structure of the requested size.
type POPFinder struct {
	// Metrics, when non-nil, receives per-call search-cost telemetry.
	Metrics *Metrics
}

// Name implements Finder.
func (POPFinder) Name() string { return "pop" }

// FreeOfSize implements Finder.
func (f POPFinder) FreeOfSize(gr *torus.Grid, size int) []torus.Partition {
	sw := f.Metrics.startTimer()
	g := gr.Geometry()
	dims := g.Dims
	shapes := g.ShapesOf(size)
	if len(shapes) == 0 {
		f.Metrics.noShapes(sw)
		return nil
	}
	bases, rejects := 0, 0
	zRuns := make([]int, g.N())
	for x := 0; x < dims.X; x++ {
		for y := 0; y < dims.Y; y++ {
			col := (x*dims.Y + y) * dims.Z
			computeRunsInto(func(z int) bool { return gr.NodeFree(col + z) },
				dims.Z, g.Wrap, zRuns[col:col+dims.Z])
		}
	}

	// Group shapes by their z extent so each z-window projection is
	// computed once per (bz, sz) pair and reused for every (sx, sy).
	byZ := make(map[int][]torus.Shape)
	for _, s := range shapes {
		byZ[s.Z] = append(byZ[s.Z], s)
	}

	plane := dims.X * dims.Y
	colOK := make([]bool, plane)
	yRun := make([]int, plane)
	rowOK := make([]bool, dims.X)
	xRun := make([]int, dims.X)

	var out []torus.Partition
	for sz := 1; sz <= dims.Z; sz++ {
		group := byZ[sz]
		if len(group) == 0 {
			continue
		}
		for bz := 0; bz < baseRange(dims.Z, sz, g.Wrap); bz++ {
			for x := 0; x < dims.X; x++ {
				row := x * dims.Y
				for y := 0; y < dims.Y; y++ {
					colOK[row+y] = zRuns[(row+y)*dims.Z+bz] >= sz
				}
			}
			// yRun[x*dy+y]: consecutive projected-free cells along +y.
			for x := 0; x < dims.X; x++ {
				row := x * dims.Y
				computeRunsInto(func(y int) bool { return colOK[row+y] },
					dims.Y, g.Wrap, yRun[row:row+dims.Y])
			}
			for _, shape := range group {
				rx := baseRange(dims.X, shape.X, g.Wrap)
				ry := baseRange(dims.Y, shape.Y, g.Wrap)
				for by := 0; by < ry; by++ {
					// rowOK[x]: the y-window starting at by is free in
					// the projected plane for column x.
					for x := 0; x < dims.X; x++ {
						rowOK[x] = yRun[x*dims.Y+by] >= shape.Y
					}
					computeRunsInto(func(x int) bool { return rowOK[x] },
						dims.X, g.Wrap, xRun)
					for bx := 0; bx < rx; bx++ {
						bases++
						if xRun[bx] < shape.X {
							// The projected run table answers the whole
							// footprint in O(1): this is POP's early
							// rejection.
							rejects++
							continue
						}
						out = append(out, torus.Partition{
							Base:  torus.Coord{X: bx, Y: by, Z: bz},
							Shape: shape,
						})
					}
				}
			}
		}
	}
	sortPartitions(out)
	f.Metrics.observe(sw, len(out), bases, rejects)
	return out
}
