package partition

import (
	"bgsched/internal/torus"
)

// Placement scoring: every candidate a finder returns is legal, but on
// a torus they are not equal — a compact block whose traffic stays off
// busy wires beats a stretched one threaded between neighbors. The
// score combines the two communication costs Bender et al. identify:
//
//   - internal: the job's own messages, proxied by the average
//     pairwise Manhattan distance of the partition (lower = tighter);
//   - external: interference with already-running neighbors, proxied
//     by the projected link overlap with current occupancy — busy
//     nodes sitting on torus lines the partition occupies.
//
// Both terms are pure integer geometry over the grid, so scores (and
// everything derived from them) are byte-reproducible.

// Score weights. Distance is in hops (small: <= sum of dims/2);
// LineLoad counts (line, busy-node) incidences and grows with machine
// occupancy, so it dominates on a crowded torus — deliberately: on a
// busy machine avoiding interference matters more than shaving an
// internal hop.
const (
	scoreDistWeight = 4.0
	scoreLoadWeight = 1.0
)

// PlacementScore rates a candidate partition on the given grid; lower
// is better. The candidate itself must not be allocated yet (its own
// nodes are free), matching what a Finder returns.
func PlacementScore(gr *torus.Grid, p torus.Partition) float64 {
	g := gr.Geometry()
	return scoreDistWeight*g.AvgPairwiseDist(p) + scoreLoadWeight*float64(gr.LineLoad(p))
}
